// Explaining non-conformance (paper Appendix K / ExTuNe): when serving
// data drifts, which attributes are responsible?
//
// Train on healthy cardiovascular patients; serve diseased patients; the
// responsibility analysis pins the drift on blood pressure.
//
// Run: ./build/examples/explain_nonconformance

#include <algorithm>
#include <cstdio>

#include "common/random.h"
#include "core/explain.h"
#include "synth/tabular.h"

using namespace ccs;  // NOLINT

int main() {
  Rng rng(3);
  auto healthy = synth::GenerateCardio(3000, /*diseased=*/false, &rng);
  auto diseased = synth::GenerateCardio(500, /*diseased=*/true, &rng);
  if (!healthy.ok() || !diseased.ok()) {
    std::fprintf(stderr, "generator failure\n");
    return 1;
  }

  auto explainer =
      core::NonConformanceExplainer::FromTrainingData(*healthy);
  if (!explainer.ok()) {
    std::fprintf(stderr, "%s\n", explainer.status().ToString().c_str());
    return 1;
  }

  // Single-tuple explanation: a hypertensive patient.
  dataframe::DataFrame probe = diseased->Slice(0, 1);
  auto tuple_responsibility =
      explainer->ExplainTuple(probe.NumericRow(0)).value();
  std::printf("Why is serving tuple 0 non-conforming?\n");
  for (const auto& r : tuple_responsibility) {
    if (r.responsibility > 0.0) {
      std::printf("  %-14s responsibility %.3f\n", r.attribute.c_str(),
                  r.responsibility);
    }
  }

  // Dataset-level attribution, sorted.
  auto aggregate = explainer->ExplainDataset(*diseased).value();
  std::sort(aggregate.begin(), aggregate.end(),
            [](const auto& a, const auto& b) {
              return a.responsibility > b.responsibility;
            });
  std::printf("\nAggregate responsibility over %zu diseased patients:\n",
              diseased->num_rows());
  for (const auto& r : aggregate) {
    std::printf("  %-14s %6.3f  ", r.attribute.c_str(), r.responsibility);
    for (int i = 0; i < static_cast<int>(r.responsibility * 60); ++i) {
      std::printf("#");
    }
    std::printf("\n");
  }
  std::printf(
      "\nBlood pressure (ap_hi / ap_lo) tops the chart: the diseased\n"
      "population deviates from the healthy profile chiefly through it.\n");
  return 0;
}
