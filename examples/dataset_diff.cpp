// Dataset differencing (paper Appendix H): "what changed between last
// quarter's flights and this quarter's?"
//
// Builds two airline datasets where only overnight long-haul routes were
// added, diffs them, and prints the localized report — plus the
// decision-tree constraint profile (§8 extension) of the reference data.
//
// Run: ./build/examples/dataset_diff

#include <cstdio>

#include "common/random.h"
#include "core/datadiff.h"
#include "core/tree.h"
#include "synth/airlines.h"

using namespace ccs;  // NOLINT

int main() {
  Rng rng(5);
  // Reference quarter: daytime flights only.
  auto reference =
      synth::GenerateFlights(synth::FlightKind::kDaytime, 4000, &rng);

  // Current quarter: the same traffic plus a new overnight program.
  auto daytime =
      synth::GenerateFlights(synth::FlightKind::kDaytime, 3000, &rng);
  auto overnight =
      synth::GenerateFlights(synth::FlightKind::kOvernight, 1000, &rng);
  auto current = daytime.Concat(overnight);
  if (!current.ok()) {
    std::fprintf(stderr, "%s\n", current.status().ToString().c_str());
    return 1;
  }

  auto diff = core::DiffDatasets(reference, *current);
  if (!diff.ok()) {
    std::fprintf(stderr, "%s\n", diff.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Diff: current quarter vs reference quarter ===\n%s\n",
              diff->ToString().c_str());
  std::printf(
      "Reading the report: the asymmetry (B-against-A >> A-against-B) says\n"
      "the current quarter contains NEW behaviour the reference never had;\n"
      "the responsibility ranking points at the schedule attributes\n"
      "(arr/dep/duration) rather than, say, the day of week.\n\n");

  // Bonus: the decision-tree profile of the reference data.
  core::TreeOptions options;
  options.max_depth = 2;
  auto tree = core::ConstraintTree::Fit(reference, options);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("=== Constraint tree over the reference quarter ===\n%s",
              tree->ToString().c_str());
  std::printf("\ntree mean violation on current quarter: %.4f\n",
              tree->MeanViolation(*current).value());
  return 0;
}
