// Data-drift monitoring (paper §6.2): watch a stream of wearable-sensor
// windows with a StreamMonitor and raise alarms when the activity mix
// drifts from the reference profile.
//
// The monitor is built once from a reference window (sedentary
// activities); serving windows gradually mix in mobile activities. The
// incremental synthesizer also maintains a running profile in O(m^2)
// memory to show the streaming API.
//
// Run: ./build/examples/sensor_drift_monitor

#include <cstdio>

#include "common/random.h"
#include "core/monitor.h"
#include "synth/har.h"

using namespace ccs;  // NOLINT

int main() {
  Rng rng(7);
  auto persons = synth::HarPersons(6);
  auto reference =
      synth::GenerateHar(persons, synth::SedentaryActivities(), 100, &rng);
  if (!reference.ok()) {
    std::fprintf(stderr, "%s\n", reference.status().ToString().c_str());
    return 1;
  }

  // Serving windows carry sensor readings only, so the reference profile
  // is learned over the sensors alone (no person/activity metadata).
  auto monitor = core::StreamMonitor::Create(
      reference->DropColumns({"person", "activity"}).value(),
      /*alarm_threshold=*/0.1);
  if (!monitor.ok()) {
    std::fprintf(stderr, "%s\n", monitor.status().ToString().c_str());
    return 1;
  }

  // Streaming profile maintenance alongside the monitor.
  std::vector<std::string> sensor_names;
  for (int j = 0; j < 36; ++j) sensor_names.push_back("s" + std::to_string(j));
  core::IncrementalSynthesizer profile(sensor_names);

  std::printf("window  mobile%%   drift   alarm\n");
  for (int w = 0; w < 12; ++w) {
    double mobile_fraction = w < 4 ? 0.0 : 0.1 * (w - 3);
    size_t total = 600;
    auto n_mobile = static_cast<size_t>(mobile_fraction * total);
    auto sedentary = synth::GenerateHar(
        persons, synth::SedentaryActivities(), 40, &rng);
    auto mobile =
        synth::GenerateHar(persons, synth::MobileActivities(), 40, &rng);
    auto window = sedentary->Sample(total - n_mobile, &rng)
                      .Concat(mobile->Sample(n_mobile, &rng))
                      .value()
                      .DropColumns({"person", "activity"})
                      .value();

    auto score = monitor->ObserveWindow(window);
    if (!score.ok()) {
      std::fprintf(stderr, "%s\n", score.status().ToString().c_str());
      return 1;
    }
    (void)profile.ObserveAll(window);
    std::printf("  %2d    %4.0f%%   %6.3f   %s\n", w, mobile_fraction * 100,
                score->drift, score->alarm ? "*** DRIFT ***" : "-");
  }

  std::printf("\nObserved %lld tuples; refreshed profile has %zu conjuncts.\n",
              static_cast<long long>(profile.count()),
              profile.Synthesize().value().conjuncts().size());
  std::printf(
      "Alarms fire once mobile data enters the stream — time to retrain.\n");
  return 0;
}
