// Trusted machine learning (paper §5 / §6.1): guard a flight-delay
// regressor with a conformance-constraint safety envelope.
//
// The model is trained on daytime flights only. The guard — which never
// sees the model or the delay labels — flags overnight serving flights as
// unsafe BEFORE the model mispredicts on them.
//
// Run: ./build/examples/flight_delay_guard

#include <cstdio>

#include "common/random.h"
#include "core/tml.h"
#include "ml/linear_regression.h"
#include "ml/metrics.h"
#include "synth/airlines.h"

using namespace ccs;  // NOLINT

int main() {
  Rng rng(99);
  auto bench = synth::MakeAirlinesBenchmark(/*train_rows=*/10000,
                                            /*serving_rows=*/2000, &rng);
  if (!bench.ok()) {
    std::fprintf(stderr, "%s\n", bench.status().ToString().c_str());
    return 1;
  }

  // 1. Fit the safety envelope on training COVARIATES (delay excluded).
  auto envelope = core::SafetyEnvelope::Fit(bench->train, {"delay"},
                                            /*unsafe_threshold=*/0.05);
  if (!envelope.ok()) {
    std::fprintf(stderr, "%s\n", envelope.status().ToString().c_str());
    return 1;
  }

  // 2. Train the delay model (any model; the guard does not know it).
  std::vector<std::string> names =
      bench->train.DropColumns({"delay"})->NumericNames();
  ml::LinearRegressionOptions options;
  options.l2_penalty = 1.0;
  auto model = ml::LinearRegression::Fit(
      bench->train.NumericMatrixFor(names).value(),
      bench->train.ColumnByName("delay").value()->ToVector(), options);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  // 3. Serve mixed traffic; route each tuple through the guard first.
  const dataframe::DataFrame& serving = bench->mixed;
  auto verdicts = envelope->AssessAll(serving).value();
  auto x = serving.NumericMatrixFor(names).value();
  auto truth = serving.ColumnByName("delay").value()->ToVector();
  auto predictions = model->PredictAll(x);

  double safe_error = 0.0, unsafe_error = 0.0;
  size_t safe_count = 0, unsafe_count = 0;
  for (size_t i = 0; i < serving.num_rows(); ++i) {
    double error = std::abs(truth[i] - predictions[i]);
    if (verdicts[i].unsafe) {
      unsafe_error += error;
      ++unsafe_count;
    } else {
      safe_error += error;
      ++safe_count;
    }
  }

  std::printf("Serving %zu flights through the safety envelope:\n",
              serving.num_rows());
  std::printf("  accepted as safe : %5zu tuples, model MAE = %7.2f\n",
              safe_count, safe_error / safe_count);
  std::printf("  flagged unsafe   : %5zu tuples, model MAE = %7.2f\n",
              unsafe_count, unsafe_error / unsafe_count);
  std::printf(
      "\nThe guard never saw the model or any delay label, yet the flagged"
      "\ntuples are exactly where the model fails — route those to a human"
      "\nor a fallback policy.\n");

  // 4. Show a couple of individual verdicts.
  for (size_t i = 0; i < 5; ++i) {
    std::printf("tuple %zu: trust=%.3f violation=%.3f -> %s\n", i,
                verdicts[i].trust, verdicts[i].violation,
                verdicts[i].unsafe ? "REJECT (unsafe)" : "accept");
  }
  return 0;
}
