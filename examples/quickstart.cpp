// Quickstart: discover conformance constraints for a small dataset, print
// them, and score new tuples.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <sstream>

#include "core/serialize.h"
#include "core/synthesizer.h"
#include "dataframe/csv.h"

using namespace ccs;  // NOLINT

int main() {
  // A tiny flights table (times in minutes since midnight). Daytime
  // flights satisfy arr ~= dep + duration; the data is noisy.
  const char* csv =
      "month,dep_time,arr_time,duration\n"
      "May,870,1100,230\n"
      "Jul,545,735,195\n"
      "Jun,620,740,115\n"
      "May,670,785,117\n"
      "Jun,540,660,121\n"
      "Jul,900,1080,178\n"
      "May,480,610,128\n"
      "Jun,760,980,222\n";
  std::istringstream in(csv);
  auto df = dataframe::ReadCsv(in);
  if (!df.ok()) {
    std::fprintf(stderr, "CSV error: %s\n", df.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded:\n%s\n", df->Describe().c_str());

  // Discover the conformance constraints (global + disjunctive). With a
  // table this tiny, per-month partitions of 2-3 rows would overfit, so
  // require a few more rows before a partition earns its own constraint.
  core::SynthesisOptions options;
  options.min_partition_rows = 5;
  core::Synthesizer synthesizer(options);
  auto constraint = synthesizer.Synthesize(*df);
  if (!constraint.ok()) {
    std::fprintf(stderr, "synthesis error: %s\n",
                 constraint.status().ToString().c_str());
    return 1;
  }
  std::printf("Discovered constraints:\n%s\n",
              core::ToPrettyString(*constraint).c_str());
  std::printf("As a SQL CHECK clause:\n%s\n\n",
              core::ToSqlCheck(constraint->global()).c_str());

  // Score serving tuples: one conforming daytime flight, one overnight
  // flight that breaks the arr - dep - duration invariant.
  dataframe::DataFrame serving;
  (void)serving.AddCategoricalColumn("month", {"May", "Jun"});
  (void)serving.AddNumericColumn("dep_time", {700.0, 1350.0});
  (void)serving.AddNumericColumn("arr_time", {890.0, 370.0});
  (void)serving.AddNumericColumn("duration", {188.0, 458.0});

  for (size_t i = 0; i < serving.num_rows(); ++i) {
    auto violation = constraint->Violation(serving, i);
    std::printf("tuple %zu: violation = %.4f  (%s)\n", i,
                violation.value(),
                violation.value() < 0.05 ? "conforming" : "NON-CONFORMING");
  }
  return 0;
}
