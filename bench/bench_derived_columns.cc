// Lazy derived-column views vs. materializing the derived frame.
//
// Two hot loops from the synthesize -> score pipeline, each measured
// twice over the same data:
//   Expand -> score      degree-2 polynomial expansion scored against a
//                        profile: legacy ExpandPolynomial (build a whole
//                        expanded DataFrame, then a Matrix) vs.
//                        ExpandPolynomialView walking Product kernels
//                        block-by-block.
//   Scale -> gram        standardized Gram refresh (the streaming
//                        re-synthesis shape): legacy Transform to a new
//                        Matrix per call vs. TransformView feeding
//                        AddView through the shared scale kernel.
//
// The legacy paths copy every derived cell into freshly allocated
// storage on EVERY call; the view paths compute cells on the fly into
// the kernels' reused 256-row scratch. Every result pair is CHECKed
// bitwise-equal — at 1 and 4 threads — before any number is reported.
// Pass --quick for a CI-sized run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/constraint.h"
#include "core/kernel.h"
#include "core/projection.h"
#include "dataframe/dataframe.h"
#include "linalg/gram.h"
#include "linalg/matrix_view.h"
#include "ml/scaler.h"

namespace {

using namespace ccs;  // NOLINT
using dataframe::DataFrame;

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

bool BitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void CheckVectorsBitwiseEqual(const linalg::Vector& a,
                              const linalg::Vector& b) {
  CCS_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) CCS_CHECK(BitsEqual(a[i], b[i]));
}

void CheckMatricesBitwiseEqual(const linalg::Matrix& a,
                               const linalg::Matrix& b) {
  CCS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      CCS_CHECK(BitsEqual(a.At(i, j), b.At(i, j)));
    }
  }
}

// rows x 8 correlated numeric attributes; the degree-2 expansion makes
// 8 + 8 + 28 = 44 derived columns out of them.
DataFrame MakeFrame(size_t rows, uint64_t seed) {
  Rng rng(seed);
  DataFrame df;
  std::vector<double> base(rows);
  for (auto& v : base) v = rng.Gaussian(0.0, 1.0);
  for (size_t c = 0; c < 8; ++c) {
    std::vector<double> col(rows);
    for (size_t i = 0; i < rows; ++i) {
      col[i] = 0.4 * base[i] + rng.Gaussian(0.0, 0.8);
    }
    bench::CheckOk(df.AddNumericColumn("a" + std::to_string(c),
                                       std::move(col)));
  }
  return df;
}

// A 2-conjunct profile over the EXPANDED attribute names (synthesis is
// not what's measured; the scoring kernel walking derived columns is).
core::SimpleConstraint MakeProfile(const std::vector<std::string>& names) {
  std::vector<core::BoundedConstraint> conjuncts;
  for (size_t k = 0; k < 2; ++k) {
    linalg::Vector w(names.size());
    for (size_t j = 0; j < w.size(); ++j) {
      w[j] = (j % 3 == k) ? 0.25 : -0.05;
    }
    auto projection = core::Projection::Create(names, std::move(w));
    bench::CheckOk(projection.status());
    conjuncts.emplace_back(std::move(*projection), -2.5, 2.5, 0.0, 1.2, 0.5);
  }
  auto profile = core::SimpleConstraint::Create(names, std::move(conjuncts));
  bench::CheckOk(profile.status());
  return *profile;
}

struct Measurement {
  double legacy_seconds = 0.0;
  double view_seconds = 0.0;
  double speedup() const { return legacy_seconds / view_seconds; }
};

void Report(const std::string& label, size_t rows_processed,
            const Measurement& m) {
  std::printf("%-30s%14.0f%12.2f%10s\n", (label + ", materialize").c_str(),
              rows_processed / m.legacy_seconds, m.legacy_seconds * 1e3,
              "1.00x");
  std::printf("%-30s%14.0f%12.2f%9.2fx\n", (label + ", lazy view").c_str(),
              rows_processed / m.view_seconds, m.view_seconds * 1e3,
              m.speedup());
}

// Expand -> score: the serving-side nonlinear assessment loop. Legacy
// rebuilds the expanded frame (44 materialized columns) and a Matrix on
// every window; the lazy path computes squares and cross terms inside
// the scoring kernel's block scratch.
Measurement BenchExpandScore(const DataFrame& df,
                             const core::SimpleConstraint& profile,
                             size_t reps) {
  const std::vector<std::string>& names = profile.attribute_names();
  Measurement m;
  linalg::Vector legacy, lazy;
  auto begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto expanded = core::ExpandPolynomial(df);
    bench::CheckOk(expanded.status());
    auto data = expanded->NumericMatrixFor(names);
    bench::CheckOk(data.status());
    legacy = profile.ViolationAllAligned(*data);
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto expanded = core::ExpandPolynomialView(df);
    bench::CheckOk(expanded.status());
    lazy = profile.ViolationAllAligned(expanded->view);
  }
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CheckVectorsBitwiseEqual(lazy, legacy);
  return m;
}

// Scale -> gram: the standardized streaming-refresh loop. Legacy
// gathers a Matrix and transforms it into a second Matrix per call; the
// lazy path folds (x - mean) / stddev into the Gram walk itself.
Measurement BenchScaleGram(const DataFrame& df,
                           const ml::StandardScaler& scaler,
                           const std::vector<std::string>& names,
                           size_t reps) {
  Measurement m;
  linalg::GramAccumulator legacy(names.size()), lazy(names.size());
  auto begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto data = df.NumericMatrixFor(names);
    bench::CheckOk(data.status());
    auto scaled = scaler.Transform(*data);
    bench::CheckOk(scaled.status());
    legacy.AddMatrix(*scaled);
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto view = scaler.TransformView(df, names);
    bench::CheckOk(view.status());
    lazy.AddView(*view);
  }
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CCS_CHECK(legacy.count() == lazy.count());
  CheckMatricesBitwiseEqual(legacy.AugmentedGram(), lazy.AugmentedGram());
  return m;
}

void Run(bool quick) {
  const size_t rows = quick ? 200000 : 600000;
  const size_t reps = quick ? 3 : 5;
  bench::Banner(
      "Derived-column views vs. materializing the derived frame\n"
      "polynomial expansion scoring + standardized Gram refresh\n" +
      std::string(quick ? "(--quick) " : "") + std::to_string(rows) +
      " rows x 8 numeric (44 expanded), " + std::to_string(reps) +
      " repetitions");

  DataFrame df = MakeFrame(rows, 29);
  std::vector<std::string> names = df.NumericNames();
  core::SimpleConstraint profile = MakeProfile(core::ExpandedNames(names));
  auto fit_data = df.NumericMatrixFor(names);
  bench::CheckOk(fit_data.status());
  auto scaler = ml::StandardScaler::Fit(*fit_data);
  bench::CheckOk(scaler.status());

  double worst = 1e9;
  for (size_t threads : {1u, 4u}) {
    common::SetDefaultThreadCount(threads);
    std::printf("\n-- %zu thread%s %s\n", threads, threads == 1 ? "" : "s",
                threads == 1 ? "" : "(identical bits required and CHECKed)");
    std::printf("%-30s%14s%12s%10s\n", "path", "rows/sec", "wall (ms)",
                "speedup");
    Measurement expand = BenchExpandScore(df, profile, reps);
    Report("Expand -> score", rows * reps, expand);
    Measurement scale = BenchScaleGram(df, *scaler, names, reps);
    Report("Scale -> gram (refresh)", rows * reps, scale);
    worst = std::min({worst, expand.speedup(), scale.speedup()});
  }
  common::SetDefaultThreadCount(0);

  std::printf(
      "\n(every materialize/lazy result pair CHECKed bitwise-equal before\n"
      "reporting; legacy = rebuild the expanded/scaled storage on every\n"
      "call — exactly what ExpandPolynomial-per-window and\n"
      "Transform-per-refresh did before derived views)\n");
  // Acceptance is judged on the full-size run; --quick is a CI smoke
  // over a reduced workload with a proportionally relaxed threshold.
  const double target = quick ? 1.2 : 1.5;
  if (worst < target) {
    std::printf("WARNING: derived-view speedup %.2fx below the %.1fx target\n",
                worst, target);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  Run(quick);
  return 0;
}
