// Zero-materialization kernels (linalg::MatrixView) vs. the per-call
// Matrix copies they replaced.
//
// Three view-heavy hot loops, each measured twice over the same data:
//   PartitionBy -> score   per-partition violation scoring: legacy
//                          NumericMatrixFor + ViolationAllAligned(Matrix)
//                          vs. NumericViewFor + the view-walking kernel.
//   PartitionBy -> gram    per-partition Gram accumulation (the §4.2
//                          disjunctive-synthesis hot loop): legacy
//                          NumericMatrixFor + AddMatrix vs. AddView.
//   Filter -> score        whole-frame serving-side scoring of one large
//                          view (the batch-assessment / stream-window
//                          shape) through the same two paths.
//
// The legacy path allocates, zero-fills, gather-writes, and then
// re-reads an n x m Matrix on EVERY call; the view path gathers
// cache-sized blocks into reused scratch inside the kernel. Every pair
// of results is CHECKed bitwise-equal — at 1 and 4 threads — before any
// number is reported: a speedup over a divergent computation would be
// meaningless. Pass --quick for a CI-sized run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/constraint.h"
#include "core/projection.h"
#include "dataframe/dataframe.h"
#include "linalg/gram.h"
#include "linalg/matrix_view.h"

namespace {

using namespace ccs;  // NOLINT
using dataframe::DataFrame;

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

bool BitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void CheckVectorsBitwiseEqual(const linalg::Vector& a,
                              const linalg::Vector& b) {
  CCS_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) CCS_CHECK(BitsEqual(a[i], b[i]));
}

void CheckMatricesBitwiseEqual(const linalg::Matrix& a,
                               const linalg::Matrix& b) {
  CCS_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      CCS_CHECK(BitsEqual(a.At(i, j), b.At(i, j)));
    }
  }
}

// rows x 16 numeric + a 12-value skewed switch attribute (the
// disjunctive-synthesis shape; value 0 dominates).
DataFrame MakeFrame(size_t rows, uint64_t seed) {
  Rng rng(seed);
  DataFrame df;
  for (size_t c = 0; c < 16; ++c) {
    std::vector<double> col(rows);
    for (auto& v : col) v = rng.Gaussian(0.0, 1.0);
    bench::CheckOk(df.AddNumericColumn("a" + std::to_string(c),
                                       std::move(col)));
  }
  std::vector<std::string> segment(rows);
  for (size_t i = 0; i < rows; ++i) {
    int64_t r = rng.UniformInt(0, 99);
    int v = r < 40 ? 0 : r < 60 ? 1 : r < 75 ? 2 : static_cast<int>(r % 12);
    segment[i] = "seg" + std::to_string(v);
  }
  bench::CheckOk(df.AddCategoricalColumn("segment", std::move(segment)));
  return df;
}

// A 2-conjunct profile over the numeric attributes (synthesis is not
// what's measured; the scoring kernel is). Bounds sit near ±2σ of the
// projections so a realistic minority of rows pays the eta() path.
core::SimpleConstraint MakeProfile(const std::vector<std::string>& names) {
  std::vector<core::BoundedConstraint> conjuncts;
  for (size_t k = 0; k < 2; ++k) {
    linalg::Vector w(names.size());
    for (size_t j = 0; j < w.size(); ++j) {
      w[j] = (j % 3 == k) ? 0.5 : -0.1;
    }
    auto projection = core::Projection::Create(names, std::move(w));
    bench::CheckOk(projection.status());
    conjuncts.emplace_back(std::move(*projection), -2.2, 2.2, 0.0, 1.1, 0.5);
  }
  auto profile = core::SimpleConstraint::Create(names, std::move(conjuncts));
  bench::CheckOk(profile.status());
  return *profile;
}

struct Measurement {
  double legacy_seconds = 0.0;
  double view_seconds = 0.0;
  double speedup() const { return legacy_seconds / view_seconds; }
};

void Report(const std::string& label, size_t rows_processed,
            const Measurement& m) {
  std::printf("%-30s%14.0f%12.2f%10s\n", (label + ", matrix").c_str(),
              rows_processed / m.legacy_seconds, m.legacy_seconds * 1e3,
              "1.00x");
  std::printf("%-30s%14.0f%12.2f%9.2fx\n", (label + ", view").c_str(),
              rows_processed / m.view_seconds, m.view_seconds * 1e3,
              m.speedup());
}

// PartitionBy -> score: every partition scored against the profile.
Measurement BenchPartitionScore(
    const std::map<std::string, DataFrame>& partitions,
    const core::SimpleConstraint& profile, size_t reps) {
  const std::vector<std::string>& names = profile.attribute_names();
  Measurement m;
  std::map<std::string, linalg::Vector> legacy, views;
  auto begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    for (const auto& [value, part] : partitions) {
      auto data = part.NumericMatrixFor(names);
      bench::CheckOk(data.status());
      legacy[value] = profile.ViolationAllAligned(*data);
    }
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    for (const auto& [value, part] : partitions) {
      auto data = part.NumericViewFor(names);
      bench::CheckOk(data.status());
      views[value] = profile.ViolationAllAligned(*data);
    }
  }
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CCS_CHECK(legacy.size() == views.size());
  for (const auto& [value, scores] : views) {
    CheckVectorsBitwiseEqual(scores, legacy.at(value));
  }
  return m;
}

// PartitionBy -> gram: every partition folded into a Gram accumulator
// (what SynthesizeSimple does per disjunctive case).
Measurement BenchPartitionGram(
    const std::map<std::string, DataFrame>& partitions,
    const std::vector<std::string>& names, size_t reps) {
  Measurement m;
  linalg::GramAccumulator legacy(names.size()), view(names.size());
  auto begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    for (const auto& [value, part] : partitions) {
      auto data = part.NumericMatrixFor(names);
      bench::CheckOk(data.status());
      legacy.AddMatrix(*data);
    }
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    for (const auto& [value, part] : partitions) {
      auto data = part.NumericViewFor(names);
      bench::CheckOk(data.status());
      view.AddView(*data);
    }
  }
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CCS_CHECK(legacy.count() == view.count());
  CheckMatricesBitwiseEqual(legacy.AugmentedGram(), view.AugmentedGram());
  return m;
}

// Filter -> gram: one large view folded whole into a Gram accumulator
// (the IncrementalSynthesizer::ObserveAll / stream-refresh shape).
Measurement BenchFilterGram(const DataFrame& view,
                            const std::vector<std::string>& names,
                            size_t reps) {
  Measurement m;
  linalg::GramAccumulator legacy(names.size()), walked(names.size());
  auto begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto data = view.NumericMatrixFor(names);
    bench::CheckOk(data.status());
    legacy.AddMatrix(*data);
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto data = view.NumericViewFor(names);
    bench::CheckOk(data.status());
    walked.AddView(*data);
  }
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CCS_CHECK(legacy.count() == walked.count());
  CheckMatricesBitwiseEqual(legacy.AugmentedGram(), walked.AugmentedGram());
  return m;
}

// Filter -> score: one large view scored whole (the serving-side
// batch-assessment shape).
Measurement BenchFilterScore(const DataFrame& view,
                             const core::SimpleConstraint& profile,
                             size_t reps) {
  const std::vector<std::string>& names = profile.attribute_names();
  Measurement m;
  linalg::Vector legacy, walked;
  auto begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto data = view.NumericMatrixFor(names);
    bench::CheckOk(data.status());
    legacy = profile.ViolationAllAligned(*data);
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto data = view.NumericViewFor(names);
    bench::CheckOk(data.status());
    walked = profile.ViolationAllAligned(*data);
  }
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CheckVectorsBitwiseEqual(walked, legacy);
  return m;
}

void Run(bool quick) {
  const size_t rows = quick ? 600000 : 1500000;
  const size_t reps = quick ? 3 : 5;
  bench::Banner(
      "MatrixView kernels vs. per-call Matrix materialization\n"
      "scoring + Gram accumulation walking (buffer, selection) columns\n" +
      std::string(quick ? "(--quick) " : "") + std::to_string(rows) +
      " rows x 16 numeric, 12-value switch attribute, " +
      std::to_string(reps) + " repetitions");

  DataFrame df = MakeFrame(rows, 23);
  auto partitions = df.PartitionBy("segment");
  bench::CheckOk(partitions.status());
  DataFrame filtered = df.Filter(
      [&](size_t i) { return df.column(0).NumericAt(i) < 1.5; });  // ~93%.
  core::SimpleConstraint profile = MakeProfile(df.NumericNames());

  double worst_score = 1e9, worst_gram = 1e9;
  for (size_t threads : {1u, 4u}) {
    common::SetDefaultThreadCount(threads);
    std::printf("\n-- %zu thread%s %s\n", threads, threads == 1 ? "" : "s",
                threads == 1 ? "" : "(identical bits required and CHECKed)");
    std::printf("%-30s%14s%12s%10s\n", "path", "rows/sec", "wall (ms)",
                "speedup");
    Measurement score = BenchPartitionScore(*partitions, profile, reps);
    Report("PartitionBy -> score", rows * reps, score);
    Measurement gram = BenchPartitionGram(*partitions, df.NumericNames(),
                                          reps);
    Report("PartitionBy -> gram", rows * reps, gram);
    Measurement filter = BenchFilterScore(filtered, profile, reps);
    Report("Filter -> score", filtered.num_rows() * reps, filter);
    Measurement refresh = BenchFilterGram(filtered, df.NumericNames(), reps);
    Report("Filter -> gram (refresh)", filtered.num_rows() * reps, refresh);
    worst_score = std::min({worst_score, score.speedup(), filter.speedup()});
    // The gram target is judged on the whole-view refresh loop: the
    // partition loop's tail partitions are small enough to stay
    // cache-resident, where the materialization tax is intrinsically
    // lower (it is still reported above for completeness).
    worst_gram = std::min(worst_gram, refresh.speedup());
  }
  common::SetDefaultThreadCount(0);

  std::printf(
      "\n(every matrix/view result pair CHECKed bitwise-equal before\n"
      "reporting; legacy = NumericMatrixFor per call — allocate,\n"
      "zero-fill, gather-write, re-read an n x m Matrix — exactly what\n"
      "the scoring and Gram paths did before MatrixView)\n");
  // The 2x acceptance target is judged on the full-size run; --quick is
  // a CI smoke over a reduced workload (smaller frames leave legacy's
  // materialized matrices partly cache-resident and timings noisier),
  // so its threshold is proportionally relaxed.
  const double target = quick ? 1.5 : 2.0;
  if (worst_score < target) {
    std::printf("WARNING: scoring speedup %.2fx below the %.1fx target\n",
                worst_score, target);
  }
  if (worst_gram < target) {
    std::printf("WARNING: gram speedup %.2fx below the %.1fx target\n",
                worst_gram, target);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  Run(quick);
  return 0;
}
