// Partition-parallel synthesis throughput: rows/sec for the full
// Synthesizer::Synthesize pipeline (sharded Gram accumulation + work-queue
// disjunctive partitions) at 1, 2, 4, and N threads on a wide frame with a
// deliberately skewed categorical domain. The synthesized constraints are
// checked ConstraintsBitwiseEqual to the single-threaded ones before any
// number is reported — the determinism contract is a precondition of the
// benchmark, not an afterthought.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/constraint.h"
#include "core/synthesizer.h"
#include "dataframe/dataframe.h"

namespace {

using namespace ccs;  // NOLINT

constexpr size_t kRows = 24000;
constexpr size_t kAttributes = 40;

double Seconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

// Best-of-k wall time, so one scheduler hiccup does not skew a lane.
double BestSeconds(const std::function<void()>& fn, int reps = 3) {
  double best = Seconds(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, Seconds(fn));
  return best;
}

// A wide frame: kAttributes correlated numeric columns plus one skewed
// categorical switch — half the rows land in one partition ("seg00"),
// the rest spread over 11 more. The skew is the point: a contiguous
// chunking of partitions would serialize on seg00, the work queue must
// not.
dataframe::DataFrame WideSkewedFrame(uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(kAttributes,
                                        std::vector<double>(kRows));
  std::vector<std::string> segment(kRows);
  for (size_t r = 0; r < kRows; ++r) {
    int64_t seg = rng.Bernoulli(0.5) ? 0 : rng.UniformInt(1, 11);
    segment[r] = "seg" + std::string(seg < 10 ? "0" : "") + std::to_string(seg);
    double base = rng.Gaussian(static_cast<double>(seg), 1.0);
    for (size_t c = 0; c < kAttributes; ++c) {
      // Each attribute follows the shared latent factor with its own
      // slope, so low-variance projections genuinely exist.
      cols[c][r] = base * (0.2 + 0.05 * static_cast<double>(c)) +
                   rng.Gaussian(0.0, 0.1);
    }
  }
  dataframe::DataFrame df;
  for (size_t c = 0; c < kAttributes; ++c) {
    bench::CheckOk(df.AddNumericColumn("a" + std::to_string(c),
                                       std::move(cols[c])));
  }
  bench::CheckOk(df.AddCategoricalColumn("segment", std::move(segment)));
  return df;
}

}  // namespace

int main() {
  bench::Banner(
      "Partition-parallel synthesis throughput (Synthesizer::Synthesize)\n"
      "wide frame: 24000 rows x 40 numeric attrs + skewed 12-value switch");

  dataframe::DataFrame training = WideSkewedFrame(42);
  core::Synthesizer synthesizer;

  // Reference result and baseline time: the whole pipeline pinned to one
  // lane (shard/partition code paths included — determinism makes the
  // 1-thread run the serial path by construction).
  common::SetDefaultThreadCount(1);
  auto reference = synthesizer.Synthesize(training);
  bench::CheckOk(reference.status());
  double serial_sec = BestSeconds([&] {
    auto phi = synthesizer.Synthesize(training);
    bench::CheckOk(phi.status());
  });

  size_t hardware = std::max<size_t>(std::thread::hardware_concurrency(), 1);
  std::vector<size_t> lanes = {1, 2, 4, hardware};
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());

  std::printf("\n%-28s%12s%14s%10s\n", "path", "rows/sec", "wall (ms)",
              "speedup");
  for (size_t t : lanes) {
    common::SetDefaultThreadCount(t);
    core::ConformanceConstraint phi;
    double sec = BestSeconds([&] {
      auto result = synthesizer.Synthesize(training);
      bench::CheckOk(result.status());
      phi = std::move(*result);
    });
    // Bitwise, not approximately: coefficients, bounds, partition keys.
    CCS_CHECK(core::ConstraintsBitwiseEqual(*reference, phi))
        << "parallel synthesis diverged from the serial path at " << t
        << " thread(s)";
    std::string label =
        "Synthesize, " + std::to_string(t) + (t == 1 ? " thread" : " threads");
    std::printf("%-28s%12.0f%14.2f%9.2fx\n", label.c_str(),
                static_cast<double>(kRows) / sec, sec * 1e3, serial_sec / sec);
  }
  common::SetDefaultThreadCount(0);

  std::printf(
      "\n(%zu hardware threads; constraints bitwise identical across all "
      "lane counts)\n",
      hardware);
  return 0;
}
