// Shared formatting helpers for the figure/table reproduction binaries.

#ifndef CCS_BENCH_BENCH_UTIL_H_
#define CCS_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "obs/trace.h"

namespace ccs::bench {

/// Prints a banner naming the experiment being reproduced.
inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints one row of right-aligned numeric cells after a left label.
inline void Row(const std::string& label, const std::vector<double>& cells,
                const char* fmt = "%12.4f") {
  std::printf("%-28s", label.c_str());
  for (double c : cells) std::printf(fmt, c);
  std::printf("\n");
}

/// Prints a header row of column titles aligned with Row's cells.
inline void Header(const std::string& label,
                   const std::vector<std::string>& columns) {
  std::printf("%-28s", label.c_str());
  for (const std::string& c : columns) std::printf("%12s", c.c_str());
  std::printf("\n");
}

/// Aborts with a message if a Status is not OK (benches are top-level
/// programs; any failure is a bug in the harness).
inline void CheckOk(const Status& status) {
  CCS_CHECK(status.ok()) << status.ToString();
}

/// Prints a per-stage wall-time breakdown from an ObsSession's recorded
/// spans, heaviest stage first: span name, close count, total ms, and
/// mean us per span. Ring overflow is called out so a truncated profile
/// is never mistaken for a complete one.
inline void PrintStageBreakdown(const obs::ObsSession& session) {
  std::vector<std::pair<std::string, obs::SpanStats>> stages;
  for (const auto& [name, stats] : session.AggregateByName()) {
    stages.emplace_back(name, stats);
  }
  std::sort(stages.begin(), stages.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns) {
      return a.second.total_ns > b.second.total_ns;
    }
    return a.first < b.first;
  });
  std::printf("%-28s%12s%12s%12s\n", "span", "count", "total ms", "mean us");
  for (const auto& [name, stats] : stages) {
    const double total_ms = static_cast<double>(stats.total_ns) * 1e-6;
    const double mean_us =
        stats.count == 0
            ? 0.0
            : static_cast<double>(stats.total_ns) * 1e-3 /
                  static_cast<double>(stats.count);
    std::printf("%-28s%12zu%12.2f%12.2f\n", name.c_str(),
                static_cast<size_t>(stats.count), total_ms, mean_us);
  }
  if (session.dropped() > 0) {
    std::printf("(%zu span(s) dropped by ring overflow — totals are lower "
                "bounds)\n",
                static_cast<size_t>(session.dropped()));
  }
}

}  // namespace ccs::bench

#endif  // CCS_BENCH_BENCH_UTIL_H_
