// Shared formatting helpers for the figure/table reproduction binaries.

#ifndef CCS_BENCH_BENCH_UTIL_H_
#define CCS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace ccs::bench {

/// Prints a banner naming the experiment being reproduced.
inline void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Prints one row of right-aligned numeric cells after a left label.
inline void Row(const std::string& label, const std::vector<double>& cells,
                const char* fmt = "%12.4f") {
  std::printf("%-28s", label.c_str());
  for (double c : cells) std::printf(fmt, c);
  std::printf("\n");
}

/// Prints a header row of column titles aligned with Row's cells.
inline void Header(const std::string& label,
                   const std::vector<std::string>& columns) {
  std::printf("%-28s", label.c_str());
  for (const std::string& c : columns) std::printf("%12s", c.c_str());
  std::printf("\n");
}

/// Aborts with a message if a Status is not OK (benches are top-level
/// programs; any failure is a bug in the harness).
inline void CheckOk(const Status& status) {
  CCS_CHECK(status.ok()) << status.ToString();
}

}  // namespace ccs::bench

#endif  // CCS_BENCH_BENCH_UTIL_H_
