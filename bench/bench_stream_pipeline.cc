// Streaming-serving throughput: rows/sec of the pipelined StreamPipeline
// (ingest || windowing || pool-parallel scoring with ordered commit and
// periodic incremental refresh) at 1, 2, 4, and N scoring lanes, against
// the serial baseline (parse everything, then ObserveWindow window by
// window with the same refresh cadence). Every pipeline run's WindowScore
// history is checked bitwise identical to the serial loop's before any
// number is reported — the determinism contract is a precondition of the
// benchmark, not an afterthought.
//
// A final section measures observability overhead: the same run with an
// active obs::ObsSession (spans recording into per-thread rings) against
// one without, plus a per-stage breakdown of where the wall time went.
// Pass --quick for a CI-sized run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/monitor.h"
#include "dataframe/csv.h"
#include "obs/trace.h"
#include "stream/pipeline.h"
#include "stream/windower.h"

namespace {

using namespace ccs;  // NOLINT

constexpr size_t kAttributes = 32;
constexpr size_t kRefreshEvery = 16;
constexpr double kThreshold = 0.2;

double Seconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

double BestSeconds(const std::function<void()>& fn, int reps = 3) {
  double best = Seconds(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, Seconds(fn));
  return best;
}

// Correlated numeric columns following a shared latent factor. From row
// `drift_from` on, odd-indexed columns drop off the factor (a shift along
// the factor itself would stay inside the low-variance projections — the
// paper's point that conformance constraints track relationship drift,
// not magnitude drift).
dataframe::DataFrame LatentFactorFrame(size_t rows, uint64_t seed,
                                       size_t drift_from) {
  Rng rng(seed);
  std::vector<std::vector<double>> cols(kAttributes, std::vector<double>(rows));
  for (size_t r = 0; r < rows; ++r) {
    double base = rng.Gaussian(0.0, 1.0);
    double broken = r >= drift_from ? 4.0 : 0.0;
    for (size_t c = 0; c < kAttributes; ++c) {
      double factor = c % 2 == 1 ? base + broken : base;
      cols[c][r] = factor * (0.2 + 0.05 * static_cast<double>(c)) +
                   rng.Gaussian(0.0, 0.1);
    }
  }
  dataframe::DataFrame df;
  for (size_t c = 0; c < kAttributes; ++c) {
    bench::CheckOk(
        df.AddNumericColumn("a" + std::to_string(c), std::move(cols[c])));
  }
  return df;
}

// The serial baseline: the whole stream parsed up front, then the plain
// ObserveWindow loop with the pipeline's refresh cadence.
std::vector<core::WindowScore> SerialLoop(
    const dataframe::DataFrame& reference, const std::string& csv_text,
    const stream::StreamPipelineOptions& options) {
  auto monitor = core::StreamMonitor::Create(reference, options.alarm_threshold,
                                             options.synthesis);
  bench::CheckOk(monitor.status());
  core::IncrementalSynthesizer profile(reference.NumericNames(),
                                       options.synthesis);
  if (options.refresh_every > 0) {
    bench::CheckOk(profile.ObserveAll(reference));
  }
  std::istringstream in(csv_text);
  auto stream_df = dataframe::ReadCsv(in);
  bench::CheckOk(stream_df.status());
  auto windower =
      stream::Windower::Create(options.window_rows, options.slide_rows);
  bench::CheckOk(windower.status());
  auto windows = windower->Push(*stream_df);
  bench::CheckOk(windows.status());
  size_t scored = 0;
  for (const dataframe::DataFrame& window : *windows) {
    bench::CheckOk(monitor->ObserveWindow(window).status());
    ++scored;
    if (options.refresh_every > 0) {
      bench::CheckOk(profile.ObserveAll(window));
      if (scored % options.refresh_every == 0) {
        auto refreshed = profile.Synthesize();
        bench::CheckOk(refreshed.status());
        bench::CheckOk(monitor->RefreshReference(*refreshed));
      }
    }
  }
  return monitor->history();
}

void CheckBitwiseEqual(const std::vector<core::WindowScore>& serial,
                       const std::vector<core::WindowScore>& pipeline,
                       size_t threads) {
  CCS_CHECK(serial.size() == pipeline.size())
      << "window count diverged at " << threads << " thread(s)";
  for (size_t i = 0; i < serial.size(); ++i) {
    CCS_CHECK(serial[i].window_index == pipeline[i].window_index &&
              serial[i].drift == pipeline[i].drift &&  // Exact doubles.
              serial[i].alarm == pipeline[i].alarm)
        << "pipeline score " << i << " diverged from the serial loop at "
        << threads << " thread(s)";
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // Full-size geometry reproduces the throughput table; --quick keeps
  // the same shape (several windows per refresh, drift halfway) at CI
  // scale.
  const size_t reference_rows = quick ? 1000 : 4000;
  const size_t stream_rows = quick ? 8000 : 48000;
  const size_t window_rows = quick ? 256 : 512;
  const int reps = quick ? 2 : 3;

  bench::Banner(
      std::string(quick ? "(--quick) " : "") +
      "Streaming-serving throughput (stream::StreamPipeline)\n" +
      std::to_string(stream_rows) + "-row CSV stream x 32 attrs, " +
      std::to_string(window_rows) + "-row tumbling windows,\n" +
      "profile refresh every 16 windows, drift from row " +
      std::to_string(stream_rows / 2));

  dataframe::DataFrame reference = LatentFactorFrame(reference_rows, 42, ~0ull);
  std::string csv_text;
  {
    std::ostringstream out;
    bench::CheckOk(dataframe::WriteCsv(
        LatentFactorFrame(stream_rows, 43, stream_rows / 2), out));
    csv_text = out.str();
  }

  stream::StreamPipelineOptions options;
  options.window_rows = window_rows;
  options.alarm_threshold = kThreshold;
  options.refresh_every = kRefreshEvery;
  options.chunk_rows = 2048;
  options.queue_capacity = 8;

  // Serial baseline: parse + windowing + scoring on one lane, one after
  // the other.
  common::SetDefaultThreadCount(1);
  std::vector<core::WindowScore> serial =
      SerialLoop(reference, csv_text, options);
  size_t serial_alarms = 0;
  for (const core::WindowScore& s : serial) serial_alarms += s.alarm ? 1 : 0;
  CCS_CHECK(serial_alarms > 0) << "drift scenario failed to alarm";
  double serial_sec = BestSeconds(
      [&] { SerialLoop(reference, csv_text, options); }, reps);
  common::SetDefaultThreadCount(0);

  size_t hardware = std::max<size_t>(std::thread::hardware_concurrency(), 1);
  std::vector<size_t> lanes = {1, 2, 4, hardware};
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());

  std::printf("\n%-28s%12s%14s%10s\n", "path", "rows/sec", "wall (ms)",
              "speedup");
  std::printf("%-28s%12.0f%14.2f%10s\n", "serial ObserveWindow loop",
              static_cast<double>(stream_rows) / serial_sec, serial_sec * 1e3,
              "1.00x");

  for (size_t t : lanes) {
    options.num_threads = t;
    double sec = BestSeconds([&] {
      auto pipeline = stream::StreamPipeline::Create(reference, options);
      bench::CheckOk(pipeline.status());
      std::istringstream in(csv_text);
      auto stats = pipeline->Run(in);
      bench::CheckOk(stats.status);
      CheckBitwiseEqual(serial, pipeline->history(), t);
    }, reps);
    std::string label = "pipeline, " + std::to_string(t) +
                        (t == 1 ? " score lane" : " score lanes");
    std::printf("%-28s%12.0f%14.2f%9.2fx\n", label.c_str(),
                static_cast<double>(stream_rows) / sec, sec * 1e3,
                serial_sec / sec);
  }

  std::printf(
      "\n(%zu hardware threads; every pipeline history bitwise identical to\n"
      "the serial loop — ingest/windowing overlap scoring, so speedup > 1 is\n"
      "expected even at 1 score lane on multicore hardware)\n",
      hardware);

  // ---- Observability overhead --------------------------------------
  // Same pipeline, same geometry, at the widest lane count: once with
  // no session (spans compile to a null-ring check) and once with an
  // active ObsSession recording every stage/task span. The committed
  // histories stay bitwise identical either way — only the wall clock
  // may move, and it must move by less than 5%.
  bench::Banner("Observability overhead (active ObsSession vs none)");
  options.num_threads = hardware;
  auto timed_run = [&] {
    auto pipeline = stream::StreamPipeline::Create(reference, options);
    bench::CheckOk(pipeline.status());
    std::istringstream in(csv_text);
    auto stats = pipeline->Run(in);
    bench::CheckOk(stats.status);
    CheckBitwiseEqual(serial, pipeline->history(), options.num_threads);
  };
  double off_sec = BestSeconds(timed_run, reps);
  double on_sec = BestSeconds(
      [&] {
        obs::ObsSession session;
        timed_run();
      },
      reps);
  const double overhead_pct = (on_sec / off_sec - 1.0) * 100.0;
  std::printf("\n%-28s%12s%14s\n", "mode", "rows/sec", "wall (ms)");
  std::printf("%-28s%12.0f%14.2f\n", "tracing off",
              static_cast<double>(stream_rows) / off_sec, off_sec * 1e3);
  std::printf("%-28s%12.0f%14.2f\n", "tracing on",
              static_cast<double>(stream_rows) / on_sec, on_sec * 1e3);
  std::printf("\nactive-session overhead: %+.2f%% (target < 5%%)\n",
              overhead_pct);

  // Where the traced wall time went, from one more recorded run.
  {
    obs::ObsSession session;
    timed_run();
    std::printf("\n");
    bench::PrintStageBreakdown(session);
  }
  return 0;
}
