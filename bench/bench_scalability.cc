// Reproduces the §6 "Efficiency" claim and the §4.3 complexity analysis
// with google-benchmark: synthesis cost is LINEAR in the number of rows
// and CUBIC in the number of attributes (Gram build O(n m^2) + eigen
// O(m^3)); violation scoring is linear in rows.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/drift.h"
#include "core/synthesizer.h"
#include "dataframe/dataframe.h"
#include "linalg/gram.h"

namespace {

using namespace ccs;  // NOLINT

dataframe::DataFrame MakeData(size_t rows, size_t attrs, uint64_t seed) {
  Rng rng(seed);
  dataframe::DataFrame df;
  for (size_t j = 0; j < attrs; ++j) {
    std::vector<double> col(rows);
    for (size_t i = 0; i < rows; ++i) {
      col[i] = rng.Gaussian(0.0, 1.0 + static_cast<double>(j));
    }
    CCS_CHECK(df.AddNumericColumn("a" + std::to_string(j), std::move(col))
                  .ok());
  }
  return df;
}

// Linear-in-rows: fixed m = 10, sweep n.
void BM_SynthesisVsRows(benchmark::State& state) {
  auto rows = static_cast<size_t>(state.range(0));
  dataframe::DataFrame df = MakeData(rows, 10, 1);
  core::Synthesizer synth;
  for (auto _ : state) {
    auto constraint = synth.SynthesizeSimple(df);
    benchmark::DoNotOptimize(constraint);
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_SynthesisVsRows)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Complexity(benchmark::oN);

// Cubic-in-attributes upper bound: fixed n = 2000, sweep m. (Gram build
// is O(n m^2); the eigensolve contributes the m^3 term.)
void BM_SynthesisVsAttributes(benchmark::State& state) {
  auto attrs = static_cast<size_t>(state.range(0));
  dataframe::DataFrame df = MakeData(2000, attrs, 2);
  core::Synthesizer synth;
  for (auto _ : state) {
    auto constraint = synth.SynthesizeSimple(df);
    benchmark::DoNotOptimize(constraint);
  }
  state.SetComplexityN(static_cast<int64_t>(attrs));
}
BENCHMARK(BM_SynthesisVsAttributes)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity(benchmark::oNCubed);

// Streaming Gram ingestion: O(m^2) per tuple, O(m^2) memory.
void BM_GramIngestPerTuple(benchmark::State& state) {
  auto attrs = static_cast<size_t>(state.range(0));
  Rng rng(3);
  linalg::Vector tuple(attrs);
  for (size_t j = 0; j < attrs; ++j) tuple[j] = rng.Gaussian();
  linalg::GramAccumulator gram(attrs);
  for (auto _ : state) {
    gram.Add(tuple);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GramIngestPerTuple)->RangeMultiplier(2)->Range(4, 64);

// Violation scoring throughput (tuples/second), m = 10.
void BM_ViolationScoring(benchmark::State& state) {
  auto rows = static_cast<size_t>(state.range(0));
  dataframe::DataFrame train = MakeData(20000, 10, 4);
  dataframe::DataFrame serving = MakeData(rows, 10, 5);
  core::ConformanceDriftQuantifier quantifier;
  CCS_CHECK(quantifier.Fit(train).ok());
  for (auto _ : state) {
    auto score = quantifier.Score(serving);
    benchmark::DoNotOptimize(score);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_ViolationScoring)
    ->RangeMultiplier(4)
    ->Range(1000, 64000)
    ->Complexity(benchmark::oN);

// Disjunctive synthesis adds only a constant factor per partition value.
void BM_DisjunctiveSynthesis(benchmark::State& state) {
  auto partitions = static_cast<size_t>(state.range(0));
  Rng rng(6);
  dataframe::DataFrame df = MakeData(20000, 8, 7);
  std::vector<std::string> part(20000);
  for (size_t i = 0; i < part.size(); ++i) {
    part[i] = "p" + std::to_string(i % partitions);
  }
  CCS_CHECK(df.AddCategoricalColumn("part", std::move(part)).ok());
  core::Synthesizer synth;
  for (auto _ : state) {
    auto constraint = synth.Synthesize(df);
    benchmark::DoNotOptimize(constraint);
  }
}
BENCHMARK(BM_DisjunctiveSynthesis)->RangeMultiplier(2)->Range(2, 32);

}  // namespace

BENCHMARK_MAIN();
