// Reproduces Fig. 5: tuple-level relationship between conformance
// violation and absolute regression error on 1000 sampled Mixed tuples,
// ordered by decreasing violation.
//
// Paper shape: high-violation tuples (left) all have high error (no false
// positives); a few low-violation tuples still err (few false negatives);
// overall positive correlation. We print a bucketed summary of the sorted
// series plus the Pearson correlation.

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/tml.h"
#include "ml/linear_regression.h"
#include "ml/metrics.h"
#include "stats/correlation.h"
#include "synth/airlines.h"

namespace {

using namespace ccs;  // NOLINT

void Run() {
  bench::Banner(
      "Fig. 5 — Per-tuple violation vs absolute prediction error\n"
      "(1000 Mixed tuples, sorted by decreasing violation)");

  Rng rng(7);
  auto benchmark = synth::MakeAirlinesBenchmark(20000, 2000, &rng);
  bench::CheckOk(benchmark.status());
  auto envelope = core::SafetyEnvelope::Fit(benchmark->train, {"delay"});
  bench::CheckOk(envelope.status());

  std::vector<std::string> names =
      benchmark->train.DropColumns({"delay"})->NumericNames();
  ml::LinearRegressionOptions options;
  options.l2_penalty = 1.0;
  auto model = ml::LinearRegression::Fit(
      benchmark->train.NumericMatrixFor(names).value(),
      benchmark->train.ColumnByName("delay").value()->ToVector(), options);
  bench::CheckOk(model.status());

  dataframe::DataFrame sample = benchmark->mixed.Sample(1000, &rng);
  auto assessments = envelope->AssessAll(sample);
  bench::CheckOk(assessments.status());
  auto x = sample.NumericMatrixFor(names);
  bench::CheckOk(x.status());
  auto truth = sample.ColumnByName("delay").value()->ToVector();
  auto errors = ml::AbsoluteErrors(truth, model->PredictAll(*x));
  bench::CheckOk(errors.status());

  linalg::Vector violations(sample.num_rows());
  for (size_t i = 0; i < sample.num_rows(); ++i) {
    violations[i] = (*assessments)[i].violation;
  }

  // Sort tuples by decreasing violation (the Fig. 5 x-axis).
  std::vector<size_t> order(sample.num_rows());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return violations[a] > violations[b];
  });

  bench::Header("tuple-rank bucket",
                {"avg viol", "avg |err|", "max |err|"});
  const size_t buckets = 10;
  const size_t per_bucket = order.size() / buckets;
  for (size_t b = 0; b < buckets; ++b) {
    double v = 0.0, e = 0.0, emax = 0.0;
    for (size_t i = b * per_bucket; i < (b + 1) * per_bucket; ++i) {
      v += violations[order[i]];
      e += (*errors)[order[i]];
      emax = std::max(emax, (*errors)[order[i]]);
    }
    char label[64];
    std::snprintf(label, sizeof(label), "  %4zu - %4zu", b * per_bucket,
                  (b + 1) * per_bucket - 1);
    bench::Row(label, {v / per_bucket, e / per_bucket, emax});
  }

  auto test = stats::PearsonTest(violations, *errors);
  bench::CheckOk(test.status());
  std::printf("\nPearson corr(violation, |error|) = %.3f (p = %.2e)\n",
              test->pcc, test->p_value);
  std::printf(
      "Check: top buckets have both high violation and high error (no false"
      "\npositives); correlation strongly positive, as in the paper.\n");
}

}  // namespace

int main() {
  Run();
  return 0;
}
