// Ablation study over the design choices DESIGN.md calls out:
//  (1) bound multiplier C in mu +/- C sigma;
//  (2) importance mapping 1/log(2+sigma) vs alternatives;
//  (3) which projections to keep (all / low-variance / high-variance) —
//      the paper's "opposite of classic PCA" point;
//  (4) disjunctions on vs off for local drift (EVL 4CR);
//  (5) linear vs degree-2 kernelized constraints on a nonlinear stream.
//
// Metric: separation = violation(drifted) - violation(held-out clean);
// higher is better. False-alarm proxy = violation(held-out clean).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/drift.h"
#include "core/kernel.h"
#include "core/synthesizer.h"
#include "core/tree.h"
#include "synth/evl.h"
#include "synth/har.h"

namespace {

using namespace ccs;  // NOLINT

struct Scenario {
  dataframe::DataFrame train;
  dataframe::DataFrame clean;    // Held-out, same distribution.
  dataframe::DataFrame drifted;  // Off-profile.
};

Scenario HarScenario(uint64_t seed) {
  Rng rng(seed);
  auto persons = synth::HarPersons(6);
  Scenario s;
  s.train = *synth::GenerateHar(persons, synth::SedentaryActivities(), 80,
                                &rng);
  s.clean = *synth::GenerateHar(persons, synth::SedentaryActivities(), 40,
                                &rng);
  s.drifted =
      *synth::GenerateHar(persons, synth::MobileActivities(), 40, &rng);
  return s;
}

void Evaluate(const char* label, const core::SynthesisOptions& options,
              const Scenario& s) {
  core::ConformanceDriftQuantifier quantifier(options);
  bench::CheckOk(quantifier.Fit(s.train));
  double clean = quantifier.Score(s.clean).value();
  double drifted = quantifier.Score(s.drifted).value();
  bench::Row(label, {clean, drifted, drifted - clean});
}

void Run() {
  bench::Banner("Ablation — design choices of the synthesizer");
  Scenario har = HarScenario(31);

  std::printf("\n(1) Bound multiplier C (paper: 4)\n");
  bench::Header("", {"clean", "drifted", "separation"});
  for (double c : {1.0, 2.0, 4.0, 8.0}) {
    core::SynthesisOptions options;
    options.bound_multiplier = c;
    Evaluate(("  C = " + std::to_string(static_cast<int>(c))).c_str(),
             options, har);
  }
  std::printf(
      "Check: small C flags clean data too (false alarms); large C shrinks\n"
      "separation. C = 4 keeps clean ~0 with strong separation.\n");

  std::printf("\n(2) Importance mapping (paper: 1/log(2+sigma))\n");
  bench::Header("", {"clean", "drifted", "separation"});
  {
    core::SynthesisOptions options;
    options.importance_mapping = core::ImportanceMapping::kInverseLog;
    Evaluate("  1/log(2+sigma)", options, har);
    options.importance_mapping = core::ImportanceMapping::kInverseLinear;
    Evaluate("  1/(1+sigma)", options, har);
    options.importance_mapping = core::ImportanceMapping::kUniform;
    Evaluate("  uniform", options, har);
  }

  std::printf("\n(3) Retained projections (paper keeps ALL, weighted)\n");
  bench::Header("", {"clean", "drifted", "separation"});
  {
    core::SynthesisOptions options;
    options.projection_filter = core::ProjectionFilter::kAll;
    Evaluate("  all", options, har);
    options.projection_filter = core::ProjectionFilter::kLowVarianceHalf;
    Evaluate("  low-variance half", options, har);
    options.projection_filter = core::ProjectionFilter::kHighVarianceHalf;
    Evaluate("  high-variance half", options, har);
    options.projection_filter = core::ProjectionFilter::kMinimumVarianceOnly;
    Evaluate("  min-variance only (TLS)", options, har);
  }
  std::printf(
      "Check: low-variance half ~ all >> high-variance half — the paper's\n"
      "core claim that LOW-variance components carry the signal. The\n"
      "single TLS-style projection (Appendix L) can separate strongly when\n"
      "one invariant dominates (as here) but pays ~15x the clean-data\n"
      "violation (false alarms) and captures only one aspect: drift in any\n"
      "other direction is invisible to it.\n");

  std::printf("\n(4) Disjunctions on local drift (EVL 4CR, t=0 vs t=0.5)\n");
  bench::Header("", {"clean", "drifted", "separation"});
  {
    Rng rng(37);
    Scenario local;
    local.train = *synth::GenerateEvlWindow("4CR", 0.0, 1500, &rng);
    local.clean = *synth::GenerateEvlWindow("4CR", 0.0, 700, &rng);
    local.drifted = *synth::GenerateEvlWindow("4CR", 0.5, 700, &rng);
    core::SynthesisOptions options;
    options.include_disjunctive = true;
    Evaluate("  with disjunctions", options, local);
    options.include_disjunctive = false;
    Evaluate("  global only", options, local);
    std::printf(
        "Check: with disjunctions the class swap is caught; global-only\n"
        "barely moves (the union distribution is unchanged).\n");
  }

  std::printf("\n(5) Linear vs degree-2 kernel on a circular invariant\n");
  bench::Header("", {"clean", "drifted", "separation"});
  {
    Rng rng(41);
    auto ring = [&](double radius, size_t n) {
      std::vector<double> x(n), y(n);
      for (size_t i = 0; i < n; ++i) {
        double theta = rng.Uniform(0.0, 6.28318);
        double r = radius + rng.Gaussian(0.0, 0.05);
        x[i] = r * std::cos(theta);
        y[i] = r * std::sin(theta);
      }
      dataframe::DataFrame df;
      CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
      CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
      return df;
    };
    Scenario circle;
    circle.train = ring(5.0, 1200);
    circle.clean = ring(5.0, 500);
    circle.drifted = ring(3.0, 500);  // Inner ring: nonlinear drift.

    core::SynthesisOptions options;
    Evaluate("  linear", options, circle);

    Scenario expanded;
    expanded.train = *core::ExpandPolynomial(circle.train);
    expanded.clean = *core::ExpandPolynomial(circle.clean);
    expanded.drifted = *core::ExpandPolynomial(circle.drifted);
    Evaluate("  degree-2 kernel", options, expanded);
    std::printf(
        "Check: linear constraints cannot see the radius change; the\n"
        "degree-2 expansion (x^2 + y^2 invariant) separates cleanly.\n");
  }

  std::printf(
      "\n(6) Flat disjunctions vs decision-tree constraints (§8 extension)\n");
  bench::Header("", {"clean", "drifted", "separation"});
  {
    // HAR scenario again: the tree splits on activity (and person where
    // useful) instead of taking every categorical attribute at once.
    Scenario s = HarScenario(43);
    core::SynthesisOptions options;
    Evaluate("  flat (paper §4.2)", options, s);

    core::TreeOptions tree_options;
    tree_options.max_depth = 2;
    auto tree = core::ConstraintTree::Fit(s.train, tree_options);
    bench::CheckOk(tree.status());
    double clean = tree->MeanViolation(s.clean).value();
    double drifted = tree->MeanViolation(s.drifted).value();
    bench::Row("  constraint tree", {clean, drifted, drifted - clean});
    std::printf(
        "Check: the tree matches or beats the flat profile by routing each\n"
        "tuple to the constraint of its own (person, activity) context.\n");
  }
}

}  // namespace

int main() {
  Run();
  return 0;
}
