// Reproduces Fig. 8: drift quantification over time on all 16 EVL
// benchmark datasets, comparing CCSynth against CD-MKL, CD-Area, and
// PCA-SPLL (25%). Each method's series is min-max normalized, as in the
// paper's plots.
//
// Paper shape: CCSynth tracks the ground-truth drift pattern on all 16
// (monotone rise for translations/expansions, rise-and-return for
// rotations); PCA-SPLL misses local drift (4CR, 4CRE-V2, FG-2C-2D); CD
// variants are noisy and miss magnitude differences.

#include <cstdio>

#include "baselines/cd.h"
#include "baselines/pca_spll.h"
#include "baselines/wpca.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "core/drift.h"
#include "synth/evl.h"

namespace {

using namespace ccs;  // NOLINT

constexpr size_t kWindows = 11;
constexpr size_t kRowsPerWindow = 600;

void Run() {
  bench::Banner(
      "Fig. 8 — EVL benchmark: normalized drift magnitude per time window\n"
      "methods: CC (CCSynth), SPLL (PCA-SPLL 25%), MKL (CD-MKL), "
      "Area (CD-Area)");

  for (const std::string& dataset : synth::EvlDatasetNames()) {
    Rng rng(std::hash<std::string>{}(dataset) | 1ull);
    auto stream = synth::GenerateEvlStream(dataset, kWindows,
                                           kRowsPerWindow, &rng);
    bench::CheckOk(stream.status());

    baselines::ConformanceDetector cc;
    baselines::PcaSpll spll;
    baselines::ChangeDetection cd_area;
    baselines::CdOptions mkl_options;
    mkl_options.metric = baselines::CdMetric::kMkl;
    baselines::ChangeDetection cd_mkl(mkl_options);

    struct Series {
      const char* name;
      std::vector<double> values;
    };
    std::vector<Series> all;
    auto cc_series = baselines::ScoreSeries(&cc, *stream);
    bench::CheckOk(cc_series.status());
    all.push_back({"CC", core::NormalizeSeries(*cc_series)});
    auto spll_series = baselines::ScoreSeries(&spll, *stream);
    bench::CheckOk(spll_series.status());
    all.push_back({"SPLL", core::NormalizeSeries(*spll_series)});
    auto mkl_series = baselines::ScoreSeries(&cd_mkl, *stream);
    bench::CheckOk(mkl_series.status());
    all.push_back({"MKL", core::NormalizeSeries(*mkl_series)});
    auto area_series = baselines::ScoreSeries(&cd_area, *stream);
    bench::CheckOk(area_series.status());
    all.push_back({"Area", core::NormalizeSeries(*area_series)});

    std::printf("\n--- %s ---\n", dataset.c_str());
    std::printf("%-8s", "t:");
    for (size_t w = 0; w < kWindows; ++w) {
      std::printf("%6.2f", static_cast<double>(w) / (kWindows - 1));
    }
    std::printf("\n");
    for (const Series& s : all) {
      std::printf("%-8s", s.name);
      for (double v : s.values) std::printf("%6.2f", v);
      std::printf("\n");
    }
  }

  std::printf(
      "\nCheck (paper's Fig. 8): CC rises smoothly on translation datasets\n"
      "(1CDT, 2CDT, 1CHT, 2CHT, 5CVT, UG-*, MG-*, FG-*), rises and returns\n"
      "on rotations (4CR, 1CSurr, GEARS-2C-2D), and grows on expansions\n"
      "(4CRE-*, 4CE1CF). SPLL under-reacts on locally-drifting datasets\n"
      "(4CR, 4CRE-V2, FG-2C-2D) where classes swap but the global\n"
      "footprint is stable.\n");
}

}  // namespace

int main() {
  Run();
  return 0;
}
