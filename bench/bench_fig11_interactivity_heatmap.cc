// Reproduces Fig. 11 (appendix): inter-activity violation heat map.
// Mobile activities violate sedentary profiles far more than the other
// way around — sedentary micro-patterns are briefly contained within
// mobile behaviour ("while a person walks, they also stand"), so the
// asymmetry is expected.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/drift.h"
#include "synth/har.h"

namespace {

using namespace ccs;  // NOLINT

void Run() {
  bench::Banner(
      "Fig. 11 — Inter-activity violation heat map (row = profile owner,\n"
      "column = scored activity; all persons pooled)");

  Rng rng(19);
  auto persons = synth::HarPersons(6);
  auto activities = synth::AllActivities();

  std::vector<core::ConformanceDriftQuantifier> profiles(activities.size());
  std::vector<dataframe::DataFrame> holdouts(activities.size());
  for (size_t i = 0; i < activities.size(); ++i) {
    auto train = synth::GenerateHar(persons, {activities[i]}, 80, &rng);
    auto test = synth::GenerateHar(persons, {activities[i]}, 80, &rng);
    bench::CheckOk(train.status());
    bench::CheckOk(test.status());
    bench::CheckOk(
        profiles[i].Fit(train->DropColumns({"activity"}).value()));
    holdouts[i] = test->DropColumns({"activity"}).value();
  }

  bench::Header("", activities);
  double mobile_on_sedentary = 0.0, sedentary_on_mobile = 0.0;
  size_t mos_count = 0, som_count = 0;
  auto is_mobile = [&](const std::string& a) {
    for (const auto& m : synth::MobileActivities()) {
      if (m == a) return true;
    }
    return false;
  };
  for (size_t i = 0; i < activities.size(); ++i) {
    std::vector<double> row;
    for (size_t j = 0; j < activities.size(); ++j) {
      double v = profiles[i].Score(holdouts[j]).value();
      row.push_back(v);
      if (!is_mobile(activities[i]) && is_mobile(activities[j])) {
        mobile_on_sedentary += v;
        ++mos_count;
      }
      if (is_mobile(activities[i]) && !is_mobile(activities[j])) {
        sedentary_on_mobile += v;
        ++som_count;
      }
    }
    bench::Row(activities[i], row, "%12.3f");
  }

  std::printf("\nmobile data vs sedentary profiles  = %.4f\n",
              mobile_on_sedentary / mos_count);
  std::printf("sedentary data vs mobile profiles  = %.4f\n",
              sedentary_on_mobile / som_count);
  std::printf(
      "Paper: the first number is clearly larger (asymmetric violations).\n");
}

}  // namespace

int main() {
  Run();
  return 0;
}
