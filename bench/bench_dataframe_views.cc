// Throughput of the zero-copy DataFrame view layer vs. the pre-view
// deep-copy semantics it replaced.
//
// Four hot paths, each measured twice over the same data:
//   PartitionBy  — dictionary-code grouping emitting row-index views,
//                  vs. the legacy path: string-keyed grouping + a full
//                  per-partition cell copy (doubles and strings).
//   Filter       — selection-vector view vs. legacy row-by-row copy.
//   Windowing    — the rolling-buffer Windower (O(window) per emit),
//                  vs. the legacy Concat + Slice buffer rebuild.
//   Scoring      — ViolationAll walking a Filter view through the
//                  MatrixView kernel, vs. materializing a Matrix first
//                  (see bench_matrix_view for the full kernel study).
//
// Every pair is CHECKed bitwise-equal before a number is reported: a
// speedup over a divergent computation would be meaningless. Pass
// --quick for a CI-sized run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/constraint.h"
#include "core/projection.h"
#include "dataframe/dataframe.h"
#include "stream/windower.h"

namespace {

using namespace ccs;  // NOLINT
using dataframe::Column;
using dataframe::DataFrame;

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// Rows x (8 numeric + 2 categorical): a 12-value skewed switch
// attribute (the disjunctive-synthesis shape) and a binary flag.
DataFrame MakeFrame(size_t rows, uint64_t seed) {
  Rng rng(seed);
  DataFrame df;
  for (size_t c = 0; c < 8; ++c) {
    std::vector<double> col(rows);
    for (size_t i = 0; i < rows; ++i) col[i] = rng.Gaussian(0.0, 1.0);
    bench::CheckOk(df.AddNumericColumn("a" + std::to_string(c),
                                       std::move(col)));
  }
  std::vector<std::string> segment(rows), flag(rows);
  for (size_t i = 0; i < rows; ++i) {
    // Zipf-ish skew: value 0 dominates, tail values are rare.
    int64_t r = rng.UniformInt(0, 99);
    int v = r < 40 ? 0 : r < 60 ? 1 : r < 75 ? 2 : static_cast<int>(r % 12);
    segment[i] = "seg" + std::to_string(v);
    flag[i] = (r & 1) ? "hot" : "cold";
  }
  bench::CheckOk(df.AddCategoricalColumn("segment", std::move(segment)));
  bench::CheckOk(df.AddCategoricalColumn("flag", std::move(flag)));
  return df;
}

// The pre-view reference semantics: deep-copy the selected rows cell by
// cell (numeric values and categorical strings), exactly what
// Filter/Gather/PartitionBy did before the selection-vector layer.
DataFrame GatherByCopy(const DataFrame& df, const std::vector<size_t>& rows) {
  DataFrame out;
  for (size_t c = 0; c < df.num_columns(); ++c) {
    const std::string& name = df.schema().attribute(c).name;
    const Column& col = df.column(c);
    if (col.is_numeric()) {
      std::vector<double> values;
      values.reserve(rows.size());
      for (size_t r : rows) values.push_back(col.NumericAt(r));
      bench::CheckOk(out.AddNumericColumn(name, std::move(values)));
    } else {
      std::vector<std::string> values;
      values.reserve(rows.size());
      for (size_t r : rows) values.push_back(col.CategoricalAt(r));
      bench::CheckOk(out.AddCategoricalColumn(name, std::move(values)));
    }
  }
  return out;
}

void CheckFramesEqual(const DataFrame& a, const DataFrame& b) {
  CCS_CHECK(a.schema() == b.schema());
  CCS_CHECK(a.num_rows() == b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (ca.is_numeric()) {
        double va = ca.NumericAt(r), vb = cb.NumericAt(r);
        CCS_CHECK(std::memcmp(&va, &vb, sizeof(double)) == 0);
      } else {
        CCS_CHECK(ca.CategoricalAt(r) == cb.CategoricalAt(r));
      }
    }
  }
}

struct Measurement {
  double legacy_seconds = 0.0;
  double view_seconds = 0.0;
};

void Report(const std::string& label, size_t rows_processed,
            const Measurement& m) {
  std::printf("%-28s%12.0f%14.2f%10s\n", (label + ", legacy").c_str(),
              rows_processed / m.legacy_seconds, m.legacy_seconds * 1e3,
              "1.00x");
  std::printf("%-28s%12.0f%14.2f%9.2fx\n", (label + ", views").c_str(),
              rows_processed / m.view_seconds, m.view_seconds * 1e3,
              m.legacy_seconds / m.view_seconds);
}

Measurement BenchPartitionBy(const DataFrame& df, size_t reps) {
  Measurement m;
  // Legacy: string-keyed grouping, then a materialized copy per group.
  auto begin = std::chrono::steady_clock::now();
  std::map<std::string, DataFrame> legacy;
  for (size_t rep = 0; rep < reps; ++rep) {
    legacy.clear();
    auto segment = df.ColumnByName("segment");
    bench::CheckOk(segment.status());
    std::map<std::string, std::vector<size_t>> groups;
    for (size_t i = 0; i < df.num_rows(); ++i) {
      groups[(*segment)->CategoricalAt(i)].push_back(i);
    }
    for (const auto& [value, rows] : groups) {
      legacy.emplace(value, GatherByCopy(df, rows));
    }
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  begin = std::chrono::steady_clock::now();
  std::map<std::string, DataFrame> views;
  for (size_t rep = 0; rep < reps; ++rep) {
    auto parts = df.PartitionBy("segment");
    bench::CheckOk(parts.status());
    views = std::move(parts).value();
  }
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CCS_CHECK(views.size() == legacy.size());
  for (const auto& [value, part] : views) {
    CheckFramesEqual(part, legacy.at(value));
  }
  return m;
}

Measurement BenchFilter(const DataFrame& df, size_t reps) {
  auto pred = [&](size_t i) {
    return df.column(0).NumericAt(i) > 0.0;  // ~half the rows.
  };
  Measurement m;
  auto begin = std::chrono::steady_clock::now();
  DataFrame legacy;
  for (size_t rep = 0; rep < reps; ++rep) {
    std::vector<size_t> keep;
    for (size_t i = 0; i < df.num_rows(); ++i) {
      if (pred(i)) keep.push_back(i);
    }
    legacy = GatherByCopy(df, keep);
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  begin = std::chrono::steady_clock::now();
  DataFrame view;
  for (size_t rep = 0; rep < reps; ++rep) view = df.Filter(pred);
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CheckFramesEqual(view, legacy);
  return m;
}

Measurement BenchWindowing(const DataFrame& df, size_t window, size_t slide,
                           size_t chunk) {
  // Legacy emulation: rolling DataFrame rebuilt by Concat, windows cut
  // out (and materialized, as Slice used to deep-copy) per emit.
  Measurement m;
  std::vector<DataFrame> legacy_windows;
  auto begin = std::chrono::steady_clock::now();
  {
    DataFrame buffer;
    for (size_t pos = 0; pos < df.num_rows(); pos += chunk) {
      DataFrame piece = df.Slice(pos, pos + chunk);
      if (buffer.num_columns() == 0) {
        buffer = piece.Materialize();
      } else {
        auto merged = buffer.Concat(piece);
        bench::CheckOk(merged.status());
        buffer = std::move(merged).value();
      }
      while (buffer.num_rows() >= window) {
        legacy_windows.push_back(buffer.Slice(0, window).Materialize());
        buffer = buffer.Slice(slide, buffer.num_rows()).Materialize();
      }
    }
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  std::vector<DataFrame> view_windows;
  begin = std::chrono::steady_clock::now();
  {
    auto windower = stream::Windower::Create(window, slide);
    bench::CheckOk(windower.status());
    for (size_t pos = 0; pos < df.num_rows(); pos += chunk) {
      auto out = windower->Push(df.Slice(pos, pos + chunk));
      bench::CheckOk(out.status());
      for (auto& w : *out) view_windows.push_back(std::move(w));
    }
  }
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CCS_CHECK(view_windows.size() == legacy_windows.size());
  for (size_t w = 0; w < view_windows.size(); ++w) {
    CheckFramesEqual(view_windows[w], legacy_windows[w]);
  }
  return m;
}

// Scoring a Filter view through the MatrixView kernel (ViolationAll
// walks the view's columns in place) vs. the legacy materialize-first
// path (NumericMatrixFor + the Matrix kernel) — the score half of what
// bench_matrix_view measures in depth, kept here so the view layer's
// bench shows the whole stack: subset, group, window, AND consume.
Measurement BenchViewScoring(const DataFrame& df, size_t reps) {
  std::vector<std::string> names = df.NumericNames();
  std::vector<core::BoundedConstraint> conjuncts;
  for (size_t k = 0; k < 2; ++k) {
    linalg::Vector w(names.size());
    for (size_t j = 0; j < w.size(); ++j) w[j] = (j % 2 == k) ? 0.6 : -0.2;
    auto projection = core::Projection::Create(names, std::move(w));
    bench::CheckOk(projection.status());
    conjuncts.emplace_back(std::move(*projection), -1.8, 1.8, 0.0, 0.9, 0.5);
  }
  auto profile = core::SimpleConstraint::Create(names, std::move(conjuncts));
  bench::CheckOk(profile.status());
  DataFrame view = df.Filter(
      [&](size_t i) { return df.column(1).NumericAt(i) > -1.0; });  // ~84%.

  Measurement m;
  linalg::Vector legacy, walked;
  auto begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto data = view.NumericMatrixFor(names);
    bench::CheckOk(data.status());
    legacy = profile->ViolationAllAligned(*data);
  }
  m.legacy_seconds = Seconds(begin, std::chrono::steady_clock::now());

  begin = std::chrono::steady_clock::now();
  for (size_t rep = 0; rep < reps; ++rep) {
    auto scores = profile->ViolationAll(view);
    bench::CheckOk(scores.status());
    walked = std::move(*scores);
  }
  m.view_seconds = Seconds(begin, std::chrono::steady_clock::now());

  CCS_CHECK(walked.size() == legacy.size());
  for (size_t i = 0; i < walked.size(); ++i) {
    double a = walked[i], b = legacy[i];
    CCS_CHECK(std::memcmp(&a, &b, sizeof(double)) == 0);
  }
  return m;
}

void Run(bool quick) {
  const size_t rows = quick ? 20000 : 200000;
  const size_t reps = quick ? 3 : 10;
  bench::Banner(
      "DataFrame views vs. legacy deep copies\n"
      "zero-copy selection vectors + dictionary-encoded categoricals\n" +
      std::string(quick ? "(--quick) " : "") + std::to_string(rows) +
      " rows x 8 numeric + 2 categorical, " + std::to_string(reps) +
      " repetitions");

  DataFrame df = MakeFrame(rows, 17);
  std::printf("\n%-28s%12s%14s%10s\n", "path", "rows/sec", "wall (ms)",
              "speedup");

  Measurement partition = BenchPartitionBy(df, reps);
  Report("PartitionBy(segment)", rows * reps, partition);

  Measurement filter = BenchFilter(df, reps);
  Report("Filter(a0 > 0)", rows * reps, filter);

  Measurement windowing = BenchWindowing(df, /*window=*/512, /*slide=*/128,
                                         /*chunk=*/256);
  Report("windows 512/128", rows, windowing);

  Measurement scoring = BenchViewScoring(df, reps);
  Report("score(Filter view)", rows * reps, scoring);

  std::printf(
      "\n(all view results CHECKed bitwise-equal to the legacy copies\n"
      "before reporting; legacy = string-keyed grouping + full cell\n"
      "copies, the pre-view semantics of Filter/Gather/PartitionBy and\n"
      "the Concat+Slice Windower)\n");

  double partition_speedup = partition.legacy_seconds / partition.view_seconds;
  if (partition_speedup < 5.0) {
    std::printf("WARNING: PartitionBy speedup %.1fx below the 5x target\n",
                partition_speedup);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  Run(quick);
  return 0;
}
