// Reproduces Fig. 6(a): on HAR, as a larger fraction of mobile-activity
// data is mixed into a sedentary-trained serving stream, conformance
// violation and the person-ID classifier's accuracy-drop rise together.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/drift.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "stats/correlation.h"
#include "synth/har.h"

namespace {

using namespace ccs;  // NOLINT

std::vector<std::string> PersonLabels(const dataframe::DataFrame& df) {
  auto col = df.ColumnByName("person");
  bench::CheckOk(col.status());
  return (*col)->categorical_data();
}

void Run() {
  bench::Banner(
      "Fig. 6(a) — HAR: CC violation and classifier accuracy-drop vs\n"
      "fraction of mobile data mixed into sedentary serving data");

  Rng rng(11);
  auto persons = synth::HarPersons(8);
  auto sedentary =
      synth::GenerateHar(persons, synth::SedentaryActivities(), 120, &rng);
  auto holdout =
      synth::GenerateHar(persons, synth::SedentaryActivities(), 60, &rng);
  auto mobile =
      synth::GenerateHar(persons, synth::MobileActivities(), 120, &rng);
  bench::CheckOk(sedentary.status());
  bench::CheckOk(holdout.status());
  bench::CheckOk(mobile.status());

  // Constraints on the sedentary training features.
  core::ConformanceDriftQuantifier quantifier;
  bench::CheckOk(quantifier.Fit(sedentary->DropColumns({"person"}).value()));

  // Person-ID classifier trained on the same data.
  auto x_train = sedentary->NumericMatrix();
  auto model = ml::LogisticRegression::Fit(x_train, PersonLabels(*sedentary));
  bench::CheckOk(model.status());
  auto train_predictions = model->PredictAll(x_train);
  bench::CheckOk(train_predictions.status());
  double train_accuracy =
      ml::Accuracy(PersonLabels(*sedentary), *train_predictions).value();

  bench::Header("mobile fraction (%)", {"violation", "acc-drop"});
  linalg::Vector violations(9), drops(9);
  for (int i = 0; i < 9; ++i) {
    double fraction = 0.1 * (i + 1);
    size_t total = 1200;
    auto n_mobile = static_cast<size_t>(fraction * total);
    auto mix = holdout->Sample(total - n_mobile, &rng)
                   .Concat(mobile->Sample(n_mobile, &rng));
    bench::CheckOk(mix.status());

    double violation =
        quantifier.Score(mix->DropColumns({"person"}).value()).value();
    auto predictions = model->PredictAll(mix->NumericMatrix());
    bench::CheckOk(predictions.status());
    double accuracy = ml::Accuracy(PersonLabels(*mix), *predictions).value();
    double drop = train_accuracy - accuracy;
    violations[i] = violation;
    drops[i] = drop;
    bench::Row("  " + std::to_string(static_cast<int>(fraction * 100)),
               {violation, drop});
  }

  auto test = stats::PearsonTest(violations, drops);
  bench::CheckOk(test.status());
  std::printf("\npcc(violation, accuracy-drop) = %.3f (p = %.2e)\n",
              test->pcc, test->p_value);
  std::printf(
      "Paper: both curves rise together, pcc = 0.99 (p = 0).\n"
      "Check: monotone increase in both columns; strong positive pcc.\n");
}

}  // namespace

int main() {
  Run();
  return 0;
}
