// Reproduces Fig. 7: inter-person constraint-violation heat map. Learn
// per-person disjunctive constraints (over all activities) from half of
// each person's data; score every person's held-out data against every
// other person's constraints. The diagonal (self-violation) must be low.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/drift.h"
#include "synth/har.h"

namespace {

using namespace ccs;  // NOLINT

void Run() {
  bench::Banner(
      "Fig. 7 — Inter-person violation heat map (row = profile owner,\n"
      "column = scored person; activity-wise constraints, averaged)");

  constexpr size_t kPersons = 8;
  Rng rng(17);
  auto persons = synth::HarPersons(kPersons);
  auto activities = synth::AllActivities();

  // Half of each person's data learns their profile; half is scored.
  std::vector<core::ConformanceDriftQuantifier> profiles(kPersons);
  std::vector<dataframe::DataFrame> holdouts(kPersons);
  for (size_t i = 0; i < kPersons; ++i) {
    auto train = synth::GenerateHar({persons[i]}, activities, 60, &rng);
    auto test = synth::GenerateHar({persons[i]}, activities, 60, &rng);
    bench::CheckOk(train.status());
    bench::CheckOk(test.status());
    // Keep "activity" (drives the disjunction); drop "person" (constant).
    bench::CheckOk(
        profiles[i].Fit(train->DropColumns({"person"}).value()));
    holdouts[i] = test->DropColumns({"person"}).value();
  }

  std::vector<std::string> header;
  for (const auto& p : persons) header.push_back(p);
  bench::Header("", header);
  double diagonal_total = 0.0, off_total = 0.0;
  for (size_t i = 0; i < kPersons; ++i) {
    std::vector<double> row;
    for (size_t j = 0; j < kPersons; ++j) {
      double v = profiles[i].Score(holdouts[j]).value();
      row.push_back(v);
      if (i == j) {
        diagonal_total += v;
      } else {
        off_total += v;
      }
    }
    bench::Row(persons[i], row, "%12.3f");
  }

  double diag_mean = diagonal_total / kPersons;
  double off_mean = off_total / (kPersons * (kPersons - 1));
  std::printf("\nmean self-violation (diagonal) = %.4f\n", diag_mean);
  std::printf("mean cross-violation           = %.4f\n", off_mean);
  std::printf(
      "Paper: very low diagonal, clearly higher off-diagonal; some people\n"
      "are more distinctive than others. Check: diagonal << off-diagonal.\n");
}

}  // namespace

int main() {
  Run();
  return 0;
}
