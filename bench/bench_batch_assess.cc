// Batched assessment throughput: rows/sec for SafetyEnvelope::AssessAll
// through the chunk-parallel matrix kernel at 1, 2, and N threads,
// against the per-row Assess baseline. Seeds the BENCH trajectory for
// the serving-side hot path; violation values are checked identical
// across all paths before any number is reported.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/tml.h"
#include "dataframe/dataframe.h"
#include "synth/har.h"

namespace {

using namespace ccs;  // NOLINT

double Seconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

// Best-of-k wall time, so one scheduler hiccup does not skew a lane.
double BestSeconds(const std::function<void()>& fn, int reps = 3) {
  double best = Seconds(fn);
  for (int r = 1; r < reps; ++r) best = std::min(best, Seconds(fn));
  return best;
}

}  // namespace

int main() {
  bench::Banner(
      "Batched assessment throughput (SafetyEnvelope::AssessAll)\n"
      "HAR workload: 36 sensors + person/activity partitions");

  Rng rng(42);
  auto persons = synth::HarPersons(4);
  auto activities = synth::AllActivities();

  auto training = synth::GenerateHar(persons, activities, 500, &rng);
  bench::CheckOk(training.status());
  auto envelope = core::SafetyEnvelope::Fit(*training, {});
  bench::CheckOk(envelope.status());

  // 4 persons x 5 activities x 2500 rows = 50k serving tuples.
  auto serving = synth::GenerateHar(persons, activities, 2500, &rng);
  bench::CheckOk(serving.status());
  const size_t rows = serving->num_rows();

  // Per-row baseline: the pre-batching loop (simplify + align each row).
  std::vector<core::TrustAssessment> baseline(rows);
  double baseline_sec = BestSeconds([&] {
    for (size_t i = 0; i < rows; ++i) {
      auto a = envelope->Assess(*serving, i);
      bench::CheckOk(a.status());
      baseline[i] = *a;
    }
  });

  size_t hardware = common::DefaultThreadCount();
  std::vector<size_t> lanes = {1, 2, hardware};
  std::sort(lanes.begin(), lanes.end());
  lanes.erase(std::unique(lanes.begin(), lanes.end()), lanes.end());

  std::printf("\n%-28s%12s%14s%10s\n", "path", "rows/sec", "wall (ms)",
              "speedup");
  std::printf("%-28s%12.0f%14.2f%10s\n", "per-row Assess",
              static_cast<double>(rows) / baseline_sec, baseline_sec * 1e3,
              "1.00x");

  for (size_t t : lanes) {
    common::SetDefaultThreadCount(t);
    std::vector<core::TrustAssessment> batched;
    double sec = BestSeconds([&] {
      auto all = envelope->AssessAll(*serving);
      bench::CheckOk(all.status());
      batched = std::move(*all);
    });
    // Identical results, not just close: the batched kernel preserves
    // the per-row floating-point evaluation order.
    for (size_t i = 0; i < rows; ++i) {
      CCS_CHECK(batched[i].violation == baseline[i].violation)
          << "batched/per-row mismatch at row " << i << " with " << t
          << " thread(s)";
    }
    std::string label =
        "AssessAll, " + std::to_string(t) + (t == 1 ? " thread" : " threads");
    std::printf("%-28s%12.0f%14.2f%9.2fx\n", label.c_str(),
                static_cast<double>(rows) / sec, sec * 1e3,
                baseline_sec / sec);
  }
  common::SetDefaultThreadCount(0);

  std::printf("\n(%zu hardware threads; violations identical across paths)\n",
              hardware);
  return 0;
}
