// Adversarial scenario gauntlet: one row per catalogue scenario — rows
// served, windows scored, alarms, refreshes, wall time, throughput, and
// how the run ended (clean end-of-stream vs a structured teardown).
// Before any number is reported the scenario's trace is checked bitwise
// identical across a rerun and across 1 vs 4 scoring lanes — the
// determinism contract is a precondition of the benchmark.
//
// Flags:
//   --quick      scale-1 geometry (the test-suite sizes; CI smoke)
//   --scale N    explicit geometry multiplier (default 4)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace {

using namespace ccs;  // NOLINT

double Seconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

}  // namespace

int main(int argc, char** argv) {
  size_t scale = 4;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--quick") {
      scale = 1;
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: bench_gauntlet [--quick] [--scale N]\n");
      return 1;
    }
  }
  CCS_CHECK(scale > 0) << "--scale must be positive";

  bench::Banner("Adversarial scenario gauntlet (scenario::RunScenario)\n"
                "catalogue x scale " + std::to_string(scale) +
                ", seed 1; every trace verified bitwise identical\n"
                "across a rerun and across 1 vs 4 scoring lanes");

  std::printf("\n%-24s%9s%9s%8s%10s%11s%12s  %s\n", "scenario", "rows",
              "windows", "alarms", "refreshes", "wall (ms)", "rows/sec",
              "terminal");

  for (const std::string& name : scenario::CatalogueNames()) {
    auto spec = scenario::CatalogueSpec(name, scale);
    bench::CheckOk(spec.status());

    scenario::ScenarioTrace trace;
    double sec = Seconds([&] {
      auto run = scenario::RunScenario(*spec, /*seed=*/1, /*num_threads=*/1);
      bench::CheckOk(run.status());
      trace = std::move(*run);
    });

    // Determinism gate: rerun and 4-lane runs must be byte-identical.
    auto rerun = scenario::RunScenario(*spec, 1, 1);
    bench::CheckOk(rerun.status());
    CCS_CHECK(scenario::TracesIdentical(trace, *rerun))
        << name << ": rerun trace diverged";
    auto threaded = scenario::RunScenario(*spec, 1, 4);
    bench::CheckOk(threaded.status());
    CCS_CHECK(scenario::TracesIdentical(trace, *threaded))
        << name << ": 4-lane trace diverged from 1-lane";

    double rows = static_cast<double>(trace.rows_ingested);
    std::printf("%-24s%9zu%9zu%8zu%10zu%11.2f%12.0f  %s\n", name.c_str(),
                trace.rows_ingested, trace.windows_scored, trace.alarms,
                trace.refreshes, sec * 1e3, sec > 0 ? rows / sec : 0.0,
                trace.terminal.ok() ? "clean"
                                    : trace.terminal.ToString().c_str());
  }

  std::printf("\n(teardown scenarios end with the structured error their\n"
              "malformed stream produced — that behavior is pinned by the\n"
              "golden traces in tests/golden/, see docs/scenarios.md)\n");
  return 0;
}
