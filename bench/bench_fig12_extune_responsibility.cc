// Reproduces Fig. 12 (appendix): ExTuNe responsibility attribution.
//  (a) Cardio: train on healthy, serve diseased -> blood pressure
//      (ap_hi, ap_lo) carries the blame.
//  (b) Mobile: train on cheap, serve expensive -> RAM dominates.
//  (c) House: train on <=100K, serve >=300K -> responsibility is spread
//      across many attributes (holistic).
//  (d) LED stream: drift every 5 windows; the malfunctioning segments
//      take responsibility in exactly their scheduled windows.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/drift.h"
#include "core/explain.h"
#include "synth/led.h"
#include "synth/tabular.h"

namespace {

using namespace ccs;  // NOLINT

void PrintResponsibilities(
    const std::vector<core::AttributeResponsibility>& responsibilities) {
  auto sorted = responsibilities;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return a.responsibility > b.responsibility;
            });
  for (const auto& r : sorted) {
    std::printf("  %-16s %6.3f  ", r.attribute.c_str(), r.responsibility);
    int bars = static_cast<int>(r.responsibility * 50.0);
    for (int i = 0; i < bars; ++i) std::printf("#");
    std::printf("\n");
  }
}

void RunTabular(const char* title, const dataframe::DataFrame& train,
                const dataframe::DataFrame& serve) {
  std::printf("\n--- %s ---\n", title);
  auto explainer = core::NonConformanceExplainer::FromTrainingData(train);
  bench::CheckOk(explainer.status());
  auto responsibilities = explainer->ExplainDataset(serve);
  bench::CheckOk(responsibilities.status());
  PrintResponsibilities(*responsibilities);
}

void RunLed() {
  std::printf("\n--- Fig. 12(d): LED drift responsibility per window ---\n");
  Rng rng(23);
  synth::LedOptions options;
  // Low sensor noise: a stuck segment then deviates by many sigma, which
  // keeps the attribution crisp (MOA's generator defaults to 10% noise on
  // a far larger window size than we use here).
  options.noise = 0.01;
  auto stream = synth::GenerateLedStream(20, 800,
                                         synth::DefaultLedSchedule(), &rng,
                                         options);
  bench::CheckOk(stream.status());

  auto explainer =
      core::NonConformanceExplainer::FromTrainingData((*stream)[0]);
  bench::CheckOk(explainer.status());
  core::ConformanceDriftQuantifier quantifier;
  bench::CheckOk(quantifier.Fit((*stream)[0]));

  std::printf("%-8s%10s  led1..led7 responsibilities\n", "window",
              "violation");
  for (size_t w = 0; w < stream->size(); ++w) {
    auto responsibilities = explainer->ExplainDataset((*stream)[w]);
    bench::CheckOk(responsibilities.status());
    std::printf("  %-6zu", w);
    std::printf("%10.3f", quantifier.Score((*stream)[w]).value());
    for (const auto& r : *responsibilities) {
      if (r.attribute.rfind("led", 0) == 0) {
        std::printf("%6.2f", r.responsibility);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Check: windows 0-4 near zero everywhere; windows 5-9 blame led4/led5;"
      "\n10-14 blame led1/led3; 15-19 blame led2/led6 (the schedule).\n");
}

void Run() {
  bench::Banner(
      "Fig. 12 — ExTuNe responsibility for non-conformance\n"
      "(train on one population, serve the drifted one)");

  Rng rng(29);
  {
    auto healthy = synth::GenerateCardio(2000, false, &rng);
    auto diseased = synth::GenerateCardio(600, true, &rng);
    bench::CheckOk(healthy.status());
    bench::CheckOk(diseased.status());
    RunTabular("Fig. 12(a): Cardio (expect ap_hi / ap_lo on top)", *healthy,
               *diseased);
  }
  {
    auto cheap = synth::GenerateMobile(2000, false, &rng);
    auto pricey = synth::GenerateMobile(600, true, &rng);
    bench::CheckOk(cheap.status());
    bench::CheckOk(pricey.status());
    RunTabular("Fig. 12(b): Mobile (expect ram on top)", *cheap, *pricey);
  }
  {
    auto modest = synth::GenerateHouse(2000, false, &rng);
    auto fancy = synth::GenerateHouse(600, true, &rng);
    bench::CheckOk(modest.status());
    bench::CheckOk(fancy.status());
    RunTabular("Fig. 12(c): House (expect responsibility spread widely)",
               *modest, *fancy);
  }
  RunLed();
}

}  // namespace

int main() {
  Run();
  return 0;
}
