// Reproduces Fig. 4 (table): average conformance-constraint violation and
// linear-regression MAE across the four airlines splits (Train / Daytime /
// Overnight / Mixed).
//
// Paper shape: violation and MAE are both low and nearly equal on Train
// and Daytime, both explode on Overnight (~4x MAE), and Mixed sits in
// between. Absolute numbers differ (synthetic workload), the ordering and
// the violation<->error coupling are the reproduction target.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/tml.h"
#include "ml/linear_regression.h"
#include "ml/metrics.h"
#include "synth/airlines.h"

namespace {

using namespace ccs;  // NOLINT

void Run() {
  bench::Banner(
      "Fig. 4 — Airlines TML: avg violation (%) and regression MAE\n"
      "constraints learned on Train excluding target attribute 'delay'");

  Rng rng(42);
  auto benchmark = synth::MakeAirlinesBenchmark(20000, 4000, &rng);
  bench::CheckOk(benchmark.status());

  auto envelope = core::SafetyEnvelope::Fit(benchmark->train, {"delay"});
  bench::CheckOk(envelope.status());

  auto covariates = benchmark->train.DropColumns({"delay"});
  bench::CheckOk(covariates.status());
  std::vector<std::string> names = covariates->NumericNames();

  auto x_train = benchmark->train.NumericMatrixFor(names);
  bench::CheckOk(x_train.status());
  auto y_train = benchmark->train.ColumnByName("delay");
  bench::CheckOk(y_train.status());
  ml::LinearRegressionOptions options;
  options.l2_penalty = 1.0;  // Unique solution over collinear covariates.
  auto model = ml::LinearRegression::Fit(*x_train,
                                         (*y_train)->ToVector(), options);
  bench::CheckOk(model.status());

  struct Split {
    const char* name;
    const dataframe::DataFrame* data;
  };
  const Split splits[] = {{"Train", &benchmark->train},
                          {"Daytime", &benchmark->daytime},
                          {"Overnight", &benchmark->overnight},
                          {"Mixed", &benchmark->mixed}};

  std::vector<double> violations, maes;
  for (const Split& split : splits) {
    auto mean_violation =
        envelope->constraint().MeanViolation(*split.data);
    bench::CheckOk(mean_violation.status());
    violations.push_back(*mean_violation * 100.0);

    auto x = split.data->NumericMatrixFor(names);
    bench::CheckOk(x.status());
    auto y = split.data->ColumnByName("delay");
    bench::CheckOk(y.status());
    auto mae = ml::MeanAbsoluteError((*y)->ToVector(), model->PredictAll(*x));
    bench::CheckOk(mae.status());
    maes.push_back(*mae);
  }

  bench::Header("", {"Train", "Daytime", "Overnight", "Mixed"});
  bench::Row("Average violation (%)", violations);
  bench::Row("MAE (linear regression)", maes);

  std::printf(
      "\nPaper (real airlines data): violation 0.02 / 0.02 / 27.68 / 8.87,"
      "\n                            MAE       18.95 / 18.89 / 80.54 / 38.60"
      "\nCheck: Overnight >> Daytime on BOTH rows; Mixed in between.\n");
}

}  // namespace

int main() {
  Run();
  return 0;
}
