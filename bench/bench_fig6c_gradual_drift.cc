// Reproduces Fig. 6(c): gradual LOCAL drift on HAR. Starting from a
// snapshot where each person performs one fixed activity, K = 1..15
// people switch activities one at a time. CCSynth (disjunctive
// constraints: "who is doing what") tracks the drift; global W-PCA only
// sees the aggregate activity pool, which barely changes.

#include <cstdio>

#include "baselines/wpca.h"
#include "bench/bench_util.h"
#include "common/random.h"
#include "synth/har.h"

namespace {

using namespace ccs;  // NOLINT

constexpr size_t kPersons = 15;
constexpr size_t kRowsPerPerson = 80;

// Snapshot where person i performs activities[assignment[i]].
dataframe::DataFrame Snapshot(const std::vector<std::string>& persons,
                              const std::vector<size_t>& assignment,
                              Rng* rng) {
  auto activities = synth::AllActivities();
  dataframe::DataFrame out;
  for (size_t i = 0; i < persons.size(); ++i) {
    auto part = synth::GenerateHar(
        {persons[i]}, {activities[assignment[i] % activities.size()]},
        kRowsPerPerson, rng);
    bench::CheckOk(part.status());
    if (out.num_rows() == 0) {
      out = std::move(part).value();
    } else {
      auto merged = out.Concat(*part);
      bench::CheckOk(merged.status());
      out = std::move(merged).value();
    }
  }
  return out;
}

void Run() {
  bench::Banner(
      "Fig. 6(c) — HAR gradual local drift: K people switch activities\n"
      "CCSynth (disjunctive) vs W-PCA (global only), avg over 5 runs");

  auto persons = synth::HarPersons(kPersons);
  bench::Header("K persons switched", {"CCSynth", "W-PCA"});

  const int kRuns = 5;
  for (size_t k = 1; k <= kPersons; k += 2) {
    double cc_total = 0.0, wpca_total = 0.0;
    for (int run = 0; run < kRuns; ++run) {
      Rng rng(1000 * k + run);
      // Initial assignment: person i does activity i (mod #activities).
      std::vector<size_t> initial(kPersons);
      for (size_t i = 0; i < kPersons; ++i) initial[i] = i;
      dataframe::DataFrame reference = Snapshot(persons, initial, &rng);

      // First k people switch to the "next" activity.
      std::vector<size_t> drifted = initial;
      for (size_t i = 0; i < k; ++i) drifted[i] = initial[i] + 2;
      dataframe::DataFrame current = Snapshot(persons, drifted, &rng);

      baselines::ConformanceDetector cc;
      baselines::WeightedPca wpca;
      bench::CheckOk(cc.Fit(reference));
      bench::CheckOk(wpca.Fit(reference));
      cc_total += cc.Score(current).value();
      wpca_total += wpca.Score(current).value();
    }
    bench::Row("  K = " + std::to_string(k),
               {cc_total / kRuns, wpca_total / kRuns});
  }

  std::printf(
      "\nPaper: CCSynth's violation grows steadily with K; W-PCA stays low\n"
      "and flat (it cannot see who switched, only the global pool).\n"
      "Check: CCSynth column increases with K and dominates W-PCA.\n");
}

}  // namespace

int main() {
  Run();
  return 0;
}
