// Reproduces Fig. 6(b): noise sensitivity. Mixing mobile-activity tuples
// into the sedentary TRAINING set weakens the constraints (violation of a
// fixed mobile serving set falls) while also making the classifier more
// robust (accuracy-drop falls) — the two stay correlated.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/drift.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "stats/correlation.h"
#include "synth/har.h"

namespace {

using namespace ccs;  // NOLINT

std::vector<std::string> PersonLabels(const dataframe::DataFrame& df) {
  return df.ColumnByName("person").value()->categorical_data();
}

void Run() {
  bench::Banner(
      "Fig. 6(b) — HAR noise sensitivity: training-noise % vs constraint\n"
      "violation of mobile serving data and classifier accuracy-drop");

  Rng rng(13);
  auto persons = synth::HarPersons(8);
  auto sedentary =
      synth::GenerateHar(persons, synth::SedentaryActivities(), 120, &rng);
  auto mobile_pool =
      synth::GenerateHar(persons, synth::MobileActivities(), 180, &rng);
  auto serving =
      synth::GenerateHar(persons, synth::MobileActivities(), 80, &rng);
  bench::CheckOk(sedentary.status());
  bench::CheckOk(mobile_pool.status());
  bench::CheckOk(serving.status());

  bench::Header("training noise (%)", {"violation", "acc-drop"});
  linalg::Vector violations(6), drops(6);
  int idx = 0;
  for (double noise : {0.05, 0.15, 0.25, 0.35, 0.45, 0.55}) {
    size_t total = 1500;
    auto n_noise = static_cast<size_t>(noise * total);
    auto train = sedentary->Sample(total - n_noise, &rng)
                     .Concat(mobile_pool->Sample(n_noise, &rng));
    bench::CheckOk(train.status());

    core::ConformanceDriftQuantifier quantifier;
    bench::CheckOk(quantifier.Fit(train->DropColumns({"person"}).value()));
    double violation =
        quantifier.Score(serving->DropColumns({"person"}).value()).value();

    auto model =
        ml::LogisticRegression::Fit(train->NumericMatrix(),
                                    PersonLabels(*train));
    bench::CheckOk(model.status());
    auto train_pred = model->PredictAll(train->NumericMatrix());
    auto serve_pred = model->PredictAll(serving->NumericMatrix());
    bench::CheckOk(train_pred.status());
    bench::CheckOk(serve_pred.status());
    double drop = ml::Accuracy(PersonLabels(*train), *train_pred).value() -
                  ml::Accuracy(PersonLabels(*serving), *serve_pred).value();

    violations[idx] = violation;
    drops[idx] = drop;
    ++idx;
    bench::Row("  " + std::to_string(static_cast<int>(noise * 100)),
               {violation, drop});
  }

  auto test = stats::PearsonTest(violations, drops);
  bench::CheckOk(test.status());
  std::printf("\npcc(violation, accuracy-drop) = %.3f (p = %.2e)\n",
              test->pcc, test->p_value);
  std::printf(
      "Paper: both fall as training noise grows; pcc = 0.82 (p = 0.002).\n"
      "Check: decreasing trend in both columns; positive pcc persists.\n");
}

}  // namespace

int main() {
  Run();
  return 0;
}
