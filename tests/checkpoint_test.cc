// Tests for checkpoint/resume (stream/checkpoint.h): bitwise round-trip
// of the serialized form, file I/O semantics, Restore's guards, and the
// headline contract — a pipeline resumed from a checkpoint commits a
// history bitwise identical to the uninterrupted run from the boundary.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "dataframe/csv.h"
#include "dataframe/dataframe.h"
#include "stream/checkpoint.h"
#include "stream/pipeline.h"

namespace ccs::stream {
namespace {

dataframe::DataFrame TrendFrame(size_t n, uint64_t seed, double offset = 0.0) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = x[i] + offset + rng.Gaussian(0.0, 0.1);
  }
  dataframe::DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

std::string ToCsv(const dataframe::DataFrame& df) {
  std::ostringstream out;
  CCS_CHECK(dataframe::WriteCsv(df, out).ok());
  return out.str();
}

CheckpointData SampleData() {
  CheckpointData data;
  data.window_rows = 50;
  data.slide_rows = 25;
  data.refresh_every = 4;
  data.threshold_bits = 0x3FA999999999999Aull;  // 0.05.
  data.windows_committed = 12;
  data.windows_consumed = 13;
  data.rows_consumed = 325;
  data.refreshes = 3;
  data.attribute_names = {"x", "y"};
  data.gram_count = 325;
  data.gram_sum = linalg::Matrix(3, 3);
  double v = 0.125;
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      data.gram_sum(r, c) = v;
      v = v * -1.75 + 0.0625;  // Exercise signs and non-trivial bits.
    }
  }
  return data;
}

TEST(CheckpointFormatTest, SerializeParseRoundTripsBitwise) {
  CheckpointData data = SampleData();
  std::string text = SerializeCheckpoint(data);
  auto parsed = ParseCheckpoint(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Serialization is canonical: parse -> serialize reproduces the text
  // byte for byte, which transitively pins every field (including the
  // raw double bits of the Gram sum).
  EXPECT_EQ(SerializeCheckpoint(*parsed), text);
  EXPECT_EQ(parsed->windows_committed, 12u);
  EXPECT_EQ(parsed->windows_consumed, 13u);
  EXPECT_EQ(parsed->rows_consumed, 325u);
  EXPECT_EQ(parsed->gram_count, 325);
  EXPECT_EQ(parsed->gram_sum(2, 2), data.gram_sum(2, 2));
}

TEST(CheckpointFormatTest, ParseRejectsCorruption) {
  std::string text = SerializeCheckpoint(SampleData());
  EXPECT_EQ(ParseCheckpoint("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseCheckpoint("ccsynth-checkpoint v99\n").status().code(),
            StatusCode::kInvalidArgument);
  // Truncation (drop the trailing end marker) must not parse.
  std::string truncated = text.substr(0, text.rfind("end"));
  EXPECT_EQ(ParseCheckpoint(truncated).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointFormatTest, FileRoundTripAndNotFound) {
  const std::string path = ::testing::TempDir() + "/ccs_checkpoint_test.ck";
  std::remove(path.c_str());
  EXPECT_EQ(ReadCheckpointFile(path).status().code(), StatusCode::kNotFound);

  CheckpointData data = SampleData();
  ASSERT_TRUE(WriteCheckpointFile(data, path).ok());
  auto read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(SerializeCheckpoint(*read), SerializeCheckpoint(data));
  std::remove(path.c_str());
}

class CheckpointResumeTest : public ::testing::Test {
 protected:
  static StreamPipelineOptions Options() {
    StreamPipelineOptions options;
    options.window_rows = 40;
    options.slide_rows = 20;
    options.refresh_every = 5;
    options.chunk_rows = 13;
    options.num_threads = 2;
    return options;
  }
};

TEST_F(CheckpointResumeTest, RestoreGuardsGeometry) {
  dataframe::DataFrame reference = TrendFrame(200, 3);
  auto pipeline = StreamPipeline::Create(reference, Options());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  CheckpointData snap = pipeline->Snapshot();

  CheckpointData wrong = snap;
  wrong.window_rows = 64;
  EXPECT_EQ(pipeline->Restore(wrong).code(), StatusCode::kInvalidArgument);
  wrong = snap;
  wrong.refresh_every = 9;
  EXPECT_EQ(pipeline->Restore(wrong).code(), StatusCode::kInvalidArgument);
  wrong = snap;
  wrong.attribute_names = {"x", "z"};
  EXPECT_EQ(pipeline->Restore(wrong).code(), StatusCode::kInvalidArgument);
  // The unmodified snapshot restores onto a fresh identical pipeline.
  EXPECT_TRUE(pipeline->Restore(snap).ok());
}

TEST_F(CheckpointResumeTest, RestoreRefusedAfterCommits) {
  dataframe::DataFrame reference = TrendFrame(200, 3);
  auto pipeline = StreamPipeline::Create(reference, Options());
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  CheckpointData snap = pipeline->Snapshot();

  std::istringstream in(ToCsv(TrendFrame(200, 4)));
  auto result = pipeline->Run(in);
  ASSERT_TRUE(result.ok()) << result.status;
  ASSERT_GT(result->windows_scored, 0u);
  EXPECT_EQ(pipeline->Restore(snap).code(), StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointResumeTest, ResumedHistoryIsBitwiseIdentical) {
  // Run the full stream uninterrupted; then run a prefix, snapshot,
  // restore into a brand-new pipeline, feed it the remaining rows, and
  // compare: indices, alarm flags, and raw drift bits must all match
  // from the boundary on. Crossing a refresh boundary in both halves
  // exercises the serialized Gram/profile state, not just row offsets.
  dataframe::DataFrame reference = TrendFrame(200, 11);
  dataframe::DataFrame stream_df = TrendFrame(1000, 12, /*offset=*/0.0);
  const std::string csv = ToCsv(stream_df);

  auto full = StreamPipeline::Create(reference, Options());
  ASSERT_TRUE(full.ok()) << full.status();
  {
    std::istringstream in(csv);
    auto result = full->Run(in);
    ASSERT_TRUE(result.ok()) << result.status;
  }
  std::vector<core::WindowScore> want = full->history();
  ASSERT_GT(want.size(), 20u);

  // Prefix run: stop the byte stream after a fixed number of data rows
  // (split mid-window so the resume really re-parses the tail).
  const size_t header_end = csv.find('\n') + 1;
  size_t split = header_end;
  for (size_t row = 0; row < 370; ++row) split = csv.find('\n', split) + 1;
  auto prefix = StreamPipeline::Create(reference, Options());
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  {
    std::istringstream in(csv.substr(0, split));
    auto result = prefix->Run(in);
    ASSERT_TRUE(result.ok()) << result.status;
  }
  CheckpointData snap = prefix->Snapshot();
  ASSERT_GT(snap.windows_committed, 0u);
  ASSERT_GT(snap.refreshes, 0u);  // The profile section is in play.

  // Round-trip the snapshot through its serialized form, as a real
  // resume (fresh process reading the file) would.
  auto restored_data = ParseCheckpoint(SerializeCheckpoint(snap));
  ASSERT_TRUE(restored_data.ok()) << restored_data.status();

  auto resumed = StreamPipeline::Create(reference, Options());
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_TRUE(resumed->Restore(*restored_data).ok());
  {
    // The resumed run re-reads the stream from the top; Restore armed it
    // to skip the already-consumed rows.
    std::istringstream in(csv);
    auto result = resumed->Run(in);
    ASSERT_TRUE(result.ok()) << result.status;
  }

  std::vector<core::WindowScore> prefix_history = prefix->history();
  std::vector<core::WindowScore> resumed_history = resumed->history();
  ASSERT_EQ(prefix_history.size() + resumed_history.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    const core::WindowScore& got =
        i < prefix_history.size()
            ? prefix_history[i]
            : resumed_history[i - prefix_history.size()];
    EXPECT_EQ(got.window_index, want[i].window_index) << "window " << i;
    EXPECT_EQ(got.drift, want[i].drift) << "window " << i;
    EXPECT_EQ(got.alarm, want[i].alarm) << "window " << i;
  }
}

}  // namespace
}  // namespace ccs::stream
