// Tests for the CSV reader/writer.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dataframe/csv.h"

namespace ccs::dataframe {
namespace {

StatusOr<DataFrame> Parse(const std::string& text,
                          CsvOptions options = CsvOptions()) {
  std::istringstream in(text);
  return ReadCsv(in, options);
}

TEST(CsvTest, BasicReadWithHeader) {
  auto df = Parse("x,y,tag\n1,10,a\n2,20,b\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 2u);
  EXPECT_EQ(df->num_columns(), 3u);
  EXPECT_DOUBLE_EQ(df->NumericValue(1, "y").value(), 20.0);
  EXPECT_EQ(df->CategoricalValue(0, "tag").value(), "a");
}

TEST(CsvTest, TypeInferenceNumericVsCategorical) {
  auto df = Parse("a,b\n1,x1\n2.5,x2\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->schema().attribute(0).type, AttributeType::kNumeric);
  EXPECT_EQ(df->schema().attribute(1).type, AttributeType::kCategorical);
}

TEST(CsvTest, MixedColumnFallsBackToCategorical) {
  auto df = Parse("a\n1\nhello\n3\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->schema().attribute(0).type, AttributeType::kCategorical);
}

TEST(CsvTest, NoHeaderGeneratesNames) {
  CsvOptions options;
  options.has_header = false;
  auto df = Parse("1,2\n3,4\n", options);
  ASSERT_TRUE(df.ok());
  EXPECT_TRUE(df->schema().Contains("c0"));
  EXPECT_TRUE(df->schema().Contains("c1"));
  EXPECT_EQ(df->num_rows(), 2u);
}

TEST(CsvTest, InferTypesOffMakesEverythingCategorical) {
  CsvOptions options;
  options.infer_types = false;
  auto df = Parse("a\n1\n2\n", options);
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->schema().attribute(0).type, AttributeType::kCategorical);
}

TEST(CsvTest, QuotedFieldWithDelimiter) {
  auto df = Parse("name,v\n\"hello, world\",1\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->CategoricalValue(0, "name").value(), "hello, world");
}

TEST(CsvTest, EscapedQuotes) {
  auto df = Parse("name\n\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->CategoricalValue(0, "name").value(), "say \"hi\"");
}

TEST(CsvTest, QuotedNewlineInsideField) {
  auto df = Parse("name,v\n\"line1\nline2\",3\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 1u);
  EXPECT_EQ(df->CategoricalValue(0, "name").value(), "line1\nline2");
}

TEST(CsvTest, CrLfLineEndings) {
  auto df = Parse("a,b\r\n1,2\r\n3,4\r\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(df->NumericValue(1, "b").value(), 4.0);
}

TEST(CsvTest, MissingNumericCellUsesFillValue) {
  CsvOptions options;
  options.missing_numeric = -1.0;
  auto df = Parse("a\n1\n\n3\n", options);
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->schema().attribute(0).type, AttributeType::kNumeric);
  EXPECT_DOUBLE_EQ(df->NumericValue(1, "a").value(), -1.0);
}

TEST(CsvTest, AllEmptyColumnIsCategorical) {
  auto df = Parse("a,b\n1,\n2,\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->schema().attribute(1).type, AttributeType::kCategorical);
}

TEST(CsvTest, RaggedRowIsError) {
  auto df = Parse("a,b\n1,2\n3\n");
  EXPECT_FALSE(df.ok());
  EXPECT_EQ(df.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(Parse("a\n\"oops\n").ok());
}

TEST(CsvTest, EmptyInputIsError) { EXPECT_FALSE(Parse("").ok()); }

TEST(CsvTest, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  auto df = Parse("a;b\n1;2\n", options);
  ASSERT_TRUE(df.ok());
  EXPECT_DOUBLE_EQ(df->NumericValue(0, "b").value(), 2.0);
}

TEST(CsvTest, WriteThenReadRoundTrips) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {1.5, -2.25}).ok());
  ASSERT_TRUE(df.AddCategoricalColumn("s", {"plain", "with,comma"}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(df, out).ok());
  auto back = Parse(out.str());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(back->NumericValue(1, "x").value(), -2.25);
  EXPECT_EQ(back->CategoricalValue(1, "s").value(), "with,comma");
}

TEST(CsvTest, WriteQuotesSpecialCharacters) {
  DataFrame df;
  ASSERT_TRUE(df.AddCategoricalColumn("s", {"a\"b"}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(df, out).ok());
  EXPECT_NE(out.str().find("\"a\"\"b\""), std::string::npos);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/ccs_csv_test.csv";
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("v", {3.0, 7.0}).ok());
  ASSERT_TRUE(WriteCsvFile(df, path).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(back->NumericValue(1, "v").value(), 7.0);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  auto df = ReadCsvFile("/nonexistent/dir/file.csv");
  EXPECT_EQ(df.status().code(), StatusCode::kIoError);
}

// ----------------------- RFC-4180 edge cases -------------------------

TEST(CsvTest, QuotedFieldWithEmbeddedNewline) {
  auto df = Parse("x,note\n1,\"line one\nline two\"\n2,plain\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 2u);
  EXPECT_EQ(df->CategoricalValue(0, "note").value(), "line one\nline two");
  EXPECT_EQ(df->CategoricalValue(1, "note").value(), "plain");
  EXPECT_DOUBLE_EQ(df->NumericValue(1, "x").value(), 2.0);
}

TEST(CsvTest, QuotedFieldWithEscapedQuotes) {
  auto df = Parse("x,say\n1,\"she said \"\"hi\"\"\"\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->CategoricalValue(0, "say").value(), "she said \"hi\"");
}

TEST(CsvTest, EmbeddedNewlineSurvivesWriteReadRoundTrip) {
  DataFrame df;
  ASSERT_TRUE(df.AddCategoricalColumn("s", {"a\nb", "c\"d"}).ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(df, out).ok());
  auto back = Parse(out.str());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->CategoricalValue(0, "s").value(), "a\nb");
  EXPECT_EQ(back->CategoricalValue(1, "s").value(), "c\"d");
}

TEST(CsvTest, CrlfLineEndings) {
  auto df = Parse("x,tag\r\n1,a\r\n2,b\r\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(df->NumericValue(0, "x").value(), 1.0);
  // No stray \r glued onto the last field of a record.
  EXPECT_EQ(df->CategoricalValue(1, "tag").value(), "b");
}

TEST(CsvTest, CrlfInsideQuotedFieldIsPreserved) {
  auto df = Parse("x,note\r\n1,\"a\r\nb\"\r\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->CategoricalValue(0, "note").value(), "a\r\nb");
}

TEST(CsvTest, TrailingEmptyField) {
  // "1," has two fields; the trailing one is empty — the column must not
  // collapse, and empty cells force the column categorical... unless the
  // non-empty cells parse numeric, in which case they are missing values.
  auto df = Parse("x,opt\n1,\n2,z\n");
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 2u);
  EXPECT_EQ(df->CategoricalValue(0, "opt").value(), "");
  EXPECT_EQ(df->CategoricalValue(1, "opt").value(), "z");
}

TEST(CsvTest, TrailingEmptyNumericFieldUsesMissingValue) {
  CsvOptions options;
  options.missing_numeric = -1.0;
  auto df = Parse("x,v\n1,\n2,7\n", options);
  ASSERT_TRUE(df.ok());
  EXPECT_DOUBLE_EQ(df->NumericValue(0, "v").value(), -1.0);
  EXPECT_DOUBLE_EQ(df->NumericValue(1, "v").value(), 7.0);
}

}  // namespace
}  // namespace ccs::dataframe
