// Tests for dataframe/: Schema, Column, DataFrame operations.

#include <gtest/gtest.h>

#include "common/random.h"
#include "dataframe/dataframe.h"

namespace ccs::dataframe {
namespace {

DataFrame MakeSample() {
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", {1.0, 2.0, 3.0, 4.0}).ok());
  CCS_CHECK(df.AddNumericColumn("y", {10.0, 20.0, 30.0, 40.0}).ok());
  CCS_CHECK(df.AddCategoricalColumn("tag", {"a", "b", "a", "b"}).ok());
  return df;
}

// --------------------------- Schema ----------------------------------

TEST(SchemaTest, AddAndLookup) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("x", AttributeType::kNumeric).ok());
  ASSERT_TRUE(s.AddAttribute("tag", AttributeType::kCategorical).ok());
  EXPECT_EQ(s.num_attributes(), 2u);
  EXPECT_EQ(s.IndexOf("tag").value(), 1u);
  EXPECT_TRUE(s.Contains("x"));
  EXPECT_FALSE(s.Contains("z"));
  EXPECT_EQ(s.IndexOf("z").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, RejectsDuplicateNames) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("x", AttributeType::kNumeric).ok());
  EXPECT_EQ(s.AddAttribute("x", AttributeType::kCategorical).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, TypeIndexPartition) {
  Schema s;
  ASSERT_TRUE(s.AddAttribute("a", AttributeType::kNumeric).ok());
  ASSERT_TRUE(s.AddAttribute("b", AttributeType::kCategorical).ok());
  ASSERT_TRUE(s.AddAttribute("c", AttributeType::kNumeric).ok());
  EXPECT_EQ(s.NumericIndices(), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(s.CategoricalIndices(), (std::vector<size_t>{1}));
}

TEST(SchemaTest, AttributeTypeToString) {
  EXPECT_STREQ(AttributeTypeToString(AttributeType::kNumeric), "numeric");
  EXPECT_STREQ(AttributeTypeToString(AttributeType::kCategorical),
               "categorical");
}

// --------------------------- Column ----------------------------------

TEST(ColumnTest, NumericColumn) {
  Column c = Column::Numeric({1.0, 2.0});
  EXPECT_TRUE(c.is_numeric());
  EXPECT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.NumericAt(1), 2.0);
  c.AppendNumeric(3.0);
  EXPECT_EQ(c.size(), 3u);
}

TEST(ColumnTest, CategoricalDistinctPreservesFirstAppearanceOrder) {
  Column c = Column::Categorical({"b", "a", "b", "c", "a"});
  EXPECT_EQ(c.DistinctValues(), (std::vector<std::string>{"b", "a", "c"}));
}

TEST(ColumnTest, GatherReordersAndRepeats) {
  Column c = Column::Numeric({1.0, 2.0, 3.0});
  Column g = c.Gather({2, 0, 2});
  EXPECT_EQ(g.size(), 3u);
  EXPECT_DOUBLE_EQ(g.NumericAt(0), 3.0);
  EXPECT_DOUBLE_EQ(g.NumericAt(2), 3.0);
}

TEST(ColumnTest, CategoricalIsDictionaryEncoded) {
  Column c = Column::Categorical({"b", "a", "b", "c"});
  // Dictionary in first-appearance order; codes index it.
  EXPECT_EQ(c.dictionary(), (std::vector<std::string>{"b", "a", "c"}));
  EXPECT_EQ(c.CodeAt(0), 0u);
  EXPECT_EQ(c.CodeAt(1), 1u);
  EXPECT_EQ(c.CodeAt(2), 0u);
  EXPECT_EQ(c.CodeAt(3), 2u);
  EXPECT_EQ(c.CategoricalAt(3), "c");
  EXPECT_EQ(c.categorical_data(),
            (std::vector<std::string>{"b", "a", "b", "c"}));
}

TEST(ColumnTest, GatherIsAZeroCopyView) {
  Column c = Column::Numeric({1.0, 2.0, 3.0, 4.0});
  Column g = c.Gather({3, 1});
  EXPECT_TRUE(g.is_view());
  // The view shares the source's physical buffer.
  EXPECT_EQ(&g.numeric_buffer(), &c.numeric_buffer());
  Column flat = g.Materialize();
  EXPECT_FALSE(flat.is_view());
  EXPECT_DOUBLE_EQ(flat.NumericAt(0), 4.0);
  EXPECT_DOUBLE_EQ(flat.NumericAt(1), 2.0);
}

TEST(ColumnTest, AppendDetachesSharedStorageLeavingViewsIntact) {
  Column c = Column::Numeric({1.0, 2.0, 3.0});
  Column view = c.Gather({0, 2});
  c.AppendNumeric(4.0);  // Must not disturb the view (copy-on-write).
  EXPECT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.NumericAt(3), 4.0);
  EXPECT_EQ(view.size(), 2u);
  EXPECT_DOUBLE_EQ(view.NumericAt(0), 1.0);
  EXPECT_DOUBLE_EQ(view.NumericAt(1), 3.0);

  Column cat = Column::Categorical({"x", "y"});
  Column cat_view = cat.Gather({1});
  cat.AppendCategorical("z");
  cat.AppendCategorical("y");  // Existing value reuses its code.
  EXPECT_EQ(cat.size(), 4u);
  EXPECT_EQ(cat.CategoricalAt(2), "z");
  EXPECT_EQ(cat.CodeAt(3), cat.CodeAt(1));
  EXPECT_EQ(cat_view.CategoricalAt(0), "y");
}

// --------------------------- DataFrame --------------------------------

TEST(DataFrameTest, BuildAndInspect) {
  DataFrame df = MakeSample();
  EXPECT_EQ(df.num_rows(), 4u);
  EXPECT_EQ(df.num_columns(), 3u);
  EXPECT_DOUBLE_EQ(df.NumericValue(2, "y").value(), 30.0);
  EXPECT_EQ(df.CategoricalValue(1, "tag").value(), "b");
}

TEST(DataFrameTest, RejectsLengthMismatch) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {1.0, 2.0}).ok());
  EXPECT_EQ(df.AddNumericColumn("y", {1.0}).code(),
            StatusCode::kInvalidArgument);
}

TEST(DataFrameTest, RejectsDuplicateColumn) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {1.0}).ok());
  EXPECT_EQ(df.AddCategoricalColumn("x", {"a"}).code(),
            StatusCode::kAlreadyExists);
}

TEST(DataFrameTest, TypedAccessErrors) {
  DataFrame df = MakeSample();
  EXPECT_FALSE(df.NumericValue(0, "tag").ok());
  EXPECT_FALSE(df.CategoricalValue(0, "x").ok());
  EXPECT_EQ(df.NumericValue(99, "x").status().code(), StatusCode::kOutOfRange);
  EXPECT_FALSE(df.NumericValue(0, "missing").ok());
}

TEST(DataFrameTest, NumericRowSkipsCategoricals) {
  DataFrame df = MakeSample();
  linalg::Vector row = df.NumericRow(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 2.0);
  EXPECT_DOUBLE_EQ(row[1], 20.0);
}

TEST(DataFrameTest, NumericMatrixShapeAndContent) {
  DataFrame df = MakeSample();
  linalg::Matrix m = df.NumericMatrix();
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(3, 1), 40.0);
}

TEST(DataFrameTest, NumericMatrixForSelectsAndOrders) {
  DataFrame df = MakeSample();
  auto m = df.NumericMatrixFor({"y", "x"});
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ((*m)(0, 0), 10.0);
  EXPECT_DOUBLE_EQ((*m)(0, 1), 1.0);
  EXPECT_FALSE(df.NumericMatrixFor({"tag"}).ok());
  EXPECT_FALSE(df.NumericMatrixFor({"nope"}).ok());
}

TEST(DataFrameTest, NameLists) {
  DataFrame df = MakeSample();
  EXPECT_EQ(df.NumericNames(), (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(df.CategoricalNames(), (std::vector<std::string>{"tag"}));
}

TEST(DataFrameTest, FilterKeepsMatchingRows) {
  DataFrame df = MakeSample();
  DataFrame evens = df.Filter([&](size_t i) {
    return df.NumericValue(i, "x").value() > 2.5;
  });
  EXPECT_EQ(evens.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(evens.NumericValue(0, "x").value(), 3.0);
}

TEST(DataFrameTest, SliceClampsBounds) {
  DataFrame df = MakeSample();
  EXPECT_EQ(df.Slice(1, 3).num_rows(), 2u);
  EXPECT_EQ(df.Slice(2, 100).num_rows(), 2u);
  EXPECT_EQ(df.Slice(3, 1).num_rows(), 0u);
}

TEST(DataFrameTest, GatherWithRepeats) {
  DataFrame df = MakeSample();
  DataFrame g = df.Gather({0, 0, 3});
  EXPECT_EQ(g.num_rows(), 3u);
  EXPECT_EQ(g.CategoricalValue(2, "tag").value(), "b");
}

TEST(DataFrameTest, SamplePreservesSchemaAndClampsK) {
  Rng rng(5);
  DataFrame df = MakeSample();
  DataFrame s = df.Sample(2, &rng);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.schema(), df.schema());
  EXPECT_EQ(df.Sample(100, &rng).num_rows(), 4u);
}

TEST(DataFrameTest, ConcatAppendsRows) {
  DataFrame a = MakeSample();
  DataFrame b = MakeSample();
  auto c = a.Concat(b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->num_rows(), 8u);
  EXPECT_DOUBLE_EQ(c->NumericValue(4, "x").value(), 1.0);
}

TEST(DataFrameTest, ConcatRejectsSchemaMismatch) {
  DataFrame a = MakeSample();
  DataFrame b;
  ASSERT_TRUE(b.AddNumericColumn("x", {1.0}).ok());
  EXPECT_FALSE(a.Concat(b).ok());
}

TEST(DataFrameTest, PartitionByGroupsAllRows) {
  DataFrame df = MakeSample();
  auto parts = df.PartitionBy("tag");
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 2u);
  EXPECT_EQ(parts->at("a").num_rows(), 2u);
  EXPECT_EQ(parts->at("b").num_rows(), 2u);
  EXPECT_DOUBLE_EQ(parts->at("a").NumericValue(1, "x").value(), 3.0);
}

TEST(DataFrameTest, PartitionByRejectsNumeric) {
  DataFrame df = MakeSample();
  EXPECT_FALSE(df.PartitionBy("x").ok());
}

TEST(DataFrameTest, DropColumns) {
  DataFrame df = MakeSample();
  auto dropped = df.DropColumns({"y"});
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->num_columns(), 2u);
  EXPECT_FALSE(dropped->schema().Contains("y"));
  EXPECT_EQ(dropped->num_rows(), 4u);
  EXPECT_FALSE(df.DropColumns({"nope"}).ok());
}

TEST(DataFrameTest, SelectColumnsReorders) {
  DataFrame df = MakeSample();
  auto sel = df.SelectColumns({"tag", "x"});
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->num_columns(), 2u);
  EXPECT_EQ(sel->schema().attribute(0).name, "tag");
  EXPECT_FALSE(df.SelectColumns({"zzz"}).ok());
}

TEST(DataFrameTest, DescribeMentionsEveryColumn) {
  DataFrame df = MakeSample();
  std::string desc = df.Describe();
  EXPECT_NE(desc.find("x"), std::string::npos);
  EXPECT_NE(desc.find("tag"), std::string::npos);
  EXPECT_NE(desc.find("4 rows"), std::string::npos);
}

TEST(DataFrameTest, EmptyFrame) {
  DataFrame df;
  EXPECT_EQ(df.num_rows(), 0u);
  EXPECT_EQ(df.num_columns(), 0u);
  EXPECT_EQ(df.NumericMatrix().rows(), 0u);
}

}  // namespace
}  // namespace ccs::dataframe
