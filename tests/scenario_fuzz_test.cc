// Scenario fuzzing harness: draw N random (spec, seed) pairs from
// scenario::RandomSpec, run each through the streaming monitor, and
// check the invariants every scenario must hold — no crash, no UNKNOWN
// status, and a bitwise-replayable trace that is identical at 1 and 4
// threads. On any violation the failing draw's seed and full spec JSON
// are printed so the exact case replays with:
//
//   ./build/ccsynth gauntlet --scenario <spec.json> --seed <seed>
//
// Deterministic by default (CCS_FUZZ_SEED=1). Override the seed or the
// draw count via the CCS_FUZZ_SEED / CCS_FUZZ_DRAWS environment
// variables to widen a local hunt; CI runs the fixed default under
// ASan so every run covers the same corpus.

#include <cstdint>
#include <cstdlib>
#include <string>

#include "common/random.h"
#include "gtest/gtest.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace ccs::scenario {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<uint64_t>(std::strtoull(value, nullptr, 10));
}

TEST(ScenarioFuzzTest, RandomSpecsHoldTheDeterminismContract) {
  const uint64_t base_seed = EnvOr("CCS_FUZZ_SEED", 1);
  const uint64_t draws = EnvOr("CCS_FUZZ_DRAWS", 25);

  for (uint64_t i = 0; i < draws; ++i) {
    const uint64_t seed = base_seed + i;
    // Fresh composer per draw: draw i depends only on (base_seed, i),
    // never on how many stages earlier draws consumed.
    Rng rng(seed);
    const ScenarioSpec spec = RandomSpec(&rng);
    SCOPED_TRACE("fuzz seed " + std::to_string(seed) + ", replay spec:\n" +
                 SpecToJson(spec));

    auto first = RunScenario(spec, seed, /*num_threads=*/1);
    ASSERT_TRUE(first.ok()) << "harness error: " << first.status();
    // Malformed streams must surface as structured InvalidArgument
    // teardowns, never as an internal/unclassified failure.
    EXPECT_NE(first->terminal.code(), StatusCode::kInternal)
        << first->terminal.ToString();

    auto replay = RunScenario(spec, seed, /*num_threads=*/1);
    ASSERT_TRUE(replay.ok()) << "harness error: " << replay.status();
    ASSERT_TRUE(TracesIdentical(*first, *replay))
        << "rerun nondeterminism\n-- first --\n"
        << first->ToString() << "-- replay --\n"
        << replay->ToString();

    auto threaded = RunScenario(spec, seed, /*num_threads=*/4);
    ASSERT_TRUE(threaded.ok()) << "harness error: " << threaded.status();
    ASSERT_TRUE(TracesIdentical(*first, *threaded))
        << "thread-count nondeterminism\n-- 1 thread --\n"
        << first->ToString() << "-- 4 threads --\n"
        << threaded->ToString();
  }
}

}  // namespace
}  // namespace ccs::scenario
