// Tests for core/synthesizer: Algorithm 1 and its guarantees
// (Theorem 13), Example 6/7 scenarios, disjunctive synthesis (§4.2), and
// the parallel-synthesis determinism contract (bitwise-identical
// constraints at every thread count).

#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.h"
#include "common/random.h"
#include "core/synthesizer.h"
#include "linalg/gram.h"
#include "stats/correlation.h"

namespace ccs::core {
namespace {

using dataframe::DataFrame;
using linalg::Vector;

// The Example 6 dataset: {(1,1.1),(2,1.7),(3,3.2)} over attributes X, Y.
DataFrame Example6() {
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("X", {1.0, 2.0, 3.0}).ok());
  CCS_CHECK(df.AddNumericColumn("Y", {1.1, 1.7, 3.2}).ok());
  return df;
}

// Correlated two-attribute data: y = slope*x + small noise.
DataFrame CorrelatedFrame(size_t n, double slope, double noise,
                          uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-10.0, 10.0);
    y[i] = slope * x[i] + rng.Gaussian(0.0, noise);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

TEST(SynthesizerTest, TrainingTuplesAreConforming) {
  DataFrame df = Example6();
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  for (size_t i = 0; i < df.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(constraint->Violation(df, i).value(), 0.0)
        << "training tuple " << i << " must satisfy its own constraints";
  }
}

TEST(SynthesizerTest, ImportanceFactorsAreNormalized) {
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(CorrelatedFrame(200, 2.0, 0.1, 1));
  ASSERT_TRUE(constraint.ok());
  double total = 0.0;
  for (const auto& c : constraint->conjuncts()) {
    EXPECT_GT(c.importance(), 0.0);
    total += c.importance();
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(SynthesizerTest, LowVarianceProjectionGetsHigherImportance) {
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(CorrelatedFrame(500, 2.0, 0.05, 2));
  ASSERT_TRUE(constraint.ok());
  // Find min- and max-stddev conjuncts; importance must be anti-monotone.
  const BoundedConstraint* lo = nullptr;
  const BoundedConstraint* hi = nullptr;
  for (const auto& c : constraint->conjuncts()) {
    if (lo == nullptr || c.stddev() < lo->stddev()) lo = &c;
    if (hi == nullptr || c.stddev() > hi->stddev()) hi = &c;
  }
  ASSERT_NE(lo, hi);
  EXPECT_GT(lo->importance(), hi->importance());
}

// Theorem 13(2): projections from Algorithm 1 are pairwise uncorrelated.
TEST(SynthesizerTest, ProjectionsArePairwiseUncorrelated) {
  Rng rng(3);
  // Three attributes with strong cross-correlations.
  std::vector<double> a(400), b(400), c(400);
  for (size_t i = 0; i < 400; ++i) {
    a[i] = rng.Uniform(-5.0, 5.0);
    b[i] = 0.7 * a[i] + rng.Gaussian(0.0, 0.5);
    c[i] = -0.4 * a[i] + 0.9 * b[i] + rng.Gaussian(0.0, 0.3);
  }
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("a", std::move(a)).ok());
  ASSERT_TRUE(df.AddNumericColumn("b", std::move(b)).ok());
  ASSERT_TRUE(df.AddNumericColumn("c", std::move(c)).ok());

  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  const auto& conjuncts = constraint->conjuncts();
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    auto fi = conjuncts[i].projection().EvaluateAll(df);
    ASSERT_TRUE(fi.ok());
    for (size_t j = i + 1; j < conjuncts.size(); ++j) {
      auto fj = conjuncts[j].projection().EvaluateAll(df);
      ASSERT_TRUE(fj.ok());
      double rho = stats::PearsonCorrelation(*fi, *fj).value();
      EXPECT_NEAR(rho, 0.0, 1e-6)
          << "projections " << i << " and " << j << " are correlated";
    }
  }
}

// Theorem 13(1): no unit-norm linear projection has smaller stddev than
// the best synthesized one (checked against random probes).
TEST(SynthesizerTest, MinVarianceProjectionIsOptimalAmongProbes) {
  DataFrame df = CorrelatedFrame(300, 1.5, 0.2, 5);
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  double best_sigma = 1e300;
  for (const auto& c : constraint->conjuncts()) {
    best_sigma = std::min(best_sigma, c.stddev());
  }
  Rng rng(7);
  for (int probe = 0; probe < 200; ++probe) {
    Vector w{rng.Gaussian(), rng.Gaussian()};
    if (w.Norm() < 1e-9) continue;
    w = w.Normalized();
    auto p = Projection::Create({"x", "y"}, w);
    ASSERT_TRUE(p.ok());
    auto values = p->EvaluateAll(df);
    ASSERT_TRUE(values.ok());
    EXPECT_GE(values->StdDev() + 1e-9, best_sigma);
  }
}

// Example 6/7: the synthesized conformance zone must exclude the
// incongruous tuples (0,4) and (4,0) that per-attribute bounds admit.
TEST(SynthesizerTest, IncongruousTuplesAreExcluded) {
  DataFrame df = Example6();
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  EXPECT_GT(constraint->ViolationAligned(Vector{0.0, 4.0}), 0.3);
  EXPECT_GT(constraint->ViolationAligned(Vector{4.0, 0.0}), 0.3);
}

// The trend-following tuple (e.g. (4, 4.2) extends the X≈Y trend) should
// conform even though it lies outside the training range — the paper's
// argument against convex-polytope overfitting.
TEST(SynthesizerTest, TrendFollowingTupleConforms) {
  DataFrame df = CorrelatedFrame(500, 10.0, 0.02, 11);  // y = 10x.
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  // (5, 50) follows the trend but may exceed the per-attribute ranges.
  EXPECT_LT(constraint->ViolationAligned(Vector{5.0, 50.0}), 0.05);
  // (5, 0) breaks the trend.
  EXPECT_GT(constraint->ViolationAligned(Vector{5.0, 0.0}), 0.5);
}

TEST(SynthesizerTest, BoundsAreMeanPlusMinusCSigma) {
  DataFrame df = CorrelatedFrame(300, 2.0, 0.5, 13);
  SynthesisOptions options;
  options.bound_multiplier = 3.0;
  Synthesizer synth(options);
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  for (const auto& c : constraint->conjuncts()) {
    EXPECT_NEAR(c.lb(), c.mean() - 3.0 * c.stddev(), 1e-9);
    EXPECT_NEAR(c.ub(), c.mean() + 3.0 * c.stddev(), 1e-9);
  }
}

TEST(SynthesizerTest, GramPathMatchesDataFramePath) {
  DataFrame df = CorrelatedFrame(100, -1.0, 0.3, 17);
  Synthesizer synth;
  auto direct = synth.SynthesizeSimple(df);
  ASSERT_TRUE(direct.ok());

  linalg::GramAccumulator gram(2);
  auto data = df.NumericMatrixFor({"x", "y"});
  ASSERT_TRUE(data.ok());
  gram.AddMatrix(*data);
  auto from_gram = synth.SynthesizeSimpleFromGram({"x", "y"}, gram);
  ASSERT_TRUE(from_gram.ok());

  ASSERT_EQ(direct->conjuncts().size(), from_gram->conjuncts().size());
  for (size_t k = 0; k < direct->conjuncts().size(); ++k) {
    EXPECT_NEAR(direct->conjuncts()[k].stddev(),
                from_gram->conjuncts()[k].stddev(), 1e-9);
    EXPECT_NEAR(direct->conjuncts()[k].lb(), from_gram->conjuncts()[k].lb(),
                1e-6);
  }
}

TEST(SynthesizerTest, ErrorsOnDegenerateInput) {
  Synthesizer synth;
  DataFrame empty;
  EXPECT_FALSE(synth.SynthesizeSimple(empty).ok());

  DataFrame categorical_only;
  ASSERT_TRUE(categorical_only.AddCategoricalColumn("c", {"a"}).ok());
  EXPECT_FALSE(synth.SynthesizeSimple(categorical_only).ok());
}

TEST(SynthesizerTest, ConstantAttributeYieldsEqualityLikeConstraint) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("k", {7.0, 7.0, 7.0, 7.0}).ok());
  ASSERT_TRUE(df.AddNumericColumn("v", {1.0, 2.0, 3.0, 4.0}).ok());
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  // A tuple with k != 7 must be flagged hard.
  EXPECT_GT(constraint->ViolationAligned(Vector{8.0, 2.5}), 0.3);
  EXPECT_DOUBLE_EQ(constraint->ViolationAligned(Vector{7.0, 2.5}), 0.0);
}

// --------------------- disjunctive synthesis --------------------------

DataFrame PiecewiseFrame() {
  // Two partitions with opposite linear trends (Appendix F's motivation):
  // group "a": y = x; group "b": y = -x.
  Rng rng(19);
  std::vector<double> x, y;
  std::vector<std::string> g;
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(-5.0, 5.0);
    x.push_back(v);
    y.push_back(v + rng.Gaussian(0.0, 0.05));
    g.push_back("a");
  }
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(-5.0, 5.0);
    x.push_back(v);
    y.push_back(-v + rng.Gaussian(0.0, 0.05));
    g.push_back("b");
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  CCS_CHECK(df.AddCategoricalColumn("g", std::move(g)).ok());
  return df;
}

TEST(DisjunctiveSynthesisTest, OneCasePerPartition) {
  DataFrame df = PiecewiseFrame();
  Synthesizer synth;
  auto disj = synth.SynthesizeDisjunctive(df, "g");
  ASSERT_TRUE(disj.ok());
  EXPECT_EQ(disj->attribute(), "g");
  EXPECT_EQ(disj->cases().size(), 2u);
}

TEST(DisjunctiveSynthesisTest, PartitionConstraintsAreTighter) {
  // Per-partition constraints catch a tuple that matches the WRONG
  // partition's trend; a global constraint cannot.
  DataFrame df = PiecewiseFrame();
  Synthesizer synth;
  auto disj = synth.SynthesizeDisjunctive(df, "g");
  ASSERT_TRUE(disj.ok());

  DataFrame probe;
  ASSERT_TRUE(probe.AddNumericColumn("x", {3.0}).ok());
  ASSERT_TRUE(probe.AddNumericColumn("y", {-3.0}).ok());  // Trend of "b".
  ASSERT_TRUE(probe.AddCategoricalColumn("g", {"a"}).ok());  // Claimed "a".
  EXPECT_GT(disj->Violation(probe, 0).value(), 0.4);

  DataFrame probe_ok;
  ASSERT_TRUE(probe_ok.AddNumericColumn("x", {3.0}).ok());
  ASSERT_TRUE(probe_ok.AddNumericColumn("y", {3.0}).ok());
  ASSERT_TRUE(probe_ok.AddCategoricalColumn("g", {"a"}).ok());
  EXPECT_LT(disj->Violation(probe_ok, 0).value(), 0.05);
}

TEST(DisjunctiveSynthesisTest, SmallPartitionsSkipped) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {1.0, 2.0, 3.0}).ok());
  ASSERT_TRUE(df.AddCategoricalColumn("g", {"big", "big", "tiny"}).ok());
  SynthesisOptions options;
  options.min_partition_rows = 2;
  Synthesizer synth(options);
  auto disj = synth.SynthesizeDisjunctive(df, "g");
  ASSERT_TRUE(disj.ok());
  EXPECT_EQ(disj->cases().size(), 1u);
  EXPECT_TRUE(disj->cases().count("big"));
}

TEST(DisjunctiveSynthesisTest, RejectsNumericSwitch) {
  DataFrame df = PiecewiseFrame();
  Synthesizer synth;
  EXPECT_FALSE(synth.SynthesizeDisjunctive(df, "x").ok());
}

// --------------------- compound synthesis -----------------------------

TEST(CompoundSynthesisTest, GlobalPlusDisjunctions) {
  DataFrame df = PiecewiseFrame();
  Synthesizer synth;
  auto phi = synth.Synthesize(df);
  ASSERT_TRUE(phi.ok());
  EXPECT_TRUE(phi->has_global());
  ASSERT_EQ(phi->disjunctions().size(), 1u);
  EXPECT_EQ(phi->disjunctions()[0].attribute(), "g");
}

TEST(CompoundSynthesisTest, LargeDomainCategoricalIsSkipped) {
  Rng rng(23);
  std::vector<double> x;
  std::vector<std::string> id;
  for (int i = 0; i < 100; ++i) {
    x.push_back(rng.Uniform());
    id.push_back("row" + std::to_string(i));  // 100 distinct values.
  }
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(df.AddCategoricalColumn("id", std::move(id)).ok());
  SynthesisOptions options;
  options.max_categorical_domain = 50;
  Synthesizer synth(options);
  auto phi = synth.Synthesize(df);
  ASSERT_TRUE(phi.ok());
  EXPECT_TRUE(phi->disjunctions().empty());
}

TEST(CompoundSynthesisTest, GlobalOnlyOption) {
  DataFrame df = PiecewiseFrame();
  SynthesisOptions options;
  options.include_disjunctive = false;
  Synthesizer synth(options);
  auto phi = synth.Synthesize(df);
  ASSERT_TRUE(phi.ok());
  EXPECT_TRUE(phi->disjunctions().empty());
  EXPECT_TRUE(phi->has_global());
}

// ------------------ option/ablation parameterization ------------------

class BoundMultiplierTest : public ::testing::TestWithParam<double> {};

TEST_P(BoundMultiplierTest, LargerCMakesLooserConstraints) {
  DataFrame df = CorrelatedFrame(300, 2.0, 0.5, 29);
  SynthesisOptions options;
  options.bound_multiplier = GetParam();
  Synthesizer synth(options);
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  // An off-trend probe: violation must not increase with C.
  Vector probe{4.0, -8.0};
  double violation = constraint->ViolationAligned(probe);

  SynthesisOptions looser = options;
  looser.bound_multiplier = GetParam() * 2.0;
  auto loose = Synthesizer(looser).SynthesizeSimple(df);
  ASSERT_TRUE(loose.ok());
  EXPECT_LE(loose->ViolationAligned(probe), violation + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cs, BoundMultiplierTest,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0));

class ImportanceMappingTest
    : public ::testing::TestWithParam<ImportanceMapping> {};

TEST_P(ImportanceMappingTest, AllMappingsYieldNormalizedWeights) {
  DataFrame df = CorrelatedFrame(200, 3.0, 0.2, 31);
  SynthesisOptions options;
  options.importance_mapping = GetParam();
  Synthesizer synth(options);
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  double total = 0.0;
  for (const auto& c : constraint->conjuncts()) total += c.importance();
  EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Mappings, ImportanceMappingTest,
                         ::testing::Values(ImportanceMapping::kInverseLog,
                                           ImportanceMapping::kInverseLinear,
                                           ImportanceMapping::kUniform));

class ProjectionFilterTest
    : public ::testing::TestWithParam<ProjectionFilter> {};

TEST_P(ProjectionFilterTest, FilterControlsConjunctCount) {
  Rng rng(37);
  std::vector<double> a(200), b(200), c(200), d(200);
  for (size_t i = 0; i < 200; ++i) {
    a[i] = rng.Gaussian();
    b[i] = rng.Gaussian();
    c[i] = a[i] + 0.1 * rng.Gaussian();
    d[i] = b[i] - a[i] + 0.1 * rng.Gaussian();
  }
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("a", std::move(a)).ok());
  ASSERT_TRUE(df.AddNumericColumn("b", std::move(b)).ok());
  ASSERT_TRUE(df.AddNumericColumn("c", std::move(c)).ok());
  ASSERT_TRUE(df.AddNumericColumn("d", std::move(d)).ok());

  SynthesisOptions all_options;
  all_options.projection_filter = ProjectionFilter::kAll;
  auto all = Synthesizer(all_options).SynthesizeSimple(df);
  ASSERT_TRUE(all.ok());

  SynthesisOptions options;
  options.projection_filter = GetParam();
  auto filtered = Synthesizer(options).SynthesizeSimple(df);
  ASSERT_TRUE(filtered.ok());
  if (GetParam() == ProjectionFilter::kAll) {
    EXPECT_EQ(filtered->conjuncts().size(), all->conjuncts().size());
  } else {
    EXPECT_LT(filtered->conjuncts().size(), all->conjuncts().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Filters, ProjectionFilterTest,
                         ::testing::Values(ProjectionFilter::kAll,
                                           ProjectionFilter::kLowVarianceHalf,
                                           ProjectionFilter::kHighVarianceHalf));

// ---------------- parallel-synthesis determinism ----------------------
//
// Contract: Synthesize / SynthesizeDisjunctive / SynthesizeSimple return
// constraints that are ConstraintsBitwiseEqual — every coefficient,
// bound, and partition key compared with ==, no tolerance — at 1, 2, and
// N threads. Shard boundaries (kGramShardRows) and merge order are fixed
// independently of the thread count, so this is exact, not approximate.

// Restores the process-default thread count even if a test fails.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { common::SetDefaultThreadCount(0); }
};

// A frame wide and tall enough to cross several Gram shard boundaries,
// with a skewed categorical switch (one dominant partition, several
// small ones, and singleton partitions that min_partition_rows skips).
DataFrame ShardCrossingFrame() {
  const size_t n = 3 * linalg::kGramShardRows + 137;  // Partial last shard.
  Rng rng(47);
  std::vector<double> x(n), y(n), z(n);
  std::vector<std::string> g(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-10.0, 10.0);
    y[i] = 0.5 * x[i] + rng.Gaussian(0.0, 0.2);
    z[i] = -x[i] + y[i] + rng.Gaussian(0.0, 0.3);
    if (i < 2) {
      g[i] = "singleton" + std::to_string(i);  // Below min_partition_rows.
    } else if (rng.Bernoulli(0.7)) {
      g[i] = "dominant";
    } else {
      g[i] = "minor" + std::to_string(rng.UniformInt(0, 3));
    }
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  CCS_CHECK(df.AddNumericColumn("z", std::move(z)).ok());
  CCS_CHECK(df.AddCategoricalColumn("g", std::move(g)).ok());
  return df;
}

TEST(ParallelSynthesisTest, SimpleConstraintBitwiseIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  DataFrame df = ShardCrossingFrame();
  Synthesizer synth;
  common::SetDefaultThreadCount(1);
  auto serial = synth.SynthesizeSimple(df);
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    common::SetDefaultThreadCount(threads);
    auto parallel = synth.SynthesizeSimple(df);
    ASSERT_TRUE(parallel.ok());
    EXPECT_TRUE(ConstraintsBitwiseEqual(*serial, *parallel))
        << "SynthesizeSimple diverged at " << threads << " threads";
  }
}

TEST(ParallelSynthesisTest, CompoundConstraintBitwiseIdenticalAcrossThreads) {
  ThreadCountGuard guard;
  DataFrame df = ShardCrossingFrame();
  Synthesizer synth;
  common::SetDefaultThreadCount(1);
  auto serial = synth.Synthesize(df);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(serial->has_global());
  ASSERT_EQ(serial->disjunctions().size(), 1u);
  // Singleton partitions are skipped; dominant + minor0..3 remain.
  EXPECT_EQ(serial->disjunctions()[0].cases().size(), 5u);
  for (size_t threads : {2u, 4u, 8u}) {
    common::SetDefaultThreadCount(threads);
    auto parallel = synth.Synthesize(df);
    ASSERT_TRUE(parallel.ok());
    EXPECT_TRUE(ConstraintsBitwiseEqual(*serial, *parallel))
        << "Synthesize diverged at " << threads << " threads";
  }
}

TEST(ParallelSynthesisTest, AllRowsInOnePartitionSkew) {
  // Extreme skew: every row carries the same switch value, so the work
  // queue holds exactly one (large) partition.
  ThreadCountGuard guard;
  const size_t n = linalg::kGramShardRows + 50;
  Rng rng(53);
  std::vector<double> x(n), y(n);
  std::vector<std::string> g(n, "only");
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = 2.0 * x[i] + rng.Gaussian(0.0, 0.1);
  }
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", std::move(y)).ok());
  ASSERT_TRUE(df.AddCategoricalColumn("g", std::move(g)).ok());

  Synthesizer synth;
  common::SetDefaultThreadCount(1);
  auto serial = synth.SynthesizeDisjunctive(df, "g");
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial->cases().size(), 1u);
  common::SetDefaultThreadCount(8);
  auto parallel = synth.SynthesizeDisjunctive(df, "g");
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(ConstraintsBitwiseEqual(*serial, *parallel));
}

TEST(ParallelSynthesisTest, SinglePartitionsBelowMinimumFailIdentically) {
  // Every partition is a singleton: no case survives, and the error is
  // the same FailedPrecondition at any thread count (an "empty
  // partition set" must not depend on scheduling).
  ThreadCountGuard guard;
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {1.0, 2.0, 3.0, 4.0}).ok());
  ASSERT_TRUE(df.AddCategoricalColumn("g", {"a", "b", "c", "d"}).ok());
  Synthesizer synth;
  for (size_t threads : {1u, 8u}) {
    common::SetDefaultThreadCount(threads);
    auto disj = synth.SynthesizeDisjunctive(df, "g");
    ASSERT_FALSE(disj.ok());
    EXPECT_EQ(disj.status().code(), StatusCode::kFailedPrecondition)
        << "at " << threads << " threads";
  }
}

TEST(ParallelSynthesisTest, GramMatrixPathIdenticalAcrossThreads) {
  // The layer below the synthesizer: AddMatrix itself must produce the
  // same bits at any thread count (fixed shards, ordered merge).
  ThreadCountGuard guard;
  const size_t n = 2 * linalg::kGramShardRows + 11;
  Rng rng(59);
  linalg::Matrix data(n, 3);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < 3; ++c) data.At(r, c) = rng.Gaussian();
  }
  common::SetDefaultThreadCount(1);
  linalg::GramAccumulator serial(3);
  serial.AddMatrix(data);
  for (size_t threads : {2u, 8u}) {
    common::SetDefaultThreadCount(threads);
    linalg::GramAccumulator parallel(3);
    parallel.AddMatrix(data);
    ASSERT_EQ(parallel.count(), serial.count());
    linalg::Matrix serial_gram = serial.AugmentedGram();
    linalg::Matrix parallel_gram = parallel.AugmentedGram();
    const auto& a = serial_gram.data();
    const auto& b = parallel_gram.data();
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "Gram entry " << i << " differs at "
                            << threads << " threads";
    }
  }
}

TEST(ProjectionFilterTest, MinimumVarianceOnlyKeepsSingleConjunct) {
  DataFrame df = CorrelatedFrame(200, 2.0, 0.1, 41);
  SynthesisOptions options;
  options.projection_filter = ProjectionFilter::kMinimumVarianceOnly;
  auto constraint = Synthesizer(options).SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  ASSERT_EQ(constraint->conjuncts().size(), 1u);
  EXPECT_NEAR(constraint->conjuncts()[0].importance(), 1.0, 1e-12);
  // It is the lowest-variance projection: the (y - 2x)-like direction.
  SynthesisOptions all;
  auto full = Synthesizer(all).SynthesizeSimple(df);
  ASSERT_TRUE(full.ok());
  double min_sigma = 1e300;
  for (const auto& c : full->conjuncts()) {
    min_sigma = std::min(min_sigma, c.stddev());
  }
  EXPECT_NEAR(constraint->conjuncts()[0].stddev(), min_sigma, 1e-9);
}

}  // namespace
}  // namespace ccs::core
