// Tests for baselines/: PCA-SPLL, CD, W-PCA — and their characteristic
// blind spots relative to conformance constraints.

#include <gtest/gtest.h>

#include "baselines/cd.h"
#include "baselines/pca_spll.h"
#include "baselines/wpca.h"
#include "common/random.h"
#include "synth/evl.h"

namespace ccs::baselines {
namespace {

using dataframe::DataFrame;

DataFrame GaussianBlob(double cx, double cy, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Gaussian(cx, 1.0);
    y[i] = rng.Gaussian(cy, 1.0);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

template <typename Detector>
void ExpectDetectsGlobalShift(Detector* detector) {
  DataFrame reference = GaussianBlob(0.0, 0.0, 600, 1);
  ASSERT_TRUE(detector->Fit(reference).ok());
  double self = detector->Score(GaussianBlob(0.0, 0.0, 300, 2)).value();
  double shifted = detector->Score(GaussianBlob(6.0, 6.0, 300, 3)).value();
  EXPECT_GT(shifted, self * 1.5 + 1e-6) << detector->name();
}

// Correlated blob: y = x + small noise, shifted off-trend by `offset`.
DataFrame TrendBlob(double offset, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = x[i] + offset + rng.Gaussian(0.0, 0.2);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

// PCA-SPLL keeps only LOW-variance components, so it is tested on data
// that has one (a tight trend) with a shift that breaks the trend. On an
// isotropic blob it retains nothing — the Fig. 8 failure mode, covered by
// DiscardsEverythingOnIsotropicData below.
TEST(PcaSpllTest, DetectsOffTrendShift) {
  PcaSpll detector;
  ASSERT_TRUE(detector.Fit(TrendBlob(0.0, 600, 30)).ok());
  double self = detector.Score(TrendBlob(0.0, 300, 31)).value();
  double shifted = detector.Score(TrendBlob(3.0, 300, 32)).value();
  EXPECT_GT(shifted, self * 5.0 + 1e-6);
}

TEST(PcaSpllTest, DiscardsEverythingOnIsotropicData) {
  // Both PCs carry ~50% of the variance; none fits under the 25% budget,
  // so PCA-SPLL goes blind — the paper's observed failure mode.
  PcaSpll detector;
  ASSERT_TRUE(detector.Fit(GaussianBlob(0.0, 0.0, 600, 33)).ok());
  EXPECT_EQ(detector.num_retained(), 0u);
  EXPECT_DOUBLE_EQ(detector.Score(GaussianBlob(9.0, 9.0, 300, 34)).value(),
                   0.0);
}

TEST(CdAreaTest, DetectsGlobalShift) {
  ChangeDetection detector;
  ExpectDetectsGlobalShift(&detector);
}

TEST(CdMklTest, DetectsGlobalShift) {
  CdOptions options;
  options.metric = CdMetric::kMkl;
  ChangeDetection detector(options);
  ExpectDetectsGlobalShift(&detector);
}

TEST(WpcaTest, DetectsGlobalShift) {
  WeightedPca detector;
  ExpectDetectsGlobalShift(&detector);
}

TEST(ConformanceDetectorTest, DetectsGlobalShift) {
  ConformanceDetector detector;
  ExpectDetectsGlobalShift(&detector);
}

TEST(DetectorTest, NamesAreDistinct) {
  PcaSpll a;
  ChangeDetection b;
  CdOptions mkl;
  mkl.metric = CdMetric::kMkl;
  ChangeDetection c(mkl);
  WeightedPca d;
  ConformanceDetector e;
  std::set<std::string> names = {a.name(), b.name(), c.name(), d.name(),
                                 e.name()};
  EXPECT_EQ(names.size(), 5u);
}

TEST(DetectorTest, ScoreBeforeFitIsError) {
  DataFrame w = GaussianBlob(0.0, 0.0, 50, 4);
  PcaSpll spll;
  EXPECT_FALSE(spll.Score(w).ok());
  ChangeDetection cd;
  EXPECT_FALSE(cd.Score(w).ok());
}

TEST(DetectorTest, EmptyReferenceIsError) {
  DataFrame empty;
  PcaSpll spll;
  EXPECT_FALSE(spll.Fit(empty).ok());
  ChangeDetection cd;
  EXPECT_FALSE(cd.Fit(empty).ok());
}

TEST(ScoreSeriesTest, FitsOnFirstWindow) {
  std::vector<DataFrame> windows;
  windows.push_back(GaussianBlob(0.0, 0.0, 300, 5));
  windows.push_back(GaussianBlob(0.0, 0.0, 300, 6));
  windows.push_back(GaussianBlob(5.0, 5.0, 300, 7));
  ChangeDetection cd;
  auto series = ScoreSeries(&cd, windows);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 3u);
  EXPECT_GT((*series)[2], (*series)[1]);
}

TEST(ScoreSeriesTest, EmptyWindowListIsError) {
  ChangeDetection cd;
  EXPECT_FALSE(ScoreSeries(&cd, {}).ok());
}

// The paper's central comparative claim (Fig. 6(c)/Fig. 8): on LOCAL
// drift that preserves the global distribution (4CR class rotation),
// conformance constraints with disjunctions see the drift while the
// global-only methods are (nearly) blind.
TEST(LocalDriftTest, ConformanceSeesClassRotationGlobalMethodsDoNot) {
  Rng rng(8);
  // 4CR at t=0 and t=0.5: classes swapped positions; union unchanged.
  auto t0 = synth::GenerateEvlWindow("4CR", 0.0, 1200, &rng);
  auto t_half = synth::GenerateEvlWindow("4CR", 0.5, 1200, &rng);
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t_half.ok());

  ConformanceDetector cc;
  ASSERT_TRUE(cc.Fit(*t0).ok());
  double cc_self = cc.Score(*t0).value();
  double cc_drift = cc.Score(*t_half).value();
  EXPECT_GT(cc_drift, cc_self + 0.2)
      << "disjunctive constraints must flag the class swap";

  PcaSpll spll;
  ASSERT_TRUE(spll.Fit(*t0).ok());
  double spll_self = spll.Score(*t0).value();
  double spll_drift = spll.Score(*t_half).value();
  // PCA-SPLL sees at most a marginal change (global shape identical).
  double spll_relative =
      (spll_drift - spll_self) / (std::abs(spll_self) + 1e-9);
  EXPECT_LT(spll_relative, 0.5)
      << "global PCA-SPLL should be (nearly) blind to the local swap";
}

TEST(PcaSpllTest, RetainsOnlyLowVarianceComponents) {
  // Strongly anisotropic data: x spans [-100,100], y is tight noise.
  Rng rng(9);
  std::vector<double> x(500), y(500);
  for (size_t i = 0; i < 500; ++i) {
    x[i] = rng.Uniform(-100.0, 100.0);
    y[i] = rng.Gaussian(0.0, 0.5);
  }
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", std::move(y)).ok());
  PcaSpll detector;
  ASSERT_TRUE(detector.Fit(df).ok());
  EXPECT_EQ(detector.num_retained(), 1u);  // Only the tight direction.
}

TEST(CdTest, RetainsHighVarianceComponents) {
  Rng rng(10);
  std::vector<double> x(500), y(500);
  for (size_t i = 0; i < 500; ++i) {
    x[i] = rng.Uniform(-100.0, 100.0);
    y[i] = rng.Gaussian(0.0, 0.5);
  }
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", std::move(y)).ok());
  ChangeDetection detector;
  ASSERT_TRUE(detector.Fit(df).ok());
  EXPECT_GE(detector.num_retained(), 1u);
  // CD misses a shift confined to the LOW-variance direction when the
  // variance threshold keeps only the dominant component.
  CdOptions tight;
  tight.variance_fraction = 0.5;  // Keep only the x component.
  ChangeDetection narrow(tight);
  ASSERT_TRUE(narrow.Fit(df).ok());
  EXPECT_EQ(narrow.num_retained(), 1u);

  std::vector<double> x2(300), y2(300);
  Rng rng2(11);
  for (size_t i = 0; i < 300; ++i) {
    x2[i] = rng2.Uniform(-100.0, 100.0);
    y2[i] = rng2.Gaussian(5.0, 0.5);  // Shift along y only.
  }
  DataFrame drifted;
  ASSERT_TRUE(drifted.AddNumericColumn("x", std::move(x2)).ok());
  ASSERT_TRUE(drifted.AddNumericColumn("y", std::move(y2)).ok());
  double self = narrow.Score(df).value();
  double shifted = narrow.Score(drifted).value();
  EXPECT_LT(shifted - self, 0.2) << "CD with top-PC only misses the y shift";
}

}  // namespace
}  // namespace ccs::baselines
