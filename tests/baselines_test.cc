// Tests for baselines/: PCA-SPLL, CD, W-PCA — and their characteristic
// blind spots relative to conformance constraints. Also pins each
// baseline's alarm trace on a gauntlet scenario against a checked-in
// golden (regenerate with CCS_UPDATE_GOLDEN=1 ./build/baselines_test;
// workflow: docs/scenarios.md).

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "baselines/cd.h"
#include "baselines/pca_spll.h"
#include "baselines/wpca.h"
#include "common/random.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "synth/evl.h"

namespace ccs::baselines {
namespace {

using dataframe::DataFrame;

DataFrame GaussianBlob(double cx, double cy, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Gaussian(cx, 1.0);
    y[i] = rng.Gaussian(cy, 1.0);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

template <typename Detector>
void ExpectDetectsGlobalShift(Detector* detector) {
  DataFrame reference = GaussianBlob(0.0, 0.0, 600, 1);
  ASSERT_TRUE(detector->Fit(reference).ok());
  double self = detector->Score(GaussianBlob(0.0, 0.0, 300, 2)).value();
  double shifted = detector->Score(GaussianBlob(6.0, 6.0, 300, 3)).value();
  EXPECT_GT(shifted, self * 1.5 + 1e-6) << detector->name();
}

// Correlated blob: y = x + small noise, shifted off-trend by `offset`.
DataFrame TrendBlob(double offset, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = x[i] + offset + rng.Gaussian(0.0, 0.2);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

// PCA-SPLL keeps only LOW-variance components, so it is tested on data
// that has one (a tight trend) with a shift that breaks the trend. On an
// isotropic blob it retains nothing — the Fig. 8 failure mode, covered by
// DiscardsEverythingOnIsotropicData below.
TEST(PcaSpllTest, DetectsOffTrendShift) {
  PcaSpll detector;
  ASSERT_TRUE(detector.Fit(TrendBlob(0.0, 600, 30)).ok());
  double self = detector.Score(TrendBlob(0.0, 300, 31)).value();
  double shifted = detector.Score(TrendBlob(3.0, 300, 32)).value();
  EXPECT_GT(shifted, self * 5.0 + 1e-6);
}

TEST(PcaSpllTest, DiscardsEverythingOnIsotropicData) {
  // Both PCs carry ~50% of the variance; none fits under the 25% budget,
  // so PCA-SPLL goes blind — the paper's observed failure mode.
  PcaSpll detector;
  ASSERT_TRUE(detector.Fit(GaussianBlob(0.0, 0.0, 600, 33)).ok());
  EXPECT_EQ(detector.num_retained(), 0u);
  EXPECT_DOUBLE_EQ(detector.Score(GaussianBlob(9.0, 9.0, 300, 34)).value(),
                   0.0);
}

TEST(CdAreaTest, DetectsGlobalShift) {
  ChangeDetection detector;
  ExpectDetectsGlobalShift(&detector);
}

TEST(CdMklTest, DetectsGlobalShift) {
  CdOptions options;
  options.metric = CdMetric::kMkl;
  ChangeDetection detector(options);
  ExpectDetectsGlobalShift(&detector);
}

TEST(WpcaTest, DetectsGlobalShift) {
  WeightedPca detector;
  ExpectDetectsGlobalShift(&detector);
}

TEST(ConformanceDetectorTest, DetectsGlobalShift) {
  ConformanceDetector detector;
  ExpectDetectsGlobalShift(&detector);
}

TEST(DetectorTest, NamesAreDistinct) {
  PcaSpll a;
  ChangeDetection b;
  CdOptions mkl;
  mkl.metric = CdMetric::kMkl;
  ChangeDetection c(mkl);
  WeightedPca d;
  ConformanceDetector e;
  std::set<std::string> names = {a.name(), b.name(), c.name(), d.name(),
                                 e.name()};
  EXPECT_EQ(names.size(), 5u);
}

TEST(DetectorTest, ScoreBeforeFitIsError) {
  DataFrame w = GaussianBlob(0.0, 0.0, 50, 4);
  PcaSpll spll;
  EXPECT_FALSE(spll.Score(w).ok());
  ChangeDetection cd;
  EXPECT_FALSE(cd.Score(w).ok());
}

TEST(DetectorTest, EmptyReferenceIsError) {
  DataFrame empty;
  PcaSpll spll;
  EXPECT_FALSE(spll.Fit(empty).ok());
  ChangeDetection cd;
  EXPECT_FALSE(cd.Fit(empty).ok());
}

TEST(ScoreSeriesTest, FitsOnFirstWindow) {
  std::vector<DataFrame> windows;
  windows.push_back(GaussianBlob(0.0, 0.0, 300, 5));
  windows.push_back(GaussianBlob(0.0, 0.0, 300, 6));
  windows.push_back(GaussianBlob(5.0, 5.0, 300, 7));
  ChangeDetection cd;
  auto series = ScoreSeries(&cd, windows);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 3u);
  EXPECT_GT((*series)[2], (*series)[1]);
}

TEST(ScoreSeriesTest, EmptyWindowListIsError) {
  ChangeDetection cd;
  EXPECT_FALSE(ScoreSeries(&cd, {}).ok());
}

// The paper's central comparative claim (Fig. 6(c)/Fig. 8): on LOCAL
// drift that preserves the global distribution (4CR class rotation),
// conformance constraints with disjunctions see the drift while the
// global-only methods are (nearly) blind.
TEST(LocalDriftTest, ConformanceSeesClassRotationGlobalMethodsDoNot) {
  Rng rng(8);
  // 4CR at t=0 and t=0.5: classes swapped positions; union unchanged.
  auto t0 = synth::GenerateEvlWindow("4CR", 0.0, 1200, &rng);
  auto t_half = synth::GenerateEvlWindow("4CR", 0.5, 1200, &rng);
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t_half.ok());

  ConformanceDetector cc;
  ASSERT_TRUE(cc.Fit(*t0).ok());
  double cc_self = cc.Score(*t0).value();
  double cc_drift = cc.Score(*t_half).value();
  EXPECT_GT(cc_drift, cc_self + 0.2)
      << "disjunctive constraints must flag the class swap";

  PcaSpll spll;
  ASSERT_TRUE(spll.Fit(*t0).ok());
  double spll_self = spll.Score(*t0).value();
  double spll_drift = spll.Score(*t_half).value();
  // PCA-SPLL sees at most a marginal change (global shape identical).
  double spll_relative =
      (spll_drift - spll_self) / (std::abs(spll_self) + 1e-9);
  EXPECT_LT(spll_relative, 0.5)
      << "global PCA-SPLL should be (nearly) blind to the local swap";
}

TEST(PcaSpllTest, RetainsOnlyLowVarianceComponents) {
  // Strongly anisotropic data: x spans [-100,100], y is tight noise.
  Rng rng(9);
  std::vector<double> x(500), y(500);
  for (size_t i = 0; i < 500; ++i) {
    x[i] = rng.Uniform(-100.0, 100.0);
    y[i] = rng.Gaussian(0.0, 0.5);
  }
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", std::move(y)).ok());
  PcaSpll detector;
  ASSERT_TRUE(detector.Fit(df).ok());
  EXPECT_EQ(detector.num_retained(), 1u);  // Only the tight direction.
}

TEST(CdTest, RetainsHighVarianceComponents) {
  Rng rng(10);
  std::vector<double> x(500), y(500);
  for (size_t i = 0; i < 500; ++i) {
    x[i] = rng.Uniform(-100.0, 100.0);
    y[i] = rng.Gaussian(0.0, 0.5);
  }
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", std::move(y)).ok());
  ChangeDetection detector;
  ASSERT_TRUE(detector.Fit(df).ok());
  EXPECT_GE(detector.num_retained(), 1u);
  // CD misses a shift confined to the LOW-variance direction when the
  // variance threshold keeps only the dominant component.
  CdOptions tight;
  tight.variance_fraction = 0.5;  // Keep only the x component.
  ChangeDetection narrow(tight);
  ASSERT_TRUE(narrow.Fit(df).ok());
  EXPECT_EQ(narrow.num_retained(), 1u);

  std::vector<double> x2(300), y2(300);
  Rng rng2(11);
  for (size_t i = 0; i < 300; ++i) {
    x2[i] = rng2.Uniform(-100.0, 100.0);
    y2[i] = rng2.Gaussian(5.0, 0.5);  // Shift along y only.
  }
  DataFrame drifted;
  ASSERT_TRUE(drifted.AddNumericColumn("x", std::move(x2)).ok());
  ASSERT_TRUE(drifted.AddNumericColumn("y", std::move(y2)).ok());
  double self = narrow.Score(df).value();
  double shifted = narrow.Score(drifted).value();
  EXPECT_LT(shifted - self, 0.2) << "CD with top-PC only misses the y shift";
}

// ----------------------------- AlarmSeries -----------------------------

TEST(AlarmSeriesTest, StrictlyGreaterThanThreshold) {
  // Exactly-at-threshold does NOT alarm — the same strict > that
  // StreamMonitor applies, so baseline and pipeline traces agree.
  auto alarms = AlarmSeries({0.1, 0.2, 0.2000001, 0.5}, 0.2);
  EXPECT_EQ(alarms, (std::vector<bool>{false, false, true, true}));
}

TEST(AlarmSeriesTest, NonFiniteScoresHaveDefinedBehavior) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  auto alarms = AlarmSeries({nan, inf, -inf}, 0.2);
  EXPECT_EQ(alarms, (std::vector<bool>{false, true, false}))
      << "NaN never alarms; +Inf always does";
}

TEST(AlarmSeriesTest, EmptySeriesYieldsEmptyAlarms) {
  EXPECT_TRUE(AlarmSeries({}, 0.2).empty());
}

TEST(AlarmSeriesTest, NegativeThresholdAlarmsOnZero) {
  auto alarms = AlarmSeries({0.0, -1.0}, -0.5);
  EXPECT_EQ(alarms, (std::vector<bool>{true, false}));
}

// --------------------- golden traces on scenarios ----------------------

// Each baseline's alarm trace on the abrupt-drift gauntlet scenario is
// pinned byte-for-byte. Detector names ("PCA-SPLL (25%)", …) are not
// file-safe, so goldens use explicit slugs.
void ExpectBaselineMatchesGolden(const std::string& golden_slug,
                                 DriftDetector* detector) {
  auto spec = scenario::CatalogueSpec("abrupt-drift");
  ASSERT_TRUE(spec.ok());
  auto trace = scenario::RunBaseline(*spec, /*seed=*/1, detector);
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(trace->detector, detector->name());

  const std::string path =
      std::string(CCS_GOLDEN_DIR) + "/" + golden_slug + ".trace";
  if (std::getenv("CCS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << trace->ToString();
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden " << path << " — regenerate with: "
      << "CCS_UPDATE_GOLDEN=1 ./build/baselines_test";
  std::stringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(trace->ToString(), golden.str())
      << golden_slug << ": trace drifted from " << path
      << " — if intended, regenerate with: "
      << "CCS_UPDATE_GOLDEN=1 ./build/baselines_test";

  // Replay is bitwise, baselines included.
  auto replay = scenario::RunBaseline(*spec, /*seed=*/1, detector);
  ASSERT_TRUE(replay.ok());
  EXPECT_TRUE(scenario::TracesIdentical(*trace, *replay));
}

TEST(BaselineGoldenTest, PcaSpll) {
  PcaSpll detector;
  ExpectBaselineMatchesGolden("baseline-pca-spll", &detector);
}

TEST(BaselineGoldenTest, CdArea) {
  ChangeDetection detector;
  ExpectBaselineMatchesGolden("baseline-cd-area", &detector);
}

TEST(BaselineGoldenTest, CdMkl) {
  CdOptions options;
  options.metric = CdMetric::kMkl;
  ChangeDetection detector(options);
  ExpectBaselineMatchesGolden("baseline-cd-mkl", &detector);
}

TEST(BaselineGoldenTest, Wpca) {
  WeightedPca detector;
  ExpectBaselineMatchesGolden("baseline-wpca", &detector);
}

TEST(BaselineGoldenTest, Ccsynth) {
  ConformanceDetector detector;
  ExpectBaselineMatchesGolden("baseline-ccsynth", &detector);
}

TEST(BaselineGoldenTest, TeardownScenarioReachesBaselinesToo) {
  // Baselines share the CsvChunkReader path, so a malformed stream
  // tears a baseline run down with the same structured error.
  auto spec = scenario::CatalogueSpec("garbled-cell");
  ASSERT_TRUE(spec.ok());
  PcaSpll detector;
  auto trace = scenario::RunBaseline(*spec, /*seed=*/1, &detector);
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(trace->terminal.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(trace->terminal.message().find("column 'x'"), std::string::npos)
      << trace->terminal.message();
  EXPECT_GT(trace->windows_scored, 0u);
}

}  // namespace
}  // namespace ccs::baselines
