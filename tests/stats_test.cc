// Tests for stats/: descriptive stats, histograms, divergences,
// correlation.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "stats/correlation.h"
#include "stats/descriptive.h"
#include "stats/divergence.h"
#include "stats/histogram.h"

namespace ccs::stats {
namespace {

using linalg::Vector;

// --------------------------- descriptive -----------------------------

TEST(SummarizeTest, KnownValues) {
  auto s = Summarize(Vector{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->count, 8);
  EXPECT_DOUBLE_EQ(s->mean, 5.0);
  EXPECT_DOUBLE_EQ(s->stddev, 2.0);  // Classic population-stddev example.
  EXPECT_DOUBLE_EQ(s->min, 2.0);
  EXPECT_DOUBLE_EQ(s->max, 9.0);
}

TEST(SummarizeTest, EmptyIsError) {
  EXPECT_FALSE(Summarize(Vector()).ok());
}

TEST(QuantileTest, MedianAndExtremes) {
  Vector v{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5).value(), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0).value(), 5.0);
}

TEST(QuantileTest, Interpolates) {
  Vector v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.25).value(), 2.5);
}

TEST(QuantileTest, Errors) {
  EXPECT_FALSE(Quantile(Vector(), 0.5).ok());
  EXPECT_FALSE(Quantile(Vector{1.0}, -0.1).ok());
  EXPECT_FALSE(Quantile(Vector{1.0}, 1.1).ok());
}

TEST(OnlineStatsTest, MatchesBatch) {
  Rng rng(3);
  Vector batch(500);
  OnlineStats online;
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i] = rng.Gaussian(3.0, 2.0);
    online.Add(batch[i]);
  }
  EXPECT_NEAR(online.mean(), batch.Mean(), 1e-10);
  EXPECT_NEAR(online.variance(), batch.Variance(), 1e-8);
}

TEST(OnlineStatsTest, MergeMatchesUnion) {
  Rng rng(5);
  OnlineStats a, b, whole;
  for (int i = 0; i < 200; ++i) {
    double v = rng.Uniform(-4.0, 9.0);
    whole.Add(v);
    (i % 3 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats empty, filled;
  filled.Add(1.0);
  filled.Add(3.0);
  OnlineStats copy = filled;
  copy.Merge(empty);
  EXPECT_EQ(copy.count(), 2);
  empty.Merge(filled);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(OnlineStatsTest, SingleValueHasZeroVariance) {
  OnlineStats s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

// --------------------------- histogram -------------------------------

TEST(HistogramTest, BinAssignment) {
  auto h = Histogram::Create(0.0, 10.0, 5);
  ASSERT_TRUE(h.ok());
  h->Add(1.0);   // Bin 0.
  h->Add(9.9);   // Bin 4.
  h->Add(5.0);   // Bin 2.
  EXPECT_EQ(h->bin_count(0), 1);
  EXPECT_EQ(h->bin_count(2), 1);
  EXPECT_EQ(h->bin_count(4), 1);
  EXPECT_EQ(h->total_count(), 3);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBins) {
  auto h = Histogram::Create(0.0, 1.0, 4);
  ASSERT_TRUE(h.ok());
  h->Add(-100.0);
  h->Add(100.0);
  EXPECT_EQ(h->bin_count(0), 1);
  EXPECT_EQ(h->bin_count(3), 1);
}

TEST(HistogramTest, DensitySumsToOne) {
  auto h = Histogram::FromData(Vector{1.0, 2.0, 3.0, 4.0, 5.0}, 4);
  ASSERT_TRUE(h.ok());
  double total = 0.0;
  for (double d : h->Density()) total += d;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(HistogramTest, SmoothedDensityIsStrictlyPositive) {
  auto h = Histogram::Create(0.0, 1.0, 10);
  ASSERT_TRUE(h.ok());
  h->Add(0.5);
  for (double d : h->Density(0.1)) EXPECT_GT(d, 0.0);
}

TEST(HistogramTest, ConstantDataHandled) {
  auto h = Histogram::FromData(Vector{2.0, 2.0, 2.0}, 8);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->total_count(), 3);
}

TEST(HistogramTest, Errors) {
  EXPECT_FALSE(Histogram::Create(0.0, 1.0, 0).ok());
  EXPECT_FALSE(Histogram::Create(2.0, 1.0, 4).ok());
  EXPECT_FALSE(Histogram::FromData(Vector(), 4).ok());
}

// --------------------------- divergence ------------------------------

TEST(DivergenceTest, IdenticalDensitiesScoreZero) {
  std::vector<double> p = {0.25, 0.25, 0.5};
  EXPECT_NEAR(KlDivergence(p, p).value(), 0.0, 1e-12);
  EXPECT_NEAR(MaxKlDivergence(p, p).value(), 0.0, 1e-12);
  EXPECT_NEAR(IntersectionArea(p, p).value(), 1.0, 1e-12);
  EXPECT_NEAR(TotalVariation(p, p).value(), 0.0, 1e-12);
  EXPECT_NEAR(Hellinger(p, p).value(), 0.0, 1e-12);
}

TEST(DivergenceTest, DisjointDensities) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  EXPECT_NEAR(IntersectionArea(p, q).value(), 0.0, 1e-12);
  EXPECT_NEAR(TotalVariation(p, q).value(), 1.0, 1e-12);
  EXPECT_NEAR(Hellinger(p, q).value(), 1.0, 1e-12);
}

TEST(DivergenceTest, KlKnownValue) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.25, 0.75};
  double expected = 0.5 * std::log(2.0) + 0.5 * std::log(0.5 / 0.75);
  EXPECT_NEAR(KlDivergence(p, q).value(), expected, 1e-12);
}

TEST(DivergenceTest, KlRequiresAbsoluteContinuity) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {1.0, 0.0};
  EXPECT_FALSE(KlDivergence(p, q).ok());
  // But zero mass in p where q has mass is fine.
  EXPECT_TRUE(KlDivergence(q, p).ok());
}

TEST(DivergenceTest, MaxKlIsSymmetric) {
  std::vector<double> p = {0.7, 0.2, 0.1};
  std::vector<double> q = {0.2, 0.5, 0.3};
  EXPECT_DOUBLE_EQ(MaxKlDivergence(p, q).value(),
                   MaxKlDivergence(q, p).value());
}

TEST(DivergenceTest, SizeMismatchAndEmptyAreErrors) {
  std::vector<double> p = {1.0};
  std::vector<double> q = {0.5, 0.5};
  EXPECT_FALSE(KlDivergence(p, q).ok());
  EXPECT_FALSE(IntersectionArea({}, {}).ok());
}

// --------------------------- correlation -----------------------------

TEST(CorrelationTest, PerfectPositiveAndNegative) {
  Vector x{1.0, 2.0, 3.0};
  Vector y{2.0, 4.0, 6.0};
  Vector z{3.0, 2.0, 1.0};
  EXPECT_NEAR(PearsonCorrelation(x, y).value(), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, z).value(), -1.0, 1e-12);
}

TEST(CorrelationTest, IndependentSamplesNearZero) {
  Rng rng(7);
  Vector x(5000), y(5000);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Gaussian();
    y[i] = rng.Gaussian();
  }
  EXPECT_NEAR(PearsonCorrelation(x, y).value(), 0.0, 0.05);
}

TEST(CorrelationTest, ConstantSeriesYieldsZero) {
  Vector x{1.0, 1.0, 1.0};
  Vector y{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y).value(), 0.0);
}

TEST(CorrelationTest, Errors) {
  EXPECT_FALSE(PearsonCorrelation(Vector{1.0}, Vector{1.0, 2.0}).ok());
  EXPECT_FALSE(PearsonCorrelation(Vector(), Vector()).ok());
}

TEST(CorrelationTest, PearsonTestStrongCorrelationSmallP) {
  Rng rng(11);
  Vector x(200), y(200);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Gaussian();
    y[i] = 2.0 * x[i] + rng.Gaussian(0.0, 0.1);
  }
  auto test = PearsonTest(x, y);
  ASSERT_TRUE(test.ok());
  EXPECT_GT(test->pcc, 0.95);
  EXPECT_LT(test->p_value, 1e-6);
}

TEST(CorrelationTest, PearsonTestNoCorrelationLargeP) {
  Rng rng(13);
  Vector x(100), y(100);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Gaussian();
    y[i] = rng.Gaussian();
  }
  auto test = PearsonTest(x, y);
  ASSERT_TRUE(test.ok());
  EXPECT_GT(test->p_value, 0.01);
}

TEST(CorrelationTest, CorrelationMatrixDiagonalIsOne) {
  Rng rng(17);
  linalg::Matrix data(100, 3);
  for (size_t i = 0; i < 100; ++i) {
    double a = rng.Gaussian();
    data.At(i, 0) = a;
    data.At(i, 1) = -a;                 // Perfectly anti-correlated.
    data.At(i, 2) = rng.Gaussian();     // Independent.
  }
  auto corr = CorrelationMatrix(data);
  ASSERT_TRUE(corr.ok());
  EXPECT_DOUBLE_EQ((*corr)(0, 0), 1.0);
  EXPECT_NEAR((*corr)(0, 1), -1.0, 1e-10);
  EXPECT_NEAR(std::abs((*corr)(0, 2)), 0.0, 0.25);
  EXPECT_DOUBLE_EQ((*corr)(1, 0), (*corr)(0, 1));  // Symmetry.
}

}  // namespace
}  // namespace ccs::stats
