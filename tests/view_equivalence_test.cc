// Bitwise-equivalence suite for the zero-copy DataFrame view layer.
//
// Filter/Slice/Gather/Sample/PartitionBy now return selection-vector
// views over shared column buffers, and categorical columns are
// dictionary-encoded. This file proves the refactor is invisible to
// consumers: every view-based result — cells, gathered matrices,
// violation scores, synthesized constraints — is bitwise identical
// (memcmp on doubles, string equality on categoricals) to the result of
// an explicit row-by-row deep copy, including the edge cases the
// selection machinery could get wrong: empty selections, single-row
// views, views of views, and dictionaries round-tripped through CSV.

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "common/parallel.h"
#include "common/random.h"
#include "core/constraint.h"
#include "core/drift.h"
#include "core/kernel.h"
#include "core/monitor.h"
#include "core/projection.h"
#include "core/synthesizer.h"
#include "dataframe/csv.h"
#include "dataframe/dataframe.h"
#include "ml/scaler.h"

namespace ccs::dataframe {
namespace {

// A mixed frame with correlated numerics and a skewed categorical.
DataFrame MakeFrame(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n), z(n);
  std::vector<std::string> tag(n), group(n);
  const char* tags[] = {"alpha", "beta", "gamma", "delta"};
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-10.0, 10.0);
    y[i] = 2.0 * x[i] + rng.Gaussian(0.0, 0.3);
    z[i] = rng.Gaussian(5.0, 2.0);
    tag[i] = tags[rng.UniformInt(0, 3)];
    group[i] = rng.UniformInt(0, 9) < 7 ? "big" : "small";  // Skewed.
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddCategoricalColumn("tag", std::move(tag)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  CCS_CHECK(df.AddCategoricalColumn("group", std::move(group)).ok());
  CCS_CHECK(df.AddNumericColumn("z", std::move(z)).ok());
  return df;
}

// The pre-view reference semantics: a deep copy assembled cell by cell
// through the public per-row accessors.
DataFrame GatherByCopy(const DataFrame& df, const std::vector<size_t>& rows) {
  DataFrame out;
  for (size_t c = 0; c < df.num_columns(); ++c) {
    const std::string& name = df.schema().attribute(c).name;
    const Column& col = df.column(c);
    if (col.is_numeric()) {
      std::vector<double> values;
      values.reserve(rows.size());
      for (size_t r : rows) values.push_back(col.NumericAt(r));
      CCS_CHECK(out.AddNumericColumn(name, std::move(values)).ok());
    } else {
      std::vector<std::string> values;
      values.reserve(rows.size());
      for (size_t r : rows) values.push_back(col.CategoricalAt(r));
      CCS_CHECK(out.AddCategoricalColumn(name, std::move(values)).ok());
    }
  }
  return out;
}

bool BitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectFramesBitwiseEqual(const DataFrame& a, const DataFrame& b) {
  ASSERT_TRUE(a.schema() == b.schema());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    for (size_t r = 0; r < a.num_rows(); ++r) {
      if (ca.is_numeric()) {
        EXPECT_TRUE(BitsEqual(ca.NumericAt(r), cb.NumericAt(r)))
            << "column " << c << " row " << r;
      } else {
        EXPECT_EQ(ca.CategoricalAt(r), cb.CategoricalAt(r))
            << "column " << c << " row " << r;
      }
    }
  }
}

void ExpectMatricesBitwiseEqual(const linalg::Matrix& a,
                                const linalg::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_TRUE(BitsEqual(a.At(i, j), b.At(i, j))) << i << "," << j;
    }
  }
}

// ------------------------- row-subset operations -----------------------

TEST(ViewEquivalenceTest, GatherMatchesDeepCopy) {
  DataFrame df = MakeFrame(200, 1);
  Rng rng(2);
  std::vector<size_t> rows;
  for (size_t i = 0; i < 150; ++i) {
    rows.push_back(static_cast<size_t>(rng.UniformInt(0, 199)));  // Repeats.
  }
  DataFrame view = df.Gather(rows);
  EXPECT_TRUE(view.is_view());
  ExpectFramesBitwiseEqual(view, GatherByCopy(df, rows));
  // Materialize flattens without changing a bit.
  DataFrame flat = view.Materialize();
  EXPECT_FALSE(flat.is_view());
  ExpectFramesBitwiseEqual(view, flat);
}

TEST(ViewEquivalenceTest, FilterMatchesDeepCopy) {
  DataFrame df = MakeFrame(300, 3);
  auto pred = [&](size_t i) { return df.NumericValue(i, "x").value() > 0.0; };
  std::vector<size_t> rows;
  for (size_t i = 0; i < df.num_rows(); ++i) {
    if (pred(i)) rows.push_back(i);
  }
  ExpectFramesBitwiseEqual(df.Filter(pred), GatherByCopy(df, rows));
}

TEST(ViewEquivalenceTest, SliceMatchesDeepCopyAndClamps) {
  DataFrame df = MakeFrame(100, 4);
  std::vector<size_t> rows;
  for (size_t i = 20; i < 70; ++i) rows.push_back(i);
  ExpectFramesBitwiseEqual(df.Slice(20, 70), GatherByCopy(df, rows));
  EXPECT_EQ(df.Slice(90, 1000).num_rows(), 10u);
  EXPECT_EQ(df.Slice(50, 10).num_rows(), 0u);
}

TEST(ViewEquivalenceTest, EmptyAndSingleRowSelections) {
  DataFrame df = MakeFrame(50, 5);
  DataFrame empty = df.Gather({});
  EXPECT_EQ(empty.num_rows(), 0u);
  ASSERT_TRUE(empty.schema() == df.schema());
  ExpectFramesBitwiseEqual(empty, GatherByCopy(df, {}));
  ExpectFramesBitwiseEqual(empty.Materialize(), empty);

  DataFrame one = df.Gather({49});
  ASSERT_EQ(one.num_rows(), 1u);
  ExpectFramesBitwiseEqual(one, GatherByCopy(df, {49}));
  EXPECT_EQ(one.CategoricalValue(0, "tag").value(),
            df.CategoricalValue(49, "tag").value());
}

TEST(ViewEquivalenceTest, ViewsOfViewsCompose) {
  DataFrame df = MakeFrame(200, 6);
  // view1 = rows 100..199, view2 = every 3rd of view1, view3 = reversed
  // head of view2: three levels of selection composition.
  DataFrame view1 = df.Slice(100, 200);
  std::vector<size_t> every_third;
  for (size_t i = 0; i < view1.num_rows(); i += 3) every_third.push_back(i);
  DataFrame view2 = view1.Gather(every_third);
  std::vector<size_t> reversed;
  for (size_t i = std::min<size_t>(view2.num_rows(), 10); i-- > 0;) {
    reversed.push_back(i);
  }
  DataFrame view3 = view2.Gather(reversed);

  // The brute-force expectation, composed on absolute row numbers.
  std::vector<size_t> absolute;
  for (size_t i : reversed) absolute.push_back(100 + every_third[i] );
  ExpectFramesBitwiseEqual(view3, GatherByCopy(df, absolute));
  ExpectFramesBitwiseEqual(view3.Materialize(), view3);
}

TEST(ViewEquivalenceTest, SampleIsAViewAndMatchesItsMaterialization) {
  DataFrame df = MakeFrame(120, 7);
  Rng rng_a(42);
  Rng rng_b(42);
  DataFrame sample = df.Sample(60, &rng_a);
  // Same seed, explicit copy of the same permutation.
  std::vector<size_t> perm = rng_b.Permutation(df.num_rows());
  perm.resize(60);
  ExpectFramesBitwiseEqual(sample, GatherByCopy(df, perm));
}

TEST(ViewEquivalenceTest, PartitionByMatchesDeepCopyPartitions) {
  DataFrame df = MakeFrame(400, 8);
  auto parts = df.PartitionBy("tag");
  ASSERT_TRUE(parts.ok());
  // Reference: group rows by string with a stable scan.
  std::map<std::string, std::vector<size_t>> expected;
  for (size_t i = 0; i < df.num_rows(); ++i) {
    expected[df.CategoricalValue(i, "tag").value()].push_back(i);
  }
  ASSERT_EQ(parts->size(), expected.size());
  size_t total = 0;
  for (const auto& [value, rows] : expected) {
    ASSERT_TRUE(parts->count(value)) << value;
    ExpectFramesBitwiseEqual(parts->at(value), GatherByCopy(df, rows));
    total += rows.size();
  }
  EXPECT_EQ(total, df.num_rows());
}

TEST(ViewEquivalenceTest, PartitionOfViewMatchesPartitionOfMaterialized) {
  DataFrame df = MakeFrame(300, 9);
  DataFrame view = df.Filter(
      [&](size_t i) { return df.NumericValue(i, "z").value() > 5.0; });
  auto from_view = view.PartitionBy("group");
  auto from_flat = view.Materialize().PartitionBy("group");
  ASSERT_TRUE(from_view.ok());
  ASSERT_TRUE(from_flat.ok());
  ASSERT_EQ(from_view->size(), from_flat->size());
  for (const auto& [value, part] : *from_view) {
    ASSERT_TRUE(from_flat->count(value));
    ExpectFramesBitwiseEqual(part, from_flat->at(value));
  }
}

// --------------------------- matrix gathering --------------------------

TEST(ViewEquivalenceTest, NumericMatrixForOnViewMatchesMaterialized) {
  DataFrame df = MakeFrame(250, 10);
  DataFrame view = df.Slice(30, 210).Filter(
      [](size_t i) { return i % 2 == 0; });  // View of a view.
  DataFrame flat = view.Materialize();
  std::vector<std::string> names = {"z", "x", "y"};  // Reordered on purpose.

  auto m_view = view.NumericMatrixFor(names);
  auto m_flat = flat.NumericMatrixFor(names);
  ASSERT_TRUE(m_view.ok());
  ASSERT_TRUE(m_flat.ok());
  ExpectMatricesBitwiseEqual(*m_view, *m_flat);

  // The row-subset overload, through the same composed selections.
  std::vector<size_t> rows = {5, 0, 17, 17, 2};
  auto s_view = view.NumericMatrixFor(names, rows);
  auto s_flat = flat.NumericMatrixFor(names, rows);
  ASSERT_TRUE(s_view.ok());
  ASSERT_TRUE(s_flat.ok());
  ExpectMatricesBitwiseEqual(*s_view, *s_flat);

  // Out-of-range rows still error (bounds are logical rows).
  EXPECT_EQ(view.NumericMatrixFor(names, {view.num_rows()}).status().code(),
            StatusCode::kOutOfRange);
}

// ----------------------- dictionary invariants -------------------------

TEST(ViewEquivalenceTest, DictionaryRoundTripsThroughCsv) {
  DataFrame df = MakeFrame(80, 11);
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(df, out).ok());

  // Whole-stream reader: interned at parse time.
  std::istringstream in_whole(out.str());
  auto whole = ReadCsv(in_whole);
  ASSERT_TRUE(whole.ok());
  for (size_t r = 0; r < df.num_rows(); ++r) {
    EXPECT_EQ(whole->CategoricalValue(r, "tag").value(),
              df.CategoricalValue(r, "tag").value());
  }

  // Chunked reader: chunks share one persistent dictionary object.
  std::istringstream in_chunks(out.str());
  CsvChunkReader reader(&in_chunks, df.schema());
  const Column* prev_tag = nullptr;
  std::shared_ptr<const std::vector<std::string>> last_dict;
  size_t row = 0;
  for (;;) {
    auto chunk = reader.ReadChunk(17);
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    if (chunk->num_rows() == 0) break;
    auto tag_col = chunk->ColumnByName("tag");
    ASSERT_TRUE(tag_col.ok());
    for (size_t r = 0; r < chunk->num_rows(); ++r, ++row) {
      EXPECT_EQ((*tag_col)->CategoricalAt(r),
                df.CategoricalValue(row, "tag").value());
      // Codes index the dictionary consistently.
      EXPECT_EQ((*tag_col)->dictionary()[(*tag_col)->CodeAt(r)],
                (*tag_col)->CategoricalAt(r));
    }
    if (last_dict != nullptr) {
      // Once the categorical domain has been seen, later chunks share
      // the same dictionary object (pointer equality, not just values).
      EXPECT_EQ(last_dict, (*tag_col)->shared_dictionary());
    }
    last_dict = (*tag_col)->shared_dictionary();
    (void)prev_tag;
  }
  EXPECT_EQ(row, df.num_rows());
}

TEST(ViewEquivalenceTest, DistinctValuesOnViewPreservesViewOrder) {
  DataFrame df;
  CCS_CHECK(df.AddCategoricalColumn(
                  "c", {"b", "a", "c", "a", "d", "b"})
                .ok());
  // View reorders rows: first appearance must follow the VIEW's order.
  DataFrame view = df.Gather({4, 2, 0, 1});
  auto col = view.ColumnByName("c");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->DistinctValues(),
            (std::vector<std::string>{"d", "c", "b", "a"}));
}

TEST(ViewEquivalenceTest, ConcatOfViewsMatchesDeepCopies) {
  DataFrame df = MakeFrame(100, 12);
  DataFrame a = df.Slice(0, 30);
  DataFrame b = df.Gather({99, 50, 50, 7});
  auto concat = a.Concat(b);
  ASSERT_TRUE(concat.ok());
  EXPECT_FALSE(concat->is_view());  // Concat materializes.
  std::vector<size_t> rows;
  for (size_t i = 0; i < 30; ++i) rows.push_back(i);
  for (size_t i : {99, 50, 50, 7}) rows.push_back(i);
  ExpectFramesBitwiseEqual(*concat, GatherByCopy(df, rows));
}

// ----------------- constraint pipeline over views ----------------------

TEST(ViewEquivalenceTest, SynthesisOnViewsBitwiseMatchesMaterialized) {
  DataFrame df = MakeFrame(600, 13);
  core::Synthesizer synthesizer;
  for (size_t threads : {1u, 4u}) {
    common::SetDefaultThreadCount(threads);
    // Full compound synthesis (global + disjunctions over partitions,
    // which are views) on a view vs. its deep materialization.
    DataFrame view = df.Filter(
        [&](size_t i) { return df.NumericValue(i, "x").value() < 8.0; });
    auto from_view = synthesizer.Synthesize(view);
    auto from_flat = synthesizer.Synthesize(view.Materialize());
    ASSERT_TRUE(from_view.ok()) << from_view.status();
    ASSERT_TRUE(from_flat.ok()) << from_flat.status();
    EXPECT_TRUE(core::ConstraintsBitwiseEqual(*from_view, *from_flat))
        << "threads=" << threads;
  }
  common::SetDefaultThreadCount(0);
}

TEST(ViewEquivalenceTest, ViolationAllOnViewsBitwiseMatchesMaterialized) {
  DataFrame train = MakeFrame(500, 14);
  core::Synthesizer synthesizer;
  auto constraint = synthesizer.Synthesize(train);
  ASSERT_TRUE(constraint.ok());

  DataFrame serving = MakeFrame(400, 15);
  DataFrame view = serving.Gather([&] {
    std::vector<size_t> rows;
    for (size_t i = 0; i < serving.num_rows(); i += 2) rows.push_back(i);
    return rows;
  }());

  for (size_t threads : {1u, 4u}) {
    common::SetDefaultThreadCount(threads);
    auto v_view = constraint->ViolationAll(view);
    auto v_flat = constraint->ViolationAll(view.Materialize());
    ASSERT_TRUE(v_view.ok());
    ASSERT_TRUE(v_flat.ok());
    ASSERT_EQ(v_view->size(), v_flat->size());
    for (size_t i = 0; i < v_view->size(); ++i) {
      EXPECT_TRUE(BitsEqual((*v_view)[i], (*v_flat)[i]))
          << "row " << i << " threads " << threads;
    }
  }
  common::SetDefaultThreadCount(0);
}

// ------------------- derived-column pipelines --------------------------
//
// The lazy derived-column paths (ExpandPolynomialView, TransformView,
// Projection::EvaluateAll, FitExpanded, WithExpansion) must be bitwise
// indistinguishable from materializing the expanded/scaled frame first:
// both sides funnel every cell through the same compiled Eval*Column
// kernels, so not a single bit may move — at any thread count.

bool BitsEqualScalar(double a, double b) { return BitsEqual(a, b); }

void ExpectVectorsBitwiseEqual(const linalg::Vector& a,
                               const linalg::Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(BitsEqual(a[i], b[i])) << "index " << i;
  }
}

TEST(DerivedPipelineTest, LazyExpansionBitwiseMatchesMaterialized) {
  DataFrame df = MakeFrame(400, 20);
  for (size_t threads : {1u, 4u}) {
    common::SetDefaultThreadCount(threads);
    auto lazy = core::ExpandPolynomialView(df);
    auto flat = core::ExpandPolynomial(df);
    ASSERT_TRUE(lazy.ok()) << lazy.status();
    ASSERT_TRUE(flat.ok()) << flat.status();
    // Same schema, same bits: the lazy view gathers what the
    // materialized frame stores.
    EXPECT_EQ(lazy->names, flat->NumericNames());
    auto matrix = flat->NumericMatrixFor(lazy->names);
    ASSERT_TRUE(matrix.ok());
    ExpectMatricesBitwiseEqual(lazy->view.ToMatrix(), *matrix);
    // Synthesis straight from the derived view vs. over the expanded
    // frame: identical constraints, conjunct by conjunct.
    core::Synthesizer synthesizer;
    auto from_view =
        synthesizer.SynthesizeSimpleFromView(lazy->names, lazy->view);
    auto from_flat = synthesizer.SynthesizeSimple(*flat);
    ASSERT_TRUE(from_view.ok()) << from_view.status();
    ASSERT_TRUE(from_flat.ok()) << from_flat.status();
    EXPECT_TRUE(core::ConstraintsBitwiseEqual(*from_view, *from_flat))
        << "threads=" << threads;
  }
  common::SetDefaultThreadCount(0);
}

TEST(DerivedPipelineTest, ProjectionEvaluateAllMatchesAlignedKernel) {
  DataFrame df = MakeFrame(350, 21);
  std::vector<std::string> names = {"x", "y", "z"};
  auto projection =
      core::Projection::Create(names, linalg::Vector({0.75, -0.5, 0.25}));
  ASSERT_TRUE(projection.ok());
  auto matrix = df.NumericMatrixFor(names);
  ASSERT_TRUE(matrix.ok());
  // Finite data: the lazy Combine kernel and the materialized
  // matrix-multiply kernel run the same accumulation order (ascending
  // term index, multiply-then-add, no FMA), so the bits agree even
  // though they are separately compiled.
  linalg::Vector aligned = projection->EvaluateAllAligned(*matrix);
  DataFrame view = df.Filter([](size_t i) { return i % 3 != 1; });
  auto view_matrix = view.NumericMatrixFor(names);
  ASSERT_TRUE(view_matrix.ok());
  linalg::Vector view_aligned = projection->EvaluateAllAligned(*view_matrix);
  for (size_t threads : {1u, 4u}) {
    common::SetDefaultThreadCount(threads);
    auto lazy = projection->EvaluateAll(df);
    ASSERT_TRUE(lazy.ok()) << lazy.status();
    ExpectVectorsBitwiseEqual(*lazy, aligned);
    auto lazy_view = projection->EvaluateAll(view);
    ASSERT_TRUE(lazy_view.ok());
    ExpectVectorsBitwiseEqual(*lazy_view, view_aligned);
  }
  common::SetDefaultThreadCount(0);
}

TEST(DerivedPipelineTest, ScalerTransformViewBitwiseMatchesTransform) {
  DataFrame df = MakeFrame(300, 22);
  std::vector<std::string> names = {"z", "x", "y"};  // Reordered subset.
  auto matrix = df.NumericMatrixFor(names);
  ASSERT_TRUE(matrix.ok());
  auto scaler = ml::StandardScaler::Fit(*matrix);
  ASSERT_TRUE(scaler.ok());
  auto flat = scaler->Transform(*matrix);
  ASSERT_TRUE(flat.ok());
  auto view = scaler->TransformView(df, names);
  ASSERT_TRUE(view.ok()) << view.status();
  ExpectMatricesBitwiseEqual(view->ToMatrix(), *flat);
  // The same lazy transform composed over a view-of-a-view frame.
  DataFrame sliced = df.Slice(40, 260).Filter(
      [](size_t i) { return i % 2 == 0; });
  auto sliced_matrix = sliced.NumericMatrixFor(names);
  ASSERT_TRUE(sliced_matrix.ok());
  auto sliced_flat = scaler->Transform(*sliced_matrix);
  ASSERT_TRUE(sliced_flat.ok());
  auto sliced_view = scaler->TransformView(sliced, names);
  ASSERT_TRUE(sliced_view.ok());
  ExpectMatricesBitwiseEqual(sliced_view->ToMatrix(), *sliced_flat);
}

TEST(DerivedPipelineTest, ExpandedDriftScoringBitwiseMatchesMaterialized) {
  DataFrame reference = MakeFrame(500, 23);
  DataFrame window = MakeFrame(200, 24);
  core::PolynomialExpansionOptions expansion;
  for (size_t threads : {1u, 4u}) {
    common::SetDefaultThreadCount(threads);
    core::ConformanceDriftQuantifier lazy;
    ASSERT_TRUE(lazy.FitExpanded(reference, expansion).ok());
    EXPECT_TRUE(lazy.expanded());
    // Materialized twin: synthesize on the expanded reference frame and
    // score the expanded window with the global simple constraint.
    auto flat_reference = core::ExpandPolynomial(reference, expansion);
    ASSERT_TRUE(flat_reference.ok());
    core::Synthesizer synthesizer;
    auto simple = synthesizer.SynthesizeSimple(*flat_reference);
    ASSERT_TRUE(simple.ok()) << simple.status();
    auto flat_window = core::ExpandPolynomial(window, expansion);
    ASSERT_TRUE(flat_window.ok());
    auto matrix = flat_window->NumericMatrixFor(simple->attribute_names());
    ASSERT_TRUE(matrix.ok());
    linalg::Vector expected = simple->ViolationAllAligned(*matrix);
    auto tuples = lazy.TupleViolations(window);
    ASSERT_TRUE(tuples.ok()) << tuples.status();
    ExpectVectorsBitwiseEqual(*tuples, expected);
    auto score = lazy.Score(window);
    ASSERT_TRUE(score.ok());
    EXPECT_TRUE(BitsEqualScalar(*score, expected.Mean()))
        << "threads=" << threads;
  }
  common::SetDefaultThreadCount(0);
}

TEST(DerivedPipelineTest, IncrementalExpansionMatchesMaterializedRefresh) {
  // The streaming-refresh loop: observing raw base frames through the
  // lazy expansion must synthesize the same bits as materializing
  // ExpandPolynomial per batch — the allocation the refactor removed.
  DataFrame batch1 = MakeFrame(300, 25);
  DataFrame batch2 = MakeFrame(180, 26);
  std::vector<std::string> base = batch1.NumericNames();
  core::PolynomialExpansionOptions expansion;
  std::vector<std::string> expanded_names =
      core::ExpandedNames(base, expansion);
  for (size_t threads : {1u, 4u}) {
    common::SetDefaultThreadCount(threads);
    auto lazy = core::IncrementalSynthesizer::WithExpansion(base, expansion);
    ASSERT_TRUE(lazy.ok()) << lazy.status();
    EXPECT_EQ(lazy->attribute_names(), expanded_names);
    core::IncrementalSynthesizer flat(expanded_names);
    for (const DataFrame* batch : {&batch1, &batch2}) {
      ASSERT_TRUE(lazy->ObserveAll(*batch).ok());
      auto expanded = core::ExpandPolynomial(*batch, expansion);
      ASSERT_TRUE(expanded.ok());
      ASSERT_TRUE(flat.ObserveAll(*expanded).ok());
    }
    EXPECT_EQ(lazy->count(), flat.count());
    auto from_lazy = lazy->Synthesize();
    auto from_flat = flat.Synthesize();
    ASSERT_TRUE(from_lazy.ok()) << from_lazy.status();
    ASSERT_TRUE(from_flat.ok()) << from_flat.status();
    EXPECT_TRUE(core::ConstraintsBitwiseEqual(*from_lazy, *from_flat))
        << "threads=" << threads;
  }
  common::SetDefaultThreadCount(0);
}

}  // namespace
}  // namespace ccs::dataframe
