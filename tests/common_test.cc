// Tests for common/: Status, StatusOr, string utilities, Rng, ParallelFor.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/string_util.h"

namespace ccs {
namespace {

// --------------------------- Status ---------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    CCS_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto succeeds = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    CCS_RETURN_IF_ERROR(succeeds());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInvalidArgument);
}

// --------------------------- StatusOr --------------------------------

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, ValueOrFallback) {
  StatusOr<int> ok = 7;
  StatusOr<int> err = Status::Internal("x");
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto inner = []() -> StatusOr<int> { return 5; };
  auto outer = [&]() -> StatusOr<int> {
    CCS_ASSIGN_OR_RETURN(int x, inner());
    return x * 2;
  };
  EXPECT_EQ(outer().value(), 10);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> StatusOr<int> { return Status::IoError("disk"); };
  auto outer = [&]() -> StatusOr<int> {
    CCS_ASSIGN_OR_RETURN(int x, inner());
    return x * 2;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kIoError);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

// --------------------------- string_util -----------------------------

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, ParseDoubleAcceptsValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("  42 ").value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").value(), 0.0);
}

TEST(StringUtilTest, ParseDoubleRejectsInvalid) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("1.5x").has_value());
  EXPECT_FALSE(ParseDouble("--3").has_value());
}

TEST(StringUtilTest, ParseIntAcceptsValid) {
  EXPECT_EQ(ParseInt("123").value(), 123);
  EXPECT_EQ(ParseInt("-9").value(), -9);
}

TEST(StringUtilTest, ParseIntRejectsInvalid) {
  EXPECT_FALSE(ParseInt("").has_value());
  EXPECT_FALSE(ParseInt("1.5").has_value());
  EXPECT_FALSE(ParseInt("12a").has_value());
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello world", "hello"));
  EXPECT_FALSE(StartsWith("hello", "hello world"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringUtilTest, FormatDoubleCompact) {
  EXPECT_EQ(FormatDouble(1.0), "1");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(-2.0), "-2");
}

TEST(StringUtilTest, FormatDoubleRoundTripsThroughParse) {
  for (double v : {3.14159, -0.001, 123456.789, 1e-6}) {
    EXPECT_NEAR(ParseDouble(FormatDouble(v)).value(), v,
                std::abs(v) * 1e-9 + 1e-12);
  }
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(ToLower("123AB"), "123ab");
}

// --------------------------- Rng -------------------------------------

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 20);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 0);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(19);
  auto perm = rng.Permutation(100);
  std::vector<bool> seen(100, false);
  for (size_t idx : perm) {
    ASSERT_LT(idx, 100u);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(RngTest, ShuffleKeepsMultiset) {
  Rng rng(23);
  std::vector<int> items = {1, 2, 3, 4, 5};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(ParallelTest, CoversRangeExactlyOnce) {
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  common::ParallelOptions options;
  options.num_threads = 4;
  options.min_chunk = 128;  // Force many chunks.
  common::ParallelFor(
      kN,
      [&](size_t begin, size_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, kN);
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      options);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelTest, EmptyRangeDoesNothing) {
  bool called = false;
  common::ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, NestedCallsRunSerially) {
  // An outer parallel loop whose body parallelizes again must complete
  // (inner calls degrade to serial instead of deadlocking the pool).
  std::atomic<size_t> total{0};
  common::ParallelOptions outer;
  outer.num_threads = 4;
  outer.min_chunk = 1;
  common::ParallelFor(
      8,
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          common::ParallelOptions inner;
          inner.num_threads = 4;
          inner.min_chunk = 1;
          common::ParallelFor(
              100,
              [&](size_t b, size_t e) {
                total.fetch_add(e - b, std::memory_order_relaxed);
              },
              inner);
        }
      },
      outer);
  EXPECT_EQ(total.load(), 800u);
}

TEST(ParallelTest, DefaultThreadCountOverride) {
  size_t hardware = common::DefaultThreadCount();
  EXPECT_GE(hardware, 1u);
  common::SetDefaultThreadCount(3);
  EXPECT_EQ(common::DefaultThreadCount(), 3u);
  common::SetDefaultThreadCount(0);
  EXPECT_EQ(common::DefaultThreadCount(), hardware);
}

TEST(ParallelForEachTest, VisitsEveryIndexExactlyOnce) {
  constexpr size_t kN = 997;  // Prime, so no chunk boundary coincidences.
  std::vector<std::atomic<int>> hits(kN);
  common::ParallelForEach(
      kN,
      [&](size_t i) {
        ASSERT_LT(i, kN);
        hits[i].fetch_add(1, std::memory_order_relaxed);
      },
      /*num_threads=*/4);
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForEachTest, EmptyRangeDoesNothing) {
  bool called = false;
  common::ParallelForEach(0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForEachTest, SkewedItemCostsAllComplete) {
  // One index is vastly more expensive; the work queue must still drain
  // every other index (no lane waits behind the big one).
  std::atomic<size_t> done{0};
  common::ParallelForEach(
      64,
      [&](size_t i) {
        volatile double sink = 0.0;
        size_t spins = (i == 0) ? 2000000 : 100;
        for (size_t k = 0; k < spins; ++k) sink += 1.0;
        done.fetch_add(1, std::memory_order_relaxed);
      },
      /*num_threads=*/4);
  EXPECT_EQ(done.load(), 64u);
}

TEST(ParallelForEachTest, NestedCallsComplete) {
  // Inner dispatches from pool workers degrade to serial; either way
  // every inner index must run exactly once with no deadlock.
  std::atomic<size_t> total{0};
  common::ParallelForEach(
      8,
      [&](size_t) {
        common::ParallelForEach(
            100, [&](size_t) { total.fetch_add(1, std::memory_order_relaxed); },
            /*num_threads=*/4);
      },
      /*num_threads=*/4);
  EXPECT_EQ(total.load(), 800u);
}

}  // namespace
}  // namespace ccs
