// Tests for the streaming-serving subsystem: BoundedQueue backpressure
// semantics, Windower reassembly, CsvChunkReader, the StreamMonitor
// refresh hook, IncrementalSynthesizer::Merge, and the StreamPipeline
// serial-equivalence contract (bitwise-identical WindowScore history at
// any thread count).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/fault.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/monitor.h"
#include "dataframe/csv.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/pipeline.h"
#include "stream/windower.h"

namespace ccs::stream {
namespace {

using common::BoundedQueue;
using core::IncrementalSynthesizer;
using core::StreamMonitor;
using core::WindowScore;
using dataframe::DataFrame;

// y = x + noise, shifted off-trend by `offset` on y from row `drift_from`.
DataFrame TrendFrame(size_t n, double offset, uint64_t seed,
                     size_t drift_from = 0) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = x[i] + (i >= drift_from ? offset : 0.0) + rng.Gaussian(0.0, 0.1);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

std::string ToCsv(const DataFrame& df) {
  std::ostringstream out;
  CCS_CHECK(dataframe::WriteCsv(df, out).ok());
  return out.str();
}

// ---------------------------- BoundedQueue ----------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.Pop(), i);
  EXPECT_EQ(q.TryPop(), std::nullopt);
}

TEST(BoundedQueueTest, BackpressureBoundsDepth) {
  // A producer far faster than the consumer must never buffer more than
  // the capacity: Push blocks instead.
  BoundedQueue<int> q(2);
  std::thread producer([&] {
    for (int i = 0; i < 50; ++i) EXPECT_TRUE(q.Push(i));
    q.Close();
  });
  int popped = 0;
  while (q.Pop().has_value()) ++popped;
  producer.join();
  EXPECT_EQ(popped, 50);
  EXPECT_LE(q.peak_depth(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_FALSE(q.Push(3));  // Refused after close...
  EXPECT_EQ(q.Pop(), 1);    // ...but buffered elements drain.
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, CloseUnblocksFullPush) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(0));  // Queue now full.
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result = q.Push(1);  // Blocks until Close.
    push_returned = true;
  });
  q.Close();
  producer.join();
  EXPECT_TRUE(push_returned);
  EXPECT_FALSE(push_result);
}

TEST(BoundedQueueTest, CloseWhileBlockedPop) {
  // A consumer blocked on an empty queue must wake on Close and observe
  // end-of-stream, not hang or fabricate an element.
  BoundedQueue<int> q(4);
  std::optional<int> popped = 42;
  std::thread consumer([&] {
    popped = q.Pop();  // Blocks (nothing buffered) until Close.
  });
  // Give the consumer a beat to actually block; Close must wake it
  // either way (it observes closed_ on entry if it loses the race).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
  EXPECT_EQ(popped, std::nullopt);
}

TEST(BoundedQueueTest, DoubleCloseFromConcurrentThreads) {
  // Two racing closers while both a push and a pop are blocked: every
  // party must return (push refused, pop end-of-stream after drain),
  // and the second Close must be a harmless no-op whichever order the
  // scheduler picks.
  for (int round = 0; round < 20; ++round) {
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.Push(7));  // Queue now full; the next Push blocks.
    bool push_ok = false;
    std::thread producer([&] { push_ok = q.Push(8); });
    std::vector<int> got;
    std::thread consumer([&] {
      while (std::optional<int> v = q.Pop()) got.push_back(*v);
    });
    std::thread closer_a([&] { q.Close(); });
    std::thread closer_b([&] { q.Close(); });
    closer_a.join();
    closer_b.join();
    producer.join();
    consumer.join();
    // The blocked push either lost the race to Close (refused) or slid
    // in as the consumer drained 7 — in which case 8 must also arrive.
    ASSERT_FALSE(got.empty());
    EXPECT_EQ(got.front(), 7);
    if (push_ok) {
      ASSERT_EQ(got.size(), 2u);
      EXPECT_EQ(got[1], 8);
    } else {
      EXPECT_EQ(got.size(), 1u);
    }
    EXPECT_TRUE(q.closed());
  }
}

TEST(BoundedQueueTest, MultiProducerDeliversEverything) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  BoundedQueue<int> q(3);
  std::vector<std::thread> producers;
  std::atomic<int> live{kProducers};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.Push(p * kPerProducer + i));
      }
      if (--live == 0) q.Close();
    });
  }
  std::multiset<int> seen;
  while (auto v = q.Pop()) seen.insert(*v);
  for (auto& t : producers) t.join();
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(seen.count(v), 1u) << v;
  }
}

// ------------------------------ Windower ------------------------------

TEST(WindowerTest, RejectsBadGeometry) {
  EXPECT_FALSE(Windower::Create(0).ok());
  EXPECT_FALSE(Windower::Create(10, 11).ok());
  EXPECT_TRUE(Windower::Create(10, 10).ok());
  EXPECT_TRUE(Windower::Create(10).ok());  // slide 0 = tumbling
}

TEST(WindowerTest, TumblingWindowsIgnoreChunkBoundaries) {
  DataFrame df = TrendFrame(100, 0.0, 1);
  auto windower = Windower::Create(30);
  ASSERT_TRUE(windower.ok());
  std::vector<DataFrame> all;
  // Feed in awkward chunk sizes: 7, 7, ..., then the rest.
  for (size_t begin = 0; begin < 100; begin += 7) {
    auto out = windower->Push(df.Slice(begin, std::min<size_t>(begin + 7, 100)));
    ASSERT_TRUE(out.ok());
    for (auto& w : *out) all.push_back(std::move(w));
  }
  ASSERT_EQ(all.size(), 3u);  // 100 rows / 30 = 3 full windows; 10 left.
  EXPECT_EQ(windower->buffered_rows(), 10u);
  EXPECT_EQ(windower->windows_emitted(), 3u);
  for (size_t w = 0; w < 3; ++w) {
    ASSERT_EQ(all[w].num_rows(), 30u);
    for (size_t r = 0; r < 30; ++r) {
      EXPECT_EQ(all[w].NumericValue(r, "x").value(),
                df.NumericValue(w * 30 + r, "x").value());
    }
  }
}

TEST(WindowerTest, SlidingWindowsOverlap) {
  DataFrame df = TrendFrame(25, 0.0, 2);
  auto windower = Windower::Create(10, 5);
  ASSERT_TRUE(windower.ok());
  auto out = windower->Push(df);
  ASSERT_TRUE(out.ok());
  // Windows start at rows 0, 5, 10; row 15 would need rows 15..24 (OK)
  // -> starts 0,5,10,15. 4 windows.
  ASSERT_EQ(out->size(), 4u);
  for (size_t w = 0; w < out->size(); ++w) {
    for (size_t r = 0; r < 10; ++r) {
      EXPECT_EQ((*out)[w].NumericValue(r, "y").value(),
                df.NumericValue(w * 5 + r, "y").value());
    }
  }
}

TEST(WindowerTest, EmptyChunkCompletesNothing) {
  auto windower = Windower::Create(4);
  ASSERT_TRUE(windower.ok());
  auto out = windower->Push(DataFrame());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
}

TEST(WindowerTest, RejectsChunkSchemaMismatch) {
  auto windower = Windower::Create(4);
  ASSERT_TRUE(windower.ok());
  ASSERT_TRUE(windower->Push(TrendFrame(3, 0.0, 40)).ok());
  DataFrame other;
  CCS_CHECK(other.AddNumericColumn("z", {1.0}).ok());
  auto out = windower->Push(other);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(WindowerTest, ZeroRowChunkAdoptsAndValidatesSchema) {
  // A zero-row chunk that carries columns still participates in schema
  // adoption/validation; only the column-less placeholder is inert.
  DataFrame df = TrendFrame(8, 0.0, 41);
  auto windower = Windower::Create(4);
  ASSERT_TRUE(windower.ok());
  auto out = windower->Push(df.Slice(0, 0));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(windower->buffered_rows(), 0u);
  // The schema was adopted from the empty chunk: mismatches now reject…
  DataFrame other;
  CCS_CHECK(other.AddNumericColumn("z", {1.0}).ok());
  EXPECT_FALSE(windower->Push(other).ok());
  // …and matching rows still flow.
  auto more = windower->Push(df);
  ASSERT_TRUE(more.ok()) << more.status();
  EXPECT_EQ(more->size(), 2u);
}

TEST(WindowerTest, StreamShorterThanOneWindowEmitsNothing) {
  auto windower = Windower::Create(50, 10);
  ASSERT_TRUE(windower.ok());
  auto out = windower->Push(TrendFrame(30, 0.0, 42));
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->empty());
  EXPECT_EQ(windower->buffered_rows(), 30u);
  EXPECT_EQ(windower->windows_emitted(), 0u);
}

TEST(WindowerTest, TrailingSegmentShorterThanSlideIsNeverEmitted) {
  // 23 rows, window 10 slide 5: windows start at rows 0/5/10 (needing
  // rows through 19); the trailing 8 buffered rows include a final
  // segment shorter than the slide, and no flush ever emits a partial.
  DataFrame df = TrendFrame(23, 0.0, 43);
  auto windower = Windower::Create(10, 5);
  ASSERT_TRUE(windower.ok());
  auto out = windower->Push(df);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
  auto flush = windower->Push(df.Slice(0, 0));
  ASSERT_TRUE(flush.ok());
  EXPECT_TRUE(flush->empty());
  EXPECT_EQ(windower->buffered_rows(), 8u);
  EXPECT_EQ(windower->windows_emitted(), 3u);
}

TEST(WindowerTest, SlidingBufferCapacityIsStableAcross100Slides) {
  // The regression this pins: the rolling buffer used to be rebuilt by
  // Concat + Slice per emitted window (a fresh allocation every slide).
  // Now sliding consumes an offset and compacts in place, so after a
  // brief warm-up the buffer capacity must not move — and windows must
  // still come out right.
  constexpr size_t kWindow = 64;
  constexpr size_t kSlide = 16;
  constexpr size_t kChunk = 16;
  auto windower = Windower::Create(kWindow, kSlide);
  ASSERT_TRUE(windower.ok());

  DataFrame all = TrendFrame(kWindow + 102 * kSlide, 0.0, 41);
  size_t begin = 0;
  // Warm up until the first windows have been emitted.
  while (windower->windows_emitted() < 2) {
    ASSERT_TRUE(windower->Push(all.Slice(begin, begin + kChunk)).ok());
    begin += kChunk;
  }
  size_t warm_capacity = windower->buffer_capacity_rows();
  size_t warm_reallocs = windower->buffer_reallocs();
  ASSERT_GT(warm_capacity, 0u);

  size_t windows = windower->windows_emitted();
  while (windower->windows_emitted() < windows + 100) {
    auto out = windower->Push(all.Slice(begin, begin + kChunk));
    ASSERT_TRUE(out.ok());
    begin += kChunk;
    ASSERT_LE(begin, all.num_rows());
  }
  // 100 further slides: zero growth, zero reallocation.
  EXPECT_EQ(windower->buffer_capacity_rows(), warm_capacity);
  EXPECT_EQ(windower->buffer_reallocs(), warm_reallocs);
  // Each emit copied exactly one window of rows.
  EXPECT_EQ(windower->rows_copied_out(),
            windower->windows_emitted() * kWindow);

  // And the windows are the right rows: window w covers [w*slide,
  // w*slide + window).
  auto check = windower->Push(all.Slice(begin, begin + kChunk));
  ASSERT_TRUE(check.ok());
  size_t w = windower->windows_emitted() - check->size();
  for (const DataFrame& window : *check) {
    ASSERT_EQ(window.num_rows(), kWindow);
    for (size_t r = 0; r < kWindow; r += 13) {
      EXPECT_EQ(window.NumericValue(r, "x").value(),
                all.NumericValue(w * kSlide + r, "x").value());
    }
    ++w;
  }
}

TEST(WindowerTest, EmittedWindowsSurviveLaterPushesAndCompaction) {
  // Windows own their storage (sharing only the dictionary): pushing
  // more chunks — which compacts and overwrites the rolling buffer —
  // must not disturb previously emitted windows.
  DataFrame df = TrendFrame(90, 0.0, 42);
  CCS_CHECK(df.AddCategoricalColumn(
                  "label", [] {
                    std::vector<std::string> v;
                    for (int i = 0; i < 90; ++i) {
                      v.push_back(i % 3 == 0 ? "odd" : "even");
                    }
                    return v;
                  }())
                .ok());
  auto windower = Windower::Create(20, 10);
  ASSERT_TRUE(windower.ok());
  std::vector<DataFrame> kept;
  for (size_t begin = 0; begin < 90; begin += 9) {
    auto out = windower->Push(df.Slice(begin, begin + 9));
    ASSERT_TRUE(out.ok());
    for (auto& w : *out) kept.push_back(std::move(w));
  }
  ASSERT_GE(kept.size(), 5u);
  for (size_t w = 0; w < kept.size(); ++w) {
    for (size_t r = 0; r < 20; ++r) {
      EXPECT_EQ(kept[w].NumericValue(r, "y").value(),
                df.NumericValue(w * 10 + r, "y").value());
      EXPECT_EQ(kept[w].CategoricalValue(r, "label").value(),
                df.CategoricalValue(w * 10 + r, "label").value());
    }
  }
}

// ---------------------------- CsvChunkReader --------------------------

TEST(CsvChunkReaderTest, ChunksConcatenateToWholeFile) {
  DataFrame df = TrendFrame(57, 0.0, 3);
  CCS_CHECK(df.AddCategoricalColumn(
                  "label", std::vector<std::string>(57, "a"))
                .ok());
  std::string text = ToCsv(df);

  std::istringstream whole_in(text);
  auto whole = dataframe::ReadCsv(whole_in);
  ASSERT_TRUE(whole.ok());

  std::istringstream chunk_in(text);
  dataframe::CsvChunkReader reader(&chunk_in, whole->schema());
  DataFrame got;
  for (;;) {
    auto chunk = reader.ReadChunk(10);
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    if (chunk->num_rows() == 0) break;
    if (got.num_columns() == 0) {
      got = std::move(*chunk);
    } else {
      auto merged = got.Concat(*chunk);
      ASSERT_TRUE(merged.ok());
      got = std::move(*merged);
    }
  }
  EXPECT_EQ(reader.rows_read(), 57u);
  ASSERT_EQ(got.num_rows(), whole->num_rows());
  ASSERT_TRUE(got.schema() == whole->schema());
  for (size_t r = 0; r < got.num_rows(); ++r) {
    EXPECT_EQ(got.NumericValue(r, "x").value(),
              whole->NumericValue(r, "x").value());
    EXPECT_EQ(got.CategoricalValue(r, "label").value(),
              whole->CategoricalValue(r, "label").value());
  }
}

TEST(CsvChunkReaderTest, ReordersAndIgnoresExtraColumns) {
  dataframe::Schema schema;
  CCS_CHECK(schema.AddAttribute("b", dataframe::AttributeType::kNumeric).ok());
  CCS_CHECK(
      schema.AddAttribute("a", dataframe::AttributeType::kCategorical).ok());
  std::istringstream in("a,junk,b\nu,9,1.5\nv,9,2.5\n");
  dataframe::CsvChunkReader reader(&in, schema);
  auto chunk = reader.ReadChunk(100);
  ASSERT_TRUE(chunk.ok()) << chunk.status();
  ASSERT_EQ(chunk->num_rows(), 2u);
  EXPECT_EQ(chunk->NumericValue(0, "b").value(), 1.5);
  EXPECT_EQ(chunk->CategoricalValue(1, "a").value(), "v");
}

TEST(CsvChunkReaderTest, MissingSchemaColumnIsError) {
  dataframe::Schema schema;
  CCS_CHECK(schema.AddAttribute("x", dataframe::AttributeType::kNumeric).ok());
  CCS_CHECK(schema.AddAttribute("y", dataframe::AttributeType::kNumeric).ok());
  std::istringstream in("x\n1\n");
  dataframe::CsvChunkReader reader(&in, schema);
  auto chunk = reader.ReadChunk(10);
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvChunkReaderTest, UnparseableNumericCellIsDeferredError) {
  // The reader delivers every good row before the malformation, then
  // surfaces the structured error on the NEXT call — so downstream
  // teardown does not depend on where chunk boundaries fall.
  dataframe::Schema schema;
  CCS_CHECK(schema.AddAttribute("x", dataframe::AttributeType::kNumeric).ok());
  std::istringstream in("x\n1.0\noops\n2.0\n");
  dataframe::CsvChunkReader reader(&in, schema);
  auto prefix = reader.ReadChunk(10);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  ASSERT_EQ(prefix->num_rows(), 1u);
  EXPECT_EQ(prefix->NumericValue(0, "x").value(), 1.0);

  auto error = reader.ReadChunk(10);
  ASSERT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kInvalidArgument);
  const std::string& msg = error.status().message();
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("data row 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 'x'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'oops'"), std::string::npos) << msg;
}

TEST(CsvChunkReaderTest, MalformedFirstRowOfChunkErrorsImmediately) {
  // No good prefix to deliver: the error comes straight back.
  dataframe::Schema schema;
  CCS_CHECK(schema.AddAttribute("x", dataframe::AttributeType::kNumeric).ok());
  std::istringstream in("x\noops\n");
  dataframe::CsvChunkReader reader(&in, schema);
  auto chunk = reader.ReadChunk(10);
  ASSERT_FALSE(chunk.ok());
  EXPECT_EQ(chunk.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(chunk.status().message().find("line 2"), std::string::npos);
}

TEST(CsvChunkReaderTest, RaggedRowReportsFieldCounts) {
  dataframe::Schema schema;
  CCS_CHECK(schema.AddAttribute("x", dataframe::AttributeType::kNumeric).ok());
  CCS_CHECK(schema.AddAttribute("y", dataframe::AttributeType::kNumeric).ok());
  std::istringstream in("x,y\n1,2\n3,4,5\n");
  dataframe::CsvChunkReader reader(&in, schema);
  auto prefix = reader.ReadChunk(10);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  ASSERT_EQ(prefix->num_rows(), 1u);
  auto error = reader.ReadChunk(10);
  ASSERT_FALSE(error.ok());
  const std::string& msg = error.status().message();
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("has 3 fields, expected 2"), std::string::npos) << msg;
}

TEST(CsvChunkReaderTest, UnterminatedQuoteReportsPhysicalLine) {
  dataframe::Schema schema;
  CCS_CHECK(
      schema.AddAttribute("a", dataframe::AttributeType::kCategorical).ok());
  std::istringstream in("a\nok\n\"never closed\n");
  dataframe::CsvChunkReader reader(&in, schema);
  auto prefix = reader.ReadChunk(10);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  ASSERT_EQ(prefix->num_rows(), 1u);
  auto error = reader.ReadChunk(10);
  ASSERT_FALSE(error.ok());
  const std::string& msg = error.status().message();
  EXPECT_NE(msg.find("unterminated quoted field"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
}

TEST(CsvChunkReaderTest, LineNumbersTrackNewlinesInsideQuotedFields) {
  // The embedded newline in row 1's quoted cell occupies a physical
  // line, so the malformed row 3 sits on physical line 5.
  dataframe::Schema schema;
  CCS_CHECK(
      schema.AddAttribute("a", dataframe::AttributeType::kCategorical).ok());
  CCS_CHECK(schema.AddAttribute("x", dataframe::AttributeType::kNumeric).ok());
  std::istringstream in("a,x\n\"two\nlines\",1\nok,2\nbad,oops\n");
  dataframe::CsvChunkReader reader(&in, schema);
  auto prefix = reader.ReadChunk(10);
  ASSERT_TRUE(prefix.ok()) << prefix.status();
  ASSERT_EQ(prefix->num_rows(), 2u);
  EXPECT_EQ(prefix->CategoricalValue(0, "a").value(), "two\nlines");
  auto error = reader.ReadChunk(10);
  ASSERT_FALSE(error.ok());
  const std::string& msg = error.status().message();
  EXPECT_NE(msg.find("line 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("data row 3"), std::string::npos) << msg;
}

TEST(CsvChunkReaderTest, GoodPrefixIsChunkSizeIndependent) {
  dataframe::Schema schema;
  CCS_CHECK(schema.AddAttribute("x", dataframe::AttributeType::kNumeric).ok());
  const std::string text = "x\n1\n2\n3\n4\noops\n";
  for (size_t chunk_rows : {1u, 2u, 3u, 100u}) {
    std::istringstream in(text);
    dataframe::CsvChunkReader reader(&in, schema);
    std::vector<double> got;
    Status terminal = Status::OK();
    for (;;) {
      auto chunk = reader.ReadChunk(chunk_rows);
      if (!chunk.ok()) {
        terminal = chunk.status();
        break;
      }
      if (chunk->num_rows() == 0) break;
      for (size_t r = 0; r < chunk->num_rows(); ++r) {
        got.push_back(chunk->NumericValue(r, "x").value());
      }
    }
    EXPECT_EQ(got, (std::vector<double>{1, 2, 3, 4})) << chunk_rows;
    ASSERT_FALSE(terminal.ok()) << chunk_rows;
    EXPECT_NE(terminal.message().find("line 6"), std::string::npos)
        << chunk_rows << ": " << terminal.message();
  }
}

TEST(CsvChunkReaderTest, HeaderlessMapsPositionally) {
  dataframe::Schema schema;
  CCS_CHECK(schema.AddAttribute("x", dataframe::AttributeType::kNumeric).ok());
  CCS_CHECK(
      schema.AddAttribute("tag", dataframe::AttributeType::kCategorical).ok());
  dataframe::CsvOptions options;
  options.has_header = false;
  std::istringstream in("1.25,hot\n2.5,cold\n");
  dataframe::CsvChunkReader reader(&in, schema, options);
  auto chunk = reader.ReadChunk(10);
  ASSERT_TRUE(chunk.ok()) << chunk.status();
  ASSERT_EQ(chunk->num_rows(), 2u);
  EXPECT_EQ(chunk->NumericValue(1, "x").value(), 2.5);
  EXPECT_EQ(chunk->CategoricalValue(0, "tag").value(), "hot");
}

// --------------------- StreamMonitor empty window ---------------------

TEST(StreamMonitorTest, EmptyWindowIsCleanInvalidArgument) {
  DataFrame reference = TrendFrame(100, 0.0, 4);
  auto monitor = StreamMonitor::Create(reference, 0.1);
  ASSERT_TRUE(monitor.ok());

  auto score = monitor->ObserveWindow(reference.Slice(0, 0));
  ASSERT_FALSE(score.ok());
  EXPECT_EQ(score.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(score.status().message().find("empty window"), std::string::npos);
  EXPECT_TRUE(monitor->history().empty());  // History not advanced.

  auto batch = monitor->ObserveWindows({reference.Slice(0, 10),
                                        reference.Slice(0, 0)});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(monitor->history().empty());
}

// ------------------------ RefreshReference hook ------------------------

TEST(StreamMonitorTest, RefreshReferenceSwapsProfile) {
  DataFrame reference = TrendFrame(300, 0.0, 5);
  DataFrame drifted = TrendFrame(300, 6.0, 6);
  auto monitor = StreamMonitor::Create(reference, 0.3);
  ASSERT_TRUE(monitor.ok());

  auto before = monitor->ObserveWindow(drifted);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->alarm);

  // Re-profile on the drifted distribution and swap it in: the same
  // window must now conform.
  IncrementalSynthesizer profile({"x", "y"});
  ASSERT_TRUE(profile.ObserveAll(drifted).ok());
  auto refreshed = profile.Synthesize();
  ASSERT_TRUE(refreshed.ok());
  ASSERT_TRUE(monitor->RefreshReference(*refreshed).ok());

  auto after = monitor->ObserveWindow(drifted);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->alarm);
  EXPECT_LT(after->drift, before->drift);
  // History and threshold survive the swap.
  ASSERT_EQ(monitor->history().size(), 2u);
  EXPECT_EQ(monitor->history()[1].window_index, 1u);
}

TEST(StreamMonitorTest, RefreshReferenceRejectsEmptyConstraint) {
  DataFrame reference = TrendFrame(50, 0.0, 7);
  auto monitor = StreamMonitor::Create(reference, 0.1);
  ASSERT_TRUE(monitor.ok());
  EXPECT_EQ(monitor->RefreshReference(core::SimpleConstraint()).code(),
            StatusCode::kInvalidArgument);
}

// ----------------------- IncrementalSynthesizer -----------------------

TEST(IncrementalSynthesizerTest, MergeEmptyOtherIsNoOp) {
  DataFrame df = TrendFrame(120, 0.0, 8);
  IncrementalSynthesizer a({"x", "y"});
  ASSERT_TRUE(a.ObserveAll(df).ok());
  auto before = a.Synthesize();
  ASSERT_TRUE(before.ok());

  IncrementalSynthesizer empty({"x", "y"});
  ASSERT_TRUE(a.Merge(empty).ok());
  EXPECT_EQ(a.count(), 120);
  auto after = a.Synthesize();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(core::ConstraintsBitwiseEqual(*before, *after));
}

TEST(IncrementalSynthesizerTest, ManyWayMergeMatchesWholeIngestion) {
  // Partition-parallel ingestion: four shards accumulated independently
  // then merged must profile like one accumulator fed everything.
  DataFrame df = TrendFrame(400, 0.0, 9);
  IncrementalSynthesizer whole({"x", "y"});
  ASSERT_TRUE(whole.ObserveAll(df).ok());

  IncrementalSynthesizer merged({"x", "y"});
  for (size_t begin = 0; begin < 400; begin += 100) {
    IncrementalSynthesizer shard({"x", "y"});
    ASSERT_TRUE(shard.ObserveAll(df.Slice(begin, begin + 100)).ok());
    ASSERT_TRUE(merged.Merge(shard).ok());
  }
  EXPECT_EQ(merged.count(), whole.count());

  auto a = whole.Synthesize();
  auto b = merged.Synthesize();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->conjuncts().size(), b->conjuncts().size());
  for (size_t k = 0; k < a->conjuncts().size(); ++k) {
    EXPECT_NEAR(a->conjuncts()[k].mean(), b->conjuncts()[k].mean(), 1e-9);
    EXPECT_NEAR(a->conjuncts()[k].stddev(), b->conjuncts()[k].stddev(), 1e-9);
    EXPECT_NEAR(a->conjuncts()[k].lb(), b->conjuncts()[k].lb(), 1e-9);
    EXPECT_NEAR(a->conjuncts()[k].ub(), b->conjuncts()[k].ub(), 1e-9);
  }
}

TEST(IncrementalSynthesizerTest, SynthesizeWithNoObservationsFails) {
  IncrementalSynthesizer empty({"x", "y"});
  EXPECT_FALSE(empty.Synthesize().ok());
}

// --------------------------- StreamPipeline ---------------------------

// The serial reference implementation the pipeline must match bitwise:
// parse everything, window it, ObserveWindow each window in order, and
// mirror the pipeline's refresh cadence.
std::vector<WindowScore> SerialLoop(const DataFrame& reference,
                                    const std::string& csv_text,
                                    const StreamPipelineOptions& options) {
  auto monitor = StreamMonitor::Create(reference, options.alarm_threshold,
                                       options.synthesis);
  CCS_CHECK(monitor.ok());
  IncrementalSynthesizer profile(reference.NumericNames(), options.synthesis);
  if (options.refresh_every > 0) {
    CCS_CHECK(profile.ObserveAll(reference).ok());
  }
  std::istringstream in(csv_text);
  auto stream_df = dataframe::ReadCsv(in);
  CCS_CHECK(stream_df.ok());
  auto windower = Windower::Create(options.window_rows, options.slide_rows);
  CCS_CHECK(windower.ok());
  auto windows = windower->Push(*stream_df);
  CCS_CHECK(windows.ok());
  size_t scored = 0;
  for (const DataFrame& window : *windows) {
    CCS_CHECK(monitor->ObserveWindow(window).ok());
    ++scored;
    if (options.refresh_every > 0) {
      CCS_CHECK(profile.ObserveAll(window).ok());
      if (scored % options.refresh_every == 0) {
        auto refreshed = profile.Synthesize();
        CCS_CHECK(refreshed.ok());
        CCS_CHECK(monitor->RefreshReference(*refreshed).ok());
      }
    }
  }
  return monitor->history();
}

void ExpectHistoriesBitwiseEqual(const std::vector<WindowScore>& a,
                                 const std::vector<WindowScore>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].window_index, b[i].window_index) << "window " << i;
    EXPECT_EQ(a[i].drift, b[i].drift) << "window " << i;  // Exact doubles.
    EXPECT_EQ(a[i].alarm, b[i].alarm) << "window " << i;
  }
}

class StreamPipelineTest : public ::testing::Test {
 protected:
  // Force multi-lane dispatch even on single-core machines.
  void SetUp() override { common::SetDefaultThreadCount(4); }
  void TearDown() override { common::SetDefaultThreadCount(0); }
};

TEST_F(StreamPipelineTest, MatchesSerialLoopBitwise) {
  DataFrame reference = TrendFrame(400, 0.0, 10);
  // Drift starts halfway through the stream.
  std::string csv_text = ToCsv(TrendFrame(730, 6.0, 11, /*drift_from=*/365));

  StreamPipelineOptions options;
  options.window_rows = 50;
  options.alarm_threshold = 0.2;
  options.chunk_rows = 37;      // Deliberately window-misaligned.
  options.queue_capacity = 2;   // Exercise backpressure.
  options.max_batch_windows = 3;

  std::vector<WindowScore> serial = SerialLoop(reference, csv_text, options);
  ASSERT_FALSE(serial.empty());
  // The scenario is meaningful: clean head, drifted tail.
  EXPECT_FALSE(serial.front().alarm);
  EXPECT_TRUE(serial.back().alarm);

  for (size_t threads : {1u, 4u}) {
    options.num_threads = threads;
    auto pipeline = StreamPipeline::Create(reference, options);
    ASSERT_TRUE(pipeline.ok());
    std::istringstream in(csv_text);
    size_t callbacks = 0;
    auto stats = pipeline->Run(in, [&](const WindowScore&) { ++callbacks; });
    ASSERT_TRUE(stats.ok()) << stats.status;
    EXPECT_EQ(stats->rows_ingested, 730u);
    EXPECT_EQ(stats->windows_scored, serial.size());
    EXPECT_EQ(callbacks, serial.size());
    ExpectHistoriesBitwiseEqual(pipeline->history(), serial);
  }
}

TEST_F(StreamPipelineTest, MatchesSerialLoopWithSlideAndRefresh) {
  DataFrame reference = TrendFrame(300, 0.0, 12);
  std::string csv_text = ToCsv(TrendFrame(600, 5.0, 13, /*drift_from=*/300));

  StreamPipelineOptions options;
  options.window_rows = 60;
  options.slide_rows = 25;      // Sliding windows.
  options.alarm_threshold = 0.25;
  options.refresh_every = 3;    // Periodic incremental re-synthesis.
  options.chunk_rows = 41;
  options.queue_capacity = 2;
  options.max_batch_windows = 4;

  std::vector<WindowScore> serial = SerialLoop(reference, csv_text, options);
  ASSERT_FALSE(serial.empty());

  for (size_t threads : {1u, 4u}) {
    options.num_threads = threads;
    auto pipeline = StreamPipeline::Create(reference, options);
    ASSERT_TRUE(pipeline.ok());
    std::istringstream in(csv_text);
    auto stats = pipeline->Run(in);
    ASSERT_TRUE(stats.ok()) << stats.status;
    EXPECT_GT(stats->refreshes, 0u);
    ExpectHistoriesBitwiseEqual(pipeline->history(), serial);
  }
}

TEST_F(StreamPipelineTest, ExpandPolynomialOptInMatchesSerialExpandedLoop) {
  // The opt-in lazy expansion: the monitor scores each window through a
  // derived degree-2 view and the refresh profile derives the expanded
  // columns inside its Gram walk — no expanded frame is ever built. The
  // pipeline must match a serial loop running the same expanded monitor
  // and WithExpansion refresh cadence, bitwise, at 1 and 4 lanes.
  DataFrame reference = TrendFrame(300, 0.0, 40);
  std::string csv_text = ToCsv(TrendFrame(600, 5.0, 41, /*drift_from=*/300));

  StreamPipelineOptions options;
  options.window_rows = 60;
  options.alarm_threshold = 0.25;
  options.refresh_every = 3;
  options.chunk_rows = 41;
  options.queue_capacity = 2;
  options.max_batch_windows = 4;
  options.expand_polynomial = true;

  auto monitor =
      StreamMonitor::Create(reference, options.alarm_threshold,
                            options.synthesis, &options.expansion);
  ASSERT_TRUE(monitor.ok()) << monitor.status();
  auto profile = IncrementalSynthesizer::WithExpansion(
      reference.NumericNames(), options.expansion, options.synthesis);
  ASSERT_TRUE(profile.ok()) << profile.status();
  ASSERT_TRUE(profile->ObserveAll(reference).ok());
  std::istringstream serial_in(csv_text);
  auto stream_df = dataframe::ReadCsv(serial_in);
  ASSERT_TRUE(stream_df.ok());
  auto windower = Windower::Create(options.window_rows, options.slide_rows);
  ASSERT_TRUE(windower.ok());
  auto windows = windower->Push(*stream_df);
  ASSERT_TRUE(windows.ok());
  size_t scored = 0;
  for (const DataFrame& window : *windows) {
    ASSERT_TRUE(monitor->ObserveWindow(window).ok());
    ++scored;
    ASSERT_TRUE(profile->ObserveAll(window).ok());
    if (scored % options.refresh_every == 0) {
      auto refreshed = profile->Synthesize();
      ASSERT_TRUE(refreshed.ok());
      ASSERT_TRUE(monitor->RefreshReference(*refreshed).ok());
    }
  }
  std::vector<WindowScore> serial = monitor->history();
  ASSERT_FALSE(serial.empty());

  for (size_t threads : {1u, 4u}) {
    options.num_threads = threads;
    auto pipeline = StreamPipeline::Create(reference, options);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    std::istringstream in(csv_text);
    auto stats = pipeline->Run(in);
    ASSERT_TRUE(stats.ok()) << stats.status;
    EXPECT_GT(stats->refreshes, 0u);
    ExpectHistoriesBitwiseEqual(pipeline->history(), serial);
  }
}

TEST_F(StreamPipelineTest, TracingOnVsOffBitwise) {
  // The observability contract: an active ObsSession records spans and
  // queue waits strictly out-of-band, so scored output is bitwise
  // identical with tracing on or off, at any thread count.
  DataFrame reference = TrendFrame(300, 0.0, 30);
  std::string csv_text = ToCsv(TrendFrame(620, 5.0, 31, /*drift_from=*/310));

  StreamPipelineOptions options;
  options.window_rows = 60;
  options.slide_rows = 25;
  options.alarm_threshold = 0.25;
  options.refresh_every = 3;
  options.chunk_rows = 41;
  options.queue_capacity = 2;
  options.max_batch_windows = 4;

  for (size_t threads : {1u, 4u}) {
    options.num_threads = threads;

    auto untraced = StreamPipeline::Create(reference, options);
    ASSERT_TRUE(untraced.ok());
    std::istringstream in_off(csv_text);
    ASSERT_TRUE(untraced->Run(in_off).ok());

    auto traced = StreamPipeline::Create(reference, options);
    ASSERT_TRUE(traced.ok());
    std::istringstream in_on(csv_text);
    {
      obs::ObsSession session;
      ASSERT_TRUE(traced->Run(in_on).ok());
      // The session actually observed the run: stage spans exist and
      // the export is non-trivial.
      std::vector<obs::TraceEvent> events = session.Collect();
      EXPECT_FALSE(events.empty());
      bool saw_score = false;
      for (const obs::TraceEvent& ev : events) {
        if (std::string(ev.name) == "stream.score") saw_score = true;
      }
      EXPECT_TRUE(saw_score);
      EXPECT_NE(session.ToChromeTraceJson().find("\"ph\":\"X\""),
                std::string::npos);
    }

    ExpectHistoriesBitwiseEqual(traced->history(), untraced->history());
  }
}

TEST(StreamPipelineStatsTest, EmptyStreamReportsZeroRate) {
  // rows_per_second on a degenerate (empty or near-instant) stream must
  // be 0, never inf or NaN.
  DataFrame reference = TrendFrame(100, 0.0, 32);
  auto pipeline = StreamPipeline::Create(reference, {});
  ASSERT_TRUE(pipeline.ok());
  std::istringstream in("x,y\n");  // Header only: zero rows.
  auto stats = pipeline->Run(in);
  ASSERT_TRUE(stats.ok()) << stats.status;
  EXPECT_EQ(stats->rows_ingested, 0u);
  EXPECT_EQ(stats->rows_per_second, 0.0);
  EXPECT_TRUE(std::isfinite(stats->rows_per_second));
}

TEST_F(StreamPipelineTest, HistoryContinuesAcrossRuns) {
  DataFrame reference = TrendFrame(200, 0.0, 14);
  DataFrame stream_df = TrendFrame(200, 0.0, 15);

  StreamPipelineOptions options;
  options.window_rows = 50;
  auto pipeline = StreamPipeline::Create(reference, options);
  ASSERT_TRUE(pipeline.ok());

  // Two segments split on a window boundary score like one stream.
  std::istringstream first(ToCsv(stream_df.Slice(0, 100)));
  std::istringstream second(ToCsv(stream_df.Slice(100, 200)));
  ASSERT_TRUE(pipeline->Run(first).ok());
  ASSERT_TRUE(pipeline->Run(second).ok());
  ASSERT_EQ(pipeline->history().size(), 4u);
  EXPECT_EQ(pipeline->history()[3].window_index, 3u);
}

TEST_F(StreamPipelineTest, RefreshCadenceContinuesAcrossRuns) {
  // The refresh cadence counts the whole history: a stream served in
  // segments (split on a window boundary) must refresh at the same
  // absolute window indices — and score identically — as one Run.
  DataFrame reference = TrendFrame(300, 0.0, 18);
  DataFrame stream_df = TrendFrame(300, 5.0, 19, /*drift_from=*/150);

  StreamPipelineOptions options;
  options.window_rows = 50;
  options.alarm_threshold = 0.25;
  options.refresh_every = 2;

  auto whole = StreamPipeline::Create(reference, options);
  ASSERT_TRUE(whole.ok());
  std::istringstream whole_in(ToCsv(stream_df));
  auto whole_stats = whole->Run(whole_in);
  ASSERT_TRUE(whole_stats.ok());
  ASSERT_EQ(whole_stats->refreshes, 3u);  // 6 windows / cadence 2.

  auto segmented = StreamPipeline::Create(reference, options);
  ASSERT_TRUE(segmented.ok());
  size_t segmented_refreshes = 0;
  // Segment boundary at 150 rows = 3 windows, mid-cadence after run 1's
  // refresh at window 2: run 2 must refresh at windows 4 and 6.
  for (size_t begin : {0u, 150u}) {
    std::istringstream in(ToCsv(stream_df.Slice(begin, begin + 150)));
    auto stats = segmented->Run(in);
    ASSERT_TRUE(stats.ok());
    segmented_refreshes += stats->refreshes;
  }
  EXPECT_EQ(segmented_refreshes, 3u);
  ExpectHistoriesBitwiseEqual(segmented->history(), whole->history());
}

TEST_F(StreamPipelineTest, TearsDownCleanlyOnMidStreamMalformation) {
  // Row 31 is ragged. The reader delivers the 30-row good prefix before
  // the error, so every full window of it (3 windows of 10) is scored
  // before Run surfaces the structured parse error — independent of
  // chunk sizing and thread count.
  DataFrame reference = TrendFrame(100, 0.0, 16);
  std::ostringstream bad;
  bad << "x,y\n";
  for (int i = 0; i < 30; ++i) bad << i << "," << i << "\n";
  bad << "7\n";

  for (size_t chunk_rows : {4u, 10u, 64u}) {
    for (size_t threads : {1u, 4u}) {
      StreamPipelineOptions options;
      options.window_rows = 10;
      options.alarm_threshold = 0.9;
      options.chunk_rows = chunk_rows;
      options.num_threads = threads;
      auto pipeline = StreamPipeline::Create(reference, options);
      ASSERT_TRUE(pipeline.ok());
      std::istringstream in(bad.str());
      auto stats = pipeline->Run(in);
      ASSERT_FALSE(stats.ok());
      EXPECT_EQ(stats.status.code(), StatusCode::kInvalidArgument);
      const std::string& msg = stats.status.message();
      EXPECT_NE(msg.find("line 32"), std::string::npos) << msg;
      EXPECT_NE(msg.find("data row 31"), std::string::npos) << msg;
      EXPECT_NE(msg.find("has 1 fields, expected 2"), std::string::npos)
          << msg;
      EXPECT_EQ(pipeline->history().size(), 3u)
          << "chunk_rows=" << chunk_rows << " threads=" << threads;
    }
  }
}

TEST_F(StreamPipelineTest, ErrorResultCarriesPartialStats) {
  // Pre-robustness Run returned StatusOr<PipelineStats>: a mid-stream
  // failure dropped every counter. PipelineRunResult keeps them — the
  // operator learns how far the run got alongside why it died.
  DataFrame reference = TrendFrame(100, 0.0, 16);
  std::ostringstream bad;
  bad << "x,y\n";
  for (int i = 0; i < 30; ++i) bad << i << "," << i << "\n";
  bad << "7\n";

  StreamPipelineOptions options;
  options.window_rows = 10;
  options.alarm_threshold = 0.9;
  options.chunk_rows = 10;
  auto pipeline = StreamPipeline::Create(reference, options);
  ASSERT_TRUE(pipeline.ok());
  std::istringstream in(bad.str());
  auto result = pipeline->Run(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  // Three full 10-row chunks parsed before the ragged one.
  EXPECT_EQ(result->rows_ingested, 30u);
  EXPECT_EQ(result->windows_scored, 3u);
}

TEST_F(StreamPipelineTest, IngestQuarantineAbsorbsMalformedRow) {
  // Under ingest_policy=quarantine a ragged row costs exactly that row:
  // the surviving rows window and score as if the stream had never
  // contained it, so the history is bitwise identical to the clean
  // stream's — at any chunking and thread count.
  DataFrame reference = TrendFrame(100, 0.0, 18);
  DataFrame clean = TrendFrame(40, 0.0, 19);
  std::string clean_csv = ToCsv(clean);
  // Splice a ragged row after data row 25 of the same stream.
  std::string dirty_csv;
  {
    size_t pos = clean_csv.find('\n') + 1;  // Past the header.
    for (int i = 0; i < 25; ++i) pos = clean_csv.find('\n', pos) + 1;
    dirty_csv = clean_csv.substr(0, pos) + "7\n" + clean_csv.substr(pos);
  }

  StreamPipelineOptions options;
  options.window_rows = 10;
  options.alarm_threshold = 0.9;
  options.ingest_policy.mode = FailureMode::kQuarantine;

  std::vector<WindowScore> clean_history;
  {
    auto pipeline = StreamPipeline::Create(reference, options);
    ASSERT_TRUE(pipeline.ok());
    std::istringstream in(clean_csv);
    ASSERT_TRUE(pipeline->Run(in).ok());
    clean_history = pipeline->history();
    ASSERT_EQ(clean_history.size(), 4u);
  }

  for (size_t chunk_rows : {4u, 10u, 64u}) {
    for (size_t threads : {1u, 4u}) {
      options.chunk_rows = chunk_rows;
      options.num_threads = threads;
      auto pipeline = StreamPipeline::Create(reference, options);
      ASSERT_TRUE(pipeline.ok());
      std::istringstream in(dirty_csv);
      auto result = pipeline->Run(in);
      ASSERT_TRUE(result.ok()) << result.status;
      EXPECT_EQ(result->rows_ingested, 40u);
      EXPECT_EQ(result->rows_quarantined, 1u);
      ASSERT_EQ(result->quarantine.size(), 1u);
      EXPECT_EQ(result->quarantine[0].stage, "ingest");
      EXPECT_EQ(result->quarantine[0].rows_lost, 1u);
      EXPECT_EQ(result->quarantine[0].reason.code(),
                StatusCode::kInvalidArgument);
      ExpectHistoriesBitwiseEqual(pipeline->history(), clean_history);
    }
  }
}

TEST_F(StreamPipelineTest, RetryPolicyMasksTransientFaults) {
  // score_policy=retry:2 with a periodic transient fault: every retry
  // re-checks the fault point at the next hit ordinal, so each injected
  // kUnavailable is absorbed on the first retry and the committed
  // history is bitwise identical to the fault-free run.
  DataFrame reference = TrendFrame(200, 0.0, 20);
  std::string csv_text = ToCsv(TrendFrame(400, 0.0, 21));

  StreamPipelineOptions options;
  options.window_rows = 40;
  options.alarm_threshold = 0.9;
  options.chunk_rows = 23;
  auto parsed = FailurePolicy::Parse("retry:2");
  ASSERT_TRUE(parsed.ok());
  options.score_policy = *parsed;

  std::vector<WindowScore> fault_free;
  {
    auto pipeline = StreamPipeline::Create(reference, options);
    ASSERT_TRUE(pipeline.ok());
    std::istringstream in(csv_text);
    ASSERT_TRUE(pipeline->Run(in).ok());
    fault_free = pipeline->history();
    ASSERT_EQ(fault_free.size(), 10u);
  }

  common::fault::FaultSpec spec;
  spec.seed = 5;
  common::fault::FaultPoint p;
  p.point = "stream.score.window";
  p.trigger = "every";
  p.every = 4;
  spec.points.push_back(p);
  ASSERT_TRUE(common::fault::Injector::Global().Arm(spec).ok());
  auto pipeline = StreamPipeline::Create(reference, options);
  ASSERT_TRUE(pipeline.ok());
  std::istringstream in(csv_text);
  auto result = pipeline->Run(in);
  common::fault::Injector::Global().Disarm();
  ASSERT_TRUE(result.ok()) << result.status;
  EXPECT_GT(result->faults_injected, 0u);
  EXPECT_EQ(result->retries, result->faults_injected);
  EXPECT_EQ(result->windows_quarantined, 0u);
  EXPECT_EQ(result->rows_quarantined, 0u);
  ExpectHistoriesBitwiseEqual(pipeline->history(), fault_free);
}

TEST_F(StreamPipelineTest, RejectsBadOptions) {
  DataFrame reference = TrendFrame(50, 0.0, 17);
  StreamPipelineOptions options;
  options.window_rows = 0;
  EXPECT_FALSE(StreamPipeline::Create(reference, options).ok());
  options.window_rows = 10;
  options.slide_rows = 20;
  EXPECT_FALSE(StreamPipeline::Create(reference, options).ok());
  options.slide_rows = 0;
  options.alarm_threshold = 3.0;
  EXPECT_FALSE(StreamPipeline::Create(reference, options).ok());
}

}  // namespace
}  // namespace ccs::stream
