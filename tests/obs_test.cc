// Tests for the observability layer (src/obs/): counter striping,
// gauge max semantics, histogram percentile edge cases (empty, single
// sample, overflow bucket), registry interning and JSON export,
// SafeRate degeneracy, trace spans, ring-buffer overwrite accounting,
// and the no-session no-op fast path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ccs::obs {
namespace {

TEST(SafeRateTest, DegenerateInputsReportZero) {
  EXPECT_EQ(SafeRate(0.0, 1.0), 0.0);
  EXPECT_EQ(SafeRate(100.0, 0.0), 0.0);
  EXPECT_EQ(SafeRate(100.0, 1e-12), 0.0);  // Near-zero elapsed.
  EXPECT_EQ(SafeRate(100.0, -1.0), 0.0);
  EXPECT_EQ(SafeRate(100.0, std::numeric_limits<double>::quiet_NaN()), 0.0);
  EXPECT_EQ(SafeRate(100.0, std::numeric_limits<double>::infinity()), 0.0);
  EXPECT_EQ(SafeRate(std::numeric_limits<double>::quiet_NaN(), 1.0), 0.0);
  EXPECT_DOUBLE_EQ(SafeRate(100.0, 2.0), 50.0);
}

TEST(CounterTest, SumsAcrossStripesExactly) {
  Counter c;
  for (int i = 0; i < 1000; ++i) c.Increment();
  c.Add(24);
  EXPECT_EQ(c.value(), 1024u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, UpdateMaxNeverLowers) {
  Gauge g;
  g.Set(10);
  g.UpdateMax(5);
  EXPECT_EQ(g.value(), 10);
  g.UpdateMax(50);
  EXPECT_EQ(g.value(), 50);
  g.Set(3);  // Set always wins.
  EXPECT_EQ(g.value(), 3);
}

TEST(HistogramTest, EmptyHistogramReportsZeroPercentiles) {
  Histogram h({1.0, 10.0, 100.0});
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total_count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.Percentile(50.0), 0.0);
  EXPECT_EQ(snap.p99(), 0.0);
}

TEST(HistogramTest, SingleSamplePercentiles) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(5.0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total_count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 5.0);
  // The one sample owns every percentile; interpolation lands at the
  // upper bound of its (1, 10] bucket for rank 1 of 1.
  const double p50 = snap.p50();
  EXPECT_GT(p50, 1.0);
  EXPECT_LE(p50, 10.0);
  EXPECT_EQ(snap.p50(), snap.p99());
}

TEST(HistogramTest, OverflowBucketClampsToLastBound) {
  Histogram h({1.0, 10.0});
  h.Observe(1e9);  // Far above the last finite bound.
  HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);  // 2 bounds + overflow.
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.p50(), 10.0);  // Clamped, not extrapolated.
  EXPECT_EQ(snap.p99(), 10.0);
}

TEST(HistogramTest, NanCountsInOverflowAndIsExcludedFromSum) {
  Histogram h({1.0, 10.0});
  h.Observe(2.0);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total_count, 2u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 2.0);
}

TEST(HistogramTest, PercentilesInterpolateWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 samples in (10, 20]: p50 is rank 5 of 10 -> midpoint-ish.
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(50.0), 15.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100.0), 20.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), 11.0);  // Rank clamps to 1.
}

TEST(HistogramTest, DefaultBoundsAreAscending) {
  std::vector<double> bounds = Histogram::DefaultLatencyBoundsUs();
  ASSERT_GT(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(RegistryTest, InternsStablePointersByName) {
  Registry& reg = Registry::Global();
  Counter* a = reg.GetCounter("test.interned");
  Counter* b = reg.GetCounter("test.interned");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, reg.GetCounter("test.other"));
  // Namespaces are separate: a gauge may share a counter's name.
  EXPECT_NE(static_cast<void*>(reg.GetGauge("test.interned")),
            static_cast<void*>(a));
}

TEST(RegistryTest, ToJsonIsOneWellFormedLine) {
  Registry& reg = Registry::Global();
  reg.GetCounter("test.json.counter")->Add(7);
  reg.GetGauge("test.json.gauge")->Set(-3);
  reg.GetHistogram("test.json.hist")->Observe(42.0);
  std::string json = reg.ToJson();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.gauge\":-3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  // Balanced braces/brackets — a cheap well-formedness proxy; the CI
  // observability smoke step runs a real JSON parse.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ObsSpanTest, NoSessionMeansNoRecording) {
  ASSERT_EQ(ObsSession::Active(), nullptr);
  { ObsSpan span("orphan", "test"); }  // Must be a safe no-op.
  ObsSession session;
  EXPECT_TRUE(session.Collect().empty());
}

TEST(ObsSpanTest, SpansRecordIntoActiveSession) {
  ObsSession session;
  {
    ObsSpan outer("outer", "test");
    ObsSpan inner("inner", "test");
  }
  std::vector<TraceEvent> events = session.Collect();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* outer_ev = nullptr;
  const TraceEvent* inner_ev = nullptr;
  for (const TraceEvent& ev : events) {
    if (std::string(ev.name) == "outer") outer_ev = &ev;
    if (std::string(ev.name) == "inner") inner_ev = &ev;
  }
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // Inner nests inside outer: opened no earlier, closed no later (RAII
  // destruction order).
  EXPECT_GE(inner_ev->start_ns, outer_ev->start_ns);
  EXPECT_LE(inner_ev->start_ns + inner_ev->dur_ns,
            outer_ev->start_ns + outer_ev->dur_ns);
  EXPECT_STREQ(outer_ev->category, "test");
}

TEST(ObsSpanTest, SessionsAreIndependent) {
  {
    ObsSession first;
    ObsSpan span("in-first", "test");
  }
  ObsSession second;
  { ObsSpan span("in-second", "test"); }
  std::vector<TraceEvent> events = second.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "in-second");
}

TEST(ObsSpanTest, LongNamesTruncateSafely) {
  ObsSession session;
  std::string long_name(200, 'x');
  { ObsSpan span(long_name.c_str(), "test"); }
  std::vector<TraceEvent> events = session.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name).size(), sizeof(events[0].name) - 1);
}

TEST(SpanRingTest, OverwritesOldestAndCountsDrops) {
  ObsSession session(/*ring_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    // Named string so it outlives the span (the name is copied into the
    // ring only when the span closes).
    std::string name = "span" + std::to_string(i);
    ObsSpan span(name.c_str(), "test");
  }
  std::vector<TraceEvent> events = session.Collect();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(session.dropped(), 6u);
  // The survivors are the newest four, oldest first.
  EXPECT_STREQ(events[0].name, "span6");
  EXPECT_STREQ(events[3].name, "span9");
}

TEST(ObsSessionTest, ChromeTraceJsonShape) {
  ObsSession session;
  { ObsSpan span("alpha \"quoted\"", "test"); }
  std::string json = session.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("alpha \\\"quoted\\\""), std::string::npos);
}

TEST(ObsSessionTest, AggregateByNameSumsDurations) {
  ObsSession session;
  { ObsSpan span("stage", "test"); }
  { ObsSpan span("stage", "test"); }
  { ObsSpan span("other", "test"); }
  auto agg = session.AggregateByName();
  ASSERT_EQ(agg.count("stage"), 1u);
  EXPECT_EQ(agg["stage"].count, 2u);
  EXPECT_EQ(agg["other"].count, 1u);
}

}  // namespace
}  // namespace ccs::obs
