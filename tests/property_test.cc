// Randomized property suites (TEST_P over seeds): invariants that must
// hold for ANY dataset, not just the curated fixtures.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/random.h"
#include "core/repair.h"
#include "core/serialize.h"
#include "core/synthesizer.h"
#include "dataframe/csv.h"
#include "linalg/gram.h"
#include "stats/correlation.h"

namespace ccs {
namespace {

using core::SimpleConstraint;
using core::Synthesizer;
using dataframe::DataFrame;
using linalg::Vector;

// A random dataset: random attribute count, random linear structure
// (some attributes are noisy combinations of others), random scales,
// optional categorical attribute.
DataFrame RandomDataset(uint64_t seed, bool with_categorical) {
  Rng rng(seed);
  size_t m = static_cast<size_t>(rng.UniformInt(2, 6));
  size_t n = static_cast<size_t>(rng.UniformInt(50, 400));
  std::vector<std::vector<double>> cols(m, std::vector<double>(n));
  for (size_t j = 0; j < m; ++j) {
    double scale = std::pow(10.0, rng.Uniform(-1.0, 3.0));
    double offset = rng.Uniform(-100.0, 100.0);
    bool derived = j > 0 && rng.Bernoulli(0.5);
    for (size_t i = 0; i < n; ++i) {
      if (derived) {
        size_t parent = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(j) - 1));
        cols[j][i] = 1.7 * cols[parent][i] + offset +
                     rng.Gaussian(0.0, 0.01 * scale);
      } else {
        cols[j][i] = offset + rng.Gaussian(0.0, scale);
      }
    }
  }
  DataFrame df;
  for (size_t j = 0; j < m; ++j) {
    CCS_CHECK(df.AddNumericColumn("a" + std::to_string(j),
                                  std::move(cols[j]))
                  .ok());
  }
  if (with_categorical) {
    std::vector<std::string> g(n);
    int domain = static_cast<int>(rng.UniformInt(2, 5));
    for (size_t i = 0; i < n; ++i) {
      g[i] = "v" + std::to_string(rng.UniformInt(0, domain - 1));
    }
    CCS_CHECK(df.AddCategoricalColumn("g", std::move(g)).ok());
  }
  return df;
}

class SeedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Training tuples never violate their own constraints (the bounds are
// mu +/- 4 sigma, so even the worst training tuple is inside for data
// without > 4-sigma outliers; we assert the 95th percentile is zero and
// every violation is tiny).
TEST_P(SeedPropertyTest, TrainingViolationsAreNegligible) {
  DataFrame df = RandomDataset(GetParam(), false);
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  auto violations = constraint->ViolationAll(df);
  ASSERT_TRUE(violations.ok());
  size_t nonzero = 0;
  for (double v : violations->data()) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    if (v > 1e-9) ++nonzero;
  }
  // Definition 2: |{t : not Phi(t)}| << |D|.
  EXPECT_LT(nonzero, df.num_rows() / 10);
}

// Quantitative semantics stays in [0, 1] for arbitrary probe tuples.
TEST_P(SeedPropertyTest, ViolationsAreAlwaysInUnitInterval) {
  DataFrame df = RandomDataset(GetParam() + 1000, false);
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  Rng rng(GetParam() * 31 + 7);
  size_t m = df.NumericNames().size();
  for (int probe = 0; probe < 50; ++probe) {
    Vector t(m);
    for (size_t j = 0; j < m; ++j) {
      t[j] = rng.Uniform(-1e6, 1e6);
    }
    double v = constraint->ViolationAligned(t);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_TRUE(std::isfinite(v));
  }
}

// Algorithm 1's projections are pairwise uncorrelated on any dataset
// (Theorem 13(2), exact under our mean-centered implementation).
TEST_P(SeedPropertyTest, ProjectionsUncorrelatedOnRandomData) {
  DataFrame df = RandomDataset(GetParam() + 2000, false);
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  const auto& conjuncts = constraint->conjuncts();
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    auto fi = conjuncts[i].projection().EvaluateAll(df).value();
    for (size_t j = i + 1; j < conjuncts.size(); ++j) {
      auto fj = conjuncts[j].projection().EvaluateAll(df).value();
      double rho = stats::PearsonCorrelation(fi, fj).value();
      EXPECT_NEAR(rho, 0.0, 1e-5);
    }
  }
}

// Serialization round-trips both structure and semantics on any dataset.
TEST_P(SeedPropertyTest, SerializeRoundTripOnRandomData) {
  DataFrame df = RandomDataset(GetParam() + 3000, true);
  Synthesizer synth;
  auto phi = synth.Synthesize(df);
  ASSERT_TRUE(phi.ok());
  auto back = core::Deserialize(core::Serialize(*phi));
  ASSERT_TRUE(back.ok());
  for (size_t i = 0; i < std::min<size_t>(df.num_rows(), 30); ++i) {
    EXPECT_DOUBLE_EQ(phi->Violation(df, i).value(),
                     back->Violation(df, i).value());
  }
}

// CSV round-trips any numeric/categorical frame we generate.
TEST_P(SeedPropertyTest, CsvRoundTripOnRandomData) {
  DataFrame df = RandomDataset(GetParam() + 4000, true);
  std::ostringstream out;
  ASSERT_TRUE(dataframe::WriteCsv(df, out).ok());
  std::istringstream in(out.str());
  auto back = dataframe::ReadCsv(in);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_rows(), df.num_rows());
  ASSERT_TRUE(back->schema() == df.schema());
  for (size_t i = 0; i < std::min<size_t>(df.num_rows(), 20); ++i) {
    for (const auto& name : df.NumericNames()) {
      EXPECT_NEAR(back->NumericValue(i, name).value(),
                  df.NumericValue(i, name).value(),
                  std::abs(df.NumericValue(i, name).value()) * 1e-9 + 1e-9);
    }
  }
}

// Streaming Gram accumulation over arbitrary partitionings equals the
// single-pass result (the §4.3.2 parallel/merge claim).
TEST_P(SeedPropertyTest, GramMergeInvariantOnRandomPartitions) {
  DataFrame df = RandomDataset(GetParam() + 5000, false);
  size_t m = df.NumericNames().size();
  auto data = df.NumericMatrix();
  linalg::GramAccumulator whole(m);
  whole.AddMatrix(data);

  Rng rng(GetParam() * 13 + 5);
  size_t parts = static_cast<size_t>(rng.UniformInt(2, 5));
  std::vector<linalg::GramAccumulator> accumulators(
      parts, linalg::GramAccumulator(m));
  for (size_t i = 0; i < data.rows(); ++i) {
    accumulators[static_cast<size_t>(
                     rng.UniformInt(0, static_cast<int64_t>(parts) - 1))]
        .Add(data.Row(i));
  }
  linalg::GramAccumulator merged = accumulators[0];
  for (size_t p = 1; p < parts; ++p) {
    ASSERT_TRUE(merged.Merge(accumulators[p]).ok());
  }
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_TRUE(linalg::Matrix::AlmostEqual(
      merged.AugmentedGram(), whole.AugmentedGram(),
      1e-6 * std::max(1.0, whole.AugmentedGram().MaxAbs())));
}

// Repair fixed point: imputing an attribute of a CONFORMING tuple must
// not break conformance (the imputed tuple stays near the trend).
TEST_P(SeedPropertyTest, ImputationPreservesConformance) {
  DataFrame df = RandomDataset(GetParam() + 6000, false);
  auto repairer = core::ConstraintRepairer::FromTrainingData(df);
  ASSERT_TRUE(repairer.ok());
  auto data = df.NumericMatrix();
  size_t checked = 0;
  for (size_t i = 0; i < data.rows() && checked < 10; ++i) {
    Vector tuple = data.Row(i);
    if (repairer->constraint().ViolationAligned(tuple) > 1e-9) continue;
    ++checked;
    for (size_t j = 0; j < tuple.size(); ++j) {
      auto repaired = repairer->ImputeRow(tuple, j);
      ASSERT_TRUE(repaired.ok());
      EXPECT_LT(repairer->constraint().ViolationAligned(*repaired), 0.05)
          << "seed " << GetParam() << " row " << i << " attr " << j;
    }
  }
  EXPECT_GT(checked, 0u);
}

// Drift self-consistency: a dataset scored against its own profile has
// (near-)zero mean violation; a heavily shifted copy scores higher.
TEST_P(SeedPropertyTest, ShiftIncreasesDrift) {
  DataFrame df = RandomDataset(GetParam() + 7000, false);
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(df);
  ASSERT_TRUE(constraint.ok());
  auto self = constraint->ViolationAll(df).value().Mean();

  // Shift ONLY the first attribute by 20 of its standard deviations.
  // (Shifting every attribute by its own sigma can move exactly along the
  // learned trend and legitimately stay conforming.)
  DataFrame shifted;
  bool first = true;
  for (const auto& name : df.NumericNames()) {
    auto col = df.ColumnByName(name).value()->ToVector();
    std::vector<double> values = col.data();
    if (first) {
      double delta = 20.0 * (col.StdDev() > 0 ? col.StdDev() : 1.0);
      for (double& v : values) v += delta;
      first = false;
    }
    ASSERT_TRUE(shifted.AddNumericColumn(name, std::move(values)).ok());
  }
  auto drifted = constraint->ViolationAll(shifted).value().Mean();
  EXPECT_GT(drifted, self + 0.02);  // Low-importance dirs may score low.
  EXPECT_GT(drifted, 3.0 * self + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace ccs
