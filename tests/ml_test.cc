// Tests for ml/: scaler, regressors, metrics, splitting.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "ml/linear_regression.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/scaler.h"
#include "ml/split.h"

namespace ccs::ml {
namespace {

using linalg::Matrix;
using linalg::Vector;

// --------------------------- scaler ----------------------------------

TEST(ScalerTest, TransformsToZeroMeanUnitVariance) {
  Matrix data{{1.0, 100.0}, {2.0, 200.0}, {3.0, 300.0}};
  auto scaler = StandardScaler::Fit(data);
  ASSERT_TRUE(scaler.ok());
  auto scaled = scaler->Transform(data);
  ASSERT_TRUE(scaled.ok());
  for (size_t j = 0; j < 2; ++j) {
    Vector col = scaled->Col(j);
    EXPECT_NEAR(col.Mean(), 0.0, 1e-12);
    EXPECT_NEAR(col.StdDev(), 1.0, 1e-12);
  }
}

TEST(ScalerTest, ConstantColumnMapsToZero) {
  Matrix data{{5.0}, {5.0}, {5.0}};
  auto scaler = StandardScaler::Fit(data);
  ASSERT_TRUE(scaler.ok());
  auto scaled = scaler->Transform(data);
  ASSERT_TRUE(scaled.ok());
  EXPECT_DOUBLE_EQ((*scaled)(0, 0), 0.0);
}

TEST(ScalerTest, RowTransformMatchesMatrixTransform) {
  Matrix data{{1.0, 4.0}, {3.0, 8.0}};
  auto scaler = StandardScaler::Fit(data);
  ASSERT_TRUE(scaler.ok());
  auto m = scaler->Transform(data);
  auto r = scaler->Transform(data.Row(1));
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*m)(1, 0), (*r)[0]);
  EXPECT_DOUBLE_EQ((*m)(1, 1), (*r)[1]);
}

TEST(ScalerTest, Errors) {
  EXPECT_FALSE(StandardScaler::Fit(Matrix()).ok());
  Matrix data{{1.0, 2.0}};
  auto scaler = StandardScaler::Fit(data);
  ASSERT_TRUE(scaler.ok());
  EXPECT_FALSE(scaler->Transform(Matrix(1, 3)).ok());
}

// --------------------------- linear regression -----------------------

TEST(LinearRegressionTest, RecoversExactLinearFunction) {
  // y = 2x1 - 3x2 + 5.
  Rng rng(3);
  Matrix x(50, 2);
  Vector y(50);
  for (size_t i = 0; i < 50; ++i) {
    x.At(i, 0) = rng.Uniform(-5.0, 5.0);
    x.At(i, 1) = rng.Uniform(-5.0, 5.0);
    y[i] = 2.0 * x.At(i, 0) - 3.0 * x.At(i, 1) + 5.0;
  }
  auto model = LinearRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights()[0], 2.0, 1e-8);
  EXPECT_NEAR(model->weights()[1], -3.0, 1e-8);
  EXPECT_NEAR(model->intercept(), 5.0, 1e-8);
}

TEST(LinearRegressionTest, NoInterceptOption) {
  Matrix x{{1.0}, {2.0}, {3.0}};
  Vector y{2.0, 4.0, 6.0};
  LinearRegressionOptions options;
  options.fit_intercept = false;
  auto model = LinearRegression::Fit(x, y, options);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights()[0], 2.0, 1e-10);
  EXPECT_DOUBLE_EQ(model->intercept(), 0.0);
}

TEST(LinearRegressionTest, NoisyFitIsUnbiased) {
  Rng rng(5);
  Matrix x(2000, 1);
  Vector y(2000);
  for (size_t i = 0; i < 2000; ++i) {
    x.At(i, 0) = rng.Uniform(0.0, 10.0);
    y[i] = 1.5 * x.At(i, 0) + rng.Gaussian(0.0, 1.0);
  }
  auto model = LinearRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->weights()[0], 1.5, 0.05);
}

TEST(LinearRegressionTest, CollinearFeaturesStillFit) {
  // x2 = 2 * x1 exactly: the plain normal equations are singular; the
  // fitter must fall back to a ridge and still predict well.
  Rng rng(7);
  Matrix x(100, 2);
  Vector y(100);
  for (size_t i = 0; i < 100; ++i) {
    double v = rng.Uniform(-3.0, 3.0);
    x.At(i, 0) = v;
    x.At(i, 1) = 2.0 * v;
    y[i] = 4.0 * v;
  }
  auto model = LinearRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(model->Predict(x.Row(i)), y[i], 1e-3);
  }
}

TEST(LinearRegressionTest, RidgeShrinksWeights) {
  Rng rng(9);
  Matrix x(50, 1);
  Vector y(50);
  for (size_t i = 0; i < 50; ++i) {
    x.At(i, 0) = rng.Uniform(-1.0, 1.0);
    y[i] = 3.0 * x.At(i, 0);
  }
  LinearRegressionOptions ridge;
  ridge.l2_penalty = 100.0;
  auto plain = LinearRegression::Fit(x, y);
  auto shrunk = LinearRegression::Fit(x, y, ridge);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(shrunk.ok());
  EXPECT_LT(std::abs(shrunk->weights()[0]), std::abs(plain->weights()[0]));
}

TEST(LinearRegressionTest, PredictAllMatchesPredict) {
  Matrix x{{1.0}, {2.0}};
  Vector y{3.0, 5.0};
  auto model = LinearRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  Vector all = model->PredictAll(x);
  EXPECT_DOUBLE_EQ(all[0], model->Predict(x.Row(0)));
  EXPECT_DOUBLE_EQ(all[1], model->Predict(x.Row(1)));
}

TEST(LinearRegressionTest, BadShapesAreErrors) {
  EXPECT_FALSE(LinearRegression::Fit(Matrix(), Vector()).ok());
  EXPECT_FALSE(LinearRegression::Fit(Matrix(2, 1), Vector(3)).ok());
}

// --------------------------- logistic regression ---------------------

TEST(LogisticRegressionTest, SeparatesTwoGaussians) {
  Rng rng(11);
  Matrix x(200, 2);
  std::vector<std::string> labels(200);
  for (size_t i = 0; i < 200; ++i) {
    bool pos = i % 2 == 0;
    x.At(i, 0) = rng.Gaussian(pos ? 2.0 : -2.0, 0.5);
    x.At(i, 1) = rng.Gaussian(pos ? -1.0 : 1.0, 0.5);
    labels[i] = pos ? "pos" : "neg";
  }
  auto model = LogisticRegression::Fit(x, labels);
  ASSERT_TRUE(model.ok());
  auto predictions = model->PredictAll(x);
  ASSERT_TRUE(predictions.ok());
  double acc = Accuracy(labels, *predictions).value();
  EXPECT_GT(acc, 0.97);
}

TEST(LogisticRegressionTest, MulticlassSeparation) {
  Rng rng(13);
  Matrix x(300, 2);
  std::vector<std::string> labels(300);
  const double centers[3][2] = {{0.0, 4.0}, {4.0, -4.0}, {-4.0, -4.0}};
  for (size_t i = 0; i < 300; ++i) {
    size_t c = i % 3;
    x.At(i, 0) = rng.Gaussian(centers[c][0], 0.6);
    x.At(i, 1) = rng.Gaussian(centers[c][1], 0.6);
    labels[i] = "class" + std::to_string(c);
  }
  auto model = LogisticRegression::Fit(x, labels);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->classes().size(), 3u);
  auto predictions = model->PredictAll(x);
  ASSERT_TRUE(predictions.ok());
  EXPECT_GT(Accuracy(labels, *predictions).value(), 0.95);
}

TEST(LogisticRegressionTest, ProbabilitiesSumToOne) {
  Rng rng(17);
  Matrix x(60, 2);
  std::vector<std::string> labels(60);
  for (size_t i = 0; i < 60; ++i) {
    x.At(i, 0) = rng.Gaussian(i % 2 ? 1.0 : -1.0, 1.0);
    x.At(i, 1) = rng.Gaussian();
    labels[i] = i % 2 ? "a" : "b";
  }
  auto model = LogisticRegression::Fit(x, labels);
  ASSERT_TRUE(model.ok());
  auto p = model->PredictProba(x.Row(0));
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->Sum(), 1.0, 1e-9);
  for (size_t k = 0; k < p->size(); ++k) EXPECT_GE((*p)[k], 0.0);
}

TEST(LogisticRegressionTest, SingleClassIsError) {
  Matrix x(3, 1, 1.0);
  std::vector<std::string> labels = {"same", "same", "same"};
  EXPECT_FALSE(LogisticRegression::Fit(x, labels).ok());
}

TEST(LogisticRegressionTest, ShapeMismatchIsError) {
  EXPECT_FALSE(
      LogisticRegression::Fit(Matrix(2, 1), {"a", "b", "c"}).ok());
}

// --------------------------- metrics ---------------------------------

TEST(MetricsTest, MaeAndRmseKnownValues) {
  Vector truth{1.0, 2.0, 3.0};
  Vector pred{2.0, 2.0, 1.0};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(truth, pred).value(), 1.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(truth, pred).value(),
                   std::sqrt(5.0 / 3.0));
}

TEST(MetricsTest, PerfectPredictionScoresZeroError) {
  Vector v{1.0, -2.0, 3.5};
  EXPECT_DOUBLE_EQ(MeanAbsoluteError(v, v).value(), 0.0);
  EXPECT_DOUBLE_EQ(RootMeanSquaredError(v, v).value(), 0.0);
}

TEST(MetricsTest, Accuracy) {
  std::vector<std::string> truth = {"a", "b", "a", "c"};
  std::vector<std::string> pred = {"a", "b", "c", "c"};
  EXPECT_DOUBLE_EQ(Accuracy(truth, pred).value(), 0.75);
}

TEST(MetricsTest, AbsoluteErrorsPerTuple) {
  auto errors = AbsoluteErrors(Vector{1.0, 5.0}, Vector{3.0, 4.0});
  ASSERT_TRUE(errors.ok());
  EXPECT_DOUBLE_EQ((*errors)[0], 2.0);
  EXPECT_DOUBLE_EQ((*errors)[1], 1.0);
}

TEST(MetricsTest, Errors) {
  EXPECT_FALSE(MeanAbsoluteError(Vector{1.0}, Vector{1.0, 2.0}).ok());
  EXPECT_FALSE(Accuracy({}, {}).ok());
}

// --------------------------- split -----------------------------------

TEST(SplitTest, PartitionsAllRows) {
  dataframe::DataFrame df;
  std::vector<double> values(100);
  for (size_t i = 0; i < 100; ++i) values[i] = static_cast<double>(i);
  ASSERT_TRUE(df.AddNumericColumn("v", std::move(values)).ok());
  Rng rng(19);
  auto split = TrainTestSplit(df, 0.8, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.num_rows(), 80u);
  EXPECT_EQ(split->test.num_rows(), 20u);

  // Union of values is exactly 0..99.
  std::vector<double> seen;
  for (size_t i = 0; i < 80; ++i) {
    seen.push_back(split->train.NumericValue(i, "v").value());
  }
  for (size_t i = 0; i < 20; ++i) {
    seen.push_back(split->test.NumericValue(i, "v").value());
  }
  std::sort(seen.begin(), seen.end());
  for (size_t i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(seen[i], i);
}

TEST(SplitTest, InvalidFractionIsError) {
  dataframe::DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("v", {1.0}).ok());
  Rng rng(1);
  EXPECT_FALSE(TrainTestSplit(df, 0.0, &rng).ok());
  EXPECT_FALSE(TrainTestSplit(df, 1.0, &rng).ok());
}

}  // namespace
}  // namespace ccs::ml
