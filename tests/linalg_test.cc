// Tests for linalg/: Vector and Matrix.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ccs::linalg {
namespace {

// --------------------------- Vector ----------------------------------

TEST(VectorTest, ConstructionAndAccess) {
  Vector v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  v[1] = 2.0;
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(VectorTest, InitializerList) {
  Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(VectorTest, DotProduct) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 4.0 - 10.0 + 18.0);
}

TEST(VectorTest, DotWithSelfIsNormSquared) {
  Vector v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.Dot(v), 25.0);
}

TEST(VectorTest, SumMeanVariance) {
  Vector v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.Sum(), 10.0);
  EXPECT_DOUBLE_EQ(v.Mean(), 2.5);
  EXPECT_DOUBLE_EQ(v.Variance(), 1.25);  // Population variance.
  EXPECT_DOUBLE_EQ(v.StdDev(), std::sqrt(1.25));
}

TEST(VectorTest, ConstantVectorHasZeroVariance) {
  Vector v(10, 7.0);
  EXPECT_DOUBLE_EQ(v.Variance(), 0.0);
}

TEST(VectorTest, MinMax) {
  Vector v{3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(v.Min(), -1.0);
  EXPECT_DOUBLE_EQ(v.Max(), 3.0);
}

TEST(VectorTest, AxpyAndScale) {
  Vector a{1.0, 2.0};
  Vector b{10.0, 20.0};
  a.Axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a[0], 6.0);
  EXPECT_DOUBLE_EQ(a[1], 12.0);
  a.Scale(2.0);
  EXPECT_DOUBLE_EQ(a[0], 12.0);
}

TEST(VectorTest, NormalizedHasUnitNorm) {
  Vector v{3.0, 4.0};
  Vector n = v.Normalized();
  EXPECT_NEAR(n.Norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(n[0], 0.6);
}

TEST(VectorTest, ArithmeticOperators) {
  Vector a{1.0, 2.0};
  Vector b{3.0, 5.0};
  Vector sum = a + b;
  Vector diff = b - a;
  Vector scaled = a * 3.0;
  EXPECT_DOUBLE_EQ(sum[1], 7.0);
  EXPECT_DOUBLE_EQ(diff[0], 2.0);
  EXPECT_DOUBLE_EQ(scaled[1], 6.0);
}

TEST(VectorTest, MaxAbsDiff) {
  Vector a{1.0, 2.0};
  Vector b{1.5, 1.0};
  EXPECT_DOUBLE_EQ(Vector::MaxAbsDiff(a, b), 1.0);
  EXPECT_TRUE(std::isinf(Vector::MaxAbsDiff(a, Vector{1.0})));
}

// --------------------------- Matrix ----------------------------------

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RowAndColExtraction) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Vector row = m.Row(1);
  Vector col = m.Col(2);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
  EXPECT_DOUBLE_EQ(col[0], 3.0);
  EXPECT_DOUBLE_EQ(col[1], 6.0);
}

TEST(MatrixTest, SetRow) {
  Matrix m(2, 2);
  m.SetRow(0, Vector{9.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
}

TEST(MatrixTest, IdentityMultiplicationIsNoop) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Matrix i = Matrix::Identity(2);
  EXPECT_TRUE(Matrix::AlmostEqual(m.Multiply(i), m, 1e-12));
  EXPECT_TRUE(Matrix::AlmostEqual(i.Multiply(m), m, 1e-12));
}

TEST(MatrixTest, MatrixMultiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, RectangularMultiplyShapes) {
  Matrix a(2, 3, 1.0);
  Matrix b(3, 4, 2.0);
  Matrix c = a.Multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_DOUBLE_EQ(c(0, 0), 6.0);
}

TEST(MatrixTest, MatrixVectorMultiply) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  Vector v{1.0, 1.0};
  Vector out = m.Multiply(v);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 7.0);
}

TEST(MatrixTest, TransposedTwiceIsIdentityOp) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(Matrix::AlmostEqual(t.Transposed(), m, 0.0));
}

TEST(MatrixTest, AddAndScale) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 4.0}};
  Matrix c = a.Add(b);
  EXPECT_DOUBLE_EQ(c(0, 1), 6.0);
  c.Scale(0.5);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
}

TEST(MatrixTest, AlmostEqualRespectsTolerance) {
  Matrix a{{1.0}};
  Matrix b{{1.0 + 1e-6}};
  EXPECT_TRUE(Matrix::AlmostEqual(a, b, 1e-5));
  EXPECT_FALSE(Matrix::AlmostEqual(a, b, 1e-7));
  EXPECT_FALSE(Matrix::AlmostEqual(a, Matrix(1, 2), 1.0));
}

TEST(MatrixTest, MaxAbs) {
  Matrix m{{1.0, -7.0}, {3.0, 2.0}};
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 7.0);
  EXPECT_DOUBLE_EQ(Matrix().MaxAbs(), 0.0);
}

TEST(MatrixTest, IsSymmetric) {
  Matrix sym{{2.0, 1.0}, {1.0, 3.0}};
  Matrix asym{{2.0, 1.0}, {0.0, 3.0}};
  EXPECT_TRUE(sym.IsSymmetric());
  EXPECT_FALSE(asym.IsSymmetric());
  EXPECT_FALSE(Matrix(2, 3).IsSymmetric());
}

TEST(MatrixTest, MultiplyAssociatesWithTranspose) {
  // (A B)^T == B^T A^T.
  Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  Matrix b{{7.0, 8.0, 9.0}, {1.0, 2.0, 3.0}};
  Matrix left = a.Multiply(b).Transposed();
  Matrix right = b.Transposed().Multiply(a.Transposed());
  EXPECT_TRUE(Matrix::AlmostEqual(left, right, 1e-12));
}

}  // namespace
}  // namespace ccs::linalg
