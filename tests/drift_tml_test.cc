// Tests for core/drift, core/tml, core/monitor: dataset-level drift
// quantification, the safety envelope, and streaming maintenance.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/drift.h"
#include "core/monitor.h"
#include "core/tml.h"

namespace ccs::core {
namespace {

using dataframe::DataFrame;
using linalg::Vector;

// y = x + noise, optionally shifted off-trend by `offset` on y.
DataFrame TrendFrame(size_t n, double offset, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = x[i] + offset + rng.Gaussian(0.0, 0.1);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

// ------------------------ drift quantifier ----------------------------

TEST(DriftQuantifierTest, SelfScoreIsNearZero) {
  ConformanceDriftQuantifier q;
  DataFrame reference = TrendFrame(500, 0.0, 1);
  ASSERT_TRUE(q.Fit(reference).ok());
  EXPECT_LT(q.Score(reference).value(), 0.01);
}

TEST(DriftQuantifierTest, HeldOutSameDistributionScoresLow) {
  ConformanceDriftQuantifier q;
  ASSERT_TRUE(q.Fit(TrendFrame(500, 0.0, 2)).ok());
  EXPECT_LT(q.Score(TrendFrame(500, 0.0, 3)).value(), 0.02);
}

TEST(DriftQuantifierTest, DriftIncreasesScoreMonotonically) {
  ConformanceDriftQuantifier q;
  ASSERT_TRUE(q.Fit(TrendFrame(500, 0.0, 4)).ok());
  double prev = -1.0;
  for (double offset : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    double score = q.Score(TrendFrame(300, offset, 5)).value();
    EXPECT_GE(score, prev - 0.005) << "offset " << offset;
    prev = score;
  }
  EXPECT_GT(q.Score(TrendFrame(300, 8.0, 6)).value(), 0.5);
}

TEST(DriftQuantifierTest, ScoreBeforeFitIsError) {
  ConformanceDriftQuantifier q;
  EXPECT_FALSE(q.Score(TrendFrame(10, 0.0, 7)).ok());
  EXPECT_FALSE(q.TupleViolations(TrendFrame(10, 0.0, 7)).ok());
}

TEST(DriftSeriesTest, FirstWindowIsReference) {
  std::vector<DataFrame> windows;
  for (double offset : {0.0, 0.5, 1.0, 2.0}) {
    windows.push_back(TrendFrame(300, offset, 8));
  }
  auto series = DriftSeries(windows);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 4u);
  EXPECT_LT((*series)[0], 0.01);
  EXPECT_LT((*series)[0], (*series)[3]);
}

TEST(NormalizeSeriesTest, MapsToUnitRange) {
  auto out = NormalizeSeries({2.0, 4.0, 3.0});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
}

TEST(NormalizeSeriesTest, ConstantSeriesMapsToZero) {
  auto out = NormalizeSeries({3.0, 3.0});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_TRUE(NormalizeSeries({}).empty());
}

// ------------------------ safety envelope -----------------------------

TEST(SafetyEnvelopeTest, ConformingTuplesAreTrusted) {
  DataFrame train = TrendFrame(500, 0.0, 9);
  auto envelope = SafetyEnvelope::Fit(train, {});
  ASSERT_TRUE(envelope.ok());
  DataFrame serving = TrendFrame(100, 0.0, 10);
  auto verdicts = envelope->AssessAll(serving);
  ASSERT_TRUE(verdicts.ok());
  size_t unsafe = 0;
  for (const auto& v : *verdicts) {
    if (v.unsafe) ++unsafe;
  }
  EXPECT_LT(unsafe, 5u);
}

TEST(SafetyEnvelopeTest, OffTrendTuplesAreUnsafe) {
  DataFrame train = TrendFrame(500, 0.0, 11);
  auto envelope = SafetyEnvelope::Fit(train, {});
  ASSERT_TRUE(envelope.ok());
  DataFrame serving = TrendFrame(100, 10.0, 12);
  EXPECT_GT(envelope->UnsafeFraction(serving).value(), 0.9);
}

TEST(SafetyEnvelopeTest, TargetAttributeIsExcluded) {
  DataFrame train = TrendFrame(200, 0.0, 13);
  auto envelope = SafetyEnvelope::Fit(train, {"y"});
  ASSERT_TRUE(envelope.ok());
  // The envelope must not reference y at all: a wild y is fine.
  DataFrame serving;
  ASSERT_TRUE(serving.AddNumericColumn("x", {0.0}).ok());
  ASSERT_TRUE(serving.AddNumericColumn("y", {1e9}).ok());
  auto verdict = envelope->Assess(serving, 0);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict->unsafe);
}

TEST(SafetyEnvelopeTest, TrustIsOneMinusViolation) {
  DataFrame train = TrendFrame(200, 0.0, 14);
  auto envelope = SafetyEnvelope::Fit(train, {});
  ASSERT_TRUE(envelope.ok());
  DataFrame serving = TrendFrame(10, 5.0, 15);
  auto verdict = envelope->Assess(serving, 0);
  ASSERT_TRUE(verdict.ok());
  EXPECT_NEAR(verdict->trust, 1.0 - verdict->violation, 1e-12);
}

TEST(SafetyEnvelopeTest, InvalidThresholdIsError) {
  DataFrame train = TrendFrame(50, 0.0, 16);
  EXPECT_FALSE(SafetyEnvelope::Fit(train, {}, -0.1).ok());
  EXPECT_FALSE(SafetyEnvelope::Fit(train, {}, 1.5).ok());
}

// --------------------- incremental synthesizer ------------------------

TEST(IncrementalSynthesizerTest, MatchesBatchSynthesis) {
  DataFrame df = TrendFrame(300, 0.0, 17);
  Synthesizer batch;
  auto batch_constraint = batch.SynthesizeSimple(df);
  ASSERT_TRUE(batch_constraint.ok());

  IncrementalSynthesizer incremental({"x", "y"});
  ASSERT_TRUE(incremental.ObserveAll(df).ok());
  auto inc_constraint = incremental.Synthesize();
  ASSERT_TRUE(inc_constraint.ok());

  ASSERT_EQ(batch_constraint->conjuncts().size(),
            inc_constraint->conjuncts().size());
  for (size_t k = 0; k < batch_constraint->conjuncts().size(); ++k) {
    EXPECT_NEAR(batch_constraint->conjuncts()[k].stddev(),
                inc_constraint->conjuncts()[k].stddev(), 1e-9);
  }
}

TEST(IncrementalSynthesizerTest, MergePartitionsEqualsWhole) {
  DataFrame df = TrendFrame(200, 0.0, 18);
  IncrementalSynthesizer whole({"x", "y"});
  IncrementalSynthesizer part1({"x", "y"});
  IncrementalSynthesizer part2({"x", "y"});
  ASSERT_TRUE(whole.ObserveAll(df).ok());
  ASSERT_TRUE(part1.ObserveAll(df.Slice(0, 100)).ok());
  ASSERT_TRUE(part2.ObserveAll(df.Slice(100, 200)).ok());
  ASSERT_TRUE(part1.Merge(part2).ok());
  EXPECT_EQ(part1.count(), whole.count());
  auto a = whole.Synthesize();
  auto b = part1.Synthesize();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->conjuncts()[0].stddev(), b->conjuncts()[0].stddev(), 1e-9);
}

TEST(IncrementalSynthesizerTest, MergeRejectsSchemaMismatch) {
  IncrementalSynthesizer a({"x"});
  IncrementalSynthesizer b({"y"});
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(IncrementalSynthesizerTest, ObserveSingleTuples) {
  IncrementalSynthesizer inc({"x", "y"});
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    double x = rng.Uniform(-2.0, 2.0);
    inc.Observe(Vector{x, 2.0 * x});
  }
  EXPECT_EQ(inc.count(), 100);
  auto constraint = inc.Synthesize();
  ASSERT_TRUE(constraint.ok());
  // The 2x-x trend must be captured: the off-trend probe violates.
  EXPECT_GT(constraint->ViolationAligned(Vector{1.0, -2.0}), 0.5);
}

// --------------------------- StreamMonitor ----------------------------

TEST(StreamMonitorTest, AlarmsOnDriftedWindowOnly) {
  DataFrame reference = TrendFrame(500, 0.0, 20);
  auto monitor = StreamMonitor::Create(reference, 0.1);
  ASSERT_TRUE(monitor.ok());

  auto ok_score = monitor->ObserveWindow(TrendFrame(200, 0.0, 21));
  ASSERT_TRUE(ok_score.ok());
  EXPECT_FALSE(ok_score->alarm);

  auto drift_score = monitor->ObserveWindow(TrendFrame(200, 6.0, 22));
  ASSERT_TRUE(drift_score.ok());
  EXPECT_TRUE(drift_score->alarm);

  ASSERT_EQ(monitor->history().size(), 2u);
  EXPECT_EQ(monitor->history()[1].window_index, 1u);
}

TEST(StreamMonitorTest, InvalidThresholdIsError) {
  DataFrame reference = TrendFrame(50, 0.0, 23);
  EXPECT_FALSE(StreamMonitor::Create(reference, -0.5).ok());
  EXPECT_FALSE(StreamMonitor::Create(reference, 2.0).ok());
}

}  // namespace
}  // namespace ccs::core
