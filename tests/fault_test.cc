// Tests for the deterministic fault-injection registry (common/fault.h):
// spec JSON round-trips, trigger semantics, shared hit ordinals, and the
// headline determinism contract — the same (seed, spec) injects at the
// same pipeline sites at 1 and 4 threads.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "dataframe/csv.h"
#include "dataframe/dataframe.h"
#include "stream/pipeline.h"

namespace ccs::common::fault {
namespace {

// Disarms around every test: the injector is process-global, and a spec
// leaked into the next test would inject faults it never armed.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { Injector::Global().Disarm(); }
  void TearDown() override { Injector::Global().Disarm(); }
};

FaultSpec SpecWith(FaultPoint point, uint64_t seed = 0) {
  FaultSpec spec;
  spec.seed = seed;
  spec.points.push_back(std::move(point));
  return spec;
}

TEST_F(FaultTest, DisarmedCheckIsOk) {
  EXPECT_FALSE(Injector::Global().armed());
  EXPECT_TRUE(Injector::Global().Check("stream.score.window").ok());
  EXPECT_EQ(Injector::Global().injected(), 0u);
}

TEST_F(FaultTest, OnceTriggerFiresOnExactlyThatHit) {
  FaultPoint p;
  p.point = "test.op";
  p.trigger = "once";
  p.at = 3;
  ASSERT_TRUE(Injector::Global().Arm(SpecWith(p)).ok());

  EXPECT_TRUE(Injector::Global().Check("test.op").ok());
  EXPECT_TRUE(Injector::Global().Check("test.op").ok());
  Status third = Injector::Global().Check("test.op");
  EXPECT_EQ(third.code(), StatusCode::kUnavailable) << third;
  EXPECT_TRUE(Injector::Global().Check("test.op").ok());
  EXPECT_EQ(Injector::Global().injected(), 1u);
  EXPECT_EQ(Injector::Global().hits("test.op"), 4u);
  // Unarmed points pass through without being counted.
  EXPECT_TRUE(Injector::Global().Check("test.other").ok());
  EXPECT_EQ(Injector::Global().hits("test.other"), 0u);
}

TEST_F(FaultTest, EveryTriggerFiresOnThePeriod) {
  FaultPoint p;
  p.point = "test.op";
  p.trigger = "every";
  p.every = 2;
  p.code = "internal";
  p.message = "boom";
  ASSERT_TRUE(Injector::Global().Arm(SpecWith(p)).ok());

  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    Status s = Injector::Global().Check("test.op");
    fired.push_back(!s.ok());
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kInternal);
      EXPECT_EQ(s.message(), "boom");
    }
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FaultTest, ProbabilityTriggerIsSeedDeterministic) {
  FaultPoint p;
  p.point = "test.op";
  p.trigger = "probability";
  p.probability = 0.5;

  auto pattern = [&](uint64_t seed) {
    CCS_CHECK(Injector::Global().Arm(SpecWith(p, seed)).ok());
    std::string bits;
    for (int i = 0; i < 64; ++i) {
      bits.push_back(Injector::Global().Check("test.op").ok() ? '0' : '1');
    }
    return bits;
  };
  std::string a = pattern(7);
  std::string b = pattern(7);
  std::string c = pattern(8);
  EXPECT_EQ(a, b);       // Same seed: identical decision sequence.
  EXPECT_NE(a, c);       // Different seed: a different (still fixed) one.
  EXPECT_NE(a.find('1'), std::string::npos);  // p=0.5 actually fires.
  EXPECT_NE(a.find('0'), std::string::npos);
}

TEST_F(FaultTest, EntriesOnOnePointShareTheHitOrdinal) {
  // A spec composing two triggers on the same point: both see the same
  // ordinal stream, so "once at=2" and "once at=4" fire on the 2nd and
  // 4th hit — not on independent counters.
  FaultSpec spec;
  FaultPoint a;
  a.point = "test.op";
  a.trigger = "once";
  a.at = 2;
  FaultPoint b = a;
  b.at = 4;
  b.code = "io-error";
  spec.points = {a, b};
  ASSERT_TRUE(Injector::Global().Arm(spec).ok());

  EXPECT_TRUE(Injector::Global().Check("test.op").ok());
  EXPECT_EQ(Injector::Global().Check("test.op").code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(Injector::Global().Check("test.op").ok());
  EXPECT_EQ(Injector::Global().Check("test.op").code(), StatusCode::kIoError);
  EXPECT_EQ(Injector::Global().injected(), 2u);
}

TEST_F(FaultTest, ArmRejectsMalformedSpecs) {
  FaultPoint p;
  p.point = "test.op";
  p.trigger = "sometimes";
  EXPECT_EQ(Injector::Global().Arm(SpecWith(p)).code(),
            StatusCode::kInvalidArgument);
  p.trigger = "every";  // every == 0.
  EXPECT_EQ(Injector::Global().Arm(SpecWith(p)).code(),
            StatusCode::kInvalidArgument);
  p.every = 5;
  p.action = "detonate";
  EXPECT_EQ(Injector::Global().Arm(SpecWith(p)).code(),
            StatusCode::kInvalidArgument);
  p.action = "error";
  p.code = "teapot";
  EXPECT_EQ(Injector::Global().Arm(SpecWith(p)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(Injector::Global().armed());
}

TEST_F(FaultTest, SpecJsonRoundTrips) {
  const std::string text =
      "{\"seed\": 7, \"points\": [\n"
      "  {\"point\": \"stream.score.window\", \"trigger\": \"once\", "
      "\"at\": 5},\n"
      "  {\"point\": \"stream.ingest.read\", \"trigger\": \"every\", "
      "\"every\": 100, \"code\": \"io-error\", \"message\": \"flaky disk\"},\n"
      "  {\"point\": \"stream.window.push\", \"trigger\": \"probability\", "
      "\"probability\": 0.25, \"action\": \"crash\"}\n"
      "]}";
  auto spec = ParseFaultSpecJson(text);
  ASSERT_TRUE(spec.ok()) << spec.status();
  ASSERT_EQ(spec->points.size(), 3u);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->points[0].at, 5u);
  EXPECT_EQ(spec->points[1].every, 100u);
  EXPECT_EQ(spec->points[1].message, "flaky disk");
  EXPECT_EQ(spec->points[2].action, "crash");

  // Serialize -> parse -> serialize is a fixed point.
  std::string serialized = FaultSpecToJson(*spec);
  auto reparsed = ParseFaultSpecJson(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(FaultSpecToJson(*reparsed), serialized);
}

TEST_F(FaultTest, SpecJsonRejectsUnknownKeysAndBadValues) {
  EXPECT_EQ(ParseFaultSpecJson("{\"sede\": 7}").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpecJson(
                "{\"points\": [{\"point\": \"p\", \"trigegr\": \"once\"}]}")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Structural validation happens at parse time too, not only at Arm.
  EXPECT_EQ(ParseFaultSpecJson(
                "{\"points\": [{\"point\": \"p\", \"trigger\": \"every\"}]}")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// ---- The determinism contract, end to end through the pipeline.

dataframe::DataFrame TrendFrame(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = x[i] + rng.Gaussian(0.0, 0.1);
  }
  dataframe::DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

TEST_F(FaultTest, InjectionSitesAreThreadCountInvariant) {
  // Same (seed, spec): the pipeline quarantines exactly the same window
  // ordinals — and commits bitwise-identical survivor scores — at 1 and
  // 4 scoring threads. This is the fault analog of the pipeline's
  // serial-equivalence contract.
  dataframe::DataFrame reference = TrendFrame(300, 41);
  std::ostringstream csv;
  CCS_CHECK(dataframe::WriteCsv(TrendFrame(900, 42), csv).ok());

  FaultPoint p;
  p.point = "stream.score.window";
  p.trigger = "probability";
  p.probability = 0.3;

  auto run = [&](size_t threads) {
    CCS_CHECK(Injector::Global().Arm(SpecWith(p, /*seed=*/9)).ok());
    stream::StreamPipelineOptions options;
    options.window_rows = 30;
    options.chunk_rows = 17;
    options.max_batch_windows = threads == 1 ? 2 : 5;  // Vary batching too.
    options.num_threads = threads;
    options.score_policy.mode = stream::FailureMode::kQuarantine;
    auto pipeline = stream::StreamPipeline::Create(reference, options);
    CCS_CHECK(pipeline.ok()) << pipeline.status().ToString();
    std::istringstream in(csv.str());
    auto result = pipeline->Run(in);
    CCS_CHECK(result.ok()) << result.status.ToString();
    Injector::Global().Disarm();
    struct Outcome {
      std::vector<size_t> quarantined;
      std::vector<core::WindowScore> history;
      size_t faults;
    } outcome;
    for (const auto& record : result->quarantine) {
      outcome.quarantined.push_back(record.index);
    }
    outcome.history = pipeline->history();
    outcome.faults = result->faults_injected;
    return outcome;
  };

  auto serial = run(1);
  auto threaded = run(4);
  EXPECT_GT(serial.faults, 0u);  // The spec actually fired.
  EXPECT_EQ(serial.faults, threaded.faults);
  EXPECT_EQ(serial.quarantined, threaded.quarantined);
  ASSERT_EQ(serial.history.size(), threaded.history.size());
  for (size_t i = 0; i < serial.history.size(); ++i) {
    EXPECT_EQ(serial.history[i].window_index, threaded.history[i].window_index);
    EXPECT_EQ(serial.history[i].drift, threaded.history[i].drift)
        << "window " << i;
    EXPECT_EQ(serial.history[i].alarm, threaded.history[i].alarm);
  }
}

}  // namespace
}  // namespace ccs::common::fault
