// Scenario gauntlet tests: catalogue coverage, byte-replayable
// rendering, bitwise trace determinism (reruns, 1 vs 4 threads, chunk
// sizing), spec JSON round-trips, and the checked-in golden alarm
// traces under tests/golden/ that pin every scenario's observable
// behavior across PRs (regenerate with
// `ccsynth gauntlet --update-golden tests/golden`).

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace ccs::scenario {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(CCS_GOLDEN_DIR) + "/" + name + ".trace";
}

// Reads a golden trace; empty optional-style "" means missing.
bool ReadGolden(const std::string& name, std::string* out) {
  std::ifstream in(GoldenPath(name));
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// ------------------------------ catalogue ------------------------------

TEST(ScenarioCatalogueTest, EnumeratesTheRequiredCoverage) {
  const std::vector<std::string>& names = CatalogueNames();
  EXPECT_GE(names.size(), 8u);
  std::set<std::string> set(names.begin(), names.end());
  // The acceptance floor: drift, schema evolution, cardinality blow-up,
  // NaN/Inf, duplicates, reordering.
  for (const char* required :
       {"abrupt-drift", "gradual-drift", "recurring-drift",
        "schema-add-column", "schema-drop-column", "cardinality-blowup",
        "nan-burst", "inf-burst", "duplicate-flood", "reordered",
        "short-stream", "empty-stream"}) {
    EXPECT_TRUE(set.count(required)) << "catalogue lost " << required;
  }
}

TEST(ScenarioCatalogueTest, EveryNameResolvesAndRenders) {
  for (const std::string& name : CatalogueNames()) {
    auto spec = CatalogueSpec(name);
    ASSERT_TRUE(spec.ok()) << name << ": " << spec.status();
    EXPECT_EQ(spec->name, name);
    auto rendered = Render(*spec, /*seed=*/1);
    ASSERT_TRUE(rendered.ok()) << name << ": " << rendered.status();
    EXPECT_GT(rendered->reference.num_rows(), 0u) << name;
  }
}

TEST(ScenarioCatalogueTest, UnknownNameIsNotFound) {
  auto spec = CatalogueSpec("no-such-scenario");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(ScenarioCatalogueTest, ScaleMultipliesGeometry) {
  auto base = CatalogueSpec("abrupt-drift", 1);
  auto scaled = CatalogueSpec("abrupt-drift", 3);
  ASSERT_TRUE(base.ok() && scaled.ok());
  EXPECT_EQ(scaled->stream_rows, 3 * base->stream_rows);
  EXPECT_EQ(scaled->window_rows, 3 * base->window_rows);
  ASSERT_EQ(scaled->stages.size(), base->stages.size());
  EXPECT_EQ(scaled->stages[0].begin_row, 3 * base->stages[0].begin_row);
}

// ------------------------------ rendering ------------------------------

TEST(ScenarioRenderTest, ByteReplayableAndSeedSensitive) {
  auto spec = CatalogueSpec("reordered");
  ASSERT_TRUE(spec.ok());
  auto a = Render(*spec, 42);
  auto b = Render(*spec, 42);
  auto c = Render(*spec, 43);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->stream.ToCsv(), b->stream.ToCsv());
  EXPECT_NE(a->stream.ToCsv(), c->stream.ToCsv());
  // Reference replays bitwise too.
  ASSERT_EQ(a->reference.num_rows(), b->reference.num_rows());
  for (size_t r = 0; r < a->reference.num_rows(); ++r) {
    EXPECT_EQ(a->reference.NumericValue(r, "x").value(),
              b->reference.NumericValue(r, "x").value());
  }
}

TEST(ScenarioRenderTest, AppendingAStageDoesNotReseedEarlierOnes) {
  auto base = CatalogueSpec("abrupt-drift");
  ASSERT_TRUE(base.ok());
  ScenarioSpec extended = *base;
  StageSpec extra;
  extra.kind = "reorder";
  extra.begin_row = extended.stream_rows;  // Empty range: no visible effect,
  extra.end_row = extended.stream_rows;    // but it owns a fresh seed stream.
  extended.stages.push_back(extra);
  auto a = Render(*base, 7);
  auto b = Render(extended, 7);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->stream.ToCsv(), b->stream.ToCsv());
}

TEST(ScenarioRenderTest, MissingStageColumnFailsTheRender) {
  auto spec = CatalogueSpec("abrupt-drift");
  ASSERT_TRUE(spec.ok());
  spec->stages[0].column = "no-such-column";
  auto rendered = Render(*spec, 1);
  ASSERT_FALSE(rendered.ok());
  EXPECT_EQ(rendered.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioRenderTest, UnknownGeneratorAndKindAreErrors) {
  ScenarioSpec spec;
  spec.generator = "no-such-generator";
  EXPECT_FALSE(Render(spec, 1).ok());
  spec.generator = "trend";
  StageSpec stage;
  stage.kind = "no-such-kind";
  spec.stages = {stage};
  EXPECT_FALSE(Render(spec, 1).ok());
  spec.generator = "evl:not-a-dataset";
  spec.stages.clear();
  EXPECT_FALSE(Render(spec, 1).ok());
}

TEST(ScenarioRenderTest, CsvQuotesHostileCells) {
  RawStream stream;
  stream.header = {"a", "b"};
  stream.rows = {{"plain", "with,comma"}, {"with\"quote", "with\nnewline"}};
  EXPECT_EQ(stream.ToCsv(),
            "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",\"with\nnewline\"\n");
}

// ------------------------------- traces --------------------------------

TEST(ScenarioTraceTest, ReplayIsBitwiseIdentical) {
  for (const char* name : {"abrupt-drift", "nan-burst", "cardinality-blowup"}) {
    auto spec = CatalogueSpec(name);
    ASSERT_TRUE(spec.ok());
    auto a = RunScenario(*spec, 1, 1);
    auto b = RunScenario(*spec, 1, 1);
    ASSERT_TRUE(a.ok() && b.ok()) << name;
    EXPECT_TRUE(TracesIdentical(*a, *b)) << name;
  }
}

TEST(ScenarioTraceTest, OneVsFourThreadsIsBitwiseIdentical) {
  // Covers a clean drift run, a refresh cadence, a mid-stream teardown,
  // and a degenerate empty stream — the determinism contract
  // (docs/architecture.md) at the whole-trace level.
  for (const char* name :
       {"abrupt-drift", "cardio-onset", "garbled-cell", "empty-stream"}) {
    auto spec = CatalogueSpec(name);
    ASSERT_TRUE(spec.ok());
    auto serial = RunScenario(*spec, 1, 1);
    auto threaded = RunScenario(*spec, 1, 4);
    ASSERT_TRUE(serial.ok() && threaded.ok()) << name;
    EXPECT_TRUE(TracesIdentical(*serial, *threaded))
        << name << "\n-- 1 thread --\n"
        << serial->ToString() << "-- 4 threads --\n"
        << threaded->ToString();
  }
}

TEST(ScenarioTraceTest, TeardownIsChunkSizeIndependent) {
  // The CsvChunkReader delivers every good row before surfacing a
  // malformed-row error, so the committed windows and the terminal
  // status cannot depend on where chunk boundaries fall.
  auto spec = CatalogueSpec("nan-burst");
  ASSERT_TRUE(spec.ok());
  ScenarioSpec small = *spec, big = *spec;
  small.chunk_rows = 7;
  big.chunk_rows = 512;
  auto a = RunScenario(small, 1, 1);
  auto b = RunScenario(big, 1, 1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->events.size(), b->events.size());
  EXPECT_EQ(a->terminal.ToString(), b->terminal.ToString());
  EXPECT_EQ(a->windows_scored, b->windows_scored);
  for (size_t i = 0; i < a->events.size(); ++i) {
    EXPECT_EQ(a->events[i].score, b->events[i].score) << i;
  }
}

TEST(ScenarioTraceTest, MalformedStreamsTearDownWithStructuredErrors) {
  struct Case {
    const char* name;
    const char* needle;  // Substring the structured error must carry.
  };
  for (const Case& c : {Case{"nan-burst", "column 'y'"},
                        Case{"garbled-cell", "column 'x'"},
                        Case{"schema-add-column", "fields, expected"},
                        Case{"schema-drop-column", "fields, expected"}}) {
    auto spec = CatalogueSpec(c.name);
    ASSERT_TRUE(spec.ok());
    auto trace = RunScenario(*spec, 1, 1);
    ASSERT_TRUE(trace.ok()) << c.name;
    EXPECT_EQ(trace->terminal.code(), StatusCode::kInvalidArgument) << c.name;
    EXPECT_NE(trace->terminal.message().find(c.needle), std::string::npos)
        << c.name << ": " << trace->terminal.message();
    EXPECT_NE(trace->terminal.message().find("line "), std::string::npos)
        << c.name << " should report the physical line";
    // The good prefix was scored before teardown.
    EXPECT_GT(trace->windows_scored, 0u) << c.name;
  }
}

TEST(ScenarioTraceTest, RefreshEventsLandAtTheCadence) {
  auto spec = CatalogueSpec("cardinality-blowup");
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->refresh_every, 4u);
  auto trace = RunScenario(*spec, 1, 1);
  ASSERT_TRUE(trace.ok());
  size_t refreshes = 0;
  for (const TraceEvent& e : trace->events) {
    if (e.kind != TraceEvent::Kind::kRefresh) continue;
    ++refreshes;
    EXPECT_EQ(e.window_index % 4, 0u);
  }
  EXPECT_EQ(refreshes, trace->refreshes);
  EXPECT_GT(refreshes, 0u);
}

// ---------------------------- golden traces ----------------------------

// Every catalogue scenario's alarm trace is pinned byte-for-byte. A
// mismatch here is trace drift: if intentional, regenerate via
//   ./build/ccsynth gauntlet --update-golden tests/golden
// and commit the diff (workflow: docs/scenarios.md).
TEST(ScenarioGoldenTest, CatalogueTracesMatchCheckedInGoldens) {
  for (const std::string& name : CatalogueNames()) {
    auto spec = CatalogueSpec(name);
    ASSERT_TRUE(spec.ok()) << name;
    auto trace = RunScenario(*spec, /*seed=*/1, /*num_threads=*/1);
    ASSERT_TRUE(trace.ok()) << name << ": " << trace.status();
    std::string golden;
    ASSERT_TRUE(ReadGolden(name, &golden))
        << "missing golden " << GoldenPath(name)
        << " — regenerate with: ccsynth gauntlet --update-golden tests/golden";
    EXPECT_EQ(trace->ToString(), golden)
        << name << ": trace drifted from " << GoldenPath(name)
        << " — if intended, regenerate with: ccsynth gauntlet "
           "--update-golden tests/golden";
  }
}

// ------------------------------ spec JSON ------------------------------

TEST(ScenarioJsonTest, RoundTripsExactly) {
  auto spec = CatalogueSpec("reordered");
  ASSERT_TRUE(spec.ok());
  std::string json = SpecToJson(*spec);
  auto parsed = ParseSpecJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << json;
  EXPECT_EQ(SpecToJson(*parsed), json);
  // And the round-tripped spec renders identically.
  auto a = Render(*spec, 5);
  auto b = Render(*parsed, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->stream.ToCsv(), b->stream.ToCsv());
}

TEST(ScenarioJsonTest, FuzzDrawsRoundTrip) {
  Rng rng(99);
  for (int i = 0; i < 20; ++i) {
    ScenarioSpec spec = RandomSpec(&rng);
    auto parsed = ParseSpecJson(SpecToJson(spec));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(SpecToJson(*parsed), SpecToJson(spec));
  }
}

TEST(ScenarioJsonTest, RejectsUnknownKeysAndGarbage) {
  EXPECT_FALSE(ParseSpecJson("{\"no_such_key\": 1}").ok());
  EXPECT_FALSE(ParseSpecJson("{\"stages\": [{\"bogus\": 1}]}").ok());
  EXPECT_FALSE(ParseSpecJson("not json at all").ok());
  EXPECT_FALSE(ParseSpecJson("{\"name\": \"x\"} trailing").ok());
  EXPECT_FALSE(ParseSpecJson("{\"stream_rows\": -5}").ok());
  auto ok = ParseSpecJson("{\"name\": \"x\", \"stream_rows\": 100}");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->stream_rows, 100u);
  EXPECT_EQ(ok->generator, "trend");  // Defaults survive.
}

}  // namespace
}  // namespace ccs::scenario
