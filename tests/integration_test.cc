// End-to-end integration tests: the paper's two case studies run through
// the full pipeline (generators -> synthesis -> scoring -> models).

#include <gtest/gtest.h>

#include "baselines/wpca.h"
#include "common/random.h"
#include "core/drift.h"
#include "core/serialize.h"
#include "core/tml.h"
#include "dataframe/csv.h"
#include "ml/linear_regression.h"
#include "ml/metrics.h"
#include "stats/correlation.h"
#include "synth/airlines.h"
#include "synth/evl.h"
#include "synth/har.h"

namespace ccs {
namespace {

using core::SafetyEnvelope;
using dataframe::DataFrame;

// §6.1 / Fig. 4 in miniature: violation and regression error must move
// together across the four airline splits.
TEST(IntegrationTest, AirlinesViolationTracksRegressionError) {
  Rng rng(1);
  auto bench = synth::MakeAirlinesBenchmark(3000, 800, &rng);
  ASSERT_TRUE(bench.ok());

  auto envelope = SafetyEnvelope::Fit(bench->train, {"delay"});
  ASSERT_TRUE(envelope.ok());

  // Train the delay regressor on all numeric covariates.
  auto covariate_names = bench->train.DropColumns({"delay"})->NumericNames();
  auto x_train = bench->train.NumericMatrixFor(covariate_names).value();
  auto y_train =
      bench->train.ColumnByName("delay").value()->ToVector();
  ml::LinearRegressionOptions options;
  options.l2_penalty = 1.0;
  auto model = ml::LinearRegression::Fit(x_train, y_train, options);
  ASSERT_TRUE(model.ok());

  auto evaluate = [&](const DataFrame& split) {
    auto x = split.NumericMatrixFor(covariate_names).value();
    auto y = split.ColumnByName("delay").value()->ToVector();
    double mae = ml::MeanAbsoluteError(y, model->PredictAll(x)).value();
    double violation =
        envelope->constraint().MeanViolation(split).value();
    return std::make_pair(violation, mae);
  };

  auto [v_day, mae_day] = evaluate(bench->daytime);
  auto [v_night, mae_night] = evaluate(bench->overnight);
  auto [v_mixed, mae_mixed] = evaluate(bench->mixed);

  // The Fig. 4 shape: overnight violates and errs far more than daytime;
  // mixed sits strictly between.
  EXPECT_LT(v_day, 0.05);
  EXPECT_GT(v_night, 10.0 * v_day + 0.05);
  EXPECT_GT(mae_night, 1.5 * mae_day);
  EXPECT_GT(v_mixed, v_day);
  EXPECT_LT(v_mixed, v_night);
  EXPECT_GT(mae_mixed, mae_day);
  EXPECT_LT(mae_mixed, mae_night);
}

// Fig. 5 in miniature: per-tuple violation correlates with per-tuple
// absolute regression error on the mixed split.
TEST(IntegrationTest, TupleViolationCorrelatesWithTupleError) {
  Rng rng(2);
  auto bench = synth::MakeAirlinesBenchmark(2000, 600, &rng);
  ASSERT_TRUE(bench.ok());
  auto envelope = SafetyEnvelope::Fit(bench->train, {"delay"});
  ASSERT_TRUE(envelope.ok());

  auto covariate_names = bench->train.DropColumns({"delay"})->NumericNames();
  auto x = bench->train.NumericMatrixFor(covariate_names).value();
  auto y = bench->train.ColumnByName("delay").value()->ToVector();
  ml::LinearRegressionOptions options;
  options.l2_penalty = 1.0;
  auto model = ml::LinearRegression::Fit(x, y, options);
  ASSERT_TRUE(model.ok());

  auto xm = bench->mixed.NumericMatrixFor(covariate_names).value();
  auto ym = bench->mixed.ColumnByName("delay").value()->ToVector();
  auto errors = ml::AbsoluteErrors(ym, model->PredictAll(xm)).value();
  auto assessments = envelope->AssessAll(bench->mixed).value();
  linalg::Vector violations(assessments.size());
  for (size_t i = 0; i < assessments.size(); ++i) {
    violations[i] = assessments[i].violation;
  }
  auto test = stats::PearsonTest(violations, errors).value();
  EXPECT_GT(test.pcc, 0.5);
  EXPECT_LT(test.p_value, 1e-6);
}

// §6.2 HAR in miniature: mixing mobile data into a sedentary-trained
// profile raises violation monotonically with the mixing fraction.
TEST(IntegrationTest, HarViolationGrowsWithMobileFraction) {
  Rng rng(3);
  auto persons = synth::HarPersons(5);
  auto sedentary =
      synth::GenerateHar(persons, synth::SedentaryActivities(), 60, &rng);
  auto mobile =
      synth::GenerateHar(persons, synth::MobileActivities(), 60, &rng);
  ASSERT_TRUE(sedentary.ok());
  ASSERT_TRUE(mobile.ok());

  core::ConformanceDriftQuantifier quantifier;
  ASSERT_TRUE(quantifier.Fit(*sedentary).ok());

  double prev = -1.0;
  for (double fraction : {0.0, 0.3, 0.6, 0.9}) {
    size_t total = 600;
    size_t n_mobile = static_cast<size_t>(fraction * total);
    auto mix = sedentary->Sample(total - n_mobile, &rng)
                   .Concat(mobile->Sample(n_mobile, &rng))
                   .value();
    double score = quantifier.Score(mix).value();
    EXPECT_GT(score, prev - 0.01) << "fraction " << fraction;
    prev = score;
  }
  EXPECT_GT(prev, 0.3);
}

// Fig. 6(c) in miniature: a person switching activities is local drift —
// CCSynth (disjunctive) must see it more than global W-PCA.
TEST(IntegrationTest, LocalActivitySwapSeenByDisjunctionsOnly) {
  Rng rng(4);
  auto persons = synth::HarPersons(4);
  // Reference: everyone does their own activity (p_i -> activity i).
  auto all = synth::AllActivities();
  DataFrame reference;
  for (size_t i = 0; i < persons.size(); ++i) {
    auto part =
        synth::GenerateHar({persons[i]}, {all[i % all.size()]}, 150, &rng);
    ASSERT_TRUE(part.ok());
    reference = reference.num_rows() == 0 ? *part
                                          : reference.Concat(*part).value();
  }
  // Drifted: persons 1 and 4 swapped activities (lying <-> walking). The
  // global pool of activities is unchanged — each activity cluster merely
  // carries a different (small) person offset — so the drift is local.
  DataFrame drifted;
  for (size_t i = 0; i < persons.size(); ++i) {
    size_t activity_index = i;
    if (i == 0) activity_index = 3;
    if (i == 3) activity_index = 0;
    auto part = synth::GenerateHar(
        {persons[i]}, {all[activity_index % all.size()]}, 150, &rng);
    ASSERT_TRUE(part.ok());
    drifted = drifted.num_rows() == 0 ? *part : drifted.Concat(*part).value();
  }

  baselines::ConformanceDetector cc;
  baselines::WeightedPca wpca;
  ASSERT_TRUE(cc.Fit(reference).ok());
  ASSERT_TRUE(wpca.Fit(reference).ok());

  double cc_gain = cc.Score(drifted).value() - cc.Score(reference).value();
  double wpca_gain =
      wpca.Score(drifted).value() - wpca.Score(reference).value();
  EXPECT_GT(cc_gain, wpca_gain + 0.05)
      << "disjunctive constraints must out-detect global W-PCA on local "
         "drift";
}

// Constraints survive a round trip to disk (CSV for data, text for the
// constraint) and keep scoring identically.
TEST(IntegrationTest, EndToEndPersistenceRoundTrip) {
  Rng rng(5);
  auto flights = synth::GenerateFlights(synth::FlightKind::kDaytime, 400,
                                        &rng);
  std::string csv_path = ::testing::TempDir() + "/flights.csv";
  ASSERT_TRUE(dataframe::WriteCsvFile(flights, csv_path).ok());
  auto loaded = dataframe::ReadCsvFile(csv_path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), flights.num_rows());

  core::Synthesizer synth;
  auto phi = synth.Synthesize(*loaded);
  ASSERT_TRUE(phi.ok());
  auto back = core::Deserialize(core::Serialize(*phi));
  ASSERT_TRUE(back.ok());

  auto probe = synth::GenerateFlights(synth::FlightKind::kOvernight, 50,
                                      &rng);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(phi->Violation(probe, i).value(),
                     back->Violation(probe, i).value());
  }
  std::remove(csv_path.c_str());
}

// EVL smoke: the conformance drift series starts near zero and ends
// higher for a monotone-translation dataset.
TEST(IntegrationTest, EvlTranslationDriftSeriesIsIncreasing) {
  Rng rng(6);
  auto stream = synth::GenerateEvlStream("2CDT", 8, 400, &rng);
  ASSERT_TRUE(stream.ok());
  auto series = core::DriftSeries(*stream);
  ASSERT_TRUE(series.ok());
  EXPECT_LT((*series)[0], 0.05);
  EXPECT_GT(series->back(), (*series)[0] + 0.2);
  // Roughly monotone: each step at least doesn't crash back to zero.
  for (size_t i = 2; i < series->size(); ++i) {
    EXPECT_GT((*series)[i], (*series)[0]);
  }
}

}  // namespace
}  // namespace ccs
