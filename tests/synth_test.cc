// Tests for synth/: the workload generators that substitute for the
// paper's external datasets.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "synth/airlines.h"
#include "synth/evl.h"
#include "synth/har.h"
#include "synth/led.h"
#include "synth/tabular.h"

namespace ccs::synth {
namespace {

// --------------------------- airlines ---------------------------------

TEST(AirlinesTest, SchemaAndSize) {
  Rng rng(1);
  auto df = GenerateFlights(FlightKind::kDaytime, 100, &rng);
  EXPECT_EQ(df.num_rows(), 100u);
  for (const char* col : {"dep_time", "arr_time", "duration", "distance",
                          "delay", "day", "day_of_week"}) {
    EXPECT_TRUE(df.schema().Contains(col)) << col;
  }
  EXPECT_TRUE(df.schema().Contains("month"));
  EXPECT_TRUE(df.schema().Contains("carrier"));
}

TEST(AirlinesTest, DaytimeSatisfiesScheduleInvariant) {
  Rng rng(2);
  auto df = GenerateFlights(FlightKind::kDaytime, 500, &rng);
  for (size_t i = 0; i < df.num_rows(); ++i) {
    double arr = df.NumericValue(i, "arr_time").value();
    double dep = df.NumericValue(i, "dep_time").value();
    double dur = df.NumericValue(i, "duration").value();
    EXPECT_GT(arr, dep) << "daytime flight must land after takeoff";
    EXPECT_LT(std::abs(arr - dep - dur), 20.0)
        << "arr - dep must track duration up to noise";
  }
}

TEST(AirlinesTest, OvernightBreaksScheduleInvariant) {
  Rng rng(3);
  auto df = GenerateFlights(FlightKind::kOvernight, 500, &rng);
  size_t wrapped = 0;
  for (size_t i = 0; i < df.num_rows(); ++i) {
    double arr = df.NumericValue(i, "arr_time").value();
    double dep = df.NumericValue(i, "dep_time").value();
    if (arr < dep) ++wrapped;
  }
  EXPECT_GT(wrapped, 450u) << "almost all overnight flights wrap midnight";
}

TEST(AirlinesTest, DurationTracksDistance) {
  Rng rng(4);
  auto df = GenerateFlights(FlightKind::kDaytime, 500, &rng);
  for (size_t i = 0; i < df.num_rows(); ++i) {
    double dur = df.NumericValue(i, "duration").value();
    double dist = df.NumericValue(i, "distance").value();
    EXPECT_LT(std::abs(dur - 0.12 * dist), 40.0);
  }
}

TEST(AirlinesTest, BenchmarkSplitsHaveRequestedSizes) {
  Rng rng(5);
  auto bench = MakeAirlinesBenchmark(1000, 400, &rng);
  ASSERT_TRUE(bench.ok());
  EXPECT_EQ(bench->train.num_rows(), 1000u);
  EXPECT_EQ(bench->daytime.num_rows(), 400u);
  EXPECT_EQ(bench->overnight.num_rows(), 400u);
  EXPECT_EQ(bench->mixed.num_rows(), 400u);
}

// --------------------------- HAR ---------------------------------------

TEST(HarTest, SchemaAndRowCount) {
  Rng rng(6);
  auto df = GenerateHar(HarPersons(3), SedentaryActivities(), 50, &rng);
  ASSERT_TRUE(df.ok());
  EXPECT_EQ(df->num_rows(), 3u * 3u * 50u);
  EXPECT_EQ(df->NumericNames().size(), 36u);
  EXPECT_TRUE(df->schema().Contains("person"));
  EXPECT_TRUE(df->schema().Contains("activity"));
}

TEST(HarTest, ActivityListsAreDisjoint) {
  auto sed = SedentaryActivities();
  auto mob = MobileActivities();
  std::set<std::string> all(sed.begin(), sed.end());
  for (const auto& a : mob) {
    EXPECT_FALSE(all.count(a)) << a;
  }
  EXPECT_EQ(AllActivities().size(), sed.size() + mob.size());
}

TEST(HarTest, MobileActivitiesHaveLargerSignal) {
  Rng rng(7);
  auto sed = GenerateHar(HarPersons(2), {"lying"}, 200, &rng);
  auto mob = GenerateHar(HarPersons(2), {"running"}, 200, &rng);
  ASSERT_TRUE(sed.ok());
  ASSERT_TRUE(mob.ok());
  double sed_energy = 0.0, mob_energy = 0.0;
  for (size_t i = 0; i < sed->num_rows(); ++i) {
    sed_energy += sed->NumericRow(i).Norm();
    mob_energy += mob->NumericRow(i).Norm();
  }
  EXPECT_GT(mob_energy, 2.0 * sed_energy);
}

TEST(HarTest, SignaturesAreStableAcrossDraws) {
  Rng rng1(8), rng2(9);  // Different noise seeds.
  auto a = GenerateHar({"p1"}, {"sitting"}, 300, &rng1);
  auto b = GenerateHar({"p1"}, {"sitting"}, 300, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Means of each sensor agree across draws (same signature).
  for (size_t j = 0; j < 36; j += 7) {
    std::string name = "s" + std::to_string(j);
    auto col_a = a->ColumnByName(name).value()->ToVector();
    auto col_b = b->ColumnByName(name).value()->ToVector();
    EXPECT_NEAR(col_a.Mean(), col_b.Mean(), 0.1) << name;
  }
}

TEST(HarTest, DifferentPersonsDiffer) {
  Rng rng(10);
  auto df = GenerateHar(HarPersons(2), {"standing"}, 300, &rng);
  ASSERT_TRUE(df.ok());
  auto parts = df->PartitionBy("person");
  ASSERT_TRUE(parts.ok());
  // At least one sensor's mean must differ noticeably between persons.
  double max_gap = 0.0;
  for (size_t j = 0; j < 36; ++j) {
    std::string name = "s" + std::to_string(j);
    double m1 = parts->at("p1").ColumnByName(name).value()->ToVector().Mean();
    double m2 = parts->at("p2").ColumnByName(name).value()->ToVector().Mean();
    max_gap = std::max(max_gap, std::abs(m1 - m2));
  }
  EXPECT_GT(max_gap, 0.2);
}

TEST(HarTest, EmptyInputsAreErrors) {
  Rng rng(11);
  EXPECT_FALSE(GenerateHar({}, {"lying"}, 10, &rng).ok());
  EXPECT_FALSE(GenerateHar({"p1"}, {}, 10, &rng).ok());
  EXPECT_FALSE(GenerateHar({"p1"}, {"lying"}, 0, &rng).ok());
}

// --------------------------- EVL ---------------------------------------

TEST(EvlTest, AllSixteenDatasetsRegistered) {
  EXPECT_EQ(EvlDatasetNames().size(), 16u);
  for (const auto& name : EvlDatasetNames()) {
    EXPECT_TRUE(IsEvlDataset(name)) << name;
  }
  EXPECT_FALSE(IsEvlDataset("NOT-A-DATASET"));
}

TEST(EvlTest, WindowShapes) {
  Rng rng(12);
  for (const auto& name : EvlDatasetNames()) {
    auto window = GenerateEvlWindow(name, 0.0, 60, &rng);
    ASSERT_TRUE(window.ok()) << name;
    EXPECT_EQ(window->num_rows(), 60u) << name;
    EXPECT_TRUE(window->schema().Contains("class")) << name;
    EXPECT_GE(window->NumericNames().size(), 2u) << name;
  }
}

TEST(EvlTest, DimensionalityVariants) {
  Rng rng(13);
  EXPECT_EQ(GenerateEvlWindow("UG-2C-2D", 0.0, 10, &rng)->NumericNames().size(),
            2u);
  EXPECT_EQ(GenerateEvlWindow("UG-2C-3D", 0.0, 10, &rng)->NumericNames().size(),
            3u);
  EXPECT_EQ(GenerateEvlWindow("UG-2C-5D", 0.0, 10, &rng)->NumericNames().size(),
            5u);
}

TEST(EvlTest, TranslationDatasetActuallyMoves) {
  Rng rng(14);
  auto start = GenerateEvlWindow("1CDT", 0.0, 400, &rng);
  auto end = GenerateEvlWindow("1CDT", 1.0, 400, &rng);
  ASSERT_TRUE(start.ok());
  ASSERT_TRUE(end.ok());
  auto c2_start = start->Filter([&](size_t i) {
    return start->CategoricalValue(i, "class").value() == "c2";
  });
  auto c2_end = end->Filter([&](size_t i) {
    return end->CategoricalValue(i, "class").value() == "c2";
  });
  double mean_start = c2_start.ColumnByName("x0").value()->ToVector().Mean();
  double mean_end = c2_end.ColumnByName("x0").value()->ToVector().Mean();
  EXPECT_GT(mean_end - mean_start, 4.0);
}

TEST(EvlTest, RotationDatasetReturnsToStart) {
  Rng rng(15);
  auto t0 = GenerateEvlWindow("4CR", 0.0, 800, &rng);
  auto t1 = GenerateEvlWindow("4CR", 1.0, 800, &rng);
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  // After a full rotation every class is back at its starting position.
  for (const char* cls : {"c1", "c3"}) {
    auto f0 = t0->Filter([&](size_t i) {
      return t0->CategoricalValue(i, "class").value() == cls;
    });
    auto f1 = t1->Filter([&](size_t i) {
      return t1->CategoricalValue(i, "class").value() == cls;
    });
    EXPECT_NEAR(f0.ColumnByName("x0").value()->ToVector().Mean(),
                f1.ColumnByName("x0").value()->ToVector().Mean(), 0.3)
        << cls;
  }
}

TEST(EvlTest, StreamHasRequestedWindows) {
  Rng rng(16);
  auto stream = GenerateEvlStream("2CDT", 12, 50, &rng);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 12u);
  for (const auto& w : *stream) EXPECT_EQ(w.num_rows(), 50u);
}

TEST(EvlTest, Errors) {
  Rng rng(17);
  EXPECT_FALSE(GenerateEvlWindow("bogus", 0.0, 10, &rng).ok());
  EXPECT_FALSE(GenerateEvlWindow("1CDT", 1.5, 10, &rng).ok());
  EXPECT_FALSE(GenerateEvlStream("1CDT", 1, 10, &rng).ok());
}

// --------------------------- LED ---------------------------------------

TEST(LedTest, SchemaAndWindowCount) {
  Rng rng(18);
  auto stream = GenerateLedStream(6, 100, DefaultLedSchedule(), &rng);
  ASSERT_TRUE(stream.ok());
  EXPECT_EQ(stream->size(), 6u);
  const auto& w = (*stream)[0];
  EXPECT_EQ(w.num_rows(), 100u);
  EXPECT_TRUE(w.schema().Contains("led1"));
  EXPECT_TRUE(w.schema().Contains("led7"));
  EXPECT_TRUE(w.schema().Contains("irr17"));
  EXPECT_TRUE(w.schema().Contains("digit"));
}

TEST(LedTest, ValuesAreBinary) {
  Rng rng(19);
  auto stream = GenerateLedStream(2, 200, {}, &rng);
  ASSERT_TRUE(stream.ok());
  for (const auto& name : (*stream)[0].NumericNames()) {
    auto col = (*stream)[0].ColumnByName(name).value()->ToVector();
    for (double v : col.data()) {
      EXPECT_TRUE(v == 0.0 || v == 1.0) << name;
    }
  }
}

TEST(LedTest, MalfunctioningSegmentIsStuckAtZero) {
  Rng rng(20);
  std::vector<LedDriftPhase> schedule = {{1, 2, {4, 5}}};
  auto stream = GenerateLedStream(2, 300, schedule, &rng);
  ASSERT_TRUE(stream.ok());
  // Window 0: led4 fires for many digits. Window 1: always 0.
  auto w0_led4 = (*stream)[0].ColumnByName("led4").value()->ToVector();
  auto w1_led4 = (*stream)[1].ColumnByName("led4").value()->ToVector();
  EXPECT_GT(w0_led4.Sum(), 50.0);
  EXPECT_DOUBLE_EQ(w1_led4.Sum(), 0.0);
}

TEST(LedTest, DigitDistributionCoversAll) {
  Rng rng(21);
  auto stream = GenerateLedStream(1, 500, {}, &rng);
  ASSERT_TRUE(stream.ok());
  auto digits = (*stream)[0].ColumnByName("digit").value()->DistinctValues();
  EXPECT_EQ(digits.size(), 10u);
}

// --------------------------- tabular ------------------------------------

TEST(TabularTest, CardioDiseaseElevatesBloodPressure) {
  Rng rng(22);
  auto healthy = GenerateCardio(800, false, &rng);
  auto sick = GenerateCardio(800, true, &rng);
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(sick.ok());
  double h = healthy->ColumnByName("ap_hi").value()->ToVector().Mean();
  double s = sick->ColumnByName("ap_hi").value()->ToVector().Mean();
  EXPECT_GT(s - h, 15.0);
}

TEST(TabularTest, MobileRamDominatesPriceGap) {
  Rng rng(23);
  auto cheap = GenerateMobile(800, false, &rng);
  auto pricey = GenerateMobile(800, true, &rng);
  ASSERT_TRUE(cheap.ok());
  ASSERT_TRUE(pricey.ok());
  // Standardized gap of RAM exceeds that of any other attribute.
  double best_other = 0.0, ram_gap = 0.0;
  for (const auto& name : cheap->NumericNames()) {
    auto a = cheap->ColumnByName(name).value()->ToVector();
    auto b = pricey->ColumnByName(name).value()->ToVector();
    double pooled_sd = (a.StdDev() + b.StdDev()) / 2.0 + 1e-9;
    double gap = std::abs(b.Mean() - a.Mean()) / pooled_sd;
    if (name == "ram") {
      ram_gap = gap;
    } else {
      best_other = std::max(best_other, gap);
    }
  }
  EXPECT_GT(ram_gap, best_other);
}

TEST(TabularTest, HousePriceShiftIsHolistic) {
  Rng rng(24);
  auto modest = GenerateHouse(800, false, &rng);
  auto fancy = GenerateHouse(800, true, &rng);
  ASSERT_TRUE(modest.ok());
  ASSERT_TRUE(fancy.ok());
  // Many attributes shift by a noticeable standardized amount.
  size_t shifted = 0;
  for (const auto& name : modest->NumericNames()) {
    auto a = modest->ColumnByName(name).value()->ToVector();
    auto b = fancy->ColumnByName(name).value()->ToVector();
    double pooled_sd = (a.StdDev() + b.StdDev()) / 2.0 + 1e-9;
    if (std::abs(b.Mean() - a.Mean()) / pooled_sd > 0.5) ++shifted;
  }
  EXPECT_GE(shifted, 8u);
}

TEST(TabularTest, ZeroRowsIsError) {
  Rng rng(25);
  EXPECT_FALSE(GenerateCardio(0, false, &rng).ok());
  EXPECT_FALSE(GenerateMobile(0, false, &rng).ok());
  EXPECT_FALSE(GenerateHouse(0, false, &rng).ok());
}

}  // namespace
}  // namespace ccs::synth
