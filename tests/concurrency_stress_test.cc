// Race-provoking stress tests for the concurrency layer, written for
// the ThreadSanitizer CI job (TSAN_OPTIONS=halt_on_error=1): heavy
// multi-producer/multi-consumer BoundedQueue churn with randomized
// close/push interleavings, many ParallelFor/ParallelForEach dispatches
// racing over the shared pool, concurrent StreamMonitor history readers
// during a pipeline run, and pipeline teardown mid-stream. The
// assertions are deliberately loose (conservation, termination) — the
// point is to hand TSan as many real interleavings of the lock/unlock/
// notify edges as a few seconds can buy, not to pin exact outcomes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/monitor.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/checkpoint.h"
#include "stream/pipeline.h"

namespace ccs {
namespace {

using common::BoundedQueue;
using dataframe::DataFrame;

// ---------------------------------------------------------- BoundedQueue

TEST(BoundedQueueStressTest, MpmcChurnConservesElements) {
  // 4 producers x 4 consumers over a tiny queue: every element pushed
  // successfully is popped exactly once, none are invented, and both
  // sides terminate once the producers close.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> q(2);
  std::atomic<int> live_producers{kProducers};
  std::atomic<int> pushed{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.Push(p * kPerProducer + i)) pushed.fetch_add(1);
      }
      if (live_producers.fetch_sub(1) == 1) q.Close();
    });
  }

  std::vector<std::vector<int>> per_consumer(kConsumers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      while (std::optional<int> v = q.Pop()) per_consumer[c].push_back(*v);
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  std::map<int, int> seen;
  for (const auto& popped : per_consumer) {
    for (int v : popped) ++seen[v];
  }
  int total = 0;
  for (const auto& [value, count] : seen) {
    EXPECT_EQ(count, 1) << "duplicate delivery of " << value;
    total += count;
  }
  EXPECT_EQ(total, pushed.load());
  EXPECT_EQ(total, kProducers * kPerProducer);  // No close raced the pushes.
  EXPECT_LE(q.peak_depth(), 2u);
}

TEST(BoundedQueueStressTest, RandomizedCloseInterleavings) {
  // Many short-lived queues, each torn down by a closer thread at a
  // randomized point while producers push and consumers drain. Checks
  // conservation (delivered <= accepted, no duplicates) and that every
  // thread terminates whatever the interleaving.
  Rng rng(/*seed=*/2026);
  for (int round = 0; round < 200; ++round) {
    BoundedQueue<int> q(1 + round % 3);
    const int per_producer = 1 + static_cast<int>(rng.UniformInt(0, 40));
    const int spin = static_cast<int>(rng.UniformInt(0, 500));

    std::atomic<int> accepted{0};
    std::thread producer_a([&] {
      for (int i = 0; i < per_producer; ++i) {
        if (!q.Push(i)) return;  // Closed under us: stop pushing.
        accepted.fetch_add(1);
      }
    });
    std::thread producer_b([&] {
      for (int i = 0; i < per_producer; ++i) {
        if (!q.Push(per_producer + i)) return;
        accepted.fetch_add(1);
      }
    });
    std::thread closer([&] {
      for (volatile int s = 0; s < spin; ++s) {
      }
      q.Close();
    });

    std::map<int, int> seen;
    std::thread consumer([&] {
      while (std::optional<int> v = q.Pop()) ++seen[*v];
    });

    producer_a.join();
    producer_b.join();
    closer.join();
    consumer.join();

    int delivered = 0;
    for (const auto& [value, count] : seen) {
      EXPECT_EQ(count, 1) << "duplicate delivery of " << value;
      delivered += count;
    }
    // Pop drains whatever was buffered at close; an element accepted by
    // Push is either delivered or was still buffered when the consumer
    // saw end-of-stream — never duplicated, never invented.
    EXPECT_LE(delivered, accepted.load());
    EXPECT_TRUE(q.closed());
  }
}

// ------------------------------------------------------------- parallel

TEST(ParallelStressTest, ConcurrentParallelForEachPools) {
  // Several outer threads dispatch ParallelForEach over the shared pool
  // at once: every index of every dispatch must run exactly once.
  constexpr int kOuter = 6;
  constexpr size_t kIndices = 4096;
  std::vector<std::thread> outers;
  std::vector<std::vector<std::atomic<int>>> hits(kOuter);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kIndices);
    for (auto& cell : h) cell.store(0);
  }
  for (int o = 0; o < kOuter; ++o) {
    outers.emplace_back([&, o] {
      common::ParallelForEach(
          kIndices, [&, o](size_t i) { hits[o][i].fetch_add(1); },
          /*num_threads=*/4);
    });
  }
  for (auto& t : outers) t.join();
  for (int o = 0; o < kOuter; ++o) {
    for (size_t i = 0; i < kIndices; ++i) {
      ASSERT_EQ(hits[o][i].load(), 1) << "dispatch " << o << " index " << i;
    }
  }
}

TEST(ParallelStressTest, ConcurrentParallelForChunks) {
  // Same for the chunked entry point, with small chunks to force many
  // claim/complete handshakes through the pool.
  constexpr int kOuter = 4;
  constexpr size_t kIndices = 1 << 15;
  std::vector<std::atomic<int>> hits(kIndices);
  for (auto& cell : hits) cell.store(0);
  std::vector<std::thread> outers;
  for (int o = 0; o < kOuter; ++o) {
    outers.emplace_back([&] {
      common::ParallelFor(
          kIndices,
          [&](size_t begin, size_t end) {
            for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
          },
          common::ParallelOptions{/*num_threads=*/4, /*min_chunk=*/64});
    });
  }
  for (auto& t : outers) t.join();
  for (size_t i = 0; i < kIndices; ++i) {
    ASSERT_EQ(hits[i].load(), kOuter) << "index " << i;
  }
}

// ------------------------------------------------------------- pipeline

// y = x + noise CSV with `n` rows; breaks the trend from row
// `drift_from` when offset != 0.
std::string TrendCsv(size_t n, uint64_t seed, double offset = 0.0,
                     size_t drift_from = 0) {
  Rng rng(seed);
  std::ostringstream out;
  out << "x,y\n";
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform(-5.0, 5.0);
    double y = x + (i >= drift_from ? offset : 0.0) + rng.Gaussian(0.0, 0.1);
    out << x << ',' << y << '\n';
  }
  return out.str();
}

DataFrame ReferenceFrame(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = x[i] + rng.Gaussian(0.0, 0.1);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  return df;
}

TEST(PipelineStressTest, ConcurrentHistoryReadersDuringRun) {
  // Reader threads poll the monitor's mutex-guarded history while the
  // pipeline commits scores and refreshes the profile — the serve-
  // daemon access pattern the StreamMonitor lock exists for.
  DataFrame reference = ReferenceFrame(400, /*seed=*/11);
  stream::StreamPipelineOptions options;
  options.window_rows = 32;
  options.chunk_rows = 64;
  options.queue_capacity = 2;
  options.refresh_every = 4;
  options.num_threads = 4;
  auto pipeline = stream::StreamPipeline::Create(reference, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  std::atomic<bool> done{false};
  std::atomic<size_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      size_t last = 0;
      while (!done.load()) {
        std::vector<core::WindowScore> snapshot = pipeline->history();
        ASSERT_GE(snapshot.size(), last);  // History only grows.
        for (size_t i = 0; i < snapshot.size(); ++i) {
          ASSERT_EQ(snapshot[i].window_index, i);  // Arrival order.
        }
        last = snapshot.size();
        reads.fetch_add(1);
      }
    });
  }

  std::istringstream in(TrendCsv(4000, /*seed=*/12));
  auto stats = pipeline->Run(in);
  done.store(true);
  for (auto& t : readers) t.join();
  ASSERT_TRUE(stats.ok()) << stats.status.ToString();
  EXPECT_EQ(stats->windows_scored, 4000u / 32u);
  EXPECT_GT(reads.load(), 0u);
}

TEST(PipelineStressTest, TeardownMidStreamOnIngestError) {
  // A malformed cell mid-stream fails ingest while windowing and
  // scoring are busy: the error must cancel both queues, unblock every
  // stage, and surface as Run's status — with no thread left behind for
  // TSan to flag at process exit.
  DataFrame reference = ReferenceFrame(200, /*seed=*/21);
  for (int round = 0; round < 10; ++round) {
    stream::StreamPipelineOptions options;
    options.window_rows = 16;
    options.chunk_rows = 8;
    options.queue_capacity = 1;  // Maximize backpressure blocking.
    options.num_threads = 2;
    auto pipeline = stream::StreamPipeline::Create(reference, options);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

    std::string csv = TrendCsv(600, /*seed=*/static_cast<uint64_t>(round));
    // Corrupt a cell at a round-dependent depth so the failure lands in
    // a different backpressure state each time.
    size_t cut = csv.find('\n', csv.size() / 2 + round * 17);
    ASSERT_NE(cut, std::string::npos);
    csv = csv.substr(0, cut) + "\nnot-a-number,boom\n" + csv.substr(cut + 1);

    std::istringstream in(csv);
    auto stats = pipeline->Run(in);
    EXPECT_FALSE(stats.ok());  // The parse error must reach the caller.
  }
}

TEST(PipelineStressTest, TinyQueuesManyThreadsStayDeterministic) {
  // Maximum stage contention (capacity-1 queues, single-row chunks)
  // must not change a single committed bit relative to a roomy run.
  DataFrame reference = ReferenceFrame(300, /*seed=*/31);
  std::string csv = TrendCsv(900, /*seed=*/32, /*offset=*/4.0,
                             /*drift_from=*/450);

  auto run = [&](size_t queue_capacity, size_t chunk_rows) {
    stream::StreamPipelineOptions options;
    options.window_rows = 30;
    options.chunk_rows = chunk_rows;
    options.queue_capacity = queue_capacity;
    options.refresh_every = 5;
    options.num_threads = 4;
    auto pipeline = stream::StreamPipeline::Create(reference, options);
    CCS_CHECK(pipeline.ok()) << pipeline.status().ToString();
    std::istringstream in(csv);
    auto stats = pipeline->Run(in);
    CCS_CHECK(stats.ok()) << stats.status.ToString();
    return pipeline->history();
  };

  std::vector<core::WindowScore> contended = run(1, 1);
  std::vector<core::WindowScore> roomy = run(8, 128);
  ASSERT_EQ(contended.size(), roomy.size());
  for (size_t i = 0; i < contended.size(); ++i) {
    EXPECT_EQ(contended[i].window_index, roomy[i].window_index);
    EXPECT_EQ(contended[i].drift, roomy[i].drift) << "window " << i;
    EXPECT_EQ(contended[i].alarm, roomy[i].alarm);
  }
}

TEST(PipelineStressTest, StopWhileRetrying) {
  // The graceful-stop flag is raised from another thread while the
  // scoring stage is inside supervised retry/quarantine cycles driven
  // by an armed probability fault — the shutdown edge has to compose
  // with the supervisor's retry loop, not just with happy-path scoring.
  // Loose assertions: every round terminates and the counters cohere.
  DataFrame reference = ReferenceFrame(200, /*seed=*/41);
  std::string csv = TrendCsv(3000, /*seed=*/42);
  for (int round = 0; round < 6; ++round) {
    common::fault::FaultSpec spec;
    spec.seed = static_cast<uint64_t>(round);
    common::fault::FaultPoint p;
    p.point = "stream.score.window";
    p.trigger = "probability";
    p.probability = 0.4;
    spec.points.push_back(p);
    ASSERT_TRUE(common::fault::Injector::Global().Arm(spec).ok());

    stream::StreamPipelineOptions options;
    options.window_rows = 20;
    options.chunk_rows = 16;
    options.queue_capacity = 1;
    options.num_threads = 2;
    auto policy = stream::FailurePolicy::Parse("retry:2+quarantine");
    ASSERT_TRUE(policy.ok());
    options.score_policy = *policy;
    std::atomic<bool> stop{false};
    options.stop = &stop;
    auto pipeline = stream::StreamPipeline::Create(reference, options);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

    std::thread stopper([&, round] {
      for (volatile int s = 0; s < 3000 * (round + 1); ++s) {
      }
      stop.store(true);
    });
    std::istringstream in(csv);
    auto result = pipeline->Run(in);
    stopper.join();
    common::fault::Injector::Global().Disarm();
    ASSERT_TRUE(result.ok()) << result.status.ToString();
    // Quarantined + committed windows account for everything consumed.
    EXPECT_EQ(result->windows_scored, pipeline->history().size());
    EXPECT_GE(result->retries, result->windows_quarantined);
  }
}

TEST(PipelineStressTest, CheckpointEveryWindowWithConcurrentReaders) {
  // Checkpoint at every consumed window while reader threads poll the
  // checkpoint file and the score history: the atomic tmp+rename write
  // must never expose a torn file (every read parses or is NotFound),
  // and progress in the file only moves forward.
  DataFrame reference = ReferenceFrame(200, /*seed=*/51);
  const std::string path =
      ::testing::TempDir() + "/ccs_stress_checkpoint.ck";
  std::remove(path.c_str());

  stream::StreamPipelineOptions options;
  options.window_rows = 25;
  options.chunk_rows = 10;
  options.queue_capacity = 2;
  options.num_threads = 2;
  options.refresh_every = 3;
  options.checkpoint_path = path;
  options.checkpoint_every = 1;
  auto pipeline = stream::StreamPipeline::Create(reference, options);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      size_t last_windows = 0;
      while (!done.load()) {
        auto data = stream::ReadCheckpointFile(path);
        if (!data.ok()) {
          ASSERT_EQ(data.status().code(), StatusCode::kNotFound)
              << data.status().ToString();
          continue;
        }
        ASSERT_GE(data->windows_committed, last_windows);
        last_windows = data->windows_committed;
        ASSERT_EQ(data->rows_consumed, data->windows_consumed * 25);
      }
    });
  }

  std::istringstream in(TrendCsv(2500, /*seed=*/52));
  auto result = pipeline->Run(in);
  done.store(true);
  for (auto& t : readers) t.join();
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  EXPECT_EQ(result->windows_scored, 100u);
  // The cadence is checked at batch-commit boundaries, so the write
  // count tracks batches (nondeterministic), not windows.
  EXPECT_GT(result->checkpoints_written, 0u);
  EXPECT_LE(result->checkpoints_written, 100u);
  auto final_data = stream::ReadCheckpointFile(path);
  ASSERT_TRUE(final_data.ok()) << final_data.status();
  EXPECT_EQ(final_data->windows_committed, 100u);
  std::remove(path.c_str());
}

// -------------------------------------------------------- observability

TEST(ObsStressTest, RegistryCountersAndHistogramsUnderChurn) {
  // Writer threads hammer one striped counter and one histogram looked
  // up through the global registry (exercising the interning path from
  // every thread) while a reader loops value()/Snapshot()/ToJson().
  // Exact totals must survive: striping shards contention, not counts.
  constexpr int kWriters = 6;
  constexpr int kPerWriter = 20000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      obs::Counter* c = obs::Registry::Global().GetCounter("stress.counter");
      obs::Histogram* h =
          obs::Registry::Global().GetHistogram("stress.hist", {1.0, 10.0, 100.0});
      for (int i = 0; i < kPerWriter; ++i) {
        c->Increment();
        h->Observe(static_cast<double>(i % 128));
      }
    });
  }
  std::thread reader([&] {
    obs::Counter* c = obs::Registry::Global().GetCounter("stress.counter");
    obs::Histogram* h = obs::Registry::Global().GetHistogram("stress.hist");
    uint64_t last = 0;
    while (!done.load()) {
      uint64_t now = c->value();
      ASSERT_GE(now, last);  // Counters only grow while writers run.
      last = now;
      obs::HistogramSnapshot snap = h->Snapshot();
      ASSERT_LE(snap.total_count, static_cast<uint64_t>(kWriters) * kPerWriter);
      std::string json = obs::Registry::Global().ToJson();
      ASSERT_FALSE(json.empty());
    }
  });
  for (auto& t : writers) t.join();
  done.store(true);
  reader.join();

  obs::Registry& reg = obs::Registry::Global();
  EXPECT_EQ(reg.GetCounter("stress.counter")->value(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  obs::HistogramSnapshot snap = reg.GetHistogram("stress.hist")->Snapshot();
  EXPECT_EQ(snap.total_count, static_cast<uint64_t>(kWriters) * kPerWriter);
}

TEST(ObsStressTest, RegistryInterningRaces) {
  // Many threads intern overlapping metric names at once; every thread
  // must get the same pointer for the same name, whichever thread won
  // the insertion race.
  constexpr int kThreads = 8;
  constexpr int kNames = 16;
  std::vector<std::vector<obs::Counter*>> seen(kThreads,
                                               std::vector<obs::Counter*>(kNames));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int n = 0; n < kNames; ++n) {
        seen[t][n] = obs::Registry::Global().GetCounter(
            "stress.intern." + std::to_string(n));
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int n = 0; n < kNames; ++n) {
    for (int t = 1; t < kThreads; ++t) {
      ASSERT_EQ(seen[t][n], seen[0][n]) << "name " << n << " thread " << t;
    }
  }
}

TEST(ObsStressTest, CollectWhileRecordingSpanChurn) {
  // N threads open/close spans into small per-thread rings while the
  // session owner repeatedly calls Collect()/dropped()/
  // ToChromeTraceJson() — the live-inspection pattern the per-ring
  // mutexes exist for. Loose assertions: well-formed names, bounded
  // collection size, and recorded + dropped covering everything opened.
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 5000;
  obs::ObsSession session(/*ring_capacity=*/64);
  std::atomic<bool> go{false};
  std::atomic<int> live{kThreads};

  std::vector<std::thread> spanners;
  for (int t = 0; t < kThreads; ++t) {
    spanners.emplace_back([&, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < kSpansPerThread; ++i) {
        std::string name = "churn" + std::to_string(t);
        obs::ObsSpan span(name.c_str(), "stress");
      }
      live.fetch_sub(1);
    });
  }
  go.store(true);
  while (live.load() > 0) {
    std::vector<obs::TraceEvent> events = session.Collect();
    ASSERT_LE(events.size(), static_cast<size_t>(kThreads) * 64 + 64);
    for (const obs::TraceEvent& ev : events) {
      ASSERT_EQ(std::string(ev.name).rfind("churn", 0), 0u);
    }
    std::string json = session.ToChromeTraceJson();
    ASSERT_NE(json.find("traceEvents"), std::string::npos);
    (void)session.dropped();
  }
  for (auto& t : spanners) t.join();

  std::vector<obs::TraceEvent> final_events = session.Collect();
  EXPECT_EQ(final_events.size() + session.dropped(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

}  // namespace
}  // namespace ccs
