// Parameterized drift-shape properties across ALL 16 EVL datasets: the
// conformance drift series must start at (near) zero, react to the drift,
// and respect each dataset family's trajectory (monotone-ish rise for
// translations/expansions, return-to-start for full rotations).

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "core/drift.h"
#include "synth/evl.h"

namespace ccs {
namespace {

constexpr size_t kWindows = 9;
constexpr size_t kRows = 400;

class EvlDriftTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::vector<double> Series() {
    Rng rng(std::hash<std::string>{}(GetParam()) | 1ull);
    auto stream =
        synth::GenerateEvlStream(GetParam(), kWindows, kRows, &rng);
    CCS_CHECK(stream.ok()) << stream.status();
    auto series = core::DriftSeries(*stream);
    CCS_CHECK(series.ok()) << series.status();
    return std::move(series).value();
  }
};

TEST_P(EvlDriftTest, ReferenceWindowScoresNearZero) {
  auto series = Series();
  EXPECT_LT(series[0], 0.03) << GetParam();
}

TEST_P(EvlDriftTest, DriftIsDetectedSomewhere) {
  auto series = Series();
  double peak = *std::max_element(series.begin(), series.end());
  EXPECT_GT(peak, series[0] + 0.1)
      << GetParam() << ": the stream drifts but CC never reacted";
}

TEST_P(EvlDriftTest, SeriesStaysInUnitInterval) {
  for (double v : Series()) {
    EXPECT_GE(v, 0.0) << GetParam();
    EXPECT_LE(v, 1.0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, EvlDriftTest,
    ::testing::ValuesIn(synth::EvlDatasetNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Family-specific trajectory shapes.

class EvlMonotoneTest : public EvlDriftTest {};

TEST_P(EvlMonotoneTest, TranslationDriftGrowsOverall) {
  auto series = Series();
  // End of stream must be well above the start, and the second half's
  // mean above the first half's (monotone up to noise).
  EXPECT_GT(series.back(), series.front() + 0.1) << GetParam();
  double first_half = 0.0, second_half = 0.0;
  size_t half = series.size() / 2;
  for (size_t i = 0; i < half; ++i) first_half += series[i];
  for (size_t i = half; i < series.size(); ++i) second_half += series[i];
  EXPECT_GT(second_half / static_cast<double>(series.size() - half),
            first_half / static_cast<double>(half))
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Translations, EvlMonotoneTest,
    ::testing::Values("1CDT", "2CDT", "1CHT", "2CHT", "5CVT", "UG-2C-2D",
                      "UG-2C-3D", "UG-2C-5D", "MG-2C-2D", "FG-2C-2D",
                      "4CE1CF"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

class EvlCyclicTest : public EvlDriftTest {};

TEST_P(EvlCyclicTest, FullRotationReturnsToStart) {
  auto series = Series();
  double peak = *std::max_element(series.begin(), series.end());
  // Mid-stream drift is large; the final window is back near the start.
  EXPECT_GT(peak, series.front() + 0.15) << GetParam();
  EXPECT_LT(series.back(), peak * 0.5) << GetParam();
}

// 4CRE-V1 is rotation + expansion; the rotation dominates the trajectory
// (classes return to their start angles at t = 1 with only the modest
// radius growth left), so it belongs to the cyclic family.
INSTANTIATE_TEST_SUITE_P(
    Rotations, EvlCyclicTest,
    ::testing::Values("4CR", "1CSurr", "GEARS-2C-2D", "4CRE-V1"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ccs
