// Tests for the paper's stated extensions, implemented as real features:
// decision-tree constraints (§8), dataset diff (Appendix H), and
// violation-guided repair/imputation (Appendix H).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "core/datadiff.h"
#include "core/repair.h"
#include "core/tree.h"

namespace ccs::core {
namespace {

using dataframe::DataFrame;
using linalg::Vector;

// Two-level piecewise data: region ("east"/"west") selects the slope of
// y = slope * x; within east, the tier ("a"/"b") selects an offset.
DataFrame Hierarchical(size_t rows_per_leaf, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x, y;
  std::vector<std::string> region, tier;
  auto emit = [&](const std::string& r, const std::string& t, double slope,
                  double offset) {
    for (size_t i = 0; i < rows_per_leaf; ++i) {
      double v = rng.Uniform(-4.0, 4.0);
      x.push_back(v);
      y.push_back(slope * v + offset + rng.Gaussian(0.0, 0.05));
      region.push_back(r);
      tier.push_back(t);
    }
  };
  emit("east", "a", 1.0, 0.0);
  emit("east", "b", 1.0, 5.0);
  emit("west", "a", -1.0, 0.0);
  emit("west", "b", -1.0, 0.0);
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  CCS_CHECK(df.AddCategoricalColumn("region", std::move(region)).ok());
  CCS_CHECK(df.AddCategoricalColumn("tier", std::move(tier)).ok());
  return df;
}

// ----------------------------- tree -----------------------------------

TEST(ConstraintTreeTest, SplitsOnInformativeAttribute) {
  DataFrame df = Hierarchical(80, 1);
  auto tree = ConstraintTree::Fit(df);
  ASSERT_TRUE(tree.ok());
  // The root split must be "region" (slope flip dominates the variance).
  EXPECT_EQ(tree->root().split_attribute, "region");
  EXPECT_GE(tree->num_leaves(), 2u);
  EXPECT_GE(tree->depth(), 1u);
}

TEST(ConstraintTreeTest, TrainingDataConforms) {
  DataFrame df = Hierarchical(80, 2);
  auto tree = ConstraintTree::Fit(df);
  ASSERT_TRUE(tree.ok());
  auto mean = tree->MeanViolation(df);
  ASSERT_TRUE(mean.ok());
  EXPECT_LT(*mean, 0.01);
}

TEST(ConstraintTreeTest, WrongRegionTrendIsFlagged) {
  DataFrame df = Hierarchical(80, 3);
  auto tree = ConstraintTree::Fit(df);
  ASSERT_TRUE(tree.ok());
  // A west-labeled tuple following the east trend (y = +x).
  DataFrame probe;
  ASSERT_TRUE(probe.AddNumericColumn("x", {3.0}).ok());
  ASSERT_TRUE(probe.AddNumericColumn("y", {3.0}).ok());
  ASSERT_TRUE(probe.AddCategoricalColumn("region", {"west"}).ok());
  ASSERT_TRUE(probe.AddCategoricalColumn("tier", {"a"}).ok());
  EXPECT_GT(tree->Violation(probe, 0).value(), 0.4);

  // The same numbers labeled east conform.
  DataFrame probe_east;
  ASSERT_TRUE(probe_east.AddNumericColumn("x", {3.0}).ok());
  ASSERT_TRUE(probe_east.AddNumericColumn("y", {3.0}).ok());
  ASSERT_TRUE(probe_east.AddCategoricalColumn("region", {"east"}).ok());
  ASSERT_TRUE(probe_east.AddCategoricalColumn("tier", {"a"}).ok());
  EXPECT_LT(tree->Violation(probe_east, 0).value(), 0.1);
}

TEST(ConstraintTreeTest, UnseenBranchValueIsPenalized) {
  DataFrame df = Hierarchical(80, 4);
  auto tree = ConstraintTree::Fit(df);
  ASSERT_TRUE(tree.ok());
  DataFrame probe;
  ASSERT_TRUE(probe.AddNumericColumn("x", {0.0}).ok());
  ASSERT_TRUE(probe.AddNumericColumn("y", {0.0}).ok());
  ASSERT_TRUE(probe.AddCategoricalColumn("region", {"north"}).ok());
  ASSERT_TRUE(probe.AddCategoricalColumn("tier", {"a"}).ok());
  EXPECT_GE(tree->Violation(probe, 0).value(), 0.4);
}

TEST(ConstraintTreeTest, DepthZeroIsGlobalConstraint) {
  DataFrame df = Hierarchical(80, 5);
  TreeOptions options;
  options.max_depth = 0;
  auto tree = ConstraintTree::Fit(df, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root().is_leaf());
  EXPECT_EQ(tree->num_leaves(), 1u);
}

TEST(ConstraintTreeTest, MinLeafRowsBlocksSplits) {
  DataFrame df = Hierarchical(20, 6);
  TreeOptions options;
  options.min_leaf_rows = 100;  // Larger than any partition.
  auto tree = ConstraintTree::Fit(df, options);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->root().is_leaf());
}

TEST(ConstraintTreeTest, ToStringShowsStructure) {
  DataFrame df = Hierarchical(80, 7);
  auto tree = ConstraintTree::Fit(df);
  ASSERT_TRUE(tree.ok());
  std::string rendered = tree->ToString();
  EXPECT_NE(rendered.find("split on region"), std::string::npos);
  EXPECT_NE(rendered.find("leaf"), std::string::npos);
}

TEST(ConstraintTreeTest, EmptyDatasetIsError) {
  EXPECT_FALSE(ConstraintTree::Fit(DataFrame()).ok());
}

TEST(ConstraintTreeTest, TreeBeatsFlatGlobalOnHierarchicalData) {
  DataFrame df = Hierarchical(80, 8);
  auto tree = ConstraintTree::Fit(df);
  ASSERT_TRUE(tree.ok());
  TreeOptions flat_options;
  flat_options.max_depth = 0;
  auto flat = ConstraintTree::Fit(df, flat_options);
  ASSERT_TRUE(flat.ok());
  // Off-trend probe: east-labeled tuple on the west trend with the east-b
  // offset missing. The tree localizes; the flat profile dilutes.
  DataFrame probe;
  ASSERT_TRUE(probe.AddNumericColumn("x", {3.0}).ok());
  ASSERT_TRUE(probe.AddNumericColumn("y", {-3.0}).ok());
  ASSERT_TRUE(probe.AddCategoricalColumn("region", {"east"}).ok());
  ASSERT_TRUE(probe.AddCategoricalColumn("tier", {"a"}).ok());
  EXPECT_GT(tree->Violation(probe, 0).value(),
            flat->Violation(probe, 0).value());
}

// ----------------------------- datadiff --------------------------------

TEST(DataDiffTest, IdenticalDistributionsShowNoDrift) {
  DataFrame a = Hierarchical(60, 9);
  DataFrame b = Hierarchical(60, 10);
  auto diff = DiffDatasets(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_LT(diff->violation_b_against_a, 0.02);
  EXPECT_LT(diff->violation_a_against_b, 0.02);
}

TEST(DataDiffTest, LocalizedChangeShowsInPartitionBreakdown) {
  DataFrame a = Hierarchical(60, 11);
  // B: the west slope flipped to +1 (only west partitions drift).
  Rng rng(12);
  std::vector<double> x, y;
  std::vector<std::string> region, tier;
  auto emit = [&](const std::string& r, const std::string& t, double slope,
                  double offset) {
    for (size_t i = 0; i < 60; ++i) {
      double v = rng.Uniform(-4.0, 4.0);
      x.push_back(v);
      y.push_back(slope * v + offset + rng.Gaussian(0.0, 0.05));
      region.push_back(r);
      tier.push_back(t);
    }
  };
  emit("east", "a", 1.0, 0.0);
  emit("east", "b", 1.0, 5.0);
  emit("west", "a", 1.0, 0.0);  // Flipped!
  emit("west", "b", 1.0, 0.0);  // Flipped!
  DataFrame b;
  ASSERT_TRUE(b.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(b.AddNumericColumn("y", std::move(y)).ok());
  ASSERT_TRUE(b.AddCategoricalColumn("region", std::move(region)).ok());
  ASSERT_TRUE(b.AddCategoricalColumn("tier", std::move(tier)).ok());

  auto diff = DiffDatasets(a, b);
  ASSERT_TRUE(diff.ok());
  EXPECT_GT(diff->violation_b_against_a, 0.05);
  ASSERT_FALSE(diff->partitions.empty());
  // The top partition entry must be region=west.
  EXPECT_EQ(diff->partitions[0].attribute, "region");
  EXPECT_EQ(diff->partitions[0].value, "west");
  // East partitions stay low.
  for (const auto& p : diff->partitions) {
    if (p.attribute == "region" && p.value == "east") {
      EXPECT_LT(p.violation_b_against_a, 0.05);
    }
  }
}

TEST(DataDiffTest, ValueMissingFromReferenceIsFullViolation) {
  DataFrame a = Hierarchical(60, 13);
  DataFrame b = Hierarchical(60, 14);
  // Rename one region value in B so A has no profile for it.
  std::vector<std::string> region =
      b.ColumnByName("region").value()->categorical_data();
  for (auto& r : region) {
    if (r == "west") r = "south";
  }
  DataFrame b2 = b.DropColumns({"region"}).value();
  ASSERT_TRUE(b2.AddCategoricalColumn("region", std::move(region)).ok());
  auto diff = DiffDatasets(a, b2);
  ASSERT_TRUE(diff.ok());
  bool found = false;
  for (const auto& p : diff->partitions) {
    if (p.attribute == "region" && p.value == "south") {
      EXPECT_DOUBLE_EQ(p.violation_b_against_a, 1.0);
      EXPECT_EQ(p.rows_a, 0u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DataDiffTest, ReportRendersKeySections) {
  DataFrame a = Hierarchical(60, 15);
  DataFrame b = Hierarchical(60, 16);
  auto diff = DiffDatasets(a, b);
  ASSERT_TRUE(diff.ok());
  std::string report = diff->ToString();
  EXPECT_NE(report.find("violation(B | profile of A)"), std::string::npos);
  EXPECT_NE(report.find("attribute responsibility"), std::string::npos);
}

TEST(DataDiffTest, SchemaMismatchIsError) {
  DataFrame a = Hierarchical(40, 17);
  DataFrame b;
  ASSERT_TRUE(b.AddNumericColumn("x", {1.0}).ok());
  EXPECT_FALSE(DiffDatasets(a, b).ok());
  EXPECT_FALSE(DiffDatasets(a, DataFrame()).ok());
}

// ----------------------------- repair ----------------------------------

// y = 2x + 1 with small noise, plus an independent attribute z.
DataFrame LinearTrend(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n), z(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = 2.0 * x[i] + 1.0 + rng.Gaussian(0.0, 0.05);
    z[i] = rng.Gaussian(10.0, 2.0);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  CCS_CHECK(df.AddNumericColumn("z", std::move(z)).ok());
  return df;
}

TEST(RepairTest, ImputesFromLinearRelationship) {
  auto repairer = ConstraintRepairer::FromTrainingData(LinearTrend(500, 18));
  ASSERT_TRUE(repairer.ok());
  // x = 2, y missing -> expect ~5 (= 2*2 + 1).
  Vector tuple{2.0, 0.0, 10.0};
  auto imputed = repairer->ImputeValue(tuple, 1);
  ASSERT_TRUE(imputed.ok());
  EXPECT_NEAR(*imputed, 5.0, 0.3);
  // y = 7, x missing -> expect ~3.
  Vector tuple2{0.0, 7.0, 10.0};
  EXPECT_NEAR(repairer->ImputeValue(tuple2, 0).value(), 3.0, 0.3);
}

TEST(RepairTest, ImputedRowConforms) {
  auto repairer = ConstraintRepairer::FromTrainingData(LinearTrend(500, 19));
  ASSERT_TRUE(repairer.ok());
  Vector broken{2.0, -100.0, 10.0};
  auto repaired = repairer->ImputeRow(broken, 1);
  ASSERT_TRUE(repaired.ok());
  EXPECT_GT(repairer->constraint().ViolationAligned(broken), 0.5);
  EXPECT_LT(repairer->constraint().ViolationAligned(*repaired), 0.05);
}

TEST(RepairTest, UnconstrainedAttributeFallsBackToMean) {
  auto repairer = ConstraintRepairer::FromTrainingData(LinearTrend(500, 20));
  ASSERT_TRUE(repairer.ok());
  // z participates only in its own (wide) constraint; the imputation is
  // pulled toward its mean (~10).
  Vector tuple{1.0, 3.0, 0.0};
  EXPECT_NEAR(repairer->ImputeValue(tuple, 2).value(), 10.0, 1.0);
}

TEST(RepairTest, DetectErrorsFindsAndFixesCorruptedCells) {
  DataFrame clean = LinearTrend(500, 21);
  auto repairer = ConstraintRepairer::FromTrainingData(clean);
  ASSERT_TRUE(repairer.ok());

  // Corrupt y in rows 3 and 7 of a serving sample.
  DataFrame serving = LinearTrend(20, 22);
  std::vector<double> y =
      serving.ColumnByName("y").value()->numeric_data();
  double x3 = serving.NumericValue(3, "x").value();
  double x7 = serving.NumericValue(7, "x").value();
  y[3] += 50.0;
  y[7] -= 80.0;
  DataFrame corrupted = serving.DropColumns({"y"}).value();
  ASSERT_TRUE(corrupted.AddNumericColumn("y", std::move(y)).ok());

  auto errors = repairer->DetectErrors(corrupted, 0.1);
  ASSERT_TRUE(errors.ok());
  ASSERT_EQ(errors->size(), 2u);
  for (const auto& e : *errors) {
    EXPECT_TRUE(e.row == 3 || e.row == 7);
    EXPECT_EQ(e.attribute, "y");
    EXPECT_LT(e.repaired_violation, 0.05);
    double expected = 2.0 * (e.row == 3 ? x3 : x7) + 1.0;
    EXPECT_NEAR(e.suggested, expected, 0.5);
  }
}

TEST(RepairTest, CleanDataYieldsNoErrors) {
  DataFrame clean = LinearTrend(300, 23);
  auto repairer = ConstraintRepairer::FromTrainingData(clean);
  ASSERT_TRUE(repairer.ok());
  auto errors = repairer->DetectErrors(LinearTrend(100, 24), 0.1);
  ASSERT_TRUE(errors.ok());
  EXPECT_TRUE(errors->empty());
}

TEST(RepairTest, InputValidation) {
  auto repairer = ConstraintRepairer::FromTrainingData(LinearTrend(100, 25));
  ASSERT_TRUE(repairer.ok());
  EXPECT_FALSE(repairer->ImputeValue(Vector{1.0}, 0).ok());
  EXPECT_FALSE(repairer->ImputeValue(Vector{1.0, 2.0, 3.0}, 9).ok());
  EXPECT_FALSE(
      repairer->DetectErrors(LinearTrend(10, 26), -0.5).ok());
}

}  // namespace
}  // namespace ccs::core
