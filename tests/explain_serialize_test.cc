// Tests for core/explain (ExTuNe responsibility), core/serialize, and
// core/kernel (polynomial expansion).

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/explain.h"
#include "core/kernel.h"
#include "core/serialize.h"
#include "core/synthesizer.h"

namespace ccs::core {
namespace {

using dataframe::DataFrame;
using linalg::Vector;

DataFrame TwoAttrTrend(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(n), y(n), z(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-3.0, 3.0);
    y[i] = x[i] + rng.Gaussian(0.0, 0.05);
    z[i] = rng.Gaussian(0.0, 1.0);  // Unconstrained attribute.
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  CCS_CHECK(df.AddNumericColumn("z", std::move(z)).ok());
  return df;
}

// --------------------------- explain ----------------------------------

TEST(ExplainTest, ConformingTupleHasZeroResponsibilities) {
  auto explainer = NonConformanceExplainer::FromTrainingData(
      TwoAttrTrend(400, 1));
  ASSERT_TRUE(explainer.ok());
  auto r = explainer->ExplainTuple(Vector{1.0, 1.0, 0.0});
  ASSERT_TRUE(r.ok());
  for (const auto& attr : *r) {
    EXPECT_DOUBLE_EQ(attr.responsibility, 0.0);
  }
}

TEST(ExplainTest, CulpritAttributeGetsTopResponsibility) {
  auto explainer = NonConformanceExplainer::FromTrainingData(
      TwoAttrTrend(400, 2));
  ASSERT_TRUE(explainer.ok());
  // Break the x≈y trend through y: y is way off given x.
  auto r = explainer->ExplainTuple(Vector{0.0, 50.0, 0.0});
  ASSERT_TRUE(r.ok());
  double y_resp = 0.0, z_resp = 0.0;
  for (const auto& attr : *r) {
    if (attr.attribute == "y") y_resp = attr.responsibility;
    if (attr.attribute == "z") z_resp = attr.responsibility;
  }
  EXPECT_GT(y_resp, 0.0);
  EXPECT_GE(y_resp, z_resp);
}

TEST(ExplainTest, ResponsibilityIsInverseOfAdditionalFixes) {
  auto explainer = NonConformanceExplainer::FromTrainingData(
      TwoAttrTrend(400, 3));
  ASSERT_TRUE(explainer.ok());
  // Fixing y alone restores conformance, so resp(y) should be 1/(0+1)=1.
  auto r = explainer->ExplainTuple(Vector{0.0, 50.0, 0.0});
  ASSERT_TRUE(r.ok());
  for (const auto& attr : *r) {
    EXPECT_GE(attr.responsibility, 0.0);
    EXPECT_LE(attr.responsibility, 1.0);
    if (attr.attribute == "y") {
      EXPECT_DOUBLE_EQ(attr.responsibility, 1.0);
    }
  }
}

TEST(ExplainTest, DatasetAggregationAveragesTuples) {
  auto explainer = NonConformanceExplainer::FromTrainingData(
      TwoAttrTrend(400, 4));
  ASSERT_TRUE(explainer.ok());
  // Serving set: half conforming, half broken through y.
  Rng rng(5);
  std::vector<double> x, y, z;
  for (int i = 0; i < 20; ++i) {
    double v = rng.Uniform(-2.0, 2.0);
    x.push_back(v);
    y.push_back(i % 2 == 0 ? v : v + 100.0);
    z.push_back(0.0);
  }
  DataFrame serving;
  ASSERT_TRUE(serving.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(serving.AddNumericColumn("y", std::move(y)).ok());
  ASSERT_TRUE(serving.AddNumericColumn("z", std::move(z)).ok());
  auto r = explainer->ExplainDataset(serving);
  ASSERT_TRUE(r.ok());
  double y_resp = 0.0;
  for (const auto& attr : *r) {
    if (attr.attribute == "y") y_resp = attr.responsibility;
  }
  // Half the tuples are broken through y (some also need an x fix when
  // |x| is large, halving their per-tuple responsibility).
  EXPECT_GT(y_resp, 0.2);
  EXPECT_LE(y_resp, 0.75);
}

TEST(ExplainTest, WidthMismatchIsError) {
  auto explainer = NonConformanceExplainer::FromTrainingData(
      TwoAttrTrend(100, 6));
  ASSERT_TRUE(explainer.ok());
  EXPECT_FALSE(explainer->ExplainTuple(Vector{1.0}).ok());
}

// --------------------------- serialize --------------------------------

ConformanceConstraint SynthesizeExample(uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x, y;
  std::vector<std::string> g;
  for (int i = 0; i < 100; ++i) {
    double v = rng.Uniform(-5.0, 5.0);
    x.push_back(v);
    y.push_back(2.0 * v + rng.Gaussian(0.0, 0.1));
    g.push_back(i % 2 ? "odd" : "even");
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  CCS_CHECK(df.AddCategoricalColumn("g", std::move(g)).ok());
  Synthesizer synth;
  auto phi = synth.Synthesize(df);
  CCS_CHECK(phi.ok());
  return std::move(phi).value();
}

TEST(SerializeTest, RoundTripPreservesStructure) {
  ConformanceConstraint phi = SynthesizeExample(7);
  std::string text = Serialize(phi);
  auto back = Deserialize(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->has_global(), phi.has_global());
  EXPECT_EQ(back->disjunctions().size(), phi.disjunctions().size());
  EXPECT_EQ(back->global().conjuncts().size(),
            phi.global().conjuncts().size());
}

TEST(SerializeTest, RoundTripPreservesSemantics) {
  ConformanceConstraint phi = SynthesizeExample(8);
  auto back = Deserialize(Serialize(phi));
  ASSERT_TRUE(back.ok());
  Rng rng(9);
  DataFrame probe;
  std::vector<double> x, y;
  std::vector<std::string> g;
  for (int i = 0; i < 20; ++i) {
    x.push_back(rng.Uniform(-10.0, 10.0));
    y.push_back(rng.Uniform(-20.0, 20.0));
    g.push_back(i % 3 == 0 ? "unseen" : (i % 2 ? "odd" : "even"));
  }
  ASSERT_TRUE(probe.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(probe.AddNumericColumn("y", std::move(y)).ok());
  ASSERT_TRUE(probe.AddCategoricalColumn("g", std::move(g)).ok());
  for (size_t i = 0; i < probe.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(phi.Violation(probe, i).value(),
                     back->Violation(probe, i).value());
  }
}

TEST(SerializeTest, RejectsCorruptedInput) {
  EXPECT_FALSE(Deserialize("").ok());
  EXPECT_FALSE(Deserialize("garbage\n").ok());
  EXPECT_FALSE(Deserialize("ccs-constraint v999\nglobal 0\nend\n").ok());
  ConformanceConstraint phi = SynthesizeExample(10);
  std::string text = Serialize(phi);
  text.resize(text.size() / 2);  // Truncate mid-stream.
  EXPECT_FALSE(Deserialize(text).ok());
}

TEST(SerializeTest, PrettyStringMentionsAttributesAndBounds) {
  ConformanceConstraint phi = SynthesizeExample(11);
  std::string pretty = ToPrettyString(phi);
  EXPECT_NE(pretty.find("GLOBAL"), std::string::npos);
  EXPECT_NE(pretty.find("DISJUNCTION on g"), std::string::npos);
  EXPECT_NE(pretty.find("<="), std::string::npos);
  EXPECT_NE(pretty.find("weight="), std::string::npos);
}

TEST(SerializeTest, SqlCheckHasExpectedShape) {
  ConformanceConstraint phi = SynthesizeExample(12);
  std::string sql = ToSqlCheck(phi);
  EXPECT_NE(sql.find("BETWEEN"), std::string::npos);
  EXPECT_NE(sql.find("CASE"), std::string::npos);
  EXPECT_NE(sql.find("ELSE FALSE END"), std::string::npos);
  EXPECT_NE(sql.find("\"x\""), std::string::npos);
}

// --------------------------- kernel -----------------------------------

TEST(KernelTest, ExpansionAddsSquaresAndCrossTerms) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("a", {1.0, 2.0}).ok());
  ASSERT_TRUE(df.AddNumericColumn("b", {3.0, 4.0}).ok());
  auto expanded = ExpandPolynomial(df);
  ASSERT_TRUE(expanded.ok());
  // a, b, a^2, b^2, a*b = 5 numeric columns.
  EXPECT_EQ(expanded->NumericNames().size(), 5u);
  EXPECT_DOUBLE_EQ(expanded->NumericValue(1, "a^2").value(), 4.0);
  EXPECT_DOUBLE_EQ(expanded->NumericValue(1, "a*b").value(), 8.0);
}

TEST(KernelTest, CategoricalColumnsPassThrough) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("a", {1.0}).ok());
  ASSERT_TRUE(df.AddCategoricalColumn("g", {"v"}).ok());
  auto expanded = ExpandPolynomial(df);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->CategoricalValue(0, "g").value(), "v");
}

TEST(KernelTest, OptionsControlTerms) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("a", {1.0}).ok());
  ASSERT_TRUE(df.AddNumericColumn("b", {2.0}).ok());
  PolynomialExpansionOptions options;
  options.include_squares = false;
  options.include_cross_terms = true;
  options.keep_linear = false;
  auto expanded = ExpandPolynomial(df, options);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded->NumericNames(), (std::vector<std::string>{"a*b"}));
}

TEST(KernelTest, QuadraticConstraintBecomesLearnable) {
  // Data on the circle x^2 + y^2 = 25 (plus noise): linear synthesis sees
  // nothing, degree-2 synthesis finds the invariant.
  Rng rng(13);
  std::vector<double> x, y;
  for (int i = 0; i < 400; ++i) {
    double theta = rng.Uniform(0.0, 6.28318);
    double r = 5.0 + rng.Gaussian(0.0, 0.02);
    x.push_back(r * std::cos(theta));
    y.push_back(r * std::sin(theta));
  }
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", std::move(x)).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", std::move(y)).ok());
  auto expanded = ExpandPolynomial(df);
  ASSERT_TRUE(expanded.ok());
  Synthesizer synth;
  auto constraint = synth.SynthesizeSimple(*expanded);
  ASSERT_TRUE(constraint.ok());

  // Probe: a point well inside the circle, expanded the same way.
  DataFrame probe;
  ASSERT_TRUE(probe.AddNumericColumn("x", {0.5}).ok());
  ASSERT_TRUE(probe.AddNumericColumn("y", {0.5}).ok());
  auto probe_expanded = ExpandPolynomial(probe);
  ASSERT_TRUE(probe_expanded.ok());
  EXPECT_GT(constraint->Violation(*probe_expanded, 0).value(), 0.3);

  // A point on the circle conforms.
  DataFrame on_circle;
  ASSERT_TRUE(on_circle.AddNumericColumn("x", {5.0}).ok());
  ASSERT_TRUE(on_circle.AddNumericColumn("y", {0.0}).ok());
  auto on_expanded = ExpandPolynomial(on_circle);
  ASSERT_TRUE(on_expanded.ok());
  EXPECT_LT(constraint->Violation(*on_expanded, 0).value(), 0.1);
}

TEST(KernelTest, NoNumericAttributesIsError) {
  DataFrame df;
  ASSERT_TRUE(df.AddCategoricalColumn("g", {"a"}).ok());
  EXPECT_FALSE(ExpandPolynomial(df).ok());
}

}  // namespace
}  // namespace ccs::core
