// Tests for core/projection and core/constraint: the conformance language
// and its Boolean + quantitative semantics (paper §3).

#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.h"
#include "common/random.h"
#include "core/constraint.h"
#include "core/projection.h"
#include "core/synthesizer.h"
#include "synth/airlines.h"
#include "synth/evl.h"
#include "synth/har.h"
#include "synth/led.h"
#include "synth/tabular.h"

namespace ccs::core {
namespace {

using dataframe::DataFrame;
using linalg::Vector;

Projection MakeProjection(std::vector<std::string> names, Vector coefs) {
  auto p = Projection::Create(std::move(names), std::move(coefs));
  CCS_CHECK(p.ok());
  return std::move(p).value();
}

// --------------------------- Projection ------------------------------

TEST(ProjectionTest, EvaluateAligned) {
  Projection p = MakeProjection({"a", "b"}, Vector{2.0, -1.0});
  EXPECT_DOUBLE_EQ(p.EvaluateAligned(Vector{3.0, 4.0}), 2.0);
}

TEST(ProjectionTest, EvaluateLocatesAttributesByName) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("b", {10.0}).ok());
  ASSERT_TRUE(df.AddNumericColumn("a", {1.0}).ok());
  Projection p = MakeProjection({"a", "b"}, Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(p.Evaluate(df, 0).value(), 11.0);
}

TEST(ProjectionTest, EvaluateAllMatchesRowwise) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("a", {1.0, 2.0, 3.0}).ok());
  Projection p = MakeProjection({"a"}, Vector{3.0});
  auto all = p.EvaluateAll(df);
  ASSERT_TRUE(all.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ((*all)[i], p.Evaluate(df, i).value());
  }
}

TEST(ProjectionTest, MissingAttributeIsError) {
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("a", {1.0}).ok());
  Projection p = MakeProjection({"z"}, Vector{1.0});
  EXPECT_FALSE(p.Evaluate(df, 0).ok());
}

TEST(ProjectionTest, NormalizedUnitNorm) {
  Projection p = MakeProjection({"a", "b"}, Vector{3.0, 4.0});
  auto n = p.Normalized();
  ASSERT_TRUE(n.ok());
  EXPECT_NEAR(n->coefficients().Norm(), 1.0, 1e-12);
}

TEST(ProjectionTest, CreateRejectsBadInput) {
  EXPECT_FALSE(Projection::Create({"a"}, Vector{1.0, 2.0}).ok());
  EXPECT_FALSE(Projection::Create({}, Vector()).ok());
}

TEST(ProjectionTest, ToStringReadable) {
  Projection p = MakeProjection({"AT", "DT", "DUR"}, Vector{1.0, -1.0, -1.0});
  EXPECT_EQ(p.ToString(), "AT - DT - DUR");
  Projection q = MakeProjection({"x", "y"}, Vector{0.5, 0.0});
  EXPECT_EQ(q.ToString(), "0.5*x");
}

// ----------------------- BoundedConstraint ---------------------------

// The Example 4 setting: projection AT - DT - DUR with sigma = 3.6.
BoundedConstraint ExampleConstraint() {
  Projection p = MakeProjection({"AT", "DT", "DUR"}, Vector{1.0, -1.0, -1.0});
  return BoundedConstraint(std::move(p), /*lb=*/-5.0, /*ub=*/5.0,
                           /*mean=*/-0.5, /*stddev=*/3.6, /*importance=*/1.0);
}

TEST(BoundedConstraintTest, SatisfiedTupleHasZeroViolation) {
  BoundedConstraint c = ExampleConstraint();
  // t1 of Fig. 1: 18:20 - 14:30 = 230 min scheduled, duration 230.
  Vector t1{1100.0, 870.0, 230.0};
  EXPECT_TRUE(c.IsSatisfiedAligned(t1));
  EXPECT_DOUBLE_EQ(c.ViolationAligned(t1), 0.0);
}

TEST(BoundedConstraintTest, OvernightFlightViolatesStrongly) {
  BoundedConstraint c = ExampleConstraint();
  // t5 of Fig. 1: arrival 06:10 (370), departure 22:30 (1350), 458 min.
  Vector t5{370.0, 1350.0, 458.0};
  EXPECT_FALSE(c.IsSatisfiedAligned(t5));
  // Example 4 computes the violation as ~1.
  EXPECT_NEAR(c.ViolationAligned(t5), 1.0, 1e-9);
}

TEST(BoundedConstraintTest, ViolationIsInUnitInterval) {
  BoundedConstraint c = ExampleConstraint();
  for (double v : {-1e9, -100.0, 0.0, 5.0, 5.1, 100.0, 1e9}) {
    double violation = c.ViolationOfValue(v);
    EXPECT_GE(violation, 0.0);
    EXPECT_LT(violation, 1.0 + 1e-12);
  }
}

TEST(BoundedConstraintTest, ViolationZeroExactlyInsideBounds) {
  BoundedConstraint c = ExampleConstraint();
  EXPECT_DOUBLE_EQ(c.ViolationOfValue(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(c.ViolationOfValue(5.0), 0.0);
  EXPECT_DOUBLE_EQ(c.ViolationOfValue(0.0), 0.0);
  EXPECT_GT(c.ViolationOfValue(5.0001), 0.0);
  EXPECT_GT(c.ViolationOfValue(-5.0001), 0.0);
}

TEST(BoundedConstraintTest, ViolationMonotoneInDistance) {
  BoundedConstraint c = ExampleConstraint();
  double prev = 0.0;
  for (double v = 5.0; v < 50.0; v += 1.0) {
    double violation = c.ViolationOfValue(v);
    EXPECT_GE(violation, prev);
    prev = violation;
  }
}

TEST(BoundedConstraintTest, ZeroStddevActsAsEqualityConstraint) {
  Projection p = MakeProjection({"x"}, Vector{1.0});
  BoundedConstraint c(std::move(p), 2.0, 2.0, 2.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(c.ViolationAligned(Vector{2.0}), 0.0);
  // Any deviation saturates violation to ~1 (alpha is huge).
  EXPECT_NEAR(c.ViolationAligned(Vector{2.0001}), 1.0, 1e-9);
}

// Lemma 5: larger standardized deviation => no smaller violation, across
// two different constraints.
TEST(BoundedConstraintTest, Lemma5CrossConstraintMonotonicity) {
  Projection p1 = MakeProjection({"x"}, Vector{1.0});
  Projection p2 = MakeProjection({"x"}, Vector{1.0});
  BoundedConstraint narrow(std::move(p1), -1.0, 1.0, 0.0, 0.25, 1.0);
  BoundedConstraint wide(std::move(p2), -4.0, 4.0, 0.0, 1.0, 1.0);
  for (double x : {1.5, 2.0, 5.0, 10.0}) {
    double z_narrow = std::abs(x - 0.0) / 0.25;
    double z_wide = std::abs(x - 0.0) / 1.0;
    ASSERT_GT(z_narrow, z_wide);
    EXPECT_GE(narrow.ViolationAligned(Vector{x}),
              wide.ViolationAligned(Vector{x}));
  }
}

// ----------------------- SimpleConstraint ----------------------------

SimpleConstraint MakeSimple() {
  Projection p1 = MakeProjection({"x", "y"}, Vector{1.0, 0.0});
  Projection p2 = MakeProjection({"x", "y"}, Vector{0.0, 1.0});
  std::vector<BoundedConstraint> conjuncts;
  conjuncts.emplace_back(std::move(p1), -1.0, 1.0, 0.0, 0.5, 0.7);
  conjuncts.emplace_back(std::move(p2), -2.0, 2.0, 0.0, 1.0, 0.3);
  auto c = SimpleConstraint::Create({"x", "y"}, std::move(conjuncts));
  CCS_CHECK(c.ok());
  return std::move(c).value();
}

TEST(SimpleConstraintTest, ConjunctionBooleanSemantics) {
  SimpleConstraint c = MakeSimple();
  EXPECT_TRUE(c.IsSatisfiedAligned(Vector{0.5, 1.0}));
  EXPECT_FALSE(c.IsSatisfiedAligned(Vector{1.5, 0.0}));   // First violated.
  EXPECT_FALSE(c.IsSatisfiedAligned(Vector{0.0, 3.0}));   // Second violated.
}

TEST(SimpleConstraintTest, ViolationIsImportanceWeightedSum) {
  SimpleConstraint c = MakeSimple();
  Vector t{10.0, 0.0};  // Violates only the first conjunct.
  double v1 = c.conjuncts()[0].ViolationAligned(t);
  EXPECT_NEAR(c.ViolationAligned(t), 0.7 * v1, 1e-12);
}

TEST(SimpleConstraintTest, ViolationBoundedByOne) {
  SimpleConstraint c = MakeSimple();
  EXPECT_LE(c.ViolationAligned(Vector{1e12, -1e12}), 1.0);
}

TEST(SimpleConstraintTest, ViolationAllMatchesPerRow) {
  SimpleConstraint c = MakeSimple();
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {0.0, 5.0}).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", {0.0, 5.0}).ok());
  auto all = c.ViolationAll(df);
  ASSERT_TRUE(all.ok());
  EXPECT_DOUBLE_EQ((*all)[0], c.Violation(df, 0).value());
  EXPECT_DOUBLE_EQ((*all)[1], c.Violation(df, 1).value());
  EXPECT_DOUBLE_EQ((*all)[0], 0.0);
  EXPECT_GT((*all)[1], 0.0);
}

TEST(SimpleConstraintTest, CreateRejectsMismatchedConjuncts) {
  Projection p = MakeProjection({"other"}, Vector{1.0});
  std::vector<BoundedConstraint> conjuncts;
  conjuncts.emplace_back(std::move(p), 0.0, 1.0, 0.5, 0.1, 1.0);
  EXPECT_FALSE(SimpleConstraint::Create({"x"}, std::move(conjuncts)).ok());
}

TEST(SimpleConstraintTest, RowOutOfRangeIsError) {
  SimpleConstraint c = MakeSimple();
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {0.0}).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", {0.0}).ok());
  EXPECT_FALSE(c.Violation(df, 5).ok());
}

// --------------------- DisjunctiveConstraint -------------------------

DataFrame MonthFrame() {
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", {0.0, 0.0, 10.0}).ok());
  CCS_CHECK(df.AddCategoricalColumn("m", {"May", "June", "August"}).ok());
  return df;
}

DisjunctiveConstraint MakeDisjunctive() {
  auto make_case = [](double lb, double ub) {
    Projection p = MakeProjection({"x"}, Vector{1.0});
    std::vector<BoundedConstraint> cs;
    cs.emplace_back(std::move(p), lb, ub, (lb + ub) / 2.0, 1.0, 1.0);
    auto c = SimpleConstraint::Create({"x"}, std::move(cs));
    CCS_CHECK(c.ok());
    return std::move(c).value();
  };
  std::map<std::string, SimpleConstraint> cases;
  cases.emplace("May", make_case(-2.0, 2.0));
  cases.emplace("June", make_case(-1.0, 5.0));
  return DisjunctiveConstraint("m", std::move(cases));
}

TEST(DisjunctiveConstraintTest, DispatchesOnSwitchValue) {
  DisjunctiveConstraint d = MakeDisjunctive();
  DataFrame df = MonthFrame();
  EXPECT_DOUBLE_EQ(d.Violation(df, 0).value(), 0.0);  // May, x=0 in bounds.
  EXPECT_DOUBLE_EQ(d.Violation(df, 1).value(), 0.0);  // June.
}

TEST(DisjunctiveConstraintTest, UnseenValueMeansMaximalViolation) {
  DisjunctiveConstraint d = MakeDisjunctive();
  DataFrame df = MonthFrame();
  // Row 2 is "August": simp undefined => violation 1 (paper §3.2).
  EXPECT_DOUBLE_EQ(d.Violation(df, 2).value(), 1.0);
  EXPECT_FALSE(d.IsSatisfied(df, 2).value());
}

TEST(DisjunctiveConstraintTest, SimplifyReturnsCase) {
  DisjunctiveConstraint d = MakeDisjunctive();
  DataFrame df = MonthFrame();
  auto c = d.Simplify(df, 0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ((*c.value()).conjuncts().size(), 1u);
  EXPECT_EQ(d.Simplify(df, 2).status().code(), StatusCode::kNotFound);
}

TEST(DisjunctiveConstraintTest, ViolationAllMatchesPerRow) {
  DisjunctiveConstraint d = MakeDisjunctive();
  DataFrame df = MonthFrame();
  auto all = d.ViolationAll(df);
  ASSERT_TRUE(all.ok());
  for (size_t i = 0; i < df.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ((*all)[i], d.Violation(df, i).value());
  }
}

// Regression for the old fallback path: cases with DIFFERENT attribute
// orders used to re-simplify and re-align per row; now each case's rows
// are grouped and aligned once. Semantics must be unchanged.
TEST(DisjunctiveConstraintTest, MixedAttributeOrderMatchesPerRow) {
  auto make_case = [](std::vector<std::string> names, Vector coefs) {
    Projection p = MakeProjection(names, std::move(coefs));
    std::vector<BoundedConstraint> cs;
    cs.emplace_back(std::move(p), -1.0, 1.0, 0.0, 0.5, 1.0);
    auto c = SimpleConstraint::Create(std::move(names), std::move(cs));
    CCS_CHECK(c.ok());
    return std::move(c).value();
  };
  std::map<std::string, SimpleConstraint> cases;
  cases.emplace("a", make_case({"x", "y"}, Vector{1.0, -1.0}));
  cases.emplace("b", make_case({"y", "x"}, Vector{2.0, 0.5}));
  DisjunctiveConstraint d("m", std::move(cases));

  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {0.1, 3.0, -2.0, 0.4, 9.0}).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", {0.2, 1.0, -2.5, 0.0, -9.0}).ok());
  ASSERT_TRUE(
      df.AddCategoricalColumn("m", {"a", "b", "b", "a", "unseen"}).ok());

  auto all = d.ViolationAll(df);
  ASSERT_TRUE(all.ok());
  for (size_t i = 0; i < df.num_rows(); ++i) {
    EXPECT_EQ((*all)[i], d.Violation(df, i).value()) << "row " << i;
  }
  EXPECT_EQ((*all)[4], 1.0);  // Unseen switch value.
}

// --------------------- ConformanceConstraint -------------------------

TEST(ConformanceConstraintTest, AveragesGroups) {
  SimpleConstraint global = MakeSimple();
  DisjunctiveConstraint disj = MakeDisjunctive();
  ConformanceConstraint phi(global, {disj});
  EXPECT_EQ(phi.num_groups(), 2u);

  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {0.0}).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", {0.0}).ok());
  ASSERT_TRUE(df.AddCategoricalColumn("m", {"August"}).ok());
  // Global satisfied (0), disjunctive unseen (1): average 0.5.
  EXPECT_DOUBLE_EQ(phi.Violation(df, 0).value(), 0.5);
}

TEST(ConformanceConstraintTest, EmptyConstraintIsError) {
  ConformanceConstraint phi;
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {0.0}).ok());
  EXPECT_FALSE(phi.Violation(df, 0).ok());
}

TEST(ConformanceConstraintTest, MeanViolationAveragesRows) {
  SimpleConstraint global = MakeSimple();
  ConformanceConstraint phi(global, {});
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {0.0, 1e9}).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", {0.0, 0.0}).ok());
  auto mean = phi.MeanViolation(df);
  ASSERT_TRUE(mean.ok());
  auto v1 = phi.Violation(df, 1).value();
  EXPECT_NEAR(*mean, v1 / 2.0, 1e-12);
}

TEST(ConformanceConstraintTest, IsSatisfiedMatchesZeroViolation) {
  SimpleConstraint global = MakeSimple();
  ConformanceConstraint phi(global, {});
  DataFrame df;
  ASSERT_TRUE(df.AddNumericColumn("x", {0.0, 99.0}).ok());
  ASSERT_TRUE(df.AddNumericColumn("y", {0.0, 0.0}).ok());
  EXPECT_TRUE(phi.IsSatisfied(df, 0).value());
  EXPECT_FALSE(phi.IsSatisfied(df, 1).value());
}

// ------------------- batch vs per-row equivalence --------------------

// ViolationAll must reproduce the per-row Violation EXACTLY (same
// floating-point evaluation order), for constraints synthesized on every
// synthetic workload, with the batched kernel running on 1 and N threads.
// Restores the process-wide thread-count default even when an ASSERT
// bails out of the calling helper early.
struct ThreadCountGuard {
  ~ThreadCountGuard() { common::SetDefaultThreadCount(0); }
};

void ExpectBatchMatchesPerRow(const dataframe::DataFrame& train,
                              const dataframe::DataFrame& serving) {
  Synthesizer synthesizer;
  auto constraint = synthesizer.Synthesize(train);
  ASSERT_TRUE(constraint.ok()) << constraint.status().ToString();
  ThreadCountGuard guard;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    common::SetDefaultThreadCount(threads);
    auto all = constraint->ViolationAll(serving);
    ASSERT_TRUE(all.ok()) << all.status().ToString();
    ASSERT_EQ(all->size(), serving.num_rows());
    for (size_t i = 0; i < serving.num_rows(); ++i) {
      auto row = constraint->Violation(serving, i);
      ASSERT_TRUE(row.ok()) << row.status().ToString();
      ASSERT_EQ((*all)[i], *row) << "row " << i << ", " << threads
                                 << " thread(s)";
    }
  }
}

TEST(BatchEquivalenceTest, AirlinesFlights) {
  Rng rng(1);
  auto train = synth::GenerateFlights(synth::FlightKind::kDaytime, 400, &rng);
  // Large enough to split into several parallel chunks (min_chunk 2048),
  // so the N-thread pass exercises real multi-chunk dispatch.
  auto serving = synth::GenerateFlights(synth::FlightKind::kOvernight, 6000,
                                        &rng);
  ExpectBatchMatchesPerRow(train, serving);
}

TEST(BatchEquivalenceTest, Har) {
  Rng rng(2);
  auto persons = synth::HarPersons(2);
  auto train = synth::GenerateHar(persons, synth::AllActivities(), 40, &rng);
  ASSERT_TRUE(train.ok());
  auto serving = synth::GenerateHar(persons, synth::AllActivities(), 20, &rng);
  ASSERT_TRUE(serving.ok());
  ExpectBatchMatchesPerRow(*train, *serving);
}

TEST(BatchEquivalenceTest, EvlWindows) {
  Rng rng(3);
  auto train = synth::GenerateEvlWindow("4CR", 0.0, 400, &rng);
  ASSERT_TRUE(train.ok());
  auto serving = synth::GenerateEvlWindow("4CR", 0.7, 200, &rng);
  ASSERT_TRUE(serving.ok());
  ExpectBatchMatchesPerRow(*train, *serving);
}

TEST(BatchEquivalenceTest, LedStream) {
  Rng rng(4);
  auto stream = synth::GenerateLedStream(6, 150, synth::DefaultLedSchedule(),
                                         &rng);
  ASSERT_TRUE(stream.ok());
  ExpectBatchMatchesPerRow(stream->front(), stream->back());
}

TEST(BatchEquivalenceTest, TabularCardioMobileHouse) {
  Rng rng(5);
  auto cardio_ref = synth::GenerateCardio(300, false, &rng);
  auto cardio_tgt = synth::GenerateCardio(150, true, &rng);
  ASSERT_TRUE(cardio_ref.ok() && cardio_tgt.ok());
  ExpectBatchMatchesPerRow(*cardio_ref, *cardio_tgt);

  auto mobile_ref = synth::GenerateMobile(300, false, &rng);
  auto mobile_tgt = synth::GenerateMobile(150, true, &rng);
  ASSERT_TRUE(mobile_ref.ok() && mobile_tgt.ok());
  ExpectBatchMatchesPerRow(*mobile_ref, *mobile_tgt);

  auto house_ref = synth::GenerateHouse(300, false, &rng);
  auto house_tgt = synth::GenerateHouse(150, true, &rng);
  ASSERT_TRUE(house_ref.ok() && house_tgt.ok());
  ExpectBatchMatchesPerRow(*house_ref, *house_tgt);
}

}  // namespace
}  // namespace ccs::core
