// Tests for the Jacobi eigensolver, Cholesky routines, and the Gram
// accumulator — including randomized property sweeps (TEST_P).

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "linalg/cholesky.h"
#include "linalg/gram.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"

namespace ccs::linalg {
namespace {

// Random symmetric matrix with controlled spectrum spread.
Matrix RandomSymmetric(size_t n, Rng* rng) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      double v = rng->Uniform(-2.0, 2.0);
      m.At(i, j) = v;
      m.At(j, i) = v;
    }
  }
  return m;
}

// Random SPD matrix: A = B^T B + eps I.
Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix b(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) b.At(i, j) = rng->Uniform(-1.0, 1.0);
  }
  Matrix a = b.Transposed().Multiply(b);
  for (size_t i = 0; i < n; ++i) a.At(i, i) += 0.1;
  return a;
}

// ------------------------- SymmetricEigen -----------------------------

TEST(EigenTest, DiagonalMatrixEigenvaluesAreDiagonal) {
  Matrix d{{3.0, 0.0}, {0.0, 1.0}};
  auto eig = SymmetricEigen(d);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->pairs[0].eigenvalue, 1.0, 1e-10);
  EXPECT_NEAR(eig->pairs[1].eigenvalue, 3.0, 1e-10);
}

TEST(EigenTest, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  auto eig = SymmetricEigen(m);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->pairs[0].eigenvalue, 1.0, 1e-10);
  EXPECT_NEAR(eig->pairs[1].eigenvalue, 3.0, 1e-10);
}

TEST(EigenTest, RejectsNonSquare) {
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

TEST(EigenTest, RejectsAsymmetric) {
  Matrix m{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_FALSE(SymmetricEigen(m).ok());
}

TEST(EigenTest, EmptyMatrixYieldsEmptyDecomposition) {
  auto eig = SymmetricEigen(Matrix());
  ASSERT_TRUE(eig.ok());
  EXPECT_TRUE(eig->pairs.empty());
}

TEST(EigenTest, IdentityHasAllOnesSpectrum) {
  auto eig = SymmetricEigen(Matrix::Identity(5));
  ASSERT_TRUE(eig.ok());
  for (const auto& p : eig->pairs) {
    EXPECT_NEAR(p.eigenvalue, 1.0, 1e-10);
  }
}

TEST(EigenTest, EigenvalueVectorAndMatrixAccessors) {
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  auto eig = SymmetricEigen(m);
  ASSERT_TRUE(eig.ok());
  Vector values = eig->Eigenvalues();
  EXPECT_EQ(values.size(), 2u);
  Matrix v = eig->EigenvectorMatrix();
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_EQ(v.cols(), 2u);
  // V^T M V should be diag(eigenvalues).
  Matrix diag = v.Transposed().Multiply(m).Multiply(v);
  EXPECT_NEAR(diag(0, 0), values[0], 1e-9);
  EXPECT_NEAR(diag(1, 1), values[1], 1e-9);
  EXPECT_NEAR(diag(0, 1), 0.0, 1e-9);
}

// Property sweep over sizes: A v = lambda v, orthonormality, trace.
class EigenPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EigenPropertyTest, EigenpairsSatisfyDefinition) {
  Rng rng(GetParam() * 7919 + 1);
  Matrix a = RandomSymmetric(GetParam(), &rng);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (const auto& p : eig->pairs) {
    Vector av = a.Multiply(p.eigenvector);
    Vector lv = p.eigenvector * p.eigenvalue;
    EXPECT_LT(Vector::MaxAbsDiff(av, lv), 1e-8)
        << "size=" << GetParam() << " lambda=" << p.eigenvalue;
  }
}

TEST_P(EigenPropertyTest, EigenvectorsAreOrthonormal) {
  Rng rng(GetParam() * 104729 + 1);
  Matrix a = RandomSymmetric(GetParam(), &rng);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (size_t i = 0; i < eig->pairs.size(); ++i) {
    for (size_t j = i; j < eig->pairs.size(); ++j) {
      double dot = eig->pairs[i].eigenvector.Dot(eig->pairs[j].eigenvector);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST_P(EigenPropertyTest, TraceEqualsEigenvalueSum) {
  Rng rng(GetParam() * 1299709 + 1);
  Matrix a = RandomSymmetric(GetParam(), &rng);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  double trace = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) trace += a.At(i, i);
  double sum = eig->Eigenvalues().Sum();
  EXPECT_NEAR(trace, sum, 1e-8 * std::max(1.0, std::abs(trace)));
}

TEST_P(EigenPropertyTest, EigenvaluesSortedAscending) {
  Rng rng(GetParam() * 15485863 + 1);
  Matrix a = RandomSymmetric(GetParam(), &rng);
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  for (size_t i = 1; i < eig->pairs.size(); ++i) {
    EXPECT_LE(eig->pairs[i - 1].eigenvalue, eig->pairs[i].eigenvalue);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40));

// ------------------------- Cholesky -----------------------------------

TEST(CholeskyTest, FactorReconstructs) {
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  Matrix reconstructed = l->Multiply(l->Transposed());
  EXPECT_TRUE(Matrix::AlmostEqual(reconstructed, a, 1e-10));
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix m{{1.0, 2.0}, {2.0, 1.0}};  // Eigenvalues 3 and -1.
  EXPECT_EQ(CholeskyFactor(m).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CholeskyTest, SolveSpdRecoversKnownSolution) {
  Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  Vector x_true{1.0, -2.0};
  Vector b = a.Multiply(x_true);
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_LT(Vector::MaxAbsDiff(*x, x_true), 1e-10);
}

TEST(CholeskyTest, InverseTimesOriginalIsIdentity) {
  Rng rng(31);
  Matrix a = RandomSpd(6, &rng);
  auto inv = InverseSpd(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_TRUE(
      Matrix::AlmostEqual(a.Multiply(*inv), Matrix::Identity(6), 1e-8));
}

TEST(CholeskyTest, LogDetMatchesEigenvalueSumOfLogs) {
  Rng rng(37);
  Matrix a = RandomSpd(5, &rng);
  auto logdet = LogDetSpd(a);
  ASSERT_TRUE(logdet.ok());
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  double expected = 0.0;
  for (const auto& p : eig->pairs) expected += std::log(p.eigenvalue);
  EXPECT_NEAR(*logdet, expected, 1e-8);
}

class CholeskyPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CholeskyPropertyTest, SolveResidualIsSmall) {
  Rng rng(GetParam() * 17 + 3);
  Matrix a = RandomSpd(GetParam(), &rng);
  Vector b(GetParam());
  for (size_t i = 0; i < b.size(); ++i) b[i] = rng.Uniform(-5.0, 5.0);
  auto x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  Vector residual = a.Multiply(*x) - b;
  EXPECT_LT(residual.Norm(), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

// ------------------------- GramAccumulator ----------------------------

TEST(GramTest, CountsAndMeans) {
  GramAccumulator gram(2);
  gram.Add(Vector{1.0, 10.0});
  gram.Add(Vector{3.0, 30.0});
  EXPECT_EQ(gram.count(), 2);
  Vector means = gram.Means();
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 20.0);
}

TEST(GramTest, GramMatchesExplicitXtX) {
  Rng rng(41);
  Matrix x(20, 3);
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = 0; j < 3; ++j) x.At(i, j) = rng.Uniform(-3.0, 3.0);
  }
  GramAccumulator gram(3);
  gram.AddMatrix(x);
  Matrix expected = x.Transposed().Multiply(x);
  EXPECT_TRUE(Matrix::AlmostEqual(gram.Gram(), expected, 1e-9));
}

TEST(GramTest, AugmentedGramFirstEntryIsCount) {
  GramAccumulator gram(2);
  gram.Add(Vector{5.0, 6.0});
  gram.Add(Vector{7.0, 8.0});
  gram.Add(Vector{9.0, 1.0});
  Matrix aug = gram.AugmentedGram();
  EXPECT_DOUBLE_EQ(aug(0, 0), 3.0);       // Count.
  EXPECT_DOUBLE_EQ(aug(0, 1), 21.0);      // Sum of attribute 0.
  EXPECT_DOUBLE_EQ(aug(1, 0), 21.0);      // Symmetric.
}

TEST(GramTest, CovarianceMatchesDirectComputation) {
  GramAccumulator gram(2);
  // Perfectly correlated columns: y = 2x.
  for (double v : {1.0, 2.0, 3.0, 4.0}) gram.Add(Vector{v, 2.0 * v});
  Matrix cov = gram.Covariance();
  EXPECT_NEAR(cov(0, 0), 1.25, 1e-12);
  EXPECT_NEAR(cov(1, 1), 5.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 2.5, 1e-12);
}

TEST(GramTest, MergeEqualsSinglePassOverUnion) {
  Rng rng(43);
  GramAccumulator whole(3), part1(3), part2(3);
  for (int i = 0; i < 50; ++i) {
    Vector t{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    whole.Add(t);
    if (i % 2 == 0) {
      part1.Add(t);
    } else {
      part2.Add(t);
    }
  }
  ASSERT_TRUE(part1.Merge(part2).ok());
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_TRUE(
      Matrix::AlmostEqual(part1.AugmentedGram(), whole.AugmentedGram(), 1e-9));
}

TEST(GramTest, MergeRejectsSchemaMismatch) {
  GramAccumulator a(2), b(3);
  EXPECT_FALSE(a.Merge(b).ok());
}

}  // namespace
}  // namespace ccs::linalg
