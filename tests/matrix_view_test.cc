// Equivalence and safety suite for the zero-materialization kernel
// layer: linalg::MatrixView, DataFrame::NumericViewFor, and the view
// entry points of the scoring and Gram-accumulation hot paths.
//
// The contract under test is bitwise: walking a (buffer, selection)
// view inside a kernel must produce the SAME DOUBLES as materializing a
// Matrix first — on owned frames, views, and views of views, at 1 and 4
// threads, and on data containing NaN and ±Inf cells (where any
// zero-skipping or term reordering shows up as divergent bits).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "core/constraint.h"
#include "core/projection.h"
#include "dataframe/dataframe.h"
#include "linalg/gram.h"
#include "linalg/matrix.h"
#include "linalg/matrix_view.h"

namespace ccs::linalg {
namespace {

using core::BoundedConstraint;
using core::DisjunctiveConstraint;
using core::Projection;
using core::SimpleConstraint;
using dataframe::DataFrame;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

bool BitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectMatricesBitwiseEqual(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      EXPECT_TRUE(BitsEqual(a.At(i, j), b.At(i, j))) << i << "," << j;
    }
  }
}

void ExpectVectorsBitwiseEqual(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(BitsEqual(a[i], b[i])) << "index " << i;
  }
}

// A numeric frame with a categorical switch column; when `non_finite`,
// NaN/±Inf cells are sprinkled across every numeric column.
DataFrame MakeFrame(size_t n, uint64_t seed, bool non_finite) {
  Rng rng(seed);
  std::vector<double> x(n), y(n), z(n);
  std::vector<std::string> tag(n);
  const char* tags[] = {"a", "b", "c"};
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-5.0, 5.0);
    y[i] = 1.5 * x[i] + rng.Gaussian(0.0, 0.5);
    z[i] = rng.Gaussian(2.0, 1.0);
    tag[i] = tags[rng.UniformInt(0, 2)];
    if (non_finite) {
      if (i % 11 == 3) x[i] = kNaN;
      if (i % 13 == 5) y[i] = kInf;
      if (i % 17 == 7) z[i] = -kInf;
      if (i % 19 == 11) x[i] = 0.0;  // Exact zeros next to non-finites.
    }
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  CCS_CHECK(df.AddCategoricalColumn("tag", std::move(tag)).ok());
  CCS_CHECK(df.AddNumericColumn("z", std::move(z)).ok());
  return df;
}

// A view-of-a-view of `df`: drop the first `skip` rows, keep every
// second remaining row.
DataFrame ViewOfView(const DataFrame& df, size_t skip) {
  DataFrame sliced = df.Slice(skip, df.num_rows());
  return sliced.Filter([](size_t i) { return i % 2 == 0; });
}

// A 2-conjunct constraint over {x, y, z} with hand-picked parameters
// (synthesis is not under test here, the kernels are).
SimpleConstraint MakeConstraint() {
  std::vector<std::string> names = {"x", "y", "z"};
  auto p1 = Projection::Create(names, Vector({0.5, -0.25, 1.0}));
  auto p2 = Projection::Create(names, Vector({0.0, 1.0, -0.5}));
  CCS_CHECK(p1.ok() && p2.ok());
  std::vector<BoundedConstraint> conjuncts;
  conjuncts.emplace_back(std::move(*p1), -1.0, 1.0, 0.1, 0.7, 0.6);
  conjuncts.emplace_back(std::move(*p2), -2.0, 2.0, -0.2, 1.3, 0.4);
  auto constraint = SimpleConstraint::Create(names, std::move(conjuncts));
  CCS_CHECK(constraint.ok());
  return *constraint;
}

// ------------------------- view construction ---------------------------

TEST(MatrixViewTest, MatchesNumericMatrixForOnOwnedViewAndViewOfView) {
  DataFrame owned = MakeFrame(120, 1, /*non_finite=*/true);
  std::vector<std::string> names = {"z", "x"};  // Reordered subset.
  for (const DataFrame& frame :
       {owned, owned.Gather({5, 5, 0, 119, 63}), ViewOfView(owned, 10)}) {
    auto view = frame.NumericViewFor(names);
    auto matrix = frame.NumericMatrixFor(names);
    ASSERT_TRUE(view.ok());
    ASSERT_TRUE(matrix.ok());
    EXPECT_EQ(view->rows(), frame.num_rows());
    EXPECT_EQ(view->cols(), names.size());
    ExpectMatricesBitwiseEqual(view->ToMatrix(), *matrix);
    for (size_t i = 0; i < view->rows(); ++i) {
      for (size_t j = 0; j < view->cols(); ++j) {
        EXPECT_TRUE(BitsEqual(view->At(i, j), matrix->At(i, j)));
      }
    }
  }
}

TEST(MatrixViewTest, RowSubsetOverloadMatchesNumericMatrixFor) {
  DataFrame owned = MakeFrame(90, 2, /*non_finite=*/true);
  DataFrame view_frame = ViewOfView(owned, 4);
  std::vector<std::string> names = {"y", "z", "x"};
  std::vector<size_t> rows = {7, 0, 7, 3, view_frame.num_rows() - 1};
  for (const DataFrame& frame : {owned, view_frame}) {
    auto view = frame.NumericViewFor(names, rows);
    auto matrix = frame.NumericMatrixFor(names, rows);
    ASSERT_TRUE(view.ok());
    ASSERT_TRUE(matrix.ok());
    EXPECT_EQ(view->rows(), rows.size());
    ExpectMatricesBitwiseEqual(view->ToMatrix(), *matrix);
  }
}

TEST(MatrixViewTest, ErrorsMirrorNumericMatrixFor) {
  DataFrame df = MakeFrame(20, 3, /*non_finite=*/false);
  EXPECT_EQ(df.NumericViewFor({"tag"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(df.NumericViewFor({"nope"}).status().code(),
            StatusCode::kNotFound);
  // Row bounds are validated up front, before any per-column work.
  std::vector<size_t> bad_rows = {0, df.num_rows()};
  EXPECT_EQ(df.NumericViewFor({"x"}, bad_rows).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(df.NumericMatrixFor({"x"}, bad_rows).status().code(),
            StatusCode::kOutOfRange);
}

TEST(MatrixViewTest, EmptySelections) {
  DataFrame df = MakeFrame(10, 4, /*non_finite=*/false);
  DataFrame empty = df.Gather({});
  auto view = empty.NumericViewFor({"x", "y", "z"});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->rows(), 0u);
  EXPECT_EQ(view->cols(), 3u);
  EXPECT_EQ(view->ToMatrix().rows(), 0u);
  std::vector<size_t> no_rows;
  auto subset = df.NumericViewFor({"x"}, no_rows);
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset->rows(), 0u);
}

// --------------------------- kernel equivalence ------------------------

TEST(MatrixViewTest, MultiplyRowRangeBitwiseMatchesMaterializedKernel) {
  DataFrame owned = MakeFrame(200, 5, /*non_finite=*/true);
  std::vector<std::string> names = {"x", "y", "z"};
  Matrix coef(3, 2);
  coef.At(0, 0) = 0.3;
  coef.At(1, 0) = kNaN;  // Non-finite coefficients too.
  coef.At(2, 0) = -1.2;
  coef.At(0, 1) = 0.0;
  coef.At(1, 1) = 2.0;
  coef.At(2, 1) = kInf;
  for (const DataFrame& frame : {owned, ViewOfView(owned, 7)}) {
    auto view = frame.NumericViewFor(names);
    ASSERT_TRUE(view.ok());
    Matrix materialized = view->ToMatrix();
    const size_t n = view->rows();
    const std::vector<std::pair<size_t, size_t>> ranges = {
        {0, n}, {0, n / 2}, {n / 3, n - 1}, {n, n}};
    for (const auto& [begin, end] : ranges) {
      ExpectMatricesBitwiseEqual(
          view->MultiplyRowRange(begin, end, coef),
          materialized.MultiplyRowRange(begin, end, coef));
    }
  }
}

// Regression for the Matrix::Multiply zero-skip: with a NaN/Inf in the
// RHS, skipping aik == 0 terms turns 0*NaN (= NaN) into 0, so Multiply
// and MultiplyRowRange disagreed. They must be bitwise identical.
TEST(MatrixMultiplyTest, MultiplyMatchesMultiplyRowRangeOnNonFinite) {
  Matrix a = {{0.0, 1.0}, {2.0, 0.0}, {0.0, 0.0}};
  Matrix b = {{kNaN, 1.0, kInf}, {2.0, -kInf, 0.5}};
  Matrix whole = a.Multiply(b);
  Matrix ranged = a.MultiplyRowRange(0, a.rows(), b);
  ExpectMatricesBitwiseEqual(whole, ranged);
  // The zero rows must propagate NaN (0*NaN and Inf + -Inf are NaN),
  // not report clean zeros.
  EXPECT_TRUE(std::isnan(whole.At(0, 0)));  // 0*NaN + 1*2
  EXPECT_TRUE(std::isnan(whole.At(2, 0)));
  EXPECT_TRUE(std::isnan(whole.At(2, 1)));
  EXPECT_TRUE(std::isnan(whole.At(2, 2)));
  // A deterministic non-NaN spot check: 0*1 + 1*(-Inf) is exactly -Inf.
  EXPECT_TRUE(BitsEqual(whole.At(0, 1), -kInf));
}

// ------------------------- Gram accumulation ---------------------------

TEST(GramViewTest, AddViewBitwiseMatchesAddMatrixAndPerRowAdd) {
  // > 2 shards of kGramShardRows so the parallel path really shards.
  const size_t n = 2 * kGramShardRows + 513;
  DataFrame owned = MakeFrame(n, 6, /*non_finite=*/true);
  std::vector<std::string> names = {"x", "y", "z"};
  for (const DataFrame& frame : {owned, ViewOfView(owned, 9)}) {
    auto view = frame.NumericViewFor(names);
    ASSERT_TRUE(view.ok());
    Matrix materialized = view->ToMatrix();
    for (size_t threads : {1u, 4u}) {
      common::SetDefaultThreadCount(threads);
      GramAccumulator by_row(names.size());
      for (size_t r = 0; r < materialized.rows(); ++r) {
        by_row.Add(materialized.Row(r));
      }
      GramAccumulator by_matrix(names.size());
      by_matrix.AddMatrix(materialized);
      GramAccumulator by_view(names.size());
      by_view.AddView(*view);
      EXPECT_EQ(by_view.count(), by_matrix.count());
      EXPECT_EQ(by_view.count(), by_row.count());
      ExpectMatricesBitwiseEqual(by_view.AugmentedGram(),
                                 by_matrix.AugmentedGram());
      ExpectMatricesBitwiseEqual(by_view.AugmentedGram(),
                                 by_row.AugmentedGram());
    }
  }
  common::SetDefaultThreadCount(0);
}

TEST(GramViewTest, PublicAccumulateRowsMatchesAdd) {
  DataFrame df = MakeFrame(64, 7, /*non_finite=*/true);
  auto view = df.NumericViewFor({"x", "y", "z"});
  ASSERT_TRUE(view.ok());
  Matrix materialized = view->ToMatrix();
  GramAccumulator from_matrix(3), from_view(3), by_row(3);
  from_matrix.AccumulateRows(materialized, 8, 40);
  from_view.AccumulateRows(*view, 8, 40);
  for (size_t r = 8; r < 40; ++r) by_row.Add(materialized.Row(r));
  ExpectMatricesBitwiseEqual(from_matrix.AugmentedGram(),
                             by_row.AugmentedGram());
  ExpectMatricesBitwiseEqual(from_view.AugmentedGram(),
                             by_row.AugmentedGram());
}

TEST(GramViewDeathTest, AccumulateRowsValidatesWidthAndRange) {
  Matrix wide(4, 5);
  GramAccumulator gram(3);  // Expects 3 attributes; wide has 5.
  EXPECT_DEATH(gram.AccumulateRows(wide, 0, wide.rows()), "CHECK failed");
  Matrix ok(4, 3);
  EXPECT_DEATH(gram.AccumulateRows(ok, 0, ok.rows() + 1), "CHECK failed");
  DataFrame df = MakeFrame(8, 8, /*non_finite=*/false);
  auto view = df.NumericViewFor({"x", "y"});
  ASSERT_TRUE(view.ok());
  EXPECT_DEATH(gram.AccumulateRows(*view, 0, view->rows()), "CHECK failed");
}

// ------------------- scoring: per-row vs batch vs view -----------------

TEST(ViewScoringTest, PerRowBatchAndViewKernelsBitwiseAgreeOnNonFinite) {
  SimpleConstraint constraint = MakeConstraint();
  DataFrame owned = MakeFrame(300, 9, /*non_finite=*/true);
  for (const DataFrame& frame :
       {owned, owned.Gather({17, 3, 3, 250, 299, 0}), ViewOfView(owned, 5)}) {
    auto view = frame.NumericViewFor(constraint.attribute_names());
    ASSERT_TRUE(view.ok());
    Matrix materialized = view->ToMatrix();
    for (size_t threads : {1u, 4u}) {
      common::SetDefaultThreadCount(threads);
      // Per-row reference semantics.
      Vector per_row(frame.num_rows());
      for (size_t r = 0; r < frame.num_rows(); ++r) {
        auto v = constraint.Violation(frame, r);
        ASSERT_TRUE(v.ok());
        per_row[r] = *v;
      }
      // Batched kernel over a materialized matrix.
      Vector batch = constraint.ViolationAllAligned(materialized);
      // Batched kernel walking the view (and the DataFrame entry point).
      Vector via_view = constraint.ViolationAllAligned(*view);
      auto via_frame = constraint.ViolationAll(frame);
      ASSERT_TRUE(via_frame.ok());
      ExpectVectorsBitwiseEqual(batch, per_row);
      ExpectVectorsBitwiseEqual(via_view, per_row);
      ExpectVectorsBitwiseEqual(*via_frame, per_row);
    }
  }
  common::SetDefaultThreadCount(0);
}

// --------------------------- derived columns ---------------------------

using dataframe::ColumnExpr;

// Independent reference semantics for a derived cell: the same IEEE
// operation sequence as the Eval*Column kernels (ascending k,
// multiply-then-add, no reciprocal trick), computed through the public
// per-cell accessors. On data with at most one NaN operand per term the
// bits are fully determined, so this cross-checks the kernels without
// being compiled from the same code.
double ManualExprCell(const DataFrame& df, const ColumnExpr& e, size_t r) {
  auto cell = [&](const std::string& name) {
    return df.NumericValue(r, name).value();
  };
  switch (e.op) {
    case ColumnOp::kSource:
      return cell(e.inputs[0]);
    case ColumnOp::kScale:
      return (cell(e.inputs[0]) - e.shift) / e.divide;
    case ColumnOp::kProduct:
      return cell(e.inputs[0]) * cell(e.inputs[1]);
    case ColumnOp::kCombine: {
      double acc = 0.0;
      for (size_t k = 0; k < e.inputs.size(); ++k) {
        acc += cell(e.inputs[k]) * (*e.weights)[k];
      }
      return acc;
    }
  }
  return 0.0;
}

TEST(DerivedColumnTest, DerivedCellsBitwiseMatchManualEvaluation) {
  // n > 256 so ToMatrix/At cover more than one consumer gather block.
  DataFrame owned = MakeFrame(300, 11, /*non_finite=*/true);
  const std::vector<double> weights = {0.5, -2.0, 0.125};
  const std::vector<ColumnExpr> exprs = {
      ColumnExpr::Source("z"),
      ColumnExpr::Scale("x", 1.25, 2.5),
      ColumnExpr::Product("x", "y"),
      ColumnExpr::Product("x", "x"),  // Square: both inputs share a cell.
      ColumnExpr::Combine({"x", "y", "z"}, &weights)};
  for (const DataFrame& frame :
       {owned, owned.Gather({5, 5, 0, 299, 63}), ViewOfView(owned, 10)}) {
    auto view = frame.DerivedViewFor(exprs);
    ASSERT_TRUE(view.ok()) << view.status();
    ASSERT_EQ(view->rows(), frame.num_rows());
    ASSERT_EQ(view->cols(), exprs.size());
    Matrix gathered = view->ToMatrix();
    for (size_t j = 0; j < exprs.size(); ++j) {
      std::vector<double> column(view->rows());
      view->MaterializeColumn(j, column.data());
      for (size_t i = 0; i < view->rows(); ++i) {
        double manual = ManualExprCell(frame, exprs[j], i);
        EXPECT_TRUE(BitsEqual(view->At(i, j), manual)) << i << "," << j;
        EXPECT_TRUE(BitsEqual(gathered.At(i, j), manual)) << i << "," << j;
        EXPECT_TRUE(BitsEqual(column[i], manual)) << i << "," << j;
      }
    }
  }
}

TEST(DerivedColumnTest, RowSubsetOverloadMatchesFullView) {
  DataFrame owned = MakeFrame(90, 12, /*non_finite=*/true);
  DataFrame view_frame = ViewOfView(owned, 4);
  const std::vector<double> weights = {-1.0, 4.0};
  const std::vector<ColumnExpr> exprs = {
      ColumnExpr::Scale("y", -0.5, 3.0), ColumnExpr::Product("y", "z"),
      ColumnExpr::Combine({"z", "x"}, &weights)};
  for (const DataFrame& frame : {owned, view_frame}) {
    std::vector<size_t> rows = {7, 0, 7, 3, frame.num_rows() - 1};
    auto full = frame.DerivedViewFor(exprs);
    auto subset = frame.DerivedViewFor(exprs, rows);
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(subset.ok());
    ASSERT_EQ(subset->rows(), rows.size());
    Matrix gathered = subset->ToMatrix();
    for (size_t t = 0; t < rows.size(); ++t) {
      for (size_t j = 0; j < exprs.size(); ++j) {
        EXPECT_TRUE(BitsEqual(subset->At(t, j), full->At(rows[t], j)));
        EXPECT_TRUE(BitsEqual(gathered.At(t, j), full->At(rows[t], j)));
      }
    }
  }
  DataFrame empty = owned.Gather({});
  auto view = empty.DerivedViewFor(exprs);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->rows(), 0u);
  EXPECT_EQ(view->ToMatrix().rows(), 0u);
}

TEST(DerivedColumnTest, ErrorsMirrorNumericViewFor) {
  DataFrame df = MakeFrame(20, 13, /*non_finite=*/false);
  EXPECT_EQ(df.DerivedViewFor({ColumnExpr::Source("tag")}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(df.DerivedViewFor({ColumnExpr::Product("x", "nope")})
                .status()
                .code(),
            StatusCode::kNotFound);
  std::vector<double> short_weights = {1.0};
  EXPECT_EQ(
      df.DerivedViewFor({ColumnExpr::Combine({"x", "y"}, &short_weights)})
          .status()
          .code(),
      StatusCode::kInvalidArgument);
  std::vector<size_t> bad_rows = {0, df.num_rows()};
  EXPECT_EQ(df.DerivedViewFor({ColumnExpr::Source("x")}, bad_rows)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(DerivedColumnTest, GramAddViewOnDerivedBitwiseMatchesMaterialized) {
  // > 2 shards of kGramShardRows so the parallel merge really shards,
  // and derived blocks cross many 256-row gather boundaries.
  const size_t n = 2 * kGramShardRows + 513;
  DataFrame owned = MakeFrame(n, 14, /*non_finite=*/true);
  const std::vector<double> weights = {1.0, -0.5, 3.0};
  const std::vector<ColumnExpr> exprs = {
      ColumnExpr::Source("x"), ColumnExpr::Product("x", "y"),
      ColumnExpr::Scale("z", 2.0, 1.5),
      ColumnExpr::Combine({"x", "y", "z"}, &weights)};
  for (const DataFrame& frame : {owned, ViewOfView(owned, 9)}) {
    auto view = frame.DerivedViewFor(exprs);
    ASSERT_TRUE(view.ok());
    Matrix materialized = view->ToMatrix();
    for (size_t threads : {1u, 4u}) {
      common::SetDefaultThreadCount(threads);
      GramAccumulator by_matrix(exprs.size());
      by_matrix.AddMatrix(materialized);
      GramAccumulator by_view(exprs.size());
      by_view.AddView(*view);
      EXPECT_EQ(by_view.count(), by_matrix.count());
      ExpectMatricesBitwiseEqual(by_view.AugmentedGram(),
                                 by_matrix.AugmentedGram());
    }
  }
  common::SetDefaultThreadCount(0);
}

TEST(DerivedColumnTest, ScoringWalksDerivedViewsBitwiseOnNonFinite) {
  SimpleConstraint constraint = MakeConstraint();  // Over 3 attributes.
  DataFrame owned = MakeFrame(300, 15, /*non_finite=*/true);
  const std::vector<ColumnExpr> exprs = {ColumnExpr::Scale("x", 0.5, 2.0),
                                         ColumnExpr::Product("y", "z"),
                                         ColumnExpr::Source("z")};
  for (const DataFrame& frame : {owned, ViewOfView(owned, 5)}) {
    auto view = frame.DerivedViewFor(exprs);
    ASSERT_TRUE(view.ok());
    Matrix materialized = view->ToMatrix();
    for (size_t threads : {1u, 4u}) {
      common::SetDefaultThreadCount(threads);
      Vector batch = constraint.ViolationAllAligned(materialized);
      Vector lazy = constraint.ViolationAllAligned(*view);
      ExpectVectorsBitwiseEqual(lazy, batch);
    }
  }
  common::SetDefaultThreadCount(0);
}

TEST(ViewScoringTest, DisjunctiveRowSubsetViewsBitwiseMatchPerRow) {
  // Per-case scoring now walks NumericViewFor(names, rows) — prove the
  // row-subset views agree with per-row evaluation, non-finites and all.
  std::map<std::string, SimpleConstraint> cases;
  cases.emplace("a", MakeConstraint());
  cases.emplace("b", MakeConstraint());  // "c" unseen => violation 1.
  DisjunctiveConstraint disj("tag", std::move(cases));
  DataFrame owned = MakeFrame(240, 10, /*non_finite=*/true);
  for (const DataFrame& frame : {owned, ViewOfView(owned, 3)}) {
    for (size_t threads : {1u, 4u}) {
      common::SetDefaultThreadCount(threads);
      auto all = disj.ViolationAll(frame);
      ASSERT_TRUE(all.ok());
      for (size_t r = 0; r < frame.num_rows(); ++r) {
        auto v = disj.Violation(frame, r);
        ASSERT_TRUE(v.ok());
        EXPECT_TRUE(BitsEqual((*all)[r], *v)) << "row " << r;
      }
    }
  }
  common::SetDefaultThreadCount(0);
}

}  // namespace
}  // namespace ccs::linalg
