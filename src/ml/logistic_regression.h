// Multinomial (softmax) logistic regression trained by gradient descent.
//
// The HAR case study (§6.1) trains a logistic-regression person-ID
// classifier on sedentary activity data; this is that model class.

#ifndef CCS_ML_LOGISTIC_REGRESSION_H_
#define CCS_ML_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "ml/scaler.h"

namespace ccs::ml {

/// Training options.
struct LogisticRegressionOptions {
  int max_iterations = 300;
  double learning_rate = 0.5;
  double l2_penalty = 1e-4;
  /// Stop when the max-abs gradient entry falls below this.
  double gradient_tolerance = 1e-5;
  /// Standardize features internally (strongly recommended; raw sensor
  /// scales differ by orders of magnitude).
  bool standardize = true;
};

/// A fitted multiclass classifier with string class labels.
class LogisticRegression {
 public:
  /// Fits on features X (n x m) and labels (size n). Classes are the
  /// distinct labels in first-appearance order.
  static StatusOr<LogisticRegression> Fit(
      const linalg::Matrix& x, const std::vector<std::string>& labels,
      const LogisticRegressionOptions& options = LogisticRegressionOptions());

  /// Class-probability vector (softmax) for one tuple.
  StatusOr<linalg::Vector> PredictProba(const linalg::Vector& x) const;

  /// Most likely class label for one tuple.
  StatusOr<std::string> Predict(const linalg::Vector& x) const;

  /// Predicted labels for every row of X.
  StatusOr<std::vector<std::string>> PredictAll(const linalg::Matrix& x) const;

  const std::vector<std::string>& classes() const { return classes_; }

 private:
  LogisticRegression(linalg::Matrix weights, linalg::Vector biases,
                     std::vector<std::string> classes, StandardScaler scaler)
      : weights_(std::move(weights)),
        biases_(std::move(biases)),
        classes_(std::move(classes)),
        scaler_(std::move(scaler)) {}

  // weights_ is k x m (one row per class); biases_ has size k.
  linalg::Matrix weights_;
  linalg::Vector biases_;
  std::vector<std::string> classes_;
  StandardScaler scaler_;
};

}  // namespace ccs::ml

#endif  // CCS_ML_LOGISTIC_REGRESSION_H_
