#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

// ccs-lint: allow-file(fp-accumulate): serial SGD baseline — gradient
// sums run in fixed row/epoch order on one thread, outside the parallel
// scoring path the determinism contract guards.

namespace ccs::ml {

namespace {

// Softmax over raw scores, numerically stabilized.
linalg::Vector Softmax(const linalg::Vector& scores) {
  double mx = scores.Max();
  linalg::Vector out(scores.size());
  double total = 0.0;
  for (size_t k = 0; k < scores.size(); ++k) {
    out[k] = std::exp(scores[k] - mx);
    total += out[k];
  }
  for (size_t k = 0; k < scores.size(); ++k) out[k] /= total;
  return out;
}

}  // namespace

StatusOr<LogisticRegression> LogisticRegression::Fit(
    const linalg::Matrix& x, const std::vector<std::string>& labels,
    const LogisticRegressionOptions& options) {
  const size_t n = x.rows();
  const size_t m = x.cols();
  if (n == 0 || labels.size() != n) {
    return Status::InvalidArgument("LogisticRegression::Fit: bad shapes");
  }

  // Map labels to class ids, first-appearance order.
  std::vector<std::string> classes;
  std::unordered_map<std::string, size_t> class_id;
  std::vector<size_t> y(n);
  for (size_t i = 0; i < n; ++i) {
    auto it = class_id.find(labels[i]);
    if (it == class_id.end()) {
      it = class_id.emplace(labels[i], classes.size()).first;
      classes.push_back(labels[i]);
    }
    y[i] = it->second;
  }
  const size_t k = classes.size();
  if (k < 2) {
    return Status::InvalidArgument(
        "LogisticRegression::Fit: need at least 2 classes");
  }

  CCS_ASSIGN_OR_RETURN(StandardScaler scaler, StandardScaler::Fit(x));
  linalg::Matrix xs = x;
  if (options.standardize) {
    CCS_ASSIGN_OR_RETURN(xs, scaler.Transform(x));
  }

  linalg::Matrix w(k, m);
  linalg::Vector b(k);
  const double inv_n = 1.0 / static_cast<double>(n);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    linalg::Matrix grad_w(k, m);
    linalg::Vector grad_b(k);
    // Full-batch gradient of the cross-entropy loss.
    for (size_t i = 0; i < n; ++i) {
      linalg::Vector xi = xs.Row(i);
      linalg::Vector scores(k);
      for (size_t c = 0; c < k; ++c) scores[c] = w.Row(c).Dot(xi) + b[c];
      linalg::Vector p = Softmax(scores);
      for (size_t c = 0; c < k; ++c) {
        double err = p[c] - (y[i] == c ? 1.0 : 0.0);
        grad_b[c] += err * inv_n;
        for (size_t j = 0; j < m; ++j) {
          grad_w.At(c, j) += err * xi[j] * inv_n;
        }
      }
    }
    double max_grad = 0.0;
    for (size_t c = 0; c < k; ++c) {
      max_grad = std::max(max_grad, std::abs(grad_b[c]));
      for (size_t j = 0; j < m; ++j) {
        grad_w.At(c, j) += options.l2_penalty * w.At(c, j);
        max_grad = std::max(max_grad, std::abs(grad_w.At(c, j)));
        w.At(c, j) -= options.learning_rate * grad_w.At(c, j);
      }
      b[c] -= options.learning_rate * grad_b[c];
    }
    if (max_grad < options.gradient_tolerance) break;
  }

  if (!options.standardize) {
    // Replace the fitted scaler with an identity transform.
    linalg::Matrix identity_basis(1, m);
    for (size_t j = 0; j < m; ++j) identity_basis.At(0, j) = 0.0;
    // A scaler fit on a zero row has mean 0 and stddev 1 for all columns.
    CCS_ASSIGN_OR_RETURN(scaler, StandardScaler::Fit(identity_basis));
  }
  return LogisticRegression(std::move(w), std::move(b), std::move(classes),
                            std::move(scaler));
}

StatusOr<linalg::Vector> LogisticRegression::PredictProba(
    const linalg::Vector& x) const {
  CCS_ASSIGN_OR_RETURN(linalg::Vector xi, scaler_.Transform(x));
  linalg::Vector scores(classes_.size());
  for (size_t c = 0; c < classes_.size(); ++c) {
    scores[c] = weights_.Row(c).Dot(xi) + biases_[c];
  }
  return Softmax(scores);
}

StatusOr<std::string> LogisticRegression::Predict(
    const linalg::Vector& x) const {
  CCS_ASSIGN_OR_RETURN(linalg::Vector p, PredictProba(x));
  size_t best = 0;
  for (size_t c = 1; c < p.size(); ++c) {
    if (p[c] > p[best]) best = c;
  }
  return classes_[best];
}

StatusOr<std::vector<std::string>> LogisticRegression::PredictAll(
    const linalg::Matrix& x) const {
  std::vector<std::string> out;
  out.reserve(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) {
    CCS_ASSIGN_OR_RETURN(std::string label, Predict(x.Row(i)));
    out.push_back(std::move(label));
  }
  return out;
}

}  // namespace ccs::ml
