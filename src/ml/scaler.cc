#include "ml/scaler.h"

#include <cmath>

namespace ccs::ml {

StatusOr<StandardScaler> StandardScaler::Fit(const linalg::Matrix& data) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("StandardScaler::Fit: empty data");
  }
  const size_t m = data.cols();
  linalg::Vector means(m), stddevs(m);
  for (size_t j = 0; j < m; ++j) {
    linalg::Vector col = data.Col(j);
    means[j] = col.Mean();
    double sd = col.StdDev();
    stddevs[j] = (sd > 0.0) ? sd : 1.0;
  }
  return StandardScaler(std::move(means), std::move(stddevs));
}

StatusOr<linalg::Matrix> StandardScaler::Transform(
    const linalg::Matrix& data) const {
  if (data.cols() != means_.size()) {
    return Status::InvalidArgument("StandardScaler: width mismatch");
  }
  linalg::Matrix out = data;
  for (size_t i = 0; i < out.rows(); ++i) {
    for (size_t j = 0; j < out.cols(); ++j) {
      out.At(i, j) = (out.At(i, j) - means_[j]) / stddevs_[j];
    }
  }
  return out;
}

StatusOr<linalg::Vector> StandardScaler::Transform(
    const linalg::Vector& row) const {
  if (row.size() != means_.size()) {
    return Status::InvalidArgument("StandardScaler: width mismatch");
  }
  linalg::Vector out = row;
  for (size_t j = 0; j < out.size(); ++j) {
    out[j] = (out[j] - means_[j]) / stddevs_[j];
  }
  return out;
}

}  // namespace ccs::ml
