#include "ml/scaler.h"

#include <cmath>

namespace ccs::ml {

StatusOr<StandardScaler> StandardScaler::Fit(const linalg::Matrix& data) {
  if (data.rows() == 0) {
    return Status::InvalidArgument("StandardScaler::Fit: empty data");
  }
  const size_t m = data.cols();
  linalg::Vector means(m), stddevs(m);
  for (size_t j = 0; j < m; ++j) {
    linalg::Vector col = data.Col(j);
    means[j] = col.Mean();
    double sd = col.StdDev();
    stddevs[j] = (sd > 0.0) ? sd : 1.0;
  }
  return StandardScaler(std::move(means), std::move(stddevs));
}

StatusOr<linalg::Matrix> StandardScaler::Transform(
    const linalg::Matrix& data) const {
  if (data.cols() != means_.size()) {
    return Status::InvalidArgument("StandardScaler: width mismatch");
  }
  linalg::Matrix out = data;
  const size_t n = out.rows();
  const size_t m = out.cols();
  if (n == 0 || m == 0) return out;
  // Column-at-a-time through the shared scale kernel, striding down the
  // row-major storage — the same compiled loop the lazy TransformView
  // runs, so materialized and lazy scaling cannot diverge bitwise.
  for (size_t j = 0; j < m; ++j) {
    linalg::internal::EvalScaleColumn(data.data().data() + j, m,
                                      /*selection=*/nullptr,
                                      /*row_indices=*/nullptr, 0, n,
                                      means_[j], stddevs_[j], &out.At(0, j),
                                      m);
  }
  return out;
}

StatusOr<linalg::Vector> StandardScaler::Transform(
    const linalg::Vector& row) const {
  if (row.size() != means_.size()) {
    return Status::InvalidArgument("StandardScaler: width mismatch");
  }
  // One kernel call per element (each has its own mean/stddev): a row
  // is a height-1 slice of every column. Cold path — tuples, not
  // batches — so the per-call overhead is irrelevant next to keeping
  // one compiled copy of the transform.
  linalg::Vector out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    linalg::internal::EvalScaleColumn(&row.data()[j], 1,
                                      /*selection=*/nullptr,
                                      /*row_indices=*/nullptr, 0, 1,
                                      means_[j], stddevs_[j], &out[j], 1);
  }
  return out;
}

StatusOr<std::vector<dataframe::ColumnExpr>> StandardScaler::ScaleExprs(
    const std::vector<std::string>& names) const {
  if (names.size() != means_.size()) {
    return Status::InvalidArgument("StandardScaler: width mismatch");
  }
  std::vector<dataframe::ColumnExpr> exprs;
  exprs.reserve(names.size());
  for (size_t j = 0; j < names.size(); ++j) {
    exprs.push_back(
        dataframe::ColumnExpr::Scale(names[j], means_[j], stddevs_[j]));
  }
  return exprs;
}

StatusOr<linalg::MatrixView> StandardScaler::TransformView(
    const dataframe::DataFrame& df,
    const std::vector<std::string>& names) const {
  CCS_ASSIGN_OR_RETURN(std::vector<dataframe::ColumnExpr> exprs,
                       ScaleExprs(names));
  // The expressions bake buffer pointers and scale parameters into the
  // view; the view borrows only `df`'s storage, not `exprs`.
  return df.DerivedViewFor(exprs);
}

}  // namespace ccs::ml
