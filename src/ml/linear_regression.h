// Ordinary least squares / ridge regression via the normal equations.
//
// This is the model class the paper's TML case study trains (flight-delay
// prediction, §6.1) and the OLS comparator discussed in Appendix L.

#ifndef CCS_ML_LINEAR_REGRESSION_H_
#define CCS_ML_LINEAR_REGRESSION_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ccs::ml {

/// Options for linear-regression fitting.
struct LinearRegressionOptions {
  /// L2 penalty added to the normal-equation diagonal (not applied to the
  /// intercept). Also acts as a numerical safety net for collinear data;
  /// fitting retries with a small ridge if the plain system is singular.
  double l2_penalty = 0.0;
  /// Fit an intercept term.
  bool fit_intercept = true;
};

/// A fitted linear model y = w . x + b.
class LinearRegression {
 public:
  /// Fits on features X (n x m) and targets y (n). Requires n >= 1 and
  /// matching sizes.
  static StatusOr<LinearRegression> Fit(
      const linalg::Matrix& x, const linalg::Vector& y,
      const LinearRegressionOptions& options = LinearRegressionOptions());

  /// Predicts one tuple (size m).
  double Predict(const linalg::Vector& x) const;

  /// Predicts every row of X.
  linalg::Vector PredictAll(const linalg::Matrix& x) const;

  const linalg::Vector& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  LinearRegression(linalg::Vector weights, double intercept)
      : weights_(std::move(weights)), intercept_(intercept) {}

  linalg::Vector weights_;
  double intercept_;
};

}  // namespace ccs::ml

#endif  // CCS_ML_LINEAR_REGRESSION_H_
