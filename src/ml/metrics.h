// Evaluation metrics used by the paper's experiments.

#ifndef CCS_ML_METRICS_H_
#define CCS_ML_METRICS_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "linalg/vector.h"

namespace ccs::ml {

/// Mean absolute error (the regression metric of Fig. 4/5).
StatusOr<double> MeanAbsoluteError(const linalg::Vector& truth,
                                   const linalg::Vector& predicted);

/// Root mean squared error.
StatusOr<double> RootMeanSquaredError(const linalg::Vector& truth,
                                      const linalg::Vector& predicted);

/// Fraction of matching labels (the classification metric of Fig. 6).
StatusOr<double> Accuracy(const std::vector<std::string>& truth,
                          const std::vector<std::string>& predicted);

/// Per-tuple absolute errors |truth_i - predicted_i| (Fig. 5's y-axis).
StatusOr<linalg::Vector> AbsoluteErrors(const linalg::Vector& truth,
                                        const linalg::Vector& predicted);

}  // namespace ccs::ml

#endif  // CCS_ML_METRICS_H_
