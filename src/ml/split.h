// Train/test splitting of DataFrames.

#ifndef CCS_ML_SPLIT_H_
#define CCS_ML_SPLIT_H_

#include "common/random.h"
#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::ml {

/// A train/test pair.
struct Split {
  dataframe::DataFrame train;
  dataframe::DataFrame test;
};

/// Shuffles rows and splits with the given train fraction in (0, 1).
StatusOr<Split> TrainTestSplit(const dataframe::DataFrame& df,
                               double train_fraction, Rng* rng);

}  // namespace ccs::ml

#endif  // CCS_ML_SPLIT_H_
