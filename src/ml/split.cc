#include "ml/split.h"

namespace ccs::ml {

StatusOr<Split> TrainTestSplit(const dataframe::DataFrame& df,
                               double train_fraction, Rng* rng) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    return Status::InvalidArgument(
        "TrainTestSplit: train_fraction must be in (0,1)");
  }
  std::vector<size_t> perm = rng->Permutation(df.num_rows());
  size_t n_train =
      static_cast<size_t>(train_fraction * static_cast<double>(df.num_rows()));
  std::vector<size_t> train_idx(perm.begin(), perm.begin() + n_train);
  std::vector<size_t> test_idx(perm.begin() + n_train, perm.end());
  Split out;
  // Both halves are zero-copy views sharing df's column buffers (and
  // keeping them alive, so the Split may outlive df).
  out.train = df.Gather(train_idx);
  out.test = df.Gather(test_idx);
  return out;
}

}  // namespace ccs::ml
