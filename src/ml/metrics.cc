#include "ml/metrics.h"

#include <cmath>

// ccs-lint: allow-file(fp-accumulate): serial error-metric folds in
// prediction order; evaluation-only, no parallel twin.

namespace ccs::ml {

namespace {

Status CheckPair(size_t a, size_t b) {
  if (a != b) return Status::InvalidArgument("metrics: size mismatch");
  if (a == 0) return Status::InvalidArgument("metrics: empty input");
  return Status::OK();
}

}  // namespace

StatusOr<double> MeanAbsoluteError(const linalg::Vector& truth,
                                   const linalg::Vector& predicted) {
  CCS_RETURN_IF_ERROR(CheckPair(truth.size(), predicted.size()));
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    acc += std::abs(truth[i] - predicted[i]);
  }
  return acc / static_cast<double>(truth.size());
}

StatusOr<double> RootMeanSquaredError(const linalg::Vector& truth,
                                      const linalg::Vector& predicted) {
  CCS_RETURN_IF_ERROR(CheckPair(truth.size(), predicted.size()));
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) {
    double d = truth[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(truth.size()));
}

StatusOr<double> Accuracy(const std::vector<std::string>& truth,
                          const std::vector<std::string>& predicted) {
  CCS_RETURN_IF_ERROR(CheckPair(truth.size(), predicted.size()));
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

StatusOr<linalg::Vector> AbsoluteErrors(const linalg::Vector& truth,
                                        const linalg::Vector& predicted) {
  CCS_RETURN_IF_ERROR(CheckPair(truth.size(), predicted.size()));
  linalg::Vector out(truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    out[i] = std::abs(truth[i] - predicted[i]);
  }
  return out;
}

}  // namespace ccs::ml
