#include "ml/linear_regression.h"

#include "linalg/cholesky.h"
#include "linalg/gram.h"

// ccs-lint: allow-file(fp-accumulate): serial training baseline — the
// normal-equation sums run in fixed row order on one thread and are not
// part of the parallel scoring path the determinism contract guards.

namespace ccs::ml {

StatusOr<LinearRegression> LinearRegression::Fit(
    const linalg::Matrix& x, const linalg::Vector& y,
    const LinearRegressionOptions& options) {
  const size_t n = x.rows();
  const size_t m = x.cols();
  if (n == 0 || y.size() != n) {
    return Status::InvalidArgument("LinearRegression::Fit: bad shapes");
  }

  // Build the (augmented) normal equations A w = b with A = X'^T X',
  // b = X'^T y, where X' has a leading ones column iff fit_intercept.
  const size_t d = m + (options.fit_intercept ? 1 : 0);
  linalg::Matrix a(d, d);
  linalg::Vector b(d);
  for (size_t i = 0; i < n; ++i) {
    // Augmented row.
    linalg::Vector row(d);
    size_t off = 0;
    if (options.fit_intercept) {
      row[0] = 1.0;
      off = 1;
    }
    for (size_t j = 0; j < m; ++j) row[off + j] = x.At(i, j);
    for (size_t p = 0; p < d; ++p) {
      b[p] += row[p] * y[i];
      for (size_t q = p; q < d; ++q) {
        a.At(p, q) += row[p] * row[q];
        if (q != p) a.At(q, p) = a.At(p, q);
      }
    }
  }
  size_t first_feature = options.fit_intercept ? 1 : 0;
  for (size_t j = first_feature; j < d; ++j) {
    a.At(j, j) += options.l2_penalty;
  }

  auto solved = linalg::SolveSpd(a, b);
  if (!solved.ok()) {
    // Singular (collinear features): retry with a tiny ridge.
    for (size_t j = 0; j < d; ++j) a.At(j, j) += 1e-8 * (a.At(j, j) + 1.0);
    CCS_ASSIGN_OR_RETURN(linalg::Vector w2, linalg::SolveSpd(a, b));
    solved = w2;
  }
  linalg::Vector w = std::move(solved).value();

  double intercept = 0.0;
  linalg::Vector weights(m);
  size_t off = 0;
  if (options.fit_intercept) {
    intercept = w[0];
    off = 1;
  }
  for (size_t j = 0; j < m; ++j) weights[j] = w[off + j];
  return LinearRegression(std::move(weights), intercept);
}

double LinearRegression::Predict(const linalg::Vector& x) const {
  return weights_.Dot(x) + intercept_;
}

linalg::Vector LinearRegression::PredictAll(const linalg::Matrix& x) const {
  linalg::Vector out(x.rows());
  for (size_t i = 0; i < x.rows(); ++i) out[i] = Predict(x.Row(i));
  return out;
}

}  // namespace ccs::ml
