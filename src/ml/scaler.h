// Standard (z-score) feature scaling.

#ifndef CCS_ML_SCALER_H_
#define CCS_ML_SCALER_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ccs::ml {

/// Per-column standardization fit on a training matrix and applied to any
/// matrix with the same width. Constant columns scale to 0 (divisor 1).
class StandardScaler {
 public:
  /// Learns per-column mean and stddev from `data` (n x m, n >= 1).
  static StatusOr<StandardScaler> Fit(const linalg::Matrix& data);

  /// (x - mean) / stddev per column. Width must match the fit.
  StatusOr<linalg::Matrix> Transform(const linalg::Matrix& data) const;

  /// Transforms a single row vector.
  StatusOr<linalg::Vector> Transform(const linalg::Vector& row) const;

  const linalg::Vector& means() const { return means_; }
  const linalg::Vector& stddevs() const { return stddevs_; }

 private:
  StandardScaler(linalg::Vector means, linalg::Vector stddevs)
      : means_(std::move(means)), stddevs_(std::move(stddevs)) {}

  linalg::Vector means_;
  linalg::Vector stddevs_;
};

}  // namespace ccs::ml

#endif  // CCS_ML_SCALER_H_
