// Standard (z-score) feature scaling.

#ifndef CCS_ML_SCALER_H_
#define CCS_ML_SCALER_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "dataframe/dataframe.h"
#include "linalg/matrix.h"
#include "linalg/matrix_view.h"
#include "linalg/vector.h"

namespace ccs::ml {

/// Per-column standardization fit on a training matrix and applied to any
/// matrix with the same width. Constant columns scale to 0 (divisor 1).
///
/// Every transform — materialized matrix, single row, and the lazy
/// TransformView — funnels through the one compiled
/// linalg::internal::EvalScaleColumn kernel computing
/// (x - mean) / stddev, so all paths produce identical bits (see
/// docs/architecture.md, "Derived columns").
class StandardScaler {
 public:
  /// Learns per-column mean and stddev from `data` (n x m, n >= 1).
  static StatusOr<StandardScaler> Fit(const linalg::Matrix& data);

  /// (x - mean) / stddev per column. Width must match the fit.
  StatusOr<linalg::Matrix> Transform(const linalg::Matrix& data) const;

  /// Transforms a single row vector.
  StatusOr<linalg::Vector> Transform(const linalg::Vector& row) const;

  /// The transform as derived-column expressions over the named columns
  /// (names[j] scales by means()[j]/stddevs()[j]; the count must match
  /// the fit width). Feed to DataFrame::DerivedViewFor to compose with
  /// other derived columns.
  StatusOr<std::vector<dataframe::ColumnExpr>> ScaleExprs(
      const std::vector<std::string>& names) const;

  /// The scaled data as a *lazy* derived view over `df`'s named numeric
  /// columns — nothing materialized; cells are standardized by the
  /// shared kernel as consumers (Gram refresh, scoring) walk the view.
  /// The view borrows `df`'s buffers and must not outlive the frame.
  StatusOr<linalg::MatrixView> TransformView(
      const dataframe::DataFrame& df,
      const std::vector<std::string>& names) const;

  const linalg::Vector& means() const { return means_; }
  const linalg::Vector& stddevs() const { return stddevs_; }

 private:
  StandardScaler(linalg::Vector means, linalg::Vector stddevs)
      : means_(std::move(means)), stddevs_(std::move(stddevs)) {}

  linalg::Vector means_;
  linalg::Vector stddevs_;
};

}  // namespace ccs::ml

#endif  // CCS_ML_SCALER_H_
