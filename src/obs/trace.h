// Trace spans: RAII scopes recorded into bounded per-thread ring
// buffers, exported as Chrome trace-event JSON (chrome://tracing,
// https://ui.perfetto.dev).
//
// Lifecycle: instrumentation sites construct `ObsSpan` unconditionally;
// the span resolves to a no-op (one relaxed atomic load, no clock read)
// unless a run-level `ObsSession` is active. Exactly one session may be
// active at a time; tools create one around a run (`ccsynth monitor
// --trace`), collect, and export. Spans must close before the session
// is destroyed — instrumented code guarantees this by scoping spans
// strictly inside the work they time, closing them before any
// completion signal that could unblock the session owner.
//
// Determinism: spans observe timing, they never steer it. Recording is
// out-of-band by construction — the ring is append-only state no
// computation reads back — so scored output and golden gauntlet traces
// are bitwise identical with tracing on or off (enforced by
// tests/stream_test.cc and the gauntlet golden suite).

#ifndef CCS_OBS_TRACE_H_
#define CCS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace ccs::obs {

class ObsSession;

/// One closed span. `name` is copied (truncated) at record time so
/// callers may pass transient strings; `category` must be a string
/// literal (or otherwise outlive the session).
struct TraceEvent {
  char name[48];
  const char* category;
  uint64_t start_ns;  // NowNanos() at span open (absolute monotonic).
  uint64_t dur_ns;
  uint32_t tid;  // Session-local thread index (order of first span).
};

namespace internal {

/// Bounded ring of TraceEvents owned by one (session, thread) pair.
/// When full, the oldest event is overwritten and `dropped` counts it.
/// The per-ring mutex is effectively uncontended (one writer thread;
/// readers only at collection time) but keeps Collect-while-recording
/// TSan-clean.
class SpanRing {
 public:
  SpanRing(size_t capacity, uint32_t tid);

  void Record(const char* name, const char* category, uint64_t start_ns,
              uint64_t dur_ns) CCS_EXCLUDES(mu_);

  /// Appends this ring's events, oldest first, to *out.
  void CollectInto(std::vector<TraceEvent>* out) const CCS_EXCLUDES(mu_);

  uint64_t dropped() const CCS_EXCLUDES(mu_);
  uint32_t tid() const { return tid_; }

 private:
  const uint32_t tid_;
  mutable common::Mutex mu_;
  std::vector<TraceEvent> slots_ CCS_GUARDED_BY(mu_);
  size_t next_ CCS_GUARDED_BY(mu_) = 0;    // Next slot to write.
  size_t size_ CCS_GUARDED_BY(mu_) = 0;    // Events held (<= capacity).
  uint64_t dropped_ CCS_GUARDED_BY(mu_) = 0;
};

/// Ring for the calling thread in the active session, or nullptr when
/// no session is active. Cached thread_local, revalidated per session
/// via an epoch counter.
SpanRing* CurrentRing();

}  // namespace internal

/// Aggregate of all spans sharing a name (bench stage breakdowns).
struct SpanStats {
  uint64_t count = 0;
  uint64_t total_ns = 0;
};

/// A run-scoped trace recording. Construct to start capturing spans
/// process-wide, destroy to stop; at most one session may be active at
/// a time (checked). Collect/export may be called while spans are still
/// being recorded (heartbeats) or after quiescence (final dump).
class ObsSession {
 public:
  /// `ring_capacity` bounds events retained per thread; beyond it the
  /// oldest are overwritten (see dropped()).
  explicit ObsSession(size_t ring_capacity = 8192);
  ~ObsSession();
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// The active session, or nullptr. Relaxed load — this is the no-op
  /// fast path every ObsSpan takes when tracing is off.
  static ObsSession* Active();

  /// NowNanos() at construction; trace timestamps are exported relative
  /// to this.
  uint64_t start_ns() const { return start_ns_; }

  /// Session epoch (distinct per construction) for thread_local ring
  /// cache validation.
  uint64_t epoch() const { return epoch_; }

  /// Events overwritten across all rings so far.
  uint64_t dropped() const CCS_EXCLUDES(mu_);

  /// Snapshot of all recorded events, sorted by (start, tid).
  std::vector<TraceEvent> Collect() const CCS_EXCLUDES(mu_);

  /// Total duration and count per span name, over Collect().
  std::map<std::string, SpanStats> AggregateByName() const;

  /// Chrome trace-event JSON: {"traceEvents":[{"name","cat","ph":"X",
  /// "ts","dur","pid","tid"},...],"displayTimeUnit":"ms"} with ts/dur
  /// in microseconds relative to start_ns(). Load in chrome://tracing
  /// or https://ui.perfetto.dev.
  std::string ToChromeTraceJson() const;

  /// Writes ToChromeTraceJson() to `path`.
  Status WriteChromeTrace(const std::string& path) const;

  /// Ring for the calling thread, created on first use. Prefer
  /// internal::CurrentRing(), which caches.
  internal::SpanRing* RingForThisThread() CCS_EXCLUDES(mu_);

 private:
  const size_t ring_capacity_;
  const uint64_t epoch_;
  const uint64_t start_ns_;
  mutable common::Mutex mu_;
  std::vector<std::unique_ptr<internal::SpanRing>> rings_
      CCS_GUARDED_BY(mu_);
};

/// RAII span: times the enclosing scope into the active session's ring
/// for this thread. When no session is active, construction is one
/// relaxed atomic load and destruction is a branch — no clock reads, no
/// allocation. `name` must outlive the scope (it is copied into the
/// ring at close); `category` must be a string literal.
class ObsSpan {
 public:
  ObsSpan(const char* name, const char* category);
  ~ObsSpan();
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  internal::SpanRing* ring_;  // nullptr => inactive span.
  const char* name_;
  const char* category_;
  uint64_t start_ns_;
};

}  // namespace ccs::obs

#endif  // CCS_OBS_TRACE_H_
