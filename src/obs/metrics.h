// In-process metrics: counters, gauges, and fixed-boundary latency
// histograms behind a process-wide registry.
//
// Everything here is strictly out-of-band observability: metric values
// feed reports (`ccsynth monitor --metrics-json`, bench stage
// breakdowns, heartbeat lines) and never feed computation, so recording
// them cannot perturb the determinism contract (docs/architecture.md).
// This directory is also the only place in src/ allowed to read a wall
// clock — the `wall-clock` ccs_lint rule confines
// steady_clock/system_clock to src/obs/, and NowNanos() below is the
// sanctioned entry point for the few out-of-band consumers (elapsed
// time in PipelineStats, queue-wait histograms).
//
// Thread model: hot-path increments go to striped atomic shards (one
// per caller stripe, cache-line separated) so concurrent writers never
// serialize on a lock; reads sum the shards, yielding a value that is
// exact once writers quiesce and a consistent-enough approximation
// while they run. The registry's name->metric maps are guarded by an
// annotated common::Mutex; returned metric pointers are stable for the
// life of the process.

#ifndef CCS_OBS_METRICS_H_
#define CCS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ccs::obs {

/// Monotonic wall-clock read in nanoseconds (steady_clock under the
/// hood, confined to src/obs by the `wall-clock` lint rule). For
/// out-of-band measurement only — never let the result feed scores,
/// ordering, or any other computed output.
uint64_t NowNanos();

/// count / seconds, or 0 when the measurement is degenerate (no events,
/// a near-zero or non-finite elapsed time). Rates reported to users
/// must be 0 on tiny/empty streams, never inf or NaN.
double SafeRate(double count, double seconds);

namespace internal {
/// Stripe index of the calling thread (assigned round-robin on first
/// use), bounding contention on striped metric shards.
size_t StripeIndex();
constexpr size_t kStripes = 16;
}  // namespace internal

/// Monotonically increasing event count. Striped: Add touches only the
/// calling thread's stripe; value() sums all stripes.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    shards_[internal::StripeIndex()].v.fetch_add(delta,
                                                 std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over stripes: exact once writers quiesce.
  uint64_t value() const;

  /// Zeroes every stripe. For tests and bench phase deltas; racing
  /// writers may leave a partial residue.
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[internal::kStripes];
};

/// Last-write-wins instantaneous value, with a monotone max variant for
/// high-water marks (queue peaks, buffer capacities).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (never lowers it).
  void UpdateMax(int64_t v);
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time view of a Histogram (see Snapshot()).
struct HistogramSnapshot {
  /// Ascending finite bucket upper bounds; counts has one extra
  /// trailing overflow bucket for values above the last bound.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t total_count = 0;
  double sum = 0.0;

  /// Percentile estimate by linear interpolation inside the owning
  /// bucket (an empty histogram reports 0; values in the overflow
  /// bucket clamp to the last finite bound). `p` in [0, 100].
  double Percentile(double p) const;
  double p50() const { return Percentile(50.0); }
  double p95() const { return Percentile(95.0); }
  double p99() const { return Percentile(99.0); }
};

/// Fixed-boundary histogram with striped atomic buckets. Observe is
/// lock-free and wait-free apart from the sum's CAS loop.
class Histogram {
 public:
  /// `bounds` are ascending finite bucket upper bounds; an implicit
  /// overflow bucket catches everything above the last one. An empty
  /// vector selects DefaultLatencyBoundsUs().
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// 1us .. 10s in a 1-2-5 progression — the default scale for the
  /// queue-wait and stage-latency histograms (values in microseconds).
  static std::vector<double> DefaultLatencyBoundsUs();

  /// Records one sample. Values below the first bound land in bucket 0,
  /// values above the last in the overflow bucket; NaN counts in the
  /// overflow bucket and is excluded from sum.
  void Observe(double value);

  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }
  void Reset();

 private:
  struct alignas(64) Shard {
    // bounds_.size() + 1 buckets (trailing overflow).
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<double> sum{0.0};
  };

  std::vector<double> bounds_;
  std::vector<Shard> shards_;
};

/// Process-wide metric registry. Get* interns by name and returns a
/// stable pointer (the same name always yields the same object);
/// counters, gauges, and histograms live in separate namespaces.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name) CCS_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) CCS_EXCLUDES(mu_);
  /// `bounds` applies only when the histogram is first created; an
  /// empty vector selects Histogram::DefaultLatencyBoundsUs().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {}) CCS_EXCLUDES(mu_);

  /// One-line JSON dump of every registered metric, names sorted:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,
  /// p50,p95,p99,buckets:[[bound,count],...]}}} — the payload behind
  /// `ccsynth monitor --metrics-json`.
  std::string ToJson() const CCS_EXCLUDES(mu_);

  /// Zeroes every metric's value (objects and pointers stay valid).
  void Reset() CCS_EXCLUDES(mu_);

 private:
  Registry() = default;

  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      CCS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ CCS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      CCS_GUARDED_BY(mu_);
};

}  // namespace ccs::obs

#endif  // CCS_OBS_METRICS_H_
