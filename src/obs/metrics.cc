#include "obs/metrics.h"

// The only translation unit in src/ allowed to read the wall clock
// (ccs_lint rule `wall-clock`): every out-of-band timestamp funnels
// through NowNanos so clocks can never leak into kernels.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"

namespace ccs::obs {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double SafeRate(double count, double seconds) {
  if (!(count > 0.0)) return 0.0;
  if (!std::isfinite(seconds) || seconds < 1e-9) return 0.0;
  return count / seconds;
}

namespace internal {

size_t StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

}  // namespace internal

uint64_t Counter::value() const {
  uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

void Gauge::UpdateMax(int64_t v) {
  int64_t cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double HistogramSnapshot::Percentile(double p) const {
  if (total_count == 0 || counts.empty()) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  // 1-based rank of the sample the percentile names.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(total_count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts[b];
    if (cumulative < rank) continue;
    if (bounds.empty()) return 0.0;
    if (b >= bounds.size()) return bounds.back();  // Overflow: clamp.
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double upper = bounds[b];
    const double frac = static_cast<double>(rank - before) /
                        static_cast<double>(counts[b]);
    return lower + (upper - lower) * frac;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBoundsUs() : std::move(bounds)),
      shards_(internal::kStripes) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CCS_CHECK(bounds_[i - 1] < bounds_[i])
        << "Histogram bounds must be ascending";
  }
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      s.buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  return {1,    2,    5,    10,   20,   50,   100,  200,  500,  1e3, 2e3,
          5e3,  1e4,  2e4,  5e4,  1e5,  2e5,  5e5,  1e6,  2e6,  5e6, 1e7};
}

void Histogram::Observe(double value) {
  size_t bucket;
  if (std::isnan(value)) {
    bucket = bounds_.size();  // Overflow bucket; excluded from sum.
  } else {
    bucket = static_cast<size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
  }
  Shard& shard = shards_[internal::StripeIndex()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  if (!std::isnan(value)) {
    double cur = shard.sum.load(std::memory_order_relaxed);
    while (!shard.sum.compare_exchange_weak(cur, cur + value,
                                            std::memory_order_relaxed)) {
    }
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      snap.counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.total_count += c;
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

Registry& Registry::Global() {
  // Leaked on purpose: metric pointers handed out must stay valid for
  // the life of the process (still reachable, so LSan stays quiet).
  static Registry* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name) {
  common::MutexLock lock(&mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  common::MutexLock lock(&mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  common::MutexLock lock(&mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

namespace {

// Minimal JSON string escape: metric names are dotted identifiers, but
// stay safe for anything a caller interns.
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan.
  return FormatDouble(v);
}

}  // namespace

std::string Registry::ToJson() const {
  common::MutexLock lock(&mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(name) + "\":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + EscapeJson(name) + "\":" + std::to_string(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    HistogramSnapshot snap = histogram->Snapshot();
    out += "\"" + EscapeJson(name) + "\":{\"count\":" +
           std::to_string(snap.total_count) +
           ",\"sum\":" + JsonNumber(snap.sum) +
           ",\"p50\":" + JsonNumber(snap.p50()) +
           ",\"p95\":" + JsonNumber(snap.p95()) +
           ",\"p99\":" + JsonNumber(snap.p99()) + ",\"buckets\":[";
    bool first_bucket = true;
    for (size_t b = 0; b < snap.counts.size(); ++b) {
      if (snap.counts[b] == 0) continue;  // Sparse: zero buckets elided.
      if (!first_bucket) out += ",";
      first_bucket = false;
      const bool overflow = b >= snap.bounds.size();
      out += "[" + (overflow ? std::string("\"+Inf\"")
                             : JsonNumber(snap.bounds[b])) +
             "," + std::to_string(snap.counts[b]) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::Reset() {
  common::MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace ccs::obs
