#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace ccs::obs {

namespace {

// The active session, written only by ObsSession's ctor/dtor. Relaxed
// ordering suffices: the session publishes no data through this pointer
// that spans read unsynchronized (rings are created under the session
// mutex on first use per thread).
std::atomic<ObsSession*> g_active{nullptr};

// Bumped per session so thread_local ring caches self-invalidate.
std::atomic<uint64_t> g_epoch{0};

}  // namespace

namespace internal {

SpanRing::SpanRing(size_t capacity, uint32_t tid)
    : tid_(tid), slots_(capacity == 0 ? 1 : capacity) {}

void SpanRing::Record(const char* name, const char* category,
                      uint64_t start_ns, uint64_t dur_ns) {
  common::MutexLock lock(&mu_);
  TraceEvent& ev = slots_[next_];
  std::strncpy(ev.name, name, sizeof(ev.name) - 1);
  ev.name[sizeof(ev.name) - 1] = '\0';
  ev.category = category;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.tid = tid_;
  next_ = (next_ + 1) % slots_.size();
  if (size_ < slots_.size()) {
    ++size_;
  } else {
    ++dropped_;  // Overwrote the oldest event.
  }
}

void SpanRing::CollectInto(std::vector<TraceEvent>* out) const {
  common::MutexLock lock(&mu_);
  // Oldest event sits at next_ once the ring has wrapped.
  const size_t first = size_ < slots_.size() ? 0 : next_;
  for (size_t i = 0; i < size_; ++i) {
    out->push_back(slots_[(first + i) % slots_.size()]);
  }
}

uint64_t SpanRing::dropped() const {
  common::MutexLock lock(&mu_);
  return dropped_;
}

SpanRing* CurrentRing() {
  ObsSession* session = ObsSession::Active();
  if (session == nullptr) return nullptr;
  struct RingCache {
    uint64_t epoch = 0;
    SpanRing* ring = nullptr;
  };
  thread_local RingCache cache;
  if (cache.epoch != session->epoch()) {
    cache.ring = session->RingForThisThread();
    cache.epoch = session->epoch();
  }
  return cache.ring;
}

}  // namespace internal

ObsSession::ObsSession(size_t ring_capacity)
    : ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_(g_epoch.fetch_add(1, std::memory_order_relaxed) + 1),
      start_ns_(NowNanos()) {
  ObsSession* expected = nullptr;
  CCS_CHECK(g_active.compare_exchange_strong(expected, this,
                                             std::memory_order_release))
      << "Only one ObsSession may be active at a time";
}

ObsSession::~ObsSession() {
  g_active.store(nullptr, std::memory_order_release);
  // Spans close before the signals that unblock the session owner
  // (pool spans end before chunks_done, stage spans before thread
  // join), so once control reaches here no thread holds a ring pointer
  // from this session; thread_local caches self-invalidate via epoch.
}

ObsSession* ObsSession::Active() {
  return g_active.load(std::memory_order_relaxed);
}

uint64_t ObsSession::dropped() const {
  common::MutexLock lock(&mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->dropped();
  return total;
}

std::vector<TraceEvent> ObsSession::Collect() const {
  std::vector<TraceEvent> events;
  {
    common::MutexLock lock(&mu_);
    for (const auto& ring : rings_) ring->CollectInto(&events);
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return events;
}

std::map<std::string, SpanStats> ObsSession::AggregateByName() const {
  std::map<std::string, SpanStats> by_name;
  for (const TraceEvent& ev : Collect()) {
    SpanStats& stats = by_name[ev.name];
    ++stats.count;
    stats.total_ns += ev.dur_ns;
  }
  return by_name;
}

namespace {

std::string EscapeJson(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ObsSession::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : Collect()) {
    if (!first) out += ",";
    first = false;
    // ts/dur are microseconds relative to session start; Chrome's
    // renderer expects them as (possibly fractional) numbers.
    const double ts_us =
        static_cast<double>(ev.start_ns - start_ns_) / 1000.0;
    const double dur_us = static_cast<double>(ev.dur_ns) / 1000.0;
    out += "{\"name\":\"" + EscapeJson(ev.name) + "\",\"cat\":\"" +
           EscapeJson(ev.category) + "\",\"ph\":\"X\",\"ts\":" +
           FormatDouble(ts_us) + ",\"dur\":" + FormatDouble(dur_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(ev.tid) + "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status ObsSession::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open trace output: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return Status::IoError("short write to trace output: " + path);
  }
  return Status::OK();
}

internal::SpanRing* ObsSession::RingForThisThread() {
  common::MutexLock lock(&mu_);
  rings_.push_back(std::make_unique<internal::SpanRing>(
      ring_capacity_, static_cast<uint32_t>(rings_.size())));
  return rings_.back().get();
}

ObsSpan::ObsSpan(const char* name, const char* category)
    : ring_(internal::CurrentRing()),
      name_(name),
      category_(category),
      start_ns_(ring_ == nullptr ? 0 : NowNanos()) {}

ObsSpan::~ObsSpan() {
  if (ring_ == nullptr) return;
  ring_->Record(name_, category_, start_ns_, NowNanos() - start_ns_);
}

}  // namespace ccs::obs
