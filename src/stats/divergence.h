// Divergence measures between discrete densities.
//
// The CD baseline [63] scores drift per principal component using either
// max-KL divergence (CD-MKL) or the complement of the intersection area
// (CD-Area); both operate on binned densities.

#ifndef CCS_STATS_DIVERGENCE_H_
#define CCS_STATS_DIVERGENCE_H_

#include <vector>

#include "common/statusor.h"

namespace ccs::stats {

/// KL(p || q) = sum p_i log(p_i / q_i). Requires equal sizes; bins with
/// p_i = 0 contribute 0; q must be strictly positive wherever p is (use
/// Laplace-smoothed densities).
StatusOr<double> KlDivergence(const std::vector<double>& p,
                              const std::vector<double>& q);

/// max(KL(p||q), KL(q||p)) — the symmetric divergence used by CD-MKL.
StatusOr<double> MaxKlDivergence(const std::vector<double>& p,
                                 const std::vector<double>& q);

/// sum_i min(p_i, q_i), in [0,1] for normalized densities. CD-Area uses
/// 1 - intersection as the drift magnitude.
StatusOr<double> IntersectionArea(const std::vector<double>& p,
                                  const std::vector<double>& q);

/// Total variation distance: 0.5 * sum |p_i - q_i|, in [0,1].
StatusOr<double> TotalVariation(const std::vector<double>& p,
                                const std::vector<double>& q);

/// Hellinger distance, in [0,1].
StatusOr<double> Hellinger(const std::vector<double>& p,
                           const std::vector<double>& q);

}  // namespace ccs::stats

#endif  // CCS_STATS_DIVERGENCE_H_
