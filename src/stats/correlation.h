// Pearson correlation (the rho of Definition 9) and a large-sample p-value.

#ifndef CCS_STATS_CORRELATION_H_
#define CCS_STATS_CORRELATION_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ccs::stats {

/// Pearson correlation coefficient of two equally-sized samples.
/// Returns 0 when either sample has zero variance (the paper's projections
/// treat uncorrelated and degenerate alike for combination purposes).
StatusOr<double> PearsonCorrelation(const linalg::Vector& x,
                                    const linalg::Vector& y);

/// Pearson correlation plus a two-sided p-value from the large-sample
/// normal approximation of the t statistic (adequate at the sample sizes
/// the experiments use; reported alongside pcc as in §6.1).
struct CorrelationTest {
  double pcc = 0.0;
  double p_value = 1.0;
};
StatusOr<CorrelationTest> PearsonTest(const linalg::Vector& x,
                                      const linalg::Vector& y);

/// m x m correlation matrix of the columns of `data` (n x m).
StatusOr<linalg::Matrix> CorrelationMatrix(const linalg::Matrix& data);

}  // namespace ccs::stats

#endif  // CCS_STATS_CORRELATION_H_
