#include "stats/divergence.h"

#include <algorithm>
#include <cmath>

// ccs-lint: allow-file(fp-accumulate): serial folds over the fixed
// histogram bin order; single compiled path, never run concurrently.

namespace ccs::stats {

namespace {

Status CheckSizes(const std::vector<double>& p, const std::vector<double>& q) {
  if (p.size() != q.size()) {
    return Status::InvalidArgument("divergence: size mismatch");
  }
  if (p.empty()) {
    return Status::InvalidArgument("divergence: empty densities");
  }
  return Status::OK();
}

}  // namespace

StatusOr<double> KlDivergence(const std::vector<double>& p,
                              const std::vector<double>& q) {
  CCS_RETURN_IF_ERROR(CheckSizes(p, q));
  double acc = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) {
      return Status::InvalidArgument(
          "KlDivergence: q has zero mass where p does not (smooth first)");
    }
    acc += p[i] * std::log(p[i] / q[i]);
  }
  return acc;
}

StatusOr<double> MaxKlDivergence(const std::vector<double>& p,
                                 const std::vector<double>& q) {
  CCS_ASSIGN_OR_RETURN(double pq, KlDivergence(p, q));
  CCS_ASSIGN_OR_RETURN(double qp, KlDivergence(q, p));
  return std::max(pq, qp);
}

StatusOr<double> IntersectionArea(const std::vector<double>& p,
                                  const std::vector<double>& q) {
  CCS_RETURN_IF_ERROR(CheckSizes(p, q));
  double acc = 0.0;
  for (size_t i = 0; i < p.size(); ++i) acc += std::min(p[i], q[i]);
  return acc;
}

StatusOr<double> TotalVariation(const std::vector<double>& p,
                                const std::vector<double>& q) {
  CCS_RETURN_IF_ERROR(CheckSizes(p, q));
  double acc = 0.0;
  for (size_t i = 0; i < p.size(); ++i) acc += std::abs(p[i] - q[i]);
  return 0.5 * acc;
}

StatusOr<double> Hellinger(const std::vector<double>& p,
                           const std::vector<double>& q) {
  CCS_RETURN_IF_ERROR(CheckSizes(p, q));
  double acc = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    double d = std::sqrt(std::max(0.0, p[i])) - std::sqrt(std::max(0.0, q[i]));
    acc += d * d;
  }
  return std::sqrt(0.5 * acc);
}

}  // namespace ccs::stats
