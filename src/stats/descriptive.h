// Descriptive statistics, including a Welford-style online accumulator.

#ifndef CCS_STATS_DESCRIPTIVE_H_
#define CCS_STATS_DESCRIPTIVE_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "linalg/vector.h"

namespace ccs::stats {

/// Summary of a numeric sample.
struct Summary {
  int64_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Population variance (divides by n).
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One-pass summary of `values`. Requires non-empty input.
StatusOr<Summary> Summarize(const linalg::Vector& values);

/// The q-quantile (0 <= q <= 1) by linear interpolation between order
/// statistics. Requires non-empty input.
StatusOr<double> Quantile(const linalg::Vector& values, double q);

/// Numerically-stable streaming mean/variance (Welford), mergeable across
/// partitions (Chan et al. parallel formula).
class OnlineStats {
 public:
  void Add(double value);
  void Merge(const OnlineStats& other);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 for fewer than 2 observations.
  double variance() const;
  double stddev() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace ccs::stats

#endif  // CCS_STATS_DESCRIPTIVE_H_
