// Equal-width histograms and normalized densities (used by the CD
// drift-detection baseline's per-component divergence computation).

#ifndef CCS_STATS_HISTOGRAM_H_
#define CCS_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "linalg/vector.h"

namespace ccs::stats {

/// An equal-width histogram over a fixed [lo, hi] range.
class Histogram {
 public:
  /// `num_bins` equal-width bins covering [lo, hi]. Values outside the
  /// range are clamped into the first/last bin (the CD baseline compares
  /// reference vs drifted windows over the reference's range, so
  /// out-of-range mass must still be counted).
  static StatusOr<Histogram> Create(double lo, double hi, size_t num_bins);

  /// Builds over the min..max range of `values` directly.
  static StatusOr<Histogram> FromData(const linalg::Vector& values,
                                      size_t num_bins);

  void Add(double value);
  void AddAll(const linalg::Vector& values);

  size_t num_bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int64_t total_count() const { return total_; }
  int64_t bin_count(size_t i) const { return counts_[i]; }

  /// Probability mass per bin (sums to 1). With Laplace smoothing
  /// `alpha` added to each bin (needed before KL divergence).
  std::vector<double> Density(double alpha = 0.0) const;

 private:
  Histogram(double lo, double hi, size_t num_bins)
      : lo_(lo), hi_(hi), counts_(num_bins, 0) {}

  double lo_;
  double hi_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace ccs::stats

#endif  // CCS_STATS_HISTOGRAM_H_
