#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace ccs::stats {

StatusOr<Summary> Summarize(const linalg::Vector& values) {
  if (values.empty()) {
    return Status::InvalidArgument("Summarize: empty input");
  }
  Summary s;
  s.count = static_cast<int64_t>(values.size());
  s.mean = values.Mean();
  s.variance = values.Variance();
  s.stddev = std::sqrt(s.variance);
  s.min = values.Min();
  s.max = values.Max();
  return s;
}

StatusOr<double> Quantile(const linalg::Vector& values, double q) {
  if (values.empty()) {
    return Status::InvalidArgument("Quantile: empty input");
  }
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("Quantile: q must be in [0,1]");
  }
  std::vector<double> sorted = values.data();
  std::sort(sorted.begin(), sorted.end());
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void OnlineStats::Add(double value) {
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ccs::stats
