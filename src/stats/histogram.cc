#include "stats/histogram.h"

#include <algorithm>

namespace ccs::stats {

StatusOr<Histogram> Histogram::Create(double lo, double hi, size_t num_bins) {
  if (num_bins == 0) {
    return Status::InvalidArgument("Histogram: num_bins must be positive");
  }
  if (!(lo < hi)) {
    return Status::InvalidArgument("Histogram: need lo < hi");
  }
  return Histogram(lo, hi, num_bins);
}

StatusOr<Histogram> Histogram::FromData(const linalg::Vector& values,
                                        size_t num_bins) {
  if (values.empty()) {
    return Status::InvalidArgument("Histogram::FromData: empty input");
  }
  double lo = values.Min();
  double hi = values.Max();
  if (lo == hi) hi = lo + 1.0;  // Degenerate constant data: one wide bin.
  CCS_ASSIGN_OR_RETURN(Histogram h, Create(lo, hi, num_bins));
  h.AddAll(values);
  return h;
}

void Histogram::Add(double value) {
  double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<int64_t>((value - lo_) / width);
  bin = std::clamp<int64_t>(bin, 0,
                            static_cast<int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

void Histogram::AddAll(const linalg::Vector& values) {
  for (double v : values.data()) Add(v);
}

std::vector<double> Histogram::Density(double alpha) const {
  std::vector<double> out(counts_.size(), 0.0);
  double denom = static_cast<double>(total_) +
                 alpha * static_cast<double>(counts_.size());
  if (denom <= 0.0) return out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = (static_cast<double>(counts_[i]) + alpha) / denom;
  }
  return out;
}

}  // namespace ccs::stats
