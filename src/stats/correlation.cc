#include "stats/correlation.h"

#include <cmath>

// ccs-lint: allow-file(fp-accumulate): serial product-moment sums in row
// order; single compiled path with no batched or parallel twin.

namespace ccs::stats {

StatusOr<double> PearsonCorrelation(const linalg::Vector& x,
                                    const linalg::Vector& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("PearsonCorrelation: size mismatch");
  }
  if (x.empty()) {
    return Status::InvalidArgument("PearsonCorrelation: empty input");
  }
  double mx = x.Mean();
  double my = y.Mean();
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

StatusOr<CorrelationTest> PearsonTest(const linalg::Vector& x,
                                      const linalg::Vector& y) {
  CCS_ASSIGN_OR_RETURN(double r, PearsonCorrelation(x, y));
  CorrelationTest out;
  out.pcc = r;
  size_t n = x.size();
  if (n < 3 || std::abs(r) >= 1.0) {
    out.p_value = (std::abs(r) >= 1.0) ? 0.0 : 1.0;
    return out;
  }
  double t = r * std::sqrt(static_cast<double>(n - 2) / (1.0 - r * r));
  // Two-sided p under the standard normal approximation to t_{n-2}.
  double z = std::abs(t);
  double p = std::erfc(z / std::sqrt(2.0));
  out.p_value = p;
  return out;
}

StatusOr<linalg::Matrix> CorrelationMatrix(const linalg::Matrix& data) {
  const size_t m = data.cols();
  linalg::Matrix out(m, m);
  std::vector<linalg::Vector> cols;
  cols.reserve(m);
  for (size_t j = 0; j < m; ++j) cols.push_back(data.Col(j));
  for (size_t i = 0; i < m; ++i) {
    out.At(i, i) = 1.0;
    for (size_t j = i + 1; j < m; ++j) {
      CCS_ASSIGN_OR_RETURN(double r, PearsonCorrelation(cols[i], cols[j]));
      out.At(i, j) = r;
      out.At(j, i) = r;
    }
  }
  return out;
}

}  // namespace ccs::stats
