#include "linalg/cholesky.h"

#include <cmath>

// ccs-lint: allow-file(fp-accumulate): loop-carried dependences make the
// factorization and triangular solves inherently sequential — one order,
// one compiled copy, no parallel twin to diverge from.

namespace ccs::linalg {

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CholeskyFactor: matrix must be square");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a.At(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l.At(j, k) * l.At(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "CholeskyFactor: matrix is not positive definite");
    }
    l.At(j, j) = std::sqrt(diag);
    for (size_t i = j + 1; i < n; ++i) {
      double acc = a.At(i, j);
      for (size_t k = 0; k < j; ++k) acc -= l.At(i, k) * l.At(j, k);
      l.At(i, j) = acc / l.At(j, j);
    }
  }
  return l;
}

StatusOr<Vector> CholeskySolve(const Matrix& l, const Vector& b) {
  const size_t n = l.rows();
  if (l.cols() != n || b.size() != n) {
    return Status::InvalidArgument("CholeskySolve: dimension mismatch");
  }
  // Forward substitution: L y = b.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (size_t k = 0; k < i; ++k) acc -= l.At(i, k) * y[k];
    y[i] = acc / l.At(i, i);
  }
  // Back substitution: L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii > 0; --ii) {
    size_t i = ii - 1;
    double acc = y[i];
    for (size_t k = i + 1; k < n; ++k) acc -= l.At(k, i) * x[k];
    x[i] = acc / l.At(i, i);
  }
  return x;
}

StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  CCS_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  return CholeskySolve(l, b);
}

StatusOr<Matrix> InverseSpd(const Matrix& a) {
  CCS_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  const size_t n = a.rows();
  Matrix inv(n, n);
  for (size_t j = 0; j < n; ++j) {
    Vector e(n);
    e[j] = 1.0;
    CCS_ASSIGN_OR_RETURN(Vector col, CholeskySolve(l, e));
    for (size_t i = 0; i < n; ++i) inv.At(i, j) = col[i];
  }
  return inv;
}

StatusOr<double> LogDetSpd(const Matrix& a) {
  CCS_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  double acc = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) acc += std::log(l.At(i, i));
  return 2.0 * acc;
}

}  // namespace ccs::linalg
