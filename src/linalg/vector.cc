#include "linalg/vector.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ccs::linalg {

// The BLAS-1 reductions below are blessed FP kernels: CCS_NOINLINE pins
// one compiled copy of each inner loop, so every caller accumulates in
// the identical instruction sequence (the batched matrix kernels match
// Dot's term order — see linalg/matrix.h).

CCS_NOINLINE double Vector::Dot(const Vector& other) const {
  CCS_CHECK_EQ(size(), other.size());
  double acc = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) acc += data_[i] * other.data_[i];
  return acc;
}

double Vector::Norm() const { return std::sqrt(Dot(*this)); }

CCS_NOINLINE double Vector::Sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

double Vector::Mean() const {
  CCS_CHECK(!empty());
  return Sum() / static_cast<double>(size());
}

CCS_NOINLINE double Vector::Variance() const {
  CCS_CHECK(!empty());
  double mu = Mean();
  double acc = 0.0;
  for (double v : data_) acc += (v - mu) * (v - mu);
  return acc / static_cast<double>(size());
}

double Vector::StdDev() const { return std::sqrt(Variance()); }

double Vector::Min() const {
  CCS_CHECK(!empty());
  return *std::min_element(data_.begin(), data_.end());
}

double Vector::Max() const {
  CCS_CHECK(!empty());
  return *std::max_element(data_.begin(), data_.end());
}

CCS_NOINLINE void Vector::Axpy(double alpha, const Vector& other) {
  CCS_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Vector::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

Vector Vector::Normalized() const {
  double n = Norm();
  CCS_CHECK_GT(n, 0.0);
  Vector out = *this;
  out.Scale(1.0 / n);
  return out;
}

Vector Vector::operator+(const Vector& other) const {
  Vector out = *this;
  out.Axpy(1.0, other);
  return out;
}

Vector Vector::operator-(const Vector& other) const {
  Vector out = *this;
  out.Axpy(-1.0, other);
  return out;
}

Vector Vector::operator*(double alpha) const {
  Vector out = *this;
  out.Scale(alpha);
  return out;
}

double Vector::MaxAbsDiff(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace ccs::linalg
