#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>

namespace ccs::linalg {

Vector EigenDecomposition::Eigenvalues() const {
  Vector out(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) out[i] = pairs[i].eigenvalue;
  return out;
}

Matrix EigenDecomposition::EigenvectorMatrix() const {
  if (pairs.empty()) return Matrix();
  size_t n = pairs[0].eigenvector.size();
  Matrix out(n, pairs.size());
  for (size_t j = 0; j < pairs.size(); ++j) {
    CCS_CHECK_EQ(pairs[j].eigenvector.size(), n);
    for (size_t i = 0; i < n; ++i) out.At(i, j) = pairs[j].eigenvector[i];
  }
  return out;
}

namespace {

// Largest |a(i,j)| with i != j.
double MaxOffDiagonal(const Matrix& a) {
  double m = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = i + 1; j < a.cols(); ++j) {
      m = std::max(m, std::abs(a.At(i, j)));
    }
  }
  return m;
}

}  // namespace

StatusOr<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                            const JacobiOptions& options) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix must be square");
  }
  if (!a.IsSymmetric(1e-8 * std::max(1.0, a.MaxAbs()))) {
    return Status::InvalidArgument("SymmetricEigen: matrix must be symmetric");
  }
  const size_t n = a.rows();
  EigenDecomposition result;
  if (n == 0) return result;

  Matrix d = a;                       // Will converge to diagonal.
  Matrix v = Matrix::Identity(n);    // Accumulated rotations.
  const double threshold =
      options.relative_tolerance * std::max(1.0, a.MaxAbs());

  int sweep = 0;
  for (; sweep < options.max_sweeps; ++sweep) {
    if (MaxOffDiagonal(d) <= threshold) break;
    // Cyclic sweep over the strict upper triangle.
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = d.At(p, q);
        if (std::abs(apq) <= threshold * 1e-3) continue;
        double app = d.At(p, p);
        double aqq = d.At(q, q);
        // Rotation angle from the standard Jacobi formulas.
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0.0)
                       ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                       : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        double c = 1.0 / std::sqrt(1.0 + t * t);
        double s = t * c;

        // Apply the rotation to rows/columns p and q of d.
        for (size_t k = 0; k < n; ++k) {
          double dkp = d.At(k, p);
          double dkq = d.At(k, q);
          d.At(k, p) = c * dkp - s * dkq;
          d.At(k, q) = s * dkp + c * dkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double dpk = d.At(p, k);
          double dqk = d.At(q, k);
          d.At(p, k) = c * dpk - s * dqk;
          d.At(q, k) = s * dpk + c * dqk;
        }
        // Accumulate into the eigenvector matrix.
        for (size_t k = 0; k < n; ++k) {
          double vkp = v.At(k, p);
          double vkq = v.At(k, q);
          v.At(k, p) = c * vkp - s * vkq;
          v.At(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }
  if (sweep == options.max_sweeps && MaxOffDiagonal(d) > threshold) {
    return Status::Internal("SymmetricEigen: Jacobi failed to converge");
  }

  result.pairs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    result.pairs[i].eigenvalue = d.At(i, i);
    result.pairs[i].eigenvector = v.Col(i);
  }
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const EigenPair& x, const EigenPair& y) {
              return x.eigenvalue < y.eigenvalue;
            });
  return result;
}

}  // namespace ccs::linalg
