// Dense row-major matrix of doubles.

#ifndef CCS_LINALG_MATRIX_H_
#define CCS_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/logging.h"
#include "linalg/vector.h"

namespace ccs::linalg {

class Matrix;

namespace internal {

/// The single compiled i,k,j block kernel behind BOTH
/// Matrix::MultiplyRowRange and MatrixView::MultiplyRowRange:
/// out[i*other.cols() + j] += rows[i*k_count + k] * other(k, j), with i
/// outer, k ascending, j inner — Vector::Dot's term order per output
/// entry, no zero-skipping. Never inlined (CCS_NOINLINE): both entry
/// points must execute the same machine code, or compiler-chosen FP
/// operand orderings could propagate different NaN payloads and break
/// the bitwise path-equivalence contract.
///
/// \param rows      row_count contiguous row-major rows of k_count
///                  doubles (a Matrix row range, or a gathered block).
/// \param row_count Number of left-factor rows.
/// \param k_count   Inner dimension; must equal other.rows().
/// \param other     Right factor.
/// \param out       row_count x other.cols() row-major doubles,
///                  accumulated into (callers pass freshly zeroed rows).
CCS_NOINLINE void AccumulateRowsTimesMatrix(const double* rows,
                                            size_t row_count, size_t k_count,
                                            const Matrix& other, double* out);

}  // namespace internal

/// A dense row-major matrix.
///
/// Sized for the paper's regime (attribute counts m in the tens; Gram
/// matrices m x m). Row counts can be large for data matrices, but all
/// quadratic-cost operations are only ever applied to m x m matrices.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix of zeros (or `fill`).
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Constructs from nested brace lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    CCS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    CCS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Copies row `r` out as a Vector.
  Vector Row(size_t r) const;

  /// Copies column `c` out as a Vector.
  Vector Col(size_t c) const;

  /// Overwrites row `r`. Sizes must match.
  void SetRow(size_t r, const Vector& values);

  /// The n x n identity.
  static Matrix Identity(size_t n);

  /// this * other. Inner dimensions must agree. Accumulates in the same
  /// i,k,j term order as MultiplyRowRange and Vector::Dot — no
  /// zero-skipping — so the product is bitwise identical to per-row
  /// evaluation even when either factor holds NaN or Inf cells.
  Matrix Multiply(const Matrix& other) const;

  /// rows [row_begin, row_end) of this * other, as a
  /// (row_end - row_begin) x other.cols() matrix. The kernel behind the
  /// batched (chunk-parallel) violation scoring path; accumulates in the
  /// same k-order as Vector::Dot so results are bitwise identical to
  /// per-row evaluation.
  ///
  /// \param row_begin  First row of this to multiply (inclusive).
  /// \param row_end    One past the last row; must be <= rows().
  /// \param other      Right factor; other.rows() must equal cols().
  /// \return The product slice, with row 0 holding row_begin's result.
  Matrix MultiplyRowRange(size_t row_begin, size_t row_end,
                          const Matrix& other) const;

  /// this * v.
  Vector Multiply(const Vector& v) const;

  /// Transpose copy.
  Matrix Transposed() const;

  /// this + other, elementwise; shapes must match.
  ///
  /// \return A freshly allocated sum; use AddInPlace on hot paths.
  Matrix Add(const Matrix& other) const;

  /// this += other, elementwise and allocation-free; shapes must match.
  /// The reduction step of the shard-merge pattern (GramAccumulator
  /// partials are folded with it in fixed shard order).
  void AddInPlace(const Matrix& other);

  /// Scales every entry.
  void Scale(double alpha);

  /// True if |a(i,j) - b(i,j)| <= tol everywhere (and shapes match).
  static bool AlmostEqual(const Matrix& a, const Matrix& b, double tol);

  /// Max |a(i,j)| over all entries (0 for empty).
  double MaxAbs() const;

  /// True if the matrix is square and symmetric to within `tol`.
  bool IsSymmetric(double tol = 1e-9) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace ccs::linalg

#endif  // CCS_LINALG_MATRIX_H_
