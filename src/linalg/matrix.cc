#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace ccs::linalg {

namespace internal {

CCS_NOINLINE void AccumulateRowsTimesMatrix(const double* rows,
                                            size_t row_count, size_t k_count,
                                            const Matrix& other, double* out) {
  // i,k,j order: k ascending, each out entry accumulating in the same
  // term order as Vector::Dot (no zero-skipping).
  const size_t out_cols = other.cols();
  for (size_t i = 0; i < row_count; ++i) {
    const double* row = rows + i * k_count;
    double* out_row = out + i * out_cols;
    for (size_t k = 0; k < k_count; ++k) {
      double aik = row[k];
      for (size_t j = 0; j < out_cols; ++j) {
        out_row[j] += aik * other.At(k, j);
      }
    }
  }
}

}  // namespace internal

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(0) {
  for (const auto& row : rows) {
    if (cols_ == 0) cols_ = row.size();
    CCS_CHECK_EQ(row.size(), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Vector Matrix::Row(size_t r) const {
  CCS_CHECK(r < rows_);
  Vector out(cols_);
  for (size_t c = 0; c < cols_; ++c) out[c] = At(r, c);
  return out;
}

Vector Matrix::Col(size_t c) const {
  CCS_CHECK(c < cols_);
  Vector out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = At(r, c);
  return out;
}

void Matrix::SetRow(size_t r, const Vector& values) {
  CCS_CHECK(r < rows_);
  CCS_CHECK_EQ(values.size(), cols_);
  for (size_t c = 0; c < cols_; ++c) At(r, c) = values[c];
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out.At(i, i) = 1.0;
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  CCS_CHECK_EQ(cols_, other.rows_);
  // No zero-skipping: 0 * NaN and 0 * Inf are NaN, so skipping aik == 0
  // terms would make Multiply diverge from MultiplyRowRange (and per-row
  // Vector::Dot) exactly when the data contains non-finite cells,
  // breaking the exact-term-order determinism contract.
  return MultiplyRowRange(0, rows_, other);
}

Matrix Matrix::MultiplyRowRange(size_t row_begin, size_t row_end,
                                const Matrix& other) const {
  CCS_CHECK_EQ(cols_, other.rows_);
  CCS_CHECK(row_begin <= row_end && row_end <= rows_);
  Matrix out(row_end - row_begin, other.cols_);
  if (other.cols_ == 0 || row_begin == row_end) return out;
  // i,k,j loop order: out(i,j) accumulates over k in increasing order,
  // matching Vector::Dot term order exactly (no zero-skipping), so the
  // batched path reproduces per-row results bit for bit — via the
  // shared out-of-line kernel MatrixView::MultiplyRowRange also runs.
  internal::AccumulateRowsTimesMatrix(data_.data() + row_begin * cols_,
                                      row_end - row_begin, cols_, other,
                                      &out.At(0, 0));
  return out;
}

CCS_NOINLINE Vector Matrix::Multiply(const Vector& v) const {
  CCS_CHECK_EQ(cols_, v.size());
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (size_t j = 0; j < cols_; ++j) acc += At(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  Matrix out = *this;
  out.AddInPlace(other);
  return out;
}

void Matrix::AddInPlace(const Matrix& other) {
  CCS_CHECK_EQ(rows_, other.rows_);
  CCS_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Scale(double alpha) {
  for (double& v : data_) v *= alpha;
}

bool Matrix::AlmostEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) return false;
  for (size_t i = 0; i < a.data_.size(); ++i) {
    if (std::abs(a.data_[i] - b.data_[i]) > tol) return false;
  }
  return true;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      if (std::abs(At(i, j) - At(j, i)) > tol) return false;
    }
  }
  return true;
}

}  // namespace ccs::linalg
