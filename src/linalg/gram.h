// Streaming, mergeable Gram-matrix accumulator.
//
// Implements the paper's §4.3.2 observation: X^T X = sum_i t_i t_i^T can be
// built one tuple at a time in O(m^2) memory, and partitions accumulated
// independently can be merged by addition (embarrassingly parallel).
//
// The accumulator always tracks the ones-AUGMENTED tuple (1, t) as required
// by Algorithm 1 line 2, so it simultaneously yields:
//   - the augmented Gram matrix [1; X]^T [1; X]   (for eigenvectors),
//   - per-attribute means,
//   - the covariance matrix                       (for baselines).

#ifndef CCS_LINALG_GRAM_H_
#define CCS_LINALG_GRAM_H_

#include <cstdint>

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ccs::linalg {

/// Accumulates sum over tuples of (1,t)(1,t)^T in O(m^2) space.
class GramAccumulator {
 public:
  /// An accumulator over m-attribute tuples.
  explicit GramAccumulator(size_t num_attributes);

  /// Adds one tuple. Size must equal num_attributes().
  void Add(const Vector& tuple);

  /// Adds every row of a data matrix (n x m).
  void AddMatrix(const Matrix& data);

  /// Merges another accumulator built over the same schema (partition-wise
  /// parallel pattern from §4.3.2).
  Status Merge(const GramAccumulator& other);

  size_t num_attributes() const { return m_; }
  int64_t count() const { return n_; }

  /// The (m+1) x (m+1) augmented Gram matrix [1; X]^T [1; X].
  /// Index 0 is the constant column.
  Matrix AugmentedGram() const;

  /// The plain m x m Gram matrix X^T X.
  Matrix Gram() const;

  /// Per-attribute means. Requires count() > 0.
  Vector Means() const;

  /// Population covariance matrix (divides by n). Requires count() > 0.
  Matrix Covariance() const;

 private:
  size_t m_;
  int64_t n_;
  // Row-major (m+1)x(m+1) sum of (1,t)(1,t)^T. Entry (0,0) is the count,
  // row/col 0 hold per-attribute sums.
  Matrix sum_;
};

}  // namespace ccs::linalg

#endif  // CCS_LINALG_GRAM_H_
