// Streaming, mergeable Gram-matrix accumulator.
//
// Implements the paper's §4.3.2 observation: X^T X = sum_i t_i t_i^T can be
// built one tuple at a time in O(m^2) memory, and partitions accumulated
// independently can be merged by addition (embarrassingly parallel).
//
// The accumulator always tracks the ones-AUGMENTED tuple (1, t) as required
// by Algorithm 1 line 2, so it simultaneously yields:
//   - the augmented Gram matrix [1; X]^T [1; X]   (for eigenvectors),
//   - per-attribute means,
//   - the covariance matrix                       (for baselines).
//
// AddMatrix and AddView are the bulk paths and are chunk-parallel: rows
// are split into fixed-size shards (kGramShardRows, independent of the
// thread count), each shard accumulated into a thread-local partial, and
// the partials merged in ascending shard order on the calling thread.
// Because both the shard boundaries and the merge order are fixed, the
// accumulated sums — and everything synthesized from them — are bitwise
// identical at any thread count, including 1 (see docs/architecture.md,
// "Determinism contract"). AddView walks a non-owning MatrixView
// (column buffers + selection vectors) directly, so view-backed
// DataFrames are accumulated without materializing a per-call Matrix.

#ifndef CCS_LINALG_GRAM_H_
#define CCS_LINALG_GRAM_H_

#include <cstdint>

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/matrix_view.h"
#include "linalg/vector.h"

namespace ccs::linalg {

/// Rows per accumulation shard in GramAccumulator::AddMatrix. Fixed (not
/// derived from the thread count) so the floating-point summation tree —
/// and therefore every synthesized constraint — is identical no matter
/// how many lanes execute the shards.
inline constexpr size_t kGramShardRows = 1024;

/// Accumulates sum over tuples of (1,t)(1,t)^T in O(m^2) space.
class GramAccumulator {
 public:
  /// An accumulator over m-attribute tuples.
  explicit GramAccumulator(size_t num_attributes);

  /// Adds one tuple (the streaming path). Size must equal
  /// num_attributes().
  void Add(const Vector& tuple);

  /// Adds every row of a data matrix (the bulk path), sharding rows into
  /// kGramShardRows blocks accumulated in parallel and merged in fixed
  /// shard order. Deterministic at any thread count.
  ///
  /// \param data  An n x num_attributes() matrix; rows are tuples.
  void AddMatrix(const Matrix& data);

  /// AddMatrix over a non-owning columnar view: the same sharded,
  /// fixed-merge-order bulk path, but the gather happens inside the
  /// accumulation loop — no per-call Matrix is materialized. Bitwise
  /// identical to AddMatrix(data.ToMatrix()) at any thread count.
  ///
  /// \param data  An n x num_attributes() view; rows are tuples.
  void AddView(const MatrixView& data);

  /// Accumulates rows [row_begin, row_end) of `data` directly into the
  /// running sum, in row order with Add()'s per-entry term order — the
  /// shard body AddMatrix/AddView dispatch in parallel, exposed for
  /// callers that manage their own sharding. `data.cols()` must equal
  /// num_attributes() (checked) and row_end must be <= data.rows().
  void AccumulateRows(const Matrix& data, size_t row_begin, size_t row_end);
  void AccumulateRows(const MatrixView& data, size_t row_begin,
                      size_t row_end);

  /// Merges another accumulator built over the same schema (partition-wise
  /// parallel pattern from §4.3.2).
  ///
  /// \return InvalidArgument when the attribute counts differ.
  Status Merge(const GramAccumulator& other);

  size_t num_attributes() const { return m_; }
  int64_t count() const { return n_; }

  /// The (m+1) x (m+1) augmented Gram matrix [1; X]^T [1; X].
  /// Index 0 is the constant column.
  Matrix AugmentedGram() const;

  /// The plain m x m Gram matrix X^T X.
  Matrix Gram() const;

  /// Per-attribute means. Requires count() > 0.
  Vector Means() const;

  /// Population covariance matrix (divides by n). Requires count() > 0.
  Matrix Covariance() const;

  /// The raw running (m+1) x (m+1) sum of (1,t)(1,t)^T — the complete
  /// accumulator state alongside count(). Checkpoint serialization
  /// (stream/checkpoint.h) round-trips it bit-exactly.
  const Matrix& RawSum() const { return sum_; }

  /// Overwrites the accumulator state with a previously captured
  /// (RawSum, count) pair — the checkpoint-resume hook. InvalidArgument
  /// when `sum` is not (m+1) x (m+1) or `count` is negative.
  Status RestoreState(const Matrix& sum, int64_t count);

 private:
  // One tuple's worth of (1,t)(1,t)^T terms from a contiguous row of m_
  // doubles — the single definition of the per-entry term order every
  // ingest path (Add, AccumulateRows, AddMatrix, AddView) funnels into.
  // Never inlined: one shared compilation is what guarantees identical
  // bits (incl. NaN payloads) across the ingest paths.
  CCS_NOINLINE void AccumulateRowTerms(const double* row);

  // Unchecked bodies of the Matrix / MatrixView entry points. The view
  // body late-materializes kViewGatherBlockRows-row blocks into reused
  // cache-resident scratch (MatrixView::GatherBlock) and feeds them to
  // AccumulateRowTerms — no full-size Matrix per call.
  void AccumulateRowsImpl(const Matrix& data, size_t row_begin,
                          size_t row_end);
  void AccumulateRowsImpl(const MatrixView& data, size_t row_begin,
                          size_t row_end);
  template <typename DataLike>
  void AddRowsSharded(const DataLike& data);

  size_t m_;
  int64_t n_;
  // Row-major (m+1)x(m+1) sum of (1,t)(1,t)^T. Entry (0,0) is the count,
  // row/col 0 hold per-attribute sums.
  Matrix sum_;
};

}  // namespace ccs::linalg

#endif  // CCS_LINALG_GRAM_H_
