#include "linalg/gram.h"

#include <algorithm>
#include <vector>

#include "common/parallel.h"

namespace ccs::linalg {

GramAccumulator::GramAccumulator(size_t num_attributes)
    : m_(num_attributes), n_(0), sum_(num_attributes + 1, num_attributes + 1) {}

void GramAccumulator::AccumulateRowTerms(const double* row) {
  // Augmented tuple is (1, t0, ..., t_{m-1}); accumulate its outer
  // product. Every ingest path funnels here, so the per-entry term
  // order — the determinism contract's summation tree leaf — has
  // exactly one definition.
  sum_.At(0, 0) += 1.0;
  for (size_t i = 0; i < m_; ++i) {
    double v = row[i];
    sum_.At(0, i + 1) += v;
    sum_.At(i + 1, 0) += v;
    for (size_t j = i; j < m_; ++j) {
      double prod = v * row[j];
      sum_.At(i + 1, j + 1) += prod;
      if (j != i) sum_.At(j + 1, i + 1) += prod;
    }
  }
  ++n_;
}

void GramAccumulator::Add(const Vector& tuple) {
  CCS_CHECK_EQ(tuple.size(), m_);
  AccumulateRowTerms(tuple.data().data());
}

void GramAccumulator::AccumulateRowsImpl(const Matrix& data, size_t row_begin,
                                         size_t row_end) {
  // Rows are contiguous in a row-major Matrix; accumulate them in place.
  const double* base = data.data().data();
  for (size_t r = row_begin; r < row_end; ++r) {
    AccumulateRowTerms(base + r * m_);
  }
}

void GramAccumulator::AccumulateRowsImpl(const MatrixView& data,
                                         size_t row_begin, size_t row_end) {
  if (row_begin == row_end) return;
  // Late materialization in cache-sized blocks: gather rows into reused
  // scratch, then run the SAME compiled term kernel every other ingest
  // path uses. No full-size Matrix is allocated/zeroed/re-read, and the
  // bits are identical by construction: copying cells preserves them,
  // and a single shared kernel sidesteps the one divergence source
  // term-order reasoning cannot close — two structurally identical
  // kernels compiled with different FP operand orderings propagate
  // different NaN payloads (observed with GCC on the mirror writes).
  std::vector<double> scratch(
      std::min(row_end - row_begin, kViewGatherBlockRows) * m_);
  for (size_t b = row_begin; b < row_end; b += kViewGatherBlockRows) {
    const size_t e = std::min(row_end, b + kViewGatherBlockRows);
    data.GatherBlock(b, e, scratch.data());
    for (size_t r = 0; r < e - b; ++r) {
      AccumulateRowTerms(scratch.data() + r * m_);
    }
  }
}

void GramAccumulator::AccumulateRows(const Matrix& data, size_t row_begin,
                                     size_t row_end) {
  // A mismatched width would read out of bounds (Add and AddMatrix both
  // validate; this public entry point must too).
  CCS_CHECK_EQ(data.cols(), m_);
  CCS_CHECK(row_begin <= row_end && row_end <= data.rows());
  AccumulateRowsImpl(data, row_begin, row_end);
}

void GramAccumulator::AccumulateRows(const MatrixView& data, size_t row_begin,
                                     size_t row_end) {
  CCS_CHECK_EQ(data.cols(), m_);
  CCS_CHECK(row_begin <= row_end && row_end <= data.rows());
  AccumulateRowsImpl(data, row_begin, row_end);
}

template <typename DataLike>
void GramAccumulator::AddRowsSharded(const DataLike& data) {
  CCS_CHECK_EQ(data.cols(), m_);
  const size_t n = data.rows();
  const size_t shards = (n + kGramShardRows - 1) / kGramShardRows;
  if (shards <= 1) {
    AccumulateRowsImpl(data, 0, n);
    return;
  }
  // Shard boundaries depend only on n, so the summation tree — partials
  // built row-by-row, folded in ascending shard index — is the same at
  // every thread count. Only shard EXECUTION is scheduled dynamically.
  std::vector<GramAccumulator> partials(shards, GramAccumulator(m_));
  common::ParallelFor(
      shards,
      [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          partials[s].AccumulateRowsImpl(data, s * kGramShardRows,
                                         std::min(n, (s + 1) * kGramShardRows));
        }
      },
      common::ParallelOptions{/*num_threads=*/0, /*min_chunk=*/1});
  for (const GramAccumulator& partial : partials) {
    CCS_CHECK(Merge(partial).ok());
  }
}

void GramAccumulator::AddMatrix(const Matrix& data) { AddRowsSharded(data); }

void GramAccumulator::AddView(const MatrixView& data) { AddRowsSharded(data); }

Status GramAccumulator::Merge(const GramAccumulator& other) {
  if (other.m_ != m_) {
    return Status::InvalidArgument(
        "GramAccumulator::Merge: attribute count mismatch");
  }
  sum_.AddInPlace(other.sum_);
  n_ += other.n_;
  return Status::OK();
}

Status GramAccumulator::RestoreState(const Matrix& sum, int64_t count) {
  if (sum.rows() != m_ + 1 || sum.cols() != m_ + 1) {
    return Status::InvalidArgument(
        "GramAccumulator::RestoreState: sum must be (m+1) x (m+1)");
  }
  if (count < 0) {
    return Status::InvalidArgument(
        "GramAccumulator::RestoreState: negative count");
  }
  sum_ = sum;
  n_ = count;
  return Status::OK();
}

Matrix GramAccumulator::AugmentedGram() const { return sum_; }

Matrix GramAccumulator::Gram() const {
  Matrix out(m_, m_);
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < m_; ++j) out.At(i, j) = sum_.At(i + 1, j + 1);
  }
  return out;
}

Vector GramAccumulator::Means() const {
  CCS_CHECK_GT(n_, 0);
  Vector mu(m_);
  for (size_t i = 0; i < m_; ++i) {
    mu[i] = sum_.At(0, i + 1) / static_cast<double>(n_);
  }
  return mu;
}

Matrix GramAccumulator::Covariance() const {
  CCS_CHECK_GT(n_, 0);
  Vector mu = Means();
  Matrix cov(m_, m_);
  double n = static_cast<double>(n_);
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < m_; ++j) {
      cov.At(i, j) = sum_.At(i + 1, j + 1) / n - mu[i] * mu[j];
    }
  }
  return cov;
}

}  // namespace ccs::linalg
