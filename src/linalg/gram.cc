#include "linalg/gram.h"

#include <algorithm>
#include <vector>

#include "common/parallel.h"

namespace ccs::linalg {

GramAccumulator::GramAccumulator(size_t num_attributes)
    : m_(num_attributes), n_(0), sum_(num_attributes + 1, num_attributes + 1) {}

void GramAccumulator::Add(const Vector& tuple) {
  CCS_CHECK_EQ(tuple.size(), m_);
  // Augmented tuple is (1, t0, ..., t_{m-1}); accumulate its outer product.
  sum_.At(0, 0) += 1.0;
  for (size_t i = 0; i < m_; ++i) {
    sum_.At(0, i + 1) += tuple[i];
    sum_.At(i + 1, 0) += tuple[i];
    for (size_t j = i; j < m_; ++j) {
      double prod = tuple[i] * tuple[j];
      sum_.At(i + 1, j + 1) += prod;
      if (j != i) sum_.At(j + 1, i + 1) += prod;
    }
  }
  ++n_;
}

void GramAccumulator::AccumulateRows(const Matrix& data, size_t row_begin,
                                     size_t row_end) {
  // Same per-entry term order as Add(), reading the matrix in place so
  // shard workers never materialize row Vectors.
  for (size_t r = row_begin; r < row_end; ++r) {
    sum_.At(0, 0) += 1.0;
    for (size_t i = 0; i < m_; ++i) {
      double v = data.At(r, i);
      sum_.At(0, i + 1) += v;
      sum_.At(i + 1, 0) += v;
      for (size_t j = i; j < m_; ++j) {
        double prod = v * data.At(r, j);
        sum_.At(i + 1, j + 1) += prod;
        if (j != i) sum_.At(j + 1, i + 1) += prod;
      }
    }
    ++n_;
  }
}

void GramAccumulator::AddMatrix(const Matrix& data) {
  CCS_CHECK_EQ(data.cols(), m_);
  const size_t n = data.rows();
  const size_t shards = (n + kGramShardRows - 1) / kGramShardRows;
  if (shards <= 1) {
    AccumulateRows(data, 0, n);
    return;
  }
  // Shard boundaries depend only on n, so the summation tree — partials
  // built row-by-row, folded in ascending shard index — is the same at
  // every thread count. Only shard EXECUTION is scheduled dynamically.
  std::vector<GramAccumulator> partials(shards, GramAccumulator(m_));
  common::ParallelFor(
      shards,
      [&](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          partials[s].AccumulateRows(data, s * kGramShardRows,
                                     std::min(n, (s + 1) * kGramShardRows));
        }
      },
      common::ParallelOptions{/*num_threads=*/0, /*min_chunk=*/1});
  for (const GramAccumulator& partial : partials) {
    CCS_CHECK(Merge(partial).ok());
  }
}

Status GramAccumulator::Merge(const GramAccumulator& other) {
  if (other.m_ != m_) {
    return Status::InvalidArgument(
        "GramAccumulator::Merge: attribute count mismatch");
  }
  sum_.AddInPlace(other.sum_);
  n_ += other.n_;
  return Status::OK();
}

Matrix GramAccumulator::AugmentedGram() const { return sum_; }

Matrix GramAccumulator::Gram() const {
  Matrix out(m_, m_);
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < m_; ++j) out.At(i, j) = sum_.At(i + 1, j + 1);
  }
  return out;
}

Vector GramAccumulator::Means() const {
  CCS_CHECK_GT(n_, 0);
  Vector mu(m_);
  for (size_t i = 0; i < m_; ++i) {
    mu[i] = sum_.At(0, i + 1) / static_cast<double>(n_);
  }
  return mu;
}

Matrix GramAccumulator::Covariance() const {
  CCS_CHECK_GT(n_, 0);
  Vector mu = Means();
  Matrix cov(m_, m_);
  double n = static_cast<double>(n_);
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < m_; ++j) {
      cov.At(i, j) = sum_.At(i + 1, j + 1) / n - mu[i] * mu[j];
    }
  }
  return cov;
}

}  // namespace ccs::linalg
