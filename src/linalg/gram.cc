#include "linalg/gram.h"

namespace ccs::linalg {

GramAccumulator::GramAccumulator(size_t num_attributes)
    : m_(num_attributes), n_(0), sum_(num_attributes + 1, num_attributes + 1) {}

void GramAccumulator::Add(const Vector& tuple) {
  CCS_CHECK_EQ(tuple.size(), m_);
  // Augmented tuple is (1, t0, ..., t_{m-1}); accumulate its outer product.
  sum_.At(0, 0) += 1.0;
  for (size_t i = 0; i < m_; ++i) {
    sum_.At(0, i + 1) += tuple[i];
    sum_.At(i + 1, 0) += tuple[i];
    for (size_t j = i; j < m_; ++j) {
      double prod = tuple[i] * tuple[j];
      sum_.At(i + 1, j + 1) += prod;
      if (j != i) sum_.At(j + 1, i + 1) += prod;
    }
  }
  ++n_;
}

void GramAccumulator::AddMatrix(const Matrix& data) {
  CCS_CHECK_EQ(data.cols(), m_);
  for (size_t r = 0; r < data.rows(); ++r) Add(data.Row(r));
}

Status GramAccumulator::Merge(const GramAccumulator& other) {
  if (other.m_ != m_) {
    return Status::InvalidArgument(
        "GramAccumulator::Merge: attribute count mismatch");
  }
  sum_ = sum_.Add(other.sum_);
  n_ += other.n_;
  return Status::OK();
}

Matrix GramAccumulator::AugmentedGram() const { return sum_; }

Matrix GramAccumulator::Gram() const {
  Matrix out(m_, m_);
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < m_; ++j) out.At(i, j) = sum_.At(i + 1, j + 1);
  }
  return out;
}

Vector GramAccumulator::Means() const {
  CCS_CHECK_GT(n_, 0);
  Vector mu(m_);
  for (size_t i = 0; i < m_; ++i) {
    mu[i] = sum_.At(0, i + 1) / static_cast<double>(n_);
  }
  return mu;
}

Matrix GramAccumulator::Covariance() const {
  CCS_CHECK_GT(n_, 0);
  Vector mu = Means();
  Matrix cov(m_, m_);
  double n = static_cast<double>(n_);
  for (size_t i = 0; i < m_; ++i) {
    for (size_t j = 0; j < m_; ++j) {
      cov.At(i, j) = sum_.At(i + 1, j + 1) / n - mu[i] * mu[j];
    }
  }
  return cov;
}

}  // namespace ccs::linalg
