// Dense double vector with the operations the conformance-constraint
// pipeline needs (dot products, norms, axpy-style arithmetic, stats).

#ifndef CCS_LINALG_VECTOR_H_
#define CCS_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/logging.h"

namespace ccs::linalg {

/// A dense vector of doubles.
///
/// Value type; cheap moves, explicit copies. Element access is bounds
/// checked in debug builds only.
class Vector {
 public:
  Vector() = default;

  /// A vector of `size` zeros (or `fill` values).
  explicit Vector(size_t size, double fill = 0.0) : data_(size, fill) {}

  /// Constructs from a brace list: Vector v{1.0, 2.0}.
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](size_t i) {
    CCS_DCHECK(i < data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    CCS_DCHECK(i < data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Dot product. Sizes must match.
  double Dot(const Vector& other) const;

  /// Euclidean (L2) norm.
  double Norm() const;

  /// Sum of elements.
  double Sum() const;

  /// Arithmetic mean. Requires non-empty.
  double Mean() const;

  /// Population variance (divides by n, matching the paper's sigma).
  double Variance() const;

  /// Population standard deviation.
  double StdDev() const;

  double Min() const;
  double Max() const;

  /// this += alpha * other (BLAS axpy).
  void Axpy(double alpha, const Vector& other);

  /// Scales every element by `alpha`.
  void Scale(double alpha);

  /// Returns a copy scaled to unit L2 norm. Requires a nonzero norm.
  Vector Normalized() const;

  Vector operator+(const Vector& other) const;
  Vector operator-(const Vector& other) const;
  Vector operator*(double alpha) const;

  bool operator==(const Vector& other) const { return data_ == other.data_; }

  /// Max |a_i - b_i|; INF if sizes differ.
  static double MaxAbsDiff(const Vector& a, const Vector& b);

 private:
  std::vector<double> data_;
};

}  // namespace ccs::linalg

#endif  // CCS_LINALG_VECTOR_H_
