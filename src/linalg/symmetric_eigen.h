// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//
// Algorithm 1 of the paper needs all eigenpairs of the (m+1)x(m+1) Gram
// matrix X'^T X'. Attribute counts m are small (tens), so Jacobi — O(m^3)
// per sweep, unconditionally stable for symmetric input, no external
// dependency — is the right tool.

#ifndef CCS_LINALG_SYMMETRIC_EIGEN_H_
#define CCS_LINALG_SYMMETRIC_EIGEN_H_

#include <vector>

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ccs::linalg {

/// One eigenvalue with its (unit-norm) eigenvector.
struct EigenPair {
  double eigenvalue = 0.0;
  Vector eigenvector;
};

/// The full decomposition, eigenpairs sorted by ascending eigenvalue.
/// For the Gram matrix of a dataset, ascending eigenvalue order is
/// ascending projection-variance order: pairs.front() yields the paper's
/// strongest (lowest-variance) conformance constraint.
struct EigenDecomposition {
  std::vector<EigenPair> pairs;

  /// Eigenvalues as a vector, ascending.
  Vector Eigenvalues() const;

  /// Matrix whose COLUMNS are the eigenvectors, in ascending-eigenvalue
  /// order (so V^T A V = diag(eigenvalues)).
  Matrix EigenvectorMatrix() const;
};

/// Options for the Jacobi iteration.
struct JacobiOptions {
  /// Convergence threshold on the largest absolute off-diagonal element,
  /// relative to the largest absolute entry of the input.
  double relative_tolerance = 1e-12;
  /// Hard cap on full sweeps; symmetric matrices of this size converge in
  /// well under 20 sweeps.
  int max_sweeps = 100;
};

/// Computes all eigenpairs of a symmetric matrix.
///
/// Returns InvalidArgument if `a` is not square/symmetric, Internal if the
/// iteration fails to converge within max_sweeps (does not happen for
/// well-formed symmetric input).
StatusOr<EigenDecomposition> SymmetricEigen(
    const Matrix& a, const JacobiOptions& options = JacobiOptions());

}  // namespace ccs::linalg

#endif  // CCS_LINALG_SYMMETRIC_EIGEN_H_
