// Cholesky factorization, linear solves, and SPD inverse.
//
// Used by the OLS/ridge regressors (normal equations) and by the PCA-SPLL
// baseline (inverse covariance in the log-likelihood).

#ifndef CCS_LINALG_CHOLESKY_H_
#define CCS_LINALG_CHOLESKY_H_

#include "common/statusor.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ccs::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
///
/// Returns InvalidArgument for non-square/asymmetric input and
/// FailedPrecondition if A is not positive definite (callers typically
/// retry with a ridge term added to the diagonal).
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// Solves A x = b given the Cholesky factor L of A.
StatusOr<Vector> CholeskySolve(const Matrix& l, const Vector& b);

/// Solves the SPD system A x = b (factor + solve).
StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// Inverse of an SPD matrix via Cholesky.
StatusOr<Matrix> InverseSpd(const Matrix& a);

/// log(det(A)) of an SPD matrix via its Cholesky factor (numerically safe
/// for near-singular covariance matrices used in SPLL).
StatusOr<double> LogDetSpd(const Matrix& a);

}  // namespace ccs::linalg

#endif  // CCS_LINALG_CHOLESKY_H_
