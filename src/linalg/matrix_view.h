// Non-owning columnar matrix view: kernels walk (buffer, selection)
// column refs in place, so scoring and Gram accumulation never
// materialize a per-call Matrix copy of view-backed DataFrame data.

#ifndef CCS_LINALG_MATRIX_VIEW_H_
#define CCS_LINALG_MATRIX_VIEW_H_

#include <cstddef>
#include <vector>

#include "common/logging.h"
#include "linalg/matrix.h"

namespace ccs::linalg {

/// Rows per gathered block in view-walking kernels: large enough to
/// amortize the shared out-of-line kernel call, small enough that the
/// scratch block (kViewGatherBlockRows x cols doubles) stays
/// cache-resident instead of round-tripping through DRAM like a
/// full-size materialized Matrix.
inline constexpr size_t kViewGatherBlockRows = 256;

/// A non-owning, read-only n x k matrix over columnar storage.
///
/// Each column is a `(buffer, selection)` pair: `buffer` points at the
/// column's physical cell storage and `selection` (when non-null) maps
/// logical rows to physical buffer indices — exactly the representation
/// of a zero-copy DataFrame column view. An optional view-level
/// `row_indices` list adds one more logical gather on top (the
/// per-partition row subsets of disjunctive scoring), so a view of a
/// view of a row subset still reads through at most two indirections
/// and zero cell copies.
///
/// Lifetime: the view borrows everything — buffers, selections, and
/// `row_indices` must outlive it (it does NOT hold the shared_ptrs a
/// DataFrame column does). It is a call-scoped kernel argument, not a
/// storage type; `DataFrame::NumericViewFor` produces it in O(columns).
///
/// Determinism: `MultiplyRowRange` accumulates in the same i,k,j term
/// order as `Matrix::MultiplyRowRange` and per-row `Vector::Dot`, with
/// no zero-skipping, so walking the view is bitwise identical to
/// materializing a Matrix and multiplying that — including on NaN/Inf
/// cells (see docs/architecture.md, "Determinism contract").
class MatrixView {
 public:
  /// One column of the view. `selection == nullptr` means the buffer is
  /// flat (logical row i lives at buffer[i]).
  struct ColumnRef {
    const double* buffer = nullptr;
    const std::vector<size_t>* selection = nullptr;
  };

  MatrixView() = default;

  /// A view of `rows` logical rows over `columns`. When `row_indices`
  /// is non-null it must hold exactly `rows` entries; logical row r
  /// then resolves to column row (*row_indices)[r] before the
  /// per-column selection applies.
  MatrixView(size_t rows, std::vector<ColumnRef> columns,
             const std::vector<size_t>* row_indices = nullptr)
      : rows_(rows),
        columns_(std::move(columns)),
        row_indices_(row_indices) {
    CCS_DCHECK(row_indices_ == nullptr || row_indices_->size() == rows_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return columns_.size(); }
  bool empty() const { return rows_ == 0 || columns_.empty(); }

  /// Element access, resolved through row_indices then the column's
  /// selection.
  double At(size_t r, size_t c) const {
    CCS_DCHECK(r < rows_ && c < columns_.size());
    const size_t t = row_indices_ ? (*row_indices_)[r] : r;
    const ColumnRef& col = columns_[c];
    return col.buffer[col.selection ? (*col.selection)[t] : t];
  }

  /// Gathers logical rows [row_begin, row_end) into `out` as a
  /// row-major block of (row_end - row_begin) x cols() doubles, walking
  /// column-at-a-time (one prefetch-friendly stream per column). This
  /// is the late-materialization primitive the kernels use: a
  /// cache-sized block is gathered into reused scratch and fed to the
  /// same compiled kernel the materializing path runs, so no full-size
  /// Matrix is ever allocated and the bits cannot differ (copying cells
  /// preserves them).
  void GatherBlock(size_t row_begin, size_t row_end, double* out) const {
    CCS_DCHECK(row_begin <= row_end && row_end <= rows_);
    const size_t m = columns_.size();
    for (size_t c = 0; c < m; ++c) {
      const ColumnRef& col = columns_[c];
      double* cell = out + c;
      for (size_t r = row_begin; r < row_end; ++r, cell += m) {
        const size_t t = row_indices_ ? (*row_indices_)[r] : r;
        *cell = col.buffer[col.selection ? (*col.selection)[t] : t];
      }
    }
  }

  /// rows [row_begin, row_end) of this * other, as a
  /// (row_end - row_begin) x other.cols() matrix — the same kernel
  /// contract as Matrix::MultiplyRowRange: exact i,k,j accumulation
  /// order, no zero-skipping, bitwise identical to materializing the
  /// view first.
  ///
  /// \param row_begin  First logical row to multiply (inclusive).
  /// \param row_end    One past the last row; must be <= rows().
  /// \param other      Right factor; other.rows() must equal cols().
  /// \return The product slice, with row 0 holding row_begin's result.
  Matrix MultiplyRowRange(size_t row_begin, size_t row_end,
                          const Matrix& other) const;

  /// The view materialized as an owned Matrix (cell-by-cell gather).
  /// Equivalence suites compare kernels on the view against the same
  /// kernels on this copy.
  Matrix ToMatrix() const;

 private:
  size_t rows_ = 0;
  std::vector<ColumnRef> columns_;
  const std::vector<size_t>* row_indices_ = nullptr;
};

}  // namespace ccs::linalg

#endif  // CCS_LINALG_MATRIX_VIEW_H_
