// Non-owning columnar matrix view: kernels walk (buffer, selection)
// column refs in place, so scoring and Gram accumulation never
// materialize a per-call Matrix copy of view-backed DataFrame data.
//
// Columns may also be *derived* — computed from source columns on the
// fly (scale, product, linear combination) as the kernels walk the
// view — so transform pipelines (scaling, polynomial expansion,
// projection evaluation) compose without materializing intermediates.
// See docs/architecture.md, "Derived columns".

#ifndef CCS_LINALG_MATRIX_VIEW_H_
#define CCS_LINALG_MATRIX_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "linalg/matrix.h"

namespace ccs::linalg {

/// Rows per gathered block in view-walking kernels: large enough to
/// amortize the shared out-of-line kernel call, small enough that the
/// scratch block (kViewGatherBlockRows x cols doubles) stays
/// cache-resident instead of round-tripping through DRAM like a
/// full-size materialized Matrix.
inline constexpr size_t kViewGatherBlockRows = 256;

/// How a view column produces its cells.
enum class ColumnOp : uint8_t {
  /// Read through from a source buffer (the original, copy-free case).
  kSource = 0,
  /// (x - shift) / divide over one input column — the StandardScaler
  /// transform. Division (not reciprocal-multiply) on purpose: the two
  /// are not bitwise equal, and the materializing scaler divides.
  kScale,
  /// Elementwise product of two input columns, first * second — the
  /// polynomial-expansion square and cross terms.
  kProduct,
  /// sum_k weights[k] * input_k accumulated in ascending k — the
  /// projection dot product. Term order matches Vector::Dot and
  /// AccumulateRowsTimesMatrix (value * weight, no zero-skipping).
  kCombine,
};

/// One input column of a derived expression: physical cell storage plus
/// the optional logical-row -> physical-index selection, exactly the
/// (buffer, selection) pair of a source ColumnRef.
struct ViewSource {
  const double* buffer = nullptr;
  const std::vector<size_t>* selection = nullptr;
};

namespace internal {

// The three derived-column evaluation kernels. ONE compiled copy per
// op (CCS_NOINLINE): every consumer — block gather, single-cell At,
// full-column materialization, and the materializing twins in
// core/ml — funnels through these, so lazy and materialized results
// cannot diverge even on NaN payloads (two compilations of an
// identical-looking FP loop may order operands differently; one
// compilation cannot). See docs/architecture.md, "Determinism
// contract".
//
// Cell resolution in all three: logical row r maps through the view's
// `row_indices` (when non-null) and then the per-source `selection`
// (when non-null) to a physical index. Output is strided so kernels
// write row-major blocks (stride = cols) or flat columns (stride = 1)
// with the same compiled loop.

/// out[(r - row_begin) * out_stride] = (in[idx(r) * in_stride] - shift)
/// / divide for r in [row_begin, row_end). `in_stride` lets the
/// materializing StandardScaler run this same kernel down the column
/// of a row-major Matrix (in = &data[j], in_stride = cols).
CCS_NOINLINE void EvalScaleColumn(const double* in, size_t in_stride,
                                  const std::vector<size_t>* selection,
                                  const std::vector<size_t>* row_indices,
                                  size_t row_begin, size_t row_end,
                                  double shift, double divide, double* out,
                                  size_t out_stride);

/// out[(r - row_begin) * out_stride] = a(r) * b(r), first * second.
CCS_NOINLINE void EvalProductColumn(const ViewSource& a, const ViewSource& b,
                                    const std::vector<size_t>* row_indices,
                                    size_t row_begin, size_t row_end,
                                    double* out, size_t out_stride);

/// out[(r - row_begin) * out_stride] = sum over k ascending of
/// sources[k](r) * weights[k], seeded from 0.0.
CCS_NOINLINE void EvalCombineColumn(const ViewSource* sources, size_t count,
                                    const double* weights,
                                    const std::vector<size_t>* row_indices,
                                    size_t row_begin, size_t row_end,
                                    double* out, size_t out_stride);

}  // namespace internal

/// A non-owning, read-only n x k matrix over columnar storage.
///
/// Each column is a `(buffer, selection)` pair: `buffer` points at the
/// column's physical cell storage and `selection` (when non-null) maps
/// logical rows to physical buffer indices — exactly the representation
/// of a zero-copy DataFrame column view. An optional view-level
/// `row_indices` list adds one more logical gather on top (the
/// per-partition row subsets of disjunctive scoring), so a view of a
/// view of a row subset still reads through at most two indirections
/// and zero cell copies.
///
/// A column may instead be *derived* (ColumnOp != kSource): its cells
/// are computed from source columns in the view's source pool by one of
/// the internal::Eval*Column kernels, block-by-block into the same
/// scratch the kernel walk already uses — no intermediate column is
/// ever allocated. Derived columns reference the pool by index, so the
/// view stays cheaply copyable; the pool entries (and a kCombine
/// column's `weights` array) are borrowed like everything else.
///
/// Lifetime: the view borrows everything — buffers, selections,
/// `row_indices`, and combine weights must outlive it (it does NOT hold
/// the shared_ptrs a DataFrame column does). It is a call-scoped kernel
/// argument, not a storage type; `DataFrame::NumericViewFor` /
/// `DataFrame::DerivedViewFor` produce it in O(columns).
///
/// Determinism: `MultiplyRowRange` accumulates in the same i,k,j term
/// order as `Matrix::MultiplyRowRange` and per-row `Vector::Dot`, with
/// no zero-skipping, so walking the view is bitwise identical to
/// materializing a Matrix and multiplying that — including on NaN/Inf
/// cells (see docs/architecture.md, "Determinism contract"). Derived
/// cells are row-independent and evaluated by one compiled kernel per
/// op, so block evaluation, single-cell At, and full-column
/// materialization all produce identical bits.
class MatrixView {
 public:
  /// One column of the view. `selection == nullptr` means the buffer is
  /// flat (logical row i lives at buffer[i]). For derived columns
  /// (op != kSource) buffer/selection are unused; the inputs live in
  /// the view's source pool at [input_begin, input_begin + input_count).
  struct ColumnRef {
    const double* buffer = nullptr;
    const std::vector<size_t>* selection = nullptr;
    ColumnOp op = ColumnOp::kSource;
    /// First input in the view's source pool (derived ops only).
    size_t input_begin = 0;
    /// Pool inputs consumed: kScale 1, kProduct 2, kCombine n.
    size_t input_count = 0;
    /// kScale parameters: (x - shift) / divide.
    double shift = 0.0;
    double divide = 1.0;
    /// kCombine coefficients, `input_count` of them (borrowed).
    const double* weights = nullptr;
  };

  MatrixView() = default;

  /// A view of `rows` logical rows over `columns`. When `row_indices`
  /// is non-null it must hold exactly `rows` entries; logical row r
  /// then resolves to column row (*row_indices)[r] before the
  /// per-column selection applies.
  MatrixView(size_t rows, std::vector<ColumnRef> columns,
             const std::vector<size_t>* row_indices = nullptr)
      : rows_(rows),
        columns_(std::move(columns)),
        row_indices_(row_indices) {
    CCS_DCHECK(row_indices_ == nullptr || row_indices_->size() == rows_);
  }

  /// A view with derived columns: `sources` is the input pool that
  /// derived ColumnRefs index via input_begin/input_count.
  MatrixView(size_t rows, std::vector<ColumnRef> columns,
             std::vector<ViewSource> sources,
             const std::vector<size_t>* row_indices = nullptr)
      : rows_(rows),
        columns_(std::move(columns)),
        sources_(std::move(sources)),
        row_indices_(row_indices) {
    CCS_DCHECK(row_indices_ == nullptr || row_indices_->size() == rows_);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return columns_.size(); }
  bool empty() const { return rows_ == 0 || columns_.empty(); }

  /// Element access, resolved through row_indices then the column's
  /// selection. Derived cells run the same compiled kernel the block
  /// walk runs, on a one-row range — same bits by construction.
  double At(size_t r, size_t c) const {
    CCS_DCHECK(r < rows_ && c < columns_.size());
    const ColumnRef& col = columns_[c];
    if (col.op != ColumnOp::kSource) {
      double value;
      EvalDerivedColumn(col, r, r + 1, &value, 1);
      return value;
    }
    const size_t t = row_indices_ ? (*row_indices_)[r] : r;
    return col.buffer[col.selection ? (*col.selection)[t] : t];
  }

  /// Gathers logical rows [row_begin, row_end) into `out` as a
  /// row-major block of (row_end - row_begin) x cols() doubles, walking
  /// column-at-a-time (one prefetch-friendly stream per column). This
  /// is the late-materialization primitive the kernels use: a
  /// cache-sized block is gathered into reused scratch and fed to the
  /// same compiled kernel the materializing path runs, so no full-size
  /// Matrix is ever allocated and the bits cannot differ (copying cells
  /// preserves them). Derived columns are evaluated into the block by
  /// their op's kernel, strided exactly like the source gather.
  void GatherBlock(size_t row_begin, size_t row_end, double* out) const {
    CCS_DCHECK(row_begin <= row_end && row_end <= rows_);
    const size_t m = columns_.size();
    for (size_t c = 0; c < m; ++c) {
      const ColumnRef& col = columns_[c];
      if (col.op != ColumnOp::kSource) {
        EvalDerivedColumn(col, row_begin, row_end, out + c, m);
        continue;
      }
      double* cell = out + c;
      for (size_t r = row_begin; r < row_end; ++r, cell += m) {
        const size_t t = row_indices_ ? (*row_indices_)[r] : r;
        *cell = col.buffer[col.selection ? (*col.selection)[t] : t];
      }
    }
  }

  /// Evaluates column `c` for all rows into `out` (rows() doubles,
  /// contiguous). The materializing twins (ExpandPolynomial,
  /// StandardScaler::Transform) build their outputs through this, so a
  /// materialized column and its lazy view share one compiled kernel
  /// per op and cannot diverge bitwise.
  void MaterializeColumn(size_t c, double* out) const;

  /// rows [row_begin, row_end) of this * other, as a
  /// (row_end - row_begin) x other.cols() matrix — the same kernel
  /// contract as Matrix::MultiplyRowRange: exact i,k,j accumulation
  /// order, no zero-skipping, bitwise identical to materializing the
  /// view first.
  ///
  /// \param row_begin  First logical row to multiply (inclusive).
  /// \param row_end    One past the last row; must be <= rows().
  /// \param other      Right factor; other.rows() must equal cols().
  /// \return The product slice, with row 0 holding row_begin's result.
  Matrix MultiplyRowRange(size_t row_begin, size_t row_end,
                          const Matrix& other) const;

  /// The view materialized as an owned Matrix (cell-by-cell gather;
  /// derived columns evaluated by their kernels). Equivalence suites
  /// compare kernels on the view against the same kernels on this copy.
  Matrix ToMatrix() const;

 private:
  // Dispatches a derived column to its op's CCS_NOINLINE kernel,
  // writing rows [row_begin, row_end) at the given output stride.
  void EvalDerivedColumn(const ColumnRef& col, size_t row_begin,
                         size_t row_end, double* out,
                         size_t out_stride) const;

  size_t rows_ = 0;
  std::vector<ColumnRef> columns_;
  // Input pool for derived columns (empty for pure source views).
  std::vector<ViewSource> sources_;
  const std::vector<size_t>* row_indices_ = nullptr;
};

}  // namespace ccs::linalg

#endif  // CCS_LINALG_MATRIX_VIEW_H_
