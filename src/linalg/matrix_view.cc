#include "linalg/matrix_view.h"

#include <algorithm>
#include <vector>

namespace ccs::linalg {

namespace internal {

CCS_NOINLINE void EvalScaleColumn(const double* in, size_t in_stride,
                                  const std::vector<size_t>* selection,
                                  const std::vector<size_t>* row_indices,
                                  size_t row_begin, size_t row_end,
                                  double shift, double divide, double* out,
                                  size_t out_stride) {
  for (size_t r = row_begin; r < row_end; ++r, out += out_stride) {
    const size_t t = row_indices ? (*row_indices)[r] : r;
    const size_t idx = selection ? (*selection)[t] : t;
    *out = (in[idx * in_stride] - shift) / divide;
  }
}

CCS_NOINLINE void EvalProductColumn(const ViewSource& a, const ViewSource& b,
                                    const std::vector<size_t>* row_indices,
                                    size_t row_begin, size_t row_end,
                                    double* out, size_t out_stride) {
  for (size_t r = row_begin; r < row_end; ++r, out += out_stride) {
    const size_t t = row_indices ? (*row_indices)[r] : r;
    const double va = a.buffer[a.selection ? (*a.selection)[t] : t];
    const double vb = b.buffer[b.selection ? (*b.selection)[t] : t];
    *out = va * vb;
  }
}

CCS_NOINLINE void EvalCombineColumn(const ViewSource* sources, size_t count,
                                    const double* weights,
                                    const std::vector<size_t>* row_indices,
                                    size_t row_begin, size_t row_end,
                                    double* out, size_t out_stride) {
  for (size_t r = row_begin; r < row_end; ++r, out += out_stride) {
    const size_t t = row_indices ? (*row_indices)[r] : r;
    double acc = 0.0;
    for (size_t k = 0; k < count; ++k) {
      const ViewSource& s = sources[k];
      acc += s.buffer[s.selection ? (*s.selection)[t] : t] * weights[k];
    }
    *out = acc;
  }
}

}  // namespace internal

void MatrixView::EvalDerivedColumn(const ColumnRef& col, size_t row_begin,
                                   size_t row_end, double* out,
                                   size_t out_stride) const {
  switch (col.op) {
    case ColumnOp::kScale: {
      CCS_DCHECK(col.input_count == 1 &&
                 col.input_begin < sources_.size());
      const ViewSource& s = sources_[col.input_begin];
      internal::EvalScaleColumn(s.buffer, 1, s.selection, row_indices_,
                                row_begin, row_end, col.shift, col.divide,
                                out, out_stride);
      return;
    }
    case ColumnOp::kProduct:
      CCS_DCHECK(col.input_count == 2 &&
                 col.input_begin + 1 < sources_.size());
      internal::EvalProductColumn(sources_[col.input_begin],
                                  sources_[col.input_begin + 1],
                                  row_indices_, row_begin, row_end, out,
                                  out_stride);
      return;
    case ColumnOp::kCombine:
      CCS_DCHECK(col.input_count > 0 && col.weights != nullptr &&
                 col.input_begin + col.input_count <= sources_.size());
      internal::EvalCombineColumn(&sources_[col.input_begin],
                                  col.input_count, col.weights, row_indices_,
                                  row_begin, row_end, out, out_stride);
      return;
    case ColumnOp::kSource:
      break;
  }
  // kSource: plain strided gather (MaterializeColumn funnels here).
  for (size_t r = row_begin; r < row_end; ++r, out += out_stride) {
    const size_t t = row_indices_ ? (*row_indices_)[r] : r;
    *out = col.buffer[col.selection ? (*col.selection)[t] : t];
  }
}

void MatrixView::MaterializeColumn(size_t c, double* out) const {
  CCS_CHECK(c < columns_.size());
  EvalDerivedColumn(columns_[c], 0, rows_, out, 1);
}

Matrix MatrixView::MultiplyRowRange(size_t row_begin, size_t row_end,
                                    const Matrix& other) const {
  CCS_CHECK_EQ(columns_.size(), other.rows());
  CCS_CHECK(row_begin <= row_end && row_end <= rows_);
  Matrix out(row_end - row_begin, other.cols());
  if (other.cols() == 0 || row_begin == row_end) return out;
  // Late materialization in cache-sized blocks: gather
  // kViewGatherBlockRows rows into reused scratch (column-at-a-time,
  // one stream per column), then run the SAME compiled i,k,j kernel
  // Matrix::MultiplyRowRange runs. Copying cells preserves their bits,
  // and sharing one out-of-line kernel — rather than re-stating "the
  // same loop" here — removes the one divergence source term-order
  // reasoning cannot close: two compilations of an identical-looking
  // kernel may order FP operands differently and propagate different
  // NaN payloads. Unlike the materializing path, the scratch block
  // never grows with the row count and no full-size Matrix is
  // allocated, zero-filled, written, and re-read per call. Derived
  // columns are evaluated into the same scratch block by their op's
  // kernel as part of the gather — a lazy view multiplies without ever
  // materializing the derived columns either.
  const size_t m = columns_.size();
  std::vector<double> scratch(
      std::min(row_end - row_begin, kViewGatherBlockRows) * m);
  for (size_t b = row_begin; b < row_end; b += kViewGatherBlockRows) {
    const size_t e = std::min(row_end, b + kViewGatherBlockRows);
    GatherBlock(b, e, scratch.data());
    internal::AccumulateRowsTimesMatrix(scratch.data(), e - b, m, other,
                                        &out.At(b - row_begin, 0));
  }
  return out;
}

Matrix MatrixView::ToMatrix() const {
  Matrix out(rows_, columns_.size());
  if (rows_ == 0 || columns_.empty()) return out;
  GatherBlock(0, rows_, &out.At(0, 0));
  return out;
}

}  // namespace ccs::linalg
