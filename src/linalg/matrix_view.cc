#include "linalg/matrix_view.h"

#include <algorithm>
#include <vector>

namespace ccs::linalg {

Matrix MatrixView::MultiplyRowRange(size_t row_begin, size_t row_end,
                                    const Matrix& other) const {
  CCS_CHECK_EQ(columns_.size(), other.rows());
  CCS_CHECK(row_begin <= row_end && row_end <= rows_);
  Matrix out(row_end - row_begin, other.cols());
  if (other.cols() == 0 || row_begin == row_end) return out;
  // Late materialization in cache-sized blocks: gather
  // kViewGatherBlockRows rows into reused scratch (column-at-a-time,
  // one stream per column), then run the SAME compiled i,k,j kernel
  // Matrix::MultiplyRowRange runs. Copying cells preserves their bits,
  // and sharing one out-of-line kernel — rather than re-stating "the
  // same loop" here — removes the one divergence source term-order
  // reasoning cannot close: two compilations of an identical-looking
  // kernel may order FP operands differently and propagate different
  // NaN payloads. Unlike the materializing path, the scratch block
  // never grows with the row count and no full-size Matrix is
  // allocated, zero-filled, written, and re-read per call.
  const size_t m = columns_.size();
  std::vector<double> scratch(
      std::min(row_end - row_begin, kViewGatherBlockRows) * m);
  for (size_t b = row_begin; b < row_end; b += kViewGatherBlockRows) {
    const size_t e = std::min(row_end, b + kViewGatherBlockRows);
    GatherBlock(b, e, scratch.data());
    internal::AccumulateRowsTimesMatrix(scratch.data(), e - b, m, other,
                                        &out.At(b - row_begin, 0));
  }
  return out;
}

Matrix MatrixView::ToMatrix() const {
  Matrix out(rows_, columns_.size());
  if (rows_ == 0 || columns_.empty()) return out;
  GatherBlock(0, rows_, &out.At(0, 0));
  return out;
}

}  // namespace ccs::linalg
