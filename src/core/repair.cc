#include "core/repair.h"

#include <algorithm>
#include <cmath>

#include "core/synthesizer.h"

// ccs-lint: allow-file(fp-accumulate): closed-form single-attribute
// repair folds conjuncts in declared order on the calling thread; one
// compiled copy, no parallel twin.

namespace ccs::core {

namespace {

// Effective quadratic weight of a conjunct: gamma * alpha^2 with the
// same alpha cap as the quantitative semantics.
double QuadraticWeight(const BoundedConstraint& c) {
  double sigma = c.stddev();
  double alpha = sigma > 0.0 ? 1.0 / sigma : 1e6;
  return c.importance() * alpha * alpha;
}

}  // namespace

StatusOr<ConstraintRepairer> ConstraintRepairer::FromTrainingData(
    const dataframe::DataFrame& training) {
  Synthesizer synthesizer;
  CCS_ASSIGN_OR_RETURN(SimpleConstraint constraint,
                       synthesizer.SynthesizeSimple(training));
  std::vector<std::string> names = training.NumericNames();
  // ccs-lint: allow(matrix-materialize): cold one-time fit — per-column
  // Mean() wants Matrix::Col; runs once per repairer, never per window.
  CCS_ASSIGN_OR_RETURN(linalg::Matrix data, training.NumericMatrixFor(names));
  linalg::Vector means(names.size());
  for (size_t j = 0; j < names.size(); ++j) means[j] = data.Col(j).Mean();
  return ConstraintRepairer(std::move(constraint), std::move(names),
                            std::move(means));
}

StatusOr<double> ConstraintRepairer::ImputeValue(const linalg::Vector& tuple,
                                                 size_t missing) const {
  if (tuple.size() != names_.size()) {
    return Status::InvalidArgument("ImputeValue: tuple width mismatch");
  }
  if (missing >= names_.size()) {
    return Status::OutOfRange("ImputeValue: missing index out of range");
  }
  // Minimize sum_k w_k (c_kj x + r_k - mu_k)^2 over x:
  //   x* = sum_k w_k c_kj (mu_k - r_k) / sum_k w_k c_kj^2.
  double numerator = 0.0;
  double denominator = 0.0;
  for (const BoundedConstraint& c : constraint_.conjuncts()) {
    const linalg::Vector& coef = c.projection().coefficients();
    double c_j = coef[missing];
    if (c_j == 0.0) continue;
    double rest = 0.0;
    for (size_t i = 0; i < coef.size(); ++i) {
      if (i != missing) rest += coef[i] * tuple[i];
    }
    double w = QuadraticWeight(c);
    numerator += w * c_j * (c.mean() - rest);
    denominator += w * c_j * c_j;
  }
  if (denominator <= 0.0) {
    // No projection uses the attribute: fall back to its training mean.
    return means_[missing];
  }
  return numerator / denominator;
}

StatusOr<linalg::Vector> ConstraintRepairer::ImputeRow(
    const linalg::Vector& tuple, size_t missing) const {
  CCS_ASSIGN_OR_RETURN(double value, ImputeValue(tuple, missing));
  linalg::Vector out = tuple;
  out[missing] = value;
  return out;
}

StatusOr<std::vector<CellError>> ConstraintRepairer::DetectErrors(
    const dataframe::DataFrame& df, double threshold) const {
  if (threshold < 0.0 || threshold > 1.0) {
    return Status::InvalidArgument("DetectErrors: threshold must be in [0,1]");
  }
  // ccs-lint: allow(matrix-materialize): cold repair path — the
  // cell-blame search mutates per-row tuple copies (Matrix::Row), and
  // repair is batch cleaning, not streaming scoring.
  CCS_ASSIGN_OR_RETURN(linalg::Matrix data, df.NumericMatrixFor(names_));
  std::vector<CellError> out;
  for (size_t i = 0; i < data.rows(); ++i) {
    linalg::Vector tuple = data.Row(i);
    double violation = constraint_.ViolationAligned(tuple);
    if (violation <= threshold) continue;
    // Blame the cell whose repair most reduces the violation.
    CellError error;
    error.row = i;
    error.violation = violation;
    double best_after = violation;
    for (size_t j = 0; j < names_.size(); ++j) {
      auto repaired = ImputeRow(tuple, j);
      if (!repaired.ok()) continue;
      double after = constraint_.ViolationAligned(*repaired);
      if (after < best_after) {
        best_after = after;
        error.attribute = names_[j];
        error.suggested = (*repaired)[j];
        error.repaired_violation = after;
      }
    }
    if (error.attribute.empty()) {
      // No single-cell repair helps; report the tuple anyway with the
      // most responsible attribute left unnamed.
      error.repaired_violation = violation;
    }
    out.push_back(error);
  }
  std::sort(out.begin(), out.end(), [](const CellError& a, const CellError& b) {
    return a.violation > b.violation;
  });
  return out;
}

}  // namespace ccs::core
