// Dataset differencing (paper Appendix H: "a mechanism — built on top of
// conformance constraints — to explore differences between datasets";
// cf. data-diff [76]).
//
// Given two datasets A and B over the same schema, the diff reports:
//   - the asymmetric dataset-level violations (B against A's profile and
//     A against B's),
//   - a per-partition breakdown over each small-domain categorical
//     attribute (which slices of B stopped conforming to A, and which
//     slices of A are absent or different in B),
//   - per-attribute responsibility for the B-against-A non-conformance.

#ifndef CCS_CORE_DATADIFF_H_
#define CCS_CORE_DATADIFF_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/explain.h"
#include "core/synthesizer.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// One partition's contribution to the diff.
struct PartitionDiff {
  std::string attribute;          ///< Partitioning attribute.
  std::string value;              ///< Partition value.
  size_t rows_a = 0;              ///< Rows in A with this value.
  size_t rows_b = 0;              ///< Rows in B with this value.
  /// Mean violation of B's partition against A's partition profile
  /// (1.0 when the value never occurs in A).
  double violation_b_against_a = 0.0;
};

/// The full diff report.
struct DatasetDiff {
  /// Mean violation of all of B against A's compound constraint.
  double violation_b_against_a = 0.0;
  /// Mean violation of all of A against B's compound constraint.
  double violation_a_against_b = 0.0;
  /// Per-partition breakdown, sorted by descending violation.
  std::vector<PartitionDiff> partitions;
  /// Attribute responsibilities for B's non-conformance w.r.t. A.
  std::vector<AttributeResponsibility> responsibilities;

  /// Human-readable rendering of the report.
  std::string ToString() const;
};

/// Computes the diff. Both frames must share A's schema (extra columns in
/// B are an error; reorderings are fine since lookups are by name).
StatusOr<DatasetDiff> DiffDatasets(
    const dataframe::DataFrame& a, const dataframe::DataFrame& b,
    const SynthesisOptions& options = SynthesisOptions());

}  // namespace ccs::core

#endif  // CCS_CORE_DATADIFF_H_
