#include "core/tml.h"

#include "common/parallel.h"

namespace ccs::core {

StatusOr<SafetyEnvelope> SafetyEnvelope::Fit(
    const dataframe::DataFrame& training,
    const std::vector<std::string>& target_attributes, double unsafe_threshold,
    SynthesisOptions options) {
  if (unsafe_threshold < 0.0 || unsafe_threshold > 1.0) {
    return Status::InvalidArgument(
        "SafetyEnvelope: unsafe_threshold must be in [0,1]");
  }
  Synthesizer synthesizer(options);
  // Only materialize a covariate copy when columns are actually dropped;
  // the common no-target case synthesizes straight off `training`.
  if (target_attributes.empty()) {
    CCS_ASSIGN_OR_RETURN(ConformanceConstraint constraint,
                         synthesizer.Synthesize(training));
    return SafetyEnvelope(std::move(constraint), unsafe_threshold);
  }
  CCS_ASSIGN_OR_RETURN(dataframe::DataFrame covariates,
                       training.DropColumns(target_attributes));
  CCS_ASSIGN_OR_RETURN(ConformanceConstraint constraint,
                       synthesizer.Synthesize(covariates));
  return SafetyEnvelope(std::move(constraint), unsafe_threshold);
}

StatusOr<TrustAssessment> SafetyEnvelope::Assess(
    const dataframe::DataFrame& serving, size_t row) const {
  CCS_ASSIGN_OR_RETURN(double v, constraint_.Violation(serving, row));
  TrustAssessment out;
  out.violation = v;
  out.trust = 1.0 - v;
  out.unsafe = v > unsafe_threshold_;
  return out;
}

StatusOr<std::vector<TrustAssessment>> SafetyEnvelope::AssessAll(
    const dataframe::DataFrame& serving) const {
  CCS_ASSIGN_OR_RETURN(linalg::Vector v, constraint_.ViolationAll(serving));
  std::vector<TrustAssessment> out(serving.num_rows());
  common::ParallelFor(out.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      out[i].violation = v[i];
      out[i].trust = 1.0 - v[i];
      out[i].unsafe = v[i] > unsafe_threshold_;
    }
  });
  return out;
}

StatusOr<double> SafetyEnvelope::UnsafeFraction(
    const dataframe::DataFrame& serving) const {
  if (serving.num_rows() == 0) {
    return Status::InvalidArgument("UnsafeFraction: empty dataset");
  }
  CCS_ASSIGN_OR_RETURN(auto assessments, AssessAll(serving));
  size_t unsafe = 0;
  for (const TrustAssessment& a : assessments) {
    if (a.unsafe) ++unsafe;
  }
  return static_cast<double>(unsafe) / static_cast<double>(assessments.size());
}

}  // namespace ccs::core
