// Trusted machine learning: unsafe-tuple detection (paper §5).
//
// Constraints learned on the TRAINING COVARIATES (never the target, never
// the model) form a safety envelope. A serving tuple violating them is
// "unsafe": two models agreeing on all of D may disagree on it
// (Definition 16), so the deployed model's inference is untrustworthy.

#ifndef CCS_CORE_TML_H_
#define CCS_CORE_TML_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/constraint.h"
#include "core/drift.h"
#include "core/synthesizer.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// Verdict for one serving tuple.
struct TrustAssessment {
  /// Quantitative violation in [0, 1]; 0 means fully conforming.
  double violation = 0.0;
  /// 1 - violation: a calibratable trust proxy (higher = safer).
  double trust = 1.0;
  /// violation > threshold.
  bool unsafe = false;
};

/// Model-agnostic safety envelope around a training set.
class SafetyEnvelope {
 public:
  /// Learns the envelope from `training`, excluding `target_attributes`
  /// (the labels the downstream model predicts). `unsafe_threshold` is the
  /// violation level above which a tuple is flagged unsafe.
  static StatusOr<SafetyEnvelope> Fit(
      const dataframe::DataFrame& training,
      const std::vector<std::string>& target_attributes,
      double unsafe_threshold = 0.05,
      SynthesisOptions options = SynthesisOptions());

  /// Assesses row `row` of `serving` (which may still carry the target
  /// attributes; they are ignored).
  StatusOr<TrustAssessment> Assess(const dataframe::DataFrame& serving,
                                   size_t row) const;

  /// Assesses every row.
  StatusOr<std::vector<TrustAssessment>> AssessAll(
      const dataframe::DataFrame& serving) const;

  /// Fraction of rows flagged unsafe.
  StatusOr<double> UnsafeFraction(const dataframe::DataFrame& serving) const;

  const ConformanceConstraint& constraint() const { return constraint_; }
  double unsafe_threshold() const { return unsafe_threshold_; }

 private:
  SafetyEnvelope(ConformanceConstraint constraint, double unsafe_threshold)
      : constraint_(std::move(constraint)),
        unsafe_threshold_(unsafe_threshold) {}

  ConformanceConstraint constraint_;
  double unsafe_threshold_;
};

}  // namespace ccs::core

#endif  // CCS_CORE_TML_H_
