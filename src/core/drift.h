// Dataset-level drift quantification with conformance constraints (§2).
//
// Three steps: learn constraints on the reference dataset, evaluate the
// quantitative violation of every tuple in the target, aggregate.

#ifndef CCS_CORE_DRIFT_H_
#define CCS_CORE_DRIFT_H_

#include <vector>

#include "common/statusor.h"
#include "core/constraint.h"
#include "core/kernel.h"
#include "core/synthesizer.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// Drift quantifier built on conformance constraints. Satisfies the same
/// Fit/Score shape as the baseline detectors in src/baselines.
class ConformanceDriftQuantifier {
 public:
  explicit ConformanceDriftQuantifier(
      SynthesisOptions options = SynthesisOptions())
      : synthesizer_(options) {}

  /// Learns the reference profile.
  Status Fit(const dataframe::DataFrame& reference);

  /// Learns the reference profile over a *lazy* degree-2 polynomial
  /// expansion of the reference (§5.1 nonlinear constraints): the
  /// global simple constraint is synthesized straight from
  /// ExpandPolynomialView's derived view, and Score / TupleViolations
  /// walk the same derived view of each window — no expanded frame is
  /// ever materialized, here or per window. Bitwise identical to
  /// Fit(ExpandPolynomial(reference)) scored on
  /// ExpandPolynomial(window) with a global-only constraint (the
  /// expanded profile has no categorical attributes, so no
  /// disjunctions on either path).
  Status FitExpanded(const dataframe::DataFrame& reference,
                     const PolynomialExpansionOptions& expansion);

  /// Adopts an externally synthesized constraint as the reference
  /// profile — the streaming-refresh hook (§4.3.2): an
  /// IncrementalSynthesizer can fold appended tuples into its Gram state
  /// and hand the re-synthesized constraint here without the quantifier
  /// revisiting old data. Equivalent to a successful Fit on data that
  /// synthesizes to `constraint`.
  void Adopt(ConformanceConstraint constraint);

  /// Mean violation of `window` against the reference constraints — the
  /// drift magnitude, in [0, 1].
  StatusOr<double> Score(const dataframe::DataFrame& window) const;

  /// Per-tuple violations (for tuple-level analysis, e.g. Fig. 5).
  StatusOr<linalg::Vector> TupleViolations(
      const dataframe::DataFrame& window) const;

  /// The learned constraint, available after Fit.
  const ConformanceConstraint& constraint() const { return constraint_; }
  bool fitted() const { return fitted_; }
  /// True after FitExpanded: scoring walks lazy expanded views.
  bool expanded() const { return expanded_; }

 private:
  Synthesizer synthesizer_;
  ConformanceConstraint constraint_;
  bool fitted_ = false;
  // FitExpanded state: when set, Score/TupleViolations expand each
  // window lazily with these options before scoring.
  bool expanded_ = false;
  PolynomialExpansionOptions expansion_;
};

/// Scores a sequence of windows against the first (reference) window and
/// returns one drift value per window. Convenience for the EVL-style
/// stream experiments.
StatusOr<std::vector<double>> DriftSeries(
    const std::vector<dataframe::DataFrame>& windows,
    const SynthesisOptions& options = SynthesisOptions());

/// Min-max normalizes a series into [0, 1] (constant series map to 0),
/// mirroring the paper's per-method normalization in Fig. 8.
std::vector<double> NormalizeSeries(const std::vector<double>& series);

}  // namespace ccs::core

#endif  // CCS_CORE_DRIFT_H_
