#include "core/constraint.h"

#include <algorithm>
#include <cmath>

namespace ccs::core {

namespace {

// Cap on alpha when sigma(F(D)) = 0 ("a large positive number", §3.2).
constexpr double kMaxAlpha = 1e12;

// eta(z) = 1 - e^{-z}: monotone map from [0, inf) to [0, 1).
double Eta(double z) { return 1.0 - std::exp(-z); }

}  // namespace

BoundedConstraint::BoundedConstraint(Projection projection, double lb,
                                     double ub, double mean, double stddev,
                                     double importance)
    : projection_(std::move(projection)),
      lb_(lb),
      ub_(ub),
      mean_(mean),
      stddev_(stddev),
      importance_(importance) {
  CCS_CHECK_LE(lb_, ub_);
  CCS_CHECK_GE(stddev_, 0.0);
  alpha_ = (stddev_ > 0.0) ? std::min(1.0 / stddev_, kMaxAlpha) : kMaxAlpha;
}

bool BoundedConstraint::IsSatisfiedAligned(
    const linalg::Vector& numeric_tuple) const {
  double v = projection_.EvaluateAligned(numeric_tuple);
  return v >= lb_ && v <= ub_;
}

double BoundedConstraint::ViolationAligned(
    const linalg::Vector& numeric_tuple) const {
  return ViolationOfValue(projection_.EvaluateAligned(numeric_tuple));
}

double BoundedConstraint::ViolationOfValue(double value) const {
  double excess = std::max({0.0, value - ub_, lb_ - value});
  return Eta(alpha_ * excess);
}

StatusOr<SimpleConstraint> SimpleConstraint::Create(
    std::vector<std::string> attribute_names,
    std::vector<BoundedConstraint> conjuncts) {
  for (const BoundedConstraint& c : conjuncts) {
    if (c.projection().attribute_names() != attribute_names) {
      return Status::InvalidArgument(
          "SimpleConstraint: conjunct attribute order mismatch");
    }
  }
  SimpleConstraint out;
  out.names_ = std::move(attribute_names);
  out.conjuncts_ = std::move(conjuncts);
  return out;
}

bool SimpleConstraint::IsSatisfiedAligned(
    const linalg::Vector& numeric_tuple) const {
  for (const BoundedConstraint& c : conjuncts_) {
    if (!c.IsSatisfiedAligned(numeric_tuple)) return false;
  }
  return true;
}

double SimpleConstraint::ViolationAligned(
    const linalg::Vector& numeric_tuple) const {
  double acc = 0.0;
  for (const BoundedConstraint& c : conjuncts_) {
    acc += c.importance() * c.ViolationAligned(numeric_tuple);
  }
  // The importances sum to 1 only up to rounding; keep the contract that
  // violations live in [0, 1] exactly.
  return std::clamp(acc, 0.0, 1.0);
}

StatusOr<double> SimpleConstraint::Violation(const dataframe::DataFrame& df,
                                             size_t row) const {
  if (row >= df.num_rows()) {
    return Status::OutOfRange("SimpleConstraint::Violation: row out of range");
  }
  linalg::Vector tuple(names_.size());
  for (size_t j = 0; j < names_.size(); ++j) {
    CCS_ASSIGN_OR_RETURN(tuple[j], df.NumericValue(row, names_[j]));
  }
  return ViolationAligned(tuple);
}

StatusOr<linalg::Vector> SimpleConstraint::ViolationAll(
    const dataframe::DataFrame& df) const {
  CCS_ASSIGN_OR_RETURN(linalg::Matrix data, df.NumericMatrixFor(names_));
  linalg::Vector out(df.num_rows());
  for (size_t i = 0; i < data.rows(); ++i) {
    out[i] = ViolationAligned(data.Row(i));
  }
  return out;
}

StatusOr<const SimpleConstraint*> DisjunctiveConstraint::Simplify(
    const dataframe::DataFrame& df, size_t row) const {
  CCS_ASSIGN_OR_RETURN(std::string value,
                       df.CategoricalValue(row, attribute_));
  auto it = cases_.find(value);
  if (it == cases_.end()) {
    return Status::NotFound("no case for " + attribute_ + " = " + value);
  }
  return &it->second;
}

StatusOr<double> DisjunctiveConstraint::Violation(
    const dataframe::DataFrame& df, size_t row) const {
  auto simplified = Simplify(df, row);
  if (!simplified.ok()) {
    if (simplified.status().code() == StatusCode::kNotFound) {
      return 1.0;  // simp undefined => maximal violation (paper §3.2).
    }
    return simplified.status();
  }
  return (*simplified.value()).Violation(df, row);
}

StatusOr<bool> DisjunctiveConstraint::IsSatisfied(
    const dataframe::DataFrame& df, size_t row) const {
  CCS_ASSIGN_OR_RETURN(double v, Violation(df, row));
  return v == 0.0;
}

StatusOr<linalg::Vector> DisjunctiveConstraint::ViolationAll(
    const dataframe::DataFrame& df) const {
  CCS_ASSIGN_OR_RETURN(const dataframe::Column* col,
                       df.ColumnByName(attribute_));
  if (col->is_numeric()) {
    return Status::InvalidArgument(
        "DisjunctiveConstraint: switch attribute must be categorical");
  }
  // Unseen switch values default to maximal violation (simp undefined).
  linalg::Vector out(df.num_rows(), 1.0);
  if (cases_.empty() || df.num_rows() == 0) return out;

  // Fast path: all cases share one attribute order, so the numeric matrix
  // can be materialized once (this is always the case for synthesized
  // constraints — partitions share the schema's numeric attributes).
  const std::vector<std::string>& names =
      cases_.begin()->second.attribute_names();
  bool shared = true;
  for (const auto& [value, c] : cases_) {
    if (c.attribute_names() != names) {
      shared = false;
      break;
    }
  }
  if (shared) {
    CCS_ASSIGN_OR_RETURN(linalg::Matrix data, df.NumericMatrixFor(names));
    for (size_t i = 0; i < df.num_rows(); ++i) {
      auto it = cases_.find(col->CategoricalAt(i));
      if (it == cases_.end()) continue;
      out[i] = it->second.ViolationAligned(data.Row(i));
    }
    return out;
  }
  for (size_t i = 0; i < df.num_rows(); ++i) {
    CCS_ASSIGN_OR_RETURN(out[i], Violation(df, i));
  }
  return out;
}

StatusOr<double> ConformanceConstraint::Violation(
    const dataframe::DataFrame& df, size_t row) const {
  size_t groups = num_groups();
  if (groups == 0) {
    return Status::FailedPrecondition(
        "ConformanceConstraint: no constraint groups");
  }
  double acc = 0.0;
  if (has_global()) {
    CCS_ASSIGN_OR_RETURN(double v, global_.Violation(df, row));
    acc += v;
  }
  for (const DisjunctiveConstraint& d : disjunctions_) {
    CCS_ASSIGN_OR_RETURN(double v, d.Violation(df, row));
    acc += v;
  }
  return acc / static_cast<double>(groups);
}

StatusOr<linalg::Vector> ConformanceConstraint::ViolationAll(
    const dataframe::DataFrame& df) const {
  size_t groups = num_groups();
  if (groups == 0) {
    return Status::FailedPrecondition(
        "ConformanceConstraint: no constraint groups");
  }
  linalg::Vector acc(df.num_rows());
  if (has_global()) {
    CCS_ASSIGN_OR_RETURN(linalg::Vector v, global_.ViolationAll(df));
    acc.Axpy(1.0, v);
  }
  for (const DisjunctiveConstraint& d : disjunctions_) {
    CCS_ASSIGN_OR_RETURN(linalg::Vector v, d.ViolationAll(df));
    acc.Axpy(1.0, v);
  }
  acc.Scale(1.0 / static_cast<double>(groups));
  return acc;
}

StatusOr<double> ConformanceConstraint::MeanViolation(
    const dataframe::DataFrame& df) const {
  if (df.num_rows() == 0) {
    return Status::InvalidArgument("MeanViolation: empty dataset");
  }
  CCS_ASSIGN_OR_RETURN(linalg::Vector v, ViolationAll(df));
  return v.Mean();
}

StatusOr<bool> ConformanceConstraint::IsSatisfied(
    const dataframe::DataFrame& df, size_t row) const {
  CCS_ASSIGN_OR_RETURN(double v, Violation(df, row));
  return v == 0.0;
}

}  // namespace ccs::core
