#include "core/constraint.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <vector>

#include "common/parallel.h"

namespace ccs::core {

namespace {

// Cap on alpha when sigma(F(D)) = 0 ("a large positive number", §3.2).
constexpr double kMaxAlpha = 1e12;

// eta(z) = 1 - e^{-z}: monotone map from [0, inf) to [0, 1).
double Eta(double z) { return 1.0 - std::exp(-z); }

}  // namespace

BoundedConstraint::BoundedConstraint(Projection projection, double lb,
                                     double ub, double mean, double stddev,
                                     double importance)
    : projection_(std::move(projection)),
      lb_(lb),
      ub_(ub),
      mean_(mean),
      stddev_(stddev),
      importance_(importance) {
  CCS_CHECK_LE(lb_, ub_);
  CCS_CHECK_GE(stddev_, 0.0);
  alpha_ = (stddev_ > 0.0) ? std::min(1.0 / stddev_, kMaxAlpha) : kMaxAlpha;
}

bool BoundedConstraint::IsSatisfiedAligned(
    const linalg::Vector& numeric_tuple) const {
  double v = projection_.EvaluateAligned(numeric_tuple);
  return v >= lb_ && v <= ub_;
}

double BoundedConstraint::ViolationAligned(
    const linalg::Vector& numeric_tuple) const {
  return ViolationOfValue(projection_.EvaluateAligned(numeric_tuple));
}

double BoundedConstraint::ViolationOfValue(double value) const {
  double excess = std::max({0.0, value - ub_, lb_ - value});
  // In-bounds tuples (the conforming majority) short-circuit: exp(-0)
  // is exactly 1, so the full formula yields exactly +0.0 — returning
  // it directly skips the libm call without changing a single bit on
  // any path (alpha_ is always finite). A NaN value also lands here,
  // exactly as it always has: NaN comparisons are false, so the max()
  // above keeps its 0.0 seed and a NaN projection scores as fully
  // conforming (+0.0) on every path.
  if (excess == 0.0) return 0.0;
  return Eta(alpha_ * excess);
}

StatusOr<SimpleConstraint> SimpleConstraint::Create(
    std::vector<std::string> attribute_names,
    std::vector<BoundedConstraint> conjuncts) {
  for (const BoundedConstraint& c : conjuncts) {
    if (c.projection().attribute_names() != attribute_names) {
      return Status::InvalidArgument(
          "SimpleConstraint: conjunct attribute order mismatch");
    }
  }
  SimpleConstraint out;
  out.names_ = std::move(attribute_names);
  out.conjuncts_ = std::move(conjuncts);
  return out;
}

bool SimpleConstraint::IsSatisfiedAligned(
    const linalg::Vector& numeric_tuple) const {
  for (const BoundedConstraint& c : conjuncts_) {
    if (!c.IsSatisfiedAligned(numeric_tuple)) return false;
  }
  return true;
}

double SimpleConstraint::ViolationAligned(
    const linalg::Vector& numeric_tuple) const {
  double acc = 0.0;
  for (const BoundedConstraint& c : conjuncts_) {
    // ccs-lint: allow(fp-accumulate): importance-weighted fold in fixed
    // conjunct order — every caller (serial or pool lane) scores a whole
    // tuple with this one compiled loop, so the sum cannot diverge.
    acc += c.importance() * c.ViolationAligned(numeric_tuple);
  }
  // The importances sum to 1 only up to rounding; keep the contract that
  // violations live in [0, 1] exactly.
  return std::clamp(acc, 0.0, 1.0);
}

namespace {

// Shared body of the Matrix / MatrixView scoring kernels. DataLike only
// needs rows() and MultiplyRowRange(begin, end, coef); both implement
// the same exact i,k,j term order, so the two instantiations are
// bitwise interchangeable.
template <typename DataLike>
linalg::Vector ViolationAllAlignedImpl(
    const std::vector<std::string>& names,
    const std::vector<BoundedConstraint>& conjuncts, const DataLike& data) {
  linalg::Vector out(data.rows());
  if (conjuncts.empty() || data.rows() == 0) return out;
  // Column k holds conjunct k's projection, so one data * coef product
  // evaluates every projection on every row.
  linalg::Matrix coef(names.size(), conjuncts.size());
  for (size_t k = 0; k < conjuncts.size(); ++k) {
    const linalg::Vector& c = conjuncts[k].projection().coefficients();
    for (size_t j = 0; j < c.size(); ++j) coef.At(j, k) = c[j];
  }
  common::ParallelFor(data.rows(), [&](size_t begin, size_t end) {
    linalg::Matrix values = data.MultiplyRowRange(begin, end, coef);
    for (size_t i = begin; i < end; ++i) {
      double acc = 0.0;
      for (size_t k = 0; k < conjuncts.size(); ++k) {
        acc += conjuncts[k].importance() *
               conjuncts[k].ViolationOfValue(values.At(i - begin, k));
      }
      out[i] = std::clamp(acc, 0.0, 1.0);
    }
  });
  return out;
}

}  // namespace

linalg::Vector SimpleConstraint::ViolationAllAligned(
    const linalg::Matrix& data) const {
  return ViolationAllAlignedImpl(names_, conjuncts_, data);
}

linalg::Vector SimpleConstraint::ViolationAllAligned(
    const linalg::MatrixView& data) const {
  return ViolationAllAlignedImpl(names_, conjuncts_, data);
}

StatusOr<double> SimpleConstraint::Violation(const dataframe::DataFrame& df,
                                             size_t row) const {
  if (row >= df.num_rows()) {
    return Status::OutOfRange("SimpleConstraint::Violation: row out of range");
  }
  linalg::Vector tuple(names_.size());
  for (size_t j = 0; j < names_.size(); ++j) {
    CCS_ASSIGN_OR_RETURN(tuple[j], df.NumericValue(row, names_[j]));
  }
  return ViolationAligned(tuple);
}

StatusOr<linalg::Vector> SimpleConstraint::ViolationAll(
    const dataframe::DataFrame& df) const {
  // Walk the frame's columnar storage in place (zero-copy even when df
  // is a view); the view borrows df and dies before it.
  CCS_ASSIGN_OR_RETURN(linalg::MatrixView data, df.NumericViewFor(names_));
  return ViolationAllAligned(data);
}

StatusOr<const SimpleConstraint*> DisjunctiveConstraint::Simplify(
    const dataframe::DataFrame& df, size_t row) const {
  CCS_ASSIGN_OR_RETURN(std::string value,
                       df.CategoricalValue(row, attribute_));
  auto it = cases_.find(value);
  if (it == cases_.end()) {
    return Status::NotFound("no case for " + attribute_ + " = " + value);
  }
  return &it->second;
}

StatusOr<double> DisjunctiveConstraint::Violation(
    const dataframe::DataFrame& df, size_t row) const {
  auto simplified = Simplify(df, row);
  if (!simplified.ok()) {
    if (simplified.status().code() == StatusCode::kNotFound) {
      return 1.0;  // simp undefined => maximal violation (paper §3.2).
    }
    return simplified.status();
  }
  return (*simplified.value()).Violation(df, row);
}

StatusOr<bool> DisjunctiveConstraint::IsSatisfied(
    const dataframe::DataFrame& df, size_t row) const {
  CCS_ASSIGN_OR_RETURN(double v, Violation(df, row));
  return v == 0.0;
}

StatusOr<linalg::Vector> DisjunctiveConstraint::ViolationAll(
    const dataframe::DataFrame& df) const {
  CCS_ASSIGN_OR_RETURN(const dataframe::Column* col,
                       df.ColumnByName(attribute_));
  if (col->is_numeric()) {
    return Status::InvalidArgument(
        "DisjunctiveConstraint: switch attribute must be categorical");
  }
  // Unseen switch values default to maximal violation (simp undefined).
  linalg::Vector out(df.num_rows(), 1.0);
  if (cases_.empty() || df.num_rows() == 0) return out;

  // Group rows by switch value in one pass over the dictionary codes:
  // the case map is consulted once per *distinct* value (dictionary
  // entry), and the per-row loop compares integers — no string hashing.
  // Each case is then scored through the batched kernel over a
  // zero-copy row-subset view (no per-case matrix is materialized).
  // Mixed attribute orders across cases cost nothing extra — each group
  // aligns independently, instead of re-simplifying and re-aligning per
  // row.
  const std::vector<std::string>& dict = col->dictionary();
  std::vector<const SimpleConstraint*> code_case(dict.size(), nullptr);
  for (size_t c = 0; c < dict.size(); ++c) {
    auto it = cases_.find(dict[c]);
    if (it != cases_.end()) code_case[c] = &it->second;
  }
  std::map<const SimpleConstraint*, std::vector<size_t>> groups;
  for (size_t i = 0; i < df.num_rows(); ++i) {
    const SimpleConstraint* constraint = code_case[col->CodeAt(i)];
    if (constraint == nullptr) continue;
    groups[constraint].push_back(i);
  }
  for (const auto& [constraint, rows] : groups) {
    // The view borrows `rows` (alive in the map) and df's buffers for
    // exactly this iteration.
    CCS_ASSIGN_OR_RETURN(
        linalg::MatrixView data,
        df.NumericViewFor(constraint->attribute_names(), rows));
    linalg::Vector violations = constraint->ViolationAllAligned(data);
    for (size_t g = 0; g < rows.size(); ++g) out[rows[g]] = violations[g];
  }
  return out;
}

StatusOr<double> ConformanceConstraint::Violation(
    const dataframe::DataFrame& df, size_t row) const {
  size_t groups = num_groups();
  if (groups == 0) {
    return Status::FailedPrecondition(
        "ConformanceConstraint: no constraint groups");
  }
  double acc = 0.0;
  if (has_global()) {
    CCS_ASSIGN_OR_RETURN(double v, global_.Violation(df, row));
    acc += v;
  }
  for (const DisjunctiveConstraint& d : disjunctions_) {
    CCS_ASSIGN_OR_RETURN(double v, d.Violation(df, row));
    // ccs-lint: allow(fp-accumulate): fold over the fixed disjunction
    // order; per-row scoring is serial within a lane by construction.
    acc += v;
  }
  return acc / static_cast<double>(groups);
}

StatusOr<linalg::Vector> ConformanceConstraint::ViolationAll(
    const dataframe::DataFrame& df) const {
  size_t groups = num_groups();
  if (groups == 0) {
    return Status::FailedPrecondition(
        "ConformanceConstraint: no constraint groups");
  }
  linalg::Vector acc(df.num_rows());
  if (has_global()) {
    CCS_ASSIGN_OR_RETURN(linalg::Vector v, global_.ViolationAll(df));
    acc.Axpy(1.0, v);
  }
  for (const DisjunctiveConstraint& d : disjunctions_) {
    CCS_ASSIGN_OR_RETURN(linalg::Vector v, d.ViolationAll(df));
    acc.Axpy(1.0, v);
  }
  // Divide (not multiply by the reciprocal): Violation() computes
  // acc / groups, and the two paths must agree bit for bit.
  for (double& v : acc.data()) v /= static_cast<double>(groups);
  return acc;
}

StatusOr<double> ConformanceConstraint::MeanViolation(
    const dataframe::DataFrame& df) const {
  if (df.num_rows() == 0) {
    return Status::InvalidArgument("MeanViolation: empty dataset");
  }
  CCS_ASSIGN_OR_RETURN(linalg::Vector v, ViolationAll(df));
  return v.Mean();
}

StatusOr<bool> ConformanceConstraint::IsSatisfied(
    const dataframe::DataFrame& df, size_t row) const {
  CCS_ASSIGN_OR_RETURN(double v, Violation(df, row));
  return v == 0.0;
}

// ------------------- exact (bitwise) constraint equality ----------------
//
// Doubles are compared by BIT PATTERN, not operator==: the parallel
// pipeline promises the SAME bits as the serial one, so -0.0 must not
// pass for +0.0 (== would let that scheduling-order leak through) and a
// NaN parameter must equal an identical copy of itself (== would fail a
// constraint against its own clone).

namespace {

bool BitsEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

bool ConstraintsBitwiseEqual(const BoundedConstraint& a,
                             const BoundedConstraint& b) {
  if (!BitsEqual(a.lb(), b.lb()) || !BitsEqual(a.ub(), b.ub()) ||
      !BitsEqual(a.mean(), b.mean()) || !BitsEqual(a.stddev(), b.stddev()) ||
      !BitsEqual(a.importance(), b.importance())) {
    return false;
  }
  const Projection& pa = a.projection();
  const Projection& pb = b.projection();
  if (pa.attribute_names() != pb.attribute_names()) return false;
  if (pa.coefficients().size() != pb.coefficients().size()) return false;
  for (size_t i = 0; i < pa.coefficients().size(); ++i) {
    if (!BitsEqual(pa.coefficients()[i], pb.coefficients()[i])) return false;
  }
  return true;
}

bool ConstraintsBitwiseEqual(const SimpleConstraint& a,
                             const SimpleConstraint& b) {
  if (a.attribute_names() != b.attribute_names()) return false;
  if (a.conjuncts().size() != b.conjuncts().size()) return false;
  for (size_t i = 0; i < a.conjuncts().size(); ++i) {
    if (!ConstraintsBitwiseEqual(a.conjuncts()[i], b.conjuncts()[i])) {
      return false;
    }
  }
  return true;
}

bool ConstraintsBitwiseEqual(const DisjunctiveConstraint& a,
                             const DisjunctiveConstraint& b) {
  if (a.attribute() != b.attribute()) return false;
  if (a.cases().size() != b.cases().size()) return false;
  auto ita = a.cases().begin();
  auto itb = b.cases().begin();
  for (; ita != a.cases().end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    if (!ConstraintsBitwiseEqual(ita->second, itb->second)) return false;
  }
  return true;
}

bool ConstraintsBitwiseEqual(const ConformanceConstraint& a,
                             const ConformanceConstraint& b) {
  if (!ConstraintsBitwiseEqual(a.global(), b.global())) return false;
  if (a.disjunctions().size() != b.disjunctions().size()) return false;
  for (size_t i = 0; i < a.disjunctions().size(); ++i) {
    if (!ConstraintsBitwiseEqual(a.disjunctions()[i], b.disjunctions()[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace ccs::core
