// Violation-guided data repair (paper Appendix H: "missing values can be
// imputed by exploiting relationships among attributes that conformance
// constraints capture", and "the violation score serves as a measure of
// error" for error detection).
//
// Imputation solves a weighted least-squares problem over the learned
// projections: choose the missing value x so every projection stays as
// close to its training mean as its importance and scale warrant,
//     x* = argmin_x  sum_k gamma_k alpha_k^2 (F_k(t[x]) - mu_k)^2,
// which has the closed form implemented here. Error detection flags
// non-conforming tuples and names the top-responsibility cell together
// with its repair suggestion.

#ifndef CCS_CORE_REPAIR_H_
#define CCS_CORE_REPAIR_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/constraint.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// One detected suspicious cell.
struct CellError {
  size_t row = 0;
  std::string attribute;     ///< Most responsible attribute.
  double violation = 0.0;    ///< Tuple violation before repair.
  double suggested = 0.0;    ///< Repair suggestion for the cell.
  double repaired_violation = 0.0;  ///< Tuple violation after the repair.
};

/// Imputes missing numeric values and detects erroneous cells using a
/// simple constraint learned from (clean) training data.
class ConstraintRepairer {
 public:
  /// Learns the profile from `training` (numeric attributes only are
  /// used; categorical ones are ignored).
  static StatusOr<ConstraintRepairer> FromTrainingData(
      const dataframe::DataFrame& training);

  /// The value for attribute index `missing` that minimizes the weighted
  /// squared deviation of all projections from their means, given the
  /// other attribute values in `tuple` (its `missing` entry is ignored).
  StatusOr<double> ImputeValue(const linalg::Vector& tuple,
                               size_t missing) const;

  /// Convenience: returns `tuple` with entry `missing` replaced by the
  /// imputed value.
  StatusOr<linalg::Vector> ImputeRow(const linalg::Vector& tuple,
                                     size_t missing) const;

  /// Scans `df` for tuples whose violation exceeds `threshold`; for each,
  /// blames the cell whose repair most reduces the violation and reports
  /// the suggestion. Results sorted by descending violation.
  StatusOr<std::vector<CellError>> DetectErrors(const dataframe::DataFrame& df,
                                                double threshold) const;

  const std::vector<std::string>& attribute_names() const { return names_; }
  const SimpleConstraint& constraint() const { return constraint_; }

 private:
  ConstraintRepairer(SimpleConstraint constraint,
                     std::vector<std::string> names, linalg::Vector means)
      : constraint_(std::move(constraint)),
        names_(std::move(names)),
        means_(std::move(means)) {}

  SimpleConstraint constraint_;
  std::vector<std::string> names_;
  linalg::Vector means_;
};

}  // namespace ccs::core

#endif  // CCS_CORE_REPAIR_H_
