#include "core/tree.h"

#include <algorithm>
#include <sstream>

namespace ccs::core {

namespace {

// Node objective: the standard deviation of the tightest conjunct — the
// strength of the best constraint available on this partition. Lower is
// better (Theorem 12: low variance = strong constraint).
double Objective(const SimpleConstraint& constraint) {
  double best = std::numeric_limits<double>::infinity();
  for (const BoundedConstraint& c : constraint.conjuncts()) {
    best = std::min(best, c.stddev());
  }
  return best;
}

struct SplitCandidate {
  std::string attribute;
  double weighted_objective = std::numeric_limits<double>::infinity();
  std::map<std::string, dataframe::DataFrame> partitions;
};

}  // namespace

namespace {

StatusOr<std::unique_ptr<TreeNode>> Build(
    const dataframe::DataFrame& df,
    std::vector<std::string> available_attributes, size_t depth,
    const TreeOptions& options, const Synthesizer& synthesizer) {
  auto node = std::make_unique<TreeNode>();
  node->num_rows = df.num_rows();
  CCS_ASSIGN_OR_RETURN(node->constraint, synthesizer.SynthesizeSimple(df));

  if (depth >= options.max_depth || df.num_rows() < options.min_split_rows ||
      available_attributes.empty()) {
    return node;
  }
  double parent_objective = Objective(node->constraint);
  if (parent_objective <= 0.0) return node;  // Already an equality.

  // Evaluate every candidate split attribute.
  SplitCandidate best;
  for (const std::string& attr : available_attributes) {
    auto partitions = df.PartitionBy(attr);
    if (!partitions.ok()) continue;
    if (partitions->size() < 2 ||
        partitions->size() > options.synthesis.max_categorical_domain) {
      continue;
    }
    bool viable = true;
    double weighted = 0.0;
    for (const auto& [value, part] : *partitions) {
      if (part.num_rows() < options.min_leaf_rows) {
        viable = false;
        break;
      }
      auto child_constraint = synthesizer.SynthesizeSimple(part);
      if (!child_constraint.ok()) {
        viable = false;
        break;
      }
      weighted += Objective(*child_constraint) *
                  static_cast<double>(part.num_rows()) /
                  static_cast<double>(df.num_rows());
    }
    if (!viable) continue;
    if (weighted < best.weighted_objective) {
      best.attribute = attr;
      best.weighted_objective = weighted;
      best.partitions = std::move(partitions).value();
    }
  }

  if (best.attribute.empty()) return node;
  double gain = (parent_objective - best.weighted_objective) /
                parent_objective;
  if (gain < options.min_relative_gain) return node;

  // Accept the split; the attribute is consumed along this path.
  node->split_attribute = best.attribute;
  std::vector<std::string> remaining;
  for (const std::string& attr : available_attributes) {
    if (attr != best.attribute) remaining.push_back(attr);
  }
  for (auto& [value, part] : best.partitions) {
    CCS_ASSIGN_OR_RETURN(
        std::unique_ptr<TreeNode> child,
        Build(part, remaining, depth + 1, options, synthesizer));
    node->children.emplace(value, std::move(child));
  }
  return node;
}

}  // namespace

StatusOr<ConstraintTree> ConstraintTree::Fit(const dataframe::DataFrame& df,
                                             const TreeOptions& options) {
  if (df.num_rows() == 0) {
    return Status::InvalidArgument("ConstraintTree::Fit: empty dataset");
  }
  Synthesizer synthesizer(options.synthesis);
  std::vector<std::string> categorical = df.CategoricalNames();
  CCS_ASSIGN_OR_RETURN(
      std::unique_ptr<TreeNode> root,
      Build(df, std::move(categorical), 0, options, synthesizer));
  return ConstraintTree(std::move(root), options);
}

StatusOr<double> ConstraintTree::Violation(const dataframe::DataFrame& df,
                                           size_t row) const {
  if (row >= df.num_rows()) {
    return Status::OutOfRange("ConstraintTree::Violation: row out of range");
  }
  const TreeNode* node = root_.get();
  while (!node->is_leaf()) {
    auto value = df.CategoricalValue(row, node->split_attribute);
    if (!value.ok()) break;  // Attribute absent: score at this node.
    auto it = node->children.find(*value);
    if (it == node->children.end()) {
      // Unseen branch value: the quantitative analogue of an undefined
      // simp — blend this node's (fallback) violation with the penalty.
      CCS_ASSIGN_OR_RETURN(double fallback, node->constraint.Violation(df, row));
      return 0.5 * fallback + 0.5 * options_.unseen_value_penalty;
    }
    node = it->second.get();
  }
  return node->constraint.Violation(df, row);
}

StatusOr<linalg::Vector> ConstraintTree::ViolationAll(
    const dataframe::DataFrame& df) const {
  linalg::Vector out(df.num_rows());
  for (size_t i = 0; i < df.num_rows(); ++i) {
    CCS_ASSIGN_OR_RETURN(out[i], Violation(df, i));
  }
  return out;
}

StatusOr<double> ConstraintTree::MeanViolation(
    const dataframe::DataFrame& df) const {
  if (df.num_rows() == 0) {
    return Status::InvalidArgument("ConstraintTree: empty dataset");
  }
  CCS_ASSIGN_OR_RETURN(linalg::Vector v, ViolationAll(df));
  return v.Mean();
}

namespace {

void CountLeaves(const TreeNode& node, size_t* leaves) {
  if (node.is_leaf()) {
    ++*leaves;
    return;
  }
  for (const auto& [value, child] : node.children) {
    CountLeaves(*child, leaves);
  }
}

size_t Depth(const TreeNode& node) {
  size_t best = 0;
  for (const auto& [value, child] : node.children) {
    best = std::max(best, 1 + Depth(*child));
  }
  return best;
}

void Render(const TreeNode& node, const std::string& indent,
            std::ostringstream& os) {
  if (node.is_leaf()) {
    os << indent << "leaf (" << node.num_rows << " rows, "
       << node.constraint.conjuncts().size() << " conjuncts)\n";
    return;
  }
  os << indent << "split on " << node.split_attribute << " ("
     << node.num_rows << " rows)\n";
  for (const auto& [value, child] : node.children) {
    os << indent << "  = " << value << ":\n";
    Render(*child, indent + "    ", os);
  }
}

}  // namespace

size_t ConstraintTree::num_leaves() const {
  size_t leaves = 0;
  CountLeaves(*root_, &leaves);
  return leaves;
}

size_t ConstraintTree::depth() const { return Depth(*root_); }

std::string ConstraintTree::ToString() const {
  std::ostringstream os;
  Render(*root_, "", os);
  return os.str();
}

}  // namespace ccs::core
