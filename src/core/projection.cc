#include "core/projection.h"

#include <cmath>
#include <sstream>

#include "common/string_util.h"

namespace ccs::core {

StatusOr<Projection> Projection::Create(
    std::vector<std::string> attribute_names, linalg::Vector coefficients) {
  if (attribute_names.size() != coefficients.size()) {
    return Status::InvalidArgument(
        "Projection: names/coefficients size mismatch");
  }
  if (attribute_names.empty()) {
    return Status::InvalidArgument("Projection: empty attribute list");
  }
  return Projection(std::move(attribute_names), std::move(coefficients));
}

StatusOr<double> Projection::Evaluate(const dataframe::DataFrame& df,
                                      size_t row) const {
  double acc = 0.0;
  for (size_t j = 0; j < names_.size(); ++j) {
    CCS_ASSIGN_OR_RETURN(double v, df.NumericValue(row, names_[j]));
    // ccs-lint: allow(fp-accumulate): by-name tuple dot product in
    // declared attribute order — the same term order as the aligned
    // Vector::Dot path, and serial in every caller.
    acc += coefficients_[j] * v;
  }
  return acc;
}

linalg::Vector Projection::EvaluateAllAligned(
    const linalg::Matrix& data) const {
  return data.Multiply(coefficients_);
}

StatusOr<linalg::Vector> Projection::EvaluateAll(
    const dataframe::DataFrame& df) const {
  // Lazy path: one derived kCombine column over the named attributes,
  // evaluated by the shared EvalCombineColumn kernel straight into the
  // result vector — the n x k matrix this used to materialize through
  // NumericMatrixFor is gone. Term order (ascending j, value *
  // coefficient, seeded from 0.0) matches per-row Evaluate and the
  // aligned mat-vec kernels, so finite-data results are bitwise
  // identical to the old data.Multiply(coefficients_) route (see
  // docs/architecture.md, "Derived columns").
  const std::vector<dataframe::ColumnExpr> exprs = {
      dataframe::ColumnExpr::Combine(names_, &coefficients_.data())};
  CCS_ASSIGN_OR_RETURN(linalg::MatrixView view, df.DerivedViewFor(exprs));
  linalg::Vector out(view.rows());
  view.MaterializeColumn(0, out.data().data());
  return out;
}

StatusOr<Projection> Projection::Normalized() const {
  double norm = coefficients_.Norm();
  if (norm <= 0.0) {
    return Status::FailedPrecondition("Projection: zero coefficient vector");
  }
  linalg::Vector scaled = coefficients_;
  scaled.Scale(1.0 / norm);
  return Projection(names_, std::move(scaled));
}

std::string Projection::ToString() const {
  constexpr double kElisionThreshold = 5e-7;
  std::ostringstream os;
  bool first = true;
  bool any = false;
  for (size_t j = 0; j < names_.size(); ++j) {
    double c = coefficients_[j];
    if (std::abs(c) < kElisionThreshold) continue;
    any = true;
    if (first) {
      if (c < 0.0) os << "-";
    } else {
      os << (c < 0.0 ? " - " : " + ");
    }
    double mag = std::abs(c);
    if (std::abs(mag - 1.0) > 1e-12) {
      os << FormatDouble(mag) << "*";
    }
    os << names_[j];
    first = false;
  }
  if (!any) {
    // All coefficients tiny: print them anyway rather than an empty string.
    for (size_t j = 0; j < names_.size(); ++j) {
      if (j > 0) os << " + ";
      os << FormatDouble(coefficients_[j]) << "*" << names_[j];
    }
  }
  return os.str();
}

}  // namespace ccs::core
