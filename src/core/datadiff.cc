#include "core/datadiff.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace ccs::core {

std::string DatasetDiff::ToString() const {
  std::ostringstream os;
  os << "violation(B | profile of A) = " << FormatDouble(violation_b_against_a)
     << "\n";
  os << "violation(A | profile of B) = " << FormatDouble(violation_a_against_b)
     << "\n";
  if (!partitions.empty()) {
    os << "top drifted partitions (B against A):\n";
    size_t shown = 0;
    for (const PartitionDiff& p : partitions) {
      if (shown++ >= 10) break;
      os << "  " << p.attribute << " = " << p.value << ": violation "
         << FormatDouble(p.violation_b_against_a) << " (A rows " << p.rows_a
         << ", B rows " << p.rows_b << ")\n";
    }
  }
  if (!responsibilities.empty()) {
    os << "attribute responsibility (B against A):\n";
    for (const AttributeResponsibility& r : responsibilities) {
      os << "  " << r.attribute << ": " << FormatDouble(r.responsibility)
         << "\n";
    }
  }
  return os.str();
}

StatusOr<DatasetDiff> DiffDatasets(const dataframe::DataFrame& a,
                                   const dataframe::DataFrame& b,
                                   const SynthesisOptions& options) {
  if (a.num_rows() == 0 || b.num_rows() == 0) {
    return Status::InvalidArgument("DiffDatasets: empty input");
  }
  if (!(a.schema() == b.schema())) {
    // Allow column reordering: check same name/type multiset via lookup.
    if (a.num_columns() != b.num_columns()) {
      return Status::InvalidArgument("DiffDatasets: schema mismatch");
    }
    for (const auto& attr : a.schema().attributes()) {
      auto idx = b.schema().IndexOf(attr.name);
      if (!idx.ok() || b.schema().attribute(*idx).type != attr.type) {
        return Status::InvalidArgument("DiffDatasets: schema mismatch on " +
                                       attr.name);
      }
    }
  }

  Synthesizer synthesizer(options);
  DatasetDiff diff;

  // Symmetric dataset-level violations.
  CCS_ASSIGN_OR_RETURN(ConformanceConstraint profile_a,
                       synthesizer.Synthesize(a));
  CCS_ASSIGN_OR_RETURN(ConformanceConstraint profile_b,
                       synthesizer.Synthesize(b));
  CCS_ASSIGN_OR_RETURN(diff.violation_b_against_a, profile_a.MeanViolation(b));
  CCS_ASSIGN_OR_RETURN(diff.violation_a_against_b, profile_b.MeanViolation(a));

  // Per-partition breakdown over every small-domain categorical attr.
  for (const std::string& attr : a.CategoricalNames()) {
    CCS_ASSIGN_OR_RETURN(const dataframe::Column* col, a.ColumnByName(attr));
    if (col->DistinctValues().size() > options.max_categorical_domain) {
      continue;
    }
    CCS_ASSIGN_OR_RETURN(auto parts_a, a.PartitionBy(attr));
    CCS_ASSIGN_OR_RETURN(auto parts_b, b.PartitionBy(attr));
    for (const auto& [value, part_b] : parts_b) {
      PartitionDiff entry;
      entry.attribute = attr;
      entry.value = value;
      entry.rows_b = part_b.num_rows();
      auto it = parts_a.find(value);
      if (it == parts_a.end() ||
          it->second.num_rows() < options.min_partition_rows) {
        entry.rows_a = it == parts_a.end() ? 0 : it->second.num_rows();
        entry.violation_b_against_a = 1.0;  // No profile to conform to.
      } else {
        entry.rows_a = it->second.num_rows();
        auto constraint = synthesizer.SynthesizeSimple(it->second);
        if (!constraint.ok()) continue;
        CCS_ASSIGN_OR_RETURN(linalg::Vector v,
                             constraint->ViolationAll(part_b));
        entry.violation_b_against_a = v.Mean();
      }
      diff.partitions.push_back(std::move(entry));
    }
  }
  std::sort(diff.partitions.begin(), diff.partitions.end(),
            [](const PartitionDiff& x, const PartitionDiff& y) {
              return x.violation_b_against_a > y.violation_b_against_a;
            });

  // Attribute responsibility of B's drift from A.
  auto explainer = NonConformanceExplainer::FromTrainingData(a);
  if (explainer.ok()) {
    auto responsibilities = explainer->ExplainDataset(b);
    if (responsibilities.ok()) {
      diff.responsibilities = std::move(responsibilities).value();
      std::sort(diff.responsibilities.begin(), diff.responsibilities.end(),
                [](const AttributeResponsibility& x,
                   const AttributeResponsibility& y) {
                  return x.responsibility > y.responsibility;
                });
    }
  }
  return diff;
}

}  // namespace ccs::core
