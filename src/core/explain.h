// ExTuNe-style responsibility analysis for non-conformance (Appendix K).
//
// For a non-conforming tuple t and attribute A_i:
//   (1) intervene on t.A_i, replacing it with the training mean of A_i;
//   (2) greedily count how many ADDITIONAL attributes must also be reset
//       to their means before the tuple satisfies the constraints;
//   (3) if K additional fixes were needed, A_i's responsibility is
//       1 / (K + 1).
// Averaging over a serving set gives per-attribute responsibility for the
// observed drift (the bar charts of Fig. 12).

#ifndef CCS_CORE_EXPLAIN_H_
#define CCS_CORE_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/constraint.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// Responsibility of one attribute for observed non-conformance.
struct AttributeResponsibility {
  std::string attribute;
  double responsibility = 0.0;
};

/// Explains non-conformance of serving tuples against a (global) simple
/// constraint learned on `training`.
class NonConformanceExplainer {
 public:
  /// `constraint` must have been learned on data with the same numeric
  /// attributes as `training_means` describes.
  NonConformanceExplainer(SimpleConstraint constraint,
                          std::vector<std::string> attribute_names,
                          linalg::Vector training_means);

  /// Builds an explainer from training data directly: synthesizes the
  /// simple constraint and records attribute means.
  static StatusOr<NonConformanceExplainer> FromTrainingData(
      const dataframe::DataFrame& training);

  /// Per-attribute responsibility for one (aligned) numeric tuple.
  /// Conforming tuples yield all-zero responsibilities.
  StatusOr<std::vector<AttributeResponsibility>> ExplainTuple(
      const linalg::Vector& numeric_tuple) const;

  /// Mean per-attribute responsibility over a serving dataset.
  StatusOr<std::vector<AttributeResponsibility>> ExplainDataset(
      const dataframe::DataFrame& serving) const;

  const std::vector<std::string>& attribute_names() const { return names_; }

 private:
  /// Greedy count of additional mean-resets needed after fixing
  /// `first_fixed`; returns the count, or attribute count if even fixing
  /// everything does not reach conformance (cannot happen: the all-means
  /// tuple satisfies mu +/- C sigma bounds).
  size_t AdditionalFixes(const linalg::Vector& tuple,
                         size_t first_fixed) const;

  SimpleConstraint constraint_;
  std::vector<std::string> names_;
  linalg::Vector means_;
};

}  // namespace ccs::core

#endif  // CCS_CORE_EXPLAIN_H_
