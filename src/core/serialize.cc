#include "core/serialize.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/string_util.h"

namespace ccs::core {

namespace {

// Round-trippable double formatting.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void PrettySimple(const SimpleConstraint& c, const std::string& indent,
                  std::ostringstream& os) {
  for (const BoundedConstraint& b : c.conjuncts()) {
    os << indent << FormatDouble(b.lb()) << " <= "
       << b.projection().ToString() << " <= " << FormatDouble(b.ub())
       << "   [mean=" << FormatDouble(b.mean())
       << ", std=" << FormatDouble(b.stddev())
       << ", weight=" << FormatDouble(b.importance()) << "]\n";
  }
}

std::string SqlProjection(const Projection& p) {
  std::ostringstream os;
  bool first = true;
  for (size_t j = 0; j < p.attribute_names().size(); ++j) {
    double coef = p.coefficients()[j];
    if (coef == 0.0) continue;
    if (!first) os << " + ";
    os << "(" << Num(coef) << " * \"" << p.attribute_names()[j] << "\")";
    first = false;
  }
  if (first) os << "0";
  return os.str();
}

std::string SqlSimple(const SimpleConstraint& c) {
  std::ostringstream os;
  bool first = true;
  for (const BoundedConstraint& b : c.conjuncts()) {
    if (!first) os << " AND ";
    std::string proj = SqlProjection(b.projection());
    os << "(" << proj << " BETWEEN " << Num(b.lb()) << " AND " << Num(b.ub())
       << ")";
    first = false;
  }
  if (first) os << "TRUE";
  return os.str();
}

}  // namespace

std::string ToPrettyString(const SimpleConstraint& constraint) {
  std::ostringstream os;
  PrettySimple(constraint, "", os);
  return os.str();
}

std::string ToPrettyString(const DisjunctiveConstraint& constraint) {
  std::ostringstream os;
  for (const auto& [value, simple] : constraint.cases()) {
    os << constraint.attribute() << " = \"" << value << "\" |>\n";
    PrettySimple(simple, "    ", os);
  }
  return os.str();
}

std::string ToPrettyString(const ConformanceConstraint& constraint) {
  std::ostringstream os;
  if (constraint.has_global()) {
    os << "GLOBAL:\n";
    PrettySimple(constraint.global(), "  ", os);
  }
  for (const DisjunctiveConstraint& d : constraint.disjunctions()) {
    os << "DISJUNCTION on " << d.attribute() << ":\n";
    for (const auto& [value, simple] : d.cases()) {
      os << "  " << d.attribute() << " = \"" << value << "\" |>\n";
      PrettySimple(simple, "      ", os);
    }
  }
  return os.str();
}

std::string ToSqlCheck(const SimpleConstraint& constraint) {
  return SqlSimple(constraint);
}

std::string ToSqlCheck(const ConformanceConstraint& constraint) {
  std::ostringstream os;
  bool first = true;
  if (constraint.has_global()) {
    os << "(" << SqlSimple(constraint.global()) << ")";
    first = false;
  }
  for (const DisjunctiveConstraint& d : constraint.disjunctions()) {
    if (!first) os << " AND ";
    os << "(CASE";
    for (const auto& [value, simple] : d.cases()) {
      os << " WHEN \"" << d.attribute() << "\" = '" << value << "' THEN ("
         << SqlSimple(simple) << ")";
    }
    os << " ELSE FALSE END)";
    first = false;
  }
  if (first) os << "TRUE";
  return os.str();
}

namespace {

void SerializeSimple(const SimpleConstraint& c, std::ostringstream& os) {
  os << "simple " << c.conjuncts().size() << " "
     << c.attribute_names().size() << "\n";
  for (const std::string& name : c.attribute_names()) {
    os << "a " << name << "\n";
  }
  for (const BoundedConstraint& b : c.conjuncts()) {
    os << "c " << Num(b.lb()) << " " << Num(b.ub()) << " " << Num(b.mean())
       << " " << Num(b.stddev()) << " " << Num(b.importance());
    for (size_t j = 0; j < b.projection().coefficients().size(); ++j) {
      os << " " << Num(b.projection().coefficients()[j]);
    }
    os << "\n";
  }
}

class LineReader {
 public:
  explicit LineReader(const std::string& text) : stream_(text) {}

  StatusOr<std::string> Next() {
    std::string line;
    if (!std::getline(stream_, line)) {
      return Status::InvalidArgument("Deserialize: unexpected end of input");
    }
    return line;
  }

 private:
  std::istringstream stream_;
};

StatusOr<SimpleConstraint> ParseSimple(LineReader* reader,
                                       const std::string& header) {
  std::istringstream hs(header);
  std::string tag;
  size_t num_conjuncts = 0, num_attrs = 0;
  hs >> tag >> num_conjuncts >> num_attrs;
  if (tag != "simple" || hs.fail()) {
    return Status::InvalidArgument("Deserialize: bad simple header");
  }
  std::vector<std::string> names;
  names.reserve(num_attrs);
  for (size_t i = 0; i < num_attrs; ++i) {
    CCS_ASSIGN_OR_RETURN(std::string line, reader->Next());
    if (!StartsWith(line, "a ")) {
      return Status::InvalidArgument("Deserialize: expected attribute line");
    }
    names.push_back(line.substr(2));
  }
  std::vector<BoundedConstraint> conjuncts;
  conjuncts.reserve(num_conjuncts);
  for (size_t i = 0; i < num_conjuncts; ++i) {
    CCS_ASSIGN_OR_RETURN(std::string line, reader->Next());
    std::istringstream ls(line);
    std::string ctag;
    double lb, ub, mean, stddev, importance;
    ls >> ctag >> lb >> ub >> mean >> stddev >> importance;
    if (ctag != "c" || ls.fail()) {
      return Status::InvalidArgument("Deserialize: bad conjunct line");
    }
    linalg::Vector coefs(num_attrs);
    for (size_t j = 0; j < num_attrs; ++j) {
      ls >> coefs[j];
    }
    if (ls.fail()) {
      return Status::InvalidArgument("Deserialize: bad coefficients");
    }
    CCS_ASSIGN_OR_RETURN(Projection proj,
                         Projection::Create(names, std::move(coefs)));
    conjuncts.emplace_back(std::move(proj), lb, ub, mean, stddev, importance);
  }
  return SimpleConstraint::Create(std::move(names), std::move(conjuncts));
}

}  // namespace

std::string Serialize(const ConformanceConstraint& constraint) {
  std::ostringstream os;
  os << "ccs-constraint v1\n";
  os << "global " << (constraint.has_global() ? 1 : 0) << "\n";
  if (constraint.has_global()) {
    SerializeSimple(constraint.global(), os);
  }
  for (const DisjunctiveConstraint& d : constraint.disjunctions()) {
    os << "disj " << d.cases().size() << " " << d.attribute() << "\n";
    for (const auto& [value, simple] : d.cases()) {
      os << "value " << value << "\n";
      SerializeSimple(simple, os);
    }
  }
  os << "end\n";
  return os.str();
}

StatusOr<ConformanceConstraint> Deserialize(const std::string& text) {
  LineReader reader(text);
  CCS_ASSIGN_OR_RETURN(std::string header, reader.Next());
  if (header != "ccs-constraint v1") {
    return Status::InvalidArgument("Deserialize: bad header: " + header);
  }
  CCS_ASSIGN_OR_RETURN(std::string global_line, reader.Next());
  std::istringstream gs(global_line);
  std::string tag;
  int has_global = 0;
  gs >> tag >> has_global;
  if (tag != "global" || gs.fail()) {
    return Status::InvalidArgument("Deserialize: bad global line");
  }
  SimpleConstraint global;
  if (has_global != 0) {
    CCS_ASSIGN_OR_RETURN(std::string sheader, reader.Next());
    CCS_ASSIGN_OR_RETURN(global, ParseSimple(&reader, sheader));
  }
  std::vector<DisjunctiveConstraint> disjunctions;
  while (true) {
    CCS_ASSIGN_OR_RETURN(std::string line, reader.Next());
    if (line == "end") break;
    std::istringstream ds(line);
    std::string dtag;
    size_t num_cases = 0;
    ds >> dtag >> num_cases;
    if (dtag != "disj" || ds.fail()) {
      return Status::InvalidArgument("Deserialize: bad disjunction line");
    }
    std::string attribute;
    std::getline(ds, attribute);
    attribute = std::string(Trim(attribute));
    if (attribute.empty()) {
      return Status::InvalidArgument("Deserialize: missing disj attribute");
    }
    std::map<std::string, SimpleConstraint> cases;
    for (size_t i = 0; i < num_cases; ++i) {
      CCS_ASSIGN_OR_RETURN(std::string vline, reader.Next());
      if (!StartsWith(vline, "value ")) {
        return Status::InvalidArgument("Deserialize: expected value line");
      }
      std::string value = vline.substr(6);
      CCS_ASSIGN_OR_RETURN(std::string sheader, reader.Next());
      CCS_ASSIGN_OR_RETURN(SimpleConstraint simple,
                           ParseSimple(&reader, sheader));
      cases.emplace(std::move(value), std::move(simple));
    }
    disjunctions.emplace_back(attribute, std::move(cases));
  }
  return ConformanceConstraint(std::move(global), std::move(disjunctions));
}

}  // namespace ccs::core
