// The conformance-constraint language (paper §3.1) and its Boolean and
// quantitative semantics (§3.2).
//
// Grammar:
//   phi   := lb <= F(A) <= ub | AND(phi, ...)          (simple)
//   psi_A := OR((A = c1) |> phi_1, (A = c2) |> phi_2, ...)
//   Psi   := psi_A | AND(psi_A1, psi_A2, ...)          (compound)
//   Phi   := phi | Psi
//
// Quantitative semantics maps a tuple to a violation in [0, 1]:
//   [[lb <= F <= ub]](t) = eta(alpha * max(0, F(t)-ub, lb-F(t)))
//       with alpha = 1/sigma(F(D)), eta(z) = 1 - exp(-z)
//   [[AND(phi_k)]](t)    = sum_k gamma_k [[phi_k]](t),  sum gamma_k = 1
//   [[psi_A]](t)         = [[phi_k]](t) if t.A = c_k, else 1 (undefined simp)

#ifndef CCS_CORE_CONSTRAINT_H_
#define CCS_CORE_CONSTRAINT_H_

#include <map>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/projection.h"
#include "dataframe/dataframe.h"
#include "linalg/matrix_view.h"

namespace ccs::core {

/// lb <= F(A) <= ub, with the training-set statistics that parameterize
/// the quantitative semantics.
class BoundedConstraint {
 public:
  BoundedConstraint() = default;

  /// `mean`/`stddev` are mu(F(D)) and sigma(F(D)) on the training data;
  /// `importance` is the normalized gamma weight within the enclosing
  /// conjunction.
  BoundedConstraint(Projection projection, double lb, double ub, double mean,
                    double stddev, double importance);

  const Projection& projection() const { return projection_; }
  double lb() const { return lb_; }
  double ub() const { return ub_; }
  double mean() const { return mean_; }
  double stddev() const { return stddev_; }
  double importance() const { return importance_; }

  /// Boolean semantics on an aligned numeric tuple.
  bool IsSatisfiedAligned(const linalg::Vector& numeric_tuple) const;

  /// Quantitative semantics on an aligned numeric tuple, in [0, 1).
  double ViolationAligned(const linalg::Vector& numeric_tuple) const;

  /// Violation for an already-computed projection value F(t).
  double ViolationOfValue(double value) const;

 private:
  Projection projection_;
  double lb_ = 0.0;
  double ub_ = 0.0;
  double mean_ = 0.0;
  double stddev_ = 0.0;
  double importance_ = 1.0;
  double alpha_ = 1.0;  // Scaling factor 1/sigma (capped when sigma ~ 0).
};

/// A conjunction of bounded constraints over a fixed numeric-attribute
/// list; the "simple constraint" phi of the grammar.
class SimpleConstraint {
 public:
  SimpleConstraint() = default;

  /// `attribute_names` is the shared attribute order all conjuncts'
  /// projections use; every conjunct must match it (checked).
  static StatusOr<SimpleConstraint> Create(
      std::vector<std::string> attribute_names,
      std::vector<BoundedConstraint> conjuncts);

  const std::vector<std::string>& attribute_names() const { return names_; }
  const std::vector<BoundedConstraint>& conjuncts() const {
    return conjuncts_;
  }
  bool empty() const { return conjuncts_.empty(); }

  /// Boolean semantics: all conjuncts satisfied.
  bool IsSatisfiedAligned(const linalg::Vector& numeric_tuple) const;

  /// Quantitative semantics: gamma-weighted sum of conjunct violations.
  double ViolationAligned(const linalg::Vector& numeric_tuple) const;

  /// Violations of every row of an aligned data matrix (columns in
  /// attribute_names() order). All conjunct projections are evaluated as
  /// one chunk-parallel matrix-matrix product; results are bitwise
  /// identical to calling ViolationAligned row by row.
  linalg::Vector ViolationAllAligned(const linalg::Matrix& data) const;

  /// The same batched kernel over a non-owning columnar view: the
  /// gather happens inside MatrixView::MultiplyRowRange, so scoring a
  /// view-backed frame materializes no per-call matrix. Bitwise
  /// identical to ViolationAllAligned(data.ToMatrix()).
  linalg::Vector ViolationAllAligned(const linalg::MatrixView& data) const;

  /// Violation of row `row` of `df` (attributes located by name).
  StatusOr<double> Violation(const dataframe::DataFrame& df,
                             size_t row) const;

  /// Violations of every row of `df`.
  StatusOr<linalg::Vector> ViolationAll(const dataframe::DataFrame& df) const;

 private:
  std::vector<std::string> names_;
  std::vector<BoundedConstraint> conjuncts_;
};

/// OR((A = c_k) |> phi_k): a disjunction switched on one categorical
/// attribute (psi_A of the grammar).
class DisjunctiveConstraint {
 public:
  DisjunctiveConstraint() = default;

  /// `attribute` is the categorical switch attribute; `cases` maps each of
  /// its values to the simple constraint learned on that partition.
  DisjunctiveConstraint(std::string attribute,
                        std::map<std::string, SimpleConstraint> cases)
      : attribute_(std::move(attribute)), cases_(std::move(cases)) {}

  const std::string& attribute() const { return attribute_; }
  const std::map<std::string, SimpleConstraint>& cases() const {
    return cases_;
  }

  /// simp(psi, t): the case for t.attribute, or NotFound when the value is
  /// unseen (simp undefined => violation 1 under quantitative semantics).
  StatusOr<const SimpleConstraint*> Simplify(const dataframe::DataFrame& df,
                                             size_t row) const;

  /// Quantitative semantics of row `row`.
  StatusOr<double> Violation(const dataframe::DataFrame& df,
                             size_t row) const;

  /// Boolean semantics of row `row` (unseen switch value => violated).
  StatusOr<bool> IsSatisfied(const dataframe::DataFrame& df,
                             size_t row) const;

  /// Quantitative semantics of every row (grouped fast path).
  StatusOr<linalg::Vector> ViolationAll(const dataframe::DataFrame& df) const;

 private:
  std::string attribute_;
  std::map<std::string, SimpleConstraint> cases_;
};

/// Phi: the top-level conformance constraint — an optional global simple
/// constraint conjoined with zero or more disjunctive constraints (the
/// compound AND(psi_A1, psi_A2, ...) of the grammar).
///
/// Quantitative semantics averages the group violations (each group —
/// the global constraint or one disjunction — is internally normalized,
/// so groups contribute equally, mirroring the paper's conjunction rule
/// with uniform weights across groups).
class ConformanceConstraint {
 public:
  ConformanceConstraint() = default;

  ConformanceConstraint(SimpleConstraint global,
                        std::vector<DisjunctiveConstraint> disjunctions)
      : global_(std::move(global)), disjunctions_(std::move(disjunctions)) {}

  const SimpleConstraint& global() const { return global_; }
  const std::vector<DisjunctiveConstraint>& disjunctions() const {
    return disjunctions_;
  }

  bool has_global() const { return !global_.empty(); }
  size_t num_groups() const {
    return (has_global() ? 1 : 0) + disjunctions_.size();
  }

  /// Violation of row `row` of `df`, in [0, 1].
  StatusOr<double> Violation(const dataframe::DataFrame& df,
                             size_t row) const;

  /// Violations of every row.
  StatusOr<linalg::Vector> ViolationAll(const dataframe::DataFrame& df) const;

  /// Mean violation over the whole frame — the dataset-level
  /// non-conformance used to quantify drift (§2).
  StatusOr<double> MeanViolation(const dataframe::DataFrame& df) const;

  /// Boolean semantics of row `row`.
  StatusOr<bool> IsSatisfied(const dataframe::DataFrame& df,
                             size_t row) const;

 private:
  SimpleConstraint global_;
  std::vector<DisjunctiveConstraint> disjunctions_;
};

/// True iff the two constraints are exactly equal: same structure, same
/// attribute names and partition keys, and every floating-point
/// parameter (projection coefficients, bounds, means, stddevs,
/// importances) identical as a BIT PATTERN — no tolerance, -0.0 != +0.0,
/// NaN == NaN. This is the checker for the parallel-synthesis
/// determinism contract: synthesis at any thread count must produce a
/// constraint ConstraintsBitwiseEqual to the single-threaded one.
bool ConstraintsBitwiseEqual(const BoundedConstraint& a,
                             const BoundedConstraint& b);
bool ConstraintsBitwiseEqual(const SimpleConstraint& a,
                             const SimpleConstraint& b);
bool ConstraintsBitwiseEqual(const DisjunctiveConstraint& a,
                             const DisjunctiveConstraint& b);
bool ConstraintsBitwiseEqual(const ConformanceConstraint& a,
                             const ConformanceConstraint& b);

}  // namespace ccs::core

#endif  // CCS_CORE_CONSTRAINT_H_
