// Polynomial feature maps for nonlinear conformance constraints (§5.1).
//
// The paper limits evaluation to the linear kernel but notes the framework
// extends to nonlinear constraints via kernelized PCA. We implement the
// explicit degree-2 polynomial feature map: augmenting the dataset with
// squares and pairwise products makes LINEAR constraints over the expanded
// space express QUADRATIC constraints over the original attributes.

#ifndef CCS_CORE_KERNEL_H_
#define CCS_CORE_KERNEL_H_

#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// Options for the polynomial expansion.
struct PolynomialExpansionOptions {
  /// Include squared terms x_i^2 (named "<a>^2").
  bool include_squares = true;
  /// Include cross terms x_i * x_j, i < j (named "<a>*<b>").
  bool include_cross_terms = true;
  /// Keep the original (degree-1) attributes.
  bool keep_linear = true;
};

/// Returns a copy of `df` whose numeric attributes are expanded with
/// degree-2 terms; categorical attributes pass through unchanged.
/// Synthesizing on the result yields nonlinear conformance constraints.
StatusOr<dataframe::DataFrame> ExpandPolynomial(
    const dataframe::DataFrame& df,
    const PolynomialExpansionOptions& options = PolynomialExpansionOptions());

}  // namespace ccs::core

#endif  // CCS_CORE_KERNEL_H_
