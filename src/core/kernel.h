// Polynomial feature maps for nonlinear conformance constraints (§5.1).
//
// The paper limits evaluation to the linear kernel but notes the framework
// extends to nonlinear constraints via kernelized PCA. We implement the
// explicit degree-2 polynomial feature map: augmenting the dataset with
// squares and pairwise products makes LINEAR constraints over the expanded
// space express QUADRATIC constraints over the original attributes.

#ifndef CCS_CORE_KERNEL_H_
#define CCS_CORE_KERNEL_H_

#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// Options for the polynomial expansion.
struct PolynomialExpansionOptions {
  /// Include squared terms x_i^2 (named "<a>^2").
  bool include_squares = true;
  /// Include cross terms x_i * x_j, i < j (named "<a>*<b>").
  bool include_cross_terms = true;
  /// Keep the original (degree-1) attributes.
  bool keep_linear = true;
};

/// The expanded attribute names, in expansion order: linear terms,
/// then squares ("<a>^2"), then cross terms ("<a>*<b>", a before b in
/// `numeric` order). Shared by both expansion paths below, so the lazy
/// and materialized expansions always agree on schema.
std::vector<std::string> ExpandedNames(
    const std::vector<std::string>& numeric,
    const PolynomialExpansionOptions& options = PolynomialExpansionOptions());

/// The expansion as derived-column expressions over `numeric` (same
/// order as ExpandedNames): Source for linear terms, Product for
/// squares and cross terms. Feed to DataFrame::DerivedViewFor.
std::vector<dataframe::ColumnExpr> ExpansionExprs(
    const std::vector<std::string>& numeric,
    const PolynomialExpansionOptions& options = PolynomialExpansionOptions());

/// A lazy polynomial expansion: names plus a zero-allocation derived
/// view over the source frame.
struct ExpandedView {
  std::vector<std::string> names;
  linalg::MatrixView view;
};

/// The degree-2 expansion of `df`'s numeric attributes as a *lazy*
/// derived-column view — nothing materialized; squares and cross terms
/// are computed block-by-block by the shared Eval*Column kernels as
/// consumers (Gram accumulation, scoring) walk the view. Bitwise
/// identical to synthesizing over ExpandPolynomial's output (one
/// compiled kernel per op on both paths). The view borrows `df`'s
/// buffers: it must not outlive the frame. Unlike ExpandPolynomial the
/// result carries numeric columns only (no categorical passthrough),
/// so an options combination producing no terms is an error even when
/// `df` has categorical attributes.
StatusOr<ExpandedView> ExpandPolynomialView(
    const dataframe::DataFrame& df,
    const PolynomialExpansionOptions& options = PolynomialExpansionOptions());

/// Returns a copy of `df` whose numeric attributes are expanded with
/// degree-2 terms; categorical attributes pass through unchanged.
/// Synthesizing on the result yields nonlinear conformance constraints.
/// Materializes each expanded column through the same compiled kernels
/// the lazy view runs (MatrixView::MaterializeColumn), so the two
/// paths cannot diverge bitwise.
StatusOr<dataframe::DataFrame> ExpandPolynomial(
    const dataframe::DataFrame& df,
    const PolynomialExpansionOptions& options = PolynomialExpansionOptions());

}  // namespace ccs::core

#endif  // CCS_CORE_KERNEL_H_
