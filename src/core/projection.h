// Projection: a linear combination of numeric attributes (paper §3.1).
//
// The "lens" through which conformance constraints view tuples. A
// projection binds coefficient values to attribute *names*, so it can be
// evaluated against any DataFrame carrying those attributes regardless of
// column order.

#ifndef CCS_CORE_PROJECTION_H_
#define CCS_CORE_PROJECTION_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "dataframe/dataframe.h"
#include "linalg/vector.h"

namespace ccs::core {

/// F(A) = sum_j coefficients[j] * A[names[j]].
class Projection {
 public:
  Projection() = default;

  /// Binds coefficients to attribute names; sizes must match (checked).
  static StatusOr<Projection> Create(std::vector<std::string> attribute_names,
                                     linalg::Vector coefficients);

  const std::vector<std::string>& attribute_names() const { return names_; }
  const linalg::Vector& coefficients() const { return coefficients_; }
  size_t arity() const { return names_.size(); }

  /// Evaluates on a raw numeric tuple whose entries are aligned with
  /// attribute_names() (the fast path used in inner loops).
  double EvaluateAligned(const linalg::Vector& numeric_tuple) const {
    return coefficients_.Dot(numeric_tuple);
  }

  /// Evaluates on every row of an aligned data matrix whose columns
  /// follow attribute_names() order: returns F(D) = data * coefficients
  /// as one matrix-vector product (the batched fast path).
  linalg::Vector EvaluateAllAligned(const linalg::Matrix& data) const;

  /// Evaluates on row `row` of `df`, locating attributes by name.
  StatusOr<double> Evaluate(const dataframe::DataFrame& df, size_t row) const;

  /// Evaluates on every row of `df`; returns F(D) as a vector.
  StatusOr<linalg::Vector> EvaluateAll(const dataframe::DataFrame& df) const;

  /// Unit-L2-norm copy of this projection.
  StatusOr<Projection> Normalized() const;

  /// Human-readable form, e.g. "0.7*AT - 0.7*DT - 0.14*DUR".
  /// Coefficients with |c| < 5e-7 are elided (but never all of them).
  std::string ToString() const;

 private:
  Projection(std::vector<std::string> names, linalg::Vector coefficients)
      : names_(std::move(names)), coefficients_(std::move(coefficients)) {}

  std::vector<std::string> names_;
  linalg::Vector coefficients_;
};

}  // namespace ccs::core

#endif  // CCS_CORE_PROJECTION_H_
