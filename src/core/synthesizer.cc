#include "core/synthesizer.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/parallel.h"
#include "linalg/symmetric_eigen.h"
#include "obs/trace.h"

namespace ccs::core {

namespace {

double RawImportance(ImportanceMapping mapping, double stddev) {
  switch (mapping) {
    case ImportanceMapping::kInverseLog:
      return 1.0 / std::log(2.0 + stddev);
    case ImportanceMapping::kInverseLinear:
      return 1.0 / (1.0 + stddev);
    case ImportanceMapping::kUniform:
      return 1.0;
  }
  return 1.0;
}

}  // namespace

StatusOr<SimpleConstraint> Synthesizer::SynthesizeSimple(
    const dataframe::DataFrame& df) const {
  obs::ObsSpan span("synth.simple", "synth");
  std::vector<std::string> names = df.NumericNames();
  if (names.empty()) {
    return Status::InvalidArgument(
        "SynthesizeSimple: dataset has no numeric attributes");
  }
  if (df.num_rows() == 0) {
    return Status::InvalidArgument("SynthesizeSimple: empty dataset");
  }
  // Line 1-2 of Algorithm 1: drop non-numeric attributes, augment with a
  // ones column — both folded into the streaming Gram accumulator, which
  // walks the frame's columnar storage in place (no per-call matrix even
  // when df is a partition view).
  linalg::GramAccumulator gram(names.size());
  CCS_ASSIGN_OR_RETURN(linalg::MatrixView data, df.NumericViewFor(names));
  gram.AddView(data);
  return SynthesizeSimpleFromGram(names, gram);
}

StatusOr<SimpleConstraint> Synthesizer::SynthesizeSimpleFromView(
    const std::vector<std::string>& attribute_names,
    const linalg::MatrixView& view) const {
  obs::ObsSpan span("synth.simple", "synth");
  if (attribute_names.size() != view.cols()) {
    return Status::InvalidArgument(
        "SynthesizeSimpleFromView: attribute count mismatch");
  }
  if (attribute_names.empty()) {
    return Status::InvalidArgument(
        "SynthesizeSimpleFromView: dataset has no numeric attributes");
  }
  if (view.rows() == 0) {
    return Status::InvalidArgument("SynthesizeSimpleFromView: empty dataset");
  }
  // Same shape as SynthesizeSimple, but the view's columns may be
  // derived (polynomial terms, scaled attributes): the Gram walk
  // evaluates them block-by-block into its gather scratch, so the whole
  // synthesize half of the pipeline runs without materializing an
  // expanded frame.
  linalg::GramAccumulator gram(attribute_names.size());
  gram.AddView(view);
  return SynthesizeSimpleFromGram(attribute_names, gram);
}

StatusOr<SimpleConstraint> Synthesizer::SynthesizeSimpleFromGram(
    const std::vector<std::string>& attribute_names,
    const linalg::GramAccumulator& gram) const {
  if (gram.num_attributes() != attribute_names.size()) {
    return Status::InvalidArgument(
        "SynthesizeSimpleFromGram: attribute count mismatch");
  }
  if (gram.count() == 0) {
    return Status::InvalidArgument("SynthesizeSimpleFromGram: no tuples");
  }

  // Line 3 of Algorithm 1, on mean-centered data: the paper's footnote 2
  // notes Theorem 13 holds exactly when attribute means are zero and that
  // centering always achieves this. Centering the ones-augmented Gram
  // matrix reduces it to the covariance matrix, whose eigenvectors give
  // projections that are EXACTLY pairwise uncorrelated and include the
  // minimum-variance one. The additive constant the ones column would
  // capture is recovered through the bounds (mu(F(D)) = w . means).
  linalg::Vector means = gram.Means();
  CCS_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                       linalg::SymmetricEigen(gram.Covariance()));

  struct Candidate {
    Projection projection;
    double mean;
    double stddev;
    double raw_importance;
  };
  std::vector<Candidate> candidates;

  for (const linalg::EigenPair& pair : eig.pairs) {
    // Lines 5-6: normalize the coefficient vector (eigenvectors arrive
    // unit-norm; re-normalize defensively for near-degenerate pairs).
    linalg::Vector w = pair.eigenvector;
    double norm = w.Norm();
    if (norm < options_.min_projection_norm) continue;
    w.Scale(1.0 / norm);

    double mu = w.Dot(means);
    // var(F(D)) = w^T Cov w = eigenvalue (w is Cov's unit eigenvector).
    double var = std::max(pair.eigenvalue, 0.0);
    double sigma = std::sqrt(var);

    CCS_ASSIGN_OR_RETURN(Projection proj,
                         Projection::Create(attribute_names, std::move(w)));
    candidates.push_back(
        {std::move(proj), mu, sigma,
         RawImportance(options_.importance_mapping, sigma)});
  }
  if (candidates.empty()) {
    return Status::FailedPrecondition(
        "SynthesizeSimpleFromGram: no usable projections");
  }

  // Optional ablation filter: keep only one variance half. Candidates
  // arrive in ascending-eigenvalue (ascending-variance) order.
  if (options_.projection_filter != ProjectionFilter::kAll &&
      candidates.size() > 1) {
    size_t half = (candidates.size() + 1) / 2;
    switch (options_.projection_filter) {
      case ProjectionFilter::kLowVarianceHalf:
        candidates.resize(half);
        break;
      case ProjectionFilter::kHighVarianceHalf:
        candidates.erase(candidates.begin(),
                         candidates.end() - static_cast<long>(half));
        break;
      case ProjectionFilter::kMinimumVarianceOnly:
        candidates.resize(1);
        break;
      case ProjectionFilter::kAll:
        break;
    }
  }

  // Line 8: normalize importance factors.
  double z = 0.0;
  // ccs-lint: allow(fp-accumulate): normalizer folded in candidate
  // (attribute) order on the one synthesis thread; never sharded.
  for (const Candidate& c : candidates) z += c.raw_importance;

  std::vector<BoundedConstraint> conjuncts;
  conjuncts.reserve(candidates.size());
  const double big_c = options_.bound_multiplier;
  for (Candidate& c : candidates) {
    double lb = c.mean - big_c * c.stddev;
    double ub = c.mean + big_c * c.stddev;
    conjuncts.emplace_back(std::move(c.projection), lb, ub, c.mean, c.stddev,
                           c.raw_importance / z);
  }
  return SimpleConstraint::Create(attribute_names, std::move(conjuncts));
}

StatusOr<DisjunctiveConstraint> Synthesizer::SynthesizeDisjunctive(
    const dataframe::DataFrame& df, const std::string& attribute) const {
  obs::ObsSpan span("synth.disjunctive", "synth");
  CCS_ASSIGN_OR_RETURN(auto partitions, df.PartitionBy(attribute));
  if (partitions.size() > options_.max_categorical_domain) {
    return Status::InvalidArgument(
        "SynthesizeDisjunctive: domain of " + attribute + " has " +
        std::to_string(partitions.size()) + " values, exceeding the limit");
  }
  // Partitions are independent synthesis problems (§4.2): dispatch them
  // over a work queue, so one dominant switch value (skewed categorical
  // distributions are the norm) cannot serialize a whole lane behind it.
  // Eligibility filtering and the switch-value order come from the
  // std::map, so the work list — and the assembled constraint — is
  // deterministic; only the execution schedule varies.
  std::vector<const std::pair<const std::string, dataframe::DataFrame>*> work;
  work.reserve(partitions.size());
  for (const auto& entry : partitions) {
    if (entry.second.num_rows() < options_.min_partition_rows) continue;
    work.push_back(&entry);
  }
  if (work.empty()) {
    return Status::FailedPrecondition(
        "SynthesizeDisjunctive: every partition of " + attribute +
        " was below min_partition_rows");
  }
  std::vector<StatusOr<SimpleConstraint>> results(
      work.size(), Status::Internal("partition not synthesized"));
  common::ParallelForEach(work.size(), [&](size_t i) {
    results[i] = SynthesizeSimple(work[i]->second);
  });
  // Commit in switch-value order; the first failing partition (in that
  // fixed order, not completion order) determines the returned error.
  std::map<std::string, SimpleConstraint> cases;
  for (size_t i = 0; i < work.size(); ++i) {
    if (!results[i].ok()) return std::move(results[i]).status();
    cases.emplace(work[i]->first, std::move(results[i]).value());
  }
  return DisjunctiveConstraint(attribute, std::move(cases));
}

StatusOr<ConformanceConstraint> Synthesizer::Synthesize(
    const dataframe::DataFrame& df) const {
  obs::ObsSpan span("synth.full", "synth");
  SimpleConstraint global;
  if (options_.include_global) {
    CCS_ASSIGN_OR_RETURN(global, SynthesizeSimple(df));
  }
  std::vector<DisjunctiveConstraint> disjunctions;
  if (options_.include_disjunctive) {
    for (const std::string& attr : df.CategoricalNames()) {
      CCS_ASSIGN_OR_RETURN(const dataframe::Column* col,
                           df.ColumnByName(attr));
      if (col->DistinctValues().size() > options_.max_categorical_domain) {
        continue;  // Greedy small-domain rule (§4.2).
      }
      auto disj = SynthesizeDisjunctive(df, attr);
      if (!disj.ok()) continue;  // e.g. all partitions too small.
      disjunctions.push_back(std::move(disj).value());
    }
  }
  if (!options_.include_global && disjunctions.empty()) {
    return Status::FailedPrecondition(
        "Synthesize: no global constraint and no usable categorical "
        "attribute for disjunctions");
  }
  return ConformanceConstraint(std::move(global), std::move(disjunctions));
}

}  // namespace ccs::core
