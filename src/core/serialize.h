// Constraint serialization: pretty text, SQL CHECK clauses, and a
// versioned machine-readable round-trip format.
//
// The paper (Appendix G) notes that the simplicity of the conformance
// language lets constraints be enforced as SQL CHECK constraints to guard
// inserts; ToSqlCheck emits that form.

#ifndef CCS_CORE_SERIALIZE_H_
#define CCS_CORE_SERIALIZE_H_

#include <string>

#include "common/statusor.h"
#include "core/constraint.h"

namespace ccs::core {

/// Multi-line human-readable rendering of a constraint, e.g.
///   -5 <= AT - DT - DUR <= 5   [mean=0, std=3.6, weight=0.42]
std::string ToPrettyString(const SimpleConstraint& constraint);
std::string ToPrettyString(const DisjunctiveConstraint& constraint);
std::string ToPrettyString(const ConformanceConstraint& constraint);

/// A SQL boolean expression usable as a CHECK constraint. Categorical
/// switches become CASE WHEN chains; unseen values fail the check.
std::string ToSqlCheck(const SimpleConstraint& constraint);
std::string ToSqlCheck(const ConformanceConstraint& constraint);

/// Versioned line-oriented serialization that round-trips exactly
/// (numbers are written with enough digits to reparse bit-close).
std::string Serialize(const ConformanceConstraint& constraint);

/// Parses the output of Serialize. Returns InvalidArgument on malformed
/// or version-mismatched input.
StatusOr<ConformanceConstraint> Deserialize(const std::string& text);

}  // namespace ccs::core

#endif  // CCS_CORE_SERIALIZE_H_
