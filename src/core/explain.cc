#include "core/explain.h"

#include <algorithm>

#include "core/synthesizer.h"

namespace ccs::core {

NonConformanceExplainer::NonConformanceExplainer(
    SimpleConstraint constraint, std::vector<std::string> attribute_names,
    linalg::Vector training_means)
    : constraint_(std::move(constraint)),
      names_(std::move(attribute_names)),
      means_(std::move(training_means)) {
  CCS_CHECK_EQ(names_.size(), means_.size());
}

StatusOr<NonConformanceExplainer> NonConformanceExplainer::FromTrainingData(
    const dataframe::DataFrame& training) {
  Synthesizer synthesizer;
  CCS_ASSIGN_OR_RETURN(SimpleConstraint constraint,
                       synthesizer.SynthesizeSimple(training));
  std::vector<std::string> names = training.NumericNames();
  // ccs-lint: allow(matrix-materialize): cold one-time fit — per-column
  // Mean() wants Matrix::Col; runs once per explainer, never per window.
  CCS_ASSIGN_OR_RETURN(linalg::Matrix data, training.NumericMatrixFor(names));
  linalg::Vector means(names.size());
  for (size_t j = 0; j < names.size(); ++j) means[j] = data.Col(j).Mean();
  return NonConformanceExplainer(std::move(constraint), std::move(names),
                                 std::move(means));
}

size_t NonConformanceExplainer::AdditionalFixes(const linalg::Vector& tuple,
                                                size_t first_fixed) const {
  linalg::Vector current = tuple;
  current[first_fixed] = means_[first_fixed];
  if (constraint_.IsSatisfiedAligned(current)) return 0;

  std::vector<bool> fixed(names_.size(), false);
  fixed[first_fixed] = true;
  size_t additional = 0;
  while (additional < names_.size() - 1) {
    // Greedy: pick the unfixed attribute whose mean-reset most reduces
    // the quantitative violation.
    size_t best = names_.size();
    double best_violation = constraint_.ViolationAligned(current);
    bool improved = false;
    for (size_t j = 0; j < names_.size(); ++j) {
      if (fixed[j]) continue;
      double saved = current[j];
      current[j] = means_[j];
      double v = constraint_.ViolationAligned(current);
      current[j] = saved;
      if (!improved || v < best_violation) {
        best = j;
        best_violation = v;
        improved = true;
      }
    }
    if (best == names_.size()) break;
    current[best] = means_[best];
    fixed[best] = true;
    ++additional;
    if (constraint_.IsSatisfiedAligned(current)) return additional;
  }
  return names_.size();  // Defensive; the all-means tuple conforms.
}

StatusOr<std::vector<AttributeResponsibility>>
NonConformanceExplainer::ExplainTuple(
    const linalg::Vector& numeric_tuple) const {
  if (numeric_tuple.size() != names_.size()) {
    return Status::InvalidArgument("ExplainTuple: tuple width mismatch");
  }
  std::vector<AttributeResponsibility> out(names_.size());
  for (size_t j = 0; j < names_.size(); ++j) out[j].attribute = names_[j];
  if (constraint_.IsSatisfiedAligned(numeric_tuple)) {
    return out;  // Conforming: nothing to explain.
  }
  for (size_t j = 0; j < names_.size(); ++j) {
    size_t k = AdditionalFixes(numeric_tuple, j);
    out[j].responsibility = 1.0 / static_cast<double>(k + 1);
  }
  return out;
}

StatusOr<std::vector<AttributeResponsibility>>
NonConformanceExplainer::ExplainDataset(
    const dataframe::DataFrame& serving) const {
  if (serving.num_rows() == 0) {
    return Status::InvalidArgument("ExplainDataset: empty dataset");
  }
  // ccs-lint: allow(matrix-materialize): cold diagnostic path — the
  // greedy per-tuple explanation needs Matrix::Row vectors, and
  // explanations are human-driven, not per-window.
  CCS_ASSIGN_OR_RETURN(linalg::Matrix data, serving.NumericMatrixFor(names_));
  std::vector<AttributeResponsibility> acc(names_.size());
  for (size_t j = 0; j < names_.size(); ++j) acc[j].attribute = names_[j];
  for (size_t i = 0; i < data.rows(); ++i) {
    CCS_ASSIGN_OR_RETURN(auto per_tuple, ExplainTuple(data.Row(i)));
    for (size_t j = 0; j < acc.size(); ++j) {
      acc[j].responsibility += per_tuple[j].responsibility;
    }
  }
  for (auto& r : acc) {
    r.responsibility /= static_cast<double>(data.rows());
  }
  return acc;
}

}  // namespace ccs::core
