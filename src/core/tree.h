// Decision-tree-structured conformance constraints (paper §8 future
// work: "learn conformance constraints in a decision-tree-like structure
// where categorical attributes will guide the splitting conditions and
// leaves will contain simple conformance constraints").
//
// Unlike the flat disjunction set of §4.2 — which partitions on every
// small-domain categorical attribute independently — the tree chooses the
// split attribute GREEDILY by variance reduction: at each node it splits
// on the categorical attribute whose partitions have the smallest
// row-weighted sum of minimum projection variances, and recurses until no
// split helps, no attribute remains, or the partition is too small. Each
// leaf holds the simple constraint of its partition.
//
// Evaluation routes a tuple down the tree by its categorical values; an
// unseen branch value falls back to the deepest ancestor's constraint
// blended with a miss penalty (quantitative-semantics analogue of the
// undefined-simp rule).

#ifndef CCS_CORE_TREE_H_
#define CCS_CORE_TREE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/constraint.h"
#include "core/synthesizer.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// Options for tree induction.
struct TreeOptions {
  /// Underlying simple-constraint synthesis options.
  SynthesisOptions synthesis;
  /// Do not split nodes with fewer rows than this.
  size_t min_split_rows = 40;
  /// Do not create children smaller than this.
  size_t min_leaf_rows = 10;
  /// Maximum tree depth (root = 0).
  size_t max_depth = 4;
  /// Required relative reduction of the variance objective for a split
  /// to be accepted (guards against pointless fragmentation).
  double min_relative_gain = 0.05;
  /// Violation assessed when a tuple reaches a branch value unseen in
  /// training (mixed into the ancestor fallback).
  double unseen_value_penalty = 1.0;
};

/// A node of the constraint tree.
struct TreeNode {
  /// Constraint over this node's partition (kept at internal nodes too,
  /// as the fallback for unseen branch values).
  SimpleConstraint constraint;
  /// Rows of the training partition that reached this node.
  size_t num_rows = 0;
  /// Empty for leaves; otherwise the categorical split attribute.
  std::string split_attribute;
  /// Children by split-attribute value.
  std::map<std::string, std::unique_ptr<TreeNode>> children;

  bool is_leaf() const { return split_attribute.empty(); }
};

/// A conformance-constraint tree.
class ConstraintTree {
 public:
  /// Induces a tree over `df` (needs >= 1 numeric attribute; categorical
  /// attributes with domain <= synthesis.max_categorical_domain are
  /// split candidates).
  static StatusOr<ConstraintTree> Fit(const dataframe::DataFrame& df,
                                      const TreeOptions& options = {});

  /// Quantitative violation of row `row` of `df`, in [0, 1].
  StatusOr<double> Violation(const dataframe::DataFrame& df,
                             size_t row) const;

  /// Violations of every row.
  StatusOr<linalg::Vector> ViolationAll(const dataframe::DataFrame& df) const;

  /// Mean violation (dataset-level drift against the tree's profile).
  StatusOr<double> MeanViolation(const dataframe::DataFrame& df) const;

  const TreeNode& root() const { return *root_; }

  /// Number of leaves / maximum depth (diagnostics).
  size_t num_leaves() const;
  size_t depth() const;

  /// Indented rendering of the tree structure.
  std::string ToString() const;

 private:
  ConstraintTree(std::unique_ptr<TreeNode> root, TreeOptions options)
      : root_(std::move(root)), options_(options) {}

  std::shared_ptr<TreeNode> root_;
  TreeOptions options_;
};

}  // namespace ccs::core

#endif  // CCS_CORE_TREE_H_
