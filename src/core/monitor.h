// Streaming constraint maintenance and windowed drift monitoring.
//
// IncrementalSynthesizer exploits §4.3.2: the Gram matrix is a streaming
// sum, so constraints can be refreshed after any number of appended tuples
// at O(m^3) cost without revisiting old data. StreamMonitor packages the
// serving-side loop: per-window mean violation against a reference
// profile, with a violation threshold alarm; RefreshReference swaps the
// profile for a re-synthesized one mid-stream (src/stream's pipeline
// drives both halves).

#ifndef CCS_CORE_MONITOR_H_
#define CCS_CORE_MONITOR_H_

#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"
#include "core/constraint.h"
#include "core/drift.h"
#include "core/kernel.h"
#include "core/synthesizer.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// Builds and refreshes a (global) simple constraint over a stream of
/// tuples in O(m^2) memory.
class IncrementalSynthesizer {
 public:
  /// `attribute_names` fixes the numeric schema of the stream.
  IncrementalSynthesizer(std::vector<std::string> attribute_names,
                         SynthesisOptions options = SynthesisOptions());

  /// An incremental synthesizer whose schema is the degree-2 polynomial
  /// expansion of `base_names`: ObserveAll lazily derives the expanded
  /// columns (squares, cross terms) of each observed frame straight
  /// into the Gram walk — the expanded frame ExpandPolynomial would
  /// build per refresh is never materialized. attribute_names() (and
  /// the checkpointed schema) become ExpandedNames(base_names,
  /// expansion); Observe then expects already-expanded tuples.
  static StatusOr<IncrementalSynthesizer> WithExpansion(
      const std::vector<std::string>& base_names,
      const PolynomialExpansionOptions& expansion,
      SynthesisOptions options = SynthesisOptions());

  /// Ingests one aligned numeric tuple (aligned with attribute_names(),
  /// i.e. already expanded under WithExpansion).
  void Observe(const linalg::Vector& numeric_tuple);

  /// Ingests every row of a DataFrame carrying the schema's attributes
  /// (the *base* attributes under WithExpansion — expansion is derived
  /// here, lazily).
  Status ObserveAll(const dataframe::DataFrame& df);

  /// Merges the observations of another incremental synthesizer built
  /// over the same schema (partition-parallel ingestion).
  Status Merge(const IncrementalSynthesizer& other);

  int64_t count() const;

  /// Synthesizes the constraint for everything observed so far.
  StatusOr<SimpleConstraint> Synthesize() const;

  /// The fixed numeric schema this synthesizer accumulates over.
  const std::vector<std::string>& attribute_names() const { return names_; }

  /// The streaming Gram state (count + raw sum) — everything a
  /// checkpoint needs to rebuild this synthesizer bit-exactly.
  const linalg::GramAccumulator& gram() const { return gram_; }

  /// Overwrites the Gram state with a checkpointed (RawSum, count) pair;
  /// see linalg::GramAccumulator::RestoreState.
  Status RestoreGram(const linalg::Matrix& sum, int64_t count) {
    return gram_.RestoreState(sum, count);
  }

 private:
  std::vector<std::string> names_;
  Synthesizer synthesizer_;
  linalg::GramAccumulator gram_;
  // Non-empty only under WithExpansion: the derived-column recipe
  // ObserveAll resolves against each observed frame (name-based, so it
  // borrows nothing from any frame).
  std::vector<dataframe::ColumnExpr> exprs_;
};

/// Result of scoring one window.
struct WindowScore {
  size_t window_index = 0;
  double drift = 0.0;
  bool alarm = false;
};

/// Scores consecutive serving windows against a reference profile.
///
/// Thread model: one observer thread at a time drives
/// ObserveWindow/ObserveWindows/RefreshReference (the scoring *inside*
/// ObserveWindows fans out over the pool, reading the profile
/// lock-free), while the committed score history is mutex-guarded so
/// other threads — a future `ccsynth serve` daemon polling alarm state
/// per stream — may call history()/history_size() concurrently with the
/// observer.
class StreamMonitor {
 public:
  /// Learns the reference profile from `reference`; windows scoring above
  /// `alarm_threshold` are flagged. When `expansion` is non-null the
  /// profile is the global constraint over the lazy degree-2 polynomial
  /// expansion (ConformanceDriftQuantifier::FitExpanded) and every
  /// window is scored through the same derived view — opt-in, so
  /// default monitoring output (and the golden alarm traces) is
  /// untouched.
  static StatusOr<StreamMonitor> Create(
      const dataframe::DataFrame& reference, double alarm_threshold,
      SynthesisOptions options = SynthesisOptions(),
      const PolynomialExpansionOptions* expansion = nullptr);

  /// Movable (through StatusOr); moving while another thread observes or
  /// reads the source is undefined, as for any move.
  StreamMonitor(StreamMonitor&& other) noexcept;
  StreamMonitor& operator=(StreamMonitor&& other) noexcept;

  /// Scores the next window. InvalidArgument on an empty window (the
  /// history is not advanced).
  StatusOr<WindowScore> ObserveWindow(const dataframe::DataFrame& window)
      CCS_EXCLUDES(mu_);

  /// Scores a batch of windows concurrently (the reference profile is
  /// fixed between refreshes) and appends the scores to the history in
  /// arrival order. All-or-nothing: if any window fails to score, the
  /// error is returned and the history is not advanced — unlike a
  /// sequence of ObserveWindow calls, which would commit the successful
  /// prefix.
  ///
  /// \param num_threads  Scoring lanes; 0 means DefaultThreadCount().
  ///                     Scores are independent per window, so the lane
  ///                     count never changes the result.
  StatusOr<std::vector<WindowScore>> ObserveWindows(
      const std::vector<dataframe::DataFrame>& windows, size_t num_threads = 0)
      CCS_EXCLUDES(mu_);

  /// Swaps the reference profile for a freshly synthesized global
  /// constraint — the serving half of the §4.3.2 refresh loop, fed by
  /// IncrementalSynthesizer::Synthesize. The alarm threshold and the
  /// score history are unchanged; only windows observed after the call
  /// score against the new profile. Note the refreshed profile is the
  /// global simple constraint only (incremental maintenance of
  /// disjunctive cases is not implemented); InvalidArgument when
  /// `constraint` has no conjuncts.
  Status RefreshReference(const SimpleConstraint& constraint)
      CCS_EXCLUDES(mu_);

  /// A snapshot of the scores committed by THIS process, in arrival
  /// order (after RestoreHistoryBase the pre-resume scores are not in
  /// memory; their count still offsets every index). Copies under the
  /// lock; safe to call from any thread.
  std::vector<WindowScore> history() const CCS_EXCLUDES(mu_);

  /// Number of scores committed so far, including the restored base
  /// (cheaper than history().size()).
  size_t history_size() const CCS_EXCLUDES(mu_);

  double alarm_threshold() const { return alarm_threshold_; }

  /// Rebases the history to `n` already-committed scores — the
  /// checkpoint-resume hook. Window indices and the refresh cadence
  /// continue from n exactly as if those scores had been committed by
  /// this process; the scores themselves stay in the pre-crash output.
  /// FailedPrecondition once any score has been committed.
  Status RestoreHistoryBase(size_t n) CCS_EXCLUDES(mu_);

  /// The current reference profile (the Fit result, or the constraint
  /// adopted by the latest RefreshReference). Call only from the
  /// observer thread between batches — checkpoint capture does.
  const ConformanceConstraint& reference_constraint() const {
    return quantifier_.constraint();
  }

 private:
  StreamMonitor(ConformanceDriftQuantifier quantifier, double alarm_threshold)
      : quantifier_(std::move(quantifier)),
        alarm_threshold_(alarm_threshold) {}

  // Commits `score` as the next history entry, filling its index.
  WindowScore CommitScore(double drift) CCS_REQUIRES(mu_);

  // Read lock-free by ObserveWindows' pool lanes while scoring; written
  // only by the single observer thread (RefreshReference) between
  // scoring batches, under mu_ so a concurrent history() reader never
  // observes a half-swapped profile boundary.
  ConformanceDriftQuantifier quantifier_;  // ccs-lint: allow(guarded-by): scored lock-free by pool lanes; single observer thread writes between batches
  double alarm_threshold_;  // ccs-lint: allow(guarded-by): written only at construction
  mutable common::Mutex mu_;
  std::vector<WindowScore> history_ CCS_GUARDED_BY(mu_);
  /// Scores committed before a checkpoint-resume (0 outside resume).
  size_t history_base_ CCS_GUARDED_BY(mu_) = 0;
};

}  // namespace ccs::core

#endif  // CCS_CORE_MONITOR_H_
