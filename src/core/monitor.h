// Streaming constraint maintenance and windowed drift monitoring.
//
// IncrementalSynthesizer exploits §4.3.2: the Gram matrix is a streaming
// sum, so constraints can be refreshed after any number of appended tuples
// at O(m^3) cost without revisiting old data. StreamMonitor packages the
// serving-side loop: per-window mean violation against a reference
// profile, with a violation threshold alarm; RefreshReference swaps the
// profile for a re-synthesized one mid-stream (src/stream's pipeline
// drives both halves).

#ifndef CCS_CORE_MONITOR_H_
#define CCS_CORE_MONITOR_H_

#include <deque>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/constraint.h"
#include "core/drift.h"
#include "core/synthesizer.h"
#include "dataframe/dataframe.h"

namespace ccs::core {

/// Builds and refreshes a (global) simple constraint over a stream of
/// tuples in O(m^2) memory.
class IncrementalSynthesizer {
 public:
  /// `attribute_names` fixes the numeric schema of the stream.
  IncrementalSynthesizer(std::vector<std::string> attribute_names,
                         SynthesisOptions options = SynthesisOptions());

  /// Ingests one aligned numeric tuple.
  void Observe(const linalg::Vector& numeric_tuple);

  /// Ingests every row of a DataFrame carrying the schema's attributes.
  Status ObserveAll(const dataframe::DataFrame& df);

  /// Merges the observations of another incremental synthesizer built
  /// over the same schema (partition-parallel ingestion).
  Status Merge(const IncrementalSynthesizer& other);

  int64_t count() const;

  /// Synthesizes the constraint for everything observed so far.
  StatusOr<SimpleConstraint> Synthesize() const;

 private:
  std::vector<std::string> names_;
  Synthesizer synthesizer_;
  linalg::GramAccumulator gram_;
};

/// Result of scoring one window.
struct WindowScore {
  size_t window_index = 0;
  double drift = 0.0;
  bool alarm = false;
};

/// Scores consecutive serving windows against a reference profile.
class StreamMonitor {
 public:
  /// Learns the reference profile from `reference`; windows scoring above
  /// `alarm_threshold` are flagged.
  static StatusOr<StreamMonitor> Create(
      const dataframe::DataFrame& reference, double alarm_threshold,
      SynthesisOptions options = SynthesisOptions());

  /// Scores the next window. InvalidArgument on an empty window (the
  /// history is not advanced).
  StatusOr<WindowScore> ObserveWindow(const dataframe::DataFrame& window);

  /// Scores a batch of windows concurrently (the reference profile is
  /// fixed between refreshes) and appends the scores to the history in
  /// arrival order. All-or-nothing: if any window fails to score, the
  /// error is returned and the history is not advanced — unlike a
  /// sequence of ObserveWindow calls, which would commit the successful
  /// prefix.
  ///
  /// \param num_threads  Scoring lanes; 0 means DefaultThreadCount().
  ///                     Scores are independent per window, so the lane
  ///                     count never changes the result.
  StatusOr<std::vector<WindowScore>> ObserveWindows(
      const std::vector<dataframe::DataFrame>& windows,
      size_t num_threads = 0);

  /// Swaps the reference profile for a freshly synthesized global
  /// constraint — the serving half of the §4.3.2 refresh loop, fed by
  /// IncrementalSynthesizer::Synthesize. The alarm threshold and the
  /// score history are unchanged; only windows observed after the call
  /// score against the new profile. Note the refreshed profile is the
  /// global simple constraint only (incremental maintenance of
  /// disjunctive cases is not implemented); InvalidArgument when
  /// `constraint` has no conjuncts.
  Status RefreshReference(const SimpleConstraint& constraint);

  /// All scores so far, in arrival order.
  const std::vector<WindowScore>& history() const { return history_; }

  double alarm_threshold() const { return alarm_threshold_; }

 private:
  StreamMonitor(ConformanceDriftQuantifier quantifier, double alarm_threshold)
      : quantifier_(std::move(quantifier)),
        alarm_threshold_(alarm_threshold) {}

  ConformanceDriftQuantifier quantifier_;
  double alarm_threshold_;
  std::vector<WindowScore> history_;
};

}  // namespace ccs::core

#endif  // CCS_CORE_MONITOR_H_
