#include "core/monitor.h"

#include "common/parallel.h"
#include "obs/trace.h"

namespace ccs::core {

IncrementalSynthesizer::IncrementalSynthesizer(
    std::vector<std::string> attribute_names, SynthesisOptions options)
    : names_(std::move(attribute_names)),
      synthesizer_(options),
      gram_(names_.size()) {
  CCS_CHECK(!names_.empty());
}

void IncrementalSynthesizer::Observe(const linalg::Vector& numeric_tuple) {
  gram_.Add(numeric_tuple);
}

StatusOr<IncrementalSynthesizer> IncrementalSynthesizer::WithExpansion(
    const std::vector<std::string>& base_names,
    const PolynomialExpansionOptions& expansion, SynthesisOptions options) {
  if (base_names.empty()) {
    return Status::InvalidArgument(
        "IncrementalSynthesizer: no numeric attributes to expand");
  }
  std::vector<std::string> expanded = ExpandedNames(base_names, expansion);
  if (expanded.empty()) {
    return Status::InvalidArgument(
        "IncrementalSynthesizer: options produced an empty expansion");
  }
  IncrementalSynthesizer out(std::move(expanded), options);
  out.exprs_ = ExpansionExprs(base_names, expansion);
  return out;
}

Status IncrementalSynthesizer::ObserveAll(const dataframe::DataFrame& df) {
  // The stream pipeline feeds rolling-buffer window views through here
  // every slide; walking them in place keeps the refresh path
  // allocation-free in the window size. (Already view-based — never
  // NumericMatrixFor — and under WithExpansion the polynomial terms are
  // derived into the Gram walk's gather scratch, so even the expanded
  // refresh path materializes nothing.)
  if (!exprs_.empty()) {
    CCS_ASSIGN_OR_RETURN(linalg::MatrixView data, df.DerivedViewFor(exprs_));
    gram_.AddView(data);
    return Status::OK();
  }
  CCS_ASSIGN_OR_RETURN(linalg::MatrixView data, df.NumericViewFor(names_));
  gram_.AddView(data);
  return Status::OK();
}

Status IncrementalSynthesizer::Merge(const IncrementalSynthesizer& other) {
  if (other.names_ != names_) {
    return Status::InvalidArgument(
        "IncrementalSynthesizer::Merge: schema mismatch");
  }
  return gram_.Merge(other.gram_);
}

int64_t IncrementalSynthesizer::count() const { return gram_.count(); }

StatusOr<SimpleConstraint> IncrementalSynthesizer::Synthesize() const {
  return synthesizer_.SynthesizeSimpleFromGram(names_, gram_);
}

StatusOr<StreamMonitor> StreamMonitor::Create(
    const dataframe::DataFrame& reference, double alarm_threshold,
    SynthesisOptions options, const PolynomialExpansionOptions* expansion) {
  if (alarm_threshold < 0.0 || alarm_threshold > 1.0) {
    return Status::InvalidArgument(
        "StreamMonitor: alarm_threshold must be in [0,1]");
  }
  ConformanceDriftQuantifier quantifier(options);
  if (expansion != nullptr) {
    CCS_RETURN_IF_ERROR(quantifier.FitExpanded(reference, *expansion));
  } else {
    CCS_RETURN_IF_ERROR(quantifier.Fit(reference));
  }
  return StreamMonitor(std::move(quantifier), alarm_threshold);
}

StreamMonitor::StreamMonitor(StreamMonitor&& other) noexcept
    : quantifier_(std::move(other.quantifier_)),
      alarm_threshold_(other.alarm_threshold_) {
  common::MutexLock lock(&other.mu_);
  history_ = std::move(other.history_);
  history_base_ = other.history_base_;
}

StreamMonitor& StreamMonitor::operator=(StreamMonitor&& other) noexcept {
  if (this == &other) return *this;
  quantifier_ = std::move(other.quantifier_);
  alarm_threshold_ = other.alarm_threshold_;
  std::vector<WindowScore> taken;
  size_t taken_base = 0;
  {
    common::MutexLock lock(&other.mu_);
    taken = std::move(other.history_);
    taken_base = other.history_base_;
  }
  common::MutexLock lock(&mu_);
  history_ = std::move(taken);
  history_base_ = taken_base;
  return *this;
}

WindowScore StreamMonitor::CommitScore(double drift) {
  WindowScore score;
  score.window_index = history_base_ + history_.size();
  score.drift = drift;
  score.alarm = drift > alarm_threshold_;
  history_.push_back(score);
  return score;
}

StatusOr<WindowScore> StreamMonitor::ObserveWindow(
    const dataframe::DataFrame& window) {
  if (window.num_rows() == 0) {
    return Status::InvalidArgument(
        "StreamMonitor::ObserveWindow: empty window");
  }
  CCS_ASSIGN_OR_RETURN(double drift, quantifier_.Score(window));
  common::MutexLock lock(&mu_);
  return CommitScore(drift);
}

StatusOr<std::vector<WindowScore>> StreamMonitor::ObserveWindows(
    const std::vector<dataframe::DataFrame>& windows, size_t num_threads) {
  obs::ObsSpan span("monitor.observe_windows", "core");
  // Score in parallel into a scratch buffer, then commit to the history
  // in arrival order only if every window succeeded (all-or-nothing, so
  // a failure cannot leave a partially advanced history).
  for (const dataframe::DataFrame& window : windows) {
    if (window.num_rows() == 0) {
      return Status::InvalidArgument(
          "StreamMonitor::ObserveWindows: empty window");
    }
  }
  std::vector<StatusOr<double>> drifts(windows.size(),
                                       Status::Internal("window not scored"));
  common::ParallelFor(
      windows.size(),
      [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          drifts[i] = quantifier_.Score(windows[i]);
        }
      },
      common::ParallelOptions{num_threads, /*min_chunk=*/1});
  std::vector<WindowScore> out;
  out.reserve(windows.size());
  for (StatusOr<double>& drift : drifts) {
    if (!drift.ok()) return std::move(drift).status();
  }
  common::MutexLock lock(&mu_);
  for (size_t i = 0; i < windows.size(); ++i) {
    out.push_back(CommitScore(drifts[i].value()));
  }
  return out;
}

Status StreamMonitor::RefreshReference(const SimpleConstraint& constraint) {
  if (constraint.empty()) {
    return Status::InvalidArgument(
        "StreamMonitor::RefreshReference: constraint has no conjuncts");
  }
  // Serialized with history snapshots: a concurrent history() reader
  // sees the commit boundary either entirely before or entirely after
  // the profile swap.
  common::MutexLock lock(&mu_);
  quantifier_.Adopt(ConformanceConstraint(constraint, {}));
  return Status::OK();
}

std::vector<WindowScore> StreamMonitor::history() const {
  common::MutexLock lock(&mu_);
  return history_;
}

size_t StreamMonitor::history_size() const {
  common::MutexLock lock(&mu_);
  return history_base_ + history_.size();
}

Status StreamMonitor::RestoreHistoryBase(size_t n) {
  common::MutexLock lock(&mu_);
  if (!history_.empty() || history_base_ != 0) {
    return Status::FailedPrecondition(
        "StreamMonitor::RestoreHistoryBase: history already has scores");
  }
  history_base_ = n;
  return Status::OK();
}

}  // namespace ccs::core
