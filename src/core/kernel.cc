#include "core/kernel.h"

namespace ccs::core {

StatusOr<dataframe::DataFrame> ExpandPolynomial(
    const dataframe::DataFrame& df,
    const PolynomialExpansionOptions& options) {
  std::vector<std::string> numeric = df.NumericNames();
  if (numeric.empty()) {
    return Status::InvalidArgument(
        "ExpandPolynomial: no numeric attributes to expand");
  }
  // Walk the source columns in place (zero-copy even for view frames);
  // only the expanded output columns are materialized.
  CCS_ASSIGN_OR_RETURN(linalg::MatrixView data, df.NumericViewFor(numeric));
  const size_t n = df.num_rows();
  const size_t m = numeric.size();

  dataframe::DataFrame out;
  if (options.keep_linear) {
    for (size_t j = 0; j < m; ++j) {
      std::vector<double> col(n);
      for (size_t i = 0; i < n; ++i) col[i] = data.At(i, j);
      CCS_RETURN_IF_ERROR(out.AddNumericColumn(numeric[j], std::move(col)));
    }
  }
  if (options.include_squares) {
    for (size_t j = 0; j < m; ++j) {
      std::vector<double> col(n);
      for (size_t i = 0; i < n; ++i) col[i] = data.At(i, j) * data.At(i, j);
      CCS_RETURN_IF_ERROR(
          out.AddNumericColumn(numeric[j] + "^2", std::move(col)));
    }
  }
  if (options.include_cross_terms) {
    for (size_t j = 0; j < m; ++j) {
      for (size_t k = j + 1; k < m; ++k) {
        std::vector<double> col(n);
        for (size_t i = 0; i < n; ++i) {
          col[i] = data.At(i, j) * data.At(i, k);
        }
        CCS_RETURN_IF_ERROR(out.AddNumericColumn(
            numeric[j] + "*" + numeric[k], std::move(col)));
      }
    }
  }
  // Categorical attributes pass through for disjunctive synthesis,
  // sharing the source column's buffers (zero copy).
  for (const std::string& name : df.CategoricalNames()) {
    CCS_ASSIGN_OR_RETURN(const dataframe::Column* col, df.ColumnByName(name));
    CCS_RETURN_IF_ERROR(out.AddColumn(name, *col));
  }
  if (out.num_columns() == 0) {
    return Status::InvalidArgument(
        "ExpandPolynomial: options produced an empty expansion");
  }
  return out;
}

}  // namespace ccs::core
