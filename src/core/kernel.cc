#include "core/kernel.h"

namespace ccs::core {

std::vector<std::string> ExpandedNames(
    const std::vector<std::string>& numeric,
    const PolynomialExpansionOptions& options) {
  const size_t m = numeric.size();
  std::vector<std::string> names;
  if (options.keep_linear) {
    for (size_t j = 0; j < m; ++j) names.push_back(numeric[j]);
  }
  if (options.include_squares) {
    for (size_t j = 0; j < m; ++j) names.push_back(numeric[j] + "^2");
  }
  if (options.include_cross_terms) {
    for (size_t j = 0; j < m; ++j) {
      for (size_t k = j + 1; k < m; ++k) {
        names.push_back(numeric[j] + "*" + numeric[k]);
      }
    }
  }
  return names;
}

std::vector<dataframe::ColumnExpr> ExpansionExprs(
    const std::vector<std::string>& numeric,
    const PolynomialExpansionOptions& options) {
  const size_t m = numeric.size();
  std::vector<dataframe::ColumnExpr> exprs;
  if (options.keep_linear) {
    for (size_t j = 0; j < m; ++j) {
      exprs.push_back(dataframe::ColumnExpr::Source(numeric[j]));
    }
  }
  if (options.include_squares) {
    for (size_t j = 0; j < m; ++j) {
      exprs.push_back(dataframe::ColumnExpr::Product(numeric[j], numeric[j]));
    }
  }
  if (options.include_cross_terms) {
    for (size_t j = 0; j < m; ++j) {
      for (size_t k = j + 1; k < m; ++k) {
        exprs.push_back(
            dataframe::ColumnExpr::Product(numeric[j], numeric[k]));
      }
    }
  }
  return exprs;
}

StatusOr<ExpandedView> ExpandPolynomialView(
    const dataframe::DataFrame& df,
    const PolynomialExpansionOptions& options) {
  std::vector<std::string> numeric = df.NumericNames();
  if (numeric.empty()) {
    return Status::InvalidArgument(
        "ExpandPolynomial: no numeric attributes to expand");
  }
  ExpandedView out;
  out.names = ExpandedNames(numeric, options);
  if (out.names.empty()) {
    return Status::InvalidArgument(
        "ExpandPolynomial: options produced an empty expansion");
  }
  CCS_ASSIGN_OR_RETURN(out.view,
                       df.DerivedViewFor(ExpansionExprs(numeric, options)));
  return out;
}

StatusOr<dataframe::DataFrame> ExpandPolynomial(
    const dataframe::DataFrame& df,
    const PolynomialExpansionOptions& options) {
  std::vector<std::string> numeric = df.NumericNames();
  if (numeric.empty()) {
    return Status::InvalidArgument(
        "ExpandPolynomial: no numeric attributes to expand");
  }
  // Materialize each expanded column through the lazy view's compiled
  // kernels: the only difference from ExpandPolynomialView is WHERE the
  // cells land (owned buffers vs. kernel scratch), never their bits.
  const std::vector<std::string> names = ExpandedNames(numeric, options);
  const std::vector<dataframe::ColumnExpr> exprs =
      ExpansionExprs(numeric, options);
  CCS_ASSIGN_OR_RETURN(linalg::MatrixView view, df.DerivedViewFor(exprs));
  const size_t n = df.num_rows();

  dataframe::DataFrame out;
  for (size_t j = 0; j < names.size(); ++j) {
    std::vector<double> col(n);
    view.MaterializeColumn(j, col.data());
    CCS_RETURN_IF_ERROR(out.AddNumericColumn(names[j], std::move(col)));
  }
  // Categorical attributes pass through for disjunctive synthesis,
  // sharing the source column's buffers (zero copy).
  for (const std::string& name : df.CategoricalNames()) {
    CCS_ASSIGN_OR_RETURN(const dataframe::Column* col, df.ColumnByName(name));
    CCS_RETURN_IF_ERROR(out.AddColumn(name, *col));
  }
  if (out.num_columns() == 0) {
    return Status::InvalidArgument(
        "ExpandPolynomial: options produced an empty expansion");
  }
  return out;
}

}  // namespace ccs::core
