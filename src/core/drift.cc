#include "core/drift.h"

#include <algorithm>

namespace ccs::core {

Status ConformanceDriftQuantifier::Fit(const dataframe::DataFrame& reference) {
  CCS_ASSIGN_OR_RETURN(constraint_, synthesizer_.Synthesize(reference));
  fitted_ = true;
  return Status::OK();
}

void ConformanceDriftQuantifier::Adopt(ConformanceConstraint constraint) {
  constraint_ = std::move(constraint);
  fitted_ = true;
}

StatusOr<double> ConformanceDriftQuantifier::Score(
    const dataframe::DataFrame& window) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Score called before Fit");
  }
  return constraint_.MeanViolation(window);
}

StatusOr<linalg::Vector> ConformanceDriftQuantifier::TupleViolations(
    const dataframe::DataFrame& window) const {
  if (!fitted_) {
    return Status::FailedPrecondition("TupleViolations called before Fit");
  }
  return constraint_.ViolationAll(window);
}

StatusOr<std::vector<double>> DriftSeries(
    const std::vector<dataframe::DataFrame>& windows,
    const SynthesisOptions& options) {
  if (windows.empty()) {
    return Status::InvalidArgument("DriftSeries: no windows");
  }
  ConformanceDriftQuantifier quantifier(options);
  CCS_RETURN_IF_ERROR(quantifier.Fit(windows[0]));
  std::vector<double> out;
  out.reserve(windows.size());
  for (const dataframe::DataFrame& w : windows) {
    CCS_ASSIGN_OR_RETURN(double score, quantifier.Score(w));
    out.push_back(score);
  }
  return out;
}

std::vector<double> NormalizeSeries(const std::vector<double>& series) {
  if (series.empty()) return {};
  double lo = *std::min_element(series.begin(), series.end());
  double hi = *std::max_element(series.begin(), series.end());
  std::vector<double> out(series.size(), 0.0);
  if (hi > lo) {
    for (size_t i = 0; i < series.size(); ++i) {
      out[i] = (series[i] - lo) / (hi - lo);
    }
  }
  return out;
}

}  // namespace ccs::core
