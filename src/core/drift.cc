#include "core/drift.h"

#include <algorithm>

namespace ccs::core {

Status ConformanceDriftQuantifier::Fit(const dataframe::DataFrame& reference) {
  CCS_ASSIGN_OR_RETURN(constraint_, synthesizer_.Synthesize(reference));
  fitted_ = true;
  return Status::OK();
}

Status ConformanceDriftQuantifier::FitExpanded(
    const dataframe::DataFrame& reference,
    const PolynomialExpansionOptions& expansion) {
  // Synthesize the global simple constraint straight from the derived
  // expansion view — the expanded frame ExpandPolynomial would build
  // is never materialized. Same Gram-ingest kernel as the materialized
  // path, so the profile is ConstraintsBitwiseEqual to synthesizing on
  // ExpandPolynomial(reference).
  CCS_ASSIGN_OR_RETURN(ExpandedView expanded,
                       ExpandPolynomialView(reference, expansion));
  CCS_ASSIGN_OR_RETURN(
      SimpleConstraint global,
      synthesizer_.SynthesizeSimpleFromView(expanded.names, expanded.view));
  constraint_ = ConformanceConstraint(std::move(global), {});
  expansion_ = expansion;
  expanded_ = true;
  fitted_ = true;
  return Status::OK();
}

void ConformanceDriftQuantifier::Adopt(ConformanceConstraint constraint) {
  constraint_ = std::move(constraint);
  fitted_ = true;
}

StatusOr<double> ConformanceDriftQuantifier::Score(
    const dataframe::DataFrame& window) const {
  if (!fitted_) {
    return Status::FailedPrecondition("Score called before Fit");
  }
  if (expanded_) {
    if (window.num_rows() == 0) {
      return Status::InvalidArgument("MeanViolation: empty dataset");
    }
    CCS_ASSIGN_OR_RETURN(linalg::Vector v, TupleViolations(window));
    return v.Mean();
  }
  return constraint_.MeanViolation(window);
}

StatusOr<linalg::Vector> ConformanceDriftQuantifier::TupleViolations(
    const dataframe::DataFrame& window) const {
  if (!fitted_) {
    return Status::FailedPrecondition("TupleViolations called before Fit");
  }
  if (expanded_) {
    // Lazy expansion of the window: the aligned scorer walks the
    // derived view in place (column order = the constraint's expanded
    // attribute order by construction). The single-group divide of
    // ConformanceConstraint::ViolationAll is x / 1.0 — a bitwise
    // no-op — so this matches the materialized global-only path
    // exactly.
    CCS_ASSIGN_OR_RETURN(ExpandedView expanded,
                         ExpandPolynomialView(window, expansion_));
    return constraint_.global().ViolationAllAligned(expanded.view);
  }
  return constraint_.ViolationAll(window);
}

StatusOr<std::vector<double>> DriftSeries(
    const std::vector<dataframe::DataFrame>& windows,
    const SynthesisOptions& options) {
  if (windows.empty()) {
    return Status::InvalidArgument("DriftSeries: no windows");
  }
  ConformanceDriftQuantifier quantifier(options);
  CCS_RETURN_IF_ERROR(quantifier.Fit(windows[0]));
  std::vector<double> out;
  out.reserve(windows.size());
  for (const dataframe::DataFrame& w : windows) {
    CCS_ASSIGN_OR_RETURN(double score, quantifier.Score(w));
    out.push_back(score);
  }
  return out;
}

std::vector<double> NormalizeSeries(const std::vector<double>& series) {
  if (series.empty()) return {};
  double lo = *std::min_element(series.begin(), series.end());
  double hi = *std::max_element(series.begin(), series.end());
  std::vector<double> out(series.size(), 0.0);
  if (hi > lo) {
    for (size_t i = 0; i < series.size(); ++i) {
      out[i] = (series[i] - lo) / (hi - lo);
    }
  }
  return out;
}

}  // namespace ccs::core
