// CCSynth: conformance-constraint synthesis (paper §4).
//
// Simple constraints come from Algorithm 1: eigenvectors of the
// ones-augmented Gram matrix give pairwise-uncorrelated projections
// including the minimum-variance one (Theorem 13); bounds are mu +/- C
// sigma (§4.1.1); importance factors are 1/log(2 + sigma) normalized
// (Appendix A). Compound constraints partition on low-cardinality
// categorical attributes and learn a simple constraint per partition
// (§4.2).
//
// The pipeline is parallel end to end: Gram accumulation is sharded
// across rows (GramAccumulator::AddMatrix) and disjunctive partitions
// synthesize concurrently over a work queue (ParallelForEach). Both
// stages commit their results in a fixed order that does not depend on
// the thread count, so every synthesized constraint — coefficients,
// bounds, means, stddevs, importances, partition keys — is bitwise
// identical whether synthesis runs on 1 thread or N (verified by
// ConstraintsBitwiseEqual in tests/synthesizer_test.cc and by
// bench_parallel_synth before it reports any throughput number).

#ifndef CCS_CORE_SYNTHESIZER_H_
#define CCS_CORE_SYNTHESIZER_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/constraint.h"
#include "dataframe/dataframe.h"
#include "linalg/gram.h"

namespace ccs::core {

/// Which synthesized projections to keep — an ablation axis. The paper
/// keeps all of them (weighted by importance); classic PCA-style analysis
/// would keep only the high-variance ones.
enum class ProjectionFilter {
  kAll,
  kLowVarianceHalf,
  kHighVarianceHalf,
  /// Only the single minimum-variance projection — what total least
  /// squares would find (Appendix L's comparison point).
  kMinimumVarianceOnly,
};

/// How the (unnormalized) importance factor gamma is derived from a
/// projection's stddev — an ablation axis. The paper uses kInverseLog.
enum class ImportanceMapping {
  kInverseLog,     ///< 1 / log(2 + sigma)   (paper, Appendix A)
  kInverseLinear,  ///< 1 / (1 + sigma)
  kUniform,        ///< 1
};

/// Synthesis options; defaults reproduce the paper's configuration.
struct SynthesisOptions {
  /// C in lb/ub = mu -/+ C*sigma (§4.1.1; the paper sets 4).
  double bound_multiplier = 4.0;

  /// Partition on categorical attributes with at most this many distinct
  /// values (§4.2; the paper uses 50).
  size_t max_categorical_domain = 50;

  /// Also learn the global (partition-free) simple constraint.
  bool include_global = true;

  /// Learn disjunctive constraints over categorical attributes.
  bool include_disjunctive = true;

  /// Partitions smaller than this are skipped (their switch value then
  /// yields "simp undefined" = violation 1 — too little data to profile).
  size_t min_partition_rows = 2;

  /// Projections whose truncated eigenvector norm falls below this are
  /// dropped (they point almost entirely along the constant column).
  double min_projection_norm = 1e-9;

  ProjectionFilter projection_filter = ProjectionFilter::kAll;
  ImportanceMapping importance_mapping = ImportanceMapping::kInverseLog;
};

/// Synthesizes conformance constraints for datasets.
class Synthesizer {
 public:
  explicit Synthesizer(SynthesisOptions options = SynthesisOptions())
      : options_(options) {}

  const SynthesisOptions& options() const { return options_; }

  /// Algorithm 1 on the numeric attributes of `df`: a simple (conjunctive)
  /// constraint with one bounded conjunct per retained projection. The
  /// Gram accumulation underneath is row-shard parallel.
  ///
  /// \param df  Training data; needs >= 1 numeric attribute and 1 row.
  /// \return The conjunctive constraint, or InvalidArgument on
  ///         degenerate input.
  StatusOr<SimpleConstraint> SynthesizeSimple(
      const dataframe::DataFrame& df) const;

  /// Algorithm 1 from a pre-accumulated Gram matrix (the streaming /
  /// partition-merge path of §4.3.2).
  ///
  /// \param attribute_names  Column order the accumulator was fed with.
  /// \param gram             Accumulated state; count() must be > 0.
  StatusOr<SimpleConstraint> SynthesizeSimpleFromGram(
      const std::vector<std::string>& attribute_names,
      const linalg::GramAccumulator& gram) const;

  /// Algorithm 1 over an arbitrary (possibly derived) column view: the
  /// synthesize half of a lazy synthesize→score pipeline. Feeds the
  /// view — including lazily computed columns (polynomial expansions,
  /// scaled attributes) — straight into the Gram accumulator, so no
  /// expanded frame or matrix is ever materialized. Bitwise identical
  /// to SynthesizeSimple over the materialized data (one compiled
  /// Gram-ingest kernel on both paths).
  ///
  /// \param attribute_names  Names for the view's columns, in order;
  ///                         the count must equal view.cols().
  /// \param view             Training data; needs >= 1 column and row.
  StatusOr<SimpleConstraint> SynthesizeSimpleFromView(
      const std::vector<std::string>& attribute_names,
      const linalg::MatrixView& view) const;

  /// One disjunctive constraint switched on `attribute` (must be
  /// categorical with a small-enough domain). Partitions synthesize
  /// concurrently over a work queue; cases are committed in switch-value
  /// order so the result is identical at any thread count.
  ///
  /// \param df         Training data carrying `attribute`.
  /// \param attribute  The categorical switch attribute.
  StatusOr<DisjunctiveConstraint> SynthesizeDisjunctive(
      const dataframe::DataFrame& df, const std::string& attribute) const;

  /// The full compound constraint: global simple constraint (if enabled)
  /// conjoined with one disjunction per eligible categorical attribute.
  /// Runs the whole parallel pipeline; see the file comment for the
  /// determinism contract.
  StatusOr<ConformanceConstraint> Synthesize(
      const dataframe::DataFrame& df) const;

 private:
  SynthesisOptions options_;
};

}  // namespace ccs::core

#endif  // CCS_CORE_SYNTHESIZER_H_
