#include "baselines/pca_spll.h"

#include <cstdio>

#include "linalg/gram.h"
#include "linalg/symmetric_eigen.h"

// ccs-lint: allow-file(fp-accumulate): serial reference baseline —
// eigenvalue folds in sorted order and per-tuple projections; single
// compiled path, never sharded across threads.

namespace ccs::baselines {

std::string PcaSpll::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "PCA-SPLL (%.0f%%)",
                options_.variance_fraction * 100.0);
  return buf;
}

Status PcaSpll::Fit(const dataframe::DataFrame& reference) {
  if (reference.num_rows() == 0) {
    return Status::InvalidArgument("PcaSpll::Fit: empty reference");
  }
  linalg::Matrix data = reference.NumericMatrix();
  if (data.cols() == 0) {
    return Status::InvalidArgument("PcaSpll::Fit: no numeric attributes");
  }
  linalg::GramAccumulator gram(data.cols());
  gram.AddMatrix(data);
  mean_ = gram.Means();
  CCS_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                       linalg::SymmetricEigen(gram.Covariance()));

  // Eigenpairs come sorted ascending. Keep from the smallest upward while
  // cumulative explained variance stays under the threshold.
  double total = 0.0;
  for (const auto& p : eig.pairs) total += std::max(p.eigenvalue, 0.0);
  if (total <= 0.0) total = 1.0;

  std::vector<size_t> keep;
  double cumulative = 0.0;
  for (size_t i = 0; i < eig.pairs.size(); ++i) {
    double ev = std::max(eig.pairs[i].eigenvalue, 0.0);
    if (cumulative + ev > options_.variance_fraction * total) break;
    cumulative += ev;
    keep.push_back(i);
  }

  retained_axes_ = linalg::Matrix(keep.size(), data.cols());
  retained_var_ = linalg::Vector(keep.size());
  for (size_t r = 0; r < keep.size(); ++r) {
    retained_axes_.SetRow(r, eig.pairs[keep[r]].eigenvector);
    // Floor tiny variances: SPLL's Mahalanobis divides by them.
    retained_var_[r] = std::max(eig.pairs[keep[r]].eigenvalue, 1e-12);
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> PcaSpll::Score(const dataframe::DataFrame& window) {
  if (!fitted_) {
    return Status::FailedPrecondition("PcaSpll::Score before Fit");
  }
  if (window.num_rows() == 0) {
    return Status::InvalidArgument("PcaSpll::Score: empty window");
  }
  if (retained_axes_.rows() == 0) {
    // Discarded every component (strong global correlations): blind.
    return 0.0;
  }
  linalg::Matrix data = window.NumericMatrix();
  if (data.cols() != mean_.size()) {
    return Status::InvalidArgument("PcaSpll::Score: attribute mismatch");
  }
  double acc = 0.0;
  for (size_t i = 0; i < data.rows(); ++i) {
    linalg::Vector centered = data.Row(i);
    centered.Axpy(-1.0, mean_);
    // Squared Mahalanobis distance in the retained subspace.
    for (size_t r = 0; r < retained_axes_.rows(); ++r) {
      double proj = retained_axes_.Row(r).Dot(centered);
      acc += proj * proj / retained_var_[r];
    }
  }
  double n = static_cast<double>(data.rows());
  double k = static_cast<double>(retained_axes_.rows());
  return acc / (n * k);
}

}  // namespace ccs::baselines
