// W-PCA: the weighted-PCA global baseline of Fig. 6(c).
//
// Identical machinery to conformance constraints — all PCA projections
// with inverse-log-variance weights — but learned GLOBALLY only: no
// disjunctive (per-partition) constraints. It therefore captures "a group
// of people are performing some activities" but not "who is doing what",
// and misses local drift.

#ifndef CCS_BASELINES_WPCA_H_
#define CCS_BASELINES_WPCA_H_

#include "baselines/drift_detector.h"
#include "core/drift.h"

namespace ccs::baselines {

class WeightedPca : public DriftDetector {
 public:
  WeightedPca();

  std::string name() const override { return "W-PCA"; }
  Status Fit(const dataframe::DataFrame& reference) override;
  StatusOr<double> Score(const dataframe::DataFrame& window) override;

 private:
  core::ConformanceDriftQuantifier quantifier_;
};

/// The conformance-constraint method behind the shared DriftDetector
/// interface (for apples-to-apples series in the benches).
class ConformanceDetector : public DriftDetector {
 public:
  explicit ConformanceDetector(
      core::SynthesisOptions options = core::SynthesisOptions())
      : quantifier_(options) {}

  std::string name() const override { return "CCSynth"; }
  Status Fit(const dataframe::DataFrame& reference) override {
    return quantifier_.Fit(reference);
  }
  StatusOr<double> Score(const dataframe::DataFrame& window) override {
    return quantifier_.Score(window);
  }

 private:
  core::ConformanceDriftQuantifier quantifier_;
};

}  // namespace ccs::baselines

#endif  // CCS_BASELINES_WPCA_H_
