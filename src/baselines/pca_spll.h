// PCA-SPLL drift detection (Kuncheva & Faithfull [51]).
//
// Like the paper's method, PCA-SPLL argues LOW-variance principal
// components are the drift-sensitive ones. It keeps components whose
// cumulative explained variance stays below a threshold (counting from
// the smallest), then scores a window by the semi-parametric
// log-likelihood of its points under the reference Gaussian restricted to
// that subspace — implemented, as in the original, via the mean squared
// Mahalanobis distance of window points to the reference mean.
//
// Unlike conformance constraints it models a single global distribution:
// no disjunctions, so purely LOCAL drift (4CR-style class swaps) is
// invisible to it — the behaviour Fig. 8 exhibits.

#ifndef CCS_BASELINES_PCA_SPLL_H_
#define CCS_BASELINES_PCA_SPLL_H_

#include "baselines/drift_detector.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ccs::baselines {

/// Options for PCA-SPLL.
struct PcaSpllOptions {
  /// Keep low-variance components while their cumulative explained
  /// variance is below this fraction (the paper's experiments use 25%).
  double variance_fraction = 0.25;
};

class PcaSpll : public DriftDetector {
 public:
  explicit PcaSpll(PcaSpllOptions options = PcaSpllOptions())
      : options_(options) {}

  std::string name() const override;
  Status Fit(const dataframe::DataFrame& reference) override;
  StatusOr<double> Score(const dataframe::DataFrame& window) override;

  /// Number of principal components retained by Fit (0 if it kept none —
  /// the degenerate case the paper calls out where PCA-SPLL goes blind).
  size_t num_retained() const { return retained_axes_.rows(); }

 private:
  PcaSpllOptions options_;
  bool fitted_ = false;
  linalg::Vector mean_;          // Reference attribute means.
  linalg::Matrix retained_axes_; // k x m: retained eigenvectors (rows).
  linalg::Vector retained_var_;  // Variance along each retained axis.
};

}  // namespace ccs::baselines

#endif  // CCS_BASELINES_PCA_SPLL_H_
