#include "baselines/wpca.h"

namespace ccs::baselines {

namespace {

core::SynthesisOptions GlobalOnlyOptions() {
  core::SynthesisOptions options;
  options.include_global = true;
  options.include_disjunctive = false;  // The defining W-PCA restriction.
  return options;
}

}  // namespace

WeightedPca::WeightedPca() : quantifier_(GlobalOnlyOptions()) {}

Status WeightedPca::Fit(const dataframe::DataFrame& reference) {
  return quantifier_.Fit(reference);
}

StatusOr<double> WeightedPca::Score(const dataframe::DataFrame& window) {
  return quantifier_.Score(window);
}

}  // namespace ccs::baselines
