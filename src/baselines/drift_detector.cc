#include "baselines/drift_detector.h"

namespace ccs::baselines {

StatusOr<std::vector<double>> ScoreSeries(
    DriftDetector* detector,
    const std::vector<dataframe::DataFrame>& windows) {
  if (windows.empty()) {
    return Status::InvalidArgument("ScoreSeries: no windows");
  }
  CCS_RETURN_IF_ERROR(detector->Fit(windows[0]));
  std::vector<double> out;
  out.reserve(windows.size());
  for (const dataframe::DataFrame& w : windows) {
    CCS_ASSIGN_OR_RETURN(double s, detector->Score(w));
    out.push_back(s);
  }
  return out;
}

std::vector<bool> AlarmSeries(const std::vector<double>& scores,
                              double threshold) {
  std::vector<bool> alarms;
  alarms.reserve(scores.size());
  for (double s : scores) {
    // NaN compares false against everything, so a NaN score never
    // alarms — the caller sees the non-finite score itself in the trace.
    alarms.push_back(s > threshold);
  }
  return alarms;
}

}  // namespace ccs::baselines
