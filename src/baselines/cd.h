// CD: PCA-based change detection for multidimensional streams
// (Qahtan et al. [63]).
//
// Opposite philosophy to the paper: CD projects onto the TOP-k
// HIGH-variance principal components, estimates a per-component density
// with histograms on the reference window, and reports the maximum
// per-component divergence between reference and current densities.
// Two variants, as in Fig. 8:
//   CD-Area: divergence = 1 - intersection area of the two densities.
//   CD-MKL : divergence = max(KL(p||q), KL(q||p)).
// Because it keeps only high-variance components, CD is noise-sensitive
// and misses drift in the low-variance directions.

#ifndef CCS_BASELINES_CD_H_
#define CCS_BASELINES_CD_H_

#include <vector>

#include "baselines/drift_detector.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/histogram.h"

namespace ccs::baselines {

/// Divergence metric used by CD.
enum class CdMetric {
  kArea,  ///< 1 - intersection area.
  kMkl,   ///< Maximum KL divergence (symmetric).
};

/// Options for CD.
struct CdOptions {
  CdMetric metric = CdMetric::kArea;
  /// Keep top components from the highest variance down while their
  /// cumulative explained variance is below this fraction.
  double variance_fraction = 0.99;
  /// Histogram resolution for the per-component densities.
  size_t num_bins = 32;
  /// Laplace smoothing for KL (Area does not need it).
  double smoothing = 1e-3;
};

class ChangeDetection : public DriftDetector {
 public:
  explicit ChangeDetection(CdOptions options = CdOptions())
      : options_(options) {}

  std::string name() const override;
  Status Fit(const dataframe::DataFrame& reference) override;
  StatusOr<double> Score(const dataframe::DataFrame& window) override;

  size_t num_retained() const { return axes_.rows(); }

 private:
  CdOptions options_;
  bool fitted_ = false;
  linalg::Vector mean_;
  linalg::Matrix axes_;  // k x m retained high-variance eigenvectors.
  // Reference density and range per retained component.
  std::vector<std::vector<double>> reference_density_;
  std::vector<std::pair<double, double>> ranges_;
};

}  // namespace ccs::baselines

#endif  // CCS_BASELINES_CD_H_
