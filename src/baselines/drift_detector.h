// Common interface for drift detectors compared in Fig. 8.

#ifndef CCS_BASELINES_DRIFT_DETECTOR_H_
#define CCS_BASELINES_DRIFT_DETECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::baselines {

/// Fit-on-reference / score-window drift quantifier interface shared by
/// the baselines and the conformance-constraint method.
class DriftDetector {
 public:
  virtual ~DriftDetector() = default;

  /// Display name ("PCA-SPLL (25%)", "CD-Area", ...).
  virtual std::string name() const = 0;

  /// Learns the reference profile.
  virtual Status Fit(const dataframe::DataFrame& reference) = 0;

  /// Drift magnitude of `window` w.r.t. the fitted reference. Larger
  /// means more drift; scales differ across detectors (Fig. 8 min-max
  /// normalizes each series).
  virtual StatusOr<double> Score(const dataframe::DataFrame& window) = 0;
};

/// Scores every window with a detector fitted on windows[0].
StatusOr<std::vector<double>> ScoreSeries(
    DriftDetector* detector, const std::vector<dataframe::DataFrame>& windows);

/// Thresholds a score series into alarm bits: alarm iff score >
/// `threshold` (strict — a window scoring exactly at the threshold does
/// not alarm, matching StreamMonitor). NaN scores never alarm (every
/// comparison with NaN is false); ±Inf behave as ordinary extremes
/// (+Inf alarms against any finite threshold). The scenario gauntlet
/// uses this one definition for every baseline so detector traces are
/// comparable.
std::vector<bool> AlarmSeries(const std::vector<double>& scores,
                              double threshold);

}  // namespace ccs::baselines

#endif  // CCS_BASELINES_DRIFT_DETECTOR_H_
