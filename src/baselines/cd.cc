#include "baselines/cd.h"

#include <algorithm>

#include "linalg/gram.h"
#include "linalg/symmetric_eigen.h"
#include "stats/divergence.h"

// ccs-lint: allow-file(fp-accumulate): serial reference baseline —
// eigenvalue folds in sorted order and per-window bounds; single
// compiled path, never sharded across threads.

namespace ccs::baselines {

std::string ChangeDetection::name() const {
  return options_.metric == CdMetric::kArea ? "CD-Area" : "CD-MKL";
}

Status ChangeDetection::Fit(const dataframe::DataFrame& reference) {
  if (reference.num_rows() == 0) {
    return Status::InvalidArgument("CD::Fit: empty reference");
  }
  linalg::Matrix data = reference.NumericMatrix();
  if (data.cols() == 0) {
    return Status::InvalidArgument("CD::Fit: no numeric attributes");
  }
  linalg::GramAccumulator gram(data.cols());
  gram.AddMatrix(data);
  mean_ = gram.Means();
  CCS_ASSIGN_OR_RETURN(linalg::EigenDecomposition eig,
                       linalg::SymmetricEigen(gram.Covariance()));

  // Keep from the HIGHEST variance down (eigenpairs sorted ascending).
  double total = 0.0;
  for (const auto& p : eig.pairs) total += std::max(p.eigenvalue, 0.0);
  if (total <= 0.0) total = 1.0;
  std::vector<size_t> keep;
  double cumulative = 0.0;
  for (size_t i = eig.pairs.size(); i > 0; --i) {
    size_t idx = i - 1;
    double ev = std::max(eig.pairs[idx].eigenvalue, 0.0);
    keep.push_back(idx);
    cumulative += ev;
    if (cumulative >= options_.variance_fraction * total) break;
  }

  axes_ = linalg::Matrix(keep.size(), data.cols());
  for (size_t r = 0; r < keep.size(); ++r) {
    axes_.SetRow(r, eig.pairs[keep[r]].eigenvector);
  }

  // Reference densities per retained component.
  reference_density_.clear();
  ranges_.clear();
  for (size_t r = 0; r < axes_.rows(); ++r) {
    linalg::Vector projected(data.rows());
    for (size_t i = 0; i < data.rows(); ++i) {
      linalg::Vector centered = data.Row(i);
      centered.Axpy(-1.0, mean_);
      projected[i] = axes_.Row(r).Dot(centered);
    }
    double lo = projected.Min();
    double hi = projected.Max();
    if (lo == hi) hi = lo + 1.0;
    // Widen slightly so typical window values stay in-range.
    double pad = 0.05 * (hi - lo);
    lo -= pad;
    hi += pad;
    CCS_ASSIGN_OR_RETURN(stats::Histogram h,
                         stats::Histogram::Create(lo, hi, options_.num_bins));
    h.AddAll(projected);
    reference_density_.push_back(h.Density(options_.smoothing));
    ranges_.emplace_back(lo, hi);
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<double> ChangeDetection::Score(const dataframe::DataFrame& window) {
  if (!fitted_) {
    return Status::FailedPrecondition("CD::Score before Fit");
  }
  if (window.num_rows() == 0) {
    return Status::InvalidArgument("CD::Score: empty window");
  }
  linalg::Matrix data = window.NumericMatrix();
  if (data.cols() != mean_.size()) {
    return Status::InvalidArgument("CD::Score: attribute mismatch");
  }
  double worst = 0.0;
  for (size_t r = 0; r < axes_.rows(); ++r) {
    CCS_ASSIGN_OR_RETURN(
        stats::Histogram h,
        stats::Histogram::Create(ranges_[r].first, ranges_[r].second,
                                 options_.num_bins));
    for (size_t i = 0; i < data.rows(); ++i) {
      linalg::Vector centered = data.Row(i);
      centered.Axpy(-1.0, mean_);
      h.Add(axes_.Row(r).Dot(centered));
    }
    std::vector<double> q = h.Density(options_.smoothing);
    double divergence = 0.0;
    if (options_.metric == CdMetric::kArea) {
      CCS_ASSIGN_OR_RETURN(double inter,
                           stats::IntersectionArea(reference_density_[r], q));
      divergence = 1.0 - inter;
    } else {
      CCS_ASSIGN_OR_RETURN(
          divergence, stats::MaxKlDivergence(reference_density_[r], q));
    }
    worst = std::max(worst, divergence);
  }
  return worst;
}

}  // namespace ccs::baselines
