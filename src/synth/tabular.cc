#include "synth/tabular.h"

#include <algorithm>
#include <cmath>

namespace ccs::synth {

namespace {

// Appends a numeric column generated per-row by `fn`.
template <typename Fn>
Status AddColumn(dataframe::DataFrame* df, const std::string& name, size_t n,
                 Fn fn) {
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = fn(i);
  return df->AddNumericColumn(name, std::move(values));
}

double ClampMin(double v, double lo) { return std::max(v, lo); }

}  // namespace

StatusOr<dataframe::DataFrame> GenerateCardio(size_t n, bool diseased,
                                              Rng* rng) {
  if (n == 0) return Status::InvalidArgument("GenerateCardio: n == 0");
  double shift = diseased ? 1.0 : 0.0;
  dataframe::DataFrame df;
  // Heights/weights correlated through BMI; disease adds a small BMI
  // bump, a strong blood-pressure bump, and mild cholesterol/glucose
  // elevation. Lifestyle flags move slightly.
  std::vector<double> heights(n), bmis(n);
  for (size_t i = 0; i < n; ++i) {
    heights[i] = rng->Gaussian(168.0, 8.0);
    bmis[i] = rng->Gaussian(26.0 + 1.5 * shift, 3.5);
  }
  CCS_RETURN_IF_ERROR(AddColumn(&df, "age", n, [&](size_t) {
    return ClampMin(rng->Gaussian(53.0 + 4.0 * shift, 7.0), 20.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "gender", n, [&](size_t) {
    return rng->Bernoulli(0.5) ? 1.0 : 2.0;
  }));
  CCS_RETURN_IF_ERROR(
      AddColumn(&df, "height", n, [&](size_t i) { return heights[i]; }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "weight", n, [&](size_t i) {
    double h = heights[i] / 100.0;
    return ClampMin(bmis[i] * h * h + rng->Gaussian(0.0, 2.0), 40.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "ap_hi", n, [&](size_t) {
    return ClampMin(rng->Gaussian(118.0 + 28.0 * shift, 9.0), 80.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "ap_lo", n, [&](size_t) {
    return ClampMin(rng->Gaussian(78.0 + 16.0 * shift, 7.0), 50.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "cholesterol", n, [&](size_t) {
    double p = diseased ? 0.45 : 0.15;
    return rng->Bernoulli(p) ? (rng->Bernoulli(0.5) ? 3.0 : 2.0) : 1.0;
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "gluc", n, [&](size_t) {
    double p = diseased ? 0.30 : 0.12;
    return rng->Bernoulli(p) ? (rng->Bernoulli(0.5) ? 3.0 : 2.0) : 1.0;
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "smoke", n, [&](size_t) {
    return rng->Bernoulli(diseased ? 0.12 : 0.09) ? 1.0 : 0.0;
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "alco", n, [&](size_t) {
    return rng->Bernoulli(diseased ? 0.06 : 0.05) ? 1.0 : 0.0;
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "active", n, [&](size_t) {
    return rng->Bernoulli(diseased ? 0.72 : 0.82) ? 1.0 : 0.0;
  }));
  return df;
}

StatusOr<dataframe::DataFrame> GenerateMobile(size_t n, bool expensive,
                                              Rng* rng) {
  if (n == 0) return Status::InvalidArgument("GenerateMobile: n == 0");
  double shift = expensive ? 1.0 : 0.0;
  dataframe::DataFrame df;
  // RAM dominates the price class; battery and pixel dimensions move
  // moderately; the rest are price-independent.
  CCS_RETURN_IF_ERROR(AddColumn(&df, "battery_power", n, [&](size_t) {
    return ClampMin(rng->Gaussian(1100.0 + 350.0 * shift, 250.0), 400.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "blue", n, [&](size_t) {
    return rng->Bernoulli(0.5) ? 1.0 : 0.0;
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "clock_speed", n, [&](size_t) {
    return rng->Uniform(0.5, 3.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "dual_sim", n, [&](size_t) {
    return rng->Bernoulli(0.5) ? 1.0 : 0.0;
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "int_memory", n, [&](size_t) {
    return rng->Uniform(2.0, 64.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "m_dep", n, [&](size_t) {
    return rng->Uniform(0.1, 1.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "mobile_wt", n, [&](size_t) {
    return rng->Uniform(80.0, 200.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "n_cores", n, [&](size_t) {
    return static_cast<double>(rng->UniformInt(1, 8));
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "px_height", n, [&](size_t) {
    return ClampMin(rng->Gaussian(640.0 + 380.0 * shift, 220.0), 0.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "px_width", n, [&](size_t) {
    return ClampMin(rng->Gaussian(1100.0 + 420.0 * shift, 260.0), 300.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "ram", n, [&](size_t) {
    return ClampMin(rng->Gaussian(1200.0 + 2300.0 * shift, 350.0), 256.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "sc_h", n, [&](size_t) {
    return rng->Uniform(5.0, 19.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "talk_time", n, [&](size_t) {
    return rng->Uniform(2.0, 20.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "touch_screen", n, [&](size_t) {
    return rng->Bernoulli(0.5) ? 1.0 : 0.0;
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "wifi", n, [&](size_t) {
    return rng->Bernoulli(0.5) ? 1.0 : 0.0;
  }));
  return df;
}

StatusOr<dataframe::DataFrame> GenerateHouse(size_t n, bool expensive,
                                             Rng* rng) {
  if (n == 0) return Status::InvalidArgument("GenerateHouse: n == 0");
  double s = expensive ? 1.0 : 0.0;
  dataframe::DataFrame df;
  // "Holistic": many attributes each shift moderately with the price
  // band (no single dominant cause, unlike mobile's RAM).
  std::vector<double> first_sf(n), second_sf(n);
  for (size_t i = 0; i < n; ++i) {
    first_sf[i] = ClampMin(rng->Gaussian(1050.0 + 450.0 * s, 220.0), 400.0);
    second_sf[i] = expensive && rng->Bernoulli(0.6)
                       ? rng->Gaussian(700.0, 180.0)
                       : (rng->Bernoulli(0.3) ? rng->Gaussian(450.0, 140.0)
                                              : 0.0);
    second_sf[i] = ClampMin(second_sf[i], 0.0);
  }
  CCS_RETURN_IF_ERROR(AddColumn(&df, "GrLivArea", n, [&](size_t i) {
    return first_sf[i] + second_sf[i] + rng->Gaussian(0.0, 40.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "OverallQual", n, [&](size_t) {
    return std::clamp(rng->Gaussian(5.2 + 2.3 * s, 1.0), 1.0, 10.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "YearBuilt", n, [&](size_t) {
    return std::clamp(rng->Gaussian(1958.0 + 35.0 * s, 18.0), 1880.0, 2010.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "FullBath", n, [&](size_t) {
    return std::round(std::clamp(rng->Gaussian(1.3 + 0.9 * s, 0.5), 1.0, 4.0));
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "GarageArea", n, [&](size_t) {
    return ClampMin(rng->Gaussian(420.0 + 220.0 * s, 130.0), 0.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "TotRmsAbvGrd", n, [&](size_t) {
    return std::round(std::clamp(rng->Gaussian(5.8 + 1.8 * s, 1.1), 3.0, 12.0));
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "FirstFlrSF", n,
                                [&](size_t i) { return first_sf[i]; }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "SecondFlrSF", n,
                                [&](size_t i) { return second_sf[i]; }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "LotArea", n, [&](size_t) {
    return ClampMin(rng->Gaussian(9200.0 + 2800.0 * s, 2600.0), 1500.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "Fireplaces", n, [&](size_t) {
    return std::round(
        std::clamp(rng->Gaussian(0.4 + 0.9 * s, 0.55), 0.0, 3.0));
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "MasVnrArea", n, [&](size_t) {
    return ClampMin(rng->Gaussian(60.0 + 180.0 * s, 90.0), 0.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "BsmtFinSF1", n, [&](size_t) {
    return ClampMin(rng->Gaussian(380.0 + 300.0 * s, 210.0), 0.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "YearRemodAdd", n, [&](size_t) {
    return std::clamp(rng->Gaussian(1975.0 + 22.0 * s, 15.0), 1950.0, 2010.0);
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "ScreenPorch", n, [&](size_t) {
    return rng->Bernoulli(0.1 + 0.1 * s) ? rng->Uniform(80.0, 300.0) : 0.0;
  }));
  CCS_RETURN_IF_ERROR(AddColumn(&df, "BsmtFullBath", n, [&](size_t) {
    return std::round(
        std::clamp(rng->Gaussian(0.35 + 0.5 * s, 0.5), 0.0, 2.0));
  }));
  return df;
}

}  // namespace ccs::synth
