#include "synth/led.h"

#include <algorithm>

namespace ccs::synth {

namespace {

// Standard 7-segment encoding of digits 0-9; segment order 1..7 =
// top, top-right, bottom-right, bottom, bottom-left, top-left, middle.
constexpr int kSegments[10][7] = {
    {1, 1, 1, 1, 1, 1, 0},  // 0
    {0, 1, 1, 0, 0, 0, 0},  // 1
    {1, 1, 0, 1, 1, 0, 1},  // 2
    {1, 1, 1, 1, 0, 0, 1},  // 3
    {0, 1, 1, 0, 0, 1, 1},  // 4
    {1, 0, 1, 1, 0, 1, 1},  // 5
    {1, 0, 1, 1, 1, 1, 1},  // 6
    {1, 1, 1, 0, 0, 0, 0},  // 7
    {1, 1, 1, 1, 1, 1, 1},  // 8
    {1, 1, 1, 1, 0, 1, 1},  // 9
};

}  // namespace

std::vector<LedDriftPhase> DefaultLedSchedule() {
  return {
      {5, 10, {4, 5}},
      {10, 15, {1, 3}},
      {15, 20, {2, 6}},
  };
}

StatusOr<std::vector<dataframe::DataFrame>> GenerateLedStream(
    size_t num_windows, size_t rows_per_window,
    const std::vector<LedDriftPhase>& schedule, Rng* rng,
    const LedOptions& options) {
  if (num_windows == 0 || rows_per_window == 0) {
    return Status::InvalidArgument("GenerateLedStream: empty stream");
  }
  std::vector<dataframe::DataFrame> out;
  out.reserve(num_windows);

  for (size_t w = 0; w < num_windows; ++w) {
    std::vector<bool> stuck(8, false);  // 1-based segments.
    for (const LedDriftPhase& phase : schedule) {
      if (w >= phase.start_window && w < phase.end_window) {
        for (int seg : phase.malfunctioning) {
          if (seg >= 1 && seg <= 7) stuck[static_cast<size_t>(seg)] = true;
        }
      }
    }

    std::vector<std::vector<double>> leds(7);
    std::vector<std::vector<double>> irrelevant(options.num_irrelevant);
    std::vector<std::string> digits;
    digits.reserve(rows_per_window);

    for (size_t i = 0; i < rows_per_window; ++i) {
      int digit = static_cast<int>(rng->UniformInt(0, 9));
      digits.push_back(std::to_string(digit));
      for (int seg = 0; seg < 7; ++seg) {
        double value = kSegments[digit][seg];
        if (rng->Bernoulli(options.noise)) value = 1.0 - value;
        if (stuck[static_cast<size_t>(seg) + 1]) value = 0.0;
        leds[static_cast<size_t>(seg)].push_back(value);
      }
      for (size_t j = 0; j < options.num_irrelevant; ++j) {
        irrelevant[j].push_back(rng->Bernoulli(0.5) ? 1.0 : 0.0);
      }
    }

    dataframe::DataFrame df;
    for (int seg = 0; seg < 7; ++seg) {
      CCS_RETURN_IF_ERROR(df.AddNumericColumn(
          "led" + std::to_string(seg + 1),
          std::move(leds[static_cast<size_t>(seg)])));
    }
    for (size_t j = 0; j < options.num_irrelevant; ++j) {
      CCS_RETURN_IF_ERROR(df.AddNumericColumn("irr" + std::to_string(j + 1),
                                              std::move(irrelevant[j])));
    }
    CCS_RETURN_IF_ERROR(df.AddCategoricalColumn("digit", std::move(digits)));
    out.push_back(std::move(df));
  }
  return out;
}

}  // namespace ccs::synth
