// Synthetic human-activity-recognition workload (substitute for the HAR
// wearable dataset [78] of §6.1/6.2).
//
// Each (person, activity) pair has a stable 36-dimensional sensor
// signature: an activity-specific base pattern scaled by activity
// intensity plus a person-specific offset. Sedentary activities (lying,
// sitting, standing) have low intensity; mobile ones (walking, running)
// high — giving the separability the experiments (Figs. 6, 7, 11) rely on.

#ifndef CCS_SYNTH_HAR_H_
#define CCS_SYNTH_HAR_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::synth {

/// Activity labels.
std::vector<std::string> SedentaryActivities();  // lying, sitting, standing
std::vector<std::string> MobileActivities();     // walking, running
std::vector<std::string> AllActivities();

/// Person ids "p1".."p<n>".
std::vector<std::string> HarPersons(size_t n);

/// Generator knobs.
struct HarOptions {
  size_t num_sensors = 36;
  /// Base sensor noise; scales up with activity intensity.
  double noise = 0.15;
};

/// Generates `rows_per_pair` tuples for every (person, activity) pair.
/// Columns: s0..s<k-1> (numeric), person, activity (categorical).
StatusOr<dataframe::DataFrame> GenerateHar(
    const std::vector<std::string>& persons,
    const std::vector<std::string>& activities, size_t rows_per_pair,
    Rng* rng, const HarOptions& options = HarOptions());

/// Intensity of an activity (drives signature scale). Unknown labels get
/// a mid intensity.
double ActivityIntensity(const std::string& activity);

}  // namespace ccs::synth

#endif  // CCS_SYNTH_HAR_H_
