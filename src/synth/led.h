// LED benchmark generator with scheduled segment malfunction (MOA's LED
// generator [12], used in the Fig. 12(d) explanation experiment).
//
// A tuple is a digit (0-9) rendered on a 7-segment display: 7 relevant
// binary attributes (led1..led7) plus 17 irrelevant random binary
// attributes. Drift is injected by making a chosen set of segments
// malfunction (stuck at 0) from a given window onward.

#ifndef CCS_SYNTH_LED_H_
#define CCS_SYNTH_LED_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::synth {

/// Generator knobs.
struct LedOptions {
  size_t num_irrelevant = 17;
  /// Probability a (working) segment's value is flipped by noise.
  double noise = 0.05;
};

/// The schedule of a drifting LED stream: windows [start, end) have the
/// listed segments (1-based, 1..7) stuck at 0.
struct LedDriftPhase {
  size_t start_window = 0;
  size_t end_window = 0;
  std::vector<int> malfunctioning;
};

/// The paper's schedule: 20 windows; segments {4,5} fail from window 5,
/// {1,3} from window 10, {2,6} from window 15.
std::vector<LedDriftPhase> DefaultLedSchedule();

/// Generates `num_windows` windows of `rows_per_window` tuples. Columns:
/// led1..led7, irr1..irrK (numeric 0/1), digit (categorical "0".."9").
StatusOr<std::vector<dataframe::DataFrame>> GenerateLedStream(
    size_t num_windows, size_t rows_per_window,
    const std::vector<LedDriftPhase>& schedule, Rng* rng,
    const LedOptions& options = LedOptions());

}  // namespace ccs::synth

#endif  // CCS_SYNTH_LED_H_
