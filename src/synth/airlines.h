// Synthetic airlines workload (substitute for the 2008 airlines dataset
// [8] used in §6.1's trusted-ML experiment).
//
// The generator reproduces the invariants the experiment depends on:
//   - daytime flights satisfy  arr_time - dep_time - duration ~= 0  (noisy),
//   - duration ~= 0.12 * distance  (≈500 mph cruise),
//   - overnight flights wrap past midnight, so arr_time - dep_time =
//     duration - 1440: the training-set invariant breaks by a large margin,
//   - arrival delay is a noisy function of the covariates only (duration
//     and departure congestion), so a regressor trained on daytime data
//     degrades exactly when the invariant breaks.

#ifndef CCS_SYNTH_AIRLINES_H_
#define CCS_SYNTH_AIRLINES_H_

#include "common/random.h"
#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::synth {

/// Which flight population to draw.
enum class FlightKind {
  kDaytime,    ///< dep + duration stays within the same day.
  kOvernight,  ///< arrival wraps past midnight.
};

/// Generator knobs.
struct AirlinesOptions {
  /// Reporting noise (minutes) on arr - dep - duration.
  double schedule_noise = 3.0;
  /// Noise (minutes) on duration around 0.12 * distance.
  double duration_noise = 6.0;
  /// Noise (minutes) on the delay target.
  double delay_noise = 10.0;
};

/// Generates `n` flights. Columns:
///   month (categorical, "Jan".."Dec"), carrier (categorical, 5 airlines),
///   day, day_of_week, dep_time, arr_time, duration, distance (numeric),
///   delay (numeric target).
dataframe::DataFrame GenerateFlights(
    FlightKind kind, size_t n, Rng* rng,
    const AirlinesOptions& options = AirlinesOptions());

/// The four splits of the Fig. 4 experiment.
struct AirlinesBenchmark {
  dataframe::DataFrame train;      ///< Daytime only.
  dataframe::DataFrame daytime;    ///< Held-out daytime.
  dataframe::DataFrame overnight;  ///< Overnight only.
  dataframe::DataFrame mixed;      ///< Daytime + overnight shuffled.
};

/// Builds all four splits; `mixed` combines fresh daytime and overnight
/// draws roughly half-and-half.
StatusOr<AirlinesBenchmark> MakeAirlinesBenchmark(
    size_t train_rows, size_t serving_rows, Rng* rng,
    const AirlinesOptions& options = AirlinesOptions());

}  // namespace ccs::synth

#endif  // CCS_SYNTH_AIRLINES_H_
