#include "synth/har.h"

#include <functional>

namespace ccs::synth {

std::vector<std::string> SedentaryActivities() {
  return {"lying", "sitting", "standing"};
}

std::vector<std::string> MobileActivities() { return {"walking", "running"}; }

std::vector<std::string> AllActivities() {
  std::vector<std::string> out = SedentaryActivities();
  for (const std::string& a : MobileActivities()) out.push_back(a);
  return out;
}

std::vector<std::string> HarPersons(size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 1; i <= n; ++i) out.push_back("p" + std::to_string(i));
  return out;
}

double ActivityIntensity(const std::string& activity) {
  if (activity == "lying") return 0.2;
  if (activity == "sitting") return 0.35;
  if (activity == "standing") return 0.5;
  if (activity == "walking") return 2.0;
  if (activity == "running") return 3.5;
  return 1.0;
}

namespace {

// Deterministic signature vector derived from a string key, so signatures
// are stable across generator invocations (the heat-map experiments learn
// on one draw and score another).
linalg::Vector StableSignature(const std::string& key, size_t dim,
                               double lo, double hi) {
  Rng rng(std::hash<std::string>{}(key) | 1ull);
  linalg::Vector out(dim);
  for (size_t j = 0; j < dim; ++j) out[j] = rng.Uniform(lo, hi);
  return out;
}

// Person-specific "fitness" in (0, 1], deterministic per person; scales
// the person offset so some people are more distinctive than others
// (Fig. 7's observation that inter-person drift correlates with fitness).
double Fitness(const std::string& person) {
  Rng rng(std::hash<std::string>{}("fitness:" + person) | 1ull);
  return rng.Uniform(0.3, 1.0);
}

}  // namespace

StatusOr<dataframe::DataFrame> GenerateHar(
    const std::vector<std::string>& persons,
    const std::vector<std::string>& activities, size_t rows_per_pair,
    Rng* rng, const HarOptions& options) {
  if (persons.empty() || activities.empty() || rows_per_pair == 0) {
    return Status::InvalidArgument("GenerateHar: empty inputs");
  }
  const size_t k = options.num_sensors;
  const size_t n = persons.size() * activities.size() * rows_per_pair;

  std::vector<std::vector<double>> sensors(k, std::vector<double>());
  for (auto& col : sensors) col.reserve(n);
  std::vector<std::string> person_col, activity_col;
  person_col.reserve(n);
  activity_col.reserve(n);

  for (const std::string& person : persons) {
    linalg::Vector person_offset =
        StableSignature("person:" + person, k, -0.6, 0.6);
    double fitness = Fitness(person);
    for (const std::string& activity : activities) {
      linalg::Vector base =
          StableSignature("activity:" + activity, k, -1.0, 1.0);
      double intensity = ActivityIntensity(activity);
      for (size_t r = 0; r < rows_per_pair; ++r) {
        for (size_t j = 0; j < k; ++j) {
          double mean = base[j] * intensity + person_offset[j] * fitness;
          double noise = options.noise * (1.0 + 0.3 * intensity);
          sensors[j].push_back(mean + rng->Gaussian(0.0, noise));
        }
        person_col.push_back(person);
        activity_col.push_back(activity);
      }
    }
  }

  dataframe::DataFrame df;
  for (size_t j = 0; j < k; ++j) {
    CCS_RETURN_IF_ERROR(
        df.AddNumericColumn("s" + std::to_string(j), std::move(sensors[j])));
  }
  CCS_RETURN_IF_ERROR(df.AddCategoricalColumn("person", std::move(person_col)));
  CCS_RETURN_IF_ERROR(
      df.AddCategoricalColumn("activity", std::move(activity_col)));
  return df;
}

}  // namespace ccs::synth
