#include "synth/airlines.h"

#include <algorithm>
#include <cmath>

namespace ccs::synth {

namespace {

constexpr const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                   "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
constexpr const char* kCarriers[] = {"AA", "UA", "DL", "WN", "B6"};

constexpr double kMinutesPerMile = 0.12;  // ~500 mph cruise speed.
constexpr double kDayMinutes = 1440.0;

// Ground-truth delay model: departure-time congestion plus mild
// duration effect plus noise. Depends only on covariates, as in §6.1.
double TrueDelay(double dep_time, double duration, double noise) {
  // Congestion peaks around 17:00 (1020 minutes).
  double rush = std::exp(-std::pow((dep_time - 1020.0) / 180.0, 2.0));
  return 6.0 + 0.03 * duration + 18.0 * rush + noise;
}

}  // namespace

dataframe::DataFrame GenerateFlights(FlightKind kind, size_t n, Rng* rng,
                                     const AirlinesOptions& options) {
  std::vector<std::string> month(n), carrier(n);
  std::vector<double> day(n), dow(n), dep(n), arr(n), dur(n), dist(n),
      delay(n);

  for (size_t i = 0; i < n; ++i) {
    month[i] = kMonths[rng->UniformInt(0, 11)];
    carrier[i] = kCarriers[rng->UniformInt(0, 4)];
    day[i] = static_cast<double>(rng->UniformInt(1, 28));
    dow[i] = static_cast<double>(rng->UniformInt(1, 7));

    if (kind == FlightKind::kDaytime) {
      // Short-to-medium flights that fit within the day.
      dist[i] = rng->Uniform(150.0, 2200.0);
      dur[i] = kMinutesPerMile * dist[i] +
               rng->Gaussian(0.0, options.duration_noise);
      dur[i] = std::max(dur[i], 25.0);
      double latest_dep = kDayMinutes - dur[i] - 30.0;
      dep[i] = rng->Uniform(300.0, latest_dep);
      arr[i] = dep[i] + dur[i] + rng->Gaussian(0.0, options.schedule_noise);
    } else {
      // Long evening departures that wrap past midnight.
      dist[i] = rng->Uniform(1800.0, 3200.0);
      dur[i] = kMinutesPerMile * dist[i] +
               rng->Gaussian(0.0, options.duration_noise);
      dur[i] = std::max(dur[i], 180.0);
      dep[i] = rng->Uniform(kDayMinutes - 240.0, kDayMinutes - 10.0);
      double raw_arrival =
          dep[i] + dur[i] + rng->Gaussian(0.0, options.schedule_noise);
      arr[i] = std::fmod(raw_arrival, kDayMinutes);
    }
    delay[i] = TrueDelay(dep[i], dur[i],
                         rng->Gaussian(0.0, options.delay_noise));
  }

  dataframe::DataFrame df;
  CCS_CHECK(df.AddCategoricalColumn("month", std::move(month)).ok());
  CCS_CHECK(df.AddCategoricalColumn("carrier", std::move(carrier)).ok());
  CCS_CHECK(df.AddNumericColumn("day", std::move(day)).ok());
  CCS_CHECK(df.AddNumericColumn("day_of_week", std::move(dow)).ok());
  CCS_CHECK(df.AddNumericColumn("dep_time", std::move(dep)).ok());
  CCS_CHECK(df.AddNumericColumn("arr_time", std::move(arr)).ok());
  CCS_CHECK(df.AddNumericColumn("duration", std::move(dur)).ok());
  CCS_CHECK(df.AddNumericColumn("distance", std::move(dist)).ok());
  CCS_CHECK(df.AddNumericColumn("delay", std::move(delay)).ok());
  return df;
}

StatusOr<AirlinesBenchmark> MakeAirlinesBenchmark(
    size_t train_rows, size_t serving_rows, Rng* rng,
    const AirlinesOptions& options) {
  AirlinesBenchmark out;
  out.train = GenerateFlights(FlightKind::kDaytime, train_rows, rng, options);
  out.daytime =
      GenerateFlights(FlightKind::kDaytime, serving_rows, rng, options);
  out.overnight =
      GenerateFlights(FlightKind::kOvernight, serving_rows, rng, options);

  dataframe::DataFrame half_day =
      GenerateFlights(FlightKind::kDaytime, serving_rows / 2, rng, options);
  dataframe::DataFrame half_night = GenerateFlights(
      FlightKind::kOvernight, serving_rows - serving_rows / 2, rng, options);
  CCS_ASSIGN_OR_RETURN(dataframe::DataFrame mixed,
                       half_day.Concat(half_night));
  out.mixed = mixed.Sample(mixed.num_rows(), rng);  // Shuffle.
  return out;
}

}  // namespace ccs::synth
