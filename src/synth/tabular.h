// Synthetic tabular case-study datasets (substitutes for the Kaggle
// Cardiovascular Disease [1], Mobile Prices [4], and House Prices [3]
// datasets of the Fig. 12 explanation experiments).
//
// Each generator plants a known causal structure so responsibility
// attribution can be validated:
//   - cardio: disease manifests chiefly through elevated blood pressure
//     (ap_hi / ap_lo) with weaker weight/cholesterol effects;
//   - mobile: price class is driven dominantly by RAM;
//   - house:  price is driven holistically by many attributes at once.

#ifndef CCS_SYNTH_TABULAR_H_
#define CCS_SYNTH_TABULAR_H_

#include "common/random.h"
#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::synth {

/// Cardiovascular patients. `diseased` selects the population.
/// Numeric columns: age, gender, height, weight, ap_hi, ap_lo,
/// cholesterol, gluc, smoke, alco, active.
StatusOr<dataframe::DataFrame> GenerateCardio(size_t n, bool diseased,
                                              Rng* rng);

/// Mobile phones. `expensive` selects the price class. Numeric columns:
/// battery_power, blue, clock_speed, dual_sim, int_memory, m_dep,
/// mobile_wt, n_cores, px_height, px_width, ram, sc_h, talk_time,
/// touch_screen, wifi.
StatusOr<dataframe::DataFrame> GenerateMobile(size_t n, bool expensive,
                                              Rng* rng);

/// Houses. `expensive` selects the price band. Numeric columns:
/// GrLivArea, OverallQual, YearBuilt, FullBath, GarageArea,
/// TotRmsAbvGrd, FirstFlrSF, SecondFlrSF, LotArea, Fireplaces,
/// MasVnrArea, BsmtFinSF1, YearRemodAdd, ScreenPorch, BsmtFullBath.
StatusOr<dataframe::DataFrame> GenerateHouse(size_t n, bool expensive,
                                             Rng* rng);

}  // namespace ccs::synth

#endif  // CCS_SYNTH_TABULAR_H_
