#include "synth/evl.h"

#include <cmath>
#include <functional>
#include <map>

namespace ccs::synth {

namespace {

constexpr double kPi = 3.14159265358979323846;

// One Gaussian mode of a class at a point in time.
struct Mode {
  std::vector<double> mean;
  double sigma;
};

// A class: label plus its (possibly multimodal) Gaussian mixture.
struct ClassSpec {
  std::string label;
  std::vector<Mode> modes;
};

using SpecFn = std::function<std::vector<ClassSpec>(double t)>;

struct Dataset {
  size_t dims;
  SpecFn spec;
};

std::vector<double> Lerp(const std::vector<double>& a,
                         const std::vector<double>& b, double t) {
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + (b[i] - a[i]) * t;
  return out;
}

std::vector<double> OnCircle(double cx, double cy, double radius,
                             double angle) {
  return {cx + radius * std::cos(angle), cy + radius * std::sin(angle)};
}

// N-dimensional linear sweep from `a0` (all coords) to `a1`.
std::vector<double> UniformPoint(size_t dims, double value) {
  return std::vector<double>(dims, value);
}

const std::map<std::string, Dataset>& Registry() {
  static const std::map<std::string, Dataset>* registry = [] {
    auto* reg = new std::map<std::string, Dataset>();

    // --- Translation family -------------------------------------------
    (*reg)["1CDT"] = {2, [](double t) {
      return std::vector<ClassSpec>{
          {"c1", {{{4.0, 4.0}, 0.6}}},
          {"c2", {{Lerp({0.0, 0.0}, {6.0, 6.0}, t), 0.6}}}};
    }};
    (*reg)["2CDT"] = {2, [](double t) {
      return std::vector<ClassSpec>{
          {"c1", {{Lerp({0.0, 0.0}, {6.0, 6.0}, t), 0.6}}},
          {"c2", {{Lerp({6.0, 0.0}, {0.0, 6.0}, t), 0.6}}}};
    }};
    (*reg)["1CHT"] = {2, [](double t) {
      return std::vector<ClassSpec>{
          {"c1", {{{4.0, 4.0}, 0.6}}},
          {"c2", {{Lerp({0.0, 0.0}, {8.0, 0.0}, t), 0.6}}}};
    }};
    (*reg)["2CHT"] = {2, [](double t) {
      return std::vector<ClassSpec>{
          {"c1", {{Lerp({0.0, 0.0}, {8.0, 0.0}, t), 0.6}}},
          {"c2", {{Lerp({8.0, 4.0}, {0.0, 4.0}, t), 0.6}}}};
    }};
    (*reg)["5CVT"] = {2, [](double t) {
      std::vector<ClassSpec> classes;
      for (int c = 0; c < 5; ++c) {
        double x = 2.0 * c;
        classes.push_back({"c" + std::to_string(c + 1),
                           {{Lerp({x, 0.0}, {x, 6.0}, t), 0.5}}});
      }
      return classes;
    }};

    // --- Rotation family (cyclic drift; global shape preserved) -------
    (*reg)["4CR"] = {2, [](double t) {
      std::vector<ClassSpec> classes;
      for (int c = 0; c < 4; ++c) {
        double angle = 2.0 * kPi * (0.25 * c + t);
        classes.push_back({"c" + std::to_string(c + 1),
                           {{OnCircle(0.0, 0.0, 4.0, angle), 0.6}}});
      }
      return classes;
    }};
    (*reg)["4CRE-V1"] = {2, [](double t) {
      std::vector<ClassSpec> classes;
      double radius = 2.0 + 2.0 * t;
      for (int c = 0; c < 4; ++c) {
        double angle = 2.0 * kPi * (0.25 * c + t);
        classes.push_back({"c" + std::to_string(c + 1),
                           {{OnCircle(0.0, 0.0, radius, angle), 0.6}}});
      }
      return classes;
    }};
    (*reg)["4CRE-V2"] = {2, [](double t) {
      std::vector<ClassSpec> classes;
      double radius = 2.0 + 2.0 * t;
      for (int c = 0; c < 4; ++c) {
        double angle = 2.0 * kPi * (0.25 * c + 2.0 * t);
        classes.push_back({"c" + std::to_string(c + 1),
                           {{OnCircle(0.0, 0.0, radius, angle), 0.6}}});
      }
      return classes;
    }};
    (*reg)["GEARS-2C-2D"] = {2, [](double t) {
      // Two interleaved rotating "gear arms": each class is a pair of
      // opposing teeth, i.e. a strongly elongated bar through the origin.
      // Elongation matters: a rotationally-symmetric tooth ring has an
      // isotropic covariance, making its rotation invisible to every
      // second-moment profile (including conformance constraints). A bar
      // rotates its narrow axis, which mean +/- 4 sigma constraints catch.
      std::vector<ClassSpec> classes(2);
      for (int c = 0; c < 2; ++c) {
        classes[c].label = "c" + std::to_string(c + 1);
        for (int tooth = 0; tooth < 2; ++tooth) {
          double angle = 2.0 * kPi * (0.5 * tooth + 0.125 * c + t);
          classes[c].modes.push_back({OnCircle(0.0, 0.0, 4.0, angle), 0.45});
        }
      }
      return classes;
    }};

    // --- Surround / expansion ------------------------------------------
    (*reg)["1CSurr"] = {2, [](double t) {
      // c2 circles around the static c1.
      double angle = 2.0 * kPi * t;
      return std::vector<ClassSpec>{
          {"c1", {{{0.0, 0.0}, 0.8}}},
          {"c2", {{OnCircle(0.0, 0.0, 4.0, angle), 0.6}}}};
    }};
    (*reg)["4CE1CF"] = {2, [](double t) {
      std::vector<ClassSpec> classes;
      double radius = 2.0 + 4.0 * t;
      for (int c = 0; c < 4; ++c) {
        double angle = 2.0 * kPi * (0.25 * c) + kPi / 4.0;
        classes.push_back({"c" + std::to_string(c + 1),
                           {{OnCircle(0.0, 0.0, radius, angle), 0.6}}});
      }
      classes.push_back({"c5", {{{0.0, 0.0}, 0.6}}});
      return classes;
    }};

    // --- Gaussian families in 2/3/5 dimensions --------------------------
    auto unimodal_cross = [](size_t dims) {
      return [dims](double t) {
        return std::vector<ClassSpec>{
            {"c1",
             {{Lerp(UniformPoint(dims, 0.0), UniformPoint(dims, 4.0), t),
               0.7}}},
            {"c2",
             {{Lerp(UniformPoint(dims, 4.0), UniformPoint(dims, 0.0), t),
               0.7}}}};
      };
    };
    (*reg)["UG-2C-2D"] = {2, unimodal_cross(2)};
    (*reg)["UG-2C-3D"] = {3, unimodal_cross(3)};
    (*reg)["UG-2C-5D"] = {5, unimodal_cross(5)};

    (*reg)["MG-2C-2D"] = {2, [](double t) {
      // c1 bimodal, its modes collapsing toward the center; c2 unimodal,
      // sweeping vertically.
      return std::vector<ClassSpec>{
          {"c1",
           {{Lerp({0.0, 0.0}, {3.0, 3.0}, t), 0.6},
            {Lerp({6.0, 6.0}, {3.0, 3.0}, t), 0.6}}},
          {"c2", {{Lerp({3.0, -2.0}, {3.0, 8.0}, t), 0.6}}}};
    }};
    (*reg)["FG-2C-2D"] = {2, [](double t) {
      // Four Gaussians, two per class, drifting in opposite directions;
      // class composition changes locally while the global footprint is
      // fairly stable.
      return std::vector<ClassSpec>{
          {"c1",
           {{Lerp({0.0, 0.0}, {6.0, 0.0}, t), 0.6},
            {Lerp({6.0, 6.0}, {0.0, 6.0}, t), 0.6}}},
          {"c2",
           {{Lerp({6.0, 0.0}, {0.0, 0.0}, t), 0.6},
            {Lerp({0.0, 6.0}, {6.0, 6.0}, t), 0.6}}}};
    }};

    return reg;
  }();
  return *registry;
}

}  // namespace

const std::vector<std::string>& EvlDatasetNames() {
  static const std::vector<std::string>* names = [] {
    // Fig. 8 ordering.
    return new std::vector<std::string>{
        "1CDT",      "2CDT",      "1CHT",     "2CHT",     "4CR",
        "4CRE-V1",   "4CRE-V2",   "5CVT",     "1CSurr",   "4CE1CF",
        "UG-2C-2D",  "MG-2C-2D",  "FG-2C-2D", "UG-2C-3D", "UG-2C-5D",
        "GEARS-2C-2D"};
  }();
  return *names;
}

bool IsEvlDataset(const std::string& name) {
  return Registry().count(name) > 0;
}

StatusOr<dataframe::DataFrame> GenerateEvlWindow(const std::string& name,
                                                 double t, size_t rows,
                                                 Rng* rng) {
  auto it = Registry().find(name);
  if (it == Registry().end()) {
    return Status::NotFound("unknown EVL dataset: " + name);
  }
  if (t < 0.0 || t > 1.0) {
    return Status::InvalidArgument("EVL: t must be in [0,1]");
  }
  const Dataset& dataset = it->second;
  std::vector<ClassSpec> classes = dataset.spec(t);

  std::vector<std::vector<double>> coords(dataset.dims);
  std::vector<std::string> labels;
  labels.reserve(rows);
  for (auto& c : coords) c.reserve(rows);

  for (size_t i = 0; i < rows; ++i) {
    const ClassSpec& cls = classes[i % classes.size()];
    const Mode& mode =
        cls.modes[rng->UniformInt(0, static_cast<int64_t>(cls.modes.size()) -
                                         1)];
    for (size_t d = 0; d < dataset.dims; ++d) {
      coords[d].push_back(mode.mean[d] + rng->Gaussian(0.0, mode.sigma));
    }
    labels.push_back(cls.label);
  }

  dataframe::DataFrame df;
  for (size_t d = 0; d < dataset.dims; ++d) {
    CCS_RETURN_IF_ERROR(
        df.AddNumericColumn("x" + std::to_string(d), std::move(coords[d])));
  }
  CCS_RETURN_IF_ERROR(df.AddCategoricalColumn("class", std::move(labels)));
  return df;
}

StatusOr<std::vector<dataframe::DataFrame>> GenerateEvlStream(
    const std::string& name, size_t num_windows, size_t rows_per_window,
    Rng* rng) {
  if (num_windows < 2) {
    return Status::InvalidArgument("EVL: need at least 2 windows");
  }
  std::vector<dataframe::DataFrame> out;
  out.reserve(num_windows);
  for (size_t w = 0; w < num_windows; ++w) {
    double t = static_cast<double>(w) / static_cast<double>(num_windows - 1);
    CCS_ASSIGN_OR_RETURN(dataframe::DataFrame window,
                         GenerateEvlWindow(name, t, rows_per_window, rng));
    out.push_back(std::move(window));
  }
  return out;
}

}  // namespace ccs::synth
