// The Extreme Verification Latency benchmark [74]: 16 synthetic
// non-stationary streams (substitute reimplementation from the published
// dataset descriptions; the originals are themselves synthetic).
//
// Each dataset is a time-indexed Gaussian mixture per class. Translation
// datasets drift monotonically; rotation datasets (4CR, GEARS) drift
// cyclically and return to the start; expansion datasets grow. Class
// labels are included as a categorical attribute so conformance
// constraints can learn per-class (local) profiles — the capability
// Fig. 8 shows PCA-SPLL lacking on 4CR/4CRE-V2/FG-2C-2D.

#ifndef CCS_SYNTH_EVL_H_
#define CCS_SYNTH_EVL_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::synth {

/// The 16 benchmark dataset names, in the paper's Fig. 8 order.
const std::vector<std::string>& EvlDatasetNames();

/// True if `name` is one of the 16 datasets.
bool IsEvlDataset(const std::string& name);

/// Generates a stream of `num_windows` windows with `rows_per_window`
/// tuples each. Columns: x0..x<d-1> (numeric, d in {2,3,5}) and "class"
/// (categorical). Window w sits at normalized time w / (num_windows - 1).
StatusOr<std::vector<dataframe::DataFrame>> GenerateEvlStream(
    const std::string& name, size_t num_windows, size_t rows_per_window,
    Rng* rng);

/// One window at normalized time t in [0, 1] (exposed for tests).
StatusOr<dataframe::DataFrame> GenerateEvlWindow(const std::string& name,
                                                 double t, size_t rows,
                                                 Rng* rng);

}  // namespace ccs::synth

#endif  // CCS_SYNTH_EVL_H_
