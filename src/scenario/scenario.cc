#include "scenario/scenario.h"

#include <algorithm>
#include <cctype>
#include <iterator>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "synth/evl.h"
#include "synth/har.h"
#include "synth/led.h"
#include "synth/tabular.h"

namespace ccs::scenario {

using dataframe::Column;
using dataframe::DataFrame;

namespace {

// splitmix64: derives independent per-stage seeds from the master seed.
// Fixed here forever — golden traces depend on it.
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Seed streams 0/1 feed the reference and base stream; stage i draws
// from stream 2 + i, so inserting a stage never reseeds earlier ones.
constexpr uint64_t kReferenceStream = 0;
constexpr uint64_t kBaseStream = 1;
constexpr uint64_t kFirstStageStream = 2;

void AppendFrameRows(const DataFrame& df, RawStream* out) {
  for (size_t r = 0; r < df.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(df.num_columns());
    for (size_t c = 0; c < df.num_columns(); ++c) {
      const Column& col = df.column(c);
      row.push_back(col.is_numeric() ? FormatDouble(col.NumericAt(r))
                                     : col.CategoricalAt(r));
    }
    out->rows.push_back(std::move(row));
  }
}

void SetHeaderFromFrame(const DataFrame& df, RawStream* out) {
  out->header.clear();
  for (size_t c = 0; c < df.num_columns(); ++c) {
    out->header.push_back(df.schema().attribute(c).name);
  }
}

// ------------------------------------------------------- base generators

// x uniform, y = x + noise tight trend, tag cycling an 8-value
// vocabulary — the simplest stream with both a numeric invariant to
// break and a categorical column to blow up.
DataFrame TrendFrame(size_t n, Rng* rng) {
  std::vector<double> x(n), y(n);
  std::vector<std::string> tag(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng->Uniform(-5.0, 5.0);
    y[i] = x[i] + rng->Gaussian(0.0, 0.1);
    tag[i] = "t" + std::to_string(i % 8);
  }
  DataFrame df;
  CCS_CHECK(df.AddNumericColumn("x", std::move(x)).ok());
  CCS_CHECK(df.AddNumericColumn("y", std::move(y)).ok());
  CCS_CHECK(df.AddCategoricalColumn("tag", std::move(tag)).ok());
  return df;
}

Status RenderTrend(const ScenarioSpec& spec, uint64_t seed,
                   RenderedScenario* out) {
  Rng ref_rng(MixSeed(seed, kReferenceStream));
  Rng base_rng(MixSeed(seed, kBaseStream));
  out->reference = TrendFrame(spec.reference_rows, &ref_rng);
  DataFrame stream = TrendFrame(spec.stream_rows, &base_rng);
  SetHeaderFromFrame(stream, &out->stream);
  AppendFrameRows(stream, &out->stream);
  return Status::OK();
}

// Sedentary-trained HAR monitor; the second half of the stream switches
// to mobile activities (the Fig. 6(a) mixture, as a serving stream).
Status RenderHar(const ScenarioSpec& spec, uint64_t seed,
                 RenderedScenario* out) {
  Rng ref_rng(MixSeed(seed, kReferenceStream));
  Rng base_rng(MixSeed(seed, kBaseStream));
  const std::vector<std::string> persons = synth::HarPersons(3);
  const size_t pairs_sed = persons.size() * synth::SedentaryActivities().size();
  const size_t pairs_mob = persons.size() * synth::MobileActivities().size();

  CCS_ASSIGN_OR_RETURN(
      out->reference,
      synth::GenerateHar(persons, synth::SedentaryActivities(),
                         std::max<size_t>(1, spec.reference_rows / pairs_sed),
                         &ref_rng));
  const size_t half = spec.stream_rows / 2;
  CCS_ASSIGN_OR_RETURN(
      DataFrame sedentary,
      synth::GenerateHar(persons, synth::SedentaryActivities(),
                         std::max<size_t>(1, half / pairs_sed) + 1,
                         &base_rng));
  CCS_ASSIGN_OR_RETURN(
      DataFrame mobile,
      synth::GenerateHar(persons, synth::MobileActivities(),
                         std::max<size_t>(1, (spec.stream_rows - half) /
                                                 pairs_mob) +
                             1,
                         &base_rng));
  SetHeaderFromFrame(sedentary, &out->stream);
  AppendFrameRows(sedentary, &out->stream);
  out->stream.rows.resize(std::min(out->stream.rows.size(), half));
  AppendFrameRows(mobile, &out->stream);
  out->stream.rows.resize(std::min(out->stream.rows.size(), spec.stream_rows));
  return Status::OK();
}

// Healthy-trained cardio monitor served a diseased population from the
// midpoint on (tabular case study as a stream).
Status RenderCardio(const ScenarioSpec& spec, uint64_t seed,
                    RenderedScenario* out) {
  Rng ref_rng(MixSeed(seed, kReferenceStream));
  Rng base_rng(MixSeed(seed, kBaseStream));
  CCS_ASSIGN_OR_RETURN(
      out->reference,
      synth::GenerateCardio(spec.reference_rows, /*diseased=*/false,
                            &ref_rng));
  const size_t half = spec.stream_rows / 2;
  CCS_ASSIGN_OR_RETURN(DataFrame healthy,
                       synth::GenerateCardio(half, false, &base_rng));
  CCS_ASSIGN_OR_RETURN(
      DataFrame diseased,
      synth::GenerateCardio(spec.stream_rows - half, true, &base_rng));
  SetHeaderFromFrame(healthy, &out->stream);
  AppendFrameRows(healthy, &out->stream);
  AppendFrameRows(diseased, &out->stream);
  return Status::OK();
}

// LED display whose segments fail on the paper's 20-window schedule.
Status RenderLed(const ScenarioSpec& spec, uint64_t seed,
                 RenderedScenario* out) {
  Rng ref_rng(MixSeed(seed, kReferenceStream));
  Rng base_rng(MixSeed(seed, kBaseStream));
  CCS_ASSIGN_OR_RETURN(
      std::vector<DataFrame> ref_windows,
      synth::GenerateLedStream(4, std::max<size_t>(1, spec.reference_rows / 4),
                               {}, &ref_rng));
  out->reference = std::move(ref_windows[0]);
  for (size_t i = 1; i < ref_windows.size(); ++i) {
    CCS_ASSIGN_OR_RETURN(out->reference,
                         out->reference.Concat(ref_windows[i]));
  }
  const size_t num_windows = 20;  // DefaultLedSchedule's layout.
  CCS_ASSIGN_OR_RETURN(
      std::vector<DataFrame> windows,
      synth::GenerateLedStream(
          num_windows, std::max<size_t>(1, spec.stream_rows / num_windows),
          synth::DefaultLedSchedule(), &base_rng));
  SetHeaderFromFrame(windows[0], &out->stream);
  for (const DataFrame& w : windows) AppendFrameRows(w, &out->stream);
  return Status::OK();
}

// EVL stream "evl:<name>": reference at t=0, stream sweeping t in [0,1].
Status RenderEvl(const std::string& dataset, const ScenarioSpec& spec,
                 uint64_t seed, RenderedScenario* out) {
  Rng ref_rng(MixSeed(seed, kReferenceStream));
  Rng base_rng(MixSeed(seed, kBaseStream));
  CCS_ASSIGN_OR_RETURN(
      out->reference,
      synth::GenerateEvlWindow(dataset, 0.0, spec.reference_rows, &ref_rng));
  const size_t rows_per_window = std::max<size_t>(1, spec.window_rows);
  const size_t num_windows =
      std::max<size_t>(2, spec.stream_rows / rows_per_window);
  CCS_ASSIGN_OR_RETURN(
      std::vector<DataFrame> windows,
      synth::GenerateEvlStream(dataset, num_windows, rows_per_window,
                               &base_rng));
  SetHeaderFromFrame(windows[0], &out->stream);
  for (const DataFrame& w : windows) AppendFrameRows(w, &out->stream);
  return Status::OK();
}

// --------------------------------------------------- perturbation stages

StatusOr<size_t> HeaderIndex(const RawStream& stream,
                             const std::string& column,
                             const std::string& kind) {
  for (size_t c = 0; c < stream.header.size(); ++c) {
    if (stream.header[c] == column) return c;
  }
  return Status::InvalidArgument("scenario stage '" + kind +
                                 "': no stream column named '" + column +
                                 "'");
}

// Clamped [begin, end) over the stream's current rows.
std::pair<size_t, size_t> StageRange(const StageSpec& stage, size_t rows) {
  size_t begin = std::min(stage.begin_row, rows);
  size_t end = std::min(stage.end_row, rows);
  return {begin, std::max(begin, end)};
}

Status ApplyNumericDrift(const StageSpec& stage, Rng* /*rng*/,
                         RawStream* stream) {
  CCS_ASSIGN_OR_RETURN(size_t col,
                       HeaderIndex(*stream, stage.column, stage.kind));
  auto [begin, end] = StageRange(stage, stream->rows.size());
  for (size_t i = begin; i < end; ++i) {
    std::vector<std::string>& row = stream->rows[i];
    if (col >= row.size()) continue;  // Ragged from an earlier stage.
    std::optional<double> v = ParseDouble(row[col]);
    if (!v.has_value()) continue;  // Leave non-numeric cells alone.
    double offset = stage.magnitude;
    if (stage.kind == "gradual-drift") {
      offset *= static_cast<double>(i - begin + 1) /
                static_cast<double>(end - begin);
    } else if (stage.kind == "recurring-drift") {
      size_t period = std::max<size_t>(1, stage.period);
      if (((i - begin) / period) % 2 != 0) continue;  // Off-block.
    }
    row[col] = FormatDouble(*v + offset);
  }
  return Status::OK();
}

Status ApplyCellBurst(const StageSpec& stage, Rng* rng, RawStream* stream) {
  CCS_ASSIGN_OR_RETURN(size_t col,
                       HeaderIndex(*stream, stage.column, stage.kind));
  auto [begin, end] = StageRange(stage, stream->rows.size());
  for (size_t i = begin; i < end; ++i) {
    bool hit = rng->Bernoulli(stage.fraction);  // Drawn for every row in
                                                // range: replayable even
                                                // across ragged rows.
    std::vector<std::string>& row = stream->rows[i];
    if (!hit || col >= row.size()) continue;
    if (stage.kind == "nan-burst") {
      row[col] = "NaN";
    } else if (stage.kind == "inf-burst") {
      row[col] = rng->Bernoulli(0.5) ? "-inf" : "inf";
    } else {  // garble
      row[col] = "#not-a-number#";
    }
  }
  return Status::OK();
}

Status ApplyStage(const StageSpec& stage, Rng* rng, RawStream* stream) {
  const std::string& kind = stage.kind;
  if (kind == "abrupt-drift" || kind == "gradual-drift" ||
      kind == "recurring-drift") {
    return ApplyNumericDrift(stage, rng, stream);
  }
  if (kind == "nan-burst" || kind == "inf-burst" || kind == "garble") {
    return ApplyCellBurst(stage, rng, stream);
  }
  if (kind == "add-column") {
    auto [begin, end] = StageRange(stage, stream->rows.size());
    for (size_t i = begin; i < end; ++i) {
      stream->rows[i].push_back(FormatDouble(rng->Uniform(0.0, 1.0)));
    }
    return Status::OK();
  }
  if (kind == "drop-column") {
    auto [begin, end] = StageRange(stage, stream->rows.size());
    for (size_t i = begin; i < end; ++i) {
      if (!stream->rows[i].empty()) stream->rows[i].pop_back();
    }
    return Status::OK();
  }
  if (kind == "cardinality-blowup") {
    CCS_ASSIGN_OR_RETURN(size_t col,
                         HeaderIndex(*stream, stage.column, kind));
    auto [begin, end] = StageRange(stage, stream->rows.size());
    for (size_t i = begin; i < end; ++i) {
      std::vector<std::string>& row = stream->rows[i];
      if (col >= row.size()) continue;
      row[col] += "#" + std::to_string(i);  // Unique per row.
    }
    return Status::OK();
  }
  if (kind == "duplicate-flood") {
    auto [begin, end] = StageRange(stage, stream->rows.size());
    if (begin >= stream->rows.size()) return Status::OK();
    const std::vector<std::string> prototype = stream->rows[begin];
    for (size_t i = begin; i < end; ++i) stream->rows[i] = prototype;
    return Status::OK();
  }
  if (kind == "reorder") {
    auto [begin, end] = StageRange(stage, stream->rows.size());
    std::vector<std::vector<std::string>> block(
        stream->rows.begin() + begin, stream->rows.begin() + end);
    rng->Shuffle(&block);
    std::move(block.begin(), block.end(), stream->rows.begin() + begin);
    return Status::OK();
  }
  if (kind == "truncate") {
    stream->rows.resize(std::min(stream->rows.size(), stage.begin_row));
    return Status::OK();
  }
  return Status::InvalidArgument("scenario: unknown stage kind '" + kind +
                                 "'");
}

}  // namespace

std::string RawStream::ToCsv() const {
  auto write_field = [](std::string* out, const std::string& field) {
    bool needs_quotes = field.find(',') != std::string::npos ||
                        field.find('"') != std::string::npos ||
                        field.find('\n') != std::string::npos ||
                        field.find('\r') != std::string::npos;
    if (!needs_quotes) {
      out->append(field);
      return;
    }
    out->push_back('"');
    for (char c : field) {
      if (c == '"') out->push_back('"');
      out->push_back(c);
    }
    out->push_back('"');
  };
  std::string out;
  for (size_t c = 0; c < header.size(); ++c) {
    if (c > 0) out.push_back(',');
    write_field(&out, header[c]);
  }
  out.push_back('\n');
  for (const std::vector<std::string>& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      write_field(&out, row[c]);
    }
    out.push_back('\n');
  }
  return out;
}

StatusOr<RenderedScenario> Render(const ScenarioSpec& spec, uint64_t seed) {
  if (spec.stream_rows == 0 && spec.generator != "trend") {
    return Status::InvalidArgument(
        "scenario: stream_rows must be >= 1 for generator '" +
        spec.generator + "'");
  }
  RenderedScenario out;
  if (spec.generator == "trend") {
    CCS_RETURN_IF_ERROR(RenderTrend(spec, seed, &out));
  } else if (spec.generator == "har") {
    CCS_RETURN_IF_ERROR(RenderHar(spec, seed, &out));
  } else if (spec.generator == "cardio") {
    CCS_RETURN_IF_ERROR(RenderCardio(spec, seed, &out));
  } else if (spec.generator == "led") {
    CCS_RETURN_IF_ERROR(RenderLed(spec, seed, &out));
  } else if (StartsWith(spec.generator, "evl:")) {
    std::string dataset = spec.generator.substr(4);
    if (!synth::IsEvlDataset(dataset)) {
      return Status::InvalidArgument("scenario: unknown EVL dataset '" +
                                     dataset + "'");
    }
    CCS_RETURN_IF_ERROR(RenderEvl(dataset, spec, seed, &out));
  } else {
    return Status::InvalidArgument("scenario: unknown generator '" +
                                   spec.generator + "'");
  }
  for (size_t i = 0; i < spec.stages.size(); ++i) {
    Rng stage_rng(MixSeed(seed, kFirstStageStream + i));
    CCS_RETURN_IF_ERROR(ApplyStage(spec.stages[i], &stage_rng, &out.stream));
  }
  return out;
}

// ------------------------------------------------------------- catalogue

namespace {

StageSpec Stage(std::string kind, std::string column, double magnitude,
                size_t begin_row, size_t end_row = kAllRows,
                size_t period = 0, double fraction = 1.0) {
  StageSpec s;
  s.kind = std::move(kind);
  s.column = std::move(column);
  s.magnitude = magnitude;
  s.begin_row = begin_row;
  s.end_row = end_row;
  s.period = period;
  s.fraction = fraction;
  return s;
}

}  // namespace

const std::vector<std::string>& CatalogueNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "steady",
      "abrupt-drift",
      "gradual-drift",
      "recurring-drift",
      "schema-add-column",
      "schema-drop-column",
      "cardinality-blowup",
      "nan-burst",
      "inf-burst",
      "garbled-cell",
      "duplicate-flood",
      "reordered",
      "short-stream",
      "empty-stream",
      "har-activity-mix",
      "evl-4cr-rotation",
      "led-segment-failure",
      "cardio-onset",
      "fault-transient-score-retry",
      "fault-score-quarantine",
      "degraded-ingest-quarantine",
  };
  return *names;
}

StatusOr<ScenarioSpec> CatalogueSpec(const std::string& name, size_t scale) {
  if (scale == 0) scale = 1;
  const size_t k = scale;
  ScenarioSpec spec;
  spec.name = name;
  // Trend geometry shared by the adversarial shapes: 1200-row stream,
  // 50-row tumbling windows, drift onset at row 600 (window 12).
  spec.reference_rows = 400 * k;
  spec.stream_rows = 1200 * k;
  spec.window_rows = 50 * k;
  spec.alarm_threshold = 0.2;
  spec.chunk_rows = 64 * k;

  if (name == "steady") {
    return spec;
  }
  if (name == "abrupt-drift") {
    spec.stages = {Stage("abrupt-drift", "y", 6.0, 600 * k)};
    return spec;
  }
  if (name == "gradual-drift") {
    spec.stages = {Stage("gradual-drift", "y", 6.0, 300 * k, 1200 * k)};
    return spec;
  }
  if (name == "recurring-drift") {
    spec.stages = {
        Stage("recurring-drift", "y", 6.0, 300 * k, kAllRows, 150 * k)};
    return spec;
  }
  if (name == "schema-add-column") {
    spec.stages = {Stage("add-column", "", 0.0, 700 * k)};
    return spec;
  }
  if (name == "schema-drop-column") {
    spec.stages = {Stage("drop-column", "", 0.0, 700 * k)};
    return spec;
  }
  if (name == "cardinality-blowup") {
    spec.refresh_every = 4;  // Grow the dictionary across refreshes too.
    spec.stages = {Stage("cardinality-blowup", "tag", 0.0, 600 * k)};
    return spec;
  }
  if (name == "nan-burst") {
    spec.stages = {Stage("nan-burst", "y", 0.0, 800 * k, 820 * k, 0, 0.5)};
    return spec;
  }
  if (name == "inf-burst") {
    spec.stages = {Stage("inf-burst", "y", 0.0, 600 * k, 650 * k, 0, 0.5)};
    return spec;
  }
  if (name == "garbled-cell") {
    spec.stages = {Stage("garble", "x", 0.0, 750 * k, 751 * k)};
    return spec;
  }
  if (name == "duplicate-flood") {
    spec.stages = {Stage("duplicate-flood", "", 0.0, 600 * k, 900 * k)};
    return spec;
  }
  if (name == "reordered") {
    spec.refresh_every = 4;
    spec.stages = {Stage("abrupt-drift", "y", 6.0, 1000 * k),
                   Stage("reorder", "", 0.0, 400 * k, 1200 * k)};
    return spec;
  }
  if (name == "short-stream") {
    // Fewer rows than one window: zero windows is the defined outcome.
    spec.stages = {Stage("truncate", "", 0.0, 30 * k)};
    return spec;
  }
  if (name == "empty-stream") {
    spec.stages = {Stage("truncate", "", 0.0, 0)};
    return spec;
  }
  if (name == "har-activity-mix") {
    spec.generator = "har";
    spec.reference_rows = 540 * k;
    spec.stream_rows = 1080 * k;
    spec.window_rows = 60 * k;
    spec.alarm_threshold = 0.3;
    return spec;
  }
  if (name == "evl-4cr-rotation") {
    spec.generator = "evl:4CR";
    spec.reference_rows = 600 * k;
    spec.stream_rows = 1000 * k;
    spec.window_rows = 50 * k;
    spec.alarm_threshold = 0.3;
    return spec;
  }
  if (name == "led-segment-failure") {
    spec.generator = "led";
    spec.reference_rows = 400 * k;
    spec.stream_rows = 1200 * k;
    spec.window_rows = 60 * k;
    // Healthy LED windows score ~0.012, post-failure ones ~0.03+: the
    // first segment failure (window 5 of the paper schedule) alarms.
    spec.alarm_threshold = 0.02;
    return spec;
  }
  if (name == "cardio-onset") {
    spec.generator = "cardio";
    spec.reference_rows = 500 * k;
    spec.stream_rows = 1000 * k;
    spec.window_rows = 50 * k;
    spec.refresh_every = 6;
    // Disease onset at window 10 scores ~0.011-0.013 until the window-12
    // refresh folds the new population into the profile and the alarms
    // stop — the §4.3.2 adaptation story as a trace.
    spec.alarm_threshold = 0.01;
    return spec;
  }
  if (name == "fault-transient-score-retry") {
    // Transient faults at every 7th score-gate hit, absorbed by bounded
    // retry: the committed history is bitwise identical to `steady`, and
    // only the trace's degraded line betrays the turbulence. Hit
    // ordinals advance per attempt, so the injection sites are still a
    // pure function of (seed, spec).
    spec.score_policy = "retry:2";
    common::fault::FaultPoint fault;
    fault.point = "stream.score.window";
    fault.trigger = "every";
    fault.every = 7;
    spec.faults = {fault};
    return spec;
  }
  if (name == "fault-score-quarantine") {
    // The score gate fails persistently at consumed window 13;
    // quarantine-and-continue skips exactly that window and the history
    // closes over the gap (window geometry is scale-free: 24 windows at
    // every scale).
    spec.score_policy = "quarantine";
    common::fault::FaultPoint fault;
    fault.point = "stream.score.window";
    fault.trigger = "once";
    fault.at = 13;
    spec.faults = {fault};
    return spec;
  }
  if (name == "degraded-ingest-quarantine") {
    // The garbled-cell teardown scenario under an ingest quarantine
    // policy: the unparseable row 750 costs one quarantined data row and
    // shifts every later window boundary by one, but the stream serves
    // to completion.
    spec.ingest_policy = "quarantine";
    spec.stages = {Stage("garble", "x", 0.0, 750 * k, 751 * k)};
    return spec;
  }
  return Status::NotFound("scenario: no catalogue entry named '" + name +
                          "'");
}

// ------------------------------------------------------------ fuzz draws

ScenarioSpec RandomSpec(Rng* rng) {
  // Per-generator stage targets: a numeric column and (optionally) a
  // categorical one.
  struct GeneratorInfo {
    const char* name;
    const char* numeric_column;
    const char* categorical_column;  // "" = none.
  };
  static const GeneratorInfo kGenerators[] = {
      {"trend", "y", "tag"},          {"trend", "x", "tag"},
      {"har", "s0", "activity"},      {"cardio", "ap_hi", ""},
      {"led", "led1", "digit"},       {"evl:4CR", "x0", "class"},
      {"evl:1CDT", "x0", "class"},
  };
  const GeneratorInfo& gen = kGenerators[static_cast<size_t>(
      rng->UniformInt(0, std::size(kGenerators) - 1))];

  ScenarioSpec spec;
  spec.name = "fuzz";
  spec.generator = gen.name;
  spec.reference_rows = static_cast<size_t>(rng->UniformInt(200, 500));
  spec.stream_rows = static_cast<size_t>(rng->UniformInt(300, 900));
  spec.window_rows = static_cast<size_t>(rng->UniformInt(20, 60));
  spec.slide_rows = rng->Bernoulli(0.3) ? spec.window_rows / 2 : 0;
  spec.alarm_threshold = rng->Uniform(0.1, 0.5);
  spec.refresh_every =
      static_cast<size_t>(rng->Categorical({0.5, 0.25, 0.25}) * 2);  // 0/2/4
  spec.chunk_rows = static_cast<size_t>(rng->UniformInt(16, 128));

  static const char* kKinds[] = {
      "abrupt-drift",  "gradual-drift",     "recurring-drift", "add-column",
      "drop-column",   "cardinality-blowup", "nan-burst",       "inf-burst",
      "garble",        "duplicate-flood",    "reorder",         "truncate",
  };
  size_t num_stages = static_cast<size_t>(rng->UniformInt(0, 3));
  for (size_t s = 0; s < num_stages; ++s) {
    StageSpec stage;
    stage.kind = kKinds[static_cast<size_t>(
        rng->UniformInt(0, std::size(kKinds) - 1))];
    if (stage.kind == "cardinality-blowup" &&
        std::string(gen.categorical_column).empty()) {
      stage.kind = "abrupt-drift";  // Generator has no categorical column.
    }
    stage.column = stage.kind == "cardinality-blowup"
                       ? gen.categorical_column
                       : gen.numeric_column;
    stage.magnitude = rng->Uniform(0.5, 8.0);
    stage.fraction = rng->Uniform(0.05, 0.9);
    stage.begin_row =
        static_cast<size_t>(rng->UniformInt(0, spec.stream_rows));
    stage.end_row =
        stage.begin_row +
        static_cast<size_t>(rng->UniformInt(10, spec.stream_rows / 2 + 10));
    stage.period = static_cast<size_t>(rng->UniformInt(20, 200));
    spec.stages.push_back(std::move(stage));
  }

  // A quarter of draws run degraded: deterministic score-gate faults
  // absorbed by retry or quarantine. Error actions only (a crash draw
  // would kill the harness), and the default retryable code, so the
  // worst terminal a draw can produce is kUnavailable — never kInternal.
  if (rng->Bernoulli(0.25)) {
    spec.score_policy =
        rng->Bernoulli(0.5) ? "quarantine" : "retry:1+quarantine";
    common::fault::FaultPoint fault;
    fault.point = "stream.score.window";
    if (rng->Bernoulli(0.5)) {
      fault.trigger = "every";
      fault.every = static_cast<uint64_t>(rng->UniformInt(3, 9));
    } else {
      fault.trigger = "probability";
      fault.probability = rng->Uniform(0.05, 0.3);
    }
    spec.faults.push_back(std::move(fault));
  }
  if (rng->Bernoulli(0.15)) spec.ingest_policy = "quarantine";
  return spec;
}

// ------------------------------------------------------------- JSON form

namespace {

// Minimal JSON reader for the spec shape: objects, arrays, strings,
// numbers, bools. No external dependency; rejects anything it does not
// understand.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<ScenarioSpec> Parse() {
    ScenarioSpec spec;
    CCS_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) CCS_RETURN_IF_ERROR(Expect(','));
      first = false;
      CCS_ASSIGN_OR_RETURN(std::string key, ParseString());
      CCS_RETURN_IF_ERROR(Expect(':'));
      CCS_RETURN_IF_ERROR(SpecField(key, &spec));
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("scenario spec JSON: trailing content");
    }
    return spec;
  }

 private:
  Status SpecField(const std::string& key, ScenarioSpec* spec) {
    if (key == "name") return AssignString(&spec->name);
    if (key == "generator") return AssignString(&spec->generator);
    if (key == "reference_rows") return AssignSize(&spec->reference_rows);
    if (key == "stream_rows") return AssignSize(&spec->stream_rows);
    if (key == "window_rows") return AssignSize(&spec->window_rows);
    if (key == "slide_rows") return AssignSize(&spec->slide_rows);
    if (key == "alarm_threshold") return AssignDouble(&spec->alarm_threshold);
    if (key == "refresh_every") return AssignSize(&spec->refresh_every);
    if (key == "chunk_rows") return AssignSize(&spec->chunk_rows);
    if (key == "stages") return ParseStages(spec);
    if (key == "ingest_policy") return AssignString(&spec->ingest_policy);
    if (key == "window_policy") return AssignString(&spec->window_policy);
    if (key == "score_policy") return AssignString(&spec->score_policy);
    if (key == "faults") return ParseFaults(spec);
    return Status::InvalidArgument("scenario spec JSON: unknown key '" + key +
                                   "'");
  }

  Status ParseStages(ScenarioSpec* spec) {
    CCS_RETURN_IF_ERROR(Expect('['));
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      if (!first) CCS_RETURN_IF_ERROR(Expect(','));
      first = false;
      CCS_RETURN_IF_ERROR(ParseStage(spec));
    }
  }

  Status ParseStage(ScenarioSpec* spec) {
    StageSpec stage;
    CCS_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) CCS_RETURN_IF_ERROR(Expect(','));
      first = false;
      CCS_ASSIGN_OR_RETURN(std::string key, ParseString());
      CCS_RETURN_IF_ERROR(Expect(':'));
      if (key == "kind") {
        CCS_RETURN_IF_ERROR(AssignString(&stage.kind));
      } else if (key == "column") {
        CCS_RETURN_IF_ERROR(AssignString(&stage.column));
      } else if (key == "magnitude") {
        CCS_RETURN_IF_ERROR(AssignDouble(&stage.magnitude));
      } else if (key == "fraction") {
        CCS_RETURN_IF_ERROR(AssignDouble(&stage.fraction));
      } else if (key == "begin_row") {
        CCS_RETURN_IF_ERROR(AssignSize(&stage.begin_row));
      } else if (key == "end_row") {
        CCS_RETURN_IF_ERROR(AssignSize(&stage.end_row));
      } else if (key == "period") {
        CCS_RETURN_IF_ERROR(AssignSize(&stage.period));
      } else {
        return Status::InvalidArgument(
            "scenario spec JSON: unknown stage key '" + key + "'");
      }
    }
    spec->stages.push_back(std::move(stage));
    return Status::OK();
  }

  Status ParseFaults(ScenarioSpec* spec) {
    CCS_RETURN_IF_ERROR(Expect('['));
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      if (!first) CCS_RETURN_IF_ERROR(Expect(','));
      first = false;
      CCS_RETURN_IF_ERROR(ParseFault(spec));
    }
  }

  // One fault point, the common/fault.h spec shape. Validation of
  // trigger/action/code names happens at Injector::Arm, not here.
  Status ParseFault(ScenarioSpec* spec) {
    common::fault::FaultPoint fault;
    CCS_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) CCS_RETURN_IF_ERROR(Expect(','));
      first = false;
      CCS_ASSIGN_OR_RETURN(std::string key, ParseString());
      CCS_RETURN_IF_ERROR(Expect(':'));
      if (key == "point") {
        CCS_RETURN_IF_ERROR(AssignString(&fault.point));
      } else if (key == "trigger") {
        CCS_RETURN_IF_ERROR(AssignString(&fault.trigger));
      } else if (key == "at") {
        CCS_RETURN_IF_ERROR(AssignU64(&fault.at));
      } else if (key == "every") {
        CCS_RETURN_IF_ERROR(AssignU64(&fault.every));
      } else if (key == "probability") {
        CCS_RETURN_IF_ERROR(AssignDouble(&fault.probability));
      } else if (key == "action") {
        CCS_RETURN_IF_ERROR(AssignString(&fault.action));
      } else if (key == "code") {
        CCS_RETURN_IF_ERROR(AssignString(&fault.code));
      } else if (key == "message") {
        CCS_RETURN_IF_ERROR(AssignString(&fault.message));
      } else {
        return Status::InvalidArgument(
            "scenario spec JSON: unknown fault key '" + key + "'");
      }
    }
    spec->faults.push_back(std::move(fault));
    return Status::OK();
  }

  Status AssignString(std::string* out) {
    CCS_ASSIGN_OR_RETURN(*out, ParseString());
    return Status::OK();
  }

  Status AssignDouble(double* out) {
    CCS_ASSIGN_OR_RETURN(*out, ParseNumber());
    return Status::OK();
  }

  Status AssignSize(size_t* out) {
    CCS_ASSIGN_OR_RETURN(double v, ParseNumber());
    if (v < 0.0) {
      return Status::InvalidArgument(
          "scenario spec JSON: negative row count");
    }
    *out = static_cast<size_t>(v);
    return Status::OK();
  }

  Status AssignU64(uint64_t* out) {
    CCS_ASSIGN_OR_RETURN(double v, ParseNumber());
    if (v < 0.0) {
      return Status::InvalidArgument("scenario spec JSON: negative ordinal");
    }
    *out = static_cast<uint64_t>(v);
    return Status::OK();
  }

  StatusOr<std::string> ParseString() {
    CCS_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char esc = text_[pos_++];
        if (esc == 'n') {
          out.push_back('\n');
        } else if (esc == 't') {
          out.push_back('\t');
        } else {
          out.push_back(esc);  // \" \\ \/ and friends.
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument(
          "scenario spec JSON: unterminated string");
    }
    ++pos_;  // Closing quote.
    return out;
  }

  StatusOr<double> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    std::optional<double> v = ParseDouble(text_.substr(start, pos_ - start));
    if (!v.has_value()) {
      return Status::InvalidArgument("scenario spec JSON: bad number at " +
                                     std::to_string(start));
    }
    return *v;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(
          std::string("scenario spec JSON: expected '") + c + "' at offset " +
          std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

StatusOr<ScenarioSpec> ParseSpecJson(const std::string& text) {
  return JsonParser(text).Parse();
}

std::string SpecToJson(const ScenarioSpec& spec) {
  std::string out = "{\n  \"name\": ";
  AppendJsonString(&out, spec.name);
  out += ",\n  \"generator\": ";
  AppendJsonString(&out, spec.generator);
  out += ",\n  \"reference_rows\": " + std::to_string(spec.reference_rows);
  out += ",\n  \"stream_rows\": " + std::to_string(spec.stream_rows);
  out += ",\n  \"window_rows\": " + std::to_string(spec.window_rows);
  out += ",\n  \"slide_rows\": " + std::to_string(spec.slide_rows);
  out += ",\n  \"alarm_threshold\": " + FormatDouble(spec.alarm_threshold);
  out += ",\n  \"refresh_every\": " + std::to_string(spec.refresh_every);
  out += ",\n  \"chunk_rows\": " + std::to_string(spec.chunk_rows);
  if (!spec.ingest_policy.empty()) {
    out += ",\n  \"ingest_policy\": ";
    AppendJsonString(&out, spec.ingest_policy);
  }
  if (!spec.window_policy.empty()) {
    out += ",\n  \"window_policy\": ";
    AppendJsonString(&out, spec.window_policy);
  }
  if (!spec.score_policy.empty()) {
    out += ",\n  \"score_policy\": ";
    AppendJsonString(&out, spec.score_policy);
  }
  out += ",\n  \"stages\": [";
  for (size_t i = 0; i < spec.stages.size(); ++i) {
    const StageSpec& s = spec.stages[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\": ";
    AppendJsonString(&out, s.kind);
    if (!s.column.empty()) {
      out += ", \"column\": ";
      AppendJsonString(&out, s.column);
    }
    if (s.magnitude != 0.0) {
      out += ", \"magnitude\": " + FormatDouble(s.magnitude);
    }
    if (s.fraction != 1.0) {
      out += ", \"fraction\": " + FormatDouble(s.fraction);
    }
    out += ", \"begin_row\": " + std::to_string(s.begin_row);
    if (s.end_row != kAllRows) {
      out += ", \"end_row\": " + std::to_string(s.end_row);
    }
    if (s.period != 0) out += ", \"period\": " + std::to_string(s.period);
    out += "}";
  }
  out += spec.stages.empty() ? "]" : "\n  ]";
  if (!spec.faults.empty()) {
    out += ",\n  \"faults\": [";
    for (size_t i = 0; i < spec.faults.size(); ++i) {
      const common::fault::FaultPoint& f = spec.faults[i];
      out += i == 0 ? "\n" : ",\n";
      out += "    {\"point\": ";
      AppendJsonString(&out, f.point);
      out += ", \"trigger\": ";
      AppendJsonString(&out, f.trigger);
      if (f.trigger == "once") out += ", \"at\": " + std::to_string(f.at);
      if (f.trigger == "every") {
        out += ", \"every\": " + std::to_string(f.every);
      }
      if (f.trigger == "probability") {
        out += ", \"probability\": " + FormatDouble(f.probability);
      }
      if (f.action != "error") {
        out += ", \"action\": ";
        AppendJsonString(&out, f.action);
      }
      if (f.code != "unavailable") {
        out += ", \"code\": ";
        AppendJsonString(&out, f.code);
      }
      if (!f.message.empty()) {
        out += ", \"message\": ";
        AppendJsonString(&out, f.message);
      }
      out += "}";
    }
    out += "\n  ]";
  }
  out += "\n}";
  return out;
}

}  // namespace ccs::scenario
