// ScenarioRunner: drives the serving engine (and the baseline
// detectors) over a rendered scenario and emits a structured alarm
// trace.
//
// A trace is the scenario's observable behavior: one line per scored
// window (index, drift score, alarm bit), one line per reference
// refresh, one line per quarantined unit when the spec runs under a
// degrading failure policy (docs/robustness.md), a `degraded` summary
// line when any robustness counter is nonzero, and a terminal status
// line (clean end-of-stream or the structured teardown error a
// malformed stream produced). Scores are printed as raw IEEE-754 bits
// (NaN canonicalized to one quiet-NaN pattern — payloads are not
// stable across compilations, see docs/architecture.md) so golden
// comparison is bitwise, not approximate. The determinism contract
// makes the whole trace a pure function of (spec, seed) — fault
// injection included, since the injector's decisions are too:
// identical across reruns and across 1 vs 4 scoring threads, which
// tests/scenario_test.cc enforces and tests/golden/*.trace pin across
// PRs. Specs with no faults and fail-fast policies emit byte-identical
// traces to the pre-robustness format.

#ifndef CCS_SCENARIO_RUNNER_H_
#define CCS_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/drift_detector.h"
#include "common/statusor.h"
#include "scenario/scenario.h"
#include "stream/supervisor.h"

namespace ccs::scenario {

/// One trace event: a scored window, a profile refresh, or a
/// commit-thread quarantine (score/refresh stages — the ones whose
/// records interleave deterministically with window commits).
struct TraceEvent {
  enum class Kind { kWindow, kRefresh, kQuarantine };
  Kind kind = Kind::kWindow;
  /// Window index for kWindow; windows-scored-so-far (the refresh
  /// boundary) for kRefresh; the stage-local unit ordinal for
  /// kQuarantine.
  size_t window_index = 0;
  double score = 0.0;
  bool alarm = false;
  /// kQuarantine only: which stage absorbed the unit, what it cost, why.
  std::string stage;
  size_t rows_lost = 0;
  StatusCode reason = StatusCode::kOk;
};

/// The structured alarm trace of one scenario run.
struct ScenarioTrace {
  std::string scenario;
  /// "ccsynth" for the conformance pipeline, else the baseline's name.
  std::string detector;
  uint64_t seed = 0;
  std::vector<TraceEvent> events;
  /// OK on clean end-of-stream; otherwise the structured teardown error
  /// (e.g. the CSV reader's malformed-row diagnosis). Part of the golden
  /// trace — error *behavior* is pinned too.
  Status terminal;
  size_t rows_ingested = 0;
  size_t windows_scored = 0;
  size_t alarms = 0;
  size_t refreshes = 0;
  /// Robustness counters, from PipelineStats (all zero — and absent from
  /// the text form — on a fail-fast, fault-free run).
  size_t rows_quarantined = 0;
  size_t windows_quarantined = 0;
  size_t retries = 0;
  size_t faults_injected = 0;
  /// Ingest/window-stage quarantine records: they happen on their own
  /// threads, so they are printed as a block after the events rather
  /// than interleaved (each stage's ordering is still deterministic).
  std::vector<stream::QuarantineRecord> stage_quarantine;

  /// Canonical text form (golden-file format, one event per line).
  /// Bitwise scores; NaN canonicalized. Two runs are "identical" iff
  /// their ToString outputs are byte-equal.
  std::string ToString() const;
};

/// Renders (spec, seed) and serves the stream through StreamPipeline /
/// StreamMonitor with `num_threads` scoring lanes. Returns the trace;
/// pipeline teardown errors land in trace.terminal, while errors that
/// mean the spec itself is unusable (unknown generator, bad monitor
/// geometry) are returned as statuses.
StatusOr<ScenarioTrace> RunScenario(const ScenarioSpec& spec, uint64_t seed,
                                    size_t num_threads = 1);

/// Same scenario, scored by a baseline detector (fit on the reference,
/// windows scored serially against AlarmSeries semantics: alarm iff
/// score > spec.alarm_threshold, NaN never alarms). Refresh events do
/// not occur (baselines have no refresh loop).
StatusOr<ScenarioTrace> RunBaseline(const ScenarioSpec& spec, uint64_t seed,
                                    baselines::DriftDetector* detector);

/// Byte-equality of the canonical text forms.
bool TracesIdentical(const ScenarioTrace& a, const ScenarioTrace& b);

}  // namespace ccs::scenario

#endif  // CCS_SCENARIO_RUNNER_H_
