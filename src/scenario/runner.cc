#include "scenario/runner.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "dataframe/csv.h"
#include "stream/pipeline.h"
#include "obs/trace.h"
#include "stream/windower.h"

namespace ccs::scenario {

using dataframe::DataFrame;

namespace {

// Raw IEEE-754 bits, NaN canonicalized to one quiet-NaN pattern: NaN
// *payloads* are not stable across separate compilations of FP kernels
// (observed on GCC — docs/architecture.md), but NaN-ness is.
std::string ScoreBits(double score) {
  double canonical =
      std::isnan(score) ? std::numeric_limits<double>::quiet_NaN() : score;
  uint64_t bits = 0;
  std::memcpy(&bits, &canonical, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

std::string ScoreHuman(double score) {
  if (std::isnan(score)) return "nan";
  return FormatDouble(score);
}

bool AlarmAt(double score, double threshold) {
  // Strict >, and NaN never alarms — the AlarmSeries contract
  // (baselines/drift_detector.h).
  return score > threshold;
}

}  // namespace

std::string ScenarioTrace::ToString() const {
  std::string out = "gauntlet-trace v1\n";
  out += "scenario=" + scenario + " detector=" + detector +
         " seed=" + std::to_string(seed) + "\n";
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kRefresh) {
      out += "refresh windows=" + std::to_string(e.window_index) + "\n";
      continue;
    }
    out += "window " + std::to_string(e.window_index) +
           " score=" + ScoreBits(e.score) + " (" + ScoreHuman(e.score) +
           ") alarm=" + (e.alarm ? "1" : "0") + "\n";
  }
  out += "end status=" + terminal.ToString() +
         " rows=" + std::to_string(rows_ingested) +
         " windows=" + std::to_string(windows_scored) +
         " alarms=" + std::to_string(alarms) +
         " refreshes=" + std::to_string(refreshes) + "\n";
  return out;
}

StatusOr<ScenarioTrace> RunScenario(const ScenarioSpec& spec, uint64_t seed,
                                    size_t num_threads) {
  // spec.name outlives the scope; the span copies it at close.
  obs::ObsSpan span(spec.name.c_str(), "scenario");
  CCS_ASSIGN_OR_RETURN(RenderedScenario rendered, Render(spec, seed));

  ScenarioTrace trace;
  trace.scenario = spec.name;
  trace.detector = "ccsynth";
  trace.seed = seed;

  stream::StreamPipelineOptions options;
  options.window_rows = spec.window_rows;
  options.slide_rows = spec.slide_rows;
  options.alarm_threshold = spec.alarm_threshold;
  options.refresh_every = spec.refresh_every;
  options.num_threads = num_threads;
  options.chunk_rows = spec.chunk_rows;
  // Both callbacks run on the calling thread, in commit order.
  options.on_refresh = [&trace](size_t windows_scored) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kRefresh;
    e.window_index = windows_scored;
    trace.events.push_back(e);
    ++trace.refreshes;
  };

  CCS_ASSIGN_OR_RETURN(
      stream::StreamPipeline pipeline,
      stream::StreamPipeline::Create(rendered.reference, options));

  std::istringstream in(rendered.stream.ToCsv());
  StatusOr<stream::PipelineStats> stats =
      pipeline.Run(in, [&trace](const core::WindowScore& score) {
        TraceEvent e;
        e.kind = TraceEvent::Kind::kWindow;
        e.window_index = score.window_index;
        e.score = score.drift;
        e.alarm = score.alarm;
        trace.events.push_back(e);
        ++trace.windows_scored;
        if (score.alarm) ++trace.alarms;
      });
  if (stats.ok()) {
    trace.rows_ingested = stats->rows_ingested;
  } else {
    // Teardown error: the windows committed before it are part of the
    // trace; row counts are not reported (they depend on where ingest
    // stopped relative to the failure, which IS deterministic, but the
    // stats snapshot is not returned on error).
    trace.terminal = stats.status();
  }
  return trace;
}

StatusOr<ScenarioTrace> RunBaseline(const ScenarioSpec& spec, uint64_t seed,
                                    baselines::DriftDetector* detector) {
  CCS_ASSIGN_OR_RETURN(RenderedScenario rendered, Render(spec, seed));
  CCS_RETURN_IF_ERROR(detector->Fit(rendered.reference));

  ScenarioTrace trace;
  trace.scenario = spec.name;
  trace.detector = detector->name();
  trace.seed = seed;

  // Serial equivalent of the pipeline's ingest -> window loop (same
  // CsvChunkReader + Windower, so malformed streams tear down with the
  // identical structured error).
  std::istringstream in(rendered.stream.ToCsv());
  dataframe::CsvChunkReader reader(&in, rendered.reference.schema());
  CCS_ASSIGN_OR_RETURN(
      stream::Windower windower,
      stream::Windower::Create(spec.window_rows, spec.slide_rows));
  const size_t chunk_rows = spec.chunk_rows == 0 ? 1 : spec.chunk_rows;
  for (;;) {
    StatusOr<DataFrame> chunk = reader.ReadChunk(chunk_rows);
    if (!chunk.ok()) {
      trace.terminal = chunk.status();
      break;
    }
    if (chunk->num_rows() == 0) break;  // End of stream.
    trace.rows_ingested += chunk->num_rows();
    StatusOr<std::vector<DataFrame>> windows = windower.Push(*chunk);
    if (!windows.ok()) {
      trace.terminal = windows.status();
      break;
    }
    for (const DataFrame& window : *windows) {
      StatusOr<double> score = detector->Score(window);
      if (!score.ok()) {
        trace.terminal = score.status();
        return trace;
      }
      TraceEvent e;
      e.kind = TraceEvent::Kind::kWindow;
      e.window_index = trace.windows_scored;
      e.score = *score;
      e.alarm = AlarmAt(*score, spec.alarm_threshold);
      trace.events.push_back(e);
      ++trace.windows_scored;
      if (e.alarm) ++trace.alarms;
    }
  }
  return trace;
}

bool TracesIdentical(const ScenarioTrace& a, const ScenarioTrace& b) {
  return a.ToString() == b.ToString();
}

}  // namespace ccs::scenario
