#include "scenario/runner.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <utility>

#include "common/fault.h"
#include "common/string_util.h"
#include "dataframe/csv.h"
#include "stream/pipeline.h"
#include "obs/trace.h"
#include "stream/windower.h"

namespace ccs::scenario {

using dataframe::DataFrame;

namespace {

// Raw IEEE-754 bits, NaN canonicalized to one quiet-NaN pattern: NaN
// *payloads* are not stable across separate compilations of FP kernels
// (observed on GCC — docs/architecture.md), but NaN-ness is.
std::string ScoreBits(double score) {
  double canonical =
      std::isnan(score) ? std::numeric_limits<double>::quiet_NaN() : score;
  uint64_t bits = 0;
  std::memcpy(&bits, &canonical, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

std::string ScoreHuman(double score) {
  if (std::isnan(score)) return "nan";
  return FormatDouble(score);
}

bool AlarmAt(double score, double threshold) {
  // Strict >, and NaN never alarms — the AlarmSeries contract
  // (baselines/drift_detector.h).
  return score > threshold;
}

// Injector seed for a run: a fixed mix of the master seed, disjoint
// from the render streams (scenario.cc mixes streams 0, 1, 2+i off the
// same master; fault.cc re-mixes per point, so a plain XOR suffices
// here). Fixed forever — fault-scenario goldens depend on it.
uint64_t FaultSeed(uint64_t seed) { return seed ^ 0x9E3779B97F4A7C15ull; }

// Disarms the global fault injector when the run leaves scope, error
// paths included — a leaked armed spec would inject into the next run.
class ArmedFaultsGuard {
 public:
  explicit ArmedFaultsGuard(bool armed) : armed_(armed) {}
  ~ArmedFaultsGuard() {
    if (armed_) common::fault::Injector::Global().Disarm();
  }
  ArmedFaultsGuard(const ArmedFaultsGuard&) = delete;
  ArmedFaultsGuard& operator=(const ArmedFaultsGuard&) = delete;

 private:
  bool armed_;
};

std::string QuarantineLine(const std::string& stage, size_t index,
                           size_t rows_lost, StatusCode reason) {
  return "quarantine stage=" + stage + " index=" + std::to_string(index) +
         " rows=" + std::to_string(rows_lost) +
         " reason=" + StatusCodeToString(reason) + "\n";
}

}  // namespace

std::string ScenarioTrace::ToString() const {
  std::string out = "gauntlet-trace v1\n";
  out += "scenario=" + scenario + " detector=" + detector +
         " seed=" + std::to_string(seed) + "\n";
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kRefresh) {
      out += "refresh windows=" + std::to_string(e.window_index) + "\n";
      continue;
    }
    if (e.kind == TraceEvent::Kind::kQuarantine) {
      out += QuarantineLine(e.stage, e.window_index, e.rows_lost, e.reason);
      continue;
    }
    out += "window " + std::to_string(e.window_index) +
           " score=" + ScoreBits(e.score) + " (" + ScoreHuman(e.score) +
           ") alarm=" + (e.alarm ? "1" : "0") + "\n";
  }
  for (const stream::QuarantineRecord& q : stage_quarantine) {
    out += QuarantineLine(q.stage, q.index, q.rows_lost, q.reason.code());
  }
  // Only degraded runs carry the summary line, so fault-free traces stay
  // byte-identical to the pre-robustness format.
  if (rows_quarantined != 0 || windows_quarantined != 0 || retries != 0 ||
      faults_injected != 0) {
    out += "degraded rows_quarantined=" + std::to_string(rows_quarantined) +
           " windows_quarantined=" + std::to_string(windows_quarantined) +
           " retries=" + std::to_string(retries) +
           " faults_injected=" + std::to_string(faults_injected) + "\n";
  }
  out += "end status=" + terminal.ToString() +
         " rows=" + std::to_string(rows_ingested) +
         " windows=" + std::to_string(windows_scored) +
         " alarms=" + std::to_string(alarms) +
         " refreshes=" + std::to_string(refreshes) + "\n";
  return out;
}

StatusOr<ScenarioTrace> RunScenario(const ScenarioSpec& spec, uint64_t seed,
                                    size_t num_threads) {
  // spec.name outlives the scope; the span copies it at close.
  obs::ObsSpan span(spec.name.c_str(), "scenario");
  CCS_ASSIGN_OR_RETURN(RenderedScenario rendered, Render(spec, seed));

  ScenarioTrace trace;
  trace.scenario = spec.name;
  trace.detector = "ccsynth";
  trace.seed = seed;

  stream::StreamPipelineOptions options;
  options.window_rows = spec.window_rows;
  options.slide_rows = spec.slide_rows;
  options.alarm_threshold = spec.alarm_threshold;
  options.refresh_every = spec.refresh_every;
  options.num_threads = num_threads;
  options.chunk_rows = spec.chunk_rows;
  // A policy string that does not parse means the spec itself is
  // unusable — a harness error, not trace behavior.
  if (!spec.ingest_policy.empty()) {
    CCS_ASSIGN_OR_RETURN(options.ingest_policy,
                         stream::FailurePolicy::Parse(spec.ingest_policy));
  }
  if (!spec.window_policy.empty()) {
    CCS_ASSIGN_OR_RETURN(options.window_policy,
                         stream::FailurePolicy::Parse(spec.window_policy));
  }
  if (!spec.score_policy.empty()) {
    CCS_ASSIGN_OR_RETURN(options.score_policy,
                         stream::FailurePolicy::Parse(spec.score_policy));
  }
  // All three callbacks run on the calling thread, in commit order.
  options.on_refresh = [&trace](size_t windows_scored) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kRefresh;
    e.window_index = windows_scored;
    trace.events.push_back(e);
    ++trace.refreshes;
  };
  options.on_quarantine = [&trace](const stream::QuarantineRecord& record) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kQuarantine;
    e.window_index = record.index;
    e.stage = record.stage;
    e.rows_lost = record.rows_lost;
    e.reason = record.reason.code();
    trace.events.push_back(e);
  };

  CCS_ASSIGN_OR_RETURN(
      stream::StreamPipeline pipeline,
      stream::StreamPipeline::Create(rendered.reference, options));

  if (!spec.faults.empty()) {
    common::fault::FaultSpec fault_spec;
    fault_spec.seed = FaultSeed(seed);
    fault_spec.points = spec.faults;
    CCS_RETURN_IF_ERROR(
        common::fault::Injector::Global().Arm(std::move(fault_spec)));
  }
  ArmedFaultsGuard fault_guard(!spec.faults.empty());

  std::istringstream in(rendered.stream.ToCsv());
  stream::PipelineRunResult result =
      pipeline.Run(in, [&trace](const core::WindowScore& score) {
        TraceEvent e;
        e.kind = TraceEvent::Kind::kWindow;
        e.window_index = score.window_index;
        e.score = score.drift;
        e.alarm = score.alarm;
        trace.events.push_back(e);
        ++trace.windows_scored;
        if (score.alarm) ++trace.alarms;
      });
  trace.rows_quarantined = result->rows_quarantined;
  trace.windows_quarantined = result->windows_quarantined;
  trace.retries = result->retries;
  trace.faults_injected = result->faults_injected;
  for (const stream::QuarantineRecord& record : result->quarantine) {
    if (record.stage == "ingest" || record.stage == "window") {
      trace.stage_quarantine.push_back(record);
    }
  }
  if (result.ok()) {
    trace.rows_ingested = result->rows_ingested;
  } else {
    // Teardown error: the windows committed before it are part of the
    // trace. The partial stats are available now (PipelineRunResult),
    // but rows stays 0 on error terminals — existing goldens pin that —
    // and the degraded line carries the robustness counters instead.
    trace.terminal = result.status;
  }
  return trace;
}

StatusOr<ScenarioTrace> RunBaseline(const ScenarioSpec& spec, uint64_t seed,
                                    baselines::DriftDetector* detector) {
  CCS_ASSIGN_OR_RETURN(RenderedScenario rendered, Render(spec, seed));
  CCS_RETURN_IF_ERROR(detector->Fit(rendered.reference));

  ScenarioTrace trace;
  trace.scenario = spec.name;
  trace.detector = detector->name();
  trace.seed = seed;

  // Serial equivalent of the pipeline's ingest -> window loop (same
  // CsvChunkReader + Windower, so malformed streams tear down with the
  // identical structured error).
  std::istringstream in(rendered.stream.ToCsv());
  dataframe::CsvChunkReader reader(&in, rendered.reference.schema());
  CCS_ASSIGN_OR_RETURN(
      stream::Windower windower,
      stream::Windower::Create(spec.window_rows, spec.slide_rows));
  const size_t chunk_rows = spec.chunk_rows == 0 ? 1 : spec.chunk_rows;
  for (;;) {
    StatusOr<DataFrame> chunk = reader.ReadChunk(chunk_rows);
    if (!chunk.ok()) {
      trace.terminal = chunk.status();
      break;
    }
    if (chunk->num_rows() == 0) break;  // End of stream.
    trace.rows_ingested += chunk->num_rows();
    StatusOr<std::vector<DataFrame>> windows = windower.Push(*chunk);
    if (!windows.ok()) {
      trace.terminal = windows.status();
      break;
    }
    for (const DataFrame& window : *windows) {
      StatusOr<double> score = detector->Score(window);
      if (!score.ok()) {
        trace.terminal = score.status();
        return trace;
      }
      TraceEvent e;
      e.kind = TraceEvent::Kind::kWindow;
      e.window_index = trace.windows_scored;
      e.score = *score;
      e.alarm = AlarmAt(*score, spec.alarm_threshold);
      trace.events.push_back(e);
      ++trace.windows_scored;
      if (e.alarm) ++trace.alarms;
    }
  }
  return trace;
}

bool TracesIdentical(const ScenarioTrace& a, const ScenarioTrace& b) {
  return a.ToString() == b.ToString();
}

}  // namespace ccs::scenario
