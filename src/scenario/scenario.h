// Composable adversarial stream scenarios — the regression gauntlet.
//
// The synth generators (src/synth/) reproduce the paper's well-behaved
// drift shapes; production must survive inputs the paper never saw. A
// ScenarioSpec composes a base generator (trend, HAR, EVL, LED, tabular)
// with an ordered list of perturbation stages — drift schedules, schema
// evolution mid-stream, categorical cardinality blow-up, NaN/±Inf
// bursts, duplicate floods, row reordering, truncation — and renders the
// result as (reference DataFrame, CSV byte stream).
//
// Seed discipline: rendering is a pure function of (spec, seed). The
// reference, the base stream, and every stage draw from their own
// Rng derived via a fixed mix of the master seed and the stage index, so
// the rendered bytes are replayable byte-for-byte and adding a stage
// never perturbs the randomness of the ones before it. No scenario code
// touches threads; the parallelism lives in the pipeline being driven
// (see scenario/runner.h and the determinism contract in
// docs/architecture.md).

#ifndef CCS_SCENARIO_SCENARIO_H_
#define CCS_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/random.h"
#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::scenario {

/// "No row limit" sentinel for StageSpec::end_row.
inline constexpr size_t kAllRows = std::numeric_limits<size_t>::max();

/// One perturbation stage, applied to the textual row stream after the
/// base generator (and any earlier stages) ran. Stage kinds:
///
///   abrupt-drift       add `magnitude` to numeric `column` in
///                      [begin_row, end_row)
///   gradual-drift      same, ramping linearly from 0 to `magnitude`
///                      across the range
///   recurring-drift    add `magnitude` on alternating `period`-row
///                      blocks inside the range
///   add-column         rows in range carry one extra trailing field
///                      (upstream schema evolved; the header did not)
///   drop-column        rows in range lose their last field
///   cardinality-blowup categorical `column` becomes unique per row in
///                      range (unbounded dictionary growth)
///   nan-burst          `column` cells in range become "NaN" with
///                      probability `fraction` (the CSV layer rejects
///                      NaN spellings -> structured ingest teardown)
///   inf-burst          `column` cells in range become "±inf" with
///                      probability `fraction` (parsed; non-finite
///                      scores propagate deterministically)
///   garble             `column` cells in range become an unparseable
///                      token with probability `fraction`
///   duplicate-flood    rows in range all become copies of the row at
///                      begin_row
///   reorder            rows in range are shuffled (stage-seeded)
///   truncate           the stream is cut to its first begin_row rows
struct StageSpec {
  std::string kind;
  /// Target column name; kinds that need one fail the render if it is
  /// absent from the stream header.
  std::string column;
  double magnitude = 0.0;
  /// Per-row hit probability for the burst kinds.
  double fraction = 1.0;
  size_t begin_row = 0;
  size_t end_row = kAllRows;
  size_t period = 0;
};

/// A full scenario: base generator, stream geometry, monitor geometry,
/// and the perturbation stages. Rendering and running are pure functions
/// of (spec, seed).
struct ScenarioSpec {
  std::string name;
  /// Base generator: "trend", "har", "cardio", "led", or "evl:<name>"
  /// (any of synth::EvlDatasetNames(), e.g. "evl:4CR").
  std::string generator = "trend";
  size_t reference_rows = 400;
  size_t stream_rows = 1200;
  /// Monitor geometry handed to StreamPipeline by the runner.
  size_t window_rows = 50;
  size_t slide_rows = 0;  ///< 0 = tumbling.
  double alarm_threshold = 0.2;
  size_t refresh_every = 0;
  size_t chunk_rows = 64;
  std::vector<StageSpec> stages;
  /// Per-stage failure policies handed to StreamPipeline by the runner,
  /// in the stream/supervisor.h string grammar ("fail-fast",
  /// "quarantine", "retry:N", "retry:N+quarantine"). Empty = fail-fast.
  std::string ingest_policy;
  std::string window_policy;
  std::string score_policy;
  /// Fault points armed for the run (common/fault.h). The injector seed
  /// is a fixed mix of the run seed, so injected faults are as
  /// replayable as the rendered stream. Error actions only in the
  /// catalogue and fuzzer; crash actions are for the CLI kill-and-resume
  /// drills.
  std::vector<common::fault::FaultPoint> faults;
};

/// The textual row stream perturbation stages operate on. Cells are CSV
/// field values (pre-quoting); rows may be ragged after schema-evolution
/// stages — that is the point.
struct RawStream {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Serializes to RFC-4180 CSV (quoting fields that need it).
  std::string ToCsv() const;
};

/// A rendered scenario: the clean reference frame the monitor learns
/// from, plus the (perturbed) serving stream as CSV bytes.
struct RenderedScenario {
  dataframe::DataFrame reference;
  RawStream stream;
};

/// Renders `spec` deterministically: equal (spec, seed) pairs yield
/// byte-identical streams and bitwise-identical references.
/// InvalidArgument on unknown generators/kinds or a missing stage
/// column.
StatusOr<RenderedScenario> Render(const ScenarioSpec& spec, uint64_t seed);

/// Names of the built-in catalogue, in a fixed order. Covers drift
/// (abrupt/gradual/recurring), schema evolution, cardinality blow-up,
/// NaN/Inf bursts, duplicates, reordering, short/empty streams, and the
/// paper-workload generators (HAR, EVL, LED, cardio).
const std::vector<std::string>& CatalogueNames();

/// The catalogue spec for `name`; NotFound otherwise. `scale` multiplies
/// every row count and row boundary (window geometry included) so
/// benches can run the same shapes at larger sizes.
StatusOr<ScenarioSpec> CatalogueSpec(const std::string& name,
                                     size_t scale = 1);

/// Draws a random-but-valid spec (generator, geometry, stages) from
/// `rng` — the fuzzing harness' composer. The result renders and runs
/// on any seed.
ScenarioSpec RandomSpec(Rng* rng);

/// Parses a scenario spec from its JSON form (see docs/scenarios.md).
/// Unknown keys are rejected so typos cannot silently no-op.
StatusOr<ScenarioSpec> ParseSpecJson(const std::string& text);

/// Serializes a spec to the JSON form ParseSpecJson accepts —
/// round-trips exactly, so a failing fuzz draw can be replayed from the
/// printed JSON.
std::string SpecToJson(const ScenarioSpec& spec);

}  // namespace ccs::scenario

#endif  // CCS_SCENARIO_SCENARIO_H_
