// Checkpoint/resume for the streaming pipeline.
//
// A checkpoint captures, at a committed-window boundary, everything a
// fresh process needs to continue the monitor bit-exactly:
//
//   - geometry guards (window/slide/refresh cadence, alarm threshold
//     bits) — a resume against different options is refused;
//   - progress: windows committed (the history base for window
//     indices), windows consumed from the window stream (committed +
//     score-quarantined), and the good data rows those windows
//     consumed — the resume row offset;
//   - the IncrementalSynthesizer profile: attribute names plus the raw
//     streaming Gram sum and count, every double as raw IEEE-754 bits;
//   - the adopted reference constraint (once a refresh has happened):
//     per-conjunct projection coefficients and parameters, again as
//     raw bits. Before the first refresh the profile is whatever
//     Create() learned from the reference CSV, which the resuming
//     process re-Fits deterministically — so it is not serialized.
//
// Windower state is deliberately NOT serialized: the rolling buffers
// live on the windowing thread mid-run. Instead the resume skips
// rows_consumed good data rows through the same CsvChunkReader and
// lets a fresh Windower rebuild the in-flight tail — deterministic
// because parsing is, and cheap because skipping parses but never
// scores. The resumed alarm trace is bitwise identical to an
// uninterrupted run from the checkpoint boundary on (the determinism
// contract extended to recovery; see docs/robustness.md and
// tests/checkpoint_test.cc).
//
// The format is versioned line-oriented text with hex-encoded doubles
// ("%016llx" raw bits, the golden-trace idiom) so state survives
// serialization exactly — FormatDouble-style shortest-decimal text
// would only be bit-close.

#ifndef CCS_STREAM_CHECKPOINT_H_
#define CCS_STREAM_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/constraint.h"
#include "linalg/matrix.h"

namespace ccs::stream {

/// The serializable snapshot of a StreamPipeline at a committed-window
/// boundary.
struct CheckpointData {
  // Geometry guards.
  size_t window_rows = 0;
  size_t slide_rows = 0;  ///< 0 = tumbling, as in StreamPipelineOptions.
  size_t refresh_every = 0;
  uint64_t threshold_bits = 0;  ///< Alarm threshold, raw IEEE-754 bits.

  // Progress.
  size_t windows_committed = 0;  ///< Scores in the history (resume base).
  size_t windows_consumed = 0;   ///< Committed + score-quarantined.
  size_t rows_consumed = 0;      ///< Good data rows feeding those windows.
  size_t refreshes = 0;          ///< Reference refreshes so far.

  // Streaming profile (IncrementalSynthesizer state).
  std::vector<std::string> attribute_names;
  int64_t gram_count = 0;
  linalg::Matrix gram_sum;  ///< (m+1) x (m+1) raw sum.

  // Adopted reference constraint; present iff refreshes > 0.
  bool has_profile = false;
  core::SimpleConstraint profile;
};

/// Canonical text form (see the header comment for the layout).
std::string SerializeCheckpoint(const CheckpointData& data);

/// Parses SerializeCheckpoint's output. InvalidArgument on version or
/// structural mismatch — a truncated or hand-edited checkpoint must not
/// resume silently wrong.
StatusOr<CheckpointData> ParseCheckpoint(const std::string& text);

/// Writes atomically: serialize to `path`.tmp, then rename over `path`,
/// so a crash mid-write leaves the previous checkpoint intact.
Status WriteCheckpointFile(const CheckpointData& data,
                           const std::string& path);

/// Reads and parses `path`. NotFound when the file does not exist (the
/// "first run, nothing to resume" case callers treat as a fresh start).
StatusOr<CheckpointData> ReadCheckpointFile(const std::string& path);

}  // namespace ccs::stream

#endif  // CCS_STREAM_CHECKPOINT_H_
