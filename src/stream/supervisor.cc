#include "stream/supervisor.h"

#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace ccs::stream {

StatusOr<FailurePolicy> FailurePolicy::Parse(const std::string& text) {
  FailurePolicy policy;
  if (text.empty() || text == "fail-fast") return policy;
  if (text == "quarantine") {
    policy.mode = FailureMode::kQuarantine;
    return policy;
  }
  if (StartsWith(text, "retry:")) {
    std::string rest = text.substr(6);
    std::string count = rest;
    const std::string suffix = "+quarantine";
    if (rest.size() > suffix.size() &&
        rest.compare(rest.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      policy.mode = FailureMode::kQuarantine;
      count = rest.substr(0, rest.size() - suffix.size());
    }
    std::optional<int64_t> n = ParseInt(count);
    if (n.has_value() && *n >= 1) {
      policy.max_retries = static_cast<size_t>(*n);
      return policy;
    }
  }
  return Status::InvalidArgument(
      "failure policy '" + text +
      "': expected fail-fast | quarantine | retry:N | retry:N+quarantine");
}

std::string FailurePolicy::ToString() const {
  if (max_retries == 0) {
    return mode == FailureMode::kQuarantine ? "quarantine" : "fail-fast";
  }
  std::string out = "retry:" + std::to_string(max_retries);
  if (mode == FailureMode::kQuarantine) out += "+quarantine";
  return out;
}

namespace {

// Sleeps base_ms * 2^attempt in 1ms slices, bailing as soon as `cancel`
// is raised. The slice loop reads no clock (sleep_for takes a duration,
// not a deadline), keeping the wall-clock lint rule honest: timing here
// can stretch, never observe.
void Backoff(uint64_t base_ms, size_t attempt, const std::atomic<bool>* cancel) {
  if (base_ms == 0) return;
  uint64_t total_ms = base_ms << (attempt < 20 ? attempt : 20);
  for (uint64_t slept = 0; slept < total_ms; ++slept) {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

SuperviseResult Supervise(const FailurePolicy& policy,
                          const std::function<Status()>& attempt,
                          const std::atomic<bool>* cancel) {
  SuperviseResult result;
  Status status = attempt();
  while (!status.ok() && status.code() == StatusCode::kUnavailable &&
         result.retries < policy.max_retries) {
    Backoff(policy.backoff_ms, result.retries, cancel);
    ++result.retries;
    status = attempt();
  }
  if (status.ok()) {
    result.action = SuperviseAction::kProceed;
    return result;
  }
  result.status = std::move(status);
  result.action = policy.mode == FailureMode::kQuarantine
                      ? SuperviseAction::kQuarantine
                      : SuperviseAction::kFail;
  return result;
}

}  // namespace ccs::stream
