// Per-stage failure policies for the supervised streaming pipeline.
//
// Fail-fast was the pipeline's only behavior before the robustness
// layer: the first stage error cancelled the run. A FailurePolicy lets
// each stage instead absorb a failure (quarantine-and-continue) or
// re-attempt a transient one (bounded retry with deterministic
// exponential backoff), so one malformed chunk or injected fault no
// longer kills a monitor that should degrade gracefully.
//
// Retry semantics: only StatusCode::kUnavailable is re-attempted — it
// marks failures whose retry can succeed (injected transients, flaky
// IO). A parse error is never retried: the CsvChunkReader has already
// consumed the malformed record, so "retrying" would silently skip
// data; such errors go straight to the policy's terminal decision
// (quarantine or fail). Backoff sleeps base_ms * 2^attempt wall-clock
// milliseconds but reads no clock, so it cannot perturb determinism —
// the supervised outcome sequence is a pure function of the stream and
// the armed fault spec at any thread count.

#ifndef CCS_STREAM_SUPERVISOR_H_
#define CCS_STREAM_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/statusor.h"

namespace ccs::stream {

/// What a stage does with a failure that survives its retry budget.
enum class FailureMode {
  /// Propagate the error and cancel the run (the pre-robustness
  /// behavior, and the default).
  kFailFast,
  /// Record the failed unit (row, chunk, or window) in the quarantine
  /// channel and keep serving.
  kQuarantine,
};

/// One pipeline stage's failure policy.
struct FailurePolicy {
  FailureMode mode = FailureMode::kFailFast;
  /// Re-attempts for transient (kUnavailable) failures, on top of the
  /// first attempt.
  size_t max_retries = 0;
  /// Base of the deterministic exponential backoff between retries:
  /// attempt k sleeps backoff_ms * 2^k milliseconds (0 = no sleep).
  uint64_t backoff_ms = 0;

  /// Parses the CLI / scenario-spec string form:
  ///   "fail-fast"          | "quarantine"
  ///   "retry:N"            retry N times, then fail fast
  ///   "retry:N+quarantine" retry N times, then quarantine
  /// InvalidArgument on anything else.
  static StatusOr<FailurePolicy> Parse(const std::string& text);

  /// The inverse of Parse (round-trips exactly).
  std::string ToString() const;
};

/// One quarantined unit of work, with its structured reason. Collected
/// into PipelineStats::quarantine and mirrored into obs::Registry
/// counters.
struct QuarantineRecord {
  /// "ingest" | "window" | "score" | "refresh".
  std::string stage;
  /// Stage-local ordinal of the failed unit: good-rows-read for ingest,
  /// chunk ordinal for window, consumed-window ordinal for score, the
  /// refresh boundary for refresh. Deterministic — each stage's ordinal
  /// advances on its own thread only.
  size_t index = 0;
  /// Data rows lost with the unit (0 when the failure consumed none,
  /// e.g. an injected fault before the read).
  size_t rows_lost = 0;
  /// The failure that sent the unit here.
  Status reason;
};

/// Outcome of one supervised operation.
enum class SuperviseAction {
  kProceed,     ///< The operation succeeded (possibly after retries).
  kQuarantine,  ///< Persistently failed; the policy absorbed it.
  kFail,        ///< Persistently failed; the policy propagates it.
};

struct SuperviseResult {
  SuperviseAction action = SuperviseAction::kProceed;
  /// The persistent failure for kQuarantine/kFail; OK for kProceed.
  Status status;
  /// Retries consumed (for the `retries` counter).
  size_t retries = 0;
};

/// Runs `attempt` under `policy`: up to 1 + max_retries attempts,
/// re-attempting only transient (kUnavailable) failures with the
/// deterministic backoff between them. `cancel`, when non-null, aborts
/// the backoff sleep early (graceful-shutdown path) — the attempt
/// outcome is unaffected, only the waiting is cut short.
SuperviseResult Supervise(const FailurePolicy& policy,
                          const std::function<Status()>& attempt,
                          const std::atomic<bool>* cancel = nullptr);

}  // namespace ccs::stream

#endif  // CCS_STREAM_SUPERVISOR_H_
