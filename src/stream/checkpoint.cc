#include "stream/checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "core/projection.h"

namespace ccs::stream {

namespace {

constexpr char kMagic[] = "ccsynth-checkpoint v1";

// Raw IEEE-754 bits as 16 hex chars — the exact-round-trip double form
// (the golden-trace idiom, scenario/runner.cc). No NaN canonicalization
// here: a checkpoint stores state bits verbatim.
std::string Hex(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

StatusOr<double> FromHex(const std::string& text) {
  if (text.size() != 16) {
    return Status::InvalidArgument("checkpoint: bad double bits '" + text +
                                   "'");
  }
  char* end = nullptr;
  uint64_t bits = std::strtoull(text.c_str(), &end, 16);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("checkpoint: bad double bits '" + text +
                                   "'");
  }
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// "key=value" fields on a space-separated line.
StatusOr<std::string> Field(const std::vector<std::string>& fields,
                            const std::string& key) {
  const std::string prefix = key + "=";
  for (const std::string& f : fields) {
    if (StartsWith(f, prefix)) return f.substr(prefix.size());
  }
  return Status::InvalidArgument("checkpoint: missing field '" + key + "'");
}

StatusOr<size_t> SizeField(const std::vector<std::string>& fields,
                           const std::string& key) {
  CCS_ASSIGN_OR_RETURN(std::string text, Field(fields, key));
  std::optional<int64_t> v = ParseInt(text);
  if (!v.has_value() || *v < 0) {
    return Status::InvalidArgument("checkpoint: bad count for '" + key + "'");
  }
  return static_cast<size_t>(*v);
}

StatusOr<double> HexField(const std::vector<std::string>& fields,
                          const std::string& key) {
  CCS_ASSIGN_OR_RETURN(std::string text, Field(fields, key));
  return FromHex(text);
}

class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  /// Next line; InvalidArgument at end (every Parse read is mandatory).
  StatusOr<std::string> Next() {
    std::string line;
    if (!std::getline(in_, line)) {
      return Status::InvalidArgument("checkpoint: truncated file");
    }
    ++line_number_;
    return line;
  }

  size_t line_number() const { return line_number_; }

 private:
  std::istringstream in_;
  size_t line_number_ = 0;
};

}  // namespace

std::string SerializeCheckpoint(const CheckpointData& data) {
  std::string out = std::string(kMagic) + "\n";
  out += "geometry window_rows=" + std::to_string(data.window_rows) +
         " slide_rows=" + std::to_string(data.slide_rows) +
         " refresh_every=" + std::to_string(data.refresh_every) +
         " threshold=";
  {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(data.threshold_bits));
    out += buf;
  }
  out += "\n";
  out += "progress windows_committed=" + std::to_string(data.windows_committed) +
         " windows_consumed=" + std::to_string(data.windows_consumed) +
         " rows_consumed=" + std::to_string(data.rows_consumed) +
         " refreshes=" + std::to_string(data.refreshes) + "\n";
  out += "attrs " + std::to_string(data.attribute_names.size()) + "\n";
  for (const std::string& name : data.attribute_names) {
    out += "attr " + name + "\n";
  }
  out += "gram count=" + std::to_string(data.gram_count) +
         " dim=" + std::to_string(data.attribute_names.size()) + "\n";
  for (size_t r = 0; r < data.gram_sum.rows(); ++r) {
    out += "gram_row";
    for (size_t c = 0; c < data.gram_sum.cols(); ++c) {
      out += " " + Hex(data.gram_sum.At(r, c));
    }
    out += "\n";
  }
  if (data.has_profile) {
    out += "profile conjuncts=" +
           std::to_string(data.profile.conjuncts().size()) + "\n";
    for (const core::BoundedConstraint& bc : data.profile.conjuncts()) {
      out += "conjunct coeffs=";
      const linalg::Vector& coeffs = bc.projection().coefficients();
      for (size_t i = 0; i < coeffs.size(); ++i) {
        if (i > 0) out += ",";
        out += Hex(coeffs[i]);
      }
      out += " lb=" + Hex(bc.lb()) + " ub=" + Hex(bc.ub()) +
             " mean=" + Hex(bc.mean()) + " stddev=" + Hex(bc.stddev()) +
             " importance=" + Hex(bc.importance()) + "\n";
    }
  }
  out += "end\n";
  return out;
}

StatusOr<CheckpointData> ParseCheckpoint(const std::string& text) {
  CheckpointData data;
  LineReader reader(text);
  CCS_ASSIGN_OR_RETURN(std::string line, reader.Next());
  if (line != kMagic) {
    return Status::InvalidArgument(
        "checkpoint: bad magic (expected '" + std::string(kMagic) + "')");
  }

  CCS_ASSIGN_OR_RETURN(line, reader.Next());
  {
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.empty() || fields[0] != "geometry") {
      return Status::InvalidArgument("checkpoint: expected geometry line");
    }
    CCS_ASSIGN_OR_RETURN(data.window_rows, SizeField(fields, "window_rows"));
    CCS_ASSIGN_OR_RETURN(data.slide_rows, SizeField(fields, "slide_rows"));
    CCS_ASSIGN_OR_RETURN(data.refresh_every,
                         SizeField(fields, "refresh_every"));
    CCS_ASSIGN_OR_RETURN(std::string threshold, Field(fields, "threshold"));
    CCS_ASSIGN_OR_RETURN(double t, FromHex(threshold));
    std::memcpy(&data.threshold_bits, &t, sizeof(t));
  }

  CCS_ASSIGN_OR_RETURN(line, reader.Next());
  {
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.empty() || fields[0] != "progress") {
      return Status::InvalidArgument("checkpoint: expected progress line");
    }
    CCS_ASSIGN_OR_RETURN(data.windows_committed,
                         SizeField(fields, "windows_committed"));
    CCS_ASSIGN_OR_RETURN(data.windows_consumed,
                         SizeField(fields, "windows_consumed"));
    CCS_ASSIGN_OR_RETURN(data.rows_consumed,
                         SizeField(fields, "rows_consumed"));
    CCS_ASSIGN_OR_RETURN(data.refreshes, SizeField(fields, "refreshes"));
  }

  CCS_ASSIGN_OR_RETURN(line, reader.Next());
  size_t num_attrs = 0;
  {
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.size() != 2 || fields[0] != "attrs") {
      return Status::InvalidArgument("checkpoint: expected attrs line");
    }
    std::optional<int64_t> n = ParseInt(fields[1]);
    if (!n.has_value() || *n <= 0) {
      return Status::InvalidArgument("checkpoint: bad attrs count");
    }
    num_attrs = static_cast<size_t>(*n);
  }
  for (size_t i = 0; i < num_attrs; ++i) {
    CCS_ASSIGN_OR_RETURN(line, reader.Next());
    if (!StartsWith(line, "attr ")) {
      return Status::InvalidArgument("checkpoint: expected attr line");
    }
    // Rest of line: attribute names may contain spaces.
    data.attribute_names.push_back(line.substr(5));
  }

  CCS_ASSIGN_OR_RETURN(line, reader.Next());
  {
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.empty() || fields[0] != "gram") {
      return Status::InvalidArgument("checkpoint: expected gram line");
    }
    CCS_ASSIGN_OR_RETURN(std::string count_text, Field(fields, "count"));
    std::optional<int64_t> n = ParseInt(count_text);
    if (!n.has_value() || *n < 0) {
      return Status::InvalidArgument("checkpoint: bad gram count");
    }
    data.gram_count = *n;
    CCS_ASSIGN_OR_RETURN(size_t dim, SizeField(fields, "dim"));
    if (dim != num_attrs) {
      return Status::InvalidArgument(
          "checkpoint: gram dim does not match attrs");
    }
  }
  data.gram_sum = linalg::Matrix(num_attrs + 1, num_attrs + 1);
  for (size_t r = 0; r < num_attrs + 1; ++r) {
    CCS_ASSIGN_OR_RETURN(line, reader.Next());
    std::vector<std::string> fields = Split(line, ' ');
    if (fields.size() != num_attrs + 2 || fields[0] != "gram_row") {
      return Status::InvalidArgument("checkpoint: bad gram_row at line " +
                                     std::to_string(reader.line_number()));
    }
    for (size_t c = 0; c < num_attrs + 1; ++c) {
      CCS_ASSIGN_OR_RETURN(double v, FromHex(fields[c + 1]));
      data.gram_sum.At(r, c) = v;
    }
  }

  CCS_ASSIGN_OR_RETURN(line, reader.Next());
  if (StartsWith(line, "profile ")) {
    std::vector<std::string> fields = Split(line, ' ');
    CCS_ASSIGN_OR_RETURN(size_t num_conjuncts,
                         SizeField(fields, "conjuncts"));
    std::vector<core::BoundedConstraint> conjuncts;
    conjuncts.reserve(num_conjuncts);
    for (size_t i = 0; i < num_conjuncts; ++i) {
      CCS_ASSIGN_OR_RETURN(line, reader.Next());
      std::vector<std::string> cfields = Split(line, ' ');
      if (cfields.empty() || cfields[0] != "conjunct") {
        return Status::InvalidArgument("checkpoint: expected conjunct line");
      }
      CCS_ASSIGN_OR_RETURN(std::string coeff_text, Field(cfields, "coeffs"));
      std::vector<std::string> coeff_hex = Split(coeff_text, ',');
      if (coeff_hex.size() != num_attrs) {
        return Status::InvalidArgument(
            "checkpoint: conjunct arity does not match attrs");
      }
      linalg::Vector coeffs(num_attrs);
      for (size_t c = 0; c < num_attrs; ++c) {
        CCS_ASSIGN_OR_RETURN(coeffs[c], FromHex(coeff_hex[c]));
      }
      CCS_ASSIGN_OR_RETURN(double lb, HexField(cfields, "lb"));
      CCS_ASSIGN_OR_RETURN(double ub, HexField(cfields, "ub"));
      CCS_ASSIGN_OR_RETURN(double mean, HexField(cfields, "mean"));
      CCS_ASSIGN_OR_RETURN(double stddev, HexField(cfields, "stddev"));
      CCS_ASSIGN_OR_RETURN(double importance,
                           HexField(cfields, "importance"));
      CCS_ASSIGN_OR_RETURN(
          core::Projection projection,
          core::Projection::Create(data.attribute_names, std::move(coeffs)));
      // BoundedConstraint re-derives its alpha scaling from the stddev
      // bits deterministically, so round-tripped constraints stay
      // ConstraintsBitwiseEqual to the originals.
      conjuncts.emplace_back(std::move(projection), lb, ub, mean, stddev,
                             importance);
    }
    CCS_ASSIGN_OR_RETURN(
        data.profile,
        core::SimpleConstraint::Create(data.attribute_names,
                                       std::move(conjuncts)));
    data.has_profile = true;
    CCS_ASSIGN_OR_RETURN(line, reader.Next());
  }
  if (line != "end") {
    return Status::InvalidArgument("checkpoint: expected end line");
  }
  return data;
}

Status WriteCheckpointFile(const CheckpointData& data,
                           const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      return Status::IoError("checkpoint: cannot write " + tmp);
    }
    out << SerializeCheckpoint(data);
    if (!out.flush()) {
      return Status::IoError("checkpoint: write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("checkpoint: cannot rename " + tmp + " to " +
                           path);
  }
  return Status::OK();
}

StatusOr<CheckpointData> ReadCheckpointFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("checkpoint: cannot read " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseCheckpoint(buffer.str());
}

}  // namespace ccs::stream
