#include "stream/windower.h"

namespace ccs::stream {

StatusOr<Windower> Windower::Create(size_t window_rows, size_t slide_rows) {
  if (window_rows == 0) {
    return Status::InvalidArgument("Windower: window_rows must be >= 1");
  }
  if (slide_rows == 0) slide_rows = window_rows;  // Tumbling.
  if (slide_rows > window_rows) {
    return Status::InvalidArgument(
        "Windower: slide_rows must not exceed window_rows");
  }
  return Windower(window_rows, slide_rows);
}

StatusOr<std::vector<dataframe::DataFrame>> Windower::Push(
    const dataframe::DataFrame& chunk) {
  if (chunk.num_rows() > 0) {
    if (buffer_.num_rows() == 0 && buffer_.num_columns() == 0) {
      buffer_ = chunk;
    } else {
      CCS_ASSIGN_OR_RETURN(buffer_, buffer_.Concat(chunk));
    }
  }
  std::vector<dataframe::DataFrame> windows;
  while (buffer_.num_rows() >= window_rows_) {
    windows.push_back(buffer_.Slice(0, window_rows_));
    buffer_ = buffer_.Slice(slide_rows_, buffer_.num_rows());
    ++windows_emitted_;
  }
  return windows;
}

}  // namespace ccs::stream
