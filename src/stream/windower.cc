#include "stream/windower.h"

#include <algorithm>
#include <utility>

namespace ccs::stream {

using dataframe::AttributeType;
using dataframe::Column;
using dataframe::DataFrame;

StatusOr<Windower> Windower::Create(size_t window_rows, size_t slide_rows) {
  if (window_rows == 0) {
    return Status::InvalidArgument("Windower: window_rows must be >= 1");
  }
  if (slide_rows == 0) slide_rows = window_rows;  // Tumbling.
  if (slide_rows > window_rows) {
    return Status::InvalidArgument(
        "Windower: slide_rows must not exceed window_rows");
  }
  return Windower(window_rows, slide_rows);
}

Status Windower::AppendChunk(const DataFrame& chunk) {
  if (schema_.num_attributes() == 0 && buffers_.empty()) {
    schema_ = chunk.schema();
    buffers_.resize(schema_.num_attributes());
  } else if (!(chunk.schema() == schema_)) {
    return Status::InvalidArgument("Windower: chunk schema mismatch");
  }
  const size_t rows = chunk.num_rows();
  for (size_t c = 0; c < buffers_.size(); ++c) {
    const Column& col = chunk.column(c);
    ColumnBuffer& buf = buffers_[c];
    if (col.is_numeric()) {
      size_t old_capacity = buf.numeric.capacity();
      const std::vector<double>& data = col.numeric_buffer();
      if (const std::vector<size_t>* sel = col.selection()) {
        for (size_t i = 0; i < rows; ++i) {
          buf.numeric.push_back(data[(*sel)[i]]);
        }
      } else {
        buf.numeric.insert(buf.numeric.end(), data.begin(), data.end());
      }
      if (buf.numeric.capacity() != old_capacity) ++buffer_reallocs_;
    } else {
      size_t old_capacity = buf.codes.capacity();
      // Translate the chunk's dictionary codes into the rolling
      // dictionary once per *dictionary entry*; the per-row loop then
      // appends integers. With CsvChunkReader's persistent dictionaries
      // the translation is the identity after the first chunk, but any
      // chunk dictionary is accepted.
      const std::vector<std::string>& chunk_dict = col.dictionary();
      std::vector<uint32_t> translate(chunk_dict.size());
      for (uint32_t v = 0; v < chunk_dict.size(); ++v) {
        translate[v] = buf.dict.Intern(chunk_dict[v]);
      }
      for (size_t i = 0; i < rows; ++i) {
        buf.codes.push_back(translate[col.CodeAt(i)]);
      }
      if (buf.codes.capacity() != old_capacity) ++buffer_reallocs_;
    }
  }
  buffered_rows_ += rows;
  return Status::OK();
}

DataFrame Windower::EmitWindow() {
  DataFrame out;
  for (size_t c = 0; c < buffers_.size(); ++c) {
    ColumnBuffer& buf = buffers_[c];
    const std::string& name = schema_.attribute(c).name;
    if (schema_.attribute(c).type == AttributeType::kNumeric) {
      std::vector<double> values(buf.numeric.begin() + start_,
                                 buf.numeric.begin() + start_ + window_rows_);
      CCS_CHECK(out.AddNumericColumn(name, std::move(values)).ok());
    } else {
      std::vector<uint32_t> codes(buf.codes.begin() + start_,
                                  buf.codes.begin() + start_ + window_rows_);
      CCS_CHECK(out.AddColumn(name, Column::CategoricalFromCodes(
                                        std::move(codes), buf.dict.snapshot()))
                    .ok());
    }
  }
  rows_copied_out_ += window_rows_;
  return out;
}

StatusOr<std::vector<DataFrame>> Windower::Push(const DataFrame& chunk) {
  // Zero-row chunks complete nothing, but they still adopt (first chunk)
  // or validate the schema: a producer whose schema diverged must fail
  // deterministically, not only when the offending chunk happens to
  // carry rows. Only a column-less placeholder frame is ignored.
  if (chunk.num_columns() > 0) {
    CCS_RETURN_IF_ERROR(AppendChunk(chunk));
  }
  std::vector<DataFrame> windows;
  while (buffered_rows_ >= window_rows_) {
    windows.push_back(EmitWindow());
    start_ += slide_rows_;
    buffered_rows_ -= slide_rows_;
    ++windows_emitted_;
  }
  // Compact the consumed prefix once per Push (not per emit): erase
  // keeps the vector capacity, so steady-state pushes never reallocate.
  if (start_ > 0) {
    for (ColumnBuffer& buf : buffers_) {
      buf.numeric.erase(
          buf.numeric.begin(),
          buf.numeric.begin() + std::min(start_, buf.numeric.size()));
      buf.codes.erase(buf.codes.begin(),
                      buf.codes.begin() + std::min(start_, buf.codes.size()));
    }
    start_ = 0;
  }
  return windows;
}

size_t Windower::buffer_capacity_rows() const {
  size_t capacity = 0;
  for (const ColumnBuffer& buf : buffers_) {
    capacity = std::max(capacity, buf.numeric.capacity());
    capacity = std::max(capacity, buf.codes.capacity());
  }
  return capacity;
}

}  // namespace ccs::stream
