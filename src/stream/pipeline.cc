#include "stream/pipeline.h"

#include <thread>
#include <utility>

#include "common/bounded_queue.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ccs::stream {

using common::BoundedQueue;
using common::MutexLock;
using core::WindowScore;
using dataframe::DataFrame;

namespace {

// Cross-thread result slot for one pipeline stage. The stage thread
// publishes its outcome under the mutex as it exits; the driving thread
// reads it back (under the same mutex) after joining the stage. The
// join alone would order the accesses, but the explicit lock keeps the
// hand-off visible to the thread-safety analysis — and correct if a
// future scheduler ever polls a stage before it finishes.
struct StageResult {
  common::Mutex mu;
  Status status CCS_GUARDED_BY(mu);
  // Stage-specific counters (rows ingested; windower telemetry).
  size_t rows CCS_GUARDED_BY(mu) = 0;
  size_t rows_copied CCS_GUARDED_BY(mu) = 0;
  size_t buffer_reallocs CCS_GUARDED_BY(mu) = 0;
  size_t buffer_capacity CCS_GUARDED_BY(mu) = 0;
};

}  // namespace

StatusOr<StreamPipeline> StreamPipeline::Create(const DataFrame& reference,
                                                StreamPipelineOptions options) {
  if (options.window_rows == 0) {
    return Status::InvalidArgument("StreamPipeline: window_rows must be >= 1");
  }
  if (options.slide_rows > options.window_rows) {
    return Status::InvalidArgument(
        "StreamPipeline: slide_rows must not exceed window_rows");
  }
  if (options.chunk_rows == 0) options.chunk_rows = 1;
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.max_batch_windows == 0) options.max_batch_windows = 1;

  CCS_ASSIGN_OR_RETURN(
      core::StreamMonitor monitor,
      core::StreamMonitor::Create(reference, options.alarm_threshold,
                                  options.synthesis));
  std::vector<std::string> numeric_names = reference.NumericNames();
  if (numeric_names.empty()) {
    return Status::InvalidArgument(
        "StreamPipeline: reference has no numeric attributes");
  }
  core::IncrementalSynthesizer profile(numeric_names, options.synthesis);
  if (options.refresh_every > 0) {
    // Seed the streaming Gram state with the reference, so the first
    // refresh profiles reference + everything scored so far.
    CCS_RETURN_IF_ERROR(profile.ObserveAll(reference));
  }
  return StreamPipeline(std::move(monitor), std::move(profile),
                        reference.schema(), options);
}

Status StreamPipeline::CommitBatch(
    std::vector<DataFrame> batch,
    const std::function<void(const WindowScore&)>& on_score,
    PipelineStats* stats) {
  obs::ObsSpan commit_span("stream.commit", "stream");
  std::vector<WindowScore> scores;
  {
    obs::ObsSpan score_span("stream.score", "stream");
    CCS_ASSIGN_OR_RETURN(scores,
                         monitor_.ObserveWindows(batch, options_.num_threads));
  }
  for (const WindowScore& score : scores) {
    ++stats->windows_scored;
    if (score.alarm) ++stats->alarms;
    if (on_score) on_score(score);
  }
  if (options_.refresh_every == 0) return Status::OK();
  // Fold the scored rows into the streaming Gram state in window order
  // (deterministic: the fold order and the refresh index depend only on
  // the stream, never on thread scheduling). With sliding windows the
  // overlap is re-observed, weighting recent rows — acceptable for a
  // drift profile and documented in docs/streaming.md.
  for (const DataFrame& window : batch) {
    CCS_RETURN_IF_ERROR(profile_.ObserveAll(window));
  }
  // Cadence counts the monitor's whole history, not this Run's windows,
  // so a stream served in segments refreshes at the same absolute window
  // indices as the same stream served in one Run.
  if (monitor_.history_size() % options_.refresh_every == 0) {
    obs::ObsSpan refresh_span("stream.refresh", "stream");
    CCS_ASSIGN_OR_RETURN(core::SimpleConstraint refreshed,
                         profile_.Synthesize());
    CCS_RETURN_IF_ERROR(monitor_.RefreshReference(refreshed));
    ++stats->refreshes;
    if (options_.on_refresh) options_.on_refresh(monitor_.history_size());
  }
  return Status::OK();
}

StatusOr<PipelineStats> StreamPipeline::Run(
    std::istream& in,
    const std::function<void(const WindowScore&)>& on_score,
    const dataframe::CsvOptions& csv_options) {
  PipelineStats stats;
  const uint64_t start_ns = obs::NowNanos();
  obs::ObsSpan run_span("stream.run", "stream");

  obs::Registry& registry = obs::Registry::Global();
  BoundedQueue<DataFrame> chunk_queue(
      options_.queue_capacity,
      {registry.GetHistogram("stream.chunk_queue.push_wait_us"),
       registry.GetHistogram("stream.chunk_queue.pop_wait_us")});
  BoundedQueue<DataFrame> window_queue(
      options_.queue_capacity,
      {registry.GetHistogram("stream.window_queue.push_wait_us"),
       registry.GetHistogram("stream.window_queue.pop_wait_us")});

  // ---- Stage 1: ingest. Parses schema-shaped chunks until EOF; each
  // Push blocks while the windowing stage is behind (backpressure).
  // The ccs-lint thread-spawn rule normally routes work through the
  // common/parallel pool; these two spawns ARE the pipeline's stage
  // structure (long-lived, one per stage, joined before Run returns),
  // which a bounded task pool cannot express without risking
  // pool-exhaustion deadlock between blocking stages.
  StageResult ingest_result;
  // ccs-lint: allow(thread-spawn): dedicated stage thread, joined below; pool tasks must not block on queues
  std::thread ingest([&] {
    Status status;
    size_t rows_ingested = 0;
    dataframe::CsvChunkReader reader(&in, schema_, csv_options);
    for (;;) {
      StatusOr<DataFrame> chunk = [&] {
        obs::ObsSpan ingest_span("stream.ingest", "stream");
        return reader.ReadChunk(options_.chunk_rows);
      }();
      if (!chunk.ok()) {
        status = std::move(chunk).status();
        break;
      }
      if (chunk->num_rows() == 0) break;  // End of stream.
      rows_ingested += chunk->num_rows();
      if (!chunk_queue.Push(std::move(*chunk))) break;  // Cancelled.
    }
    chunk_queue.Close();
    MutexLock lock(&ingest_result.mu);
    ingest_result.status = std::move(status);
    ingest_result.rows = rows_ingested;
  });

  // ---- Stage 2: windowing. Reassembles chunks into windows; emits in
  // stream order into the (bounded) window queue.
  StageResult window_result;
  // ccs-lint: allow(thread-spawn): dedicated stage thread, joined below; pool tasks must not block on queues
  std::thread windowing([&] {
    Status status;
    StatusOr<Windower> windower =
        Windower::Create(options_.window_rows, options_.slide_rows);
    if (!windower.ok()) {
      status = windower.status();
    } else {
      while (std::optional<DataFrame> chunk = chunk_queue.Pop()) {
        StatusOr<std::vector<DataFrame>> windows = [&] {
          obs::ObsSpan window_span("stream.window", "stream");
          return windower->Push(*chunk);
        }();
        if (!windows.ok()) {
          status = std::move(windows).status();
          break;
        }
        for (DataFrame& w : *windows) {
          if (!window_queue.Push(std::move(w))) {
            status = Status::OK();  // Cancelled downstream; not an error.
            goto done;
          }
        }
      }
    }
  done:
    // On error, also unblock the ingest stage (its Push would otherwise
    // wait forever on a full chunk queue).
    chunk_queue.Close();
    window_queue.Close();
    MutexLock lock(&window_result.mu);
    window_result.status = std::move(status);
    if (windower.ok()) {
      window_result.rows_copied = windower->rows_copied_out();
      window_result.buffer_reallocs = windower->buffer_reallocs();
      window_result.buffer_capacity = windower->buffer_capacity_rows();
    }
  });

  // ---- Stage 3: scoring + ordered commit on the calling thread. Drains
  // every ready window (never blocking past the first), capped at the
  // batch limit and at the next refresh boundary, then scores the batch
  // over the pool and commits in arrival order.
  Status commit_status;
  while (std::optional<DataFrame> first = window_queue.Pop()) {
    std::vector<DataFrame> batch;
    batch.push_back(std::move(*first));
    size_t cap = options_.max_batch_windows;
    if (options_.refresh_every > 0) {
      // Never score past a refresh boundary: windows after it must see
      // the refreshed profile.
      size_t until_refresh =
          options_.refresh_every -
          monitor_.history_size() % options_.refresh_every;
      if (until_refresh < cap) cap = until_refresh;
    }
    while (batch.size() < cap) {
      std::optional<DataFrame> next = window_queue.TryPop();
      if (!next) break;
      batch.push_back(std::move(*next));
    }
    commit_status = CommitBatch(std::move(batch), on_score, &stats);
    if (!commit_status.ok()) {
      // Cancel upstream: producers' blocked Push calls return false.
      chunk_queue.Close();
      window_queue.Close();
      break;
    }
  }

  ingest.join();
  windowing.join();

  {
    MutexLock lock(&ingest_result.mu);
    CCS_RETURN_IF_ERROR(ingest_result.status);
    stats.rows_ingested = ingest_result.rows;
  }
  {
    MutexLock lock(&window_result.mu);
    CCS_RETURN_IF_ERROR(window_result.status);
    stats.window_rows_copied = window_result.rows_copied;
    stats.window_buffer_reallocs = window_result.buffer_reallocs;
    stats.window_buffer_capacity_rows = window_result.buffer_capacity;
  }
  CCS_RETURN_IF_ERROR(commit_status);

  stats.chunk_queue_peak = chunk_queue.peak_depth();
  stats.window_queue_peak = window_queue.peak_depth();
  stats.elapsed_seconds =
      static_cast<double>(obs::NowNanos() - start_ns) * 1e-9;
  // SafeRate reports 0 (never inf/nan) on tiny or empty streams where
  // elapsed time is degenerate.
  stats.rows_per_second = obs::SafeRate(
      static_cast<double>(stats.rows_ingested), stats.elapsed_seconds);

  // Mirror the returned stats into the process-wide registry from the
  // very same values, so `--stats` and `--metrics-json` cannot disagree.
  registry.GetCounter("stream.rows_ingested")->Add(stats.rows_ingested);
  registry.GetCounter("stream.windows_scored")->Add(stats.windows_scored);
  registry.GetCounter("stream.alarms")->Add(stats.alarms);
  registry.GetCounter("stream.refreshes")->Add(stats.refreshes);
  registry.GetCounter("stream.window.rows_copied")
      ->Add(stats.window_rows_copied);
  registry.GetCounter("stream.window.buffer_reallocs")
      ->Add(stats.window_buffer_reallocs);
  registry.GetGauge("stream.chunk_queue.peak")
      ->UpdateMax(static_cast<int64_t>(stats.chunk_queue_peak));
  registry.GetGauge("stream.window_queue.peak")
      ->UpdateMax(static_cast<int64_t>(stats.window_queue_peak));
  registry.GetGauge("stream.window.buffer_capacity_rows")
      ->UpdateMax(static_cast<int64_t>(stats.window_buffer_capacity_rows));
  return stats;
}

}  // namespace ccs::stream
