#include "stream/pipeline.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <thread>
#include <utility>

#include "common/bounded_queue.h"
#include "common/fault.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ccs::stream {

using common::BoundedQueue;
using common::MutexLock;
using core::WindowScore;
using dataframe::DataFrame;

namespace {

// Cross-thread result slot for one pipeline stage. The stage thread
// publishes its outcome under the mutex as it exits; the driving thread
// reads it back (under the same mutex) after joining the stage. The
// join alone would order the accesses, but the explicit lock keeps the
// hand-off visible to the thread-safety analysis — and correct if a
// future scheduler ever polls a stage before it finishes.
struct StageResult {
  common::Mutex mu;
  Status status CCS_GUARDED_BY(mu);
  // Stage-specific counters (rows ingested; windower telemetry).
  size_t rows CCS_GUARDED_BY(mu) = 0;
  size_t retries CCS_GUARDED_BY(mu) = 0;
  bool stopped CCS_GUARDED_BY(mu) = false;
  std::vector<QuarantineRecord> quarantined CCS_GUARDED_BY(mu);
  size_t rows_copied CCS_GUARDED_BY(mu) = 0;
  size_t buffer_reallocs CCS_GUARDED_BY(mu) = 0;
  size_t buffer_capacity CCS_GUARDED_BY(mu) = 0;
};

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

StatusOr<StreamPipeline> StreamPipeline::Create(const DataFrame& reference,
                                                StreamPipelineOptions options) {
  if (options.window_rows == 0) {
    return Status::InvalidArgument("StreamPipeline: window_rows must be >= 1");
  }
  if (options.slide_rows > options.window_rows) {
    return Status::InvalidArgument(
        "StreamPipeline: slide_rows must not exceed window_rows");
  }
  if (!options.checkpoint_path.empty() &&
      options.window_policy.mode == FailureMode::kQuarantine) {
    // A quarantined chunk drops rows between windows, so the checkpoint
    // equation rows_consumed = windows_consumed * step no longer locates
    // the resume offset. Refuse rather than resume silently wrong.
    return Status::InvalidArgument(
        "StreamPipeline: window-stage quarantine cannot be combined with "
        "checkpointing (dropped chunks break the resume row offset)");
  }
  if (options.chunk_rows == 0) options.chunk_rows = 1;
  if (options.queue_capacity == 0) options.queue_capacity = 1;
  if (options.max_batch_windows == 0) options.max_batch_windows = 1;

  CCS_ASSIGN_OR_RETURN(
      core::StreamMonitor monitor,
      core::StreamMonitor::Create(
          reference, options.alarm_threshold, options.synthesis,
          options.expand_polynomial ? &options.expansion : nullptr));
  std::vector<std::string> numeric_names = reference.NumericNames();
  if (numeric_names.empty()) {
    return Status::InvalidArgument(
        "StreamPipeline: reference has no numeric attributes");
  }
  // Opt-in lazy polynomial expansion (docs/architecture.md, "Derived
  // columns"): the profile's schema becomes the expanded attribute set
  // and every ObserveAll derives the expansion straight into the Gram
  // walk — the refresh path never rebuilds an expanded frame per
  // window. Off by default, so plain monitoring output and the golden
  // alarm traces are byte-identical to before.
  std::optional<core::IncrementalSynthesizer> profile;
  if (options.expand_polynomial) {
    CCS_ASSIGN_OR_RETURN(core::IncrementalSynthesizer expanded,
                         core::IncrementalSynthesizer::WithExpansion(
                             numeric_names, options.expansion,
                             options.synthesis));
    profile.emplace(std::move(expanded));
  } else {
    profile.emplace(numeric_names, options.synthesis);
  }
  if (options.refresh_every > 0) {
    // Seed the streaming Gram state with the reference, so the first
    // refresh profiles reference + everything scored so far.
    CCS_RETURN_IF_ERROR(profile->ObserveAll(reference));
  }
  return StreamPipeline(std::move(monitor), std::move(*profile),
                        reference.schema(), options);
}

CheckpointData StreamPipeline::Snapshot() const {
  CheckpointData data;
  data.window_rows = options_.window_rows;
  data.slide_rows = options_.slide_rows;
  data.refresh_every = options_.refresh_every;
  data.threshold_bits = DoubleBits(options_.alarm_threshold);
  data.windows_committed = monitor_.history_size();
  data.windows_consumed = windows_consumed_;
  data.rows_consumed = windows_consumed_ * step_rows();
  data.refreshes = refreshes_total_;
  data.attribute_names = profile_.attribute_names();
  data.gram_count = profile_.gram().count();
  data.gram_sum = profile_.gram().RawSum();
  if (refreshes_total_ > 0) {
    // The adopted constraint is the product of refresh #refreshes_total_
    // and must survive bit-exactly; before any refresh the profile is
    // re-learned from the reference CSV on resume instead.
    data.has_profile = true;
    data.profile = monitor_.reference_constraint().global();
  }
  return data;
}

Status StreamPipeline::Restore(const CheckpointData& data) {
  if (data.window_rows != options_.window_rows ||
      data.slide_rows != options_.slide_rows ||
      data.refresh_every != options_.refresh_every) {
    return Status::InvalidArgument(
        "StreamPipeline::Restore: checkpoint window/slide/refresh geometry "
        "does not match this pipeline's options");
  }
  if (data.threshold_bits != DoubleBits(options_.alarm_threshold)) {
    return Status::InvalidArgument(
        "StreamPipeline::Restore: checkpoint alarm threshold does not match "
        "this pipeline's options");
  }
  if (data.attribute_names != profile_.attribute_names()) {
    return Status::InvalidArgument(
        "StreamPipeline::Restore: checkpoint attribute schema does not match "
        "the reference");
  }
  if (data.windows_consumed < data.windows_committed ||
      data.rows_consumed != data.windows_consumed * step_rows()) {
    return Status::InvalidArgument(
        "StreamPipeline::Restore: inconsistent checkpoint progress counters");
  }
  CCS_RETURN_IF_ERROR(monitor_.RestoreHistoryBase(data.windows_committed));
  CCS_RETURN_IF_ERROR(profile_.RestoreGram(data.gram_sum, data.gram_count));
  if (data.has_profile) {
    CCS_RETURN_IF_ERROR(monitor_.RefreshReference(data.profile));
  }
  windows_consumed_ = data.windows_consumed;
  refreshes_total_ = data.refreshes;
  resume_skip_rows_ = data.rows_consumed;
  last_checkpoint_windows_ = data.windows_consumed;
  return Status::OK();
}

void StreamPipeline::RecordQuarantine(QuarantineRecord record,
                                      PipelineStats* stats) {
  stats->rows_quarantined += record.rows_lost;
  if (record.stage == "score") ++stats->windows_quarantined;
  if (options_.on_quarantine) options_.on_quarantine(record);
  stats->quarantine.push_back(std::move(record));
}

Status StreamPipeline::CommitBatch(
    std::vector<DataFrame> batch,
    const std::function<void(const WindowScore&)>& on_score,
    PipelineStats* stats) {
  obs::ObsSpan commit_span("stream.commit", "stream");

  // ---- Phase A: the per-window supervision gate, in window order. Each
  // window's consumed ordinal — and therefore the fault point's hit
  // ordinal — depends only on its position in the stream, never on how
  // the windows happened to batch up.
  std::vector<DataFrame> survivors;
  std::vector<size_t> survivor_ordinals;
  std::vector<QuarantineRecord> pending_quarantine;
  survivors.reserve(batch.size());
  survivor_ordinals.reserve(batch.size());
  // A fail-fast gate failure is deferred until the batch prefix before it
  // has committed: a serial loop would have scored those windows before
  // reaching the failing one, and batch boundaries are the one thing in
  // this pipeline that is NOT deterministic — the termination trace must
  // not depend on them.
  Status gate_failure;
  for (DataFrame& window : batch) {
    ++windows_consumed_;
    auto gate = [&]() -> Status {
      CCS_FAULT_POINT("stream.score.window");
      return Status::OK();
    };
    SuperviseResult supervised =
        Supervise(options_.score_policy, gate, options_.stop);
    stats->retries += supervised.retries;
    if (supervised.action == SuperviseAction::kFail) {
      gate_failure = std::move(supervised.status);
      break;
    }
    if (supervised.action == SuperviseAction::kQuarantine) {
      // Held back until the commit walk below: emitting it now would
      // put it ahead of this batch's earlier windows, and where the
      // batch boundary fell is the one nondeterministic thing here.
      QuarantineRecord record;
      record.stage = "score";
      record.index = windows_consumed_;
      record.rows_lost = window.num_rows();
      record.reason = std::move(supervised.status);
      pending_quarantine.push_back(std::move(record));
      continue;
    }
    survivors.push_back(std::move(window));
    survivor_ordinals.push_back(windows_consumed_);
  }
  if (survivors.empty()) {
    for (QuarantineRecord& record : pending_quarantine) {
      RecordQuarantine(std::move(record), stats);
    }
    return gate_failure;
  }

  // ---- Phase B: batch scoring. ObserveWindows is all-or-nothing, so
  // under a quarantine policy a batch failure falls back to scoring each
  // window alone — the same Score function, so the committed bits are
  // identical — and quarantines only the windows that actually fail.
  std::vector<WindowScore> scores;
  std::vector<size_t> committed;  // Indices into `survivors`.
  {
    obs::ObsSpan score_span("stream.score", "stream");
    StatusOr<std::vector<WindowScore>> batch_scores =
        monitor_.ObserveWindows(survivors, options_.num_threads);
    if (batch_scores.ok()) {
      scores = std::move(*batch_scores);
      committed.reserve(survivors.size());
      for (size_t i = 0; i < survivors.size(); ++i) committed.push_back(i);
    } else if (options_.score_policy.mode != FailureMode::kQuarantine) {
      return std::move(batch_scores).status();
    } else {
      for (size_t i = 0; i < survivors.size(); ++i) {
        StatusOr<WindowScore> score = monitor_.ObserveWindow(survivors[i]);
        if (score.ok()) {
          committed.push_back(i);
          scores.push_back(*score);
        } else {
          QuarantineRecord record;
          record.stage = "score";
          record.index = survivor_ordinals[i];
          record.rows_lost = survivors[i].num_rows();
          record.reason = std::move(score).status();
          pending_quarantine.push_back(std::move(record));
        }
      }
    }
  }
  // The commit walk: scores and quarantine records emitted merged in
  // consumed-ordinal order, so the observable event sequence — not just
  // the committed bits — is independent of where the batch boundaries
  // fell. Both sources are ordinal-sorted except when the Phase B
  // fallback appended behind gate records; one sort restores it.
  std::sort(pending_quarantine.begin(), pending_quarantine.end(),
            [](const QuarantineRecord& a, const QuarantineRecord& b) {
              return a.index < b.index;
            });
  size_t next_pending = 0;
  for (size_t i = 0; i < committed.size(); ++i) {
    const size_t ordinal = survivor_ordinals[committed[i]];
    while (next_pending < pending_quarantine.size() &&
           pending_quarantine[next_pending].index < ordinal) {
      RecordQuarantine(std::move(pending_quarantine[next_pending++]), stats);
    }
    const WindowScore& score = scores[i];
    ++stats->windows_scored;
    if (score.alarm) ++stats->alarms;
    if (on_score) on_score(score);
  }
  while (next_pending < pending_quarantine.size()) {
    RecordQuarantine(std::move(pending_quarantine[next_pending++]), stats);
  }
  if (options_.refresh_every == 0) return gate_failure;

  // ---- Phase C: fold the committed rows into the streaming Gram state
  // in window order (deterministic: the fold order and the refresh index
  // depend only on the stream, never on thread scheduling). With sliding
  // windows the overlap is re-observed, weighting recent rows —
  // acceptable for a drift profile and documented in docs/streaming.md.
  for (size_t i : committed) {
    CCS_RETURN_IF_ERROR(profile_.ObserveAll(survivors[i]));
  }
  // Cadence counts the monitor's whole history, not this Run's windows,
  // so a stream served in segments refreshes at the same absolute window
  // indices as the same stream served in one Run. Quarantined windows
  // never advance the history, so the boundary slides to the next
  // committed window. The committed.empty() guard keeps an all-quarantine
  // batch from re-firing a boundary the previous batch already handled.
  if (!committed.empty() &&
      monitor_.history_size() % options_.refresh_every == 0) {
    obs::ObsSpan refresh_span("stream.refresh", "stream");
    auto attempt = [&]() -> Status {
      CCS_FAULT_POINT("stream.refresh.synthesize");
      CCS_ASSIGN_OR_RETURN(core::SimpleConstraint refreshed,
                           profile_.Synthesize());
      return monitor_.RefreshReference(refreshed);
    };
    SuperviseResult supervised =
        Supervise(options_.score_policy, attempt, options_.stop);
    stats->retries += supervised.retries;
    if (supervised.action == SuperviseAction::kFail) {
      return std::move(supervised.status);
    }
    if (supervised.action == SuperviseAction::kQuarantine) {
      // The profile swap is deferred one full cadence period; scoring
      // continues against the previous reference (a degraded, not
      // broken, monitor).
      QuarantineRecord record;
      record.stage = "refresh";
      record.index = monitor_.history_size();
      record.rows_lost = 0;
      record.reason = std::move(supervised.status);
      RecordQuarantine(std::move(record), stats);
    } else {
      ++stats->refreshes;
      ++refreshes_total_;
      if (options_.on_refresh) options_.on_refresh(monitor_.history_size());
    }
  }
  return gate_failure;
}

PipelineRunResult StreamPipeline::Run(
    std::istream& in,
    const std::function<void(const WindowScore&)>& on_score,
    const dataframe::CsvOptions& csv_options) {
  PipelineRunResult result;
  PipelineStats& stats = result.stats;
  const uint64_t start_ns = obs::NowNanos();
  obs::ObsSpan run_span("stream.run", "stream");
  const uint64_t faults_before = common::fault::Injector::Global().injected();

  obs::Registry& registry = obs::Registry::Global();
  BoundedQueue<DataFrame> chunk_queue(
      options_.queue_capacity,
      {registry.GetHistogram("stream.chunk_queue.push_wait_us"),
       registry.GetHistogram("stream.chunk_queue.pop_wait_us")});
  BoundedQueue<DataFrame> window_queue(
      options_.queue_capacity,
      {registry.GetHistogram("stream.window_queue.push_wait_us"),
       registry.GetHistogram("stream.window_queue.pop_wait_us")});

  const size_t skip_rows = resume_skip_rows_;
  resume_skip_rows_ = 0;
  const std::atomic<bool>* stop = options_.stop;

  // ---- Stage 1: ingest. Parses schema-shaped chunks until EOF; each
  // Push blocks while the windowing stage is behind (backpressure).
  // The ccs-lint thread-spawn rule normally routes work through the
  // common/parallel pool; these two spawns ARE the pipeline's stage
  // structure (long-lived, one per stage, joined before Run returns),
  // which a bounded task pool cannot express without risking
  // pool-exhaustion deadlock between blocking stages.
  StageResult ingest_result;
  // ccs-lint: allow(thread-spawn): dedicated stage thread, joined below; pool tasks must not block on queues
  std::thread ingest([&] {
    Status status;
    size_t rows_ingested = 0;
    size_t retries = 0;
    bool stopped = false;
    std::vector<QuarantineRecord> quarantined;
    dataframe::CsvChunkReader reader(&in, schema_, csv_options);

    // Resume skip: wind the reader past the rows the checkpointed run
    // already consumed. Parses but never scores; malformed records in
    // the consumed region were quarantined (and accounted) by the
    // pre-crash process, so they are re-skipped silently. Each ReadChunk
    // error has consumed its malformed record, so the loop always makes
    // progress.
    size_t to_skip = skip_rows;
    while (to_skip > 0) {
      StatusOr<DataFrame> chunk =
          reader.ReadChunk(std::min(to_skip, options_.chunk_rows));
      if (!chunk.ok()) continue;
      if (chunk->num_rows() == 0) {
        status = Status::FailedPrecondition(
            "StreamPipeline: stream ended before the checkpoint's resume "
            "offset — resuming against a different stream?");
        break;
      }
      to_skip -= chunk->num_rows();
    }

    while (status.ok()) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        stopped = true;  // Graceful drain: treat as end of stream.
        break;
      }
      DataFrame chunk;
      auto attempt = [&]() -> Status {
        CCS_FAULT_POINT("stream.ingest.read");
        StatusOr<DataFrame> next = [&] {
          obs::ObsSpan ingest_span("stream.ingest", "stream");
          return reader.ReadChunk(options_.chunk_rows);
        }();
        if (!next.ok()) return std::move(next).status();
        chunk = std::move(*next);
        return Status::OK();
      };
      SuperviseResult supervised =
          Supervise(options_.ingest_policy, attempt, stop);
      retries += supervised.retries;
      if (supervised.action == SuperviseAction::kFail) {
        status = std::move(supervised.status);
        break;
      }
      if (supervised.action == SuperviseAction::kQuarantine) {
        QuarantineRecord record;
        record.stage = "ingest";
        record.index = reader.rows_read();
        // A parse error means the reader consumed the malformed record;
        // an injected fault fires before the read and consumes nothing.
        record.rows_lost =
            supervised.status.code() == StatusCode::kInvalidArgument ? 1 : 0;
        record.reason = std::move(supervised.status);
        quarantined.push_back(std::move(record));
        continue;
      }
      if (chunk.num_rows() == 0) break;  // End of stream.
      rows_ingested += chunk.num_rows();
      if (!chunk_queue.Push(std::move(chunk))) break;  // Cancelled.
    }
    chunk_queue.Close();
    MutexLock lock(&ingest_result.mu);
    ingest_result.status = std::move(status);
    ingest_result.rows = rows_ingested;
    ingest_result.retries = retries;
    ingest_result.stopped = stopped;
    ingest_result.quarantined = std::move(quarantined);
  });

  // ---- Stage 2: windowing. Reassembles chunks into windows; emits in
  // stream order into the (bounded) window queue.
  StageResult window_result;
  // ccs-lint: allow(thread-spawn): dedicated stage thread, joined below; pool tasks must not block on queues
  std::thread windowing([&] {
    Status status;
    size_t retries = 0;
    std::vector<QuarantineRecord> quarantined;
    StatusOr<Windower> windower =
        Windower::Create(options_.window_rows, options_.slide_rows);
    if (!windower.ok()) {
      status = windower.status();
    } else {
      size_t chunk_ordinal = 0;
      bool cancelled = false;
      while (std::optional<DataFrame> chunk = chunk_queue.Pop()) {
        ++chunk_ordinal;
        std::vector<DataFrame> windows;
        auto attempt = [&]() -> Status {
          CCS_FAULT_POINT("stream.window.push");
          StatusOr<std::vector<DataFrame>> produced = [&] {
            obs::ObsSpan window_span("stream.window", "stream");
            return windower->Push(*chunk);
          }();
          if (!produced.ok()) return std::move(produced).status();
          windows = std::move(*produced);
          return Status::OK();
        };
        SuperviseResult supervised =
            Supervise(options_.window_policy, attempt, stop);
        retries += supervised.retries;
        if (supervised.action == SuperviseAction::kFail) {
          status = std::move(supervised.status);
          break;
        }
        if (supervised.action == SuperviseAction::kQuarantine) {
          QuarantineRecord record;
          record.stage = "window";
          record.index = chunk_ordinal;
          record.rows_lost = chunk->num_rows();
          record.reason = std::move(supervised.status);
          quarantined.push_back(std::move(record));
          continue;
        }
        for (DataFrame& w : windows) {
          if (!window_queue.Push(std::move(w))) {
            cancelled = true;  // Cancelled downstream; not an error.
            break;
          }
        }
        if (cancelled) break;
      }
    }
    // On error, also unblock the ingest stage (its Push would otherwise
    // wait forever on a full chunk queue).
    chunk_queue.Close();
    window_queue.Close();
    MutexLock lock(&window_result.mu);
    window_result.status = std::move(status);
    window_result.retries = retries;
    window_result.quarantined = std::move(quarantined);
    if (windower.ok()) {
      window_result.rows_copied = windower->rows_copied_out();
      window_result.buffer_reallocs = windower->buffer_reallocs();
      window_result.buffer_capacity = windower->buffer_capacity_rows();
    }
  });

  // ---- Stage 3: scoring + ordered commit on the calling thread. Drains
  // every ready window (never blocking past the first), capped at the
  // batch limit and at the next refresh boundary, then scores the batch
  // over the pool and commits in arrival order.
  Status commit_status;
  const bool checkpointing = !options_.checkpoint_path.empty();
  while (std::optional<DataFrame> first = window_queue.Pop()) {
    std::vector<DataFrame> batch;
    batch.push_back(std::move(*first));
    size_t cap = options_.max_batch_windows;
    if (options_.refresh_every > 0) {
      // Never score past a refresh boundary: windows after it must see
      // the refreshed profile.
      size_t until_refresh =
          options_.refresh_every -
          monitor_.history_size() % options_.refresh_every;
      if (until_refresh < cap) cap = until_refresh;
    }
    while (batch.size() < cap) {
      std::optional<DataFrame> next = window_queue.TryPop();
      if (!next) break;
      batch.push_back(std::move(*next));
    }
    commit_status = CommitBatch(std::move(batch), on_score, &stats);
    if (commit_status.ok() && checkpointing && options_.checkpoint_every > 0 &&
        windows_consumed_ - last_checkpoint_windows_ >=
            options_.checkpoint_every) {
      commit_status =
          WriteCheckpointFile(Snapshot(), options_.checkpoint_path);
      if (commit_status.ok()) {
        last_checkpoint_windows_ = windows_consumed_;
        ++stats.checkpoints_written;
      }
    }
    if (!commit_status.ok()) {
      // Cancel upstream: producers' blocked Push calls return false.
      chunk_queue.Close();
      window_queue.Close();
      break;
    }
  }

  ingest.join();
  windowing.join();

  // Fold the stage outcomes into the stats FIRST, so a failing run still
  // reports everything it did (the whole point of PipelineRunResult).
  Status ingest_status;
  Status window_status;
  {
    MutexLock lock(&ingest_result.mu);
    ingest_status = std::move(ingest_result.status);
    stats.rows_ingested = ingest_result.rows;
    stats.retries += ingest_result.retries;
    // Stopped if ingest saw the flag — or if it was raised while ingest
    // was blocked on a read the stream then ended out from under (the
    // stop still happened before the run finished, and the caller's
    // exit code should say so).
    stats.stopped = ingest_result.stopped ||
                    (stop != nullptr && stop->load(std::memory_order_relaxed));
    for (QuarantineRecord& record : ingest_result.quarantined) {
      stats.rows_quarantined += record.rows_lost;
      stats.quarantine.push_back(std::move(record));
    }
  }
  {
    MutexLock lock(&window_result.mu);
    window_status = std::move(window_result.status);
    stats.retries += window_result.retries;
    for (QuarantineRecord& record : window_result.quarantined) {
      stats.rows_quarantined += record.rows_lost;
      stats.quarantine.push_back(std::move(record));
    }
    stats.window_rows_copied = window_result.rows_copied;
    stats.window_buffer_reallocs = window_result.buffer_reallocs;
    stats.window_buffer_capacity_rows = window_result.buffer_capacity;
  }
  if (!ingest_status.ok()) {
    result.status = std::move(ingest_status);
  } else if (!window_status.ok()) {
    result.status = std::move(window_status);
  } else {
    result.status = std::move(commit_status);
  }

  // The final checkpoint marks a cleanly ended (or gracefully stopped)
  // run; after an error the last periodic checkpoint stands, exactly as
  // after a crash.
  if (result.status.ok() && checkpointing) {
    result.status = WriteCheckpointFile(Snapshot(), options_.checkpoint_path);
    if (result.status.ok()) {
      last_checkpoint_windows_ = windows_consumed_;
      ++stats.checkpoints_written;
    }
  }

  stats.chunk_queue_peak = chunk_queue.peak_depth();
  stats.window_queue_peak = window_queue.peak_depth();
  stats.faults_injected = static_cast<size_t>(
      common::fault::Injector::Global().injected() - faults_before);
  stats.elapsed_seconds =
      static_cast<double>(obs::NowNanos() - start_ns) * 1e-9;
  // SafeRate reports 0 (never inf/nan) on tiny or empty streams where
  // elapsed time is degenerate.
  stats.rows_per_second = obs::SafeRate(
      static_cast<double>(stats.rows_ingested), stats.elapsed_seconds);

  // Mirror the returned stats into the process-wide registry from the
  // very same values, so `--stats` and `--metrics-json` cannot disagree.
  // Mirrored even on error: the counters describe work actually done.
  registry.GetCounter("stream.rows_ingested")->Add(stats.rows_ingested);
  registry.GetCounter("stream.windows_scored")->Add(stats.windows_scored);
  registry.GetCounter("stream.alarms")->Add(stats.alarms);
  registry.GetCounter("stream.refreshes")->Add(stats.refreshes);
  registry.GetCounter("stream.rows_quarantined")->Add(stats.rows_quarantined);
  registry.GetCounter("stream.degraded_windows")
      ->Add(stats.windows_quarantined);
  registry.GetCounter("stream.retries")->Add(stats.retries);
  registry.GetCounter("stream.faults_injected")->Add(stats.faults_injected);
  registry.GetCounter("stream.checkpoints")->Add(stats.checkpoints_written);
  registry.GetCounter("stream.window.rows_copied")
      ->Add(stats.window_rows_copied);
  registry.GetCounter("stream.window.buffer_reallocs")
      ->Add(stats.window_buffer_reallocs);
  registry.GetGauge("stream.chunk_queue.peak")
      ->UpdateMax(static_cast<int64_t>(stats.chunk_queue_peak));
  registry.GetGauge("stream.window_queue.peak")
      ->UpdateMax(static_cast<int64_t>(stats.window_queue_peak));
  registry.GetGauge("stream.window.buffer_capacity_rows")
      ->UpdateMax(static_cast<int64_t>(stats.window_buffer_capacity_rows));
  return result;
}

}  // namespace ccs::stream
