// StreamPipeline: the end-to-end streaming-serving engine.
//
// Three concurrent stages connected by bounded queues (blocking push =
// backpressure, so a fast parser can never buffer an unbounded stream):
//
//   ingest (thread)     CsvChunkReader parses schema-shaped row chunks
//      │  BoundedQueue<DataFrame>
//   windowing (thread)  Windower completes tumbling/sliding windows
//      │  BoundedQueue<DataFrame>
//   scoring + commit    the calling thread drains ready windows, scores
//   (caller + pool)     them with StreamMonitor::ObserveWindows (fanned
//                       out over common::ParallelFor's pool lanes), and
//                       commits WindowScores strictly in arrival order;
//                       every `refresh_every` windows it folds the scored
//                       rows into an IncrementalSynthesizer and swaps the
//                       reference profile (§4.3.2 streaming Gram sum).
//
// Determinism: window contents depend only on the row stream (Windower),
// per-window scores are pure functions of (profile, window), batches
// never span a refresh boundary, and refreshes happen at fixed window
// indices with rows ingested in window order — so the committed
// WindowScore history is bitwise identical to a serial ObserveWindow
// loop with the same refresh cadence, at any thread count (see
// docs/streaming.md and the equivalence test in tests/stream_test.cc).

#ifndef CCS_STREAM_PIPELINE_H_
#define CCS_STREAM_PIPELINE_H_

#include <functional>
#include <istream>
#include <vector>

#include "common/statusor.h"
#include "core/monitor.h"
#include "core/synthesizer.h"
#include "dataframe/csv.h"
#include "dataframe/dataframe.h"
#include "stream/windower.h"

namespace ccs::stream {

/// Tuning knobs for StreamPipeline.
struct StreamPipelineOptions {
  /// Rows per scored window.
  size_t window_rows = 256;
  /// Rows the window advances per step; 0 = tumbling (= window_rows).
  size_t slide_rows = 0;
  /// Windows scoring above this raise an alarm (in [0, 1]).
  double alarm_threshold = 0.05;
  /// Swap the reference profile after every this many windows; 0 never
  /// refreshes (the profile stays the one learned from the reference).
  size_t refresh_every = 0;
  /// Scoring lanes for the batch scorer; 0 = DefaultThreadCount(). Never
  /// changes the scores, only the wall clock.
  size_t num_threads = 0;
  /// Rows per ingest chunk (parse granularity, not window geometry).
  size_t chunk_rows = 1024;
  /// Capacity of each inter-stage queue, in chunks / windows. This bounds
  /// how far ingest can run ahead of scoring.
  size_t queue_capacity = 4;
  /// Upper bound on windows scored per batch (one ObserveWindows call).
  size_t max_batch_windows = 32;
  /// Constraint-synthesis configuration for the reference profile and
  /// its refreshes.
  core::SynthesisOptions synthesis;
  /// Invoked on the calling thread immediately after each reference
  /// refresh, with the number of windows scored so far (the refresh
  /// boundary index). Refreshes happen at fixed window indices, so the
  /// callback sequence is deterministic at any thread count — the
  /// scenario gauntlet records it in alarm traces.
  std::function<void(size_t windows_scored)> on_refresh;
};

/// Counters describing one Run (all zero on a stream with no windows).
struct PipelineStats {
  size_t rows_ingested = 0;
  size_t windows_scored = 0;
  size_t alarms = 0;
  size_t refreshes = 0;
  /// High-water marks of the two queues: how deep backpressure buffered.
  size_t chunk_queue_peak = 0;
  size_t window_queue_peak = 0;
  /// Windower allocation telemetry for this Run (see stream/windower.h):
  /// rows copied into emitted windows (the whole per-emit cost), rolling
  /// buffer growth events, and the final rolling-buffer capacity. A
  /// steady-state stream reallocates a handful of times up front and
  /// then never again — `ccsynth monitor --stats` surfaces these.
  size_t window_rows_copied = 0;
  size_t window_buffer_reallocs = 0;
  size_t window_buffer_capacity_rows = 0;
  double elapsed_seconds = 0.0;
  /// rows_ingested / elapsed_seconds.
  double rows_per_second = 0.0;
};

/// Pipelined, backpressured serving loop over a streamed CSV.
class StreamPipeline {
 public:
  /// Learns the initial reference profile from `reference` (whose schema
  /// also types the stream) and validates `options`.
  static StatusOr<StreamPipeline> Create(const dataframe::DataFrame& reference,
                                         StreamPipelineOptions options);

  /// Runs ingest -> windowing -> scoring over `in` until end of stream
  /// or first error (a failing stage cancels the others). `on_score`,
  /// when set, is invoked on the calling thread once per window in
  /// commit order. Run may be called again to continue the monitor,
  /// profile, and refresh cadence (which counts the whole history) over
  /// another stream segment; windowing state does not carry across
  /// calls.
  StatusOr<PipelineStats> Run(
      std::istream& in,
      const std::function<void(const core::WindowScore&)>& on_score = nullptr,
      const dataframe::CsvOptions& csv_options = dataframe::CsvOptions());

  /// The monitor accumulating the score history across Run calls.
  const core::StreamMonitor& monitor() const { return monitor_; }

  /// A snapshot of all committed scores, in arrival order (copies under
  /// the monitor's lock; safe to call from any thread).
  std::vector<core::WindowScore> history() const {
    return monitor_.history();
  }

 private:
  StreamPipeline(core::StreamMonitor monitor,
                 core::IncrementalSynthesizer profile,
                 dataframe::Schema schema, StreamPipelineOptions options)
      : monitor_(std::move(monitor)),
        profile_(std::move(profile)),
        schema_(std::move(schema)),
        options_(options) {}

  // Scores `batch` (never spanning a refresh boundary), commits in
  // order, feeds the profile, and refreshes it at the cadence boundary.
  Status CommitBatch(std::vector<dataframe::DataFrame> batch,
                     const std::function<void(const core::WindowScore&)>& on_score,
                     PipelineStats* stats);

  core::StreamMonitor monitor_;
  core::IncrementalSynthesizer profile_;
  dataframe::Schema schema_;
  StreamPipelineOptions options_;
};

}  // namespace ccs::stream

#endif  // CCS_STREAM_PIPELINE_H_
