// StreamPipeline: the end-to-end streaming-serving engine.
//
// Three concurrent stages connected by bounded queues (blocking push =
// backpressure, so a fast parser can never buffer an unbounded stream):
//
//   ingest (thread)     CsvChunkReader parses schema-shaped row chunks
//      │  BoundedQueue<DataFrame>
//   windowing (thread)  Windower completes tumbling/sliding windows
//      │  BoundedQueue<DataFrame>
//   scoring + commit    the calling thread drains ready windows, scores
//   (caller + pool)     them with StreamMonitor::ObserveWindows (fanned
//                       out over common::ParallelFor's pool lanes), and
//                       commits WindowScores strictly in arrival order;
//                       every `refresh_every` windows it folds the scored
//                       rows into an IncrementalSynthesizer and swaps the
//                       reference profile (§4.3.2 streaming Gram sum).
//
// Each stage runs under a FailurePolicy (stream/supervisor.h): fail-fast
// (the default, and the only pre-robustness behavior), bounded retry of
// transient failures, or quarantine-and-continue — failed units are
// recorded in PipelineStats::quarantine with structured reasons instead
// of killing the run. CCS_FAULT_POINT sites (common/fault.h) in every
// stage loop let tests and the scenario gauntlet inject deterministic
// failures through exactly these paths.
//
// Determinism: window contents depend only on the row stream (Windower),
// per-window scores are pure functions of (profile, window), batches
// never span a refresh boundary, and refreshes happen at fixed window
// indices with rows ingested in window order — so the committed
// WindowScore history is bitwise identical to a serial ObserveWindow
// loop with the same refresh cadence, at any thread count (see
// docs/streaming.md and the equivalence test in tests/stream_test.cc).
// Supervision preserves this: each stage's quarantine decisions depend
// only on its own deterministic unit ordinals, and checkpoint-resume
// (stream/checkpoint.h, docs/robustness.md) extends the contract to
// recovery — a resumed run's alarm trace is bitwise identical to the
// uninterrupted run from the checkpoint boundary on.

#ifndef CCS_STREAM_PIPELINE_H_
#define CCS_STREAM_PIPELINE_H_

#include <atomic>
#include <functional>
#include <istream>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/monitor.h"
#include "core/synthesizer.h"
#include "dataframe/csv.h"
#include "dataframe/dataframe.h"
#include "stream/checkpoint.h"
#include "stream/supervisor.h"
#include "stream/windower.h"

namespace ccs::stream {

/// Tuning knobs for StreamPipeline.
struct StreamPipelineOptions {
  /// Rows per scored window.
  size_t window_rows = 256;
  /// Rows the window advances per step; 0 = tumbling (= window_rows).
  size_t slide_rows = 0;
  /// Windows scoring above this raise an alarm (in [0, 1]).
  double alarm_threshold = 0.05;
  /// Swap the reference profile after every this many windows; 0 never
  /// refreshes (the profile stays the one learned from the reference).
  size_t refresh_every = 0;
  /// Scoring lanes for the batch scorer; 0 = DefaultThreadCount(). Never
  /// changes the scores, only the wall clock.
  size_t num_threads = 0;
  /// Rows per ingest chunk (parse granularity, not window geometry).
  size_t chunk_rows = 1024;
  /// Capacity of each inter-stage queue, in chunks / windows. This bounds
  /// how far ingest can run ahead of scoring.
  size_t queue_capacity = 4;
  /// Upper bound on windows scored per batch (one ObserveWindows call).
  size_t max_batch_windows = 32;
  /// Constraint-synthesis configuration for the reference profile and
  /// its refreshes.
  core::SynthesisOptions synthesis;
  /// Monitor the degree-2 polynomial expansion of the numeric
  /// attributes instead of the raw attributes (§5.1 nonlinear
  /// constraints). The expansion is *lazy* end to end: reference
  /// profile, per-window scoring, and the periodic Gram refresh all
  /// walk derived-column views (docs/architecture.md, "Derived
  /// columns") — no expanded frame is ever materialized. Off by
  /// default; plain runs (and the golden alarm traces) are unchanged.
  /// The checkpointed attribute schema becomes the expanded names, so
  /// resume requires the same setting.
  bool expand_polynomial = false;
  /// Expansion shape when expand_polynomial is set.
  core::PolynomialExpansionOptions expansion;
  /// Invoked on the calling thread immediately after each reference
  /// refresh, with the number of windows scored so far (the refresh
  /// boundary index). Refreshes happen at fixed window indices, so the
  /// callback sequence is deterministic at any thread count — the
  /// scenario gauntlet records it in alarm traces.
  std::function<void(size_t windows_scored)> on_refresh;

  // ---- Robustness (docs/robustness.md). All default to the strict
  // pre-robustness behavior: fail fast, no checkpoints, run to EOF.

  /// Failure policy for the ingest stage. Quarantine absorbs malformed
  /// records (the CsvChunkReader has already consumed them, so exactly
  /// one data row is lost per quarantined parse error).
  FailurePolicy ingest_policy;
  /// Failure policy for the windowing stage. Quarantine drops the whole
  /// failed chunk — incompatible with checkpointing (a dropped chunk
  /// breaks the rows-per-window equation resume depends on; Create
  /// rejects the combination).
  FailurePolicy window_policy;
  /// Failure policy for scoring, reference refresh, and the per-window
  /// fault gate on the commit thread. Quarantined windows are consumed
  /// from the stream but never scored (the history skips them);
  /// a quarantined refresh defers the profile swap one full cadence
  /// period.
  FailurePolicy score_policy;
  /// Invoked on the calling thread, in deterministic commit order, for
  /// every quarantined unit of the commit-thread stages ("score" and
  /// "refresh" records only: ingest/window quarantines happen on their
  /// own threads, interleave nondeterministically with commits, and are
  /// therefore only collected into PipelineStats::quarantine).
  std::function<void(const QuarantineRecord&)> on_quarantine;

  /// Checkpoint file path; empty disables checkpointing.
  std::string checkpoint_path;
  /// Write a checkpoint after every this many consumed windows. 0 with a
  /// checkpoint_path writes only the final checkpoint at end of run.
  size_t checkpoint_every = 0;

  /// Graceful-shutdown flag (not owned; may be null). When it becomes
  /// true, ingest treats the stream as ended: buffered chunks are still
  /// windowed, completed windows are still scored and committed, the
  /// final checkpoint is still written — the run drains rather than
  /// aborts, and PipelineStats::stopped records that it was cut short.
  const std::atomic<bool>* stop = nullptr;
};

/// Counters describing one Run (all zero on a stream with no windows).
struct PipelineStats {
  size_t rows_ingested = 0;
  size_t windows_scored = 0;
  size_t alarms = 0;
  size_t refreshes = 0;
  /// High-water marks of the two queues: how deep backpressure buffered.
  size_t chunk_queue_peak = 0;
  size_t window_queue_peak = 0;
  /// Windower allocation telemetry for this Run (see stream/windower.h):
  /// rows copied into emitted windows (the whole per-emit cost), rolling
  /// buffer growth events, and the final rolling-buffer capacity. A
  /// steady-state stream reallocates a handful of times up front and
  /// then never again — `ccsynth monitor --stats` surfaces these.
  size_t window_rows_copied = 0;
  size_t window_buffer_reallocs = 0;
  size_t window_buffer_capacity_rows = 0;
  double elapsed_seconds = 0.0;
  /// rows_ingested / elapsed_seconds.
  double rows_per_second = 0.0;

  // ---- Robustness counters (mirrored into obs::Registry as
  // stream.rows_quarantined / stream.degraded_windows / stream.retries /
  // stream.faults_injected).

  /// Data rows lost across all quarantined units (sum of
  /// QuarantineRecord::rows_lost).
  size_t rows_quarantined = 0;
  /// Windows consumed from the stream but never scored ("score"-stage
  /// quarantines).
  size_t windows_quarantined = 0;
  /// Retry attempts consumed across all supervised stages.
  size_t retries = 0;
  /// Faults the armed Injector fired during this Run.
  size_t faults_injected = 0;
  /// Checkpoints written during this Run (periodic + final).
  size_t checkpoints_written = 0;
  /// True when the run ended because the stop flag was raised rather
  /// than at end of stream.
  bool stopped = false;
  /// Every quarantined unit, with structured reasons: commit-thread
  /// records ("score"/"refresh") in commit order first, then ingest
  /// records, then windowing records (each stage's records are in its
  /// own deterministic order).
  std::vector<QuarantineRecord> quarantine;
};

/// What Run returns: the terminal status AND the stats collected up to
/// that point. Pre-robustness Run returned StatusOr<PipelineStats>,
/// which silently dropped every counter on a failing stream — exactly
/// when the operator most needs to know how far it got.
struct PipelineRunResult {
  Status status;
  PipelineStats stats;

  bool ok() const { return status.ok(); }
  /// The stats are meaningful whether or not the run succeeded.
  PipelineStats* operator->() { return &stats; }
  const PipelineStats* operator->() const { return &stats; }
};

/// Pipelined, backpressured serving loop over a streamed CSV.
class StreamPipeline {
 public:
  /// Learns the initial reference profile from `reference` (whose schema
  /// also types the stream) and validates `options`.
  static StatusOr<StreamPipeline> Create(const dataframe::DataFrame& reference,
                                         StreamPipelineOptions options);

  /// Runs ingest -> windowing -> scoring over `in` until end of stream,
  /// graceful stop, or first unabsorbed error (a failing stage cancels
  /// the others; stats collected so far are returned either way).
  /// `on_score`, when set, is invoked on the calling thread once per
  /// window in commit order. Run may be called again to continue the
  /// monitor, profile, and refresh cadence (which counts the whole
  /// history) over another stream segment; windowing state does not
  /// carry across calls.
  PipelineRunResult Run(
      std::istream& in,
      const std::function<void(const core::WindowScore&)>& on_score = nullptr,
      const dataframe::CsvOptions& csv_options = dataframe::CsvOptions());

  /// The monitor accumulating the score history across Run calls.
  const core::StreamMonitor& monitor() const { return monitor_; }

  /// A snapshot of all committed scores, in arrival order (copies under
  /// the monitor's lock; safe to call from any thread).
  std::vector<core::WindowScore> history() const {
    return monitor_.history();
  }

  /// The pipeline's current state as a checkpoint (call between Runs or
  /// before the first; Run itself snapshots internally at the cadence).
  CheckpointData Snapshot() const;

  /// Adopts a checkpoint: rebases the score history, restores the
  /// streaming Gram state and (when present) the refreshed reference
  /// profile, and arms the next Run to skip the already-consumed rows.
  /// Must be called before the first Run; InvalidArgument when the
  /// checkpoint's geometry guards do not match this pipeline's options,
  /// FailedPrecondition once any window has been committed.
  Status Restore(const CheckpointData& data);

  /// Window step per emitted window: slide_rows, or window_rows when
  /// tumbling. rows_consumed = windows_consumed * step is the resume
  /// offset equation (stream/checkpoint.h).
  size_t step_rows() const {
    return options_.slide_rows == 0 ? options_.window_rows
                                    : options_.slide_rows;
  }

 private:
  StreamPipeline(core::StreamMonitor monitor,
                 core::IncrementalSynthesizer profile,
                 dataframe::Schema schema, StreamPipelineOptions options)
      : monitor_(std::move(monitor)),
        profile_(std::move(profile)),
        schema_(std::move(schema)),
        options_(options) {}

  // Scores `batch` (never spanning a refresh boundary) under the score
  // policy, commits survivors in order, feeds the profile, and refreshes
  // it at the cadence boundary.
  Status CommitBatch(std::vector<dataframe::DataFrame> batch,
                     const std::function<void(const core::WindowScore&)>& on_score,
                     PipelineStats* stats);

  // Appends a commit-thread quarantine record: counts it, streams it to
  // on_quarantine, and stores it in `stats`.
  void RecordQuarantine(QuarantineRecord record, PipelineStats* stats);

  core::StreamMonitor monitor_;
  core::IncrementalSynthesizer profile_;
  dataframe::Schema schema_;
  StreamPipelineOptions options_;
  // Windows taken from the window stream across Runs: committed plus
  // score-quarantined. Together with step_rows() this fixes the resume
  // row offset; committed alone (the monitor's history size) does not,
  // because quarantined windows consume rows without advancing history.
  size_t windows_consumed_ = 0;
  // Reference refreshes across Runs (PipelineStats::refreshes is
  // per-Run; the checkpoint needs the cumulative count).
  size_t refreshes_total_ = 0;
  // Good data rows the next Run must skip before live ingestion — set by
  // Restore, consumed by the next Run.
  size_t resume_skip_rows_ = 0;
  // Consumed-window count at the last checkpoint write (cadence base).
  size_t last_checkpoint_windows_ = 0;
};

}  // namespace ccs::stream

#endif  // CCS_STREAM_PIPELINE_H_
