// Windower: assembles fixed-size row windows from streamed chunks.
//
// The streaming pipeline ingests a CSV in bounded chunks whose sizes are
// an I/O detail; the serving loop scores fixed-size windows. Windower
// bridges the two: chunks go in, every window they complete comes out,
// independent of how chunk boundaries fall. Tumbling windows
// (slide == window) partition the stream; sliding windows (slide <
// window) overlap, re-scoring recent rows each step. A trailing partial
// window at end of stream is never emitted (it would score a different
// population than every other window).

#ifndef CCS_STREAM_WINDOWER_H_
#define CCS_STREAM_WINDOWER_H_

#include <vector>

#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::stream {

/// Reassembles a chunked row stream into overlapping or tumbling
/// windows. Deterministic: the emitted windows depend only on the
/// concatenated row stream, never on the chunking.
class Windower {
 public:
  /// Windows of `window_rows` rows, advancing `slide_rows` per window.
  /// `slide_rows` = 0 means tumbling (= window_rows). InvalidArgument
  /// unless 1 <= slide_rows <= window_rows.
  static StatusOr<Windower> Create(size_t window_rows, size_t slide_rows = 0);

  /// Appends a chunk (its schema must match earlier chunks) and returns
  /// every window it completes, oldest first. Empty chunks are allowed
  /// and complete nothing.
  StatusOr<std::vector<dataframe::DataFrame>> Push(
      const dataframe::DataFrame& chunk);

  size_t window_rows() const { return window_rows_; }
  size_t slide_rows() const { return slide_rows_; }

  /// Rows buffered awaiting a full window.
  size_t buffered_rows() const { return buffer_.num_rows(); }

  /// Total windows emitted so far.
  size_t windows_emitted() const { return windows_emitted_; }

 private:
  Windower(size_t window_rows, size_t slide_rows)
      : window_rows_(window_rows), slide_rows_(slide_rows) {}

  size_t window_rows_;
  size_t slide_rows_;
  dataframe::DataFrame buffer_;
  size_t windows_emitted_ = 0;
};

}  // namespace ccs::stream

#endif  // CCS_STREAM_WINDOWER_H_
