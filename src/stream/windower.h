// Windower: assembles fixed-size row windows from streamed chunks.
//
// The streaming pipeline ingests a CSV in bounded chunks whose sizes are
// an I/O detail; the serving loop scores fixed-size windows. Windower
// bridges the two: chunks go in, every window they complete comes out,
// independent of how chunk boundaries fall. Tumbling windows
// (slide == window) partition the stream; sliding windows (slide <
// window) overlap, re-scoring recent rows each step. A trailing partial
// window at end of stream is never emitted (it would score a different
// population than every other window).
//
// Rows are held in per-column rolling buffers (raw doubles and
// dictionary codes, never whole DataFrames), consumed by advancing a
// start offset and compacted once per Push. Each emitted window copies
// exactly `window_rows` rows out of the rolling buffers into fresh
// shared column storage — O(window) per emit, with the categorical
// dictionary shared, not copied — and the rolling buffers themselves
// stop reallocating once their capacity covers window + chunk
// (`buffer_reallocs()` / `buffer_capacity_rows()` expose this for the
// regression test and `ccsynth monitor --stats`).

#ifndef CCS_STREAM_WINDOWER_H_
#define CCS_STREAM_WINDOWER_H_

#include <cstdint>
#include <vector>

#include "common/statusor.h"
#include "dataframe/dataframe.h"

namespace ccs::stream {

/// Reassembles a chunked row stream into overlapping or tumbling
/// windows. Deterministic: the emitted windows depend only on the
/// concatenated row stream, never on the chunking.
class Windower {
 public:
  /// Windows of `window_rows` rows, advancing `slide_rows` per window.
  /// `slide_rows` = 0 means tumbling (= window_rows). InvalidArgument
  /// unless 1 <= slide_rows <= window_rows.
  static StatusOr<Windower> Create(size_t window_rows, size_t slide_rows = 0);

  /// Appends a chunk (its schema must match earlier chunks) and returns
  /// every window it completes, oldest first. Emitted windows own their
  /// storage (sharing only the categorical dictionaries) and stay valid
  /// after further pushes.
  ///
  /// Edge semantics (defined, not accidental — the scenario gauntlet's
  /// empty/short-stream cases rely on them):
  ///  - A zero-row chunk completes nothing but still adopts (first
  ///    chunk) or validates the schema; only a column-less placeholder
  ///    DataFrame is ignored entirely.
  ///  - A stream shorter than one window emits zero windows.
  ///  - The trailing partial segment — anything shorter than a full
  ///    window after the last emit, including a final segment shorter
  ///    than the slide — is never emitted (it would score a different
  ///    population than every other window); it stays in
  ///    buffered_rows() and is dropped when the Windower is discarded.
  StatusOr<std::vector<dataframe::DataFrame>> Push(
      const dataframe::DataFrame& chunk);

  size_t window_rows() const { return window_rows_; }
  size_t slide_rows() const { return slide_rows_; }

  /// Rows buffered awaiting a full window.
  size_t buffered_rows() const { return buffered_rows_; }

  /// Total windows emitted so far.
  size_t windows_emitted() const { return windows_emitted_; }

  /// Times any rolling column buffer grew its capacity. Stabilizes once
  /// capacity covers window_rows + the largest chunk.
  size_t buffer_reallocs() const { return buffer_reallocs_; }

  /// Current rolling-buffer capacity, in rows (max across columns).
  size_t buffer_capacity_rows() const;

  /// Total rows copied into emitted windows (= windows_emitted *
  /// window_rows): the entire per-emit cost, independent of how many
  /// rows sit in the rolling buffer.
  size_t rows_copied_out() const { return rows_copied_out_; }

 private:
  // One rolling buffer per schema column; exactly one of numeric/codes
  // is used, per the column type.
  struct ColumnBuffer {
    std::vector<double> numeric;
    std::vector<uint32_t> codes;
    dataframe::DictionaryBuilder dict;
  };

  Windower(size_t window_rows, size_t slide_rows)
      : window_rows_(window_rows), slide_rows_(slide_rows) {}

  Status AppendChunk(const dataframe::DataFrame& chunk);
  dataframe::DataFrame EmitWindow();

  size_t window_rows_;
  size_t slide_rows_;
  dataframe::Schema schema_;  // Adopted from the first non-empty chunk.
  std::vector<ColumnBuffer> buffers_;
  size_t start_ = 0;          // Consumed prefix inside the buffers.
  size_t buffered_rows_ = 0;  // Logical rows awaiting windows.
  size_t windows_emitted_ = 0;
  size_t buffer_reallocs_ = 0;
  size_t rows_copied_out_ = 0;
};

}  // namespace ccs::stream

#endif  // CCS_STREAM_WINDOWER_H_
