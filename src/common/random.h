// Deterministic random number generation for reproducible experiments.

#ifndef CCS_COMMON_RANDOM_H_
#define CCS_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace ccs {

/// A seedable RNG with convenience samplers.
///
/// All experiment and generator code takes an Rng (or a seed) explicitly so
/// every benchmark/test run is reproducible. Wraps std::mt19937_64.
///
/// Thread affinity: an Rng is single-threaded state with no internal
/// locking — every Draw advances engine_, so sharing one instance across
/// threads is both a data race and a determinism leak (the interleaving
/// would pick the sample order). Each thread must own its own Rng; code
/// that fans out derives per-shard instances from a fixed per-shard seed
/// (as synth/har.cc does per entity key), never by handing one generator
/// to a pool. No library parallel path (common/parallel, stream/) takes
/// an Rng, and the determinism contract (docs/architecture.md) keeps it
/// that way.
class Rng {
 public:
  /// Constructs an RNG from a fixed seed (default chosen arbitrarily).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal (mean 0, stddev 1) unless overridden.
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Index in [0, weights.size()) drawn proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `indices` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// The underlying engine, for use with std <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ccs

#endif  // CCS_COMMON_RANDOM_H_
