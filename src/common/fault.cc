#include "common/fault.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <utility>

#include "common/string_util.h"

namespace ccs::common::fault {

namespace {

// splitmix64 finalizer — the same mixer scenario seeding uses, duplicated
// here because common/ sits below scenario/ in the layering. Fixed
// forever: armed golden traces depend on it.
uint64_t Mix64(uint64_t z) {
  z += 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Uniform double in [0, 1) from the top 53 bits of a mixed draw.
double UnitDraw(uint64_t stream, uint64_t hit) {
  return static_cast<double>(Mix64(stream + hit) >> 11) * 0x1.0p-53;
}

StatusOr<StatusCode> CodeFromName(const std::string& name) {
  if (name == "unavailable") return StatusCode::kUnavailable;
  if (name == "internal") return StatusCode::kInternal;
  if (name == "io-error") return StatusCode::kIoError;
  if (name == "invalid-argument") return StatusCode::kInvalidArgument;
  if (name == "failed-precondition") return StatusCode::kFailedPrecondition;
  return Status::InvalidArgument("fault spec: unknown status code '" + name +
                                 "'");
}

Status ValidatePoint(const FaultPoint& p) {
  if (p.point.empty()) {
    return Status::InvalidArgument("fault spec: point name must be non-empty");
  }
  if (p.trigger == "once") {
    if (p.at == 0) {
      return Status::InvalidArgument(
          "fault spec: 'once' trigger needs at >= 1 (hit ordinals are "
          "1-based)");
    }
  } else if (p.trigger == "every") {
    if (p.every == 0) {
      return Status::InvalidArgument(
          "fault spec: 'every' trigger needs every >= 1");
    }
  } else if (p.trigger == "probability") {
    if (!(p.probability >= 0.0 && p.probability <= 1.0)) {
      return Status::InvalidArgument(
          "fault spec: probability must be in [0, 1]");
    }
  } else {
    return Status::InvalidArgument("fault spec: unknown trigger '" +
                                   p.trigger + "'");
  }
  if (p.action != "error" && p.action != "crash") {
    return Status::InvalidArgument("fault spec: unknown action '" + p.action +
                                   "'");
  }
  return CodeFromName(p.code).status();
}

// Minimal JSON reader for the fault-spec shape, in the same strict
// unknown-key-rejecting style as the scenario spec parser
// (src/scenario/scenario.cc).
class FaultJsonParser {
 public:
  explicit FaultJsonParser(const std::string& text) : text_(text) {}

  StatusOr<FaultSpec> Parse() {
    FaultSpec spec;
    CCS_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) CCS_RETURN_IF_ERROR(Expect(','));
      first = false;
      CCS_ASSIGN_OR_RETURN(std::string key, ParseString());
      CCS_RETURN_IF_ERROR(Expect(':'));
      if (key == "seed") {
        CCS_ASSIGN_OR_RETURN(double v, ParseNumber());
        if (v < 0.0) {
          return Status::InvalidArgument("fault spec JSON: negative seed");
        }
        spec.seed = static_cast<uint64_t>(v);
      } else if (key == "points") {
        CCS_RETURN_IF_ERROR(ParsePoints(&spec));
      } else {
        return Status::InvalidArgument("fault spec JSON: unknown key '" + key +
                                       "'");
      }
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("fault spec JSON: trailing content");
    }
    for (const FaultPoint& p : spec.points) {
      CCS_RETURN_IF_ERROR(ValidatePoint(p));
    }
    return spec;
  }

 private:
  Status ParsePoints(FaultSpec* spec) {
    CCS_RETURN_IF_ERROR(Expect('['));
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == ']') {
        ++pos_;
        return Status::OK();
      }
      if (!first) CCS_RETURN_IF_ERROR(Expect(','));
      first = false;
      CCS_RETURN_IF_ERROR(ParsePoint(spec));
    }
  }

  Status ParsePoint(FaultSpec* spec) {
    FaultPoint p;
    CCS_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) CCS_RETURN_IF_ERROR(Expect(','));
      first = false;
      CCS_ASSIGN_OR_RETURN(std::string key, ParseString());
      CCS_RETURN_IF_ERROR(Expect(':'));
      if (key == "point") {
        CCS_RETURN_IF_ERROR(AssignString(&p.point));
      } else if (key == "trigger") {
        CCS_RETURN_IF_ERROR(AssignString(&p.trigger));
      } else if (key == "at") {
        CCS_RETURN_IF_ERROR(AssignU64(&p.at));
      } else if (key == "every") {
        CCS_RETURN_IF_ERROR(AssignU64(&p.every));
      } else if (key == "probability") {
        CCS_ASSIGN_OR_RETURN(p.probability, ParseNumber());
      } else if (key == "action") {
        CCS_RETURN_IF_ERROR(AssignString(&p.action));
      } else if (key == "code") {
        CCS_RETURN_IF_ERROR(AssignString(&p.code));
      } else if (key == "message") {
        CCS_RETURN_IF_ERROR(AssignString(&p.message));
      } else {
        return Status::InvalidArgument("fault spec JSON: unknown point key '" +
                                       key + "'");
      }
    }
    spec->points.push_back(std::move(p));
    return Status::OK();
  }

  Status AssignString(std::string* out) {
    CCS_ASSIGN_OR_RETURN(*out, ParseString());
    return Status::OK();
  }

  Status AssignU64(uint64_t* out) {
    CCS_ASSIGN_OR_RETURN(double v, ParseNumber());
    if (v < 0.0) {
      return Status::InvalidArgument("fault spec JSON: negative count");
    }
    *out = static_cast<uint64_t>(v);
    return Status::OK();
  }

  StatusOr<std::string> ParseString() {
    CCS_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        out.push_back(text_[pos_++]);  // \" and \\ only — names are plain.
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("fault spec JSON: unterminated string");
    }
    ++pos_;
    return out;
  }

  StatusOr<double> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    std::optional<double> v = ParseDouble(text_.substr(start, pos_ - start));
    if (!v.has_value()) {
      return Status::InvalidArgument("fault spec JSON: bad number at " +
                                     std::to_string(start));
    }
    return *v;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  Status Expect(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Status::InvalidArgument(
          std::string("fault spec JSON: expected '") + c + "' at offset " +
          std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

StatusOr<FaultSpec> ParseFaultSpecJson(const std::string& text) {
  return FaultJsonParser(text).Parse();
}

std::string FaultSpecToJson(const FaultSpec& spec) {
  std::string out = "{\"seed\": " + std::to_string(spec.seed) +
                    ", \"points\": [";
  for (size_t i = 0; i < spec.points.size(); ++i) {
    const FaultPoint& p = spec.points[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"point\": ";
    AppendJsonString(&out, p.point);
    out += ", \"trigger\": ";
    AppendJsonString(&out, p.trigger);
    if (p.trigger == "once" && p.at != 1) {
      out += ", \"at\": " + std::to_string(p.at);
    }
    if (p.trigger == "every") {
      out += ", \"every\": " + std::to_string(p.every);
    }
    if (p.trigger == "probability") {
      out += ", \"probability\": " + FormatDouble(p.probability);
    }
    if (p.action != "error") {
      out += ", \"action\": ";
      AppendJsonString(&out, p.action);
    }
    if (p.code != "unavailable") {
      out += ", \"code\": ";
      AppendJsonString(&out, p.code);
    }
    if (!p.message.empty()) {
      out += ", \"message\": ";
      AppendJsonString(&out, p.message);
    }
    out += "}";
  }
  out += spec.points.empty() ? "]}" : "\n]}";
  return out;
}

Injector& Injector::Global() {
  static Injector* injector = new Injector();
  return *injector;
}

Status Injector::Arm(FaultSpec spec) {
  for (const FaultPoint& p : spec.points) {
    CCS_RETURN_IF_ERROR(ValidatePoint(p));
  }
  MutexLock lock(&mu_);
  points_.clear();
  points_.reserve(spec.points.size());
  for (size_t i = 0; i < spec.points.size(); ++i) {
    PointState state;
    state.spec = spec.points[i];
    // One independent splitmix64 stream per armed entry, keyed on (seed,
    // entry index): arming a new point never perturbs another's draws.
    state.stream = Mix64(spec.seed ^ Mix64(i + 1));
    points_.push_back(std::move(state));
  }
  injected_total_ = 0;
  armed_.store(!points_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void Injector::Disarm() {
  MutexLock lock(&mu_);
  armed_.store(false, std::memory_order_relaxed);
  points_.clear();
  injected_total_ = 0;
}

Status Injector::Check(const char* point) {
  if (!armed()) return Status::OK();
  MutexLock lock(&mu_);
  // Every entry armed on this point shares one hit ordinal (so a spec
  // can compose, say, a transient error at hit 5 with a crash at hit
  // 30); the first entry whose trigger fires wins.
  uint64_t hit = 0;
  for (PointState& state : points_) {
    if (state.spec.point != point) continue;
    if (hit == 0) hit = state.hits + 1;
    state.hits = hit;
    bool fire = false;
    if (state.spec.trigger == "once") {
      fire = hit == state.spec.at;
    } else if (state.spec.trigger == "every") {
      fire = hit % state.spec.every == 0;
    } else {  // probability
      fire = UnitDraw(state.stream, hit) < state.spec.probability;
    }
    if (!fire) continue;
    ++state.injected;
    ++injected_total_;
    if (state.spec.action == "crash") {
      // The kill -9 drill: no destructors, no stream flushing, no atexit
      // (so sanitizer leak checks do not fire on the intentional corpse).
      // 137 = 128 + SIGKILL, what a shell would report for the real thing.
      std::_Exit(137);
    }
    std::string message =
        state.spec.message.empty()
            ? "fault injected at " + state.spec.point + " (hit " +
                  std::to_string(hit) + ")"
            : state.spec.message;
    return Status(CodeFromName(state.spec.code).value(), std::move(message));
  }
  return Status::OK();
}

uint64_t Injector::injected() const {
  MutexLock lock(&mu_);
  return injected_total_;
}

uint64_t Injector::hits(const std::string& point) const {
  MutexLock lock(&mu_);
  // Entries armed on the same point share one ordinal; any of them
  // carries the point's hit count.
  for (const PointState& state : points_) {
    if (state.spec.point == point) return state.hits;
  }
  return 0;
}

}  // namespace ccs::common::fault
