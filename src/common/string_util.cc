#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ccs {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  // std::from_chars for double is available in libstdc++ 11+.
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  if (std::isnan(value)) return std::nullopt;
  return value;
}

std::optional<int64_t> ParseInt(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace ccs
