#include "common/random.h"

#include <numeric>

#include "common/logging.h"

namespace ccs {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  CCS_CHECK(!weights.empty());
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  CCS_CHECK_GT(total, 0.0);
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    // ccs-lint: allow(fp-accumulate): CDF walk — the running sum defines
    // the draw and is inherently sequential; single compiled copy.
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  Shuffle(&perm);
  return perm;
}

}  // namespace ccs
