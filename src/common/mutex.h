// Annotated mutex and condition-variable wrappers.
//
// Thin, zero-overhead shims over std::mutex / std::condition_variable_any
// whose only job is to carry the Clang thread-safety annotations
// (common/thread_annotations.h) that the standard-library types lack:
// with these, -Wthread-safety can prove at compile time that every
// CCS_GUARDED_BY member is touched only under its mutex. All
// mutex-holding classes in src/ use these instead of raw std::mutex
// (enforced by tools/ccs_lint.py, rule `std-mutex`).
//
//   Mutex      std::mutex with annotated Lock/Unlock/TryLock.
//   MutexLock  std::lock_guard equivalent (scoped capability).
//   CondVar    condition variable usable with Mutex; Wait() declares via
//              CCS_REQUIRES that the caller holds the mutex, matching
//              the standard wait contract.

#ifndef CCS_COMMON_MUTEX_H_
#define CCS_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace ccs::common {

/// A std::mutex carrying Clang capability annotations.
class CCS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CCS_ACQUIRE() { mu_.lock(); }
  void Unlock() CCS_RELEASE() { mu_.unlock(); }
  bool TryLock() CCS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex (the annotated std::lock_guard).
class CCS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) CCS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() CCS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex.
///
/// Wait takes the mutex the caller already holds (CCS_REQUIRES) and, as
/// with std::condition_variable, atomically releases it while blocked
/// and reacquires it before returning — so from the analysis' point of
/// view the capability is held continuously across the call, which is
/// exactly the guarantee guarded-state predicates rely on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; re-check the condition in a `while` loop
  /// around the call (spurious wake-ups are allowed). There is
  /// deliberately no predicate overload: a predicate lambda is its own
  /// function context that the capability analysis cannot see into, so
  /// guarded reads inside it would warn — the explicit loop keeps them
  /// in the annotated caller.
  void Wait(Mutex* mu) CCS_REQUIRES(mu) { WaitInternal(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // Out of the analysis' sight: std::condition_variable_any unlocks and
  // relocks the mutex itself, a motion the capability model cannot
  // express (the REQUIRES contract on the public Wait is the truth).
  void WaitInternal(Mutex* mu) CCS_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu->mu_);
  }

  // condition_variable_any accepts any BasicLockable, which lets Wait
  // work directly on Mutex without exposing the wrapped std::mutex.
  std::condition_variable_any cv_;
};

}  // namespace ccs::common

#endif  // CCS_COMMON_MUTEX_H_
