#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "common/logging.h"
#include "obs/trace.h"

namespace ccs::common {

namespace {

std::atomic<size_t> g_default_thread_count{0};  // 0 = hardware default.

size_t HardwareThreads() {
  size_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

thread_local bool t_in_pool_worker = false;

}  // namespace

size_t DefaultThreadCount() {
  size_t n = g_default_thread_count.load(std::memory_order_relaxed);
  return n == 0 ? HardwareThreads() : n;
}

void SetDefaultThreadCount(size_t n) {
  g_default_thread_count.store(n, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    CCS_CHECK(!shutdown_) << "Submit on shut-down ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

ThreadPool& ThreadPool::Shared() {
  // One lane fewer than the hardware offers: the ParallelFor caller
  // always executes chunks too.
  static ThreadPool* pool = new ThreadPool(
      HardwareThreads() > 1 ? HardwareThreads() - 1 : 1);
  return *pool;
}

namespace {

// Per-call state shared between the caller and its helper tasks. Chunks
// are claimed via an atomic cursor so fast lanes take more work. The
// dispatch geometry (fn/n/chunk/total_chunks) is set once by the caller
// before the first helper task is submitted and never written again.
struct ForState {
  const std::function<void(size_t, size_t)>* fn =
      nullptr;        // ccs-lint: allow(guarded-by): immutable once helpers start
  size_t n = 0;       // ccs-lint: allow(guarded-by): immutable once helpers start
  size_t chunk = 0;   // ccs-lint: allow(guarded-by): immutable once helpers start
  std::atomic<size_t> next{0};
  size_t total_chunks =
      0;              // ccs-lint: allow(guarded-by): immutable once helpers start
  common::Mutex mu;
  common::CondVar done_cv;
  size_t chunks_done CCS_GUARDED_BY(mu) = 0;
};

void DrainChunks(ForState* state) {
  for (;;) {
    size_t c = state->next.fetch_add(1, std::memory_order_relaxed);
    if (c >= state->total_chunks) return;
    size_t begin = c * state->chunk;
    size_t end = std::min(state->n, begin + state->chunk);
    {
      // Scoped so the span closes BEFORE chunks_done is bumped: the
      // caller may unblock (and the ObsSession owner may tear down) the
      // moment the last chunk is counted, so no span may straddle it.
      obs::ObsSpan task_span("pool.task", "pool");
      (*state->fn)(begin, end);
    }
    {
      MutexLock lock(&state->mu);
      ++state->chunks_done;
    }
    state->done_cv.NotifyOne();
  }
}

}  // namespace

void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 const ParallelOptions& options) {
  if (n == 0) return;
  size_t lanes =
      options.num_threads == 0 ? DefaultThreadCount() : options.num_threads;
  // Serial fast paths: tiny ranges, explicit single-threading, or nested
  // use from inside a pool worker (where blocking on the pool could
  // starve the outer dispatch).
  if (lanes <= 1 || n <= options.min_chunk || ThreadPool::InWorker()) {
    fn(0, n);
    return;
  }

  // Shared ownership: a helper task that only starts after every chunk
  // has been claimed must still be able to read the cursor safely after
  // the caller has returned.
  auto state = std::make_shared<ForState>();
  state->fn = &fn;
  state->n = n;
  size_t max_chunks = (n + options.min_chunk - 1) / options.min_chunk;
  // ~4 chunks per lane keeps lanes busy despite uneven chunk costs.
  size_t target_chunks = std::min(max_chunks, lanes * 4);
  state->chunk = (n + target_chunks - 1) / target_chunks;
  state->total_chunks = (n + state->chunk - 1) / state->chunk;

  size_t helpers = std::min(lanes - 1, state->total_chunks - 1);
  for (size_t i = 0; i < helpers; ++i) {
    ThreadPool::Shared().Submit([state] { DrainChunks(state.get()); });
  }
  DrainChunks(state.get());
  MutexLock lock(&state->mu);
  while (state->chunks_done != state->total_chunks) {
    state->done_cv.Wait(&state->mu);
  }
}

void ParallelForEach(size_t n, const std::function<void(size_t)>& fn,
                     size_t num_threads) {
  if (n == 0) return;
  size_t lanes = num_threads == 0 ? DefaultThreadCount() : num_threads;
  if (lanes <= 1 || n <= 1 || ThreadPool::InWorker()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // A degenerate ParallelFor with single-index chunks: the atomic cursor
  // in DrainChunks IS the work queue, so a lane stuck on one expensive
  // index never blocks the others from draining the rest.
  auto state = std::make_shared<ForState>();
  std::function<void(size_t, size_t)> range_fn = [&fn](size_t begin,
                                                       size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  };
  state->fn = &range_fn;
  state->n = n;
  state->chunk = 1;
  state->total_chunks = n;

  size_t helpers = std::min(lanes - 1, n - 1);
  for (size_t i = 0; i < helpers; ++i) {
    ThreadPool::Shared().Submit([state] { DrainChunks(state.get()); });
  }
  DrainChunks(state.get());
  MutexLock lock(&state->mu);
  while (state->chunks_done != state->total_chunks) {
    state->done_cv.Wait(&state->mu);
  }
}

}  // namespace ccs::common
