// Minimal logging and assertion macros (CHECK / DCHECK / LOG).
//
// CHECK is for programmer errors (violated invariants); recoverable errors
// use Status. CHECK prints the failed condition plus any streamed context
// and aborts.

#ifndef CCS_COMMON_LOGGING_H_
#define CCS_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace ccs {
namespace internal {

/// Writes one fully assembled log line to stderr with a single
/// fwrite, so concurrent loggers interleave at line granularity, never
/// mid-line (piecewise operator<< on a shared std::cerr would shear).
inline void EmitLogLine(std::string line) {
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

/// Accumulates a failure message and aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
            << " ";
  }
  [[noreturn]] ~FatalMessage() {
    EmitLogLine(stream_.str());
    std::abort();
  }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Log-level message emitted to stderr with a severity prefix. The full
/// line is assembled in a private buffer and emitted atomically on
/// destruction (single write), so LOG lines from different threads
/// never interleave within a line.
class LogMessage {
 public:
  explicit LogMessage(const char* level) { stream_ << "[" << level << "] "; }
  ~LogMessage() { EmitLogLine(stream_.str()); }
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ccs

#define CCS_CHECK(condition)                                             \
  if (!(condition))                                                      \
  ::ccs::internal::FatalMessage(__FILE__, __LINE__, #condition).stream()

#define CCS_CHECK_EQ(a, b) CCS_CHECK((a) == (b))
#define CCS_CHECK_NE(a, b) CCS_CHECK((a) != (b))
#define CCS_CHECK_LT(a, b) CCS_CHECK((a) < (b))
#define CCS_CHECK_LE(a, b) CCS_CHECK((a) <= (b))
#define CCS_CHECK_GT(a, b) CCS_CHECK((a) > (b))
#define CCS_CHECK_GE(a, b) CCS_CHECK((a) >= (b))

#ifdef NDEBUG
#define CCS_DCHECK(condition) \
  if (false) CCS_CHECK(condition)
#else
#define CCS_DCHECK(condition) CCS_CHECK(condition)
#endif

// Forces a single out-of-line compilation of a function. Determinism-
// critical floating-point kernels use this so every caller executes the
// SAME machine code: inlining re-compiles a kernel per call site, and
// codegen differences (FP operand ordering) between copies propagate
// different NaN payloads, breaking bitwise path-equivalence.
#if defined(__GNUC__) || defined(__clang__)
#define CCS_NOINLINE __attribute__((noinline))
#else
#define CCS_NOINLINE
#endif

#define CCS_LOG_INFO ::ccs::internal::LogMessage("INFO").stream()
#define CCS_LOG_WARNING ::ccs::internal::LogMessage("WARN").stream()
#define CCS_LOG_ERROR ::ccs::internal::LogMessage("ERROR").stream()

#endif  // CCS_COMMON_LOGGING_H_
