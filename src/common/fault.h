// Deterministic, seeded fault injection.
//
// Production code marks recoverable operations with
// CCS_FAULT_POINT("stage.op"). Disarmed (the default), a fault point is
// one relaxed atomic load — cheap enough to leave compiled into release
// binaries. Armed with a FaultSpec, the point consults its trigger on
// every hit and either returns an injected error Status or terminates
// the process (simulating kill -9, for checkpoint-resume drills).
//
// Determinism contract: every decision is a pure function of
// (spec seed, point name, hit ordinal). Hit ordinals are per-point
// counters, and each point name lives in exactly one pipeline stage
// loop, so the injection sites of a run are byte-replayable — the same
// (seed, spec) injects at the same points at 1 and 4 threads, exactly
// like scenario rendering (src/scenario/scenario.h). Probability
// triggers draw from a splitmix64 stream keyed on the point, never from
// a shared RNG, so arming one point cannot perturb another's draws.
//
// Fault specs are JSON (see docs/robustness.md):
//
//   {"seed": 7, "points": [
//     {"point": "stream.score.window", "trigger": "once", "at": 5},
//     {"point": "stream.ingest.read", "trigger": "every", "every": 100},
//     {"point": "stream.window.push", "trigger": "probability",
//      "probability": 0.05, "code": "internal"},
//     {"point": "stream.score.window", "trigger": "once", "at": 30,
//      "action": "crash"}]}
//
// Triggers: "once" fires on hit ordinal `at` (1-based); "every" fires
// on every `every`-th hit; "probability" fires each hit with chance
// `probability`. Actions: "error" (default) returns a Status of `code`
// (default "unavailable", the one code the supervisor retries);
// "crash" calls _Exit(137) — no destructors, no flushing, the honest
// moral equivalent of SIGKILL.

#ifndef CCS_COMMON_FAULT_H_
#define CCS_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/statusor.h"
#include "common/thread_annotations.h"

namespace ccs::common::fault {

/// One armed injection site within a FaultSpec.
struct FaultPoint {
  /// The CCS_FAULT_POINT name this entry arms.
  std::string point;
  /// "once" | "every" | "probability".
  std::string trigger = "once";
  /// 1-based hit ordinal for "once".
  uint64_t at = 1;
  /// Period for "every": fires when hit % every == 0.
  uint64_t every = 0;
  /// Per-hit chance for "probability", in [0, 1].
  double probability = 0.0;
  /// "error" | "crash".
  std::string action = "error";
  /// Status code name for "error": "unavailable" (default, retryable),
  /// "internal", "io-error", "invalid-argument", "failed-precondition".
  std::string code = "unavailable";
  /// Optional message override; "" uses "fault injected at <point>".
  std::string message;
};

/// A full fault specification: the seed feeding every probability
/// trigger's splitmix64 stream, plus the armed points.
struct FaultSpec {
  uint64_t seed = 0;
  std::vector<FaultPoint> points;

  bool empty() const { return points.empty(); }
};

/// Parses the JSON fault-spec form. Unknown keys, unknown triggers,
/// actions, or status codes are rejected — a typo must not silently
/// disarm an injection.
StatusOr<FaultSpec> ParseFaultSpecJson(const std::string& text);

/// Serializes a spec to the JSON form ParseFaultSpecJson accepts
/// (round-trips exactly; defaults are omitted).
std::string FaultSpecToJson(const FaultSpec& spec);

/// The process-wide fault registry behind CCS_FAULT_POINT.
///
/// Thread model: Check may be called from any thread (each point's hit
/// counter advances under the registry mutex). Arm/Disarm must only be
/// called while no pipeline is running — arming mid-run would make hit
/// ordinals depend on where the stages happened to be.
class Injector {
 public:
  /// The singleton every CCS_FAULT_POINT consults.
  static Injector& Global();

  /// Arms `spec`, replacing any previous one and resetting all hit and
  /// injection counters. InvalidArgument on an unknown trigger/action/
  /// code or a malformed trigger parameter.
  Status Arm(FaultSpec spec);

  /// Disarms every point; Check returns OK again at one atomic load.
  void Disarm();

  /// True while a spec is armed.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// The hook behind CCS_FAULT_POINT: records a hit at `point` and
  /// returns the injected error when an armed trigger fires (or never
  /// returns, for "crash"). OK when disarmed or not triggered.
  Status Check(const char* point);

  /// Total faults injected since the last Arm (error and crash actions;
  /// a crash is never observed, of course).
  uint64_t injected() const;

  /// Hits recorded at `point` since the last Arm; 0 when unarmed or the
  /// point is not in the spec (unarmed points are not counted).
  uint64_t hits(const std::string& point) const;

 private:
  struct PointState {
    FaultPoint spec;
    /// splitmix64 stream key for probability draws, derived from
    /// (spec seed, point index) at Arm time.
    uint64_t stream = 0;
    uint64_t hits = 0;
    uint64_t injected = 0;
  };

  Injector() = default;

  std::atomic<bool> armed_{false};
  mutable Mutex mu_;
  std::vector<PointState> points_ CCS_GUARDED_BY(mu_);
  uint64_t injected_total_ CCS_GUARDED_BY(mu_) = 0;
};

}  // namespace ccs::common::fault

/// Marks a recoverable operation. No-op (one relaxed load) while the
/// registry is disarmed; returns the injected Status from the enclosing
/// function when an armed trigger fires. Use inside functions returning
/// Status or StatusOr<T>. Names must be unique string literals confined
/// to src/ (tools/ccs_lint.py, rule `fault-point`).
#define CCS_FAULT_POINT(name)                                       \
  do {                                                              \
    if (::ccs::common::fault::Injector::Global().armed()) {         \
      ::ccs::Status _ccs_fault =                                    \
          ::ccs::common::fault::Injector::Global().Check(name);     \
      if (!_ccs_fault.ok()) return _ccs_fault;                      \
    }                                                               \
  } while (false)

#endif  // CCS_COMMON_FAULT_H_
