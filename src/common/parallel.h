// Chunked data-parallel dispatch over a shared worker pool.
//
// ParallelFor splits an index range into contiguous chunks and runs them
// on a process-wide thread pool; the calling thread participates, so a
// pool of k workers yields k+1-way parallelism. ParallelForEach is the
// work-queue variant: indices are claimed one at a time, so a few
// expensive items (e.g. skewed partition sizes) cannot serialize a lane.
// Nested calls (a worker invoking either entry point) degrade to serial
// execution instead of deadlocking, which lets outer loops (e.g. scoring
// many stream windows) parallelize coarsely while inner batched kernels
// stay correct.
//
// Determinism: neither entry point prescribes which lane runs which
// index, so any cross-index reduction must be committed by the caller in
// index order after the dispatch returns (see GramAccumulator::AddMatrix
// for the canonical shard-then-ordered-merge pattern).

#ifndef CCS_COMMON_PARALLEL_H_
#define CCS_COMMON_PARALLEL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ccs::common {

/// Number of threads ParallelFor uses when options leave it unset (0):
/// initially std::thread::hardware_concurrency(), overridable below.
size_t DefaultThreadCount();

/// Overrides DefaultThreadCount(); `n` = 0 restores the hardware default.
/// Benchmarks use this to sweep 1, 2, N threads over the same code path.
void SetDefaultThreadCount(size_t n);

/// A fixed-size pool of worker threads executing submitted closures.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task) CCS_EXCLUDES(mu_);

  /// True when called from inside one of this process's pool workers.
  static bool InWorker();

  /// The process-wide pool, created on first use with
  /// hardware_concurrency() - 1 workers (the caller is the extra lane).
  static ThreadPool& Shared();

 private:
  void WorkerLoop() CCS_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ CCS_GUARDED_BY(mu_);
  bool shutdown_ CCS_GUARDED_BY(mu_) = false;
  // Written only while single-threaded (constructor spawn, destructor
  // join) — the workers themselves never touch the vector.
  std::vector<std::thread> threads_;  // ccs-lint: allow(guarded-by): ctor/dtor only, no concurrent access
};

/// Tuning knobs for ParallelFor.
struct ParallelOptions {
  /// Number of parallel lanes; 0 means DefaultThreadCount().
  size_t num_threads = 0;
  /// Ranges of at most this many indices run serially on the caller.
  /// Larger ranges are split into at most ceil(n / min_chunk) chunks,
  /// so per-chunk dispatch overhead stays amortized over roughly this
  /// many indices (the last chunk, or an n just above the threshold,
  /// can be smaller).
  size_t min_chunk = 2048;
};

/// Invokes `fn(begin, end)` over disjoint chunks exactly covering
/// [0, n). Chunks may run concurrently; `fn` must be safe to call from
/// multiple threads as long as the index ranges are disjoint. Blocks
/// until every chunk has completed.
///
/// \param n        Number of indices; [0, n) is covered exactly once.
/// \param fn       Callback receiving a half-open index range.
/// \param options  Lane count and chunking knobs (see ParallelOptions).
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 const ParallelOptions& options = ParallelOptions());

/// Work-queue dispatch: invokes `fn(i)` exactly once for every i in
/// [0, n), each index claimed individually by the next free lane. Use
/// when per-index costs are wildly uneven (e.g. one disjunctive
/// partition holding most of the rows) and contiguous chunking would
/// serialize on the largest item; prefer ParallelFor when indices are
/// cheap and uniform, since per-index claiming costs one atomic op each.
/// Blocks until every index has completed; degrades to a serial loop
/// when nested inside a pool worker.
///
/// \param num_threads  Number of parallel lanes; 0 means
///                     DefaultThreadCount().
void ParallelForEach(size_t n, const std::function<void(size_t)>& fn,
                     size_t num_threads = 0);

}  // namespace ccs::common

#endif  // CCS_COMMON_PARALLEL_H_
