// Chunked data-parallel dispatch over a shared worker pool.
//
// ParallelFor splits an index range into contiguous chunks and runs them
// on a process-wide thread pool; the calling thread participates, so a
// pool of k workers yields k+1-way parallelism. Nested calls (a worker
// invoking ParallelFor) degrade to serial execution instead of
// deadlocking, which lets outer loops (e.g. scoring many stream windows)
// parallelize coarsely while inner batched kernels stay correct.

#ifndef CCS_COMMON_PARALLEL_H_
#define CCS_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccs::common {

/// Number of threads ParallelFor uses when options leave it unset (0):
/// initially std::thread::hardware_concurrency(), overridable below.
size_t DefaultThreadCount();

/// Overrides DefaultThreadCount(); `n` = 0 restores the hardware default.
/// Benchmarks use this to sweep 1, 2, N threads over the same code path.
void SetDefaultThreadCount(size_t n);

/// A fixed-size pool of worker threads executing submitted closures.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// True when called from inside one of this process's pool workers.
  static bool InWorker();

  /// The process-wide pool, created on first use with
  /// hardware_concurrency() - 1 workers (the caller is the extra lane).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// Tuning knobs for ParallelFor.
struct ParallelOptions {
  /// Number of parallel lanes; 0 means DefaultThreadCount().
  size_t num_threads = 0;
  /// Ranges of at most this many indices run serially on the caller.
  /// Larger ranges are split into at most ceil(n / min_chunk) chunks,
  /// so per-chunk dispatch overhead stays amortized over roughly this
  /// many indices (the last chunk, or an n just above the threshold,
  /// can be smaller).
  size_t min_chunk = 2048;
};

/// Invokes `fn(begin, end)` over disjoint chunks exactly covering
/// [0, n). Chunks may run concurrently; `fn` must be safe to call from
/// multiple threads as long as the index ranges are disjoint. Blocks
/// until every chunk has completed.
void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn,
                 const ParallelOptions& options = ParallelOptions());

}  // namespace ccs::common

#endif  // CCS_COMMON_PARALLEL_H_
