// A bounded, blocking MPMC queue — the backpressure primitive of the
// streaming pipeline (src/stream/).
//
// Push blocks while the queue is full, so a fast producer (e.g. CSV
// ingest) cannot run unboundedly ahead of a slow consumer (e.g. window
// scoring): memory stays proportional to `capacity`, not to the stream
// length. Close() ends the conversation from either side: producers'
// Push starts returning false (consumer gave up / stream cancelled) and
// consumers' Pop drains whatever is already buffered, then returns
// nullopt (producers are done). Multiple producers and consumers are
// supported; elements leave in FIFO order.

#ifndef CCS_COMMON_BOUNDED_QUEUE_H_
#define CCS_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.h"

namespace ccs::common {

/// Bounded blocking FIFO channel between pipeline stages.
template <typename T>
class BoundedQueue {
 public:
  /// A queue holding at most `capacity` elements (at least 1).
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (backpressure), then enqueues `value`.
  /// Returns false — without enqueueing — once the queue is closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an element is available and dequeues it. Returns
  /// nullopt once the queue is closed AND drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // Closed and drained.
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Dequeues an element if one is ready; never blocks. Returns nullopt
  /// when the queue is momentarily empty (closed or not).
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Closes the queue from either end: wakes every blocked Push/Pop.
  /// Buffered elements remain poppable; further pushes are refused.
  /// Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// High-water mark of the buffered element count — the pipeline's
  /// queue-depth statistic (how close the stage ran to backpressure).
  size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  size_t peak_depth_ = 0;
};

}  // namespace ccs::common

#endif  // CCS_COMMON_BOUNDED_QUEUE_H_
