// A bounded, blocking MPMC queue — the backpressure primitive of the
// streaming pipeline (src/stream/).
//
// Push blocks while the queue is full, so a fast producer (e.g. CSV
// ingest) cannot run unboundedly ahead of a slow consumer (e.g. window
// scoring): memory stays proportional to `capacity`, not to the stream
// length. Close() ends the conversation from either side: producers'
// Push starts returning false (consumer gave up / stream cancelled) and
// consumers' Pop drains whatever is already buffered, then returns
// nullopt (producers are done). Multiple producers and consumers are
// supported; elements leave in FIFO order.
//
// Lock discipline is compiler-checked: every piece of mutable state is
// CCS_GUARDED_BY(mu_), and the Clang CI lane builds with
// -Wthread-safety so an unlocked touch fails compilation. The TSan CI
// job additionally churns this class under multi-producer/multi-consumer
// load with racing Close (tests/concurrency_stress_test.cc).

#ifndef CCS_COMMON_BOUNDED_QUEUE_H_
#define CCS_COMMON_BOUNDED_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace ccs::common {

/// Optional wait-time instrumentation for a BoundedQueue. When a
/// histogram pointer is set, every Push/Pop records how long it blocked
/// (microseconds; 0 on the non-blocking fast path, where no clock is
/// read). Strictly out-of-band: recorded waits never influence queue
/// behaviour.
struct QueueWaitHistograms {
  obs::Histogram* push_wait_us = nullptr;
  obs::Histogram* pop_wait_us = nullptr;
};

/// Bounded blocking FIFO channel between pipeline stages.
template <typename T>
class BoundedQueue {
 public:
  /// A queue holding at most `capacity` elements (at least 1).
  /// `wait` optionally attaches queue-wait histograms.
  explicit BoundedQueue(size_t capacity, QueueWaitHistograms wait = {})
      : capacity_(capacity == 0 ? 1 : capacity), wait_(wait) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (backpressure), then enqueues `value`.
  /// Returns false — without enqueueing — once the queue is closed.
  bool Push(T value) CCS_EXCLUDES(mu_) {
    uint64_t waited_ns = 0;
    {
      MutexLock lock(&mu_);
      if (!closed_ && items_.size() >= capacity_) {
        // Clock reads only bracket an actual block: the uncontended
        // fast path records a 0 sample without touching the clock.
        const uint64_t t0 = wait_.push_wait_us ? obs::NowNanos() : 0;
        while (!closed_ && items_.size() >= capacity_) not_full_.Wait(&mu_);
        if (wait_.push_wait_us) waited_ns = obs::NowNanos() - t0;
      }
      if (closed_) return false;
      items_.push_back(std::move(value));
      if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    }
    not_empty_.NotifyOne();
    if (wait_.push_wait_us) {
      wait_.push_wait_us->Observe(static_cast<double>(waited_ns) / 1000.0);
    }
    return true;
  }

  /// Blocks until an element is available and dequeues it. Returns
  /// nullopt once the queue is closed AND drained.
  std::optional<T> Pop() CCS_EXCLUDES(mu_) {
    std::optional<T> value;
    uint64_t waited_ns = 0;
    {
      MutexLock lock(&mu_);
      if (!closed_ && items_.empty()) {
        const uint64_t t0 = wait_.pop_wait_us ? obs::NowNanos() : 0;
        while (!closed_ && items_.empty()) not_empty_.Wait(&mu_);
        if (wait_.pop_wait_us) waited_ns = obs::NowNanos() - t0;
      }
      if (items_.empty()) return std::nullopt;  // Closed and drained.
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    if (wait_.pop_wait_us) {
      wait_.pop_wait_us->Observe(static_cast<double>(waited_ns) / 1000.0);
    }
    return value;
  }

  /// Dequeues an element if one is ready; never blocks. Returns nullopt
  /// when the queue is momentarily empty (closed or not).
  std::optional<T> TryPop() CCS_EXCLUDES(mu_) {
    std::optional<T> value;
    {
      MutexLock lock(&mu_);
      if (items_.empty()) return std::nullopt;
      value = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.NotifyOne();
    return value;
  }

  /// Closes the queue from either end: wakes every blocked Push/Pop.
  /// Buffered elements remain poppable; further pushes are refused.
  /// Idempotent, and safe to race with itself and with blocked
  /// Push/Pop from any number of threads.
  void Close() CCS_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  bool closed() const CCS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return closed_;
  }

  size_t size() const CCS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return items_.size();
  }

  /// High-water mark of the buffered element count — the pipeline's
  /// queue-depth statistic (how close the stage ran to backpressure).
  size_t peak_depth() const CCS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return peak_depth_;
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  const QueueWaitHistograms wait_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<T> items_ CCS_GUARDED_BY(mu_);
  bool closed_ CCS_GUARDED_BY(mu_) = false;
  size_t peak_depth_ CCS_GUARDED_BY(mu_) = 0;
};

}  // namespace ccs::common

#endif  // CCS_COMMON_BOUNDED_QUEUE_H_
