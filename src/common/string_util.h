// Small string helpers used by the CSV layer and constraint serialization.

#ifndef CCS_COMMON_STRING_UTIL_H_
#define CCS_COMMON_STRING_UTIL_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ccs {

/// Splits `text` at every occurrence of `delimiter` (no quoting rules; the
/// CSV reader has its own quote-aware splitter).
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// Parses a double; rejects trailing garbage, empty strings, NaN spellings.
std::optional<double> ParseDouble(std::string_view text);

/// Parses a base-10 integer; rejects trailing garbage and empty strings.
std::optional<int64_t> ParseInt(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats a double compactly (shortest representation round-tripping to
/// 10 significant digits, trailing zeros trimmed).
std::string FormatDouble(double value);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view text);

}  // namespace ccs

#endif  // CCS_COMMON_STRING_UTIL_H_
