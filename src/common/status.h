// Status: a lightweight error-propagation type in the Arrow/RocksDB idiom.
//
// Library code never throws across API boundaries; fallible operations
// return Status (or StatusOr<T>, see statusor.h). The RETURN_IF_ERROR and
// ASSIGN_OR_RETURN macros make propagation terse.

#ifndef CCS_COMMON_STATUS_H_
#define CCS_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace ccs {

/// Machine-readable category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIoError,
  /// A transient failure: the operation may succeed if retried. The only
  /// code the stream supervisor's bounded-retry policy re-attempts
  /// (src/stream/supervisor.h); deterministic fault injection
  /// (src/common/fault.h) emits it by default.
  kUnavailable,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// The result of an operation that can fail.
///
/// A default-constructed Status is OK. Non-OK statuses carry a code and a
/// message. Status is cheap to copy (small string optimization covers most
/// messages) and is [[nodiscard]] so callers cannot silently drop errors.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not
  /// be kOk; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace ccs

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define CCS_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::ccs::Status _ccs_status = (expr);           \
    if (!_ccs_status.ok()) return _ccs_status;    \
  } while (false)

#define CCS_CONCAT_IMPL(x, y) x##y
#define CCS_CONCAT(x, y) CCS_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a StatusOr<T> expression); on error returns the
/// status, otherwise move-assigns the value into `lhs`.
#define CCS_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto CCS_CONCAT(_ccs_statusor_, __LINE__) = (rexpr);          \
  if (!CCS_CONCAT(_ccs_statusor_, __LINE__).ok())               \
    return CCS_CONCAT(_ccs_statusor_, __LINE__).status();       \
  lhs = std::move(CCS_CONCAT(_ccs_statusor_, __LINE__)).value()

#endif  // CCS_COMMON_STATUS_H_
