// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These wrap Clang's capability analysis (-Wthread-safety): declare which
// mutex guards which state, and lock-discipline violations — touching a
// CCS_GUARDED_BY member without its mutex, calling a CCS_REQUIRES
// function unlocked, leaking a lock out of a scope — become compile
// errors in the Clang CI lane instead of TSan findings (or races) at
// runtime. The analysis only tracks acquisitions through annotated
// functions, and libstdc++'s std::mutex is not annotated, so all
// annotated code locks through common/mutex.h (ccs::common::Mutex /
// MutexLock / CondVar), never raw std::mutex — tools/ccs_lint.py's
// `std-mutex` rule enforces the migration.
//
// Usage pattern (see common/bounded_queue.h for a complete example):
//
//   class Account {
//    public:
//     void Deposit(double amount) CCS_EXCLUDES(mu_) {
//       MutexLock lock(&mu_);
//       balance_ += amount;
//     }
//    private:
//     Mutex mu_;
//     double balance_ CCS_GUARDED_BY(mu_);
//   };

#ifndef CCS_COMMON_THREAD_ANNOTATIONS_H_
#define CCS_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CCS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define CCS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Marks a type as a lockable capability (mutex-like).
#define CCS_CAPABILITY(x) CCS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define CCS_SCOPED_CAPABILITY CCS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding the given mutex.
#define CCS_GUARDED_BY(x) CCS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define CCS_PT_GUARDED_BY(x) CCS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function callable only while already holding the given mutex(es).
#define CCS_REQUIRES(...) \
  CCS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function that acquires the given mutex(es) and returns holding them.
#define CCS_ACQUIRE(...) \
  CCS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function that releases the given mutex(es); they must be held on entry.
#define CCS_RELEASE(...) \
  CCS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function that tries to acquire; first argument is the success value.
#define CCS_TRY_ACQUIRE(...) \
  CCS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function that must NOT be entered holding the given mutex(es) — the
/// public-API side of CCS_REQUIRES, and the deadlock guard for
/// self-locking entry points.
#define CCS_EXCLUDES(...) \
  CCS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Escape hatch: disables the analysis for one function. Use only where
/// the lock pattern is genuinely outside the analysis' model, with a
/// comment saying why (docs/static_analysis.md, escape-hatch policy).
#define CCS_NO_THREAD_SAFETY_ANALYSIS \
  CCS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // CCS_COMMON_THREAD_ANNOTATIONS_H_
