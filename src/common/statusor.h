// StatusOr<T>: the value-or-error return type used throughout the library.

#ifndef CCS_COMMON_STATUSOR_H_
#define CCS_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace ccs {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent.
///
/// Usage:
///   StatusOr<DataFrame> df = CsvReader::ReadFile(path);
///   if (!df.ok()) return df.status();
///   Use(df.value());
///
/// Accessing value() on an error-state StatusOr aborts via CHECK — errors
/// must be handled, not ignored.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit conversion from a non-OK Status. CHECK-fails if `status` is
  /// OK (an OK StatusOr must carry a value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CCS_CHECK(!status_.ok()) << "OK status must carry a value";
  }

  /// Implicit conversion from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }

  /// The status; OK iff a value is present.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  /// The contained value. Requires ok().
  const T& value() const& {
    CCS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CCS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CCS_CHECK(ok()) << "value() on error StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  /// Dereference sugar. Requires ok().
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ccs

#endif  // CCS_COMMON_STATUSOR_H_
